// E2 — Figure 4: WebFold in action, a complete folding sequence.
//
// The paper's figure walks an 8-node tree through every fold from start to
// finish, ending in a TLB assignment that is not GLE.  The original
// figure's exact rates are not recoverable from the scan; this tree is
// reconstructed to exhibit the same cascade: two leaf folds, a fold-of-
// folds, and a final fold into the root.
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/webfold.h"
#include "tree/render.h"
#include "tree/routing_tree.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  const RoutingTree tree =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 2, 3, 5});
  const std::vector<double> spont = {5, 0, 10, 0, 30, 8, 40, 2};

  std::printf("E2 / Figure 4 — WebFold folding sequence\n\n");
  std::printf("%s\n", RenderTree(tree, [&](NodeId v) {
                        return "E=" + AsciiTable::Num(spont[v], 0);
                      }).c_str());

  const WebFoldResult r = WebFold(tree, spont);

  AsciiTable trace({"step", "folds", "into", "child load/node",
                    "parent load/node", "merged load/node", "fold size"});
  int step = 1;
  for (const FoldStep& s : r.trace)
    trace.AddRow({std::to_string(step++), std::to_string(s.folded_root),
                  std::to_string(s.into_root),
                  AsciiTable::Num(s.folded_per_node, 2),
                  AsciiTable::Num(s.into_per_node, 2),
                  AsciiTable::Num(s.merged_per_node, 2),
                  std::to_string(s.merged_size)});
  std::printf("%s\n", trace.Render().c_str());

  AsciiTable folds({"fold", "root", "members", "rate sum", "load per node"});
  for (std::size_t f = 0; f < r.folds.size(); ++f) {
    std::string members;
    for (const NodeId v : r.folds[f].members)
      members += (members.empty() ? "" : ",") + std::to_string(v);
    folds.AddRow({std::to_string(f), std::to_string(r.folds[f].root), members,
                  AsciiTable::Num(r.folds[f].rate_sum, 0),
                  AsciiTable::Num(r.folds[f].per_node, 2)});
  }
  std::printf("%s\n", folds.Render().c_str());

  std::printf("Final TLB assignment (not GLE: mean would be %.2f):\n",
              TotalRate(spont) / tree.size());
  std::printf("%s", RenderTree(tree, [&](NodeId v) {
                      return "L=" + AsciiTable::Num(r.load[v], 2) +
                             " fold=" + std::to_string(r.fold_index[v]);
                    }).c_str());
  return 0;
}
