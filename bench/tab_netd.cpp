// E17 — one wire protocol, two transports: the netd fleet vs the oracle.
//
// Part 1 carves a serving subtree out of the 10⁶-node internet tree,
// derives a WebWave placement for it, serializes the quotas to a
// QuotaWireTable blob and launches a fleet of forked cache-server
// daemons over loopback sockets — each owning a contiguous preorder
// shard, answering GETs from its quota table and forwarding misses
// up-tree to the owning peer's socket.  The same (seed, i) request
// stream is then replayed on one in-process ServingPlane built from the
// *same* blob, and every integer serving counter — hits, home serves,
// hops, failovers, backoff slots, drops — is asserted EQUAL, fleet sum
// vs oracle, across three scenarios: all-live, a crashed subtree root
// (failovers > 0), and a dead ancestor chain longer than the retry
// budget (drops > 0).  The process exits nonzero on any mismatch: the
// socket transport is not approximately right, it is the same protocol.
//
// Part 2 turns the simulator into the second transport of that protocol:
// a PacketSim step hook injects encoded GetRequest/LoadGossip frames —
// the daemon's own byte format, pushed through MessageCodec — into the
// running packet simulation, and the run reports how many wire frames
// the simulation itself round-tripped.
//
// Part 3 (riding inside part 1's runs): the live fleet stats scraper.
// While each scenario's stream is in flight, the loadgen polls every
// daemon's kStatsRequest on a timer; the samples must be monotone per
// daemon and the final sample's fleet sum must equal the oracle exactly.
// The fleet also runs with request tracing on, and the scraped trace
// records are asserted equal to the oracle's, record for record.
//
// Part 4 — the survivable fleet (PR 9).  A multi-epoch closed loop
// (BuildEpochPlan: one EpochDriver control node refreshing the quota
// table per epoch, FaultProjector re-homing around dead shards) runs
// against a fault-injected fleet: a scheduled daemon is SIGKILLed at an
// epoch boundary mid-run and re-forked later, rejoining via Hello and
// re-synced by kQuotaDelta.  Asserted, not observed: the fleet's summed
// counters (live finals + the victims' pre-kill scrapes) equal the
// multi-epoch oracle bit-for-bit; every quiesced barrier sample plus the
// retired counters equals the oracle's cumulative per-epoch counters —
// including the killed epochs AND the post-recovery epochs after the
// delta re-sync; no forward was shed; every daemon's outbox peak stayed
// under the watermark.  The oracle replay honors WEBWAVE_THREADS
// (order-free admission makes its counters thread-count invariant).
//
// Part 5 (riding inside parts 1 and 4): the latency plane (PR 10).
// Every kStatsReply carries the daemon's serve-time histogram in the v4
// section, so the scraper collects fleet-wide latency live; the merged
// fleet histogram is asserted equal to the naive per-bucket integer sum,
// and its total count is a structural identity (every request plus every
// forward arrives as exactly one kGetRequest frame).  The loadgen's own
// send->reply histograms obey a partition law: bucketed per epoch and
// per server, the two partitions merge to the same histogram.  Victims'
// flight-recorder rings are scraped before each SIGKILL and asserted
// non-empty; all rings are dumped as netd_flight_*.txt and the trace as
// netd_trace.jsonl — the inputs tools/merge_flight.py joins into a
// cross-process per-request timeline.  Bucket *values* are wall-clock
// and never enter any assertion; only counts and partition identities do.
//
// Emits BENCH_netd.json, BENCH_netd_stats.json (one record per live
// scrape), BENCH_netd_faults.json (the survivable-fleet scenario),
// BENCH_netd_latency.json (per-scenario and per-epoch latency shapes),
// netd_stats.prom (Prometheus text exposition, now with real histogram
// families), netd_flight_*.txt and netd_trace.jsonl.  Environment knobs:
//   WEBWAVE_SMOKE            reduced shapes (the CI smoke configuration)
//   WEBWAVE_NETD_NODES       big-tree nodes to carve from (default
//                            1000000; smoke 60000)
//   WEBWAVE_NETD_CARVE       target carved-subtree size (default 4000;
//                            smoke 1200)
//   WEBWAVE_NETD_DOCS        documents (default 16; smoke 8)
//   WEBWAVE_NETD_SERVERS     forked daemons (default 4)
//   WEBWAVE_NETD_REQUESTS    requests per scenario (default 400000;
//                            smoke 120000)
//   WEBWAVE_NETD_SCRAPE_MS   live stats-scrape period (default 5; 0
//                            disables mid-run scraping)
//   WEBWAVE_NETD_TRACE_SHIFT trace sampling shift (default 10: ~1/1024)
//   WEBWAVE_NETD_EPOCHS      fault-scenario epochs (default 5)
//   WEBWAVE_THREADS          oracle replay worker threads (default 1)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "doc/catalog.h"
#include "doc/placement.h"
#include "fault/process_faults.h"
#include "netd/cluster.h"
#include "netd/epoch_plan.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"
#include "proto/packet_sim.h"
#include "serve/quota_snapshot.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/bench_json.h"
#include "util/rng.h"
#include "wire/codec.h"
#include "wire/quota_wire.h"

namespace {

webwave::LatencyHistogram MergeHists(
    const std::vector<webwave::LatencyHistogram>& parts) {
  webwave::LatencyHistogram merged;
  for (const auto& h : parts) merged.Merge(h);
  return merged;
}

// The merge law: LatencyHistogram::Merge must be exactly a per-bucket
// u64 add — checked against the naive sum, bucket for bucket, plus the
// count and sum totals.
bool MergeEqualsBucketSum(
    const webwave::LatencyHistogram& merged,
    const std::vector<webwave::LatencyHistogram>& parts) {
  std::uint64_t count = 0;
  for (int b = 0; b < webwave::LatencyHistogram::kBucketCount; ++b) {
    std::uint64_t want = 0;
    for (const auto& h : parts) want += h.bucket(b);
    if (merged.bucket(b) != want) return false;
    count += want;
  }
  std::uint64_t sum = 0;
  for (const auto& h : parts) sum += h.sum();
  return merged.count() == count && merged.sum() == sum;
}

}  // namespace

int main() {
  using namespace webwave;
  using bench::EnvInt;
  using bench::MillisSince;
  using Clock = std::chrono::steady_clock;

  const bool smoke = bench::EnvFlag("WEBWAVE_SMOKE");
  const int big_nodes =
      EnvInt("WEBWAVE_NETD_NODES", smoke ? 60000 : 1000000);
  const int carve_target = EnvInt("WEBWAVE_NETD_CARVE", smoke ? 1200 : 4000);
  const int docs = EnvInt("WEBWAVE_NETD_DOCS", smoke ? 8 : 16);
  const int servers = EnvInt("WEBWAVE_NETD_SERVERS", 4);
  const long long requests =
      bench::EnvLong("WEBWAVE_NETD_REQUESTS", smoke ? 120000LL : 400000LL);
  const int scrape_ms = EnvInt("WEBWAVE_NETD_SCRAPE_MS", 5);
  const int trace_shift = EnvInt("WEBWAVE_NETD_TRACE_SHIFT", 10);

  std::printf(
      "E17 — one wire protocol, two transports: %d-node tree, a carved\n"
      "~%d-node serving subtree, %d forked daemons over loopback, %lld\n"
      "requests per scenario, every serving counter asserted equal to the\n"
      "in-process oracle replaying the identical (seed, i) stream.%s\n\n",
      big_nodes, carve_target, servers, requests,
      smoke ? "\n(WEBWAVE_SMOKE: reduced configuration)" : "");

  BenchJson json("tab_netd");
  json.BeginRun();
  json.Add("record", std::string("config"));
  json.Add("big_nodes", big_nodes);
  json.Add("carve_target", carve_target);
  json.Add("docs", docs);
  json.Add("servers", servers);
  json.Add("requests", requests);

  // Part 1 — the forked fleet vs the oracle ------------------------------
  Rng rng(static_cast<std::uint64_t>(big_nodes) + docs + 17);
  const auto t_tree = Clock::now();
  const RoutingTree big = MakeRandomTree(big_nodes, rng);
  NodeId pivot = big.root();
  for (const NodeId v : big.preorder())
    if (!big.is_root(v) && big.subtree_size(v) >= carve_target &&
        big.subtree_size(v) <= 4 * carve_target) {
      pivot = v;
      break;
    }
  if (big.is_root(pivot)) {
    // No subtree in range (tiny trees): take the largest proper subtree.
    for (const NodeId v : big.children(big.root())) {
      if (pivot == big.root() ||
          big.subtree_size(v) > big.subtree_size(pivot))
        pivot = v;
    }
  }
  const CarvedTree carved = CarveSubtree(big, pivot);
  const RoutingTree tree = RoutingTree::FromParents(carved.parents);
  const double carve_ms = MillisSince(t_tree);
  std::printf("carved %d of %d nodes (subtree of node %d, height %d) in %.0f ms\n",
              tree.size(), big.size(), pivot, tree.height(), carve_ms);

  DemandMatrix demand(tree.size(), docs);
  Rng drng(7);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v))
      for (DocId d = 0; d < docs; ++d)
        demand.set(v, d, drng.NextDouble(0.1, 4.0));
  const PlacementResult placement = DerivePlacement(tree, demand);
  const QuotaSnapshot snapshot =
      QuotaSnapshot::FromPlacement(tree, placement, demand, 1e-9);

  NetdClusterConfig config;
  config.parents = tree.parents();
  config.owner = PartitionOwners(tree, servers);
  config.server_count = servers;
  QuotaWireTable::Serialize(snapshot, &config.quota_blob);
  config.serving.block_size = 1;
  config.serving.threads = 1;
  config.serving.trace = true;
  config.serving.trace_sample_shift = trace_shift;
  config.stats_scrape_period_ms = scrape_ms;
  config.docs = docs;
  config.stream_seed = 0x77aeULL + static_cast<std::uint64_t>(big_nodes);
  config.total_requests = static_cast<std::uint64_t>(requests);
  std::printf("quota blob: %zu bytes, %d serving nodes, %d documents\n\n",
              config.quota_blob.size(), tree.size(), docs);

  // The three scenarios: live, a crashed subtree root, a dead ancestor
  // chain longer than the retry budget.
  struct Scenario {
    const char* label;
    std::vector<NodeId> down;
    int max_failover_attempts;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"live", {}, 8});
  {
    std::vector<NodeId> down;
    for (const NodeId v : tree.preorder())
      if (!tree.is_root(v) && tree.subtree_size(v) >= tree.size() / 20) {
        down.push_back(v);
        break;
      }
    scenarios.push_back({"faulted", down, 8});
  }
  {
    NodeId deep = 0;
    for (const NodeId v : tree.preorder())
      if (tree.depth(v) > tree.depth(deep)) deep = v;
    std::vector<NodeId> chain;
    for (NodeId v = deep; !tree.is_root(v); v = tree.parent(v))
      chain.push_back(v);
    scenarios.push_back(
        {"drops", chain, std::max(1, static_cast<int>(chain.size()) - 1)});
  }

  AsciiTable table({"scenario", "served", "dropped", "failovers", "hop sum",
                    "forwards", "gossip", "scrapes", "traced",
                    "fleet kreq/s", "oracle Mreq/s", "match"});
  BenchJson stats_json("tab_netd_stats");
  BenchJson latency_json("tab_netd_latency");
  PrometheusWriter prom;
  bool all_match = true;
  for (const Scenario& sc : scenarios) {
    config.down = sc.down;
    config.serving.max_failover_attempts = sc.max_failover_attempts;

    const auto t_fleet = Clock::now();
    const NetdRunResult run = RunNetdCluster(config);
    const double fleet_ms = MillisSince(t_fleet);

    const auto t_oracle = Clock::now();
    std::vector<TraceEvent> oracle_trace;
    const ServingMetrics oracle = ReplayOracle(config, &oracle_trace);
    const double oracle_ms = MillisSince(t_oracle);

    bool match =
        run.ok && ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)) &&
        run.client_served == oracle.requests - oracle.dropped_requests &&
        run.client_hop_sum == oracle.hop_sum;

    // The scraped trace equals the oracle's, record for record.
    if (run.trace != oracle_trace) {
      std::printf("ASSERT FAILED [%s]: fleet trace (%zu records) != oracle "
                  "trace (%zu records)\n",
                  sc.label, run.trace.size(), oracle_trace.size());
      match = false;
    }

    // Live scrapes: mid-run samples exist (the fleet outlives one scrape
    // period), per-daemon counters are monotone sample to sample, and
    // the final sample's fleet sum is exactly the oracle's totals — the
    // scraper reads the same truth the oracle computes.
    if (scrape_ms > 0 && run.samples.size() < 2) {
      std::printf("ASSERT FAILED [%s]: no mid-run stats sample (%zu total)\n",
                  sc.label, run.samples.size());
      match = false;
    }
    for (std::size_t i = 1; i < run.samples.size(); ++i)
      for (std::size_t s = 0; s < run.samples[i].per_server.size(); ++s)
        if (!CountersMonotone(run.samples[i - 1].per_server[s],
                              run.samples[i].per_server[s])) {
          std::printf("ASSERT FAILED [%s]: non-monotone counters, sample "
                      "%zu server %zu\n",
                      sc.label, i, s);
          match = false;
        }
    if (run.samples.empty() ||
        !ServingCountersEqual(SumCounters(run.samples.back().per_server),
                              CountersFromMetrics(oracle))) {
      std::printf("ASSERT FAILED [%s]: final scraped sample != oracle\n",
                  sc.label);
      match = false;
    }

    // The latency plane.  The fleet's serve-time histograms arrive in
    // the same v4 kStatsReply the counters do; their merge must equal
    // the naive per-bucket sum, and the merged count is structural:
    // every request plus every forward is exactly one kGetRequest frame.
    const LatencyHistogram fleet_hist = MergeHists(run.server_hist);
    if (!MergeEqualsBucketSum(fleet_hist, run.server_hist)) {
      std::printf("ASSERT FAILED [%s]: serve histogram merge != "
                  "per-bucket sum\n", sc.label);
      match = false;
    }
    if (fleet_hist.count() !=
        config.total_requests + run.fleet.net_forwards) {
      std::printf("ASSERT FAILED [%s]: serve histogram count %llu != "
                  "requests + forwards %llu\n", sc.label,
                  static_cast<unsigned long long>(fleet_hist.count()),
                  static_cast<unsigned long long>(config.total_requests +
                                                  run.fleet.net_forwards));
      match = false;
    }
    // The loadgen's send->reply latency, partitioned two ways — per
    // epoch block and per replying server.  Same events, so the two
    // partitions must merge to the identical histogram, and every
    // request contributes exactly one reply.
    const LatencyHistogram client_lat = MergeHists(run.latency_per_server);
    if (MergeHists(run.latency_per_epoch) != client_lat ||
        client_lat.count() != config.total_requests) {
      std::printf("ASSERT FAILED [%s]: client latency partitions "
                  "disagree (%llu recorded, %llu requests)\n", sc.label,
                  static_cast<unsigned long long>(client_lat.count()),
                  static_cast<unsigned long long>(config.total_requests));
      match = false;
    }
    all_match = all_match && match;

    std::printf("latency [%s]: client p50=%llu p99=%llu max<%llu ns | "
                "fleet serve p50=%llu p99=%llu over %llu frames | loadgen "
                "loop stall max %.2f ms\n",
                sc.label,
                static_cast<unsigned long long>(client_lat.ValueAtQuantile(0.5)),
                static_cast<unsigned long long>(client_lat.ValueAtQuantile(0.99)),
                static_cast<unsigned long long>(client_lat.MaxValueBound()),
                static_cast<unsigned long long>(fleet_hist.ValueAtQuantile(0.5)),
                static_cast<unsigned long long>(fleet_hist.ValueAtQuantile(0.99)),
                static_cast<unsigned long long>(fleet_hist.count()),
                static_cast<double>(run.loop_max_stall_ns) / 1e6);

    latency_json.BeginRun();
    latency_json.Add("record", std::string("scenario"));
    latency_json.Add("scenario", std::string(sc.label));
    latency_json.Add("client_count",
                     static_cast<long long>(client_lat.count()));
    latency_json.Add("client_p50_ns",
                     static_cast<long long>(client_lat.ValueAtQuantile(0.5)));
    latency_json.Add("client_p99_ns",
                     static_cast<long long>(client_lat.ValueAtQuantile(0.99)));
    latency_json.Add("client_max_bound_ns",
                     static_cast<long long>(client_lat.MaxValueBound()));
    latency_json.Add("serve_count",
                     static_cast<long long>(fleet_hist.count()));
    latency_json.Add("serve_p50_ns",
                     static_cast<long long>(fleet_hist.ValueAtQuantile(0.5)));
    latency_json.Add("serve_p99_ns",
                     static_cast<long long>(fleet_hist.ValueAtQuantile(0.99)));
    latency_json.Add("serve_max_bound_ns",
                     static_cast<long long>(fleet_hist.MaxValueBound()));
    latency_json.Add("loop_max_stall_ns",
                     static_cast<long long>(run.loop_max_stall_ns));
    latency_json.Add("match", match ? 1 : 0);

    // One stats record per live scrape: the fleet's counter sums as the
    // scraper saw them mid-flight.
    for (std::size_t i = 0; i < run.samples.size(); ++i) {
      const WireCounters sum = SumCounters(run.samples[i].per_server);
      stats_json.BeginRun();
      stats_json.Add("scenario", std::string(sc.label));
      stats_json.Add("sample", static_cast<long long>(i));
      stats_json.Add("final",
                     i + 1 == run.samples.size() ? 1 : 0);
      stats_json.Add("at_completed",
                     static_cast<long long>(run.samples[i].at_completed));
      stats_json.Add("requests", static_cast<long long>(sum.requests));
      stats_json.Add("cache_served",
                     static_cast<long long>(sum.cache_served));
      stats_json.Add("home_served", static_cast<long long>(sum.home_served));
      stats_json.Add("hop_sum", static_cast<long long>(sum.hop_sum));
      stats_json.Add("failovers", static_cast<long long>(sum.failovers));
      stats_json.Add("dropped", static_cast<long long>(sum.dropped_requests));
      stats_json.Add("net_forwards",
                     static_cast<long long>(sum.net_forwards));
      stats_json.Add("gossip_sent", static_cast<long long>(sum.gossip_sent));
      // The latency the scraper saw live at this sample, from the v4
      // histogram section of the very same kStatsReply round.
      const LatencyHistogram seen = MergeHists(run.samples[i].hist_per_server);
      stats_json.Add("serve_count", static_cast<long long>(seen.count()));
      stats_json.Add("serve_p50_ns",
                     static_cast<long long>(seen.ValueAtQuantile(0.5)));
      stats_json.Add("serve_p99_ns",
                     static_cast<long long>(seen.ValueAtQuantile(0.99)));
    }

    // The exposition: final fleet counters, one label set per scenario.
    {
      const PrometheusWriter::Labels labels = {{"scenario", sc.label}};
      prom.AddCounter("webwave.fleet.requests", labels, run.fleet.requests);
      prom.AddCounter("webwave.fleet.cache_served", labels,
                      run.fleet.cache_served);
      prom.AddCounter("webwave.fleet.home_served", labels,
                      run.fleet.home_served);
      prom.AddCounter("webwave.fleet.hop_sum", labels, run.fleet.hop_sum);
      prom.AddCounter("webwave.fleet.failovers", labels, run.fleet.failovers);
      prom.AddCounter("webwave.fleet.dropped_requests", labels,
                      run.fleet.dropped_requests);
      prom.AddCounter("webwave.fleet.net_forwards", labels,
                      run.fleet.net_forwards);
      prom.AddCounter("webwave.fleet.gossip_sent", labels,
                      run.fleet.gossip_sent);
      prom.AddGauge("webwave.fleet.samples", labels,
                    static_cast<double>(run.samples.size()));
      prom.AddGauge("webwave.fleet.trace_records", labels,
                    static_cast<double>(run.trace.size()));
      // Real histogram families: the fleet's merged serve time, the
      // client's observed latency, and the loadgen's event-loop health.
      prom.AddHistogram("webwave.fleet.serve_time_ns", labels, fleet_hist);
      prom.AddHistogram("webwave.client.latency_ns", labels, client_lat);
      prom.AddHistogram("webwave.loadgen.loop_poll_iter_ns", labels,
                        run.loop_poll_iter);
      prom.AddHistogram("webwave.loadgen.loop_timer_lag_ns", labels,
                        run.loop_timer_lag);
      prom.AddGauge("webwave.loadgen.loop_max_stall_ns", labels,
                    static_cast<double>(run.loop_max_stall_ns));
    }

    table.AddRow({sc.label,
                  AsciiTable::Int(static_cast<long long>(run.client_served)),
                  AsciiTable::Int(static_cast<long long>(run.client_dropped)),
                  AsciiTable::Int(static_cast<long long>(run.fleet.failovers)),
                  AsciiTable::Int(static_cast<long long>(run.fleet.hop_sum)),
                  AsciiTable::Int(static_cast<long long>(run.fleet.net_forwards)),
                  AsciiTable::Int(static_cast<long long>(run.fleet.gossip_sent)),
                  AsciiTable::Int(static_cast<long long>(run.samples.size())),
                  AsciiTable::Int(static_cast<long long>(run.trace.size())),
                  AsciiTable::Num(static_cast<double>(requests) / fleet_ms, 1),
                  AsciiTable::Num(static_cast<double>(requests) / oracle_ms / 1e3,
                                  3),
                  match ? "EXACT" : "MISMATCH"});

    json.BeginRun();
    json.Add("record", std::string("fleet"));
    json.Add("scenario", std::string(sc.label));
    json.Add("servers", servers);
    json.Add("requests", requests);
    json.Add("down", static_cast<long long>(sc.down.size()));
    json.Add("served", static_cast<long long>(run.client_served));
    json.Add("dropped", static_cast<long long>(run.client_dropped));
    json.Add("failovers", static_cast<long long>(run.fleet.failovers));
    json.Add("hop_sum", static_cast<long long>(run.fleet.hop_sum));
    json.Add("net_forwards", static_cast<long long>(run.fleet.net_forwards));
    json.Add("gossip_sent", static_cast<long long>(run.fleet.gossip_sent));
    json.Add("fleet_ms", fleet_ms);
    json.Add("req_per_sec", static_cast<double>(requests) / fleet_ms * 1e3);
    json.Add("oracle_req_per_sec",
             static_cast<double>(requests) / oracle_ms * 1e3);
    json.Add("stats_samples", static_cast<long long>(run.samples.size()));
    json.Add("trace_records", static_cast<long long>(run.trace.size()));
    json.Add("match", match ? 1 : 0);
  }
  std::printf("%s\n", table.Render().c_str());

  // Part 4 — the survivable fleet: kill + restart mid-run ----------------
  {
    const int epochs = EnvInt("WEBWAVE_NETD_EPOCHS", 5);
    const int oracle_threads = bench::EnvThreads("WEBWAVE_NETD_THREADS", 1);
    NetdClusterConfig fc = config;
    fc.down.clear();
    fc.serving.max_failover_attempts = 8;
    fc.serving.threads = oracle_threads;
    fc.load_window_factor = 4.0;
    // Live daemons dump their flight ring to flight_<index>.txt on clean
    // shutdown; victims never get there — their rings arrive over the
    // wire (kFlightRequest) at the quiesced boundary before the SIGKILL.
    fc.flight_dir = ".";

    EpochPlanOptions eopt;
    eopt.epochs = epochs;
    eopt.requests_per_epoch =
        std::max<std::uint64_t>(fc.total_requests /
                                    static_cast<std::uint64_t>(epochs),
                                1000);
    eopt.faults.pattern = FaultPattern::kSingleNodes;
    eopt.faults.crash_fraction = 0.4;
    eopt.faults.outage_epochs = 1;
    eopt.faults.start_epoch = 1;

    // The fault schedule is a pure (seed, server, epoch) hash; probe for
    // the first seed whose draw kills AND restarts at least one daemon,
    // so the scenario is guaranteed whatever the hash does.  (The oracle
    // identity holds for any plan — the probe only pins coverage.)
    auto kills_through = [](const ProcessFaultPlan& p, int e) {
      std::size_t n = 0;
      for (int i = 0; i <= e; ++i)
        n += p.kill_at[static_cast<std::size_t>(i)].size();
      return n;
    };
    auto restarts_through = [](const ProcessFaultPlan& p, int e) {
      std::size_t n = 0;
      for (int i = 0; i <= e; ++i)
        n += p.restart_at[static_cast<std::size_t>(i)].size();
      return n;
    };
    std::uint64_t fseed = 0;
    for (std::uint64_t s = 1; s <= 64 && fseed == 0; ++s) {
      FaultScheduleOptions probe = eopt.faults;
      probe.seed = s;
      const ProcessFaultPlan p =
          BuildProcessFaultPlan(servers, epochs, probe);
      if (kills_through(p, epochs - 1) >= 1 &&
          restarts_through(p, epochs - 1) >= 1)
        fseed = s;
    }
    if (fseed == 0) {
      std::printf("ASSERT FAILED: no fault seed in 1..64 yields a kill "
                  "and a restart\n");
      return 1;
    }
    eopt.faults.seed = fseed;
    const ProcessFaultPlan plan = BuildEpochPlan(&fc, eopt);
    const std::size_t kills = kills_through(plan, epochs - 1);
    const std::size_t restarts = restarts_through(plan, epochs - 1);
    std::printf(
        "survivable fleet: %d epochs x %llu requests, fault seed %llu —\n"
        "%zu daemon kill(s), %zu restart(s) scheduled mid-run\n",
        epochs,
        static_cast<unsigned long long>(eopt.requests_per_epoch),
        static_cast<unsigned long long>(fseed), kills, restarts);

    const auto t_fleet = Clock::now();
    const NetdRunResult run = RunNetdCluster(fc);
    const double fleet_ms = MillisSince(t_fleet);

    const auto t_oracle = Clock::now();
    std::vector<TraceEvent> oracle_trace;
    std::vector<WireCounters> per_epoch;
    const ServingMetrics oracle = ReplayOracle(fc, &oracle_trace, &per_epoch);
    const double oracle_ms = MillisSince(t_oracle);

    bool match = run.ok;
    if (!run.ok)
      std::printf("ASSERT FAILED [faults]: fleet run did not complete\n");

    // The sum law across faults: live finals + the victims' pre-kill
    // scrapes equal the multi-epoch oracle, every integer counter.
    if (!ServingCountersEqual(run.fleet, CountersFromMetrics(oracle))) {
      std::printf("ASSERT FAILED [faults]: fleet sum != oracle\n");
      match = false;
    }
    if (run.client_served + run.client_dropped != fc.total_requests ||
        run.client_served != oracle.requests - oracle.dropped_requests ||
        run.client_hop_sum != oracle.hop_sum) {
      std::printf("ASSERT FAILED [faults]: client tallies != oracle\n");
      match = false;
    }
    if (run.retired.size() != kills ||
        run.rejoin_hello_epochs.size() != restarts) {
      std::printf("ASSERT FAILED [faults]: %zu retired / %zu rejoins, "
                  "plan says %zu / %zu\n",
                  run.retired.size(), run.rejoin_hello_epochs.size(), kills,
                  restarts);
      match = false;
    }
    for (const std::uint32_t e : run.rejoin_hello_epochs)
      if (e != 0) {
        std::printf("ASSERT FAILED [faults]: a rejoin Hello announced "
                    "epoch %u (restart must boot fresh)\n", e);
        match = false;
      }
    if (run.trace != oracle_trace) {
      std::printf("ASSERT FAILED [faults]: fleet trace (%zu) != oracle "
                  "trace (%zu)\n",
                  run.trace.size(), oracle_trace.size());
      match = false;
    }

    // Backpressure stayed bounded: nothing shed, every outbox peak under
    // the watermark — in live daemons and in the killed ones alike.
    if (run.fleet.shed_forwards != 0) {
      std::printf("ASSERT FAILED [faults]: %llu forwards shed\n",
                  static_cast<unsigned long long>(run.fleet.shed_forwards));
      match = false;
    }
    std::uint64_t outbox_peak = 0;
    for (const WireCounters& s : run.per_server)
      outbox_peak = std::max(outbox_peak, s.outbox_peak_bytes);
    for (const WireCounters& s : run.retired)
      outbox_peak = std::max(outbox_peak, s.outbox_peak_bytes);
    if (outbox_peak > fc.outbox_watermark_bytes) {
      std::printf("ASSERT FAILED [faults]: outbox peak %llu > watermark "
                  "%zu\n",
                  static_cast<unsigned long long>(outbox_peak),
                  fc.outbox_watermark_bytes);
      match = false;
    }

    // Barrier sample i closes epoch i: its live counters plus every
    // retired scrape taken through that transition equal the oracle's
    // cumulative counters after epoch i — the killed epochs match the
    // down-set oracle, the post-restart epochs match the recovered one.
    BenchJson faults_json("tab_netd_faults");
    const bool epochs_ok =
        run.epoch_samples.size() == static_cast<std::size_t>(epochs - 1) &&
        per_epoch.size() == static_cast<std::size_t>(epochs);
    if (!epochs_ok) {
      std::printf("ASSERT FAILED [faults]: %zu barrier samples / %zu "
                  "oracle epochs (want %d / %d)\n",
                  run.epoch_samples.size(), per_epoch.size(), epochs - 1,
                  epochs);
      match = false;
    }
    for (std::size_t i = 0; epochs_ok && i < run.epoch_samples.size(); ++i) {
      std::vector<WireCounters> parts = run.epoch_samples[i].per_server;
      const std::size_t used =
          std::min(kills_through(plan, static_cast<int>(i) + 1),
                   run.retired.size());
      parts.insert(parts.end(), run.retired.begin(),
                   run.retired.begin() + static_cast<std::ptrdiff_t>(used));
      const WireCounters sum = SumCounters(parts);
      const bool ematch = ServingCountersEqual(sum, per_epoch[i]);
      if (!ematch) {
        std::printf("ASSERT FAILED [faults]: barrier sample %zu != "
                    "oracle cumulative epoch %zu\n", i, i);
        match = false;
      }
      faults_json.BeginRun();
      faults_json.Add("record", std::string("epoch"));
      faults_json.Add("epoch", static_cast<long long>(i));
      faults_json.Add("servers", servers);
      faults_json.Add("kills_through", static_cast<long long>(used));
      faults_json.Add("at_completed",
                      static_cast<long long>(run.epoch_samples[i].at_completed));
      faults_json.Add("requests", static_cast<long long>(sum.requests));
      faults_json.Add("failovers", static_cast<long long>(sum.failovers));
      faults_json.Add("dropped",
                      static_cast<long long>(sum.dropped_requests));
      faults_json.Add("match", ematch ? 1 : 0);

      // Per-epoch fleet latency, scraped live over wire v4: the barrier
      // sample's histograms plus the victims' pre-kill ones give the
      // cumulative serve-time distribution through this epoch.
      std::vector<LatencyHistogram> parts_hist =
          run.epoch_samples[i].hist_per_server;
      parts_hist.insert(
          parts_hist.end(), run.retired_hist.begin(),
          run.retired_hist.begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(used, run.retired_hist.size())));
      const LatencyHistogram cum = MergeHists(parts_hist);
      const LatencyHistogram ep_lat =
          i < run.latency_per_epoch.size() ? run.latency_per_epoch[i]
                                           : LatencyHistogram{};
      latency_json.BeginRun();
      latency_json.Add("record", std::string("epoch"));
      latency_json.Add("scenario", std::string("faults"));
      latency_json.Add("epoch", static_cast<long long>(i));
      latency_json.Add("client_count",
                       static_cast<long long>(ep_lat.count()));
      latency_json.Add("client_p50_ns",
                       static_cast<long long>(ep_lat.ValueAtQuantile(0.5)));
      latency_json.Add("client_p99_ns",
                       static_cast<long long>(ep_lat.ValueAtQuantile(0.99)));
      latency_json.Add("client_max_bound_ns",
                       static_cast<long long>(ep_lat.MaxValueBound()));
      latency_json.Add("serve_count", static_cast<long long>(cum.count()));
      latency_json.Add("serve_p50_ns",
                       static_cast<long long>(cum.ValueAtQuantile(0.5)));
      latency_json.Add("serve_p99_ns",
                       static_cast<long long>(cum.ValueAtQuantile(0.99)));
      std::printf("epoch %zu latency: client p50=%llu p99=%llu ns "
                  "(%llu replies) | fleet serve p50=%llu p99=%llu "
                  "(%llu frames, scraped)\n",
                  i,
                  static_cast<unsigned long long>(ep_lat.ValueAtQuantile(0.5)),
                  static_cast<unsigned long long>(ep_lat.ValueAtQuantile(0.99)),
                  static_cast<unsigned long long>(ep_lat.count()),
                  static_cast<unsigned long long>(cum.ValueAtQuantile(0.5)),
                  static_cast<unsigned long long>(cum.ValueAtQuantile(0.99)),
                  static_cast<unsigned long long>(cum.count()));
    }

    // The latency plane across faults.  Live finals plus the victims'
    // pre-kill histograms partition every kGetRequest frame the fleet
    // ever dispatched (the boundary is quiesced, so no frame is lost to
    // a SIGKILL), and Merge must stay a per-bucket integer add.
    std::vector<LatencyHistogram> final_hists = run.server_hist;
    final_hists.insert(final_hists.end(), run.retired_hist.begin(),
                       run.retired_hist.end());
    const LatencyHistogram fleet_hist = MergeHists(final_hists);
    if (!MergeEqualsBucketSum(fleet_hist, final_hists)) {
      std::printf("ASSERT FAILED [faults]: serve histogram merge != "
                  "per-bucket sum\n");
      match = false;
    }
    if (fleet_hist.count() != fc.total_requests + run.fleet.net_forwards) {
      std::printf("ASSERT FAILED [faults]: serve histogram count %llu != "
                  "requests + forwards %llu\n",
                  static_cast<unsigned long long>(fleet_hist.count()),
                  static_cast<unsigned long long>(fc.total_requests +
                                                  run.fleet.net_forwards));
      match = false;
    }
    const LatencyHistogram client_lat = MergeHists(run.latency_per_server);
    if (MergeHists(run.latency_per_epoch) != client_lat ||
        client_lat.count() != fc.total_requests) {
      std::printf("ASSERT FAILED [faults]: client latency partitions "
                  "disagree (%llu recorded, %llu requests)\n",
                  static_cast<unsigned long long>(client_lat.count()),
                  static_cast<unsigned long long>(fc.total_requests));
      match = false;
    }

    // Flight recorder: killing a daemon must yield a non-empty flight
    // dump for the victim, scraped over the wire before the SIGKILL; the
    // end-of-run dump round covers every live daemon.
    std::size_t victim_dumps = 0;
    std::size_t flight_events = 0;
    for (const NetdRunResult::FlightDump& d : run.flights) {
      if (d.victim) ++victim_dumps;
      flight_events += d.events.size();
      if (d.events.empty()) {
        std::printf("ASSERT FAILED [faults]: empty flight ring from "
                    "server %d (%s)\n", d.server,
                    d.victim ? "victim" : "live");
        match = false;
      }
    }
    if (victim_dumps != kills) {
      std::printf("ASSERT FAILED [faults]: %zu victim flight dumps, "
                  "plan killed %zu\n", victim_dumps, kills);
      match = false;
    }

    // Dump every scraped ring to netd_flight_*.txt and the fleet trace
    // to netd_trace.jsonl — the inputs tools/merge_flight.py joins into
    // the cross-process per-request timeline.
    int flight_files = 0;
    for (std::size_t i = 0; i < run.flights.size(); ++i) {
      const NetdRunResult::FlightDump& d = run.flights[i];
      char name[64];
      std::snprintf(name, sizeof(name), "netd_flight_%02zu_s%d%s.txt", i,
                    d.server, d.victim ? "_victim" : "");
      std::ofstream out(name);
      out << FlightRecorder::Dump(d.events,
                                  static_cast<std::uint8_t>(d.server));
      if (out.good()) ++flight_files;
    }
    {
      std::ofstream out("netd_trace.jsonl");
      for (const TraceEvent& e : run.trace)
        out << "{\"req_id\":" << e.req_id << ",\"seq\":" << e.seq
            << ",\"node\":" << e.node << ",\"kind\":\""
            << TraceEventKindName(e.kind) << "\",\"detail\":" << e.detail
            << ",\"aux\":" << static_cast<int>(e.aux) << "}\n";
    }
    std::printf("flight plane: %zu ring dump(s) (%zu victim), %zu events, "
                "%d netd_flight_*.txt file(s) + netd_trace.jsonl written\n",
                run.flights.size(), victim_dumps, flight_events,
                flight_files);

    // The clean-shutdown file path: every live daemon wrote its ring to
    // flight_<index>.txt in flight_dir, and the text form parses back.
    int shutdown_dumps = 0;
    for (int s = 0; s < servers; ++s) {
      char name[32];
      std::snprintf(name, sizeof(name), "flight_%d.txt", s);
      std::ifstream in(name);
      if (!in.good()) continue;
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      std::vector<FlightEvent> parsed;
      if (text.empty() || !FlightRecorder::Parse(text, &parsed) ||
          parsed.empty()) {
        std::printf("ASSERT FAILED [faults]: %s does not parse back\n",
                    name);
        match = false;
        continue;
      }
      ++shutdown_dumps;
    }
    if (shutdown_dumps == 0) {
      std::printf("ASSERT FAILED [faults]: no daemon wrote a clean-"
                  "shutdown flight dump\n");
      match = false;
    }
    all_match = all_match && match;

    latency_json.BeginRun();
    latency_json.Add("record", std::string("scenario"));
    latency_json.Add("scenario", std::string("faults"));
    latency_json.Add("client_count",
                     static_cast<long long>(client_lat.count()));
    latency_json.Add("client_p50_ns",
                     static_cast<long long>(client_lat.ValueAtQuantile(0.5)));
    latency_json.Add("client_p99_ns",
                     static_cast<long long>(client_lat.ValueAtQuantile(0.99)));
    latency_json.Add("client_max_bound_ns",
                     static_cast<long long>(client_lat.MaxValueBound()));
    latency_json.Add("serve_count",
                     static_cast<long long>(fleet_hist.count()));
    latency_json.Add("serve_p50_ns",
                     static_cast<long long>(fleet_hist.ValueAtQuantile(0.5)));
    latency_json.Add("serve_p99_ns",
                     static_cast<long long>(fleet_hist.ValueAtQuantile(0.99)));
    latency_json.Add("serve_max_bound_ns",
                     static_cast<long long>(fleet_hist.MaxValueBound()));
    latency_json.Add("loop_max_stall_ns",
                     static_cast<long long>(run.loop_max_stall_ns));
    latency_json.Add("match", match ? 1 : 0);

    {
      const PrometheusWriter::Labels labels = {{"scenario", "faults"}};
      prom.AddHistogram("webwave.fleet.serve_time_ns", labels, fleet_hist);
      prom.AddHistogram("webwave.client.latency_ns", labels, client_lat);
      prom.AddGauge("webwave.fleet.flight_events", labels,
                    static_cast<double>(flight_events));
    }

    faults_json.BeginRun();
    faults_json.Add("record", std::string("fleet"));
    faults_json.Add("servers", servers);
    faults_json.Add("epochs", epochs);
    faults_json.Add("requests", static_cast<long long>(fc.total_requests));
    faults_json.Add("fault_seed", static_cast<long long>(fseed));
    faults_json.Add("kills", static_cast<long long>(kills));
    faults_json.Add("restarts", static_cast<long long>(restarts));
    faults_json.Add("reconnects",
                    static_cast<long long>(run.fleet.reconnects));
    faults_json.Add("shed_forwards",
                    static_cast<long long>(run.fleet.shed_forwards));
    faults_json.Add("outbox_peak_bytes",
                    static_cast<long long>(outbox_peak));
    faults_json.Add("flight_dumps",
                    static_cast<long long>(run.flights.size()));
    faults_json.Add("flight_events",
                    static_cast<long long>(flight_events));
    faults_json.Add("served", static_cast<long long>(run.client_served));
    faults_json.Add("dropped", static_cast<long long>(run.client_dropped));
    faults_json.Add("failovers",
                    static_cast<long long>(run.fleet.failovers));
    faults_json.Add("oracle_threads", oracle_threads);
    faults_json.Add("fleet_ms", fleet_ms);
    faults_json.Add("req_per_sec",
                    static_cast<double>(fc.total_requests) / fleet_ms * 1e3);
    faults_json.Add("oracle_req_per_sec",
                    static_cast<double>(fc.total_requests) / oracle_ms * 1e3);
    faults_json.Add("match", match ? 1 : 0);
    bench::WriteArtifact(faults_json, "BENCH_netd_faults.json");

    std::printf(
        "survivable fleet: %llu served + %llu dropped, %llu failovers,\n"
        "%llu reconnects, outbox peak %llu B (watermark %zu), "
        "%.1f kreq/s — %s\n\n",
        static_cast<unsigned long long>(run.client_served),
        static_cast<unsigned long long>(run.client_dropped),
        static_cast<unsigned long long>(run.fleet.failovers),
        static_cast<unsigned long long>(run.fleet.reconnects),
        static_cast<unsigned long long>(outbox_peak),
        fc.outbox_watermark_bytes,
        static_cast<double>(fc.total_requests) / fleet_ms, match
            ? "EXACT across kill, restart and delta re-sync"
            : "MISMATCH");
  }

  // Part 2 — the simulator as the protocol's second transport ------------
  {
    const int sim_nodes = smoke ? 400 : 2000;
    const int sim_docs = 8;
    Rng srng(21);
    const RoutingTree sim_tree = MakeRandomTree(sim_nodes, srng);
    DemandMatrix sim_demand(sim_nodes, sim_docs);
    Rng sdr(5);
    for (NodeId v = 0; v < sim_tree.size(); ++v)
      if (sim_tree.is_leaf(v))
        for (DocId d = 0; d < sim_docs; ++d)
          sim_demand.set(v, d, sdr.NextDouble(0.5, 2.0));
    PacketSimOptions opt;
    opt.policy = CachePolicy::kWebWave;
    opt.duration = 6 * kMicrosPerSecond;
    opt.warmup = 1 * kMicrosPerSecond;
    opt.seed = 29;

    PacketSim sim(sim_tree, sim_demand, opt);
    std::uint64_t injected = 0;
    sim.set_step_hook([&](PacketSim& s) {
      // Inject daemon-format frames into the running simulation: the
      // codec's bytes, not a parallel in-sim vocabulary.
      GetRequest g;
      g.req_id = 1u << 20;
      g.doc = static_cast<DocId>(injected % sim_docs);
      g.origin_node = static_cast<NodeId>((injected * 37) %
                                          static_cast<std::uint64_t>(sim_nodes));
      std::vector<std::uint8_t> frame;
      MessageCodec::Encode(g, &frame);
      if (s.InjectFrame(frame.data(), frame.size())) ++injected;
      LoadGossip lg;
      lg.node = g.origin_node;
      lg.epoch = static_cast<std::uint32_t>(injected);
      lg.load = static_cast<double>(injected);
      s.InjectGossip(lg);
    });
    const auto t_sim = Clock::now();
    sim.Run();
    const double sim_ms = MillisSince(t_sim);
    const PacketSimReport report = sim.Report();
    std::printf(
        "packet_sim transport: %llu wire frames round-tripped in-sim,\n"
        "%llu injected via the step hook, %llu requests total (%.0f ms)\n\n",
        static_cast<unsigned long long>(report.wire_frames),
        static_cast<unsigned long long>(injected),
        static_cast<unsigned long long>(report.total_requests), sim_ms);

    json.BeginRun();
    json.Add("record", std::string("packet_wire"));
    json.Add("sim_nodes", sim_nodes);
    json.Add("wire_frames", static_cast<long long>(report.wire_frames));
    json.Add("injected", static_cast<long long>(injected));
    json.Add("sim_requests", static_cast<long long>(report.total_requests));
    json.Add("sim_ms", sim_ms);

    if (report.wire_frames == 0 || injected == 0) {
      std::printf("ASSERT FAILED: the simulator round-tripped no frames\n");
      all_match = false;
    }
  }

  bench::WriteArtifact(json, "BENCH_netd.json");
  bench::WriteArtifact(stats_json, "BENCH_netd_stats.json");
  bench::WriteArtifact(latency_json, "BENCH_netd_latency.json");
  const char* prom_out = "netd_stats.prom";
  std::printf("%s %s\n",
              prom.WriteFile(prom_out) ? "wrote" : "FAILED to write",
              prom_out);
  if (!all_match) {
    std::printf("\nASSERT FAILED: fleet and oracle disagree — the two\n"
                "transports are not running the same protocol.\n");
    return 1;
  }
  std::printf(
      "\nReading: the daemons and the oracle do not merely agree\n"
      "statistically — every counter is identical, because block_size = 1\n"
      "makes each admission decision a pure function of (req_id, cell) and\n"
      "both transports execute the same ServingPlane core on the same\n"
      "QuotaWireTable bytes.  The socket layer adds delivery, not policy.\n");
  return 0;
}
