// E9 — §5's protocol parameters, ablated.
//
// "In a realistic system, WebWave servers would have two parameters: the
// gossip period, and the diffusion period."  Figure 5 adds the diffusion
// parameter α ("other values of α_i are possible").  This bench sweeps:
//   (1) the fixed α on the Figure-6 tree (capped at the Cybenko-stable
//       value per edge) + the uncapped variant to show why the cap exists,
//   (2) the gossip period (estimates refresh every g diffusion steps),
//   (3) the gossip delay (estimates lag by d steps, Bertsekas-Tsitsiklis
//       bounded staleness),
//   (4) asynchronous activation probabilities.
// Metric: iterations to bring the distance to TLB below 1e-6, and the
// fitted per-step rate γ.
#include <cstdio>
#include <string>

#include "core/webfold.h"
#include "core/webwave.h"
#include "stats/fit.h"
#include "tree/routing_tree.h"
#include "util/ascii.h"

namespace webwave {
namespace {

const RoutingTree& BenchTree() {
  static const RoutingTree tree = RoutingTree::FromParents(
      {kNoNode, 0, 0, 0, 1, 1, 2, 3, 3, 4, 6, 6, 8, 8});
  return tree;
}

const std::vector<double>& BenchRates() {
  static const std::vector<double> rates = {0, 2, 12, 30, 6, 4, 20,
                                            10, 1, 40, 16, 12, 9, 5};
  return rates;
}

struct RunResult {
  long steps;
  double gamma;
  bool converged;
};

RunResult RunOnce(WebWaveOptions opt, int max_steps = 30000) {
  const WebFoldResult target = WebFold(BenchTree(), BenchRates());
  WebWaveSimulator sim(BenchTree(), BenchRates(), opt);
  std::vector<double> traj = sim.RunUntil(target.load, 1e-6, max_steps);
  RunResult r;
  r.converged = traj.back() <= 1e-6;
  r.steps = static_cast<long>(traj.size()) - 1;
  if (traj.size() > 300) traj.resize(300);
  r.gamma = traj.size() >= 5 ? FitExponential(traj).gamma : 0.0;
  return r;
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  std::printf("E9 / Section 5 — ablation of WebWave's parameters "
              "(Figure-6 tree, distance target 1e-6)\n\n");

  {
    AsciiTable t({"alpha (capped)", "steps", "fitted gamma", "converged"});
    for (const double a : {0.05, 0.10, 0.15, 0.25, 0.35, 0.50}) {
      WebWaveOptions opt;
      opt.alpha_policy = AlphaPolicy::kFixed;
      opt.alpha = a;
      const RunResult r = RunOnce(opt);
      t.AddRow({AsciiTable::Num(a, 2), std::to_string(r.steps),
                AsciiTable::Num(r.gamma, 4), r.converged ? "yes" : "no"});
    }
    {
      WebWaveOptions opt;  // the default degree-based policy
      const RunResult r = RunOnce(opt);
      t.AddRow({"degree-based", std::to_string(r.steps),
                AsciiTable::Num(r.gamma, 4), r.converged ? "yes" : "no"});
    }
    {
      WebWaveOptions opt;
      opt.alpha_policy = AlphaPolicy::kFixedUncapped;
      opt.alpha = 0.5;
      const RunResult r = RunOnce(opt, 8000);
      t.AddRow({"0.50 UNCAPPED", std::to_string(r.steps),
                AsciiTable::Num(r.gamma, 4), r.converged ? "yes" : "no"});
    }
    std::printf("diffusion parameter:\n%s\n", t.Render().c_str());
  }

  {
    AsciiTable t({"gossip period", "steps", "fitted gamma", "converged"});
    for (const int g : {1, 2, 4, 8, 16}) {
      WebWaveOptions opt;
      opt.gossip_period = g;
      const RunResult r = RunOnce(opt);
      t.AddRow({std::to_string(g), std::to_string(r.steps),
                AsciiTable::Num(r.gamma, 4), r.converged ? "yes" : "no"});
    }
    std::printf("gossip period (diffusion periods per estimate refresh):\n%s\n",
                t.Render().c_str());
  }

  {
    AsciiTable t({"gossip delay", "steps", "fitted gamma", "converged"});
    for (const int d : {0, 1, 2, 4, 8}) {
      WebWaveOptions opt;
      opt.gossip_delay = d;
      const RunResult r = RunOnce(opt);
      t.AddRow({std::to_string(d), std::to_string(r.steps),
                AsciiTable::Num(r.gamma, 4), r.converged ? "yes" : "no"});
    }
    std::printf("gossip staleness (bounded delay):\n%s\n", t.Render().c_str());
  }

  {
    AsciiTable t({"activation prob", "steps", "fitted gamma", "converged"});
    for (const double p : {1.0, 0.75, 0.5, 0.25}) {
      WebWaveOptions opt;
      opt.asynchronous = p < 1.0;
      opt.activation_probability = p;
      opt.seed = 99;
      const RunResult r = RunOnce(opt, 60000);
      t.AddRow({AsciiTable::Num(p, 2), std::to_string(r.steps),
                AsciiTable::Num(r.gamma, 4), r.converged ? "yes" : "no"});
    }
    std::printf("asynchronous activation:\n%s\n", t.Render().c_str());
  }

  std::printf(
      "Reading: larger (stable) alpha converges faster; sparse or stale\n"
      "gossip and random activation slow convergence roughly in proportion\n"
      "but never break it — matching Bertsekas-Tsitsiklis; the uncapped\n"
      "alpha = 0.5 violates Cybenko's condition and fails to settle.\n");
  return 0;
}
