// E10 — the packet-level protocol under §5.1's relaxed assumptions:
// messages with latency, stale gossip, measured (EWMA) rates, Poisson
// arrivals.  Compares WebWave against the no-cache, en-route-LRU and
// ICP-like policies on balance, locality (hit depth), response time and
// control-message overhead — the §1 argument that discovery protocols pay
// per-request costs while WebWave pays only periodic gossip.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave_batch.h"
#include "doc/catalog.h"
#include "proto/packet_sim.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"

namespace webwave {
namespace {

// The rate-level reference the packet-level protocol is judged against:
// every document lane stepped to convergence on the batch engine (the
// same per-document diffusion the packet protocol approximates with
// messages), summed across the catalog.  This is the sum of the
// *per-document* TLB optima — a different (and fairer) target than one
// aggregate WebFold over the node totals, because the packet protocol
// balances each document separately.
struct RateLevelReference {
  std::vector<double> load;      // converged across-document node loads
  double residual = 0;           // worst per-lane distance to its own TLB
};

RateLevelReference BatchReference(const RoutingTree& tree,
                                  const DemandMatrix& demand) {
  WebWaveOptions opt;
  opt.threads = bench::EnvThreads("WEBWAVE_PACKET_THREADS", 1);
  BatchWebWaveSimulator batch = MakeCatalogBatch(tree, demand, opt);
  for (int s = 0; s < 20000; ++s) batch.Step();
  RateLevelReference ref;
  ref.load = batch.NodeLoads();
  for (DocId d = 0; d < demand.doc_count(); ++d) {
    const WebFoldResult tlb = WebFold(tree, demand.DocColumn(d));
    ref.residual =
        std::max(ref.residual, batch.DistanceTo(d, tlb.load));
  }
  return ref;
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  std::printf(
      "E10 / Section 5.1 — packet-level simulation, binary tree depth 3\n"
      "Zipf(1.0) demand, 12 documents, 150 req/s per leaf, 5 ms links,\n"
      "gossip 100 ms, diffusion 200 ms, 60 s simulated\n\n");

  Rng rng(101);
  const RoutingTree tree = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(tree, 12, 150.0, 1.0, rng);
  // Rate-level target from the batch engine: per-document lanes stepped to
  // convergence, summed over the catalog.
  const RateLevelReference target = BatchReference(tree, demand);
  std::printf(
      "rate-level reference: batch engine, %d lanes to convergence "
      "(worst per-lane residual to its TLB: %.2e)\n\n",
      demand.doc_count(), target.residual);

  AsciiTable table({"policy", "max load", "CoV", "hit depth", "resp ms",
                    "msgs/req", "transfers", "dist to TLB"});
  for (const CachePolicy policy :
       {CachePolicy::kNoCaching, CachePolicy::kEnRouteLru,
        CachePolicy::kIcpLike, CachePolicy::kWebWave}) {
    PacketSimOptions opt;
    opt.policy = policy;
    opt.duration = 60 * kMicrosPerSecond;
    opt.warmup = 10 * kMicrosPerSecond;
    opt.lru_capacity = 3;
    opt.seed = 17;
    const PacketSimReport report =
        PacketSim(tree, demand, opt, target.load).Run();
    double max_load = 0;
    for (const double l : report.measured_loads)
      max_load = std::max(max_load, l);
    table.AddRow(
        {PolicyName(policy), AsciiTable::Num(max_load, 1),
         AsciiTable::Num(CoefficientOfVariation(report.measured_loads), 3),
         AsciiTable::Num(report.mean_hit_depth, 2),
         AsciiTable::Num(report.mean_response_ms, 1),
         AsciiTable::Num(report.control_messages_per_request, 3),
         std::to_string(report.doc_transfers),
         AsciiTable::Num(
             EuclideanDistance(report.measured_loads, target.load), 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  // WebWave's adaptation over time: the EWMA-load distance to TLB per
  // diffusion period.
  PacketSimOptions opt;
  opt.policy = CachePolicy::kWebWave;
  opt.duration = 60 * kMicrosPerSecond;
  opt.warmup = 10 * kMicrosPerSecond;
  opt.seed = 17;
  const PacketSimReport wave =
      PacketSim(tree, demand, opt, target.load).Run();
  std::printf("WebWave distance-to-TLB trajectory (EWMA loads, one sample "
              "per 200 ms):\n\n");
  std::vector<std::pair<std::string, double>> plot;
  for (std::size_t i = 0; i < wave.distance_trajectory.size();
       i += std::max<std::size_t>(1, wave.distance_trajectory.size() / 24))
    plot.push_back({"t=" + AsciiTable::Num(0.2 * static_cast<double>(i), 1) + "s",
                    wave.distance_trajectory[i]});
  std::printf("%s\n", AsciiBarChart(plot, 46).c_str());
  std::printf("tunnel events: %llu\n\n",
              static_cast<unsigned long long>(wave.tunnel_events));

  // §7's network-traffic question: where do the bytes flow?  Aggregate
  // per-edge traffic by the depth of the edge's child — no-caching funnels
  // everything through the root links, WebWave keeps traffic at the edge.
  {
    PacketSimOptions none_opt = opt;
    none_opt.policy = CachePolicy::kNoCaching;
    const PacketSimReport none =
        PacketSim(tree, demand, none_opt, target.load).Run();
    AsciiTable traffic({"edge depth", "no-caching KB", "webwave KB",
                        "reduction"});
    for (int depth = 1; depth <= tree.height(); ++depth) {
      double none_kb = 0, wave_kb = 0;
      for (NodeId v = 0; v < tree.size(); ++v) {
        if (tree.is_root(v) || tree.depth(v) != depth) continue;
        none_kb += none.edge_traffic_kb[static_cast<std::size_t>(v)];
        wave_kb += wave.edge_traffic_kb[static_cast<std::size_t>(v)];
      }
      traffic.AddRow({std::to_string(depth), AsciiTable::Num(none_kb, 0),
                      AsciiTable::Num(wave_kb, 0),
                      wave_kb > 0 ? AsciiTable::Num(none_kb / wave_kb, 1) + "x"
                                  : "-"});
    }
    std::printf("link traffic by depth (child-side of each edge):\n%s\n",
                traffic.Render().c_str());
  }
  std::printf(
      "Reading: WebWave reaches the most balanced distribution (lowest CoV,\n"
      "closest to TLB), serves requests nearest to their origin after\n"
      "adaptation, and its control overhead per request is far below the\n"
      "ICP-like discovery cost at realistic request volumes.\n");
  return 0;
}
