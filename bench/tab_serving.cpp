// E14 — the serving data plane: replaying tens of millions of requests
// against WebWave and baseline placements, then closing the loop.
//
// Part 1 is the paper-style comparison the control-plane tables cannot
// show: the same rotating-hot-spot request stream (10⁷ records over a
// 10⁶-node tree, 64-document catalog) served under four placements —
// home-only, uniform top-k replication, greedy-by-popularity en-route
// caching, and WebWave's TLB-realizing quotas — measuring what servers
// actually experience: max/mean load, load CoV, Jain fairness, cache hit
// ratio, hops climbed, and raw serving throughput (req/s).
//
// Part 2 runs the closed loop at a reduced shape: the diffusion engine
// starts ignorant, each epoch serves half a demand window from its
// current diffused copies, folds the measured arrivals back through
// ApplyDemandEvents, re-diffuses, incrementally re-syncs one maintained
// QuotaSnapshot (RefreshFromBatch over the engine's dirty lanes), and
// serves the second half from the refreshed placement — head-to-head
// against home-only on the same stream while the hot spot rotates.
//
// Part 3 isolates the incremental snapshot *and* the incremental serving
// plane: a catalog where 95 % of the documents sit at their diffusion
// fixed point (they step clean) while 5 % take a rotating hot window,
// re-snapshotted both ways each epoch — full FromBatch versus
// RefreshFromBatch over the dirty lanes — with the results asserted
// cell-for-cell identical and both timings recorded; the same epochs
// also rebuild a ServingPlane from scratch versus ServingPlane::Refresh
// over the dirty documents, asserted table-identical.
//
// Part 4 is the capacity sweep at part-1 scale: the WebWave-TLB
// placement clamped through a CapacityProjector at a ladder of per-node
// byte budgets (lognormal document sizes), served against the part-1
// stream — the storage axis tab_capacity sweeps in full, here at 10⁶
// nodes.  Spill conservation and the >= 1x-budget no-op are asserted.
//
// Part 5 measures the observer effect of request tracing: the part-1
// WebWave-TLB placement served twice — tracing off, then tracing on at
// the default 1/2^14 sampling — with the serving metrics asserted
// bit-identical (tracing reads decisions, never makes them) and the
// throughput delta reported; the first traced walks are dumped to
// BENCH_trace_sample.jsonl.
//
// Emits BENCH_serving.json, BENCH_serving_timeline.jsonl (one record per
// closed-loop epoch from the part-2 EpochDriver timeline) and
// BENCH_trace_sample.jsonl.  Environment knobs:
//   WEBWAVE_SMOKE             reduced shapes (the CI smoke configuration)
//   WEBWAVE_SERVING_NODES     part-1 nodes (default 1000000; smoke 10000)
//   WEBWAVE_SERVING_DOCS      part-1 documents (default 64; smoke 8)
//   WEBWAVE_SERVING_REQUESTS  part-1 requests (default 10000000; smoke 200000)
//   WEBWAVE_SERVING_THREADS   worker threads (default: WEBWAVE_THREADS, then 1)
//   WEBWAVE_LOOP_NODES/_DOCS/_EPOCHS/_WINDOW  part-2 shape overrides
//   WEBWAVE_SNAP_NODES/_DOCS/_EPOCHS          part-3 shape overrides
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/webwave_batch.h"
#include "obs/clock.h"
#include "obs/metric_registry.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serve/closed_loop.h"
#include "serve/placement_policy.h"
#include "serve/epoch_driver.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "stats/summary.h"
#include "store/cache_store.h"
#include "store/capacity_projector.h"
#include "store/document_sizes.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/bench_json.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  using bench::EnvInt;
  using bench::MillisSince;
  using Clock = std::chrono::steady_clock;

  const bool smoke = bench::EnvFlag("WEBWAVE_SMOKE");
  const int nodes = EnvInt("WEBWAVE_SERVING_NODES", smoke ? 10000 : 1000000);
  const int docs = EnvInt("WEBWAVE_SERVING_DOCS", smoke ? 8 : 64);
  const long long requests = bench::EnvLong("WEBWAVE_SERVING_REQUESTS",
                                            smoke ? 200000LL : 10000000LL);
  const int threads = bench::EnvThreads("WEBWAVE_SERVING_THREADS", 1);

  std::printf(
      "E14 — request-serving data plane over batch WebWave placements:\n"
      "%d nodes x %d documents x %lld requests (rotating hot spot),\n"
      "%d worker thread(s).%s\n\n",
      nodes, docs, requests, threads,
      smoke ? "\n(WEBWAVE_SMOKE: reduced configuration)" : "");

  BenchJson json("tab_serving");
  json.BeginRun();
  json.Add("record", std::string("config"));
  json.Add("nodes", nodes);
  json.Add("docs", docs);
  json.Add("requests", requests);
  json.Add("threads", threads);

  Rng rng(static_cast<std::uint64_t>(nodes) + docs);
  const auto t_tree = Clock::now();
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  std::printf("tree build %.0f ms\n", MillisSince(t_tree));

  // Part 1 — one demand field, four placements, one request stream ------
  RequestGenerator gen(
      tree, docs,
      {RotatingHotSpotComponent(tree, docs, 1.0, 50.0, 0.05, 1, 8)}, 2024);
  const auto t_lanes = Clock::now();
  const std::vector<std::vector<double>> lanes = gen.ExpectedLanes();
  const auto t_gen = Clock::now();
  std::vector<Request> stream;
  gen.NextBatch(static_cast<std::size_t>(requests), &stream);
  const double gen_ms = MillisSince(t_gen);
  std::printf("demand lanes %.0f ms, stream generation %.0f ms (%.1f Mreq/s)\n\n",
              MillisSince(t_lanes) - gen_ms, gen_ms,
              static_cast<double>(requests) / gen_ms / 1e3);

  AsciiTable table({"placement", "copies", "place ms", "serve Mreq/s",
                    "hit %", "mean hops", "max load", "max/mean", "CoV",
                    "Jain"});
  const int top_k = std::max(2, docs / 4);
  const int replicas = std::max(8, nodes / 4000);
  const auto policies = StandardPolicies(top_k, replicas, 2, 7);
  for (const auto& policy : policies) {
    const auto t_place = Clock::now();
    QuotaSnapshot snap = policy->Place(tree, lanes);
    const double place_ms = MillisSince(t_place);
    const long long cells = snap.cell_count();

    ServingOptions opt;
    opt.threads = threads;
    opt.offered_rate = gen.total_rate();
    // Token windows sized so a typical server earns a few requests per
    // block — at 10⁶ servers a block must span a few million requests for
    // proportional quotas to be meaningful at request granularity.
    opt.block_size = EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, nodes));
    ServingPlane plane(tree, std::move(snap), opt);
    const auto t_serve = Clock::now();
    plane.Serve(stream);
    const double serve_ms = MillisSince(t_serve);

    const ServingMetrics& m = plane.metrics();
    const std::vector<double> loads = m.Loads();
    const double mean =
        static_cast<double>(requests) / static_cast<double>(nodes);
    const double mreq_s = static_cast<double>(requests) / serve_ms / 1e3;
    const double max_load = static_cast<double>(m.MaxServed());
    table.AddRow({policy->name(), AsciiTable::Int(cells),
                  AsciiTable::Num(place_ms, 0), AsciiTable::Num(mreq_s, 2),
                  AsciiTable::Num(100 * m.HitRatio(), 1),
                  AsciiTable::Num(m.MeanHops(), 2),
                  AsciiTable::Int(static_cast<long long>(m.MaxServed())),
                  AsciiTable::Num(max_load / mean, 1),
                  AsciiTable::Num(CoefficientOfVariation(loads), 2),
                  AsciiTable::Num(JainFairness(loads), 3)});
    json.BeginRun();
    json.Add("record", std::string("policy"));
    json.Add("placement", policy->name());
    json.Add("cells", cells);
    json.Add("place_ms", place_ms);
    json.Add("serve_ms", serve_ms);
    json.Add("req_per_sec", static_cast<double>(requests) / serve_ms * 1e3);
    json.Add("hit_ratio", m.HitRatio());
    json.Add("mean_hops", m.MeanHops());
    json.Add("max_load", static_cast<long long>(m.MaxServed()));
    json.Add("load_cov", CoefficientOfVariation(loads));
    json.Add("jain", JainFairness(loads));
  }
  std::printf("%s\n", table.Render().c_str());

  // Part 2 — the closed loop under a rotating hot spot ------------------
  const int loop_nodes = EnvInt("WEBWAVE_LOOP_NODES", smoke ? 5000 : 200000);
  const int loop_docs = EnvInt("WEBWAVE_LOOP_DOCS", smoke ? 8 : 16);
  const int loop_epochs = EnvInt("WEBWAVE_LOOP_EPOCHS", smoke ? 3 : 6);
  const std::size_t loop_window = static_cast<std::size_t>(
      EnvInt("WEBWAVE_LOOP_WINDOW", smoke ? 100000 : 2000000));
  const int rotation = 8;
  std::printf(
      "closed loop: %d nodes x %d documents, %d epochs, %zu requests per\n"
      "window; the engine starts ignorant and learns only from folded\n"
      "arrival measurements (serve half -> fold -> re-diffuse -> serve half).\n\n",
      loop_nodes, loop_docs, loop_epochs, loop_window);

  Rng loop_rng(99);
  const RoutingTree loop_tree = MakeRandomTree(loop_nodes, loop_rng);
  std::vector<std::vector<double>> guess(static_cast<std::size_t>(loop_docs));
  for (auto& lane : guess)
    lane.assign(static_cast<std::size_t>(loop_tree.size()), 1e-3);
  WebWaveOptions wopt;
  wopt.threads = threads;
  BatchWebWaveSimulator sim(loop_tree, std::move(guess), wopt);
  ArrivalFold fold(loop_tree.size(), loop_docs);

  AsciiTable loop_table({"epoch", "events", "webwave max", "home max",
                         "improvement", "hit %", "loop ms"});
  std::vector<Request> window_buf;
  // One maintained snapshot *and* one maintained serving plane for the
  // whole loop: the snapshot re-syncs from the engine's dirty lanes
  // (RefreshFromBatch), the plane re-syncs from the snapshot
  // (ServingPlane::Refresh) — nothing is rebuilt from scratch per epoch.
  EpochDriver driver(sim);  // default 12 diffusion steps per epoch
  // The telemetry plane rides the loop: the driver publishes per-epoch
  // gauges into a MetricRegistry and appends one JSON-lines record per
  // epoch (phase timings through the steady clock) to the timeline.
  MetricRegistry loop_registry;
  Timeline loop_timeline("serving_timeline");
  SteadyClock loop_clock;
  driver.AttachRegistry(&loop_registry);
  driver.AttachTimeline(&loop_timeline);
  driver.SetClock(&loop_clock);
  ServingOptions loop_sopt;
  loop_sopt.threads = threads;
  loop_sopt.block_size =
      EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, loop_nodes));
  // The generator total is epoch-invariant (the hot window only moves),
  // so one fixed scale serves every epoch and keeps refreshes hinted.
  {
    RequestGenerator probe(
        loop_tree, loop_docs,
        {RotatingHotSpotComponent(loop_tree, loop_docs, 1.0, 50.0, 0.05, 0,
                                  rotation)},
        500);
    loop_sopt.offered_rate = probe.total_rate();
  }
  ServingPlane plane(loop_tree, driver.snapshot(), loop_sopt);
  plane.AttachRegistry(&loop_registry, "serve.");
  driver.AttachPlane(&plane);
  for (int epoch = 0; epoch < loop_epochs; ++epoch) {
    const auto t_epoch = Clock::now();
    RequestGenerator wgen(
        loop_tree, loop_docs,
        {RotatingHotSpotComponent(loop_tree, loop_docs, 1.0, 50.0, 0.05,
                                  epoch, rotation)},
        500 + epoch);
    wgen.NextBatch(loop_window, &window_buf);
    const std::size_t half = loop_window / 2;
    const double half_seconds =
        static_cast<double>(half) / wgen.total_rate();
    ServingOptions sopt = loop_sopt;

    // First half: stale copies; its measurements drive the re-balance.
    plane.ResetMetrics();
    plane.Serve(Span<Request>(window_buf.data(), half));
    fold.Count(Span<Request>(window_buf.data(), half));
    const std::vector<DemandEvent> events = fold.Drain(half_seconds);
    // One call per control epoch: demand into the engine, diffusion,
    // snapshot re-sync, attached-plane refresh hinted by the dirty lanes.
    driver.ApplyEpoch(events, {});
    plane.ResetMetrics();
    plane.Serve(Span<Request>(window_buf.data() + half, loop_window - half));
    ServingPlane home(loop_tree,
                      HomeOnlyPolicy().Place(loop_tree, wgen.ExpectedLanes()),
                      sopt);
    home.Serve(Span<Request>(window_buf.data() + half, loop_window - half));

    const double loop_ms = MillisSince(t_epoch);
    const std::uint64_t ww_max = plane.metrics().MaxServed();
    const std::uint64_t home_max = home.metrics().MaxServed();
    loop_table.AddRow(
        {std::to_string(epoch),
         AsciiTable::Int(static_cast<long long>(events.size())),
         AsciiTable::Int(static_cast<long long>(ww_max)),
         AsciiTable::Int(static_cast<long long>(home_max)),
         AsciiTable::Num(static_cast<double>(home_max) /
                             static_cast<double>(std::max<std::uint64_t>(
                                 1, ww_max)),
                         1) +
             "x",
         AsciiTable::Num(100 * plane.metrics().HitRatio(), 1),
         AsciiTable::Num(loop_ms, 0)});
    json.BeginRun();
    json.Add("record", std::string("loop_epoch"));
    json.Add("epoch", epoch);
    json.Add("events", static_cast<long long>(events.size()));
    json.Add("webwave_max", static_cast<long long>(ww_max));
    json.Add("home_max", static_cast<long long>(home_max));
    json.Add("hit_ratio", plane.metrics().HitRatio());
    json.Add("loop_ms", loop_ms);
  }
  std::printf("%s\n", loop_table.Render().c_str());
  {
    const char* tl_out = "BENCH_serving_timeline.jsonl";
    std::printf("%s %s (%zu epoch records)\n",
                loop_timeline.WriteJsonLines(tl_out) ? "wrote"
                                                     : "FAILED to write",
                tl_out, loop_timeline.record_count());
    std::printf("registry after the loop: epochs %llu, serve.requests %llu\n\n",
                static_cast<unsigned long long>(
                    loop_registry.counter(loop_registry.Counter("epoch.count"))),
                static_cast<unsigned long long>(loop_registry.counter(
                    loop_registry.Counter("serve.requests"))));
  }

  // Part 3 — incremental vs full snapshot at 5 % lane churn --------------
  //
  // 95 % of the catalog sits at its diffusion fixed point (demand at the
  // home only — converged from the first step, so Step() leaves it
  // bit-identical and clean); the other 5 % are flash-crowd lanes: each
  // owns a fixed hot stretch of the leaf ring whose request intensity is
  // redrawn every epoch.  Early epochs grow the hot lanes' copy sets
  // (diffusion still filling their request paths), exercising the
  // structural merge; once the paths are provisioned the copy sets
  // freeze and refreshes run fully in place.  Each epoch re-snapshots
  // both ways and asserts the results identical cell for cell.
  const int snap_nodes = EnvInt("WEBWAVE_SNAP_NODES", smoke ? 5000 : 200000);
  const int snap_docs = EnvInt("WEBWAVE_SNAP_DOCS", smoke ? 20 : 128);
  const int snap_epochs = EnvInt("WEBWAVE_SNAP_EPOCHS", smoke ? 3 : 12);
  const int hot_docs = std::max(1, snap_docs / 20);  // ~5 % of the lanes
  std::printf(
      "incremental snapshot: %d nodes x %d documents, %d flash-crowd\n"
      "lane(s) (~%.0f%%) re-shocked per epoch, the rest at their fixed\n"
      "point.\n\n",
      snap_nodes, snap_docs, hot_docs,
      100.0 * hot_docs / snap_docs);

  Rng snap_rng(7);
  const RoutingTree snap_tree = MakeRandomTree(snap_nodes, snap_rng);
  std::vector<std::vector<double>> snap_lanes(
      static_cast<std::size_t>(snap_docs));
  for (auto& lane : snap_lanes) {
    lane.assign(static_cast<std::size_t>(snap_tree.size()), 0.0);
    lane[static_cast<std::size_t>(snap_tree.root())] = 25.0;
  }
  WebWaveOptions snap_opt;
  snap_opt.threads = threads;
  BatchWebWaveSimulator snap_sim(snap_tree, std::move(snap_lanes), snap_opt);

  std::vector<NodeId> snap_leaves;
  for (NodeId v = 0; v < snap_tree.size(); ++v)
    if (snap_tree.is_leaf(v)) snap_leaves.push_back(v);
  const std::size_t hot_window = std::max<std::size_t>(
      1, snap_leaves.size() / 500);

  // At this floor a lane's copy set is "every path node diffusion has
  // ever provisioned" — it grows while the frontier sweeps the (fixed)
  // request paths, then freezes, which is what moves the refresh from the
  // structural merge onto the in-place path in the later epochs.
  const double snap_min_rate = 1e-12;
  QuotaSnapshot incr = QuotaSnapshot::FromBatch(snap_sim, snap_min_rate);
  snap_sim.ClearDirtyLanes();

  // The maintained serving plane refreshed per epoch, timed against a
  // from-scratch construction and asserted table-identical to it.
  ServingOptions snap_sopt;
  snap_sopt.threads = threads;
  snap_sopt.offered_rate = 25.0 * snap_docs;
  snap_sopt.block_size =
      EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, snap_nodes));
  ServingPlane inc_plane(snap_tree, incr, snap_sopt);

  AsciiTable snap_table({"epoch", "dirty lanes", "cells", "mode", "full ms",
                         "incremental ms", "speedup", "plane full ms",
                         "plane incr ms", "identical"});
  for (int epoch = 0; epoch < snap_epochs; ++epoch) {
    // Re-shock the flash-crowd lanes: each keeps its own fixed stretch of
    // the leaf ring, the per-leaf intensity is redrawn every epoch (well
    // above the quota floor, so the copy set freezes once diffusion has
    // provisioned the request paths).
    Rng shock(1000 + static_cast<std::uint64_t>(epoch));
    std::vector<DemandEvent> events;
    for (int h = 0; h < hot_docs; ++h) {
      const int d = snap_docs - 1 - h;  // hot lanes live at the catalog tail
      for (std::size_t i = 0; i < hot_window; ++i) {
        const std::size_t leaf =
            (static_cast<std::size_t>(h) * hot_window + i) %
            snap_leaves.size();
        events.push_back({d, snap_leaves[leaf], shock.NextDouble(20, 60)});
      }
    }
    snap_sim.ApplyDemandEvents(events);
    for (int s = 0; s < 8; ++s) snap_sim.Step();
    const int dirty = snap_sim.dirty_lane_count();

    const std::vector<int> snap_dirty = snap_sim.DirtyLanes();
    const auto t_full = Clock::now();
    const QuotaSnapshot full = QuotaSnapshot::FromBatch(snap_sim,
                                                        snap_min_rate);
    const double full_ms = MillisSince(t_full);
    const auto t_incr = Clock::now();
    const bool in_place = incr.RefreshFromBatch(snap_sim);
    const double incr_ms = MillisSince(t_incr);
    snap_sim.ClearDirtyLanes();

    // The serving-plane analogue: rebuild from scratch vs Refresh over
    // the dirty documents' rows.
    const auto t_plane_full = Clock::now();
    const ServingPlane full_plane(snap_tree, full, snap_sopt);
    const double plane_full_ms = MillisSince(t_plane_full);
    const auto t_plane_incr = Clock::now();
    const bool plane_in_place = inc_plane.Refresh(
        incr, Span<const std::int32_t>(snap_dirty.data(), snap_dirty.size()));
    const double plane_incr_ms = MillisSince(t_plane_incr);
    if (!inc_plane.TablesEqual(full_plane)) {
      std::printf("FATAL: refreshed serving plane diverged from a fresh one\n");
      return 1;
    }

    bool identical = incr.cell_count() == full.cell_count();
    for (NodeId v = 0; identical && v < snap_tree.size(); ++v)
      identical = incr.row_begin(v) == full.row_begin(v) &&
                  incr.row_end(v) == full.row_end(v);
    for (std::int64_t c = 0; identical && c < full.cell_count(); ++c) {
      const std::size_t i = static_cast<std::size_t>(c);
      identical = incr.cell_docs()[i] == full.cell_docs()[i] &&
                  incr.cell_rates()[i] == full.cell_rates()[i] &&
                  incr.cell_fractions()[i] == full.cell_fractions()[i];
    }
    if (!identical) {
      std::printf("FATAL: incremental snapshot diverged from full rebuild\n");
      return 1;
    }

    snap_table.AddRow(
        {std::to_string(epoch), AsciiTable::Int(dirty),
         AsciiTable::Int(full.cell_count()), in_place ? "in-place" : "merge",
         AsciiTable::Num(full_ms, 2), AsciiTable::Num(incr_ms, 2),
         AsciiTable::Num(full_ms / std::max(1e-9, incr_ms), 1) + "x",
         AsciiTable::Num(plane_full_ms, 2), AsciiTable::Num(plane_incr_ms, 2),
         "yes"});
    json.BeginRun();
    json.Add("record", std::string("snapshot_epoch"));
    json.Add("epoch", epoch);
    json.Add("nodes", snap_nodes);
    json.Add("docs", snap_docs);
    json.Add("dirty_lanes", dirty);
    json.Add("cells", static_cast<long long>(full.cell_count()));
    json.Add("in_place", in_place ? 1 : 0);
    json.Add("full_ms", full_ms);
    json.Add("incremental_ms", incr_ms);
    json.Add("snapshot_speedup", full_ms / std::max(1e-9, incr_ms));
    json.Add("plane_full_ms", plane_full_ms);
    json.Add("plane_incremental_ms", plane_incr_ms);
    json.Add("plane_in_place", plane_in_place ? 1 : 0);
    json.Add("plane_speedup", plane_full_ms / std::max(1e-9, plane_incr_ms));
  }
  std::printf("%s\n", snap_table.Render().c_str());

  // Part 4 — capacity sweep at part-1 scale -----------------------------
  //
  // The part-1 WebWave-TLB placement clamped to finite per-node storage:
  // lognormal document sizes, budgets as working-set multiples, the
  // part-1 request stream replayed against each clamped snapshot.
  {
    std::printf(
        "capacity sweep: WebWave-TLB at %d nodes, budgets as multiples of\n"
        "the catalog working set (lognormal sizes, median 64 KB).\n\n",
        nodes);
    const DocumentSizes sizes = DocumentSizes::FromCatalog(
        Catalog::MakeLogNormal(docs, 64.0, 1.0, 2027));
    const QuotaSnapshot base = WebWaveTlbPolicy().Place(tree, lanes);
    ServingOptions copt;
    copt.threads = threads;
    copt.offered_rate = gen.total_rate();
    copt.block_size = EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, nodes));
    ServingMetrics uncap;
    AsciiTable cap_table({"budget x", "evicted", "spill %", "hit %",
                          "max load", "project ms"});
    for (const double multiple : {-1.0, 0.1, 0.25, 1.0}) {
      const bool capped = multiple >= 0;
      QuotaSnapshot serve_snap = base;
      std::int64_t evicted = 0;
      double spilled = 0, project_ms = 0;
      if (capped) {
        const auto t_project = Clock::now();
        CapacityProjector projector(
            tree, CacheStore::WorkingSetStore(tree, sizes, multiple));
        projector.Project(base);
        project_ms = MillisSince(t_project);
        if (!projector.ConservesTotalRate(base)) {
          std::printf("FATAL: spill failed to conserve total rate\n");
          return 1;
        }
        evicted = projector.evicted_cells();
        spilled = projector.spilled_rate();
        serve_snap = projector.clamped();
      }
      ServingPlane cap_plane(tree, std::move(serve_snap), copt);
      cap_plane.Serve(stream);
      const ServingMetrics& m = cap_plane.metrics();
      if (!capped) uncap = m;
      if (capped && multiple >= 1.0 && !(evicted == 0 && m == uncap)) {
        std::printf(
            "FATAL: >=1x working-set budget diverged from uncapacitated\n");
        return 1;
      }
      cap_table.AddRow(
          {capped ? AsciiTable::Num(multiple, 2) : "inf",
           AsciiTable::Int(evicted),
           AsciiTable::Num(100 * spilled / base.total_rate(), 1),
           AsciiTable::Num(100 * m.HitRatio(), 1),
           AsciiTable::Int(static_cast<long long>(m.MaxServed())),
           AsciiTable::Num(project_ms, 1)});
      json.BeginRun();
      json.Add("record", std::string("capacity"));
      json.Add("budget_x", multiple);
      json.Add("evicted_cells", static_cast<long long>(evicted));
      json.Add("spilled_rate", spilled);
      json.Add("hit_ratio", m.HitRatio());
      json.Add("max_load", static_cast<long long>(m.MaxServed()));
      json.Add("project_ms", project_ms);
    }
    std::printf("%s\n", cap_table.Render().c_str());
  }

  // Part 5 — the observer effect of sampled tracing ---------------------
  //
  // Tracing reads admission decisions but never makes them, so a traced
  // run must land on bit-identical serving metrics; the only acceptable
  // cost is throughput, measured here at the default 1/2^14 sampling.
  {
    std::printf(
        "trace overhead: WebWave-TLB at %d nodes, the part-1 stream served\n"
        "untraced and then traced at the default 1/2^%d sampling.\n\n",
        nodes, ServingOptions().trace_sample_shift);
    const QuotaSnapshot base = WebWaveTlbPolicy().Place(tree, lanes);
    ServingOptions topt;
    topt.threads = threads;
    topt.offered_rate = gen.total_rate();
    topt.block_size = EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, nodes));

    ServingPlane untraced(tree, base, topt);
    const auto t_plain = Clock::now();
    untraced.Serve(stream);
    const double plain_ms = MillisSince(t_plain);

    topt.trace = true;  // default seed and sampling shift
    ServingPlane traced(tree, base, topt);
    const auto t_traced = Clock::now();
    traced.Serve(stream);
    const double traced_ms = MillisSince(t_traced);

    if (!(traced.metrics() == untraced.metrics())) {
      std::printf("FATAL: tracing changed the serving outcome\n");
      return 1;
    }
    const double plain_rps = static_cast<double>(requests) / plain_ms * 1e3;
    const double traced_rps = static_cast<double>(requests) / traced_ms * 1e3;
    const double overhead_pct = 100.0 * (traced_ms - plain_ms) / plain_ms;
    std::printf(
        "untraced %.2f Mreq/s, traced %.2f Mreq/s (%+.2f%% time, %zu trace\n"
        "records), metrics bit-identical.%s\n\n",
        plain_rps / 1e6, traced_rps / 1e6, overhead_pct,
        traced.trace().size(),
        overhead_pct > 3.0 ? "\nWARNING: tracing overhead exceeds 3%" : "");
    json.BeginRun();
    json.Add("record", std::string("trace_overhead"));
    json.Add("sample_shift", topt.trace_sample_shift);
    json.Add("untraced_req_per_sec", plain_rps);
    json.Add("traced_req_per_sec", traced_rps);
    json.Add("overhead_pct", overhead_pct);
    json.Add("trace_records",
             static_cast<long long>(traced.trace().size()));

    // The first traced walks, one JSON line per event — enough to read a
    // request's whole story (arrival, hops, admission draws, disposition)
    // straight out of the artifact.
    Timeline sample("trace_sample");
    const std::size_t dump =
        std::min<std::size_t>(200, traced.trace().size());
    for (std::size_t i = 0; i < dump; ++i) {
      const TraceEvent& ev = traced.trace()[i];
      sample.BeginRecord();
      sample.Add("req_id", ev.req_id);
      sample.Add("seq", static_cast<int>(ev.seq));
      sample.Add("kind", std::string(TraceEventKindName(ev.kind)));
      sample.Add("node", static_cast<long long>(ev.node));
      sample.Add("aux", static_cast<int>(ev.aux));
      sample.Add("detail", ev.detail);
    }
    const char* tr_out = "BENCH_trace_sample.jsonl";
    std::printf("%s %s (%zu of %zu trace events)\n\n",
                sample.WriteJsonLines(tr_out) ? "wrote" : "FAILED to write",
                tr_out, dump, traced.trace().size());
  }

  bench::WriteArtifact(json, "BENCH_serving.json");
  std::printf(
      "\nReading: the data plane turns the control plane's rate quotas into\n"
      "request-level reality — WebWave's placement cuts the home server's\n"
      "load by orders of magnitude at >90%% cache hit ratio, demand-blind\n"
      "uniform replication barely dents it, and the closed loop keeps the\n"
      "balance as the hot spot rotates, with no oracle demand knowledge\n"
      "anywhere in the loop.\n");
  return 0;
}
