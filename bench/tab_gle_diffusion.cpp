// E6 — §2: the diffusion method converges to GLE at rate γ (Cybenko), on
// the topologies the cited literature analyzes.
//
// Columns: spectral γ of the diffusion matrix, the measured per-step decay
// rate of ‖x(t) − u‖ (fitted a·γ^t), whether Cybenko's bound
// ‖D^t x − u‖ <= γ^t ‖x(0) − u‖ held at every step, and steps to 1e-6.
// Includes the k-ary n-cube with the Xu–Lau optimal α (paper ref. [29]).
#include <cstdio>
#include <functional>
#include <string>

#include "core/diffusion.h"
#include "stats/fit.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  std::printf("E6 / Section 2 — diffusion to global load equality (GLE)\n\n");

  struct Case {
    std::string name;
    std::function<UndirectedGraph()> make;
    double alpha;  // <= 0: degree-based
  };
  Rng tree_rng(7);
  const RoutingTree random_tree = MakeRandomTree(24, tree_rng);
  const std::vector<Case> cases = {
      {"ring n=16, a=0.25", [] { return MakeRingGraph(16); }, 0.25},
      {"path n=16, a=0.25", [] { return MakePathGraph(16); }, 0.25},
      {"torus 4x4, a=0.20", [] { return MakeTorusGraph(4, 4); }, 0.20},
      {"hypercube d=4, a=1/5", [] { return MakeHypercubeGraph(4); }, 0.2},
      {"4-ary 2-cube, XuLau a*",
       [] { return MakeKAryNCubeGraph(4, 2); },
       OptimalAlphaKAryNCube(4, 2)},
      {"8-ary 2-cube, XuLau a*",
       [] { return MakeKAryNCubeGraph(8, 2); },
       OptimalAlphaKAryNCube(8, 2)},
      {"random tree n=24, degree",
       [&] { return GraphFromTree(random_tree); },
       -1},
      {"complete n=8, a=1/8", [] { return MakeCompleteGraph(8); }, 0.125},
  };

  AsciiTable table({"graph", "n", "alpha", "spectral gamma",
                    "measured gamma", "Cybenko bound", "steps to 1e-6"});
  Rng rng(11);
  for (const Case& c : cases) {
    const UndirectedGraph g = c.make();
    const DiffusionMatrix d = c.alpha > 0
                                  ? DiffusionMatrix::Uniform(g, c.alpha)
                                  : DiffusionMatrix::DegreeBased(g);
    std::vector<double> x0(static_cast<std::size_t>(g.size()));
    for (auto& v : x0) v = rng.NextDouble(0, 100);
    const DiffusionRun run = RunDiffusion(d, x0, 1e-6, 100000);
    const double gamma = d.SpectralGamma();
    std::vector<double> fit_window(run.distances);
    if (fit_window.size() > 400) fit_window.resize(400);
    const double measured = fit_window.size() >= 5
                                ? FitExponential(fit_window).gamma
                                : 0.0;
    table.AddRow({c.name, std::to_string(g.size()),
                  AsciiTable::Num(c.alpha > 0 ? c.alpha : -1, 4),
                  AsciiTable::Num(gamma, 6), AsciiTable::Num(measured, 6),
                  CybenkoBoundHolds(run, gamma, 1e-7) ? "holds" : "VIOLATED",
                  std::to_string(run.distances.size() - 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  // The asynchronous side of §2 (Bertsekas–Tsitsiklis bounded delay):
  // convergence survives random activation and stale views, just slower.
  AsciiTable async_table(
      {"torus 4x4, a=0.20", "activation", "max delay", "steps to 1e-6"});
  {
    const UndirectedGraph g = MakeTorusGraph(4, 4);
    std::vector<double> x0(16);
    Rng arng(3);
    for (auto& v : x0) v = arng.NextDouble(0, 100);
    for (const auto& [act, delay] :
         std::vector<std::pair<double, int>>{
             {1.0, 0}, {0.7, 1}, {0.5, 2}, {0.25, 4}}) {
      AsyncDiffusionOptions aopt;
      aopt.activation = act;
      aopt.max_delay = delay;
      const DiffusionRun run = RunAsyncDiffusion(g, 0.2, x0, aopt, 1e-6, 100000);
      async_table.AddRow({"async", AsciiTable::Num(act, 2),
                          std::to_string(delay),
                          run.reached_tolerance
                              ? std::to_string(run.distances.size() - 1)
                              : "no convergence"});
    }
  }
  std::printf("asynchronous diffusion (edge-atomic transfers):\n%s\n",
              async_table.Render().c_str());
  std::printf(
      "Reading: measured decay tracks the spectral gamma and the bound\n"
      "holds on every topology; the Xu-Lau alpha* minimizes gamma for the\n"
      "k-ary n-cube (alpha = -1 means the degree-based policy); bounded\n"
      "staleness and random activation slow convergence but never break it.\n");
  return 0;
}
