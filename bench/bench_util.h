// Helpers shared by the standalone bench executables: wall-clock deltas
// and environment-variable knobs.  Header-only so bench/*.cpp stay
// single-file programs (the CMake glob turns every .cpp here into its own
// executable).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/bench_json.h"

namespace webwave {
namespace bench {

inline double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Integer knob: unset or empty means `fallback`.
inline int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' ? std::atoi(env) : fallback;
}

// Wide-range knob for counts that can exceed int (request volumes).
inline long long EnvLong(const char* name, long long fallback) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' ? std::atoll(env) : fallback;
}

// Boolean knob: set, non-empty and not starting with '0' means on.
inline bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// The one way a bench emits its JSON artifact: write, then report the
// outcome on stdout in the exact phrasing CI's baseline checker and the
// humans reading bench logs both expect.
inline bool WriteArtifact(const BenchJson& json, const char* path) {
  const bool ok = json.WriteFile(path);
  std::printf("%s %s\n", ok ? "wrote" : "FAILED to write", path);
  return ok;
}

// Worker-thread knob shared by every tab_* bench: the bench-specific
// variable wins, then the global WEBWAVE_THREADS, then `fallback` — so a
// multi-core CI box can exercise thread scaling across all benches with
// one setting and no code edits (bit-identity of the threaded paths makes
// the numbers safe to compare).
inline int EnvThreads(const char* specific, int fallback = 0) {
  return EnvInt(specific, EnvInt("WEBWAVE_THREADS", fallback));
}

}  // namespace bench
}  // namespace webwave
