// Helpers shared by the standalone bench executables: wall-clock deltas
// and environment-variable knobs.  Header-only so bench/*.cpp stay
// single-file programs (the CMake glob turns every .cpp here into its own
// executable).
#pragma once

#include <chrono>
#include <cstdlib>

namespace webwave {
namespace bench {

inline double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Integer knob: unset or empty means `fallback`.
inline int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' ? std::atoi(env) : fallback;
}

// Boolean knob: set, non-empty and not starting with '0' means on.
inline bool EnvFlag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace bench
}  // namespace webwave
