// E3 — Figure 6: WebWave converges to TLB exponentially fast.
//
// (a) A hand-crafted 14-node routing tree whose spontaneous rates force a
//     variety of folds (singletons, a chain fold, multi-child folds, a
//     non-GLE assignment) — reconstructed in the spirit of the paper's
//     figure, whose exact rates are not recoverable from the scan.
// (b) The Euclidean distance from WebWave's load vector to the WebFold
//     TLB assignment, per iteration, plus the fitted a·γ^t model that the
//     paper fits with S-PLUS.
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "stats/fit.h"
#include "tree/render.h"
#include "tree/routing_tree.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  // 0 <- {1,2,3}; 1 <- {4,5}; 2 <- {6}; 3 <- {7,8}; 4 <- {9};
  // 6 <- {10,11}; 8 <- {12,13}
  const RoutingTree tree = RoutingTree::FromParents(
      {kNoNode, 0, 0, 0, 1, 1, 2, 3, 3, 4, 6, 6, 8, 8});
  const std::vector<double> spont = {0, 2, 12, 30, 6, 4, 20,
                                     10, 1, 40, 16, 12, 9, 5};

  const WebFoldResult target = WebFold(tree, spont);
  std::printf("E3 / Figure 6(a) — routing tree, rates and TLB assignment\n\n");
  std::printf("%s\n", RenderTree(tree, [&](NodeId v) {
                        return "E=" + AsciiTable::Num(spont[v], 0) +
                               " TLB=" + AsciiTable::Num(target.load[v], 2) +
                               " fold=" + std::to_string(target.fold_index[v]);
                      }).c_str());
  std::printf("Folds: %zu; GLE would be %.2f per node; TLB max is %.2f.\n\n",
              target.folds.size(), TotalRate(spont) / tree.size(),
              target.load[tree.root()]);

  WebWaveOptions options;  // synchronous, fresh gossip: the paper's setup
  WebWaveSimulator sim(tree, spont, options);
  const std::vector<double> trajectory =
      sim.RunUntil(target.load, 1e-7, 5000);

  std::printf("Figure 6(b) — Euclidean distance to TLB per iteration\n\n");
  std::vector<std::pair<std::string, double>> plot;
  for (std::size_t t = 0; t < trajectory.size(); ++t) {
    if (t <= 10 || (t <= 60 && t % 5 == 0) || t % 25 == 0 ||
        t + 1 == trajectory.size())
      plot.push_back({"t=" + std::to_string(t), trajectory[t]});
    if (plot.size() > 40) break;
  }
  std::printf("%s\n", AsciiBarChart(plot, 48).c_str());

  std::vector<double> fit_window(trajectory);
  if (fit_window.size() > 300) fit_window.resize(300);
  const ExponentialFit fit = FitExponential(fit_window);
  std::printf("Converged to within 1e-7 after %zu iterations.\n",
              trajectory.size() - 1);
  std::printf("Nonlinear fit d(t) = a * gamma^t  (cf. paper Section 5.1):\n");
  std::printf("  a     = %.4f  (SE %.4f)\n", fit.a, fit.stderr_a);
  std::printf("  gamma = %.6f (SE %.6f)\n", fit.gamma, fit.stderr_gamma);
  std::printf("\nFinal served rates vs TLB:\n");
  AsciiTable table({"node", "E_i", "WebWave L_i", "TLB L_i"});
  for (NodeId v = 0; v < tree.size(); ++v)
    table.AddRow({std::to_string(v), AsciiTable::Num(spont[v], 0),
                  AsciiTable::Num(sim.served()[v], 3),
                  AsciiTable::Num(target.load[v], 3)});
  std::printf("%s", table.Render().c_str());
  return 0;
}
