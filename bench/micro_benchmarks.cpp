// E7 — micro-benchmarks (google-benchmark).
//
// The paper's architectural feasibility argument rests on cheap packet
// filtering (Engler & Kaashoek's DPF: 1.51 µs per packet on 1996
// hardware).  BM_PacketFilterIntercept measures our filter's per-packet
// decision cost; the rest measure the algorithmic building blocks so the
// simulator's own scalability is on record: WebFold (offline TLB),
// one WebWave diffusion step, a discrete-event simulator round-trip, and
// Zipf sampling.
#include <benchmark/benchmark.h>

#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "doc/catalog.h"
#include "net/simulator.h"
#include "proto/packet_filter.h"
#include "stats/zipf.h"
#include "tree/builders.h"
#include "util/rng.h"

namespace webwave {
namespace {

void BM_PacketFilterIntercept(benchmark::State& state) {
  const int docs = static_cast<int>(state.range(0));
  PacketFilter filter(docs);
  Rng rng(1);
  for (DocId d = 0; d < docs; d += 3) filter.Install(d, 0.5);
  DocId d = 0;
  double u = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Intercept(d, u));
    d = (d + 7) % docs;
    u = u < 0.5 ? u + 0.3 : u - 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketFilterIntercept)->Arg(64)->Arg(4096)->Arg(262144);

void BM_WebFold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WebFold(tree, spont));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WebFold)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TlbMaxMeanRegions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(43);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTlbByMaxMeanRegions(tree, spont));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TlbMaxMeanRegions)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WebWaveStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(44);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  WebWaveSimulator sim(tree, spont);
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WebWaveStep)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EventSimulatorRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      sim.ScheduleIn(i, [&counter] { ++counter; });
    sim.RunAll();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSimulatorRoundTrip);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(static_cast<int>(state.range(0)), 1.0);
  Rng rng(45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

}  // namespace
}  // namespace webwave
