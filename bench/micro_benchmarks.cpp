// E7 — micro-benchmarks (google-benchmark).
//
// The paper's architectural feasibility argument rests on cheap packet
// filtering (Engler & Kaashoek's DPF: 1.51 µs per packet on 1996
// hardware).  BM_PacketFilterIntercept measures our filter's per-packet
// decision cost; the rest measure the algorithmic building blocks so the
// simulator's own scalability is on record: WebFold (offline TLB),
// one WebWave diffusion step, a discrete-event simulator round-trip, and
// Zipf sampling.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/diffusion.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "core/webwave_batch.h"
#include "doc/catalog.h"
#include "net/simulator.h"
#include "proto/packet_filter.h"
#include "stats/zipf.h"
#include "tree/builders.h"
#include "util/bench_json.h"
#include "util/rng.h"

namespace webwave {
namespace {

// The pre-SoA WebWave step, kept verbatim as a measurement baseline: a
// per-node vector of (neighbor, estimate) pairs scanned linearly for
// every edge, a deque of full served-vector copies for gossip history,
// and a freshly allocated delta vector per step.  BM_WebWaveStepLegacy /
// BM_WebWaveStep records the speedup of the edge-indexed layout in
// BENCH_webwave.json.
class LegacyWebWaveStepper {
 public:
  LegacyWebWaveStepper(const RoutingTree& tree, std::vector<double> spont)
      : tree_(tree), served_(tree.size(), 0.0) {
    const int n = tree.size();
    double total = 0;
    for (const double e : spont) total += e;
    served_[static_cast<std::size_t>(tree.root())] = total;
    forwarded_.assign(static_cast<std::size_t>(n), 0.0);
    for (const NodeId v : tree.postorder()) {
      double arrive = spont[static_cast<std::size_t>(v)];
      for (const NodeId c : tree.children(v))
        arrive += forwarded_[static_cast<std::size_t>(c)];
      forwarded_[static_cast<std::size_t>(v)] =
          arrive - served_[static_cast<std::size_t>(v)];
    }
    for (NodeId v = 0; v < n; ++v) {
      if (tree.is_root(v)) continue;
      Edge e;
      e.parent = tree.parent(v);
      e.child = v;
      e.alpha = 1.0 / (1.0 + std::max(tree.degree(e.parent), tree.degree(v)));
      edges_.push_back(e);
    }
    estimates_.assign(static_cast<std::size_t>(n), {});
    for (const Edge& e : edges_) {
      estimates_[static_cast<std::size_t>(e.parent)].push_back({e.child, 0});
      estimates_[static_cast<std::size_t>(e.child)].push_back({e.parent, 0});
    }
    history_.push_back(served_);
    RefreshEstimates();
  }

  void Step() {
    std::vector<double> delta(edges_.size(), 0.0);
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      const Edge& e = edges_[k];
      const double lp = served_[static_cast<std::size_t>(e.parent)];
      const double lc = served_[static_cast<std::size_t>(e.child)];
      const double parent_view = Estimate(e.parent, e.child);
      const double child_view = Estimate(e.child, e.parent);
      double d = 0;
      if (lp > parent_view) {
        d = std::min(e.alpha * (lp - parent_view),
                     forwarded_[static_cast<std::size_t>(e.child)]);
      } else if (lc > child_view) {
        d = -std::min(e.alpha * (lc - child_view), lc);
      }
      delta[k] = d;
    }
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      const Edge& e = edges_[k];
      double d = delta[k];
      if (d == 0) continue;
      const std::size_t p = static_cast<std::size_t>(e.parent);
      const std::size_t c = static_cast<std::size_t>(e.child);
      if (d > 0) {
        d = std::min({d, forwarded_[c], served_[p]});
        if (d <= 0) continue;
        served_[p] -= d;
        served_[c] += d;
        forwarded_[c] -= d;
      } else {
        const double up = std::min(-d, served_[c]);
        if (up <= 0) continue;
        served_[c] -= up;
        served_[p] += up;
        forwarded_[c] += up;
      }
    }
    history_.push_back(served_);
    while (history_.size() > 1) history_.pop_front();
    RefreshEstimates();
  }

 private:
  struct Edge {
    NodeId parent;
    NodeId child;
    double alpha;
  };

  double Estimate(NodeId a, NodeId b) const {
    for (const auto& [node, load] : estimates_[static_cast<std::size_t>(a)])
      if (node == b) return load;
    return 0;
  }

  void RefreshEstimates() {
    const std::vector<double>& view = history_.back();
    for (auto& per_node : estimates_)
      for (auto& [neighbor, load] : per_node)
        load = view[static_cast<std::size_t>(neighbor)];
  }

  const RoutingTree& tree_;
  std::vector<double> served_;
  std::vector<double> forwarded_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<NodeId, double>>> estimates_;
  std::deque<std::vector<double>> history_;
};

void BM_PacketFilterIntercept(benchmark::State& state) {
  const int docs = static_cast<int>(state.range(0));
  PacketFilter filter(docs);
  Rng rng(1);
  for (DocId d = 0; d < docs; d += 3) filter.Install(d, 0.5);
  DocId d = 0;
  double u = 0.25;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Intercept(d, u));
    d = (d + 7) % docs;
    u = u < 0.5 ? u + 0.3 : u - 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketFilterIntercept)->Arg(64)->Arg(4096)->Arg(262144);

void BM_WebFold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WebFold(tree, spont));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WebFold)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TlbMaxMeanRegions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(43);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTlbByMaxMeanRegions(tree, spont));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TlbMaxMeanRegions)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WebWaveStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(44);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  WebWaveSimulator sim(tree, spont);
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WebWaveStep)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

void BM_WebWaveStepLegacy(benchmark::State& state) {
  // Identical workload to BM_WebWaveStep, pre-refactor data layout.
  const int n = static_cast<int>(state.range(0));
  Rng rng(44);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  LegacyWebWaveStepper sim(tree, spont);
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WebWaveStepLegacy)->Arg(10000)->Arg(100000);

void BM_BatchWebWaveStep(benchmark::State& state) {
  // Catalog of documents as batched lanes over one shared tree; items are
  // (node, document) lane entries per step.
  const int n = static_cast<int>(state.range(0));
  const int docs = static_cast<int>(state.range(1));
  Rng rng(46);
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (auto& lane : lanes) {
    lane.resize(static_cast<std::size_t>(n));
    for (auto& e : lane) e = rng.NextDouble(0, 10);
  }
  BatchWebWaveSimulator batch(tree, std::move(lanes));
  for (auto _ : state) {
    batch.Step();
  }
  state.SetItemsProcessed(state.iterations() * n * docs);
}
BENCHMARK(BM_BatchWebWaveStep)
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({100000, 64});

// The document-block width sweep behind WebWaveOptions::lane_block's
// default: the same catalog stepped at B = 1 (the old document-major
// layout), 4, 8 and 16, one shared tree and one shared edge build across
// all engines.  Hand-timed (not google-benchmark) so the records land in
// BENCH_step_blocked.json with explicit fields CI and the ROADMAP can
// diff; per-lane results are bit-identical across B, so the timings are
// directly comparable.  `modeled_bytes_per_lane_step` is the streamed
// traffic the layout implies: 104 B of lane state (phase-1 reads + delta
// round trip + phase-2 read-modify-writes) plus 16 B of edge metadata
// (two int32 endpoints + one double alpha) amortized over B lanes.
void RunBlockedStepSweep() {
  const bool smoke = bench::EnvFlag("WEBWAVE_SMOKE");
  const std::vector<int> node_counts =
      smoke ? std::vector<int>{10000, 100000}
            : std::vector<int>{100000, 1000000};
  const int docs = 16;
  BenchJson json("micro_step_blocked");
  std::printf("\nblocked-step sweep (docs=%d%s):\n", docs,
              smoke ? ", WEBWAVE_SMOKE shapes" : "");
  for (const int nodes : node_counts) {
    Rng rng(46);
    const RoutingTree tree = MakeRandomTree(nodes, rng);
    const internal::SharedEdgeArrays edges =
        internal::BuildSharedEdgeArrays(tree, WebWaveOptions{});
    std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
    for (auto& lane : lanes) {
      lane.resize(static_cast<std::size_t>(nodes));
      for (auto& e : lane) e = rng.NextDouble(0, 10);
    }
    const int steps = nodes >= 1000000 ? 4 : (nodes >= 100000 ? 20 : 50);
    double base_ms = 0;
    for (const int B : {1, 4, 8, 16}) {
      WebWaveOptions opt;
      opt.lane_block = B;
      BatchWebWaveSimulator batch(tree, lanes, opt, edges);
      batch.Step();  // touch everything once before timing
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < steps; ++s) batch.Step();
      const double ms = bench::MillisSince(t0) / steps;
      if (B == 1) base_ms = ms;
      const double lane_steps_per_sec =
          static_cast<double>(nodes) * docs / (ms / 1000.0);
      std::printf(
          "  n=%-8d B=%-3d %8.2f ms/step  %7.1f Mlane-steps/s  %5.2fx vs B=1\n",
          nodes, B, ms, lane_steps_per_sec / 1e6, base_ms / ms);
      json.BeginRun();
      json.Add("nodes", nodes);
      json.Add("docs", docs);
      json.Add("lane_block", B);
      json.Add("ms_per_step", ms);
      json.Add("lane_steps_per_sec", lane_steps_per_sec);
      json.Add("speedup_vs_doc_major", base_ms / ms);
      json.Add("modeled_bytes_per_lane_step", 104.0 + 16.0 / B);
    }
  }
  bench::WriteArtifact(json, "BENCH_step_blocked.json");
}

void BM_DiffusionApplyDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(47);
  const UndirectedGraph g = GraphFromTree(MakeRandomTree(n, rng));
  const DiffusionMatrix d = DiffusionMatrix::DegreeBased(g);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.NextDouble(0, 100);
  for (auto _ : state) {
    x = d.Apply(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DiffusionApplyDense)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DiffusionApplySparse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(47);
  const UndirectedGraph g = GraphFromTree(MakeRandomTree(n, rng));
  const SparseDiffusionMatrix d = SparseDiffusionMatrix::DegreeBased(g);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.NextDouble(0, 100);
  std::vector<double> y;
  for (auto _ : state) {
    d.ApplyInto(x, y);
    std::swap(x, y);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DiffusionApplySparse)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(100000)
    ->Arg(1000000);

void BM_EventSimulatorRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      sim.ScheduleIn(i, [&counter] { ++counter; });
    sim.RunAll();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventSimulatorRoundTrip);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(static_cast<int>(state.range(0)), 1.0);
  Rng rng(45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000);

}  // namespace
}  // namespace webwave

// Custom main: unless the caller asks otherwise, append a JSON record of
// every run to BENCH_webwave.json so the perf trajectory of the hot paths
// is captured by default.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  std::string out = "--benchmark_out=BENCH_webwave.json";
  std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The lane-block sweep runs after the registered benchmarks (skip with
  // WEBWAVE_NO_BLOCK_SWEEP=1 when filtering for a single micro-benchmark).
  using namespace webwave;
  if (!bench::EnvFlag("WEBWAVE_NO_BLOCK_SWEEP")) RunBlockedStepSweep();
  return 0;
}
