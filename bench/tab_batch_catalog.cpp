// E9 — batched multi-document diffusion at scale.
//
// The paper's feasibility argument is per-server local work; the engine's
// feasibility argument is wall-clock per simulated period.  This table
// steps a whole catalog of hot documents as BatchWebWaveSimulator lanes
// over one shared random routing tree, up to 10⁶ nodes × 64 documents
// (64M load lanes per step), and records setup cost, per-step cost and
// lane throughput.  Per-lane behaviour is bit-identical to running one
// WebWaveSimulator per document (asserted by webwave_batch_test); only
// the memory layout is shared.
//
// Emits BENCH_batch_catalog.json (one record per configuration) so CI can
// archive the numbers per PR.  With WEBWAVE_SMOKE set (non-empty, not
// "0") only the 10⁴-node × 8-document configuration runs — the CI smoke
// job's per-PR perf probe.  WEBWAVE_BATCH_THREADS (or the global
// WEBWAVE_THREADS) overrides the worker count (default 0 = one per
// hardware thread); WEBWAVE_BATCH_BLOCK overrides the document block
// width (default: WebWaveOptions::lane_block).  The full run repeats the
// 10⁶ × 64 configuration at B = 1 — the old document-major layout — so
// the blocked kernel's speedup is measured side by side on identical
// (bit-identical, in fact) work.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/load_model.h"
#include "core/webwave_batch.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/bench_json.h"
#include "util/rng.h"

namespace webwave {
namespace {

std::vector<std::vector<double>> ZipfLanes(int nodes, int docs, Rng& rng) {
  // Document d's total demand follows a Zipf(1) catalog profile, spread
  // over random nodes — hot documents everywhere, cold ones sparse.
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (int d = 0; d < docs; ++d) {
    auto& lane = lanes[static_cast<std::size_t>(d)];
    lane.assign(static_cast<std::size_t>(nodes), 0.0);
    const double doc_weight = 1000.0 / (1 + d);
    for (auto& e : lane)
      if (rng.NextBernoulli(0.5)) e = rng.NextDouble(0, doc_weight);
  }
  return lanes;
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  using bench::MillisSince;
  using Clock = std::chrono::steady_clock;
  const bool smoke = bench::EnvFlag("WEBWAVE_SMOKE");
  const int threads = bench::EnvThreads("WEBWAVE_BATCH_THREADS");
  const int default_block =
      bench::EnvInt("WEBWAVE_BATCH_BLOCK", WebWaveOptions{}.lane_block);
  std::printf(
      "E9 — batched multi-document WebWave: one shared tree, one load lane\n"
      "per document, lanes interleaved in blocks of B documents; steps the\n"
      "whole catalog in a single pass per period.  lane-steps/s counts\n"
      "(node, document) pairs advanced per second.%s\n\n",
      smoke ? "\n(WEBWAVE_SMOKE: reduced configuration)" : "");

  AsciiTable table({"nodes", "docs", "B", "lanes", "setup ms", "ms/step",
                    "Mlane-steps/s", "max load after"});
  BenchJson json("tab_batch_catalog");
  struct Config {
    int nodes;
    int docs;
    int block;
  };
  // The trailing {1e6, 64, 1} row re-runs the flagship configuration in
  // the document-major layout for the blocked-vs-lane comparison.
  const std::vector<Config> configs =
      smoke ? std::vector<Config>{{10000, 8, default_block}}
            : std::vector<Config>{
                  {10000, 16, default_block},  {10000, 64, default_block},
                  {100000, 16, default_block}, {100000, 64, default_block},
                  {1000000, 16, default_block}, {1000000, 64, default_block},
                  {1000000, 64, 1},
              };
  for (const auto& [nodes, docs, block] : configs) {
    Rng rng(static_cast<std::uint64_t>(nodes) + docs);
    const RoutingTree tree = MakeRandomTree(nodes, rng);
    std::vector<std::vector<double>> lanes = ZipfLanes(nodes, docs, rng);

    WebWaveOptions opt;
    opt.threads = threads;
    opt.lane_block = block;
    const auto t_setup = Clock::now();
    BatchWebWaveSimulator batch(tree, std::move(lanes), opt);
    const double setup_ms = MillisSince(t_setup);

    const int steps = nodes >= 1000000 ? 5 : 20;
    const auto t_run = Clock::now();
    for (int s = 0; s < steps; ++s) batch.Step();
    const double run_ms = MillisSince(t_run);
    const double ms_per_step = run_ms / steps;
    const double lane_steps_per_sec =
        static_cast<double>(nodes) * docs * steps / (run_ms / 1000.0);
    const double max_load = batch.MaxNodeLoad();

    table.AddRow({AsciiTable::Int(nodes), AsciiTable::Int(docs),
                  AsciiTable::Int(batch.lane_block()),
                  AsciiTable::Int(static_cast<long long>(nodes) * docs),
                  AsciiTable::Num(setup_ms, 1), AsciiTable::Num(ms_per_step, 2),
                  AsciiTable::Num(lane_steps_per_sec / 1e6, 1),
                  AsciiTable::Num(max_load, 1)});
    json.BeginRun();
    json.Add("nodes", nodes);
    json.Add("docs", docs);
    json.Add("lane_block", batch.lane_block());
    json.Add("threads", batch.thread_count());
    json.Add("setup_ms", setup_ms);
    json.Add("ms_per_step", ms_per_step);
    json.Add("lane_steps_per_sec", lane_steps_per_sec);
    json.Add("max_node_load", max_load);
  }
  std::printf("%s\n", table.Render().c_str());

  bench::WriteArtifact(json, "BENCH_batch_catalog.json");
  std::printf(
      "\nReading: per-step cost scales linearly in lanes = nodes x docs; the\n"
      "shared edge arrays amortize topology across the catalog, so 64 hot\n"
      "documents on a million-node tree advance one diffusion period in\n"
      "seconds of wall clock, with no directory and no global state.\n");
  return 0;
}
