// E9 — batched multi-document diffusion at scale.
//
// The paper's feasibility argument is per-server local work; the engine's
// feasibility argument is wall-clock per simulated period.  This table
// steps a whole catalog of hot documents as BatchWebWaveSimulator lanes
// over one shared random routing tree, up to 10⁶ nodes × 64 documents
// (64M load lanes per step), and records setup cost, per-step cost and
// lane throughput.  Per-lane behaviour is bit-identical to running one
// WebWaveSimulator per document (asserted by webwave_batch_test); only
// the memory layout is shared.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/load_model.h"
#include "core/webwave_batch.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"

namespace webwave {
namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::vector<double>> ZipfLanes(int nodes, int docs, Rng& rng) {
  // Document d's total demand follows a Zipf(1) catalog profile, spread
  // over random nodes — hot documents everywhere, cold ones sparse.
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (int d = 0; d < docs; ++d) {
    auto& lane = lanes[static_cast<std::size_t>(d)];
    lane.assign(static_cast<std::size_t>(nodes), 0.0);
    const double doc_weight = 1000.0 / (1 + d);
    for (auto& e : lane)
      if (rng.NextBernoulli(0.5)) e = rng.NextDouble(0, doc_weight);
  }
  return lanes;
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  using Clock = std::chrono::steady_clock;
  std::printf(
      "E9 — batched multi-document WebWave: one shared tree, one load lane\n"
      "per document; steps the whole catalog in a single pass per period.\n"
      "lane-steps/s counts (node, document) pairs advanced per second.\n\n");

  AsciiTable table({"nodes", "docs", "lanes", "setup ms", "ms/step",
                    "Mlane-steps/s", "max load after"});
  const std::vector<std::pair<int, int>> configs = {
      {10000, 16},   {10000, 64},   {100000, 16}, {100000, 64},
      {1000000, 16}, {1000000, 64},
  };
  for (const auto& [nodes, docs] : configs) {
    Rng rng(static_cast<std::uint64_t>(nodes) + docs);
    const RoutingTree tree = MakeRandomTree(nodes, rng);
    std::vector<std::vector<double>> lanes = ZipfLanes(nodes, docs, rng);

    const auto t_setup = Clock::now();
    BatchWebWaveSimulator batch(tree, std::move(lanes));
    const double setup_ms = MillisSince(t_setup);

    const int steps = nodes >= 1000000 ? 5 : 20;
    const auto t_run = Clock::now();
    for (int s = 0; s < steps; ++s) batch.Step();
    const double run_ms = MillisSince(t_run);
    const double ms_per_step = run_ms / steps;
    const double lane_steps_per_sec =
        static_cast<double>(nodes) * docs * steps / (run_ms / 1000.0);

    table.AddRow({AsciiTable::Int(nodes), AsciiTable::Int(docs),
                  AsciiTable::Int(static_cast<long long>(nodes) * docs),
                  AsciiTable::Num(setup_ms, 1), AsciiTable::Num(ms_per_step, 2),
                  AsciiTable::Num(lane_steps_per_sec / 1e6, 1),
                  AsciiTable::Num(batch.MaxNodeLoad(), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: per-step cost scales linearly in lanes = nodes x docs; the\n"
      "shared edge arrays amortize topology across the catalog, so 64 hot\n"
      "documents on a million-node tree advance one diffusion period in\n"
      "seconds of wall clock, with no directory and no global state.\n");
  return 0;
}
