// E13 — a rotating hot spot over a million-node tree, full catalog.
//
// The load-balance claims of the paper (and of DistCache-style follow-up
// work) only matter under shifting multi-object demand: a hot region that
// moves around the edge of the network while a whole catalog of documents
// diffuses.  This bench runs that scenario at production scale — 10⁶
// nodes × 64 document lanes — with the demand window sliding one eighth
// of the leaf ring per epoch.  Each epoch applies a sparse batch of
// demand events through BatchWebWaveSimulator::ApplyDemandEvents (cost
// proportional to the *changed* leaves, not the tree) and then advances a
// few diffusion periods on the threaded batch step.
//
// Emits BENCH_churn_batch.json (one record per epoch plus a config
// record) so CI and later sessions can diff the measured costs.
//
// Environment knobs (all optional, for smoke runs):
//   WEBWAVE_HOTSPOT_NODES   nodes (default 1000000)
//   WEBWAVE_HOTSPOT_DOCS    documents (default 64)
//   WEBWAVE_HOTSPOT_EPOCHS  rotation epochs (default 8, one revolution)
//   WEBWAVE_HOTSPOT_STEPS   diffusion steps per epoch (default 3)
//   WEBWAVE_HOTSPOT_THREADS worker threads (default: WEBWAVE_THREADS,
//                           then 0 = one per hardware thread)
//   WEBWAVE_HOTSPOT_BLOCK   document block width (default:
//                           WebWaveOptions::lane_block; 1 = the old
//                           document-major layout, for comparisons)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "sim/churn.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/bench_json.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  using bench::EnvInt;
  using bench::MillisSince;
  using Clock = std::chrono::steady_clock;

  const int nodes = EnvInt("WEBWAVE_HOTSPOT_NODES", 1000000);
  const int docs = EnvInt("WEBWAVE_HOTSPOT_DOCS", 64);
  const int epochs = EnvInt("WEBWAVE_HOTSPOT_EPOCHS", 8);
  const int steps_per_epoch = EnvInt("WEBWAVE_HOTSPOT_STEPS", 3);
  const int threads = bench::EnvThreads("WEBWAVE_HOTSPOT_THREADS");

  std::printf(
      "E13 — rotating hot spot at catalog scale: %d nodes x %d documents,\n"
      "hot window = 5%% of the leaves sliding 1/%d of the leaf ring per\n"
      "epoch; %d diffusion steps per epoch on the threaded batch engine.\n\n",
      nodes, docs, epochs, steps_per_epoch);

  Rng rng(static_cast<std::uint64_t>(nodes) + static_cast<std::uint64_t>(docs));
  const auto t_tree = Clock::now();
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  const double tree_ms = MillisSince(t_tree);

  ChurnScheduleOptions sched_opt;
  sched_opt.pattern = ChurnPattern::kRotatingHotSpot;
  sched_opt.doc_count = docs;
  sched_opt.base_rate = 1.0;
  sched_opt.hot_rate = 100.0;
  sched_opt.hot_fraction = 0.05;
  sched_opt.rotation_epochs = epochs;
  sched_opt.seed = 17;
  ChurnSchedule schedule(tree, sched_opt);

  WebWaveOptions opt;
  opt.threads = threads;
  opt.lane_block =
      EnvInt("WEBWAVE_HOTSPOT_BLOCK", WebWaveOptions{}.lane_block);
  const auto t_setup = Clock::now();
  BatchWebWaveSimulator batch(tree, schedule.Lanes(), opt);
  const double setup_ms = MillisSince(t_setup);
  std::printf("tree build %.0f ms, batch setup %.0f ms, %d worker thread(s)\n\n",
              tree_ms, setup_ms, batch.thread_count());

  BenchJson json("tab_rotating_hotspot");
  json.BeginRun();
  json.Add("record", std::string("config"));
  json.Add("nodes", nodes);
  json.Add("docs", docs);
  json.Add("epochs", epochs);
  json.Add("steps_per_epoch", steps_per_epoch);
  json.Add("threads", batch.thread_count());
  json.Add("lane_block", batch.lane_block());
  json.Add("tree_ms", tree_ms);
  json.Add("setup_ms", setup_ms);

  AsciiTable table({"epoch", "events", "apply ms", "ms/step",
                    "Mlane-steps/s", "max node load"});
  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::size_t events = 0;
    double apply_ms = 0;
    if (epoch > 0) {
      const auto t_events = Clock::now();
      const std::vector<DemandEvent> shift = schedule.NextEvents();
      events = shift.size();
      batch.ApplyDemandEvents(shift);
      apply_ms = MillisSince(t_events);
    }
    const auto t_run = Clock::now();
    for (int s = 0; s < steps_per_epoch; ++s) batch.Step();
    const double run_ms = MillisSince(t_run);
    const double ms_per_step = run_ms / steps_per_epoch;
    const double lane_steps_per_sec = static_cast<double>(nodes) * docs *
                                      steps_per_epoch / (run_ms / 1000.0);
    const double max_load = batch.MaxNodeLoad();

    table.AddRow({std::to_string(epoch),
                  AsciiTable::Int(static_cast<long long>(events)),
                  AsciiTable::Num(apply_ms, 1),
                  AsciiTable::Num(ms_per_step, 1),
                  AsciiTable::Num(lane_steps_per_sec / 1e6, 1),
                  AsciiTable::Num(max_load, 1)});
    json.BeginRun();
    json.Add("record", std::string("epoch"));
    json.Add("epoch", epoch);
    json.Add("events", static_cast<long long>(events));
    json.Add("apply_ms", apply_ms);
    json.Add("ms_per_step", ms_per_step);
    json.Add("lane_steps_per_sec", lane_steps_per_sec);
    json.Add("max_node_load", max_load);
  }
  std::printf("%s\n", table.Render().c_str());

  // One full invariant pass: every lane conserves its offered rate and
  // keeps NSS through a whole revolution of the hot window.
  batch.CheckInvariants(1e-5);
  std::printf("invariants hold across the full rotation (tol 1e-5)\n");

  bench::WriteArtifact(json, "BENCH_churn_batch.json");
  std::printf(
      "\nReading: an epoch's demand shift costs on the order of one or two\n"
      "diffusion steps (events touch only the leaves that changed, and only\n"
      "affected lanes re-project), and the catalog keeps advancing at the\n"
      "static benchmark's lane throughput — churn is on the fast path, not\n"
      "a rebuild.\n");
  return 0;
}
