// E16 — serving through failures: the fault-plane sweep.
//
// Part 1 crashes 1–20% of the non-home nodes (plus one whole-subtree
// regional outage) under three placements — WebWave-TLB, home-only,
// greedy-by-popularity — at the 10⁶ x 64 scale.  Every placement's
// snapshot is re-homed through the FaultProjector (crashed copies
// vanish, their quota spills to the nearest live ancestor copy) and the
// same request stream is served with failover routing against the same
// down set, measuring what outages actually cost: degraded hit ratio,
// failovers, dropped requests, backoff and max-server load.
//
// Part 2 runs the closed loop through a rolling subtree outage: one
// diffusion engine learns rotating demand purely from folded arrivals
// while a subtree dies, stays dead for a few epochs, recovers, and a
// different subtree dies — quota re-homes around each transition via the
// event-proportional fault refresh and the loop keeps learning.
//
// Two properties are asserted, not just plotted (the process exits
// nonzero on violation):
//   * re-homing conserves total quota rate through every projection and
//     every crash/recover epoch, and
//   * with 10% of nodes crashed, WebWave-TLB's max server load stays at
//     least 5x below home-only's on the identical degraded stream.
//
// Emits BENCH_faults.json.  Environment knobs:
//   WEBWAVE_SMOKE            reduced shapes (the CI smoke configuration)
//   WEBWAVE_FAULTS_NODES     part-1 nodes (default 1000000; smoke 8000)
//   WEBWAVE_FAULTS_DOCS      part-1 documents (default 64; smoke 8)
//   WEBWAVE_FAULTS_REQUESTS  part-1 requests (default 4000000; smoke 200000)
//   WEBWAVE_FAULTS_THREADS   workers (default: WEBWAVE_THREADS, then 1)
//   WEBWAVE_FAULTLOOP_NODES/_DOCS/_EPOCHS/_WINDOW  part-2 shape overrides
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/webwave_batch.h"
#include "fault/fault_projector.h"
#include "fault/fault_schedule.h"
#include "serve/closed_loop.h"
#include "serve/epoch_driver.h"
#include "serve/placement_policy.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/bench_json.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  using bench::EnvInt;
  using bench::MillisSince;
  using Clock = std::chrono::steady_clock;

  const bool smoke = bench::EnvFlag("WEBWAVE_SMOKE");
  const int nodes = EnvInt("WEBWAVE_FAULTS_NODES", smoke ? 8000 : 1000000);
  const int docs = EnvInt("WEBWAVE_FAULTS_DOCS", smoke ? 8 : 64);
  const long long requests =
      bench::EnvLong("WEBWAVE_FAULTS_REQUESTS", smoke ? 200000LL : 4000000LL);
  const int threads = bench::EnvThreads("WEBWAVE_FAULTS_THREADS", 1);

  std::printf(
      "E16 — serving through failures: %d nodes x %d documents x %lld\n"
      "requests; crash fractions swept 1%%–20%% plus one subtree outage,\n"
      "every placement re-homed through the FaultProjector and served with\n"
      "failover routing.  %d worker thread(s).%s\n\n",
      nodes, docs, requests, threads,
      smoke ? "\n(WEBWAVE_SMOKE: reduced configuration)" : "");

  BenchJson json("tab_faults");
  json.BeginRun();
  json.Add("record", std::string("config"));
  json.Add("nodes", nodes);
  json.Add("docs", docs);
  json.Add("requests", requests);
  json.Add("threads", threads);

  Rng rng(static_cast<std::uint64_t>(nodes) + docs + 1);
  const RoutingTree tree = MakeRandomTree(nodes, rng);

  // Part 1 — crash sweep over static placements -------------------------
  RequestGenerator gen(
      tree, docs,
      {RotatingHotSpotComponent(tree, docs, 1.0, 50.0, 0.05, 1, 8)}, 3001);
  const std::vector<std::vector<double>> lanes = gen.ExpectedLanes();
  std::vector<Request> stream;
  gen.NextBatch(static_cast<std::size_t>(requests), &stream);

  // One deterministic down set per scenario, shared by every placement so
  // the comparison is apples to apples.
  struct Scenario {
    const char* label;
    FaultPattern pattern;
    double fraction;  // 0 = the all-live reference
  };
  const Scenario scenarios[] = {
      {"none", FaultPattern::kSingleNodes, 0.0},
      {"single 1%", FaultPattern::kSingleNodes, 0.01},
      {"single 2%", FaultPattern::kSingleNodes, 0.02},
      {"single 5%", FaultPattern::kSingleNodes, 0.05},
      {"single 10%", FaultPattern::kSingleNodes, 0.10},
      {"single 20%", FaultPattern::kSingleNodes, 0.20},
      {"subtree", FaultPattern::kSubtreeOutage, 0.0},
  };
  std::vector<std::vector<NodeId>> down_sets;
  for (const Scenario& sc : scenarios) {
    if (sc.pattern == FaultPattern::kSingleNodes && sc.fraction == 0.0) {
      down_sets.emplace_back();
      continue;
    }
    FaultScheduleOptions fopt;
    fopt.pattern = sc.pattern;
    fopt.crash_fraction = sc.fraction;
    fopt.max_subtree_fraction = 0.05;
    fopt.outage_epochs = 1;
    fopt.start_epoch = 1;
    fopt.seed = 77;
    FaultSchedule sched(tree, fopt);
    sched.NextEvents();
    down_sets.push_back(sched.down());
  }

  std::vector<std::unique_ptr<PlacementPolicy>> policies;
  policies.push_back(std::make_unique<HomeOnlyPolicy>());
  policies.push_back(std::make_unique<GreedyByPopularityPolicy>(2));
  policies.push_back(std::make_unique<WebWaveTlbPolicy>());

  AsciiTable table({"placement", "faults", "down", "rehomed", "hit %",
                    "failovers", "dropped", "max load", "serve Mreq/s"});
  std::uint64_t home_max_at_tenth = 0, ww_max_at_tenth = 0;
  for (const auto& policy : policies) {
    const QuotaSnapshot base = policy->Place(tree, lanes);
    ServingOptions opt;
    opt.threads = threads;
    opt.offered_rate = gen.total_rate();
    opt.block_size = EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, nodes));

    for (std::size_t s = 0; s < down_sets.size(); ++s) {
      const Scenario& sc = scenarios[s];
      const std::vector<NodeId>& down = down_sets[s];
      QuotaSnapshot serve_snap = base;
      std::int64_t rehomed = 0;
      double project_ms = 0;
      if (!down.empty()) {
        const auto t_project = Clock::now();
        FaultProjector projector(tree);
        projector.SetDown(Span<const NodeId>(down.data(), down.size()));
        projector.Project(base);
        project_ms = MillisSince(t_project);
        if (!projector.ConservesTotalRate(base)) {
          std::printf(
              "FATAL: re-homing failed to conserve total rate (%s, %s)\n",
              policy->name().c_str(), sc.label);
          return 1;
        }
        rehomed = projector.evicted_cells();
        serve_snap = projector.clamped();
      }
      ServingPlane plane(tree, std::move(serve_snap), opt);
      plane.SetDownNodes(Span<const NodeId>(down.data(), down.size()));
      const auto t_serve = Clock::now();
      plane.Serve(stream);
      const double serve_ms = MillisSince(t_serve);
      const ServingMetrics& m = plane.metrics();
      if (sc.pattern == FaultPattern::kSingleNodes && sc.fraction == 0.10) {
        if (policy->name() == "home-only") home_max_at_tenth = m.MaxServed();
        if (policy->name() == "webwave-tlb") ww_max_at_tenth = m.MaxServed();
      }

      table.AddRow({policy->name(), sc.label,
                    AsciiTable::Int(static_cast<long long>(down.size())),
                    AsciiTable::Int(rehomed),
                    AsciiTable::Num(100 * m.HitRatio(), 1),
                    AsciiTable::Int(static_cast<long long>(m.failovers)),
                    AsciiTable::Int(static_cast<long long>(m.dropped_requests)),
                    AsciiTable::Int(static_cast<long long>(m.MaxServed())),
                    AsciiTable::Num(static_cast<double>(requests) / serve_ms /
                                        1e3,
                                    2)});
      json.BeginRun();
      json.Add("record", std::string("crash_sweep"));
      json.Add("placement", policy->name());
      json.Add("pattern", std::string(FaultPatternName(sc.pattern)));
      json.Add("crash_fraction", sc.fraction);
      json.Add("down_nodes", static_cast<long long>(down.size()));
      json.Add("rehomed_cells", static_cast<long long>(rehomed));
      json.Add("project_ms", project_ms);
      json.Add("hit_ratio", m.HitRatio());
      json.Add("mean_hops", m.MeanHops());
      json.Add("max_load", static_cast<long long>(m.MaxServed()));
      json.Add("failed_attempts", static_cast<long long>(m.failed_attempts));
      json.Add("failovers", static_cast<long long>(m.failovers));
      json.Add("dropped_requests",
               static_cast<long long>(m.dropped_requests));
      json.Add("drop_ratio", m.DropRatio());
      json.Add("backoff_slots", static_cast<long long>(m.backoff_slots));
      json.Add("serve_ms", serve_ms);
      json.Add("req_per_sec", static_cast<double>(requests) / serve_ms * 1e3);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  // The headline acceptance: with a tenth of the fleet dead, load-aware
  // placement plus re-homing still beats ship-it-all-home by 5x on the
  // hottest server.
  if (home_max_at_tenth == 0 ||
      5 * ww_max_at_tenth > home_max_at_tenth) {
    std::printf(
        "FATAL: WebWave-TLB max load not 5x below home-only with 10%% of\n"
        "nodes crashed (webwave %llu vs home %llu)\n",
        static_cast<unsigned long long>(ww_max_at_tenth),
        static_cast<unsigned long long>(home_max_at_tenth));
    return 1;
  }

  // Part 2 — the closed loop through a rolling subtree outage -----------
  const int loop_nodes =
      EnvInt("WEBWAVE_FAULTLOOP_NODES", smoke ? 4000 : 50000);
  const int loop_docs = EnvInt("WEBWAVE_FAULTLOOP_DOCS", smoke ? 8 : 16);
  const int loop_epochs = EnvInt("WEBWAVE_FAULTLOOP_EPOCHS", smoke ? 5 : 9);
  const std::size_t loop_window = static_cast<std::size_t>(
      EnvInt("WEBWAVE_FAULTLOOP_WINDOW", smoke ? 100000 : 1000000));
  const int rotation = 8;
  std::printf(
      "fault-plane closed loop: %d nodes x %d documents, %d epochs, %zu\n"
      "requests per window.  The engine learns from folded arrivals while\n"
      "whole subtrees crash, stay dead for three epochs and recover; quota\n"
      "re-homes via the event-proportional fault refresh each epoch.\n\n",
      loop_nodes, loop_docs, loop_epochs, loop_window);

  Rng loop_rng(101);
  const RoutingTree loop_tree = MakeRandomTree(loop_nodes, loop_rng);
  std::vector<std::vector<double>> guess(static_cast<std::size_t>(loop_docs));
  for (auto& lane : guess)
    lane.assign(static_cast<std::size_t>(loop_tree.size()), 1e-3);
  WebWaveOptions wopt;
  wopt.threads = threads;
  BatchWebWaveSimulator sim(loop_tree, std::move(guess), wopt);
  ArrivalFold fold(loop_tree.size(), loop_docs);

  FaultScheduleOptions lopt;
  lopt.pattern = FaultPattern::kSubtreeOutage;
  lopt.max_subtree_fraction = 0.05;
  lopt.outage_epochs = 3;
  lopt.start_epoch = 2;
  lopt.seed = 11;
  FaultSchedule faults(loop_tree, lopt);

  FaultProjector projector(loop_tree);
  EpochDriver driver(sim);  // default 12 diffusion steps per epoch
  driver.AttachFaults(&projector);

  AsciiTable loop_table({"epoch", "down", "events", "ww max", "home max",
                         "hit %", "failovers", "dropped"});
  std::vector<Request> window_buf;
  for (int epoch = 0; epoch < loop_epochs; ++epoch) {
    RequestGenerator wgen(
        loop_tree, loop_docs,
        {RotatingHotSpotComponent(loop_tree, loop_docs, 1.0, 50.0, 0.05,
                                  epoch, rotation)},
        500 + epoch);
    wgen.NextBatch(loop_window, &window_buf);
    const std::size_t half = loop_window / 2;
    ServingOptions sopt;
    sopt.threads = threads;
    sopt.offered_rate = wgen.total_rate();
    sopt.block_size =
        EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, loop_nodes));

    // First half from the stale copies (and last epoch's down set) feeds
    // the fold — arrivals keep flowing from clients under a dead subtree,
    // so the loop keeps learning straight through the outage.
    {
      ServingPlane stale(loop_tree, driver.serving(), sopt);
      driver.InstallDown(stale);
      stale.Serve(Span<Request>(window_buf.data(), half));
    }
    fold.Count(Span<Request>(window_buf.data(), half));

    // One call per control epoch: demand into the engine, diffusion,
    // snapshot re-sync, event-proportional re-homing (conservation
    // asserted inside the driver).
    std::vector<DemandEvent> churn =
        fold.Drain(static_cast<double>(half) / wgen.total_rate());
    const std::vector<FaultEvent> events = faults.NextEvents();
    driver.ApplyEpoch(Span<DemandEvent>(churn.data(), churn.size()),
                      Span<const FaultEvent>(events.data(), events.size()));

    const Span<Request> second(window_buf.data() + half, loop_window - half);
    ServingPlane wave(loop_tree, driver.serving(), sopt);
    driver.InstallDown(wave);
    const auto t_serve = Clock::now();
    wave.Serve(second);
    const double serve_ms = MillisSince(t_serve);
    ServingPlane home(
        loop_tree, HomeOnlyPolicy().Place(loop_tree, wgen.ExpectedLanes()),
        sopt);
    driver.InstallDown(home);
    home.Serve(second);

    if (wave.metrics().MaxServed() >= home.metrics().MaxServed()) {
      std::printf("FATAL: the fault-aware loop lost to home-only on max\n"
                  "load at epoch %d\n", epoch);
      return 1;
    }

    const ServingMetrics& m = wave.metrics();
    loop_table.AddRow(
        {std::to_string(epoch),
         AsciiTable::Int(static_cast<long long>(projector.down().size())),
         AsciiTable::Int(static_cast<long long>(events.size())),
         AsciiTable::Int(static_cast<long long>(m.MaxServed())),
         AsciiTable::Int(static_cast<long long>(home.metrics().MaxServed())),
         AsciiTable::Num(100 * m.HitRatio(), 1),
         AsciiTable::Int(static_cast<long long>(m.failovers)),
         AsciiTable::Int(static_cast<long long>(m.dropped_requests))});
    json.BeginRun();
    json.Add("record", std::string("fault_loop"));
    json.Add("epoch", epoch);
    json.Add("down_nodes", static_cast<long long>(projector.down().size()));
    json.Add("fault_events", static_cast<long long>(events.size()));
    json.Add("ww_max", static_cast<long long>(m.MaxServed()));
    json.Add("home_max",
             static_cast<long long>(home.metrics().MaxServed()));
    json.Add("hit_ratio", m.HitRatio());
    json.Add("failovers", static_cast<long long>(m.failovers));
    json.Add("dropped_requests", static_cast<long long>(m.dropped_requests));
    json.Add("drop_ratio", m.DropRatio());
    json.Add("serve_ms", serve_ms);
    json.Add("req_per_sec",
             static_cast<double>(loop_window - half) / serve_ms * 1e3);
  }
  std::printf("%s\n", loop_table.Render().c_str());

  bench::WriteArtifact(json, "BENCH_faults.json");
  std::printf(
      "\nReading: crashes move load, they do not destroy it — re-homing\n"
      "conserves the provisioned rate (asserted) while failover routing\n"
      "walks requests past the dead nodes.  Hit ratio degrades with the\n"
      "crash fraction and recovers with the fleet; load-aware placement\n"
      "keeps the hottest surviving server 5x below home-only even with a\n"
      "tenth of the fleet down, because spilled quota lands on the nearest\n"
      "surviving copies instead of the root.\n");
  return 0;
}
