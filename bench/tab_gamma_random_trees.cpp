// E4 — §5.1 in-text result: the convergence rate γ of WebWave on random
// trees, estimated by nonlinear least squares on d(t) = a·γ^t.
//
// The paper reports, "for a random tree with depth 9, γ = 0.830734 with a
// standard error of 0.005786" (fit with S-PLUS).  We sweep tree depth,
// fitting γ per trial with our Gauss–Newton estimator and aggregating over
// seeds.  The shapes to match: γ < 1 everywhere (exponential convergence)
// and γ growing with depth (deeper trees mix more slowly), with depth-9
// values in the paper's band.
#include <cstdio>
#include <string>

#include "core/webfold.h"
#include "core/webwave.h"
#include "stats/fit.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  std::printf("E4 / Section 5.1 — fitted convergence rate gamma, random trees\n");
  std::printf("model: d(t) = a * gamma^t, Gauss-Newton least squares\n");
  std::printf("paper reference point: depth 9 -> gamma = 0.830734 (SE 0.005786)\n\n");

  AsciiTable table({"depth", "nodes", "trials", "gamma (60 it)",
                    "gamma (full)", "fit SE (median)", "steps to 1e-6"});
  const int kTrials = 12;
  for (int depth = 1; depth <= 9; ++depth) {
    const int n = 10 * depth;  // keep shape roughly constant per level
    std::vector<double> gammas_early;  // the plotted-range fit (cf. Fig 6b)
    std::vector<double> gammas_full;   // asymptotic rate
    std::vector<double> fit_ses;
    std::vector<double> steps;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(1000 * static_cast<unsigned>(depth) +
              static_cast<unsigned>(trial));
      const RoutingTree tree = MakeRandomTreeOfHeight(n, depth, rng);
      std::vector<double> spont(static_cast<std::size_t>(n));
      for (auto& e : spont) e = rng.NextDouble(0, 100);
      const WebFoldResult target = WebFold(tree, spont);
      WebWaveOptions opt;
      opt.seed = rng.Next();
      WebWaveSimulator sim(tree, spont, opt);
      std::vector<double> traj = sim.RunUntil(target.load, 1e-6, 20000);
      steps.push_back(static_cast<double>(traj.size() - 1));
      if (traj.size() < 5) continue;
      std::vector<double> early(traj);
      if (early.size() > 60) early.resize(60);
      const ExponentialFit early_fit = FitExponential(early);
      gammas_early.push_back(early_fit.gamma);
      fit_ses.push_back(early_fit.stderr_gamma);
      if (traj.size() > 400) traj.resize(400);
      gammas_full.push_back(FitExponential(traj).gamma);
    }
    const Summary ge = Summarize(gammas_early);
    const Summary gf = Summarize(gammas_full);
    table.AddRow({std::to_string(depth), std::to_string(n),
                  std::to_string(gammas_early.size()),
                  AsciiTable::Num(ge.mean, 6), AsciiTable::Num(gf.mean, 6),
                  AsciiTable::Num(Quantile(fit_ses, 0.5), 6),
                  AsciiTable::Num(Summarize(steps).mean, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: gamma < 1 at every depth (exponential convergence) and\n"
      "increases with depth — deeper trees diffuse load more slowly.  The\n"
      "paper's 0.830734 +- 0.005786 for one depth-9 tree was fitted over\n"
      "the short range its plot shows; the 60-iteration column is the\n"
      "comparable number, the full fit the (slower) asymptotic rate.\n"
      "Exact values depend on the unspecified tree size and alpha; the\n"
      "shape is what transfers.\n");
  return 0;
}
