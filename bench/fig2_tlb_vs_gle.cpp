// E1 — Figure 2: TLB vs GLE.
//
// Two spontaneous-rate patterns on the same 5-node routing tree:
//   (a) TLB assignment that is also GLE (uniform load is feasible),
//   (b) TLB assignment that is NOT GLE: NSS prevents the idle leaves from
//       taking load that does not flow through them.
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "tree/render.h"
#include "tree/routing_tree.h"
#include "util/ascii.h"

namespace webwave {
namespace {

void RunCase(const char* label, const RoutingTree& tree,
             const std::vector<double>& spont) {
  const WebFoldResult r = WebFold(tree, spont);
  const double total = TotalRate(spont);
  const std::vector<double> gle = GleAssignment(tree.size(), total);

  std::printf("--- Figure 2(%s) ---\n", label);
  std::printf("%s",
              RenderTree(tree, [&](NodeId v) {
                return "E=" + AsciiTable::Num(spont[v], 0) +
                       " TLB=" + AsciiTable::Num(r.load[v], 1) +
                       " fold=" + std::to_string(r.fold_index[v]);
              }).c_str());

  AsciiTable table({"node", "E_i", "TLB L_i", "GLE L_i", "A_i (TLB)"});
  const auto fwd = ForwardedRates(tree, spont, r.load);
  for (NodeId v = 0; v < tree.size(); ++v)
    table.AddRow({std::to_string(v), AsciiTable::Num(spont[v], 0),
                  AsciiTable::Num(r.load[v], 2), AsciiTable::Num(gle[v], 2),
                  AsciiTable::Num(fwd[v], 2)});
  std::printf("%s", table.Render().c_str());
  std::printf("GLE feasible:          %s\n",
              GleIsFeasible(tree, spont) ? "yes" : "no");
  std::printf("TLB equals GLE:        %s\n",
              IsUniform(r.load, 1e-9) ? "yes" : "no");
  std::printf("TLB structural check:  %s\n\n",
              SatisfiesTlb(tree, spont, r.load) ? "pass" : "FAIL");
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  std::printf(
      "E1 / Figure 2 — tree load balance vs global load equality\n"
      "Tree: 0 <- {1, 2}; 1 <- {3, 4} (0 is the home server)\n\n");
  const RoutingTree tree = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  RunCase("a", tree, {0, 5, 10, 25, 10});
  RunCase("b", tree, {0, 40, 10, 0, 0});
  std::printf(
      "Reading: in (a) every subtree generates at least its uniform share,\n"
      "so TLB = GLE = 10 everywhere.  In (b) the leaves generate nothing;\n"
      "NSS (A_i >= 0) forbids pushing the hot child's load to them, and TLB\n"
      "settles at (20, 20, 10, 0, 0) — exactly the paper's point.\n");
  return 0;
}
