// E15 — serving under finite storage: the capacity sweep the infinite-
// storage benches could not run.
//
// Part 1 sweeps per-node byte budgets from 0.1× to 10× the catalog
// working set (plus the uncapacitated reference) across three placements
// — WebWave-TLB, home-only, greedy-by-popularity — over a lognormal
// document size field.  Every placement is clamped through the
// CapacityProjector (quota-weighted eviction, spill to the surviving
// ancestor) and the same request stream is served against the clamped
// copies, measuring what finite servers actually deliver: cache hit
// ratio, max-server load, hops, evicted cells and spilled rate.
//
// Part 2 runs the capacity-aware closed loop: one diffusion engine
// learns the rotating demand purely from folded arrivals (as in
// tab_serving part 2) while three storage variants serve each epoch from
// the same maintained snapshot — uncapacitated, a 1× working-set store
// and a 0.25× store, against home-only on the identical stream.
//
// Two properties are asserted, not just plotted (the process exits
// nonzero on violation):
//   * spill conserves total quota rate through every projection, and
//   * a >= 1× working-set budget evicts nothing, so the capacity-aware
//     loop's serving metrics equal the uncapacitated loop's exactly;
//     at 0.25× WebWave-TLB must still beat home-only on max load.
//
// Emits BENCH_capacity.json.  Environment knobs:
//   WEBWAVE_SMOKE              reduced shapes (the CI smoke configuration)
//   WEBWAVE_CAPACITY_NODES     part-1 nodes (default 200000; smoke 8000)
//   WEBWAVE_CAPACITY_DOCS      part-1 documents (default 64; smoke 8)
//   WEBWAVE_CAPACITY_REQUESTS  part-1 requests (default 4000000; smoke 200000)
//   WEBWAVE_CAPACITY_THREADS   workers (default: WEBWAVE_THREADS, then 1)
//   WEBWAVE_CAPLOOP_NODES/_DOCS/_EPOCHS/_WINDOW  part-2 shape overrides
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/webwave_batch.h"
#include "serve/closed_loop.h"
#include "serve/placement_policy.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "store/cache_store.h"
#include "store/capacity_projector.h"
#include "store/document_sizes.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/bench_json.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  using bench::EnvInt;
  using bench::MillisSince;
  using Clock = std::chrono::steady_clock;

  const bool smoke = bench::EnvFlag("WEBWAVE_SMOKE");
  const int nodes = EnvInt("WEBWAVE_CAPACITY_NODES", smoke ? 8000 : 200000);
  const int docs = EnvInt("WEBWAVE_CAPACITY_DOCS", smoke ? 8 : 64);
  const long long requests = bench::EnvLong(
      "WEBWAVE_CAPACITY_REQUESTS", smoke ? 200000LL : 4000000LL);
  const int threads = bench::EnvThreads("WEBWAVE_CAPACITY_THREADS", 1);

  std::printf(
      "E15 — capacity-constrained serving: %d nodes x %d documents x %lld\n"
      "requests, lognormal document sizes, per-node budgets swept against\n"
      "the catalog working set.  %d worker thread(s).%s\n\n",
      nodes, docs, requests, threads,
      smoke ? "\n(WEBWAVE_SMOKE: reduced configuration)" : "");

  BenchJson json("tab_capacity");
  json.BeginRun();
  json.Add("record", std::string("config"));
  json.Add("nodes", nodes);
  json.Add("docs", docs);
  json.Add("requests", requests);
  json.Add("threads", threads);

  Rng rng(static_cast<std::uint64_t>(nodes) + docs);
  const RoutingTree tree = MakeRandomTree(nodes, rng);

  // The size field comes through the catalog, so the kilobyte view the
  // packet layer uses and the byte view the store accounts stay one draw.
  const Catalog catalog = Catalog::MakeLogNormal(docs, 64.0, 1.0, 2027);
  const DocumentSizes sizes = DocumentSizes::FromCatalog(catalog);
  json.BeginRun();
  json.Add("record", std::string("sizes"));
  json.Add("working_set_mb",
           static_cast<double>(sizes.total_bytes()) / (1024.0 * 1024.0));
  json.Add("max_doc_mb",
           static_cast<double>(sizes.max_bytes()) / (1024.0 * 1024.0));

  // Part 1 — budget sweep over static placements ------------------------
  RequestGenerator gen(
      tree, docs,
      {RotatingHotSpotComponent(tree, docs, 1.0, 50.0, 0.05, 1, 8)}, 2024);
  const std::vector<std::vector<double>> lanes = gen.ExpectedLanes();
  std::vector<Request> stream;
  gen.NextBatch(static_cast<std::size_t>(requests), &stream);

  const double sweep[] = {0.1, 0.25, 0.5, 1.0, 2.0, 10.0};
  std::vector<std::unique_ptr<PlacementPolicy>> policies;
  policies.push_back(std::make_unique<HomeOnlyPolicy>());
  policies.push_back(std::make_unique<GreedyByPopularityPolicy>(2));
  policies.push_back(std::make_unique<WebWaveTlbPolicy>());

  AsciiTable table({"placement", "budget x", "evicted", "spill %", "hit %",
                    "mean hops", "max load", "serve Mreq/s"});
  std::uint64_t home_max_at_quarter = 0, ww_max_at_quarter = 0;
  for (const auto& policy : policies) {
    const QuotaSnapshot base = policy->Place(tree, lanes);
    ServingOptions opt;
    opt.threads = threads;
    opt.offered_rate = gen.total_rate();
    opt.block_size = EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, nodes));

    // Uncapacitated reference first, then the budget ladder.
    ServingMetrics uncap;
    for (int step = -1; step < static_cast<int>(sizeof sweep / sizeof *sweep);
         ++step) {
      const bool capped = step >= 0;
      const double multiple = capped ? sweep[step] : -1.0;
      QuotaSnapshot serve_snap = base;
      std::int64_t evicted = 0;
      double spilled = 0;
      double project_ms = 0;
      if (capped) {
        const auto t_project = Clock::now();
        CapacityProjector projector(
            tree, CacheStore::WorkingSetStore(tree, sizes, multiple));
        projector.Project(base);
        project_ms = MillisSince(t_project);
        if (!projector.ConservesTotalRate(base)) {
          std::printf("FATAL: spill failed to conserve total rate (%s %.2fx)\n",
                      policy->name().c_str(), multiple);
          return 1;
        }
        evicted = projector.evicted_cells();
        spilled = projector.spilled_rate();
        serve_snap = projector.clamped();
      }
      ServingPlane plane(tree, std::move(serve_snap), opt);
      const auto t_serve = Clock::now();
      plane.Serve(stream);
      const double serve_ms = MillisSince(t_serve);
      const ServingMetrics& m = plane.metrics();
      if (!capped) uncap = m;
      // >= 1x working set: nothing fits worse than the catalog itself, so
      // eviction must not fire and serving must be bitwise the reference.
      if (capped && multiple >= 1.0 && !(evicted == 0 && m == uncap)) {
        std::printf("FATAL: %.2fx working-set budget diverged from the\n"
                    "uncapacitated reference (%s)\n",
                    multiple, policy->name().c_str());
        return 1;
      }
      if (capped && multiple == 0.25) {
        if (policy->name() == "home-only") home_max_at_quarter = m.MaxServed();
        if (policy->name() == "webwave-tlb") ww_max_at_quarter = m.MaxServed();
      }

      const double mreq_s = static_cast<double>(requests) / serve_ms / 1e3;
      table.AddRow(
          {policy->name(), capped ? AsciiTable::Num(multiple, 2) : "inf",
           AsciiTable::Int(evicted),
           AsciiTable::Num(100 * spilled / base.total_rate(), 1),
           AsciiTable::Num(100 * m.HitRatio(), 1),
           AsciiTable::Num(m.MeanHops(), 2),
           AsciiTable::Int(static_cast<long long>(m.MaxServed())),
           AsciiTable::Num(mreq_s, 2)});
      json.BeginRun();
      json.Add("record", std::string("sweep"));
      json.Add("placement", policy->name());
      json.Add("budget_x", multiple);
      json.Add("evicted_cells", static_cast<long long>(evicted));
      json.Add("spilled_rate", spilled);
      json.Add("project_ms", project_ms);
      json.Add("hit_ratio", m.HitRatio());
      json.Add("mean_hops", m.MeanHops());
      json.Add("max_load", static_cast<long long>(m.MaxServed()));
      json.Add("serve_ms", serve_ms);
      json.Add("req_per_sec", static_cast<double>(requests) / serve_ms * 1e3);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  if (home_max_at_quarter == 0 ||
      ww_max_at_quarter >= home_max_at_quarter) {
    std::printf(
        "FATAL: WebWave-TLB lost to home-only on max load at 0.25x budget\n");
    return 1;
  }

  // Part 2 — the capacity-aware closed loop -----------------------------
  const int loop_nodes = EnvInt("WEBWAVE_CAPLOOP_NODES", smoke ? 4000 : 50000);
  const int loop_docs = EnvInt("WEBWAVE_CAPLOOP_DOCS", smoke ? 8 : 16);
  const int loop_epochs = EnvInt("WEBWAVE_CAPLOOP_EPOCHS", smoke ? 3 : 6);
  const std::size_t loop_window = static_cast<std::size_t>(
      EnvInt("WEBWAVE_CAPLOOP_WINDOW", smoke ? 100000 : 1000000));
  const int rotation = 8;
  std::printf(
      "capacity-aware closed loop: %d nodes x %d documents, %d epochs,\n"
      "%zu requests per window.  One engine learns from folded arrivals;\n"
      "uncapacitated, 1.0x and 0.25x working-set stores serve each epoch\n"
      "from the same maintained snapshot.\n\n",
      loop_nodes, loop_docs, loop_epochs, loop_window);

  Rng loop_rng(99);
  const RoutingTree loop_tree = MakeRandomTree(loop_nodes, loop_rng);
  const Catalog loop_catalog = Catalog::MakeLogNormal(loop_docs, 64.0, 1.0, 5);
  const DocumentSizes loop_sizes = DocumentSizes::FromCatalog(loop_catalog);
  std::vector<std::vector<double>> guess(static_cast<std::size_t>(loop_docs));
  for (auto& lane : guess)
    lane.assign(static_cast<std::size_t>(loop_tree.size()), 1e-3);
  WebWaveOptions wopt;
  wopt.threads = threads;
  BatchWebWaveSimulator sim(loop_tree, std::move(guess), wopt);
  ArrivalFold fold(loop_tree.size(), loop_docs);

  QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, 1e-12);
  sim.ClearDirtyLanes();
  CapacityProjector full_store(
      loop_tree, CacheStore::WorkingSetStore(loop_tree, loop_sizes, 1.0));
  CapacityProjector quarter_store(
      loop_tree, CacheStore::WorkingSetStore(loop_tree, loop_sizes, 0.25));
  full_store.Project(base);
  quarter_store.Project(base);

  AsciiTable loop_table({"epoch", "uncap max", "1.0x max", "0.25x max",
                         "home max", "0.25x evicted", "0.25x hit %"});
  std::vector<Request> window_buf;
  for (int epoch = 0; epoch < loop_epochs; ++epoch) {
    RequestGenerator wgen(
        loop_tree, loop_docs,
        {RotatingHotSpotComponent(loop_tree, loop_docs, 1.0, 50.0, 0.05,
                                  epoch, rotation)},
        500 + epoch);
    wgen.NextBatch(loop_window, &window_buf);
    const std::size_t half = loop_window / 2;
    ServingOptions sopt;
    sopt.threads = threads;
    sopt.offered_rate = wgen.total_rate();
    sopt.block_size =
        EnvInt("WEBWAVE_SERVING_BLOCK", std::max(65536, loop_nodes));

    // First half from the stale copies feeds the fold (origins only —
    // where requests were *served* never enters the loop).
    {
      ServingPlane stale(loop_tree, quarter_store.clamped(), sopt);
      stale.Serve(Span<Request>(window_buf.data(), half));
    }
    fold.Count(Span<Request>(window_buf.data(), half));
    sim.ApplyDemandEvents(fold.Drain(
        static_cast<double>(half) / wgen.total_rate()));
    for (int s = 0; s < 12; ++s) sim.Step();

    const std::vector<int> dirty = sim.DirtyLanes();
    base.RefreshFromBatch(sim);
    full_store.Refresh(base, Span<const int>(dirty.data(), dirty.size()));
    quarter_store.Refresh(base, Span<const int>(dirty.data(), dirty.size()));
    sim.ClearDirtyLanes();
    if (!full_store.ConservesTotalRate(base) ||
        !quarter_store.ConservesTotalRate(base)) {
      std::printf("FATAL: loop projection failed to conserve total rate\n");
      return 1;
    }

    const Span<Request> second(window_buf.data() + half, loop_window - half);
    ServingPlane uncap(loop_tree, base, sopt);
    uncap.Serve(second);
    ServingPlane at_full(loop_tree, full_store.clamped(), sopt);
    at_full.Serve(second);
    ServingPlane at_quarter(loop_tree, quarter_store.clamped(), sopt);
    at_quarter.Serve(second);
    ServingPlane home(
        loop_tree, HomeOnlyPolicy().Place(loop_tree, wgen.ExpectedLanes()),
        sopt);
    home.Serve(second);

    // The acceptance assertions: 1x storage is the uncapacitated loop,
    // exactly; quarter storage still beats home-only on max load.
    if (!(at_full.metrics() == uncap.metrics())) {
      std::printf("FATAL: 1.0x working-set loop diverged from the\n"
                  "uncapacitated loop at epoch %d\n", epoch);
      return 1;
    }
    if (at_quarter.metrics().MaxServed() >= home.metrics().MaxServed()) {
      std::printf("FATAL: 0.25x working-set loop lost to home-only at\n"
                  "epoch %d\n", epoch);
      return 1;
    }

    loop_table.AddRow(
        {std::to_string(epoch),
         AsciiTable::Int(static_cast<long long>(uncap.metrics().MaxServed())),
         AsciiTable::Int(
             static_cast<long long>(at_full.metrics().MaxServed())),
         AsciiTable::Int(
             static_cast<long long>(at_quarter.metrics().MaxServed())),
         AsciiTable::Int(static_cast<long long>(home.metrics().MaxServed())),
         AsciiTable::Int(quarter_store.evicted_cells()),
         AsciiTable::Num(100 * at_quarter.metrics().HitRatio(), 1)});
    json.BeginRun();
    json.Add("record", std::string("capacity_loop"));
    json.Add("epoch", epoch);
    json.Add("uncap_max", static_cast<long long>(uncap.metrics().MaxServed()));
    json.Add("full_max",
             static_cast<long long>(at_full.metrics().MaxServed()));
    json.Add("quarter_max",
             static_cast<long long>(at_quarter.metrics().MaxServed()));
    json.Add("home_max", static_cast<long long>(home.metrics().MaxServed()));
    json.Add("quarter_evicted",
             static_cast<long long>(quarter_store.evicted_cells()));
    json.Add("quarter_spilled", quarter_store.spilled_rate());
    json.Add("quarter_hit_ratio", at_quarter.metrics().HitRatio());
  }
  std::printf("%s\n", loop_table.Render().c_str());

  bench::WriteArtifact(json, "BENCH_capacity.json");
  std::printf(
      "\nReading: finite storage is where placements differentiate — with a\n"
      "full working set per node the capacity machinery is invisible (and\n"
      "asserted invisible); as budgets shrink, quota-weighted eviction\n"
      "spills the thinnest copies up-tree, hit ratio and balance degrade\n"
      "gracefully, and WebWave keeps beating home-only down to a quarter\n"
      "of the working set per node.\n");
  return 0;
}
