// E14 (extension) — relaxing the uniform-capacity assumption.
//
// §5.1: "All servers are modeled with uniform capacity."  Real cache
// hierarchies are not uniform: core servers are provisioned far beyond
// edge boxes.  This bench compares, on a tree whose interior nodes have
// k x the capacity of its leaves, the *utilization* profile of (a) the
// paper's uniform TLB (capacity-blind) and (b) the capacity-weighted TLB
// (WebFoldWeighted), and verifies the weighted WebWave protocol reaches
// the weighted optimum distributively.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  std::printf(
      "E14 / extension — heterogeneous server capacities\n"
      "binary tree depth 4 (31 nodes); interior capacity = k x leaf "
      "capacity;\nZipf-free uniform leaf demand 60 req/s\n\n");

  const RoutingTree tree = MakeKaryTree(2, 4);
  std::vector<double> spont(static_cast<std::size_t>(tree.size()), 0.0);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v)) spont[static_cast<std::size_t>(v)] = 60.0;

  AsciiTable table({"interior k", "policy", "max util", "util CoV",
                    "max load", "protocol steps to 1e-4"});
  for (const double k : {1.0, 2.0, 4.0, 8.0}) {
    std::vector<double> cap(static_cast<std::size_t>(tree.size()), 1.0);
    for (NodeId v = 0; v < tree.size(); ++v)
      if (!tree.is_leaf(v)) cap[static_cast<std::size_t>(v)] = k;

    auto utilization_stats = [&](const std::vector<double>& load) {
      std::vector<double> util(load.size());
      for (std::size_t i = 0; i < load.size(); ++i) util[i] = load[i] / cap[i];
      double mx = 0;
      for (const double u : util) mx = std::max(mx, u);
      return std::pair<double, double>(mx, CoefficientOfVariation(util));
    };

    const WebFoldResult uniform = WebFold(tree, spont);
    const WebFoldResult weighted = WebFoldWeighted(tree, spont, cap);

    for (const auto& [name, result] :
         {std::pair<const char*, const WebFoldResult*>{"uniform TLB",
                                                       &uniform},
          std::pair<const char*, const WebFoldResult*>{"weighted TLB",
                                                       &weighted}}) {
      const auto [max_util, cov] = utilization_stats(result->load);
      double max_load = 0;
      for (const double l : result->load) max_load = std::max(max_load, l);
      std::string steps = "-";
      if (result == &weighted) {
        WebWaveOptions opt;
        opt.capacities = cap;
        WebWaveSimulator sim(tree, spont, opt);
        const auto traj = sim.RunUntil(result->load, 1e-4, 100000);
        steps = std::to_string(traj.size() - 1);
      }
      table.AddRow({AsciiTable::Num(k, 0), name, AsciiTable::Num(max_util, 3),
                    AsciiTable::Num(cov, 3), AsciiTable::Num(max_load, 1),
                    steps});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: the capacity-blind assignment leaves big interior servers\n"
      "half idle while edge boxes saturate; the weighted folds put load\n"
      "where capacity is, cutting max utilization, and the weighted\n"
      "protocol still converges with purely local rules.\n");
  return 0;
}
