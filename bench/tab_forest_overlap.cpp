// E11 — §7 future work: "evaluate how WebWave functions in the context of
// the forest of overlapping routing trees that is the Internet."
//
// On an Internet-like topology we pick several home servers, derive their
// routing trees, compute each tree's TLB assignment independently, and
// then superpose them: a node interior to many trees accumulates load from
// all of them.  The table shows how overlap concentrates load and how much
// headroom the per-tree optimum leaves once trees share server capacity.
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/webfold.h"
#include "sim/forest_webwave.h"
#include "stats/summary.h"
#include "topology/generators.h"
#include "topology/spt.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  std::printf(
      "E11 / Section 7 — forest of overlapping routing trees\n"
      "Waxman topology (n=80, a=0.4, b=0.25); each home publishes one\n"
      "document family with 100 req/s Zipf-free uniform leaf demand\n\n");

  Rng rng(2026);
  const Network net = MakeWaxman(80, 0.4, 0.25, rng);

  AsciiTable table({"homes", "mean interior mult", "max interior mult",
                    "per-tree max TLB", "independent max total",
                    "coordinated max total", "coordination gain"});
  for (const int homes_count : {1, 2, 4, 8}) {
    std::vector<int> homes;
    for (int h = 0; h < homes_count; ++h) homes.push_back(h * 9 % net.size());
    const RoutingForest forest = MakeRoutingForest(net, homes);

    // Per-tree demand: uniform 100 req/s per leaf of that tree.
    std::vector<std::vector<double>> demands;
    double per_tree_max = 0;
    for (const RoutingTree& tree : forest.trees) {
      std::vector<double> spont(static_cast<std::size_t>(tree.size()), 0.0);
      for (NodeId v = 0; v < tree.size(); ++v)
        if (tree.is_leaf(v)) spont[static_cast<std::size_t>(v)] = 100.0;
      const WebFoldResult r = WebFold(tree, spont);
      for (const double l : r.load) per_tree_max = std::max(per_tree_max, l);
      demands.push_back(std::move(spont));
    }

    // Run the protocol forest-wide: independently per tree (the paper's
    // protocol, blind to overlap) and coordinated on node totals.
    auto run = [&](bool coordinate) {
      ForestWebWaveOptions opt;
      opt.coordinate_across_trees = coordinate;
      ForestWebWave protocol(forest.trees, demands, opt);
      for (int s = 0; s < 20000; ++s) protocol.Step();
      protocol.CheckInvariants();
      return protocol.MaxTotalLoad();
    };
    const double independent_max = run(false);
    const double coordinated_max = run(true);

    const std::vector<int> mult = InteriorMultiplicity(forest);
    double mult_mean = 0;
    int mult_max = 0;
    for (const int m : mult) {
      mult_mean += m;
      mult_max = std::max(mult_max, m);
    }
    mult_mean /= static_cast<double>(mult.size());
    table.AddRow({std::to_string(homes_count), AsciiTable::Num(mult_mean, 2),
                  std::to_string(mult_max), AsciiTable::Num(per_tree_max, 1),
                  AsciiTable::Num(independent_max, 1),
                  AsciiTable::Num(coordinated_max, 1),
                  AsciiTable::Num(independent_max / coordinated_max, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: per-tree TLB is optimal for each home in isolation, but\n"
      "overlapping interiors accumulate total load (independent column).\n"
      "Gossiping *total* node load and shifting proportional shares — one\n"
      "local change — helps at low overlap, but is NOT uniformly better as\n"
      "trees multiply: per-tree NSS constraints interact, and the greedy\n"
      "total-load heuristic can get stuck.  This quantifies why the paper\n"
      "left the forest case as an open problem (Section 7).\n");
  return 0;
}
