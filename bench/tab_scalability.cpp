// E8 — §1's motivation quantified: "minimal capacity goes idle in one part
// of the network when other parts have excess load."
//
// For growing system sizes and a hot-spot workload, compare the
// steady-state load distribution of:
//   no-cache      — home server serves everything (the pre-caching web),
//   self-cache    — demand-driven client caching (each node ends up
//                   serving its own demand),
//   en-route LRU  — hierarchical demand caching, finite capacity,
//   WebWave/TLB   — the paper's globally balanced assignment,
//   GLE-ideal     — uniform split ignoring NSS (unreachable bound).
// Metrics: max per-server load, coefficient of variation, Jain fairness,
// aggregate throughput and idle fraction when every server has capacity
// C = 2 x the GLE mean.
#include <chrono>
#include <cstdio>
#include <string>

#include "core/diffusion.h"
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "doc/catalog.h"
#include "proto/baselines.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"

namespace webwave {
namespace {

void AddPolicyRow(AsciiTable& table, int n, const char* policy,
                  const std::vector<double>& load, double capacity) {
  double max_load = 0;
  for (const double l : load) max_load = std::max(max_load, l);
  table.AddRow({std::to_string(n), policy, AsciiTable::Num(max_load, 1),
                AsciiTable::Num(CoefficientOfVariation(load), 3),
                AsciiTable::Num(JainFairness(load), 3),
                AsciiTable::Num(CappedThroughput(load, capacity), 0),
                AsciiTable::Num(IdleFraction(load, capacity), 3)});
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  std::printf(
      "E8 / Section 1 — scalability: throughput and idle capacity by policy\n"
      "workload: Zipf(1.0) document demand at the leaves, 12 docs, one hot\n"
      "subtree generating 4x the demand of the rest; capacity C = 2x GLE mean\n\n");

  AsciiTable table({"n", "policy", "max load", "CoV", "Jain", "thpt@C",
                    "idle@C"});
  for (const int depth : {3, 4, 5, 6, 7, 8}) {
    const RoutingTree tree = MakeKaryTree(2, depth);
    const int n = tree.size();
    Rng rng(static_cast<unsigned>(depth) * 97 + 5);
    DemandMatrix demand = LeafZipfDemand(tree, 12, 100.0, 1.0, rng);
    // Hot subtree: the first child of the root gets 4x demand.
    const NodeId hot = tree.children(tree.root()).front();
    for (const NodeId v : tree.subtree(hot))
      for (DocId d = 0; d < demand.doc_count(); ++d)
        demand.set(v, d, demand.at(v, d) * 4.0);

    const std::vector<double> spont = demand.NodeTotals();
    const double capacity = 2.0 * TotalRate(spont) / n;

    AddPolicyRow(table, n, "no-cache", NoCachingLoad(tree, spont), capacity);
    AddPolicyRow(table, n, "self-cache", SelfCachingLoad(spont), capacity);
    AddPolicyRow(table, n, "lru(cap=3)", EnRouteLruLoad(tree, demand, 3),
                 capacity);
    AddPolicyRow(table, n, "webwave/TLB", WebFold(tree, spont).load,
                 capacity);
    AddPolicyRow(table, n, "GLE-ideal", IdealGleLoad(tree, spont), capacity);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: no-cache throughput is pinned at one server's capacity and\n"
      "idles everything else; demand-driven caching helps but keeps the hot\n"
      "subtree hot; WebWave/TLB tracks the GLE-ideal bound wherever NSS\n"
      "permits, with orders-of-magnitude lower max load at scale.\n\n");

  // Part 2: the engine itself at Internet-catalog node counts.  The SoA
  // WebWave step and the CSR diffusion sweep are both O(n); a million-node
  // tree advances one diffusion period in milliseconds, where the dense
  // n^2 matrix of the §2 baselines would not even fit in memory.
  std::printf(
      "Part 2 — diffusion engine scalability (SoA WebWave step, CSR sweep)\n"
      "workload: uniform random recursive tree, random spontaneous rates\n\n");
  using Clock = std::chrono::steady_clock;
  AsciiTable engine({"n", "webwave ms/step", "Medges/s", "csr ms/sweep",
                     "gamma(100 it) ms"});
  for (const int n : {10000, 100000, 1000000}) {
    Rng rng(static_cast<std::uint64_t>(n) * 13 + 1);
    const RoutingTree tree = MakeRandomTree(n, rng);
    std::vector<double> spont(static_cast<std::size_t>(n));
    for (auto& e : spont) e = rng.NextDouble(0, 100);

    WebWaveSimulator sim(tree, spont);
    const int steps = n >= 1000000 ? 20 : 100;
    auto t0 = Clock::now();
    for (int s = 0; s < steps; ++s) sim.Step();
    const double step_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
        steps;

    const UndirectedGraph graph = GraphFromTree(tree);
    const SparseDiffusionMatrix csr = SparseDiffusionMatrix::DegreeBased(graph);
    std::vector<double> x = spont, y;
    t0 = Clock::now();
    for (int s = 0; s < steps; ++s) {
      csr.ApplyInto(x, y);
      std::swap(x, y);
    }
    const double sweep_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
        steps;

    t0 = Clock::now();
    const double gamma = csr.SpectralGamma(100);
    const double gamma_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    (void)gamma;

    engine.AddRow({AsciiTable::Int(n), AsciiTable::Num(step_ms, 3),
                   AsciiTable::Num((n - 1) / (step_ms * 1e3), 1),
                   AsciiTable::Num(sweep_ms, 3),
                   AsciiTable::Num(gamma_ms, 1)});
  }
  std::printf("%s\n", engine.Render().c_str());
  return 0;
}
