// E12 (extension) — §5.1's ongoing study: WebWave under erratic request
// rates, on the batch engine.
//
// The paper's evaluation holds the spontaneous rates constant and notes
// that "the dynamics of WebWave under erratic request rates is the
// subject of an ongoing simulation study."  This bench runs that study at
// catalog scale: a ChurnSchedule drives a BatchWebWaveSimulator with
// sparse demand-event batches — a rotating hot spot sliding around the
// leaves, flash crowds igniting random subtrees, and Zipf popularity
// re-shuffles — and we measure how closely every document lane tracks its
// own moving TLB optimum (the time-averaged relative distance and the
// worst epoch-end distance).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "sim/churn.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  std::printf(
      "E12 / Section 5.1 (extension) — tracking moving TLB optima, batched\n"
      "random tree n=200, 8-document catalog stepped as one batch;\n"
      "all lanes tracked against their own instantaneous TLB\n\n");

  Rng tree_rng(9);
  const RoutingTree tree = MakeRandomTree(200, tree_rng);
  const int docs = 8;

  AsciiTable table({"pattern", "period (steps)", "events/epoch",
                    "mean rel dist", "worst end rel dist",
                    "max node load"});
  for (const ChurnPattern pattern :
       {ChurnPattern::kRotatingHotSpot, ChurnPattern::kFlashCrowd,
        ChurnPattern::kZipfReshuffle}) {
    for (const int period : {10, 30, 100}) {
      ChurnScheduleOptions sched_opt;
      sched_opt.pattern = pattern;
      sched_opt.doc_count = docs;
      sched_opt.base_rate = 2.0;
      sched_opt.hot_rate = 60.0;
      sched_opt.hot_fraction = 0.15;
      sched_opt.rotation_epochs = 8;
      sched_opt.seed = 42;
      ChurnSchedule schedule(tree, sched_opt);

      BatchChurnOptions opt;
      opt.epochs = 16;
      opt.period = period;
      opt.tlb_lanes = docs;
      opt.protocol.threads = bench::EnvThreads("WEBWAVE_CHURN_THREADS", 1);
      const BatchChurnRun run = RunBatchChurn(tree, schedule, opt);

      double events = 0, max_load = 0;
      for (std::size_t e = 1; e < run.epochs.size(); ++e)
        events += static_cast<double>(run.epochs[e].events);
      events /= static_cast<double>(run.epochs.size() - 1);
      for (const BatchChurnEpoch& e : run.epochs)
        max_load = std::max(max_load, e.max_node_load_end);

      table.AddRow({PatternName(pattern), std::to_string(period),
                    AsciiTable::Num(events, 0),
                    AsciiTable::Num(run.mean_relative_distance, 4),
                    AsciiTable::Num(run.worst_end_relative_distance, 4),
                    AsciiTable::Num(max_load, 1)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: tracking error scales with how much demand each pattern\n"
      "moves per epoch and shrinks as the quiet period grows.  The rotating\n"
      "hot spot (sparse events, constant total demand) recovers fastest;\n"
      "Zipf re-shuffles move every lane at once and track worst at short\n"
      "periods.  The whole catalog advances as one batched sweep per step,\n"
      "so these scenarios run unchanged at millions of nodes\n"
      "(tab_rotating_hotspot).\n");
  return 0;
}
