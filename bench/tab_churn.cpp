// E12 (extension) — §5.1's ongoing study: WebWave under erratic request
// rates.
//
// The paper's evaluation holds the spontaneous rates constant and notes
// that "the dynamics of WebWave under erratic request rates is the
// subject of an ongoing simulation study."  This bench runs that study:
// a fraction of the nodes' rates is re-drawn every `period` diffusion
// steps and we measure how closely the protocol tracks the moving TLB
// optimum — the time-averaged relative distance, the worst epoch-end
// distance, and the recovery time after each shock.
#include <cstdio>
#include <string>

#include "sim/churn.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  std::printf(
      "E12 / Section 5.1 (extension) — tracking a moving TLB optimum\n"
      "random tree n=50, rates re-drawn U(0,50), 16 epochs per cell\n\n");

  Rng tree_rng(9);
  const RoutingTree tree = MakeRandomTree(50, tree_rng);
  std::vector<double> initial(50);
  for (auto& e : initial) e = tree_rng.NextDouble(0, 50);

  AsciiTable table({"churn fraction", "period (steps)", "mean rel dist",
                    "worst end rel dist", "median recovery (steps)"});
  for (const double fraction : {0.1, 0.3, 0.7}) {
    for (const int period : {10, 30, 100, 300}) {
      ChurnOptions opt;
      opt.churn_fraction = fraction;
      opt.period = period;
      opt.epochs = 16;
      opt.seed = 42;
      const ChurnRun run = RunChurn(tree, initial, opt);
      std::vector<double> recoveries;
      for (const ChurnEpoch& e : run.epochs)
        recoveries.push_back(static_cast<double>(e.recovery_steps));
      table.AddRow({AsciiTable::Num(fraction, 1), std::to_string(period),
                    AsciiTable::Num(run.mean_relative_distance, 4),
                    AsciiTable::Num(run.worst_end_relative_distance, 4),
                    AsciiTable::Num(Quantile(recoveries, 0.5), 0)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: tracking error scales with churn fraction and shrinks as\n"
      "the quiet period grows; recovery to within 5%% of a shock completes\n"
      "in a few dozen diffusion steps, so WebWave remains useful whenever\n"
      "demand shifts slower than a few gossip rounds.\n");
  return 0;
}
