// E5 — Figure 7: potential barriers and tunneling.
//
// The paper's 4-node instance: home server (node "1"), intermediate
// server "2", leaves "3" and "4" (our ids 0,1,2,3).  d1 and d2 are
// requested by "4" at 120 req/s each, d3 by "3" at 120 req/s.  With the
// Figure 7(a) placement (d1 cached at "4", d2 at "2") server "2" is a
// potential barrier: it is as loaded as its parent, its other child is
// loaded, and it caches nothing that its idle child "3" requests.  Plain
// diffusion stalls; tunneling fetches d3 across the barrier and the system
// reaches the TLB assignment of 90 req/s per node (Figure 7(b)).
#include <cstdio>
#include <string>

#include "core/webfold.h"
#include "doc/barrier.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "tree/routing_tree.h"
#include "util/ascii.h"

namespace webwave {
namespace {

DocWebWave MakeProtocol(const RoutingTree& tree, const DemandMatrix& demand,
                        bool tunneling) {
  DocWebWaveOptions opt;
  opt.enable_tunneling = tunneling;
  DocWebWave protocol(tree, demand, opt);
  protocol.SeedCopy(3, 0, 120);  // d1 at node "4"
  protocol.SeedCopy(1, 1, 120);  // d2 at node "2"
  return protocol;
}

void PrintLoads(const char* label, const std::vector<double>& loads) {
  std::printf("%-28s", label);
  for (const double l : loads) std::printf("  %8.2f", l);
  std::printf("\n");
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  const RoutingTree tree = RoutingTree::FromParents({kNoNode, 0, 1, 1});
  DemandMatrix demand(4, 3);
  demand.set(3, 0, 120);  // d1 from node "4"
  demand.set(3, 1, 120);  // d2 from node "4"
  demand.set(2, 2, 120);  // d3 from node "3"

  const WebFoldResult tlb = WebFold(tree, demand.NodeTotals());
  std::printf("E5 / Figure 7 — potential barrier and tunneling\n\n");
  std::printf("Tree: home 0 <- 1 <- {2, 3};  demand: d1,d2@node3 = 120 each, "
              "d3@node2 = 120\n");
  std::printf("TLB assignment: %.0f req/s per node (paper: 90)\n\n",
              tlb.load[0]);

  std::printf("node:                        %9d  %8d  %8d  %8d\n", 0, 1, 2, 3);

  {
    DocWebWave stuck = MakeProtocol(tree, demand, /*tunneling=*/false);
    PrintLoads("initial loads (Fig 7a)", stuck.NodeLoads());
    const bool barrier = IsPotentialBarrier(
        tree, 1, 2, stuck.NodeLoads(), stuck.CacheSnapshot(),
        stuck.ForwardedSnapshot());
    std::printf("IsPotentialBarrier(j=1,k=2): %s\n\n", barrier ? "yes" : "no");
    for (int t = 0; t < 200; ++t) stuck.Step();
    PrintLoads("tunneling OFF, t=200", stuck.NodeLoads());
    std::printf("  distance to TLB: %.3f  (STUCK: node 2 cannot acquire d3)\n\n",
                stuck.DistanceTo(tlb.load));
  }

  {
    DocWebWave fixed = MakeProtocol(tree, demand, /*tunneling=*/true);
    AsciiTable table({"period", "L0", "L1", "L2", "L3", "dist to TLB",
                      "tunnels", "copies(d3)"});
    const int checkpoints[] = {0, 3, 5, 10, 20, 40, 80, 160, 320};
    int next = 0;
    for (int t = 0; t <= 320; ++t) {
      if (next < 9 && t == checkpoints[next]) {
        const auto l = fixed.NodeLoads();
        table.AddRow({std::to_string(t), AsciiTable::Num(l[0], 1),
                      AsciiTable::Num(l[1], 1), AsciiTable::Num(l[2], 1),
                      AsciiTable::Num(l[3], 1),
                      AsciiTable::Num(fixed.DistanceTo(tlb.load), 3),
                      std::to_string(fixed.tunnel_events().size()),
                      std::to_string(fixed.CopyCount(2))});
        ++next;
      }
      fixed.Step();
    }
    std::printf("tunneling ON:\n%s\n", table.Render().c_str());
    for (const TunnelEvent& ev : fixed.tunnel_events())
      std::printf(
          "  tunnel @period %d: node %d fetched doc d%d from node %d across "
          "barrier node %d (quota %.2f)\n",
          ev.period, ev.node, ev.doc + 1, ev.source, ev.barrier, ev.quota);
    std::printf("\nFinal loads: ");
    for (const double l : fixed.NodeLoads()) std::printf(" %.2f", l);
    std::printf("  (paper's Figure 7b: 90 each)\n");
  }
  return 0;
}
