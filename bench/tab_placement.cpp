// E13 (extension) — §7: "WebWave implicitly determines the number and
// placement of cache copies as well as the number of requests allocated
// to each copy."
//
// DerivePlacement makes that explicit offline.  This bench shows how the
// number of copies of a document scales with its popularity rank under
// Zipf demand — the replication-degree-follows-popularity shape that
// push-caching papers of the era (Bestavros, Gwertzman) report — plus how
// total copies scale with tree size.
#include <algorithm>
#include <cstdio>
#include <string>

#include "doc/catalog.h"
#include "doc/placement.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  std::printf(
      "E13 / Section 7 (extension) — copy placement implied by TLB\n"
      "binary tree depth 5 (63 nodes), 16 docs, Zipf(1.0), 100 req/s per "
      "leaf\n\n");

  Rng rng(77);
  const RoutingTree tree = MakeKaryTree(2, 5);
  const DemandMatrix demand = LeafZipfDemand(tree, 16, 100.0, 1.0, rng);
  const PlacementResult p = DerivePlacement(tree, demand);

  AsciiTable table({"doc (popularity rank)", "global rate", "copies",
                    "max copy rate", "mean copy rate"});
  // Documents sorted by global demand.
  std::vector<DocId> order(16);
  for (DocId d = 0; d < 16; ++d) order[static_cast<std::size_t>(d)] = d;
  std::sort(order.begin(), order.end(), [&](DocId a, DocId b) {
    return demand.DocTotal(a) > demand.DocTotal(b);
  });
  int rank = 1;
  for (const DocId d : order) {
    std::vector<double> rates;
    for (const CopyAssignment& c : p.copies[static_cast<std::size_t>(d)])
      rates.push_back(c.rate);
    const Summary s = Summarize(rates);
    table.AddRow({"#" + std::to_string(rank++) + " (doc-" + std::to_string(d) + ")",
                  AsciiTable::Num(demand.DocTotal(d), 1),
                  std::to_string(p.copy_count[static_cast<std::size_t>(d)]),
                  AsciiTable::Num(s.max, 1), AsciiTable::Num(s.mean, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  AsciiTable scale({"tree depth", "nodes", "total copies", "copies/doc",
                    "copies/node"});
  for (const int depth : {3, 4, 5, 6, 7}) {
    const RoutingTree t = MakeKaryTree(2, depth);
    Rng r2(static_cast<unsigned>(depth));
    const DemandMatrix dm = LeafZipfDemand(t, 16, 100.0, 1.0, r2);
    const PlacementResult pr = DerivePlacement(t, dm);
    int total = 0;
    for (const int c : pr.copy_count) total += c;
    scale.AddRow({std::to_string(depth), std::to_string(t.size()),
                  std::to_string(total), AsciiTable::Num(total / 16.0, 1),
                  AsciiTable::Num(total / static_cast<double>(t.size()), 2)});
  }
  std::printf("%s\n", scale.Render().c_str());
  std::printf(
      "Reading: hot documents are replicated along the paths their demand\n"
      "flows through (copies track popularity), and per-node copy counts\n"
      "stay small — the directory-free design never needs to know where\n"
      "these copies are.\n");
  return 0;
}
