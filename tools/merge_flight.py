#!/usr/bin/env python3
"""Join netd flight-recorder rings with the fleet trace stream into a
cross-process, per-request JSON-lines timeline.

Inputs:
  --trace FILE     the fleet's sampled trace as JSON lines (one TraceEvent
                   per line: req_id, seq, node, kind, detail, aux) — the
                   stream tab_netd writes as netd_trace.jsonl.
  FLIGHT...        any number of flight-ring dumps in FlightRecorder::Dump
                   text form ("<t_ns> <seq> <kind> <detail> <arg>
                   node=<n>") — the netd_flight_*.txt files scraped over
                   the wire (victims included) plus any flight_<i>.txt a
                   daemon wrote on clean shutdown.

Output (--out, default stdout): one JSON line per traced request,
ascending req_id:

  {"req_id": N,
   "hops":  [ ... trace events in seq order ... ],
   "wire":  [ ... matching frame_in/frame_out flight events ... ]}

The `hops` list is the request's complete walk in causal order — seq is
assigned in walk order by the serving core, so sorting by seq needs no
clocks and is exact even across processes.  The `wire` list is the
best-effort transport view: every frame_in/frame_out flight event whose
detail equals the req_id, ordered by (t_ns, node, seq).  Flight rings are
bounded, so old requests may have no surviving wire events (wire: []) —
the hops are still complete, because the trace plane is unbounded and
oracle-checked.  CLOCK_MONOTONIC is machine-wide, which is what makes
t_ns comparable across the forked daemons on one host.

Exit status is non-zero if any input fails to parse, or (with --require-
wire-events > 0) if fewer than that many traced requests carry wire
evidence — the smoke guard CI uses to prove the join actually joined.
"""

import argparse
import json
import sys
from collections import defaultdict

# MsgType numbering from src/wire/message.h, for readable wire events.
MSG_NAMES = {
    1: "get_request", 2: "get_reply", 3: "load_gossip",
    16: "hello", 17: "stats_request", 18: "stats_reply", 19: "shutdown",
    20: "trace_request", 21: "trace_reply", 22: "quota_delta",
    23: "epoch_update", 24: "flight_request", 25: "flight_reply",
}

FLIGHT_KINDS = {
    "frame_in", "frame_out", "conn_up", "conn_down", "timer_fire",
    "epoch", "boot", "shutdown", "unknown",
}


def parse_trace(path):
    """netd_trace.jsonl -> {req_id: [event dict, ...]} (unsorted)."""
    per_req = defaultdict(list)
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
                per_req[int(ev["req_id"])].append(ev)
            except (ValueError, KeyError, TypeError):
                raise SystemExit(f"{path}:{lineno}: bad trace line")
    return per_req


def parse_flight(path):
    """One FlightRecorder::Dump file -> [event dict, ...]."""
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            # "<t_ns> <seq> <kind> <detail> <arg> node=<n>"
            if len(parts) != 6 or not parts[5].startswith("node="):
                raise SystemExit(f"{path}:{lineno}: bad flight line")
            try:
                ev = {
                    "t_ns": int(parts[0]),
                    "seq": int(parts[1]),
                    "kind": parts[2],
                    "detail": int(parts[3]),
                    "arg": int(parts[4]),
                    "node": int(parts[5][len("node="):]),
                }
            except ValueError:
                raise SystemExit(f"{path}:{lineno}: bad flight line")
            if ev["kind"] not in FLIGHT_KINDS:
                raise SystemExit(f"{path}:{lineno}: unknown event kind "
                                 f"{ev['kind']!r}")
            events.append(ev)
    return events


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace", required=True,
                    help="trace stream as JSON lines (netd_trace.jsonl)")
    ap.add_argument("--out", default="-",
                    help="output timeline path (default stdout)")
    ap.add_argument("--require-wire-events", type=int, default=0,
                    help="fail unless at least this many traced requests "
                         "have surviving wire evidence in the rings")
    ap.add_argument("flights", nargs="*",
                    help="flight ring dumps (netd_flight_*.txt, "
                         "flight_<i>.txt)")
    args = ap.parse_args()

    per_req = parse_trace(args.trace)

    # Frame events by req_id.  detail holds the req_id for get_request /
    # get_reply frames and 0 for everything else; req_id 0 is a real
    # request, so only index frames whose MsgType is a data-plane GET.
    wire_by_req = defaultdict(list)
    total_flight = 0
    for path in args.flights:
        for ev in parse_flight(path):
            total_flight += 1
            if ev["kind"] in ("frame_in", "frame_out") and \
                    ev["arg"] in (1, 2):
                ev = dict(ev)
                ev["msg"] = MSG_NAMES[ev["arg"]]
                wire_by_req[ev["detail"]].append(ev)

    out = sys.stdout if args.out == "-" else open(
        args.out, "w", encoding="utf-8")
    with_wire = 0
    for req_id in sorted(per_req):
        hops = sorted(per_req[req_id], key=lambda e: int(e["seq"]))
        wire = sorted(wire_by_req.get(req_id, ()),
                      key=lambda e: (e["t_ns"], e["node"], e["seq"]))
        if wire:
            with_wire += 1
        out.write(json.dumps({"req_id": req_id, "hops": hops,
                              "wire": wire}) + "\n")
    if out is not sys.stdout:
        out.close()

    print(f"merged {len(per_req)} traced request(s), {total_flight} flight "
          f"event(s) from {len(args.flights)} ring(s); {with_wire} "
          f"request(s) carry wire evidence", file=sys.stderr)
    if args.require_wire_events > 0 and with_wire < args.require_wire_events:
        print(f"FAIL: only {with_wire} traced request(s) have wire "
              f"evidence (need {args.require_wire_events})",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
