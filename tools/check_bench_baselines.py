#!/usr/bin/env python3
"""Warn-only throughput regression check for the smoke-bench JSON artifacts.

Compares freshly produced BENCH_*.json files against the committed
baselines in bench/baselines/ and prints a GitHub Actions `::warning::`
annotation for every throughput field that fell below
`threshold x baseline`.  The 2-thread smoke artifacts (the `t2/`
subdirectory CI stashes) are compared the same way against
bench/baselines/t2/ when both sides exist.  The check never fails the
build — CI runners are noisy and heterogeneous; the point is to surface
a suspicious drop on the PR, not to gate on it.  Refresh a baseline by
copying the smoke artifact over the file in bench/baselines/ (or
bench/baselines/t2/) when a change legitimately moves the numbers.

Usage: check_bench_baselines.py [--baselines DIR] [--current DIR]
                                [--threshold 0.5] [--strict]

Records are matched per bench by the key fields below; records present on
only one side are reported informationally and skipped.  JSON-lines
artifacts (the per-epoch timeline and the trace sample) are validated
structurally — present-but-empty files and unparseable lines are
warnings, since an empty timeline means the telemetry plane silently
stopped emitting.  `--strict` turns any warning into a non-zero exit for
local use; CI stays warn-only.
"""

import argparse
import json
import os
import sys

# bench name -> (key fields, higher-is-better throughput fields)
RULES = {
    "tab_batch_catalog": (("nodes", "docs", "lane_block"),
                          ("lane_steps_per_sec",)),
    "tab_rotating_hotspot": (("record", "epoch"), ("lane_steps_per_sec",)),
    "tab_serving": (("record", "placement", "epoch", "budget_x"),
                    ("req_per_sec", "snapshot_speedup", "plane_speedup",
                     "untraced_req_per_sec", "traced_req_per_sec")),
    "tab_capacity": (("record", "placement", "budget_x", "epoch"),
                     ("req_per_sec",)),
    "tab_faults": (("record", "placement", "pattern", "crash_fraction",
                    "epoch"),
                   ("req_per_sec",)),
    "tab_netd": (("record", "scenario", "servers", "requests", "sim_nodes"),
                 ("req_per_sec", "oracle_req_per_sec")),
    # The scraper artifact carries counter snapshots, not throughputs: no
    # regression fields, but keyed matching still reports coverage drift
    # (a scenario that stopped producing samples).
    "tab_netd_stats": (("record", "scenario", "sample"), ()),
    # The survivable-fleet scenario: one record per epoch barrier (counter
    # snapshots, coverage-matched only) plus one fleet record whose
    # throughputs are tracked.
    "tab_netd_faults": (("record", "epoch", "servers", "epochs"),
                        ("req_per_sec", "oracle_req_per_sec")),
    # The latency plane: records carry wall-clock percentiles, which are
    # NEVER compared against a baseline — coverage-matched only, so a
    # scenario or epoch that silently stops reporting latency shows up.
    "tab_netd_latency": (("record", "scenario", "epoch"), ()),
    "micro_step_blocked": (("nodes", "docs", "lane_block"),
                           ("lane_steps_per_sec",)),
}

# JSON-lines artifacts emitted by the telemetry plane.  No baselines (the
# records carry wall-clock phase timings); the check is structural: if the
# file exists it must be non-empty and every line must parse as JSON.
JSONL_ARTIFACTS = (
    "BENCH_serving_timeline.jsonl",
    "BENCH_trace_sample.jsonl",
    # tab_netd's raw trace stream and the merge_flight.py join of it with
    # the scraped flight rings (CI produces the latter after the bench).
    "netd_trace.jsonl",
    "netd_timeline.jsonl",
)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def key_of(bench, run):
    keys, _ = RULES[bench]
    return tuple((k, run.get(k)) for k in keys if k in run)


def check_dir(baselines, current, threshold, label):
    """Compares one artifact directory; returns (compared, warned)."""
    warned = 0
    compared = 0
    for name in sorted(os.listdir(baselines)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        base_path = os.path.join(baselines, name)
        cur_path = os.path.join(current, name)
        if not os.path.exists(cur_path):
            warned += 1
            print(f"::warning title=missing bench artifact::{label}{name} "
                  f"has a committed baseline but the smoke run produced no "
                  f"artifact — did the bench crash or get dropped from CI?")
            continue
        base = load(base_path)
        cur = load(cur_path)
        if not cur.get("runs"):
            warned += 1
            print(f"::warning title=empty bench artifact::{label}{name} "
                  f"exists but contains zero runs — the bench wrote its "
                  f"artifact before recording anything")
            continue
        bench = base.get("bench")
        if bench not in RULES or cur.get("bench") != bench:
            print(f"note: {label}{name}: bench {bench!r} has no rules, "
                  f"skipping")
            continue
        _, fields = RULES[bench]
        cur_by_key = {}
        for run in cur.get("runs", []):
            cur_by_key.setdefault(key_of(bench, run), run)
        for run in base.get("runs", []):
            key = key_of(bench, run)
            got = cur_by_key.get(key)
            if got is None:
                print(f"note: {label}{name}: no current run for {dict(key)}")
                continue
            for field in fields:
                want = run.get(field)
                have = got.get(field)
                if not isinstance(want, (int, float)) or not isinstance(
                        have, (int, float)) or want <= 0:
                    continue
                compared += 1
                if have < threshold * want:
                    warned += 1
                    print(f"::warning title=bench regression ({bench}, "
                          f"{label or '1 thread'})::"
                          f"{field} at {dict(key)} dropped to {have:.3g} "
                          f"from baseline {want:.3g} "
                          f"({have / want:.0%}, threshold "
                          f"{threshold:.0%})")
    # The reverse gap: a fresh artifact with no committed baseline means a
    # new bench whose numbers nobody is tracking yet.  Warn (never fail) so
    # the PR that adds the bench also commits its baseline.
    for name in sorted(os.listdir(current)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if not os.path.exists(os.path.join(baselines, name)):
            warned += 1
            print(f"::warning title=missing bench baseline::{label}{name} "
                  f"was produced by the smoke run but has no committed "
                  f"baseline — copy it to "
                  f"{os.path.join(baselines, name)} to start tracking it")
    return compared, warned


def check_jsonl(current, label):
    """Structural validation of the JSON-lines telemetry artifacts."""
    warned = 0
    for name in JSONL_ARTIFACTS:
        path = os.path.join(current, name)
        if not os.path.exists(path):
            print(f"note: {label}{name} not produced by this run")
            continue
        with open(path, "r", encoding="utf-8") as f:
            lines = [line for line in f.read().splitlines() if line.strip()]
        if not lines:
            warned += 1
            print(f"::warning title=empty telemetry artifact::{label}{name} "
                  f"exists but holds zero records — the telemetry plane "
                  f"silently stopped emitting")
            continue
        bad = 0
        for i, line in enumerate(lines, 1):
            try:
                json.loads(line)
            except ValueError:
                bad += 1
                if bad == 1:
                    warned += 1
                    print(f"::warning title=corrupt telemetry artifact::"
                          f"{label}{name} line {i} is not valid JSON")
        print(f"note: {label}{name}: {len(lines)} record(s), "
              f"{bad} unparseable")
    return warned


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baselines", default="bench/baselines")
    ap.add_argument("--current", default=".")
    ap.add_argument("--threshold", type=float, default=0.5)
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero if any warning fired (CI keeps the "
                         "default warn-only behaviour)")
    args = ap.parse_args()

    compared, warned = check_dir(args.baselines, args.current,
                                 args.threshold, "")
    warned += check_jsonl(args.current, "")
    t2_base = os.path.join(args.baselines, "t2")
    t2_cur = os.path.join(args.current, "t2")
    if os.path.isdir(t2_base) and os.path.isdir(t2_cur):
        c2, w2 = check_dir(t2_base, t2_cur, args.threshold, "t2/")
        compared += c2
        warned += w2
        warned += check_jsonl(t2_cur, "t2/")
    else:
        print("note: no t2 baselines or artifacts, skipping the "
              "2-thread comparison")
    print(f"bench baseline check: {compared} fields compared, "
          f"{warned} warning(s)")
    if args.strict and warned > 0:
        print("strict mode: failing on warnings")
        return 1
    return 0  # warn-only by design in CI


if __name__ == "__main__":
    sys.exit(main())
