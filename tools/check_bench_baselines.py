#!/usr/bin/env python3
"""Warn-only throughput regression check for the smoke-bench JSON artifacts.

Compares freshly produced BENCH_*.json files against the committed
baselines in bench/baselines/ and prints a GitHub Actions `::warning::`
annotation for every throughput field that fell below
`threshold x baseline`.  The 2-thread smoke artifacts (the `t2/`
subdirectory CI stashes) are compared the same way against
bench/baselines/t2/ when both sides exist.  The check never fails the
build — CI runners are noisy and heterogeneous; the point is to surface
a suspicious drop on the PR, not to gate on it.  Refresh a baseline by
copying the smoke artifact over the file in bench/baselines/ (or
bench/baselines/t2/) when a change legitimately moves the numbers.

Usage: check_bench_baselines.py [--baselines DIR] [--current DIR]
                                [--threshold 0.5]

Records are matched per bench by the key fields below; records present on
only one side are reported informationally and skipped.
"""

import argparse
import json
import os
import sys

# bench name -> (key fields, higher-is-better throughput fields)
RULES = {
    "tab_batch_catalog": (("nodes", "docs", "lane_block"),
                          ("lane_steps_per_sec",)),
    "tab_rotating_hotspot": (("record", "epoch"), ("lane_steps_per_sec",)),
    "tab_serving": (("record", "placement", "epoch", "budget_x"),
                    ("req_per_sec", "snapshot_speedup", "plane_speedup")),
    "tab_capacity": (("record", "placement", "budget_x", "epoch"),
                     ("req_per_sec",)),
    "tab_faults": (("record", "placement", "pattern", "crash_fraction",
                    "epoch"),
                   ("req_per_sec",)),
    "tab_netd": (("record", "scenario", "servers", "requests", "sim_nodes"),
                 ("req_per_sec", "oracle_req_per_sec")),
    "micro_step_blocked": (("nodes", "docs", "lane_block"),
                           ("lane_steps_per_sec",)),
}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def key_of(bench, run):
    keys, _ = RULES[bench]
    return tuple((k, run.get(k)) for k in keys if k in run)


def check_dir(baselines, current, threshold, label):
    """Compares one artifact directory; returns (compared, warned)."""
    warned = 0
    compared = 0
    for name in sorted(os.listdir(baselines)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        base_path = os.path.join(baselines, name)
        cur_path = os.path.join(current, name)
        if not os.path.exists(cur_path):
            warned += 1
            print(f"::warning title=missing bench artifact::{label}{name} "
                  f"has a committed baseline but the smoke run produced no "
                  f"artifact — did the bench crash or get dropped from CI?")
            continue
        base = load(base_path)
        cur = load(cur_path)
        bench = base.get("bench")
        if bench not in RULES or cur.get("bench") != bench:
            print(f"note: {label}{name}: bench {bench!r} has no rules, "
                  f"skipping")
            continue
        _, fields = RULES[bench]
        cur_by_key = {}
        for run in cur.get("runs", []):
            cur_by_key.setdefault(key_of(bench, run), run)
        for run in base.get("runs", []):
            key = key_of(bench, run)
            got = cur_by_key.get(key)
            if got is None:
                print(f"note: {label}{name}: no current run for {dict(key)}")
                continue
            for field in fields:
                want = run.get(field)
                have = got.get(field)
                if not isinstance(want, (int, float)) or not isinstance(
                        have, (int, float)) or want <= 0:
                    continue
                compared += 1
                if have < threshold * want:
                    warned += 1
                    print(f"::warning title=bench regression ({bench}, "
                          f"{label or '1 thread'})::"
                          f"{field} at {dict(key)} dropped to {have:.3g} "
                          f"from baseline {want:.3g} "
                          f"({have / want:.0%}, threshold "
                          f"{threshold:.0%})")
    # The reverse gap: a fresh artifact with no committed baseline means a
    # new bench whose numbers nobody is tracking yet.  Warn (never fail) so
    # the PR that adds the bench also commits its baseline.
    for name in sorted(os.listdir(current)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if not os.path.exists(os.path.join(baselines, name)):
            warned += 1
            print(f"::warning title=missing bench baseline::{label}{name} "
                  f"was produced by the smoke run but has no committed "
                  f"baseline — copy it to "
                  f"{os.path.join(baselines, name)} to start tracking it")
    return compared, warned


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baselines", default="bench/baselines")
    ap.add_argument("--current", default=".")
    ap.add_argument("--threshold", type=float, default=0.5)
    args = ap.parse_args()

    compared, warned = check_dir(args.baselines, args.current,
                                 args.threshold, "")
    t2_base = os.path.join(args.baselines, "t2")
    t2_cur = os.path.join(args.current, "t2")
    if os.path.isdir(t2_base) and os.path.isdir(t2_cur):
        c2, w2 = check_dir(t2_base, t2_cur, args.threshold, "t2/")
        compared += c2
        warned += w2
    else:
        print("note: no t2 baselines or artifacts, skipping the "
              "2-thread comparison")
    print(f"bench baseline check: {compared} fields compared, "
          f"{warned} warning(s)")
    return 0  # warn-only by design


if __name__ == "__main__":
    sys.exit(main())
