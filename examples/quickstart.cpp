// Quickstart: the WebWave public API in five minutes.
//
//   1. Build a routing tree (here: by hand; topology/spt.h derives them
//      from network topologies).
//   2. Attach spontaneous request rates.
//   3. Compute the optimal assignment offline with WebFold.
//   4. Run the distributed WebWave protocol and watch it converge.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "tree/builders.h"
#include "tree/render.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;

  // A small content-distribution tree: the home server (0) feeds two
  // regional caches; one region has a hot pocket of clients.
  const RoutingTree tree =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 2, 2});
  const std::vector<double> demand = {0, 10, 10, 120, 20, 15, 15};

  std::printf("Routing tree (requests flow from leaves toward 0):\n%s\n",
              RenderTree(tree, [&](NodeId v) {
                return "E=" + AsciiTable::Num(demand[v], 0);
              }).c_str());

  // Offline optimum: what is the best any on-path caching scheme can do?
  const WebFoldResult tlb = WebFold(tree, demand);
  std::printf("WebFold says the tree load balanced assignment is:\n");
  for (NodeId v = 0; v < tree.size(); ++v)
    std::printf("  node %d serves %6.2f req/s (fold %d)\n", v, tlb.load[v],
                tlb.fold_index[v]);
  std::printf("(GLE would be %.2f per node — %s here)\n\n",
              TotalRate(demand) / tree.size(),
              GleIsFeasible(tree, demand) ? "feasible" : "NOT feasible");

  // Distributed protocol: every node knows only its own load, its
  // children's forwarded streams, and gossiped neighbor loads.
  WebWaveSimulator protocol(tree, demand);
  std::printf("WebWave protocol, distance to TLB per iteration:\n");
  int iterations = 0;
  while (protocol.DistanceTo(tlb.load) > 1e-6 && iterations < 10000) {
    if (iterations % 10 == 0)
      std::printf("  t=%-4d  distance = %.6f\n", iterations,
                  protocol.DistanceTo(tlb.load));
    protocol.Step();
    ++iterations;
  }
  std::printf("  t=%-4d  distance = %.6f  <- converged\n\n", iterations,
              protocol.DistanceTo(tlb.load));

  std::printf("Final distributed assignment (vs offline optimum):\n");
  for (NodeId v = 0; v < tree.size(); ++v)
    std::printf("  node %d: %7.3f (TLB %7.3f)\n", v, protocol.served()[v],
                tlb.load[v]);
  return 0;
}
