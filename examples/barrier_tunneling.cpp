// Walkthrough of §5.2: a potential barrier blocks diffusion, and
// tunneling recovers — with per-period state dumps so you can watch the
// mechanism operate.
//
// Build & run:  ./build/examples/barrier_tunneling
#include <cstdio>
#include <string>

#include "core/webfold.h"
#include "doc/barrier.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "tree/routing_tree.h"

namespace webwave {
namespace {

void Dump(const DocWebWave& protocol, const RoutingTree& tree, int docs) {
  const auto loads = protocol.NodeLoads();
  for (NodeId v = 0; v < tree.size(); ++v) {
    std::printf("    node %d: load %7.2f | caches:", v, loads[v]);
    for (DocId d = 0; d < docs; ++d)
      if (protocol.IsCached(v, d))
        std::printf(" d%d(q=%.1f)", d + 1, protocol.ServedRate(v, d));
    std::printf("\n");
  }
}

}  // namespace
}  // namespace webwave

int main() {
  using namespace webwave;
  // Figure 7's instance: home 0 <- 1 <- {2, 3}.
  const RoutingTree tree = RoutingTree::FromParents({kNoNode, 0, 1, 1});
  DemandMatrix demand(4, 3);
  demand.set(3, 0, 120);  // node 3 requests d1
  demand.set(3, 1, 120);  // node 3 requests d2
  demand.set(2, 2, 120);  // node 2 requests d3

  DocWebWaveOptions options;
  options.enable_tunneling = true;
  DocWebWave protocol(tree, demand, options);
  // The paper's initial placement: d1 is already replicated at node 3,
  // d2 at node 1; d3 only at the home server.
  protocol.SeedCopy(3, 0, 120);
  protocol.SeedCopy(1, 1, 120);

  std::printf("Initial state (Figure 7a):\n");
  Dump(protocol, tree, 3);
  const bool barrier =
      IsPotentialBarrier(tree, 1, 2, protocol.NodeLoads(),
                         protocol.CacheSnapshot(),
                         protocol.ForwardedSnapshot());
  std::printf("  node 1 is a potential barrier for child 2: %s\n\n",
              barrier ? "YES" : "no");

  std::printf("Running the protocol (tunneling after >2 stalled periods):\n");
  std::size_t seen_tunnels = 0;
  for (int period = 1; period <= 300; ++period) {
    protocol.Step();
    if (protocol.tunnel_events().size() > seen_tunnels) {
      const TunnelEvent& ev = protocol.tunnel_events().back();
      std::printf(
          "  period %3d: TUNNEL — node %d fetched d%d from node %d, "
          "across barrier node %d\n",
          period, ev.node, ev.doc + 1, ev.source, ev.barrier);
      seen_tunnels = protocol.tunnel_events().size();
    }
    if (period == 3 || period == 10 || period == 50 || period == 300) {
      std::printf("  state after period %d:\n", period);
      Dump(protocol, tree, 3);
    }
  }

  const WebFoldResult tlb = WebFold(tree, demand.NodeTotals());
  std::printf("\nTLB says %.0f req/s per node; the protocol reached:\n",
              tlb.load[0]);
  for (NodeId v = 0; v < 4; ++v)
    std::printf("  node %d: %.2f\n", v, protocol.NodeLoads()[v]);
  protocol.CheckInvariants();
  std::printf("(all protocol invariants verified)\n");
  return 0;
}
