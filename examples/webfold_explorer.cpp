// webfold_explorer — an interactive-ish CLI for exploring TLB structure.
//
// Usage:
//   webfold_explorer [shape] [n] [pattern] [seed]
//     shape:   chain | star | binary | kary3 | caterpillar | random (default)
//     n:       node count (default 15)
//     pattern: uniform | leafy | hotleaf | zipfish | random (default)
//     seed:    RNG seed (default 1)
//
// Prints the tree with spontaneous rates, the folding trace, the fold
// structure, the TLB assignment, its sensitivity structure, and how many
// iterations the distributed protocol needs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/load_model.h"
#include "core/sensitivity.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "tree/builders.h"
#include "tree/render.h"
#include "util/ascii.h"

namespace webwave {
namespace {

RoutingTree MakeShape(const std::string& shape, int n, Rng& rng) {
  if (shape == "chain") return MakeChain(n);
  if (shape == "star") return MakeStar(n);
  if (shape == "binary") return MakeRandomBinaryTree(n, rng);
  if (shape == "kary3") {
    int depth = 0, total = 1;
    while (total < n) {
      ++depth;
      total = total * 3 + 1;
    }
    return MakeKaryTree(3, depth);
  }
  if (shape == "caterpillar") return MakeCaterpillar(std::max(1, n / 3), 2);
  return MakeRandomTree(n, rng);
}

std::vector<double> MakePattern(const std::string& pattern,
                                const RoutingTree& tree, Rng& rng) {
  std::vector<double> rates(static_cast<std::size_t>(tree.size()), 0.0);
  if (pattern == "uniform") {
    for (auto& r : rates) r = 10;
  } else if (pattern == "leafy") {
    for (NodeId v = 0; v < tree.size(); ++v)
      if (tree.is_leaf(v)) rates[static_cast<std::size_t>(v)] = 20;
  } else if (pattern == "hotleaf") {
    for (NodeId v = 0; v < tree.size(); ++v)
      rates[static_cast<std::size_t>(v)] = tree.is_leaf(v) ? 2 : 1;
    // Hottest at the deepest leaf.
    NodeId deepest = 0;
    for (NodeId v = 0; v < tree.size(); ++v)
      if (tree.depth(v) > tree.depth(deepest)) deepest = v;
    rates[static_cast<std::size_t>(deepest)] = 40.0 * tree.size();
  } else if (pattern == "zipfish") {
    for (NodeId v = 0; v < tree.size(); ++v)
      rates[static_cast<std::size_t>(v)] = 100.0 / (1 + v);
  } else {
    for (auto& r : rates) r = rng.NextDouble(0, 30);
  }
  return rates;
}

}  // namespace
}  // namespace webwave

int main(int argc, char** argv) {
  using namespace webwave;
  const std::string shape = argc > 1 ? argv[1] : "random";
  const int n = argc > 2 ? std::atoi(argv[2]) : 15;
  const std::string pattern = argc > 3 ? argv[3] : "random";
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  if (n < 1 || n > 100000) {
    std::fprintf(stderr, "n out of range\n");
    return 1;
  }

  Rng rng(seed);
  const RoutingTree tree = MakeShape(shape, n, rng);
  const std::vector<double> rates = MakePattern(pattern, tree, rng);
  std::printf("shape=%s n=%d pattern=%s seed=%llu\n\n", shape.c_str(),
              tree.size(), pattern.c_str(),
              static_cast<unsigned long long>(seed));

  const WebFoldResult r = WebFold(tree, rates);
  if (tree.size() <= 64) {
    std::printf("%s\n", RenderTree(tree, [&](NodeId v) {
                          return "E=" + AsciiTable::Num(rates[v], 1) +
                                 " L=" + AsciiTable::Num(r.load[v], 1) +
                                 " fold=" + std::to_string(r.fold_index[v]);
                        }).c_str());
  }
  std::printf("folding steps: %zu, final folds: %zu\n", r.trace.size(),
              r.folds.size());

  AsciiTable folds({"fold", "root", "size", "rate sum", "load per node"});
  for (std::size_t f = 0; f < r.folds.size() && f < 20; ++f)
    folds.AddRow({std::to_string(f), std::to_string(r.folds[f].root),
                  std::to_string(r.folds[f].members.size()),
                  AsciiTable::Num(r.folds[f].rate_sum, 1),
                  AsciiTable::Num(r.folds[f].per_node, 2)});
  std::printf("%s", folds.Render().c_str());
  if (r.folds.size() > 20)
    std::printf("... and %zu more folds\n", r.folds.size() - 20);

  const double total = TotalRate(rates);
  std::printf("\nGLE would be %.2f/node (%s); TLB max is %.2f.\n",
              total / tree.size(),
              GleIsFeasible(tree, rates) ? "feasible" : "infeasible",
              r.load[tree.root()]);
  const TlbSensitivity sens = ComputeTlbSensitivity(tree, rates);
  std::printf("smallest fold gap: %.3f (a unit of demand in a fold of size\n"
              "k moves every member by 1/k until folds restructure)\n",
              sens.min_fold_gap);

  WebWaveSimulator sim(tree, rates);
  const auto traj = sim.RunUntil(r.load, 1e-6 * (1 + total), 100000);
  std::printf("\nWebWave reaches the optimum in %zu iterations "
              "(initial distance %.2f).\n",
              traj.size() - 1, traj.front());
  return 0;
}
