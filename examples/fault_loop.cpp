// The fault plane in one page: a closed serving loop keeps learning
// while a whole subtree crashes, stays dead for two epochs, and
// recovers.  Each epoch the FaultSchedule emits deterministic
// crash/recover events, the FaultProjector re-homes the dead nodes'
// quota to their nearest live ancestor copies (total rate conserved),
// and the serving plane routes requests past the outage with bounded
// failover retries — so clients under the dead subtree still get
// served, and the balance snaps back when the nodes return.
#include <cstdio>
#include <string>
#include <vector>

#include "core/webwave_batch.h"
#include "fault/fault_projector.h"
#include "fault/fault_schedule.h"
#include "serve/closed_loop.h"
#include "serve/epoch_driver.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  const int nodes = 2000, docs = 8, epochs = 6;
  const std::size_t window = 80000;

  std::printf(
      "Fault-plane closed loop on a %d-node tree, %d documents: whole\n"
      "subtrees crash in two-epoch outage windows and recover.  Quota\n"
      "re-homes to the nearest live copies, failover routing climbs past\n"
      "the dead nodes, and the loop keeps learning from folded arrivals\n"
      "straight through each outage.\n\n",
      nodes, docs);

  Rng rng(7);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  std::vector<std::vector<double>> guess(docs);
  for (auto& lane : guess) lane.assign(tree.size(), 1e-3);
  BatchWebWaveSimulator sim(tree, std::move(guess), {});
  ArrivalFold fold(tree.size(), docs);

  FaultScheduleOptions fopt;
  fopt.pattern = FaultPattern::kSubtreeOutage;
  fopt.max_subtree_fraction = 0.05;
  fopt.outage_epochs = 2;
  fopt.start_epoch = 2;
  fopt.seed = 3;
  FaultSchedule faults(tree, fopt);

  FaultProjector projector(tree);
  EpochDriver::Options dopt;
  dopt.steps_per_epoch = 40;
  EpochDriver driver(sim, dopt);
  driver.AttachFaults(&projector);

  AsciiTable table({"epoch", "down", "events", "rehomed", "hit %",
                    "failovers", "dropped", "max load"});
  std::vector<Request> buf;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    RequestGenerator gen(
        tree, docs,
        {RotatingHotSpotComponent(tree, docs, 1.0, 40.0, 0.1, epoch, 4)},
        11 + epoch);
    gen.NextBatch(window, &buf);
    const std::size_t half = window / 2;
    ServingOptions opt;
    opt.offered_rate = gen.total_rate();

    // First half from the stale copies (and last epoch's down set); the
    // fold counts every arrival, outage or not — that's how the engine
    // keeps learning while nodes are dark.
    ServingPlane stale(tree, driver.serving(), opt);
    driver.InstallDown(stale);
    stale.Serve(Span<Request>(buf.data(), half));
    fold.Count(Span<Request>(buf.data(), half));

    // Advance the fault schedule one epoch and drive the whole control
    // step — demand into the engine, diffusion, snapshot re-sync,
    // re-homing around the transitions (conservation asserted inside).
    std::vector<DemandEvent> churn = fold.Drain(half / gen.total_rate());
    const std::vector<FaultEvent> events = faults.NextEvents();
    driver.ApplyEpoch(Span<DemandEvent>(churn.data(), churn.size()),
                      Span<const FaultEvent>(events.data(), events.size()));

    ServingPlane fresh(tree, driver.serving(), opt);
    driver.InstallDown(fresh);
    fresh.Serve(Span<Request>(buf.data() + half, window - half));
    const ServingMetrics& m = fresh.metrics();
    table.AddRow(
        {std::to_string(epoch),
         AsciiTable::Int(static_cast<long long>(projector.down().size())),
         AsciiTable::Int(static_cast<long long>(events.size())),
         AsciiTable::Int(projector.evicted_cells()),
         AsciiTable::Num(100 * m.HitRatio(), 1),
         AsciiTable::Int(static_cast<long long>(m.failovers)),
         AsciiTable::Int(static_cast<long long>(m.dropped_requests)),
         AsciiTable::Int(static_cast<long long>(m.MaxServed()))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The outage moves load without losing it: re-homing conserved the\n"
      "placed rate every epoch (checked above), requests failed over past\n"
      "the dead subtree instead of vanishing, and when the nodes returned\n"
      "the diffused balance was re-admitted unchanged.\n");
  return 0;
}
