// From topology to routing trees to balanced caching: the full pipeline.
//
// Generates an Internet-like Waxman graph, picks home servers, derives
// their shortest-path routing trees (the paper's "forest of trees"),
// computes each tree's TLB assignment, and runs the distributed protocol
// on the busiest tree.
//
// Build & run:  ./build/examples/internet_forest
#include <cstdio>
#include <string>

#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "stats/summary.h"
#include "topology/generators.h"
#include "topology/spt.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  Rng rng(404);
  const Network net = MakeWaxman(60, 0.5, 0.2, rng);
  std::printf("Waxman topology: %d nodes, %d links, connected: %s\n\n",
              net.size(), net.edge_count(),
              net.IsConnected() ? "yes" : "no");

  const std::vector<int> homes = {0, 17, 42};
  const RoutingForest forest = MakeRoutingForest(net, homes);

  AsciiTable table({"home", "tree height", "leaves", "TLB max load",
                    "GLE feasible"});
  for (std::size_t i = 0; i < forest.trees.size(); ++i) {
    const RoutingTree& tree = forest.trees[i];
    std::vector<double> demand(static_cast<std::size_t>(tree.size()), 0.0);
    int leaves = 0;
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (tree.is_leaf(v)) {
        demand[static_cast<std::size_t>(v)] = rng.NextDouble(20, 120);
        ++leaves;
      }
    }
    const WebFoldResult r = WebFold(tree, demand);
    double max_load = 0;
    for (const double l : r.load) max_load = std::max(max_load, l);
    table.AddRow({std::to_string(forest.homes[i]),
                  std::to_string(tree.height()), std::to_string(leaves),
                  AsciiTable::Num(max_load, 1),
                  GleIsFeasible(tree, demand) ? "yes" : "no"});
  }
  std::printf("%s\n", table.Render().c_str());

  const std::vector<int> mult = InteriorMultiplicity(forest);
  int shared = 0;
  for (const int m : mult) shared += m > 1;
  std::printf("%d of %d nodes are interior to more than one routing tree\n\n",
              shared, net.size());

  // Run the distributed protocol end-to-end on the first home's tree.
  const RoutingTree& tree = forest.trees[0];
  std::vector<double> demand(static_cast<std::size_t>(tree.size()), 0.0);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v)) demand[static_cast<std::size_t>(v)] = rng.NextDouble(20, 120);
  const WebFoldResult tlb = WebFold(tree, demand);
  WebWaveSimulator protocol(tree, demand);
  const auto traj = protocol.RunUntil(tlb.load, 1e-6, 20000);
  std::printf(
      "WebWave on home %d's tree: converged to TLB in %zu iterations\n"
      "(initial distance %.1f, final %.2g; max TLB load %.1f vs GLE %.1f)\n",
      forest.homes[0], traj.size() - 1, traj.front(), traj.back(),
      tlb.load[tree.root()], TotalRate(demand) / tree.size());
  return 0;
}
