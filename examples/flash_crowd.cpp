// A document gets hot: watch caches bloom down the routing tree.
//
// The scenario the paper's introduction motivates — a published document
// suddenly drawing a flash crowd.  We run the document-level protocol to
// visualize where copies appear, then the packet-level simulation to
// measure latency and balance with real messages.
//
// Build & run:  ./build/examples/flash_crowd
#include <cstdio>
#include <string>

#include "core/webfold.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "proto/packet_sim.h"
#include "stats/summary.h"
#include "tree/builders.h"
#include "tree/render.h"
#include "util/ascii.h"

int main() {
  using namespace webwave;
  const RoutingTree tree = MakeKaryTree(3, 2);  // 13 nodes
  const DocId hot = 0;
  Rng rng(7);
  // Flash crowd: baseline Zipf demand everywhere plus 80 req/s for the hot
  // document from every node under subtree 1.
  const DemandMatrix demand =
      FlashCrowdDemand(tree, 8, 2.0, 80.0, hot, /*epicenter=*/1, rng);

  std::printf("Flash crowd for d0 in subtree(1); total offered %.0f req/s\n\n",
              demand.Total());

  DocWebWave protocol(tree, demand);
  const auto snapshot = [&](int period) {
    std::printf("After %3d diffusion periods — who caches the hot doc:\n",
                period);
    std::printf("%s\n", RenderTree(tree, [&](NodeId v) {
                          std::string s = protocol.IsCached(v, hot)
                                              ? "HOT copy, serves " +
                                                    AsciiTable::Num(
                                                        protocol.ServedRate(v, hot), 1)
                                              : "-";
                          return s;
                        }).c_str());
  };
  snapshot(0);
  for (int t = 1; t <= 200; ++t) {
    protocol.Step();
    if (t == 5 || t == 200) snapshot(t);
  }
  std::printf("Copies of the hot doc: %d of %d nodes; replications: %d, "
              "evictions: %d\n\n",
              protocol.CopyCount(hot), tree.size(),
              protocol.replication_count(), protocol.eviction_count());

  // Packet-level check: how does this feel for clients?
  const WebFoldResult tlb = WebFold(tree, demand.NodeTotals());
  for (const CachePolicy policy :
       {CachePolicy::kNoCaching, CachePolicy::kWebWave}) {
    PacketSimOptions opt;
    opt.policy = policy;
    opt.duration = 30 * kMicrosPerSecond;
    opt.warmup = 10 * kMicrosPerSecond;
    opt.seed = 3;
    const PacketSimReport report =
        PacketSim(tree, demand, opt, tlb.load).Run();
    std::printf(
        "%-12s  mean hit depth %.2f hops, mean response %.1f ms, load CoV "
        "%.3f\n",
        PolicyName(policy), report.mean_hit_depth, report.mean_response_ms,
        CoefficientOfVariation(report.measured_loads));
  }
  std::printf(
      "\nThe hot document's copies follow demand down the tree, cutting\n"
      "both the home server's load and the clients' response time.\n");
  return 0;
}
