// The netd fleet in one page: carve a serving subtree out of a large
// internet tree, hand its WebWave quotas to four forked cache-server
// daemons as one QuotaWireTable byte blob, drive them over loopback
// sockets with the deterministic loadgen, and check the fleet's summed
// counters against an in-process ServingPlane replaying the identical
// (seed, i) request stream.  The counters are not close — they are
// EQUAL, because block_size = 1 makes every admission decision a pure
// function of (req_id, cell) and both transports run the same
// ServingPlane core on the same quota bytes.  The demo then crashes a
// subtree root and shows the equality holding through failover routing.
//
// The telemetry plane rides along: sampled request tracing is on (the
// fleet's merged trace must equal the oracle's record for record), the
// loadgen scrapes live kStatsRequest rounds mid-run, and the final
// counters are dumped as a Prometheus-style exposition to
// netd_demo_stats.prom.
//
// The last act is the survivable fleet (PR 9): a multi-epoch run where a
// scheduled daemon is SIGKILLed at an epoch boundary and later re-forked,
// rejoining via Hello and re-synced by a kQuotaDelta diff — and the
// summed counters (live finals + the victim's pre-kill scrape) still
// equal the multi-epoch oracle bit for bit.
//
// The latency plane (PR 10) rides along too: every kStatsReply carries
// the daemon's serve-time histogram, so the demo prints fleet latency
// percentiles scraped over the wire, exposes real Prometheus histogram
// families, and shows each SIGKILL victim's flight-recorder ring —
// scraped at the quiesced boundary just before the kill.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"

#include "doc/catalog.h"
#include "doc/placement.h"
#include "fault/process_faults.h"
#include "netd/cluster.h"
#include "netd/epoch_plan.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "serve/quota_snapshot.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"
#include "wire/quota_wire.h"

int main() {
  using namespace webwave;
  const int big_nodes = 120000, docs = 8, servers = 4;
  const std::uint64_t requests = 120000;

  std::printf(
      "netd demo: %d-node tree, a carved serving subtree, %d forked\n"
      "daemons on loopback, %llu requests — every serving counter checked\n"
      "for exact equality against the in-process oracle.\n\n",
      big_nodes, servers, static_cast<unsigned long long>(requests));

  Rng rng(33);
  const RoutingTree big = MakeRandomTree(big_nodes, rng);
  NodeId pivot = big.root();
  for (const NodeId v : big.preorder())
    if (!big.is_root(v) && big.subtree_size(v) >= 1500 &&
        big.subtree_size(v) <= 8000) {
      pivot = v;
      break;
    }
  const CarvedTree carved = CarveSubtree(big, pivot);
  const RoutingTree tree = RoutingTree::FromParents(carved.parents);
  std::printf("carved the %d-node subtree under node %d (height %d)\n",
              tree.size(), pivot, tree.height());

  DemandMatrix demand(tree.size(), docs);
  Rng drng(7);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v))
      for (DocId d = 0; d < docs; ++d) demand.set(v, d, drng.NextDouble(0.1, 4.0));
  const PlacementResult placement = DerivePlacement(tree, demand);
  const QuotaSnapshot snapshot =
      QuotaSnapshot::FromPlacement(tree, placement, demand, 1e-9);

  NetdClusterConfig config;
  config.parents = tree.parents();
  config.owner = PartitionOwners(tree, servers);
  config.server_count = servers;
  QuotaWireTable::Serialize(snapshot, &config.quota_blob);
  config.serving.block_size = 1;
  config.serving.threads = 1;
  config.docs = docs;
  config.stream_seed = 0xfeedULL;
  config.total_requests = requests;
  config.serving.trace = true;
  config.serving.trace_sample_shift = 8;  // ~1/256 requests traced
  config.stats_scrape_period_ms = 2;      // live mid-run stats rounds
  std::printf("quota blob: %zu bytes shared by all %d daemons and the oracle\n\n",
              config.quota_blob.size(), servers);

  bool all_exact = true;
  PrometheusWriter prom;
  for (const bool faulted : {false, true}) {
    config.down.clear();
    if (faulted)
      for (const NodeId v : tree.preorder())
        if (!tree.is_root(v) && tree.subtree_size(v) >= tree.size() / 20) {
          config.down.push_back(v);
          break;
        }

    const NetdRunResult run = RunNetdCluster(config);
    std::vector<TraceEvent> oracle_trace;
    const ServingMetrics oracle = ReplayOracle(config, &oracle_trace);
    const WireCounters want = CountersFromMetrics(oracle);
    const bool exact = run.ok && ServingCountersEqual(run.fleet, want) &&
                       run.client_hop_sum == oracle.hop_sum &&
                       run.trace == oracle_trace;
    all_exact = all_exact && exact;

    std::printf("--- %s fleet (%zu down) ---\n",
                faulted ? "faulted" : "all-live", config.down.size());
    AsciiTable table({"side", "requests", "cache", "home", "hop sum",
                      "failovers", "dropped", "forwards"});
    auto row = [&](const char* label, const WireCounters& c,
                   unsigned long long fw) {
      table.AddRow({label, AsciiTable::Int(static_cast<long long>(c.requests)),
                    AsciiTable::Int(static_cast<long long>(c.cache_served)),
                    AsciiTable::Int(static_cast<long long>(c.home_served)),
                    AsciiTable::Int(static_cast<long long>(c.hop_sum)),
                    AsciiTable::Int(static_cast<long long>(c.failovers)),
                    AsciiTable::Int(static_cast<long long>(c.dropped_requests)),
                    AsciiTable::Int(static_cast<long long>(fw))});
    };
    for (int s = 0; s < servers; ++s)
      row(("daemon " + std::to_string(s)).c_str(),
          run.per_server[static_cast<std::size_t>(s)],
          run.per_server[static_cast<std::size_t>(s)].net_forwards);
    row("fleet sum", run.fleet, run.fleet.net_forwards);
    row("oracle", want, 0);
    std::printf("%s%s\n", table.Render().c_str(),
                exact ? "counters EXACTLY equal" : "COUNTER MISMATCH");
    std::printf(
        "%zu live scrape round(s) mid-run, %zu trace records "
        "(fleet == oracle record for record: %s)\n\n",
        run.samples.empty() ? 0 : run.samples.size() - 1, run.trace.size(),
        run.trace == oracle_trace ? "yes" : "NO");

    const char* phase = faulted ? "faulted" : "live";
    for (int s = 0; s < servers; ++s) {
      const WireCounters& c = run.per_server[static_cast<std::size_t>(s)];
      const PrometheusWriter::Labels labels = {
          {"phase", phase}, {"server", std::to_string(s)}};
      prom.AddCounter("webwave.netd.requests", labels, c.requests);
      prom.AddCounter("webwave.netd.cache_served", labels, c.cache_served);
      prom.AddCounter("webwave.netd.home_served", labels, c.home_served);
      prom.AddCounter("webwave.netd.hop_sum", labels, c.hop_sum);
      prom.AddCounter("webwave.netd.failovers", labels, c.failovers);
      prom.AddCounter("webwave.netd.dropped_requests", labels,
                      c.dropped_requests);
      prom.AddCounter("webwave.netd.net_forwards", labels, c.net_forwards);
      prom.AddCounter("webwave.netd.gossip_sent", labels, c.gossip_sent);
    }
    prom.AddGauge("webwave.netd.scrape_rounds", {{"phase", phase}},
                  static_cast<double>(
                      run.samples.empty() ? 0 : run.samples.size() - 1));
    prom.AddGauge("webwave.netd.trace_records", {{"phase", phase}},
                  static_cast<double>(run.trace.size()));

    // The latency plane: the fleet's serve-time histograms arrive in the
    // same v4 kStatsReply as the counters; the loadgen buckets its own
    // send->reply times.  Timing is reported, never asserted.
    LatencyHistogram serve, client_lat;
    for (const LatencyHistogram& h : run.server_hist) serve.Merge(h);
    for (const LatencyHistogram& h : run.latency_per_server)
      client_lat.Merge(h);
    std::printf(
        "latency (wire-scraped): fleet serve p50=%llu p99=%llu ns over "
        "%llu frames;\nclient send->reply p50=%llu p99=%llu ns; loadgen "
        "loop stall max %.2f ms\n\n",
        static_cast<unsigned long long>(serve.ValueAtQuantile(0.5)),
        static_cast<unsigned long long>(serve.ValueAtQuantile(0.99)),
        static_cast<unsigned long long>(serve.count()),
        static_cast<unsigned long long>(client_lat.ValueAtQuantile(0.5)),
        static_cast<unsigned long long>(client_lat.ValueAtQuantile(0.99)),
        static_cast<double>(run.loop_max_stall_ns) / 1e6);
    prom.AddHistogram("webwave.netd.serve_time_ns", {{"phase", phase}},
                      serve);
    prom.AddHistogram("webwave.netd.client_latency_ns", {{"phase", phase}},
                      client_lat);
  }

  // --- The survivable fleet: kill + restart mid-run -------------------
  {
    NetdClusterConfig fc = config;
    fc.down.clear();
    fc.load_window_factor = 4.0;

    EpochPlanOptions eopt;
    eopt.epochs = 5;
    eopt.requests_per_epoch = requests / 5;
    eopt.faults.pattern = FaultPattern::kSingleNodes;
    eopt.faults.crash_fraction = 0.4;
    eopt.faults.outage_epochs = 1;
    eopt.faults.start_epoch = 1;
    // Probe for a seed whose pure (seed, server, epoch) draw schedules at
    // least one kill and one restart — the identity holds for any plan,
    // the probe just guarantees the demo demonstrates one.
    for (std::uint64_t s = 1; s <= 64; ++s) {
      eopt.faults.seed = s;
      const ProcessFaultPlan p =
          BuildProcessFaultPlan(servers, eopt.epochs, eopt.faults);
      std::size_t kills = 0, restarts = 0;
      for (const auto& k : p.kill_at) kills += k.size();
      for (const auto& r : p.restart_at) restarts += r.size();
      if (kills >= 1 && restarts >= 1) break;
    }
    const ProcessFaultPlan plan = BuildEpochPlan(&fc, eopt);

    std::printf("--- survivable fleet (5 epochs, faults injected) ---\n");
    for (int e = 0; e < eopt.epochs; ++e) {
      const auto& kills = plan.kill_at[static_cast<std::size_t>(e)];
      const auto& restarts = plan.restart_at[static_cast<std::size_t>(e)];
      if (kills.empty() && restarts.empty()) continue;
      std::printf("entering epoch %d:", e);
      for (const int s : kills) std::printf(" SIGKILL daemon %d", s);
      for (const int s : restarts) std::printf(" re-fork daemon %d", s);
      std::printf("\n");
    }

    const NetdRunResult run = RunNetdCluster(fc);
    std::vector<TraceEvent> oracle_trace;
    std::vector<WireCounters> per_epoch;
    const ServingMetrics oracle = ReplayOracle(fc, &oracle_trace, &per_epoch);
    bool exact = run.ok &&
                 ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)) &&
                 run.trace == oracle_trace;
    // Each quiesced barrier sample (plus the victims retired through that
    // transition) must equal the oracle's cumulative counters after the
    // epoch it closes — through the kill AND after the delta re-sync.
    std::size_t retired_used = 0;
    for (std::size_t i = 0; i < run.epoch_samples.size(); ++i) {
      retired_used +=
          fc.epochs[i + 1].kill_servers.size();
      std::vector<WireCounters> parts = run.epoch_samples[i].per_server;
      parts.insert(parts.end(), run.retired.begin(),
                   run.retired.begin() +
                       static_cast<std::ptrdiff_t>(retired_used));
      const bool ok = i < per_epoch.size() &&
                      ServingCountersEqual(SumCounters(parts), per_epoch[i]);
      std::printf("barrier closing epoch %zu: %s\n", i,
                  ok ? "== oracle cumulative (bit-exact)" : "MISMATCH");
      exact = exact && ok;
    }
    all_exact = all_exact && exact;
    std::printf(
        "end of run: %zu daemon(s) retired mid-run, %zu rejoined (Hello\n"
        "epoch 0, brought current by kQuotaDelta), %llu reconnects,\n"
        "outbox peak under the %zu-byte watermark, 0 forwards shed.\n"
        "fleet sum vs multi-epoch oracle: %s\n\n",
        run.retired.size(), run.rejoin_hello_epochs.size(),
        static_cast<unsigned long long>(run.fleet.reconnects),
        fc.outbox_watermark_bytes,
        exact ? "EXACT through kill, restart and re-sync"
              : "COUNTER MISMATCH");

    // The flight recorder: each victim's ring was scraped over the wire
    // (kFlightRequest) at the quiesced boundary before its SIGKILL — the
    // crash-surviving "what was it doing" record.  Show the tail.
    for (const NetdRunResult::FlightDump& d : run.flights) {
      if (!d.victim) continue;
      std::printf("flight ring of SIGKILL victim daemon %d (%zu events, "
                  "last 5):\n", d.server, d.events.size());
      const std::size_t from = d.events.size() > 5 ? d.events.size() - 5 : 0;
      const std::vector<FlightEvent> tail(d.events.begin() +
                                              static_cast<std::ptrdiff_t>(from),
                                          d.events.end());
      std::printf("%s", FlightRecorder::Dump(
                            tail, static_cast<std::uint8_t>(d.server))
                            .c_str());
    }

    prom.AddGauge("webwave.netd.retired", {{"phase", "survivable"}},
                  static_cast<double>(run.retired.size()));
    prom.AddGauge("webwave.netd.rejoins", {{"phase", "survivable"}},
                  static_cast<double>(run.rejoin_hello_epochs.size()));
    prom.AddCounter("webwave.netd.reconnects", {{"phase", "survivable"}},
                    run.fleet.reconnects);
    prom.AddCounter("webwave.netd.shed_forwards", {{"phase", "survivable"}},
                    run.fleet.shed_forwards);
  }

  const char* prom_out = "netd_demo_stats.prom";
  std::printf("--- Prometheus exposition (%s) ---\n%s\n",
              prom.WriteFile(prom_out) ? "written to netd_demo_stats.prom"
                                       : "FAILED to write",
              prom.Render().c_str());

  if (!all_exact) {
    std::printf("demo FAILED: fleet and oracle disagree\n");
    return 1;
  }
  std::printf(
      "The socket fleet and the in-process plane are the same protocol on\n"
      "two transports: the wire layer moves the decisions, it never makes\n"
      "them.\n");
  return 0;
}
