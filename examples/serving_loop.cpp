// The capacity-aware closed serving loop in one page: generate requests,
// serve them from the *resident* diffused copies (every node has a small
// byte budget, so quota-weighted eviction really fires), fold the
// measured arrivals back into the diffusion engine, re-balance, re-clamp,
// repeat — while the hot spot rotates.  The engine never sees the
// generator's true rates, and the serving plane never sees a copy the
// store evicted: its quota has spilled up-tree to the surviving ancestor.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/webwave_batch.h"
#include "serve/closed_loop.h"
#include "serve/epoch_driver.h"
#include "serve/placement_policy.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "store/cache_store.h"
#include "store/capacity_projector.h"
#include "store/document_sizes.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  const int nodes = 2000, docs = 8, epochs = 4, rotation = 4;
  const std::size_t window = 80000;

  std::printf(
      "Capacity-aware closed loop on a %d-node tree, %d documents: every\n"
      "node stores at most 30%% of the catalog bytes; each epoch the hot\n"
      "spot moves a quarter turn and the engine re-balances only from\n"
      "folded arrival counts (serve -> fold -> re-diffuse -> re-clamp).\n\n",
      nodes, docs);

  Rng rng(7);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  std::vector<std::vector<double>> guess(docs);
  for (auto& lane : guess) lane.assign(tree.size(), 1e-3);
  BatchWebWaveSimulator sim(tree, std::move(guess), {});
  ArrivalFold fold(tree.size(), docs);

  // Lognormal document sizes; per-node budget 0.3x the catalog working
  // set — small enough that hot nodes must evict their thinnest copies.
  CapacityProjector projector(
      tree, CacheStore::WorkingSetStore(
                tree, DocumentSizes::LogNormal(docs, 64 * 1024, 1.0, 7), 0.3));
  EpochDriver::Options dopt;
  dopt.steps_per_epoch = 60;
  EpochDriver driver(sim, dopt);
  driver.AttachCapacity(&projector);

  AsciiTable table({"epoch", "evicted", "spill %", "webwave max", "home max",
                    "improvement", "hit %"});
  std::vector<Request> buf;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    RequestGenerator gen(
        tree, docs,
        {RotatingHotSpotComponent(tree, docs, 1.0, 40.0, 0.1, epoch,
                                  rotation)},
        11 + epoch);
    gen.NextBatch(window, &buf);
    const std::size_t half = window / 2;
    ServingOptions opt;
    opt.offered_rate = gen.total_rate();

    // First half from the stale clamped copies; fold what arrived.
    ServingPlane stale(tree, driver.serving(), opt);
    stale.Serve(Span<Request>(buf.data(), half));
    fold.Count(Span<Request>(buf.data(), half));

    // One call per control epoch: demand into the engine, diffusion,
    // snapshot re-sync, capacity re-clamp.  Then serve the second half
    // from the refreshed resident copies.
    std::vector<DemandEvent> churn = fold.Drain(half / gen.total_rate());
    driver.ApplyEpoch(Span<DemandEvent>(churn.data(), churn.size()), {});
    ServingPlane fresh(tree, driver.serving(), opt);
    fresh.Serve(Span<Request>(buf.data() + half, window - half));
    ServingPlane home(tree, HomeOnlyPolicy().Place(tree, gen.ExpectedLanes()),
                      opt);
    home.Serve(Span<Request>(buf.data() + half, window - half));

    const auto ww = fresh.metrics().MaxServed();
    const auto ho = home.metrics().MaxServed();
    table.AddRow({std::to_string(epoch),
                  AsciiTable::Int(projector.evicted_cells()),
                  AsciiTable::Num(100 * projector.spilled_rate() /
                                      driver.snapshot().total_rate(), 1),
                  AsciiTable::Int(static_cast<long long>(ww)),
                  AsciiTable::Int(static_cast<long long>(ho)),
                  AsciiTable::Num(static_cast<double>(ho) /
                                      std::max<std::uint64_t>(1, ww), 1) + "x",
                  AsciiTable::Num(100 * fresh.metrics().HitRatio(), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Even with every node capped at 0.3x the catalog — thousands of\n"
      "copies evicted, a quarter of the placed rate spilled up-tree — the\n"
      "loop still serves several times below home-only's worst-case load,\n"
      "and the balance survives the rotating hot spot.\n");
  return 0;
}
