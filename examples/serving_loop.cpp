// The closed serving loop in one page: generate requests, serve them from
// the diffused copies, fold the measured arrivals back into the diffusion
// engine, re-balance, repeat — while the hot spot rotates.  The engine
// never sees the generator's true rates; it learns demand purely from
// what the data plane measured.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/webwave_batch.h"
#include "serve/closed_loop.h"
#include "serve/placement_policy.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/rng.h"

int main() {
  using namespace webwave;
  const int nodes = 2000, docs = 8, epochs = 4, rotation = 4;
  const std::size_t window = 80000;

  std::printf(
      "Closed serving loop on a %d-node tree, %d documents: each epoch the\n"
      "hot spot moves a quarter turn; the engine re-balances only from\n"
      "folded arrival counts (generate -> serve -> fold -> re-diffuse).\n\n",
      nodes, docs);

  Rng rng(7);
  const RoutingTree tree = MakeRandomTree(nodes, rng);

  // The diffusion engine starts with a flat, ignorant demand guess.
  std::vector<std::vector<double>> guess(docs);
  for (auto& lane : guess) lane.assign(tree.size(), 1e-3);
  BatchWebWaveSimulator sim(tree, std::move(guess), {});
  ArrivalFold fold(tree.size(), docs);

  // One quota snapshot lives across the whole run; after each re-balance
  // it is re-synced in place from the lanes diffusion actually moved
  // (RefreshFromBatch + ClearDirtyLanes) instead of rebuilt from scratch.
  QuotaSnapshot snap = QuotaSnapshot::FromBatch(sim, 1e-12);
  sim.ClearDirtyLanes();

  AsciiTable table({"epoch", "phase", "webwave max", "home max",
                    "improvement", "hit %"});
  std::vector<Request> buf;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    RequestGenerator gen(
        tree, docs,
        {RotatingHotSpotComponent(tree, docs, 1.0, 40.0, 0.1, epoch,
                                  rotation)},
        11 + epoch);
    gen.NextBatch(window, &buf);
    const std::size_t half = window / 2;
    ServingOptions opt;
    opt.offered_rate = gen.total_rate();

    // Serve the first half from the (stale) diffused copies and fold what
    // actually arrived back into the control plane.
    ServingPlane stale(tree, snap, opt);
    stale.Serve(Span<Request>(buf.data(), half));
    fold.Count(Span<Request>(buf.data(), half));
    sim.ApplyDemandEvents(fold.Drain(half / gen.total_rate()));
    for (int s = 0; s < 60; ++s) sim.Step();

    // The second half is served from the re-balanced placement; home-only
    // faces the same stream as the baseline to beat.
    snap.RefreshFromBatch(sim);
    sim.ClearDirtyLanes();
    ServingPlane fresh(tree, snap, opt);
    fresh.Serve(Span<Request>(buf.data() + half, window - half));
    ServingPlane home(tree, HomeOnlyPolicy().Place(tree, gen.ExpectedLanes()),
                      opt);
    home.Serve(Span<Request>(buf.data() + half, window - half));

    const auto ww = fresh.metrics().MaxServed();
    const auto ho = home.metrics().MaxServed();
    table.AddRow({std::to_string(epoch),
                  AsciiTable::Num(static_cast<double>(epoch % rotation) /
                                      rotation, 2),
                  AsciiTable::Int(static_cast<long long>(ww)),
                  AsciiTable::Int(static_cast<long long>(ho)),
                  AsciiTable::Num(static_cast<double>(ho) /
                                      std::max<std::uint64_t>(1, ww), 1) + "x",
                  AsciiTable::Num(100 * fresh.metrics().HitRatio(), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The home server's worst-case load drops by the improvement factor\n"
      "every epoch, even though the hot region keeps moving: measured\n"
      "demand -> DemandEvents -> diffusion -> fresh quota snapshot.\n");
  return 0;
}
