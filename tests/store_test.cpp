// The capacity-constrained cache store: deterministic size models,
// quota-weighted eviction, spill-conserving capacity projection, its
// churn-proportional Refresh, and the end-to-end determinism of the
// capacity-aware serving pipeline across thread counts and lane_block
// widths.
#include "store/cache_store.h"
#include "store/capacity_projector.h"
#include "store/document_sizes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/webwave_batch.h"
#include "serve/placement_policy.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "sim/churn.h"
#include "tree/builders.h"

namespace webwave {
namespace {

// Two snapshots must agree cell for cell, byte for byte (total_rate is
// FP-order sensitive between incremental and full paths, so it gets a
// relative tolerance instead).
void ExpectSameCells(const QuotaSnapshot& got, const QuotaSnapshot& want,
                     const char* where) {
  ASSERT_EQ(got.node_count(), want.node_count()) << where;
  ASSERT_EQ(got.doc_count(), want.doc_count()) << where;
  ASSERT_EQ(got.cell_count(), want.cell_count()) << where;
  for (NodeId v = 0; v < want.node_count(); ++v) {
    ASSERT_EQ(got.row_begin(v), want.row_begin(v)) << where << " node " << v;
    ASSERT_EQ(got.row_end(v), want.row_end(v)) << where << " node " << v;
  }
  for (std::int64_t c = 0; c < want.cell_count(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    ASSERT_EQ(got.cell_docs()[i], want.cell_docs()[i]) << where << " cell " << c;
    ASSERT_EQ(got.cell_rates()[i], want.cell_rates()[i])
        << where << " cell " << c;
    ASSERT_EQ(got.cell_fractions()[i], want.cell_fractions()[i])
        << where << " cell " << c;
  }
  EXPECT_NEAR(got.total_rate(), want.total_rate(),
              1e-9 * (1 + std::abs(want.total_rate())));
}

// Size models ------------------------------------------------------------

TEST(DocumentSizes, ModelsAreDeterministicAndPositive) {
  const DocumentSizes a = DocumentSizes::LogNormal(64, 65536, 1.2, 7);
  const DocumentSizes b = DocumentSizes::LogNormal(64, 65536, 1.2, 7);
  const DocumentSizes c = DocumentSizes::LogNormal(64, 65536, 1.2, 8);
  std::uint64_t total = 0;
  bool differs = false;
  for (DocId d = 0; d < 64; ++d) {
    EXPECT_EQ(a.bytes(d), b.bytes(d)) << "doc " << d;
    EXPECT_GE(a.bytes(d), 1u);
    differs = differs || a.bytes(d) != c.bytes(d);
    total += a.bytes(d);
  }
  EXPECT_TRUE(differs) << "different seeds drew identical size fields";
  EXPECT_EQ(a.total_bytes(), total);

  const DocumentSizes u = DocumentSizes::Uniform(5, 1000);
  EXPECT_EQ(u.total_bytes(), 5000u);
  EXPECT_EQ(u.max_bytes(), 1000u);

  const DocumentSizes z = DocumentSizes::ZipfRanked(16, 1 << 20, 1.0, 3);
  EXPECT_EQ(z.max_bytes(), 1u << 20);  // rank 0 sits somewhere
}

TEST(DocumentSizes, LogNormalCatalogRoundTripsThroughFromCatalog) {
  const Catalog catalog = Catalog::MakeLogNormal(32, 64.0, 1.0, 11);
  const DocumentSizes direct = DocumentSizes::LogNormal(32, 64.0 * 1024.0,
                                                        1.0, 11);
  const DocumentSizes via = DocumentSizes::FromCatalog(catalog);
  for (DocId d = 0; d < 32; ++d)
    EXPECT_EQ(via.bytes(d), direct.bytes(d)) << "doc " << d;
}

// Eviction ---------------------------------------------------------------

TEST(QuotaWeightedEviction, KeepsHighestRatePerByteAndLetsSmallDocsSlipIn) {
  // One cache node, three docs: doc 0 is hot but huge, docs 1 and 2 are
  // small.  Densities: 50/1000, 10/100, 1/100 — greedy order is doc 1,
  // doc 0, doc 2.  A 200-byte budget skips the 1000-byte doc 0 and still
  // admits doc 2 below it: smaller documents slip under the water line.
  QuotaSnapshot::Builder b(2, 3);
  b.Add(1, 0, 50.0);
  b.Add(1, 1, 10.0);
  b.Add(1, 2, 1.0);
  const QuotaSnapshot snap = std::move(b).Build();
  const DocumentSizes sizes = DocumentSizes::FromBytes({1000, 100, 100});

  QuotaWeightedEviction policy;
  std::vector<DocId> kept;
  std::uint64_t used = 0;
  policy.KeepSet(snap, 1, sizes, 200, &kept, &used);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1);
  EXPECT_EQ(kept[1], 2);
  EXPECT_EQ(used, 200u);

  // A budget that fits everything keeps everything.
  used = 0;
  policy.KeepSet(snap, 1, sizes, 1200, &kept, &used);
  EXPECT_EQ(kept.size(), 3u);
  EXPECT_EQ(used, 1200u);

  // Equal densities tie toward the lower document id.
  QuotaSnapshot::Builder t(2, 2);
  t.Add(1, 0, 5.0);
  t.Add(1, 1, 5.0);
  const QuotaSnapshot tied = std::move(t).Build();
  const DocumentSizes equal = DocumentSizes::Uniform(2, 100);
  used = 0;
  policy.KeepSet(tied, 1, equal, 100, &kept, &used);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 0);
}

TEST(CacheStore, HomeIsNeverBudgetedAndAlwaysResident) {
  const RoutingTree tree = MakeChain(3);
  QuotaSnapshot::Builder b(3, 2);
  b.Add(0, 0, 1.0);
  b.Add(0, 1, 1.0);
  b.Add(1, 0, 5.0);
  b.Add(2, 1, 5.0);
  const QuotaSnapshot snap = std::move(b).Build();
  CacheStore store = CacheStore::WorkingSetStore(
      tree, DocumentSizes::Uniform(2, 1000), 0.0);  // zero budget anywhere
  store.Admit(snap);
  EXPECT_TRUE(store.Resident(0, 0));
  EXPECT_TRUE(store.Resident(0, 1));
  EXPECT_FALSE(store.Resident(1, 0));
  EXPECT_FALSE(store.Resident(2, 1));
  EXPECT_EQ(store.bytes_used(1), 0u);
  EXPECT_EQ(store.resident_cells(), 2);
}

// Projection -------------------------------------------------------------

TEST(CapacityProjector, SpillClimbsToTheNearestSurvivingAncestor) {
  // Chain 0-1-2-3, one doc.  Copies at 1, 2, 3; budget admits one doc per
  // node, but the store is rigged so node 2 evicts (rate below 1 and 3).
  const RoutingTree tree = MakeChain(4);
  QuotaSnapshot::Builder b(4, 2);
  b.Add(1, 0, 10.0, 0.5);  // arrival 20
  b.Add(2, 0, 1.0, 0.25);  // arrival 4 — the eviction victim
  b.Add(2, 1, 8.0);        // doc 1 wins node 2's single slot
  b.Add(3, 0, 6.0, 0.75);  // arrival 8
  const QuotaSnapshot base = std::move(b).Build();
  // One 1000-byte doc fits per node (budget = 0.5 of the 2-doc working
  // set).
  CacheStore store = CacheStore::WorkingSetStore(
      tree, DocumentSizes::Uniform(2, 1000), 0.5);
  CapacityProjector projector(tree, std::move(store));
  projector.Project(base);
  const QuotaSnapshot& clamped = projector.clamped();

  // Node 2 kept doc 1 (rate 8 > 1); doc 0's quota there spills to node 1
  // (the nearest surviving copy of doc 0 on the way to the root).
  EXPECT_EQ(clamped.RateAt(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.RateAt(2, 1), 8.0);
  EXPECT_DOUBLE_EQ(clamped.RateAt(1, 0), 11.0);
  // Node 1's fraction re-derived against arrival 20 + 1 spilled.
  EXPECT_DOUBLE_EQ(clamped.FractionAt(1, 0), 11.0 / 21.0);
  // Node 3 survives untouched — bit-identical pass-through.
  EXPECT_DOUBLE_EQ(clamped.RateAt(3, 0), 6.0);
  EXPECT_DOUBLE_EQ(clamped.FractionAt(3, 0), 0.75);
  // Conservation, and the stats agree with what happened.
  EXPECT_NEAR(clamped.total_rate(), base.total_rate(), 1e-12);
  EXPECT_DOUBLE_EQ(projector.spilled_rate(), 1.0);
  EXPECT_EQ(projector.evicted_cells(), 1);
}

TEST(CapacityProjector, SpillSynthesizesAHomeCellWhenNoneExists) {
  const RoutingTree tree = MakeChain(3);
  QuotaSnapshot::Builder b(3, 1);
  b.Add(2, 0, 4.0);  // only copy sits at the leaf; the home has none
  const QuotaSnapshot base = std::move(b).Build();
  CapacityProjector projector(
      tree, CacheStore::WorkingSetStore(tree, DocumentSizes::Uniform(1, 100),
                                        0.0));
  projector.Project(base);
  const QuotaSnapshot& clamped = projector.clamped();
  EXPECT_EQ(clamped.RateAt(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(clamped.RateAt(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(clamped.FractionAt(0, 0), 1.0);
  EXPECT_NEAR(clamped.total_rate(), base.total_rate(), 1e-12);
}

TEST(CapacityProjector, OverProvisionedStoreClampsToTheBaseExactly) {
  Rng rng(31);
  const RoutingTree tree = MakeRandomTree(300, rng);
  const int docs = 6;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 2.0, 1.0)},
                       9);
  const QuotaSnapshot base =
      WebWaveTlbPolicy().Place(tree, gen.ExpectedLanes());
  CapacityProjector projector(
      tree, CacheStore::WorkingSetStore(
                tree, DocumentSizes::LogNormal(docs, 4096, 1.0, 5), 1.0));
  projector.Project(base);
  ExpectSameCells(projector.clamped(), base, "over-provisioned");
  EXPECT_EQ(projector.evicted_cells(), 0);
  EXPECT_EQ(projector.spilled_rate(), 0.0);
}

TEST(CapacityProjector, ConservesTotalRateUnderHeavyEviction) {
  Rng rng(37);
  const RoutingTree tree = MakeRandomTree(500, rng);
  const int docs = 12;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 3.0, 1.1)},
                       13);
  const QuotaSnapshot base =
      WebWaveTlbPolicy().Place(tree, gen.ExpectedLanes());
  for (const double multiple : {0.0, 0.05, 0.25, 0.6}) {
    CapacityProjector projector(
        tree, CacheStore::WorkingSetStore(
                  tree, DocumentSizes::LogNormal(docs, 8192, 1.2, 17),
                  multiple));
    projector.Project(base);
    EXPECT_NEAR(projector.clamped().total_rate(), base.total_rate(),
                1e-9 * base.total_rate())
        << "multiple " << multiple;
    // Every clamped cell sits at a resident node (or the home).
    const QuotaSnapshot& clamped = projector.clamped();
    for (NodeId v = 0; v < tree.size(); ++v)
      for (std::int64_t c = clamped.row_begin(v); c < clamped.row_end(v); ++c)
        EXPECT_TRUE(projector.store().Resident(
            v, clamped.cell_docs()[static_cast<std::size_t>(c)]))
            << "node " << v;
  }
}

// Determinism across threads and lane blocks ------------------------------

TEST(CapacityProjector, PipelineBitIdenticalAcrossThreadsAndLaneBlocks) {
  Rng rng(41);
  const RoutingTree tree = MakeRandomTree(800, rng);
  const int docs = 9;  // ragged against lane_block 4 and 8
  ChurnScheduleOptions copt;
  copt.pattern = ChurnPattern::kRotatingHotSpot;
  copt.doc_count = docs;
  copt.hot_fraction = 0.2;

  const DocumentSizes sizes = DocumentSizes::LogNormal(docs, 4096, 1.0, 23);
  std::vector<Request> stream;
  {
    RequestGenerator gen(tree, docs,
                         {ZipfLeafComponent(tree, docs, 2.0, 1.0)}, 77);
    gen.NextBatch(120000, &stream);
  }

  std::vector<QuotaSnapshot> clamps;
  std::vector<ServingMetrics> metrics;
  for (const int threads : {1, 2, 8}) {
    for (const int block : {1, 4, 8}) {
      ChurnSchedule schedule(tree, copt);
      WebWaveOptions wopt;
      wopt.threads = threads;
      wopt.lane_block = block;
      BatchWebWaveSimulator sim(tree, schedule.Lanes(), wopt);
      for (int s = 0; s < 20; ++s) sim.Step();
      sim.ApplyDemandEvents(schedule.NextEvents());
      for (int s = 0; s < 10; ++s) sim.Step();

      const QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, 1e-9);
      CapacityProjector projector(
          tree, CacheStore::WorkingSetStore(tree, sizes, 0.3));
      projector.Project(base);
      clamps.push_back(projector.clamped());

      ServingOptions sopt;
      sopt.threads = threads;
      sopt.offered_rate = 1000.0;
      ServingPlane plane(tree, projector.clamped(), sopt);
      plane.Serve(stream);
      metrics.push_back(plane.metrics());
    }
  }
  for (std::size_t i = 1; i < clamps.size(); ++i) {
    ExpectSameCells(clamps[i], clamps[0], "thread/lane_block sweep");
    EXPECT_TRUE(metrics[i] == metrics[0]) << "config " << i;
  }
  EXPECT_GT(metrics[0].requests, 0u);
}

// Incremental refresh -----------------------------------------------------

TEST(CapacityProjector, RefreshMatchesFullProjectionAcrossChurnEpochs) {
  Rng rng(47);
  const RoutingTree tree = MakeRandomTree(400, rng);
  const int docs = 10;
  ChurnScheduleOptions copt;
  copt.pattern = ChurnPattern::kRotatingHotSpot;
  copt.doc_count = docs;
  copt.hot_fraction = 0.15;
  copt.rotation_epochs = 5;
  ChurnSchedule schedule(tree, copt);

  BatchWebWaveSimulator sim(tree, schedule.Lanes(), {});
  for (int s = 0; s < 30; ++s) sim.Step();

  // A floor high enough that demand shifts move cells across it: the
  // base snapshot's copy sets must actually change shape for the
  // structural path to be exercised.
  const double min_rate = 1e-3;
  QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, min_rate);
  sim.ClearDirtyLanes();
  CapacityProjector incr(
      tree, CacheStore::WorkingSetStore(
                tree, DocumentSizes::LogNormal(docs, 2048, 1.1, 29), 0.35));
  incr.Project(base);

  NodeId gentle_leaf = 0;
  while (!tree.is_leaf(gentle_leaf)) ++gentle_leaf;
  bool saw_in_place = false, saw_rebuild = false;
  for (int epoch = 0; epoch < 8; ++epoch) {
    if (epoch < 6) {
      // Churn epochs: the rotating window moves, and on odd epochs
      // demand erupts at fresh interior nodes — copy sets change shape,
      // exercising the structural rebuild.
      sim.ApplyDemandEvents(schedule.NextEvents());
      if (epoch % 2 == 1) {
        std::vector<DemandEvent> shocks;
        for (NodeId v = 0; v < tree.size(); v += 37)
          shocks.push_back({(epoch * 3) % docs, v, rng.NextDouble(5, 20)});
        sim.ApplyDemandEvents(shocks);
      }
    } else {
      // Gentle epochs: nudge one already-demanding leaf's rate so only
      // values move — the in-place rewrite path.
      sim.ApplyDemandEvents(
          {{0, gentle_leaf, 2.0 + 0.01 * (epoch - 5)}});
    }
    for (int s = 0; s < 8; ++s) sim.Step();
    const std::vector<int> dirty = sim.DirtyLanes();
    base.RefreshFromBatch(sim);
    sim.ClearDirtyLanes();

    const bool in_place =
        incr.Refresh(base, Span<const int>(dirty.data(), dirty.size()));
    saw_in_place = saw_in_place || in_place;
    saw_rebuild = saw_rebuild || !in_place;

    CapacityProjector full(
        tree, CacheStore::WorkingSetStore(
                  tree, DocumentSizes::LogNormal(docs, 2048, 1.1, 29), 0.35));
    full.Project(base);
    ExpectSameCells(incr.clamped(), full.clamped(), "epoch refresh");
    EXPECT_NEAR(incr.spilled_rate(), full.spilled_rate(),
                1e-9 * (1 + full.spilled_rate()))
        << "epoch " << epoch;
    EXPECT_EQ(incr.evicted_cells(), full.evicted_cells()) << "epoch " << epoch;
  }
  // The scenario is built to hit both paths; losing either silently
  // halves the coverage.
  EXPECT_TRUE(saw_rebuild) << "no epoch exercised the structural rebuild";
  EXPECT_TRUE(saw_in_place) << "no epoch exercised the in-place rewrite";
}

TEST(CapacityProjector, RefreshWithNoDirtyLanesIsANoOp) {
  Rng rng(53);
  const RoutingTree tree = MakeRandomTree(120, rng);
  const int docs = 4;
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (auto& lane : lanes) {
    lane.assign(static_cast<std::size_t>(tree.size()), 0.0);
    for (auto& r : lane) r = rng.NextDouble(0, 3);
  }
  BatchWebWaveSimulator sim(tree, lanes, {});
  for (int s = 0; s < 25; ++s) sim.Step();
  const QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, 1e-9);
  CapacityProjector projector(
      tree, CacheStore::WorkingSetStore(tree,
                                        DocumentSizes::Uniform(docs, 1000),
                                        0.5));
  projector.Project(base);
  const QuotaSnapshot before = projector.clamped();
  EXPECT_TRUE(projector.Refresh(base, Span<const int>()));
  ExpectSameCells(projector.clamped(), before, "no dirty lanes");
}

// Capacity-aware serving --------------------------------------------------

TEST(CapacityServing, EvictionFiresAndWebWaveStillBeatsHomeOnly) {
  Rng rng(59);
  const RoutingTree tree = MakeRandomTree(400, rng);
  const int docs = 8;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 2.0, 1.0)},
                       61);
  const auto lanes = gen.ExpectedLanes();
  const QuotaSnapshot base = WebWaveTlbPolicy().Place(tree, lanes);

  CapacityProjector projector(
      tree, CacheStore::WorkingSetStore(
                tree, DocumentSizes::LogNormal(docs, 4096, 1.0, 67), 0.25));
  projector.Project(base);
  ASSERT_GT(projector.evicted_cells(), 0)
      << "budget too large for the scenario to mean anything";
  EXPECT_NEAR(projector.clamped().total_rate(), base.total_rate(),
              1e-9 * base.total_rate());

  std::vector<Request> stream;
  gen.NextBatch(150000, &stream);
  ServingOptions opt;
  opt.offered_rate = gen.total_rate();

  ServingPlane capped(tree, projector.clamped(), opt);
  capped.Serve(stream);
  ServingPlane home(tree, HomeOnlyPolicy().Place(tree, lanes), opt);
  home.Serve(stream);

  EXPECT_EQ(capped.metrics().requests, 150000u);
  EXPECT_EQ(capped.metrics().cache_served + capped.metrics().home_served,
            capped.metrics().requests);
  EXPECT_EQ(home.metrics().MaxServed(), 150000u);
  EXPECT_LT(capped.metrics().MaxServed(), home.metrics().MaxServed() / 2)
      << "a quarter-working-set store should still spread load";
}

}  // namespace
}  // namespace webwave
