// Property tests for the wire layer: round-trip identity over
// counter-seeded random messages, every strict prefix rejected as
// kNeedMore (never kOk, never a bogus decode), header corruption
// rejected as kError, and byte-exact QuotaWireTable round-trips.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "doc/catalog.h"
#include "doc/placement.h"
#include "serve/quota_snapshot.h"
#include "tree/builders.h"
#include "util/rng.h"
#include "wire/codec.h"
#include "wire/quota_wire.h"

namespace webwave {
namespace {

using DecodeStatus = MessageCodec::DecodeStatus;

// Counter-seeded field draws: message i's fields are pure functions of
// (seed, i), matching the repo-wide determinism discipline.
std::uint64_t Draw(std::uint64_t seed, std::uint64_t i, std::uint64_t lane) {
  std::uint64_t state = seed + i * 0x9e3779b97f4a7c15ULL + lane;
  return SplitMix64(state);
}

double DrawLoad(std::uint64_t seed, std::uint64_t i, std::uint64_t lane) {
  return CounterUnitDouble(Draw(seed, i, lane)) * 1e6;
}

GetRequest RandomGetRequest(std::uint64_t seed, std::uint64_t i) {
  GetRequest m;
  m.req_id = Draw(seed, i, 1);
  m.doc = static_cast<std::int32_t>(Draw(seed, i, 2) & 0x7fffffff);
  m.origin_node = static_cast<NodeId>(Draw(seed, i, 3) & 0x7fffffff);
  m.ttl_hops = static_cast<std::uint16_t>(Draw(seed, i, 4));
  m.failed = static_cast<std::uint16_t>(Draw(seed, i, 5));
  m.flags = static_cast<std::uint16_t>(Draw(seed, i, 6));
  m.trace_seq = static_cast<std::uint16_t>(Draw(seed, i, 7));
  return m;
}

TraceEvent RandomTraceEvent(std::uint64_t seed, std::uint64_t i) {
  TraceEvent e;
  e.req_id = Draw(seed, i, 1);
  e.detail = Draw(seed, i, 2);
  e.node = static_cast<NodeId>(Draw(seed, i, 3) & 0x7fffffff);
  e.seq = static_cast<std::uint16_t>(Draw(seed, i, 4));
  e.kind = static_cast<TraceEventKind>(1 + (Draw(seed, i, 5) % 7));
  e.aux = static_cast<std::uint8_t>(Draw(seed, i, 6));
  return e;
}

GetReply RandomGetReply(std::uint64_t seed, std::uint64_t i) {
  GetReply m;
  m.req_id = Draw(seed, i, 1);
  m.doc = static_cast<std::int32_t>(Draw(seed, i, 2) & 0x7fffffff);
  m.serving_node = static_cast<NodeId>(Draw(seed, i, 3) & 0x7fffffff);
  m.result = (Draw(seed, i, 4) & 1) ? GetResult::kDropped : GetResult::kServed;
  m.hops = static_cast<std::uint16_t>(Draw(seed, i, 5));
  m.load = DrawLoad(seed, i, 6);
  m.version = static_cast<std::uint32_t>(Draw(seed, i, 7));
  return m;
}

LoadGossip RandomLoadGossip(std::uint64_t seed, std::uint64_t i) {
  LoadGossip m;
  m.node = static_cast<NodeId>(Draw(seed, i, 1) & 0x7fffffff);
  m.epoch = static_cast<std::uint32_t>(Draw(seed, i, 2));
  m.load = DrawLoad(seed, i, 3);
  return m;
}

WireCounters RandomCounters(std::uint64_t seed, std::uint64_t i) {
  WireCounters c;
  c.requests = Draw(seed, i, 1);
  c.cache_served = Draw(seed, i, 2);
  c.home_served = Draw(seed, i, 3);
  c.hop_sum = Draw(seed, i, 4);
  c.failed_attempts = Draw(seed, i, 5);
  c.failovers = Draw(seed, i, 6);
  c.dropped_requests = Draw(seed, i, 7);
  c.backoff_slots = Draw(seed, i, 8);
  c.net_forwards = Draw(seed, i, 9);
  c.gossip_sent = Draw(seed, i, 10);
  c.shed_forwards = Draw(seed, i, 11);
  c.reconnects = Draw(seed, i, 12);
  c.outbox_peak_bytes = Draw(seed, i, 13);
  return c;
}

// Rows ascend by node and documents ascend within a row, as the decoder
// demands; row 0 (when present) gets an empty cell list so the empty-row
// encoding is always exercised.
QuotaDelta RandomQuotaDelta(std::uint64_t seed, std::uint64_t i,
                            std::size_t row_count) {
  QuotaDelta d;
  d.epoch = static_cast<std::uint32_t>(Draw(seed, i, 1));
  d.total_rate = DrawLoad(seed, i, 2);
  NodeId node = -1;
  for (std::size_t r = 0; r < row_count; ++r) {
    QuotaDeltaRow row;
    node += 1 + static_cast<NodeId>(Draw(seed, i, 10 + r) % 5);
    row.node = node;
    const std::size_t cells = r == 0 ? 0 : 1 + Draw(seed, i, 50 + r) % 3;
    std::int32_t doc = -1;
    for (std::size_t c = 0; c < cells; ++c) {
      QuotaDeltaCell cell;
      doc += 1 + static_cast<std::int32_t>(Draw(seed, i, 100 + 8 * r + c) % 7);
      cell.doc = doc;
      cell.rate = DrawLoad(seed, i, 200 + 8 * r + c);
      cell.frac = CounterUnitDouble(Draw(seed, i, 300 + 8 * r + c));
      row.cells.push_back(cell);
    }
    d.rows.push_back(std::move(row));
  }
  return d;
}

EpochUpdate RandomEpochUpdate(std::uint64_t seed, std::uint64_t i,
                              std::size_t down_count,
                              std::size_t reassign_count) {
  EpochUpdate u;
  u.epoch = static_cast<std::uint32_t>(Draw(seed, i, 1));
  NodeId v = -1;
  for (std::size_t k = 0; k < down_count; ++k) {
    v += 1 + static_cast<NodeId>(Draw(seed, i, 10 + k) % 9);
    u.down.push_back(v);
  }
  v = -1;
  for (std::size_t k = 0; k < reassign_count; ++k) {
    OwnerDelta d;
    v += 1 + static_cast<NodeId>(Draw(seed, i, 60 + k) % 9);
    d.node = v;
    d.owner = static_cast<std::uint32_t>(Draw(seed, i, 110 + k) % 64);
    u.reassign.push_back(d);
  }
  return u;
}

// A bare header claiming `stated` payload bytes for `type` — for probing
// the stated-length plausibility checks with no payload attached.
std::vector<std::uint8_t> RawHeader(MsgType type, std::uint32_t stated) {
  std::vector<std::uint8_t> h(MessageCodec::kHeaderSize);
  PutU16(h.data(), MessageCodec::kMagic);
  h[2] = MessageCodec::kVersion;
  h[3] = static_cast<std::uint8_t>(type);
  PutU32(h.data() + 4, stated);
  return h;
}

TEST(WireCodec, GetRequestRoundTripsOverRandomMessages) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const GetRequest m = RandomGetRequest(11, i);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(n, buf.size());
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kGetRequestSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, n);
    EXPECT_EQ(out.type, MsgType::kGetRequest);
    EXPECT_EQ(out.get, m);
  }
}

TEST(WireCodec, GetReplyRoundTripsOverRandomMessages) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const GetReply m = RandomGetReply(12, i);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kGetReplySize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.type, MsgType::kGetReply);
    EXPECT_EQ(out.reply, m);
  }
}

TEST(WireCodec, LoadGossipRoundTripsOverRandomMessages) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const LoadGossip m = RandomLoadGossip(13, i);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kLoadGossipSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.type, MsgType::kLoadGossip);
    EXPECT_EQ(out.gossip, m);
  }
}

TEST(WireCodec, HelloAndCountersAndControlRoundTrip) {
  std::vector<std::uint8_t> buf;
  Hello h;
  h.kind = PeerKind::kLoadgen;
  h.sender = 42;
  MessageCodec::Encode(h, &buf);
  const WireCounters c = RandomCounters(14, 7);
  MessageCodec::Encode(c, &buf);
  MessageCodec::EncodeControl(MsgType::kStatsRequest, &buf);
  MessageCodec::EncodeControl(MsgType::kShutdown, &buf);

  // Stream decode of the concatenated frames.
  std::size_t at = 0;
  WireMessage out;
  std::size_t consumed = 0;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kHello);
  EXPECT_EQ(out.hello, h);
  at += consumed;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kStatsReply);
  EXPECT_EQ(out.stats, c);
  at += consumed;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kStatsRequest);
  at += consumed;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kShutdown);
  at += consumed;
  EXPECT_EQ(at, buf.size());
}

TEST(WireCodec, TraceReplyRoundTripsIncludingEmpty) {
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{17}, std::size_t{300}}) {
    std::vector<TraceEvent> events;
    for (std::size_t i = 0; i < count; ++i)
      events.push_back(RandomTraceEvent(44, i));
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(events, &buf);
    ASSERT_EQ(n, buf.size());
    ASSERT_EQ(n, MessageCodec::kHeaderSize + 4 +
                     count * MessageCodec::kTraceEventSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, n);
    EXPECT_EQ(out.type, MsgType::kTraceReply);
    ASSERT_EQ(out.trace.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(out.trace[i], events[i]) << "record " << i;
  }
}

TEST(WireCodec, TraceReplyPrefixesNeedMoreAndCorruptionErrors) {
  std::vector<TraceEvent> events;
  for (std::size_t i = 0; i < 5; ++i) events.push_back(RandomTraceEvent(45, i));
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(events, &frame);

  // Every strict prefix of the variable-length frame is kNeedMore.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    WireMessage out;
    std::size_t consumed = 1;
    EXPECT_EQ(MessageCodec::Decode(frame.data(), cut, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  // A record count disagreeing with the stated payload length is kError.
  auto bad = frame;
  bad[MessageCodec::kHeaderSize] ^= 0x01;
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // An out-of-range event kind inside a record is kError.
  bad = frame;
  bad[MessageCodec::kHeaderSize + 4 + 22] = 0;  // record 0's kind byte
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
  bad[MessageCodec::kHeaderSize + 4 + 22] = 8;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
}

// The v3 rejoin handshake: Hello carries the sender's quota-table epoch,
// and a stale daemon's nonzero disclosure survives the round trip.
TEST(WireCodec, HelloRejoinRoundTripsEpoch) {
  for (const std::uint32_t epoch : {0u, 1u, 0xdeadbeefu}) {
    Hello h;
    h.kind = PeerKind::kServer;
    h.sender = 3;
    h.epoch = epoch;
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(h, &buf);
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kHelloSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.type, MsgType::kHello);
    EXPECT_EQ(out.hello, h);
  }
}

TEST(WireCodec, QuotaDeltaRoundTripsIncludingEmpty) {
  for (const std::size_t rows :
       {std::size_t{0}, std::size_t{1}, std::size_t{6}, std::size_t{40}}) {
    const QuotaDelta d = RandomQuotaDelta(46, rows, rows);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(d, &buf);
    ASSERT_EQ(n, buf.size());
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, n);
    EXPECT_EQ(out.type, MsgType::kQuotaDelta);
    EXPECT_EQ(out.delta, d);
  }
}

TEST(WireCodec, EpochUpdateRoundTripsIncludingEmpty) {
  const std::size_t shapes[][2] = {{0, 0}, {1, 0}, {0, 1}, {5, 9}};
  for (const auto& s : shapes) {
    const EpochUpdate u = RandomEpochUpdate(47, s[0] * 16 + s[1], s[0], s[1]);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(u, &buf);
    ASSERT_EQ(n, MessageCodec::kHeaderSize +
                     MessageCodec::kEpochUpdatePrologueSize + s[0] * 4 +
                     s[1] * 8);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, n);
    EXPECT_EQ(out.type, MsgType::kEpochUpdate);
    EXPECT_EQ(out.epoch_update, u);
  }
}

TEST(WireCodec, QuotaDeltaPrefixesNeedMoreAndCorruptionErrors) {
  const QuotaDelta d = RandomQuotaDelta(48, 0, 6);
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(d, &frame);

  // Every strict prefix of the variable-length frame is kNeedMore.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    WireMessage out;
    std::size_t consumed = 1;
    EXPECT_EQ(MessageCodec::Decode(frame.data(), cut, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  WireMessage out;
  std::size_t consumed = 0;
  const std::size_t prologue = MessageCodec::kHeaderSize;

  // A row count disagreeing with the stated payload length is kError.
  auto bad = frame;
  bad[prologue + 4] ^= 0x01;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // A row count past the anti-DoS cap is kError before any row parses.
  bad = frame;
  PutU32(bad.data() + prologue + 4, 0xffffffffu);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Rows must ascend strictly by node: copy row 0's node over row 1's.
  // Row 0 has no cells (RandomQuotaDelta forces it), so row 1's header
  // sits one bare row header past the prologue.
  bad = frame;
  const std::size_t row0 = prologue + MessageCodec::kDeltaPrologueSize;
  const std::size_t row1 = row0 + MessageCodec::kDeltaRowHeaderSize;
  std::memcpy(bad.data() + row1, bad.data() + row0, 4);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // A negative row node is kError.
  bad = frame;
  PutU32(bad.data() + row0, 0xffffffffu);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // A cell count that overruns the stated payload is kError.
  bad = frame;
  PutU32(bad.data() + row0 + 4, 1000);  // row 0 claims cells it doesn't carry
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Documents must ascend strictly within a row.
  QuotaDelta two;
  two.epoch = 9;
  two.total_rate = 1.5;
  QuotaDeltaRow row;
  row.node = 4;
  row.cells.push_back(QuotaDeltaCell{2, 1.0, 0.5});
  row.cells.push_back(QuotaDeltaCell{5, 2.0, 0.25});
  two.rows.push_back(row);
  std::vector<std::uint8_t> tframe;
  MessageCodec::Encode(two, &tframe);
  const std::size_t cell1 = prologue + MessageCodec::kDeltaPrologueSize +
                            MessageCodec::kDeltaRowHeaderSize +
                            MessageCodec::kDeltaCellSize;
  PutU32(tframe.data() + cell1, 2);  // second doc == first: not ascending
  EXPECT_EQ(MessageCodec::Decode(tframe.data(), tframe.size(), &out,
                                 &consumed),
            DecodeStatus::kError);

  // Stated lengths outside [prologue, anti-DoS cap] are garbage the
  // moment the header completes — no payload bytes needed.
  for (const std::uint32_t stated : {8u, (1u << 27) + 1u}) {
    const auto h = RawHeader(MsgType::kQuotaDelta, stated);
    EXPECT_EQ(MessageCodec::Decode(h.data(), h.size(), &out, &consumed),
              DecodeStatus::kError)
        << "stated " << stated;
  }
}

TEST(WireCodec, EpochUpdatePrefixesNeedMoreAndCorruptionErrors) {
  const EpochUpdate u = RandomEpochUpdate(49, 0, 3, 3);
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(u, &frame);

  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    WireMessage out;
    std::size_t consumed = 1;
    EXPECT_EQ(MessageCodec::Decode(frame.data(), cut, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  WireMessage out;
  std::size_t consumed = 0;
  const std::size_t body =
      MessageCodec::kHeaderSize + MessageCodec::kEpochUpdatePrologueSize;

  // Counts disagreeing with the stated payload length are kError.
  auto bad = frame;
  bad[MessageCodec::kHeaderSize + 4] ^= 0x01;  // down count
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
  bad = frame;
  PutU32(bad.data() + MessageCodec::kHeaderSize + 4, 0xffffffffu);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Down nodes must ascend strictly: duplicate the first into the second.
  bad = frame;
  std::memcpy(bad.data() + body + 4, bad.data() + body, 4);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Reassignment nodes must ascend strictly too; pairs start after the
  // three down nodes.
  bad = frame;
  const std::size_t pairs = body + 3 * 4;
  std::memcpy(bad.data() + pairs + 8, bad.data() + pairs, 4);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // A negative down node is kError.
  bad = frame;
  PutU32(bad.data() + body, 0xffffffffu);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Stated lengths outside the plausible band die on the bare header.
  const std::uint32_t over = static_cast<std::uint32_t>(
      MessageCodec::kEpochUpdatePrologueSize +
      MessageCodec::kMaxEpochUpdateNodes * 12 + 1);
  for (const std::uint32_t stated : {8u, over}) {
    const auto h = RawHeader(MsgType::kEpochUpdate, stated);
    EXPECT_EQ(MessageCodec::Decode(h.data(), h.size(), &out, &consumed),
              DecodeStatus::kError)
        << "stated " << stated;
  }
}

TEST(WireCodec, DoubleFieldsRoundTripBitExactly) {
  const double specials[] = {0.0, -0.0, 1.0 / 3.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max()};
  for (double v : specials) {
    LoadGossip m;
    m.node = 1;
    m.epoch = 2;
    m.load = v;
    std::vector<std::uint8_t> buf;
    MessageCodec::Encode(m, &buf);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    std::uint64_t want, got;
    std::memcpy(&want, &v, sizeof want);
    std::memcpy(&got, &out.gossip.load, sizeof got);
    EXPECT_EQ(got, want);  // bit pattern, so NaN payloads survive too
  }
}

// Counter-seeded latency histogram: n recorded values spanning the
// linear buckets through the high octaves.
LatencyHistogram RandomHistogram(std::uint64_t seed, std::size_t n) {
  LatencyHistogram h;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t shift = Draw(seed, i, 1) % 48;
    h.Record(Draw(seed, i, 2) >> shift);
  }
  return h;
}

FlightEvent RandomFlightEvent(std::uint64_t seed, std::uint64_t i) {
  FlightEvent e;
  e.t_ns = Draw(seed, i, 1);
  e.detail = Draw(seed, i, 2);
  e.arg = static_cast<std::uint32_t>(Draw(seed, i, 3));
  e.seq = static_cast<std::uint16_t>(Draw(seed, i, 4));
  e.kind = static_cast<std::uint8_t>(1 + Draw(seed, i, 5) % 8);
  e.node = static_cast<std::uint8_t>(Draw(seed, i, 6));
  return e;
}

// The v4 kStatsReply: counters plus the sparse histogram section
// round-trip byte-exactly, and the decoded section reconstructs the
// recorded histogram bucket-for-bucket.
TEST(WireCodec, StatsReplyWithHistogramRoundTripsByteExactly) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{37}, std::size_t{800}}) {
    const LatencyHistogram h = RandomHistogram(51, n);
    StatsReply m;
    m.counters = RandomCounters(52, n);
    m.hist = WireHistogram::From(h);
    std::vector<std::uint8_t> buf;
    const std::size_t len = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(len, buf.size());
    ASSERT_EQ(len, MessageCodec::kHeaderSize + MessageCodec::kCountersSize +
                       MessageCodec::kHistPrologueSize +
                       m.hist.buckets.size() * MessageCodec::kHistEntrySize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, len);
    EXPECT_EQ(out.type, MsgType::kStatsReply);
    EXPECT_EQ(out.stats, m.counters);
    ASSERT_TRUE(out.stats_hist.present);
    EXPECT_EQ(out.stats_hist, m.hist);
    EXPECT_TRUE(out.stats_hist.ToHistogram() == h);
    // Re-encoding the decode reproduces the exact byte string.
    StatsReply again;
    again.counters = out.stats;
    again.hist = out.stats_hist;
    std::vector<std::uint8_t> buf2;
    MessageCodec::Encode(again, &buf2);
    EXPECT_EQ(buf2, buf);
  }
}

// The pre-v4 bare counters frame stays on the wire (it is what a
// histogram-less peer would send) and decodes with no section present.
TEST(WireCodec, BareCountersStatsReplyStillDecodes) {
  const WireCounters c = RandomCounters(53, 3);
  std::vector<std::uint8_t> buf;
  const std::size_t len = MessageCodec::Encode(c, &buf);
  ASSERT_EQ(len, MessageCodec::kHeaderSize + MessageCodec::kCountersSize);
  WireMessage out;
  std::size_t consumed = 0;
  ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(out.stats, c);
  EXPECT_FALSE(out.stats_hist.present);
  EXPECT_TRUE(out.stats_hist.buckets.empty());
}

TEST(WireCodec, StatsReplyHistogramPrefixesNeedMoreAndCorruptionErrors) {
  StatsReply m;
  m.counters = RandomCounters(54, 0);
  m.hist = WireHistogram::From(RandomHistogram(54, 40));
  ASSERT_GE(m.hist.buckets.size(), 2u);
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(m, &frame);

  // Every strict prefix of the variable-length frame is kNeedMore.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    WireMessage out;
    std::size_t consumed = 1;
    EXPECT_EQ(MessageCodec::Decode(frame.data(), cut, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  WireMessage out;
  std::size_t consumed = 0;
  const std::size_t sect = MessageCodec::kHeaderSize +
                           MessageCodec::kCountersSize;
  const std::size_t entry0 = sect + MessageCodec::kHistPrologueSize;

  // An entry count disagreeing with the stated payload length is kError.
  auto bad = frame;
  bad[sect] ^= 0x01;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Indices must ascend strictly: copy entry 0's index over entry 1's.
  bad = frame;
  std::memcpy(bad.data() + entry0 + MessageCodec::kHistEntrySize,
              bad.data() + entry0, 4);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // An index outside the fixed bucket layout is kError.
  bad = frame;
  PutU32(bad.data() + entry0,
         static_cast<std::uint32_t>(LatencyHistogram::kBucketCount));
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // A zero count is a non-canonical encoding, hence kError.
  bad = frame;
  std::memset(bad.data() + entry0 + 4, 0, 8);
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // Stated lengths that are neither the bare counters nor a whole
  // histogram section within the cap die on the bare header.
  const std::uint32_t cap_over = static_cast<std::uint32_t>(
      MessageCodec::kCountersSize + MessageCodec::kHistPrologueSize +
      (MessageCodec::kMaxHistEntries + 1) * MessageCodec::kHistEntrySize);
  for (const std::uint32_t stated :
       {103u, 105u, 115u, 117u, cap_over}) {
    const auto h = RawHeader(MsgType::kStatsReply, stated);
    EXPECT_EQ(MessageCodec::Decode(h.data(), h.size(), &out, &consumed),
              DecodeStatus::kError)
        << "stated " << stated;
  }
}

TEST(WireCodec, FlightReplyRoundTripsIncludingEmpty) {
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{17}, std::size_t{300}}) {
    FlightReply m;
    for (std::size_t i = 0; i < count; ++i)
      m.events.push_back(RandomFlightEvent(55, i));
    std::vector<std::uint8_t> buf;
    const std::size_t len = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(len, buf.size());
    ASSERT_EQ(len, MessageCodec::kHeaderSize + 4 +
                       count * MessageCodec::kFlightEventSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, len);
    EXPECT_EQ(out.type, MsgType::kFlightReply);
    ASSERT_EQ(out.flight.events.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(out.flight.events[i], m.events[i]) << "record " << i;
  }
}

TEST(WireCodec, FlightReplyPrefixesNeedMoreAndCorruptionErrors) {
  FlightReply m;
  for (std::size_t i = 0; i < 5; ++i)
    m.events.push_back(RandomFlightEvent(56, i));
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(m, &frame);

  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    WireMessage out;
    std::size_t consumed = 1;
    EXPECT_EQ(MessageCodec::Decode(frame.data(), cut, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  // A record count disagreeing with the stated payload length is kError.
  auto bad = frame;
  bad[MessageCodec::kHeaderSize] ^= 0x01;
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // An out-of-range event kind inside a record is kError.
  bad = frame;
  bad[MessageCodec::kHeaderSize + 4 + 22] = 0;  // record 0's kind byte
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
  bad[MessageCodec::kHeaderSize + 4 + 22] = 9;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
}

// Every strict prefix of every frame type must be kNeedMore or kError —
// never kOk, and in particular never a short frame accepted as complete.
TEST(WireCodec, EveryOneByteTruncationIsRejected) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint64_t i = 0; i < 20; ++i) {
    frames.emplace_back();
    MessageCodec::Encode(RandomGetRequest(21, i), &frames.back());
    frames.emplace_back();
    MessageCodec::Encode(RandomGetReply(22, i), &frames.back());
    frames.emplace_back();
    MessageCodec::Encode(RandomLoadGossip(23, i), &frames.back());
  }
  frames.emplace_back();
  MessageCodec::Encode(RandomCounters(24, 0), &frames.back());
  frames.emplace_back();
  MessageCodec::Encode(std::vector<TraceEvent>{RandomTraceEvent(25, 0),
                                               RandomTraceEvent(25, 1)},
                       &frames.back());
  frames.emplace_back();
  MessageCodec::EncodeControl(MsgType::kShutdown, &frames.back());
  Hello rejoin;
  rejoin.kind = PeerKind::kServer;
  rejoin.sender = 2;
  rejoin.epoch = 5;
  frames.emplace_back();
  MessageCodec::Encode(rejoin, &frames.back());
  frames.emplace_back();
  MessageCodec::Encode(RandomQuotaDelta(26, 0, 4), &frames.back());
  frames.emplace_back();
  MessageCodec::Encode(RandomEpochUpdate(27, 0, 2, 3), &frames.back());
  StatsReply v4;
  v4.counters = RandomCounters(28, 0);
  v4.hist = WireHistogram::From(RandomHistogram(28, 25));
  frames.emplace_back();
  MessageCodec::Encode(v4, &frames.back());
  FlightReply flight;
  flight.events.push_back(RandomFlightEvent(29, 0));
  flight.events.push_back(RandomFlightEvent(29, 1));
  frames.emplace_back();
  MessageCodec::Encode(flight, &frames.back());

  for (const auto& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      WireMessage out;
      std::size_t consumed = 1;
      const DecodeStatus st =
          MessageCodec::Decode(frame.data(), cut, &out, &consumed);
      EXPECT_EQ(st, DecodeStatus::kNeedMore)
          << "prefix of " << frame.size() << " cut at " << cut;
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(WireCodec, HeaderCorruptionIsError) {
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(RandomGetRequest(31, 0), &frame);

  // Every single-byte corruption of the 8-byte header is kError (bad
  // magic/version/type) or a type/length mismatch.
  for (std::size_t at = 0; at < MessageCodec::kHeaderSize; ++at) {
    auto bad = frame;
    bad[at] ^= 0xff;
    WireMessage out;
    std::size_t consumed = 0;
    EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
              DecodeStatus::kError)
        << "header byte " << at;
  }

  // Bad leading bytes are reported as garbage immediately, even before a
  // full header has arrived — a stream transport must not wait for more
  // bytes of a frame that can never become valid.
  const std::uint8_t garbage[2] = {0x00, 0x99};
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(MessageCodec::Decode(garbage, 1, &out, &consumed),
            DecodeStatus::kError);

  // A type whose payload size disagrees with the stated length.
  auto mismatched = frame;
  mismatched[3] = static_cast<std::uint8_t>(MsgType::kLoadGossip);
  EXPECT_EQ(MessageCodec::Decode(mismatched.data(), mismatched.size(), &out,
                                 &consumed),
            DecodeStatus::kError);

  // An out-of-range GetResult in an otherwise valid reply.
  std::vector<std::uint8_t> reply;
  MessageCodec::Encode(RandomGetReply(31, 1), &reply);
  reply[MessageCodec::kHeaderSize + 30] = 9;
  EXPECT_EQ(MessageCodec::Decode(reply.data(), reply.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(WireCodec, EncodingIsExplicitlyLittleEndian) {
  GetRequest m;
  m.req_id = 0x0102030405060708ULL;
  m.doc = 0x0a0b0c0d;
  m.origin_node = 5;
  m.ttl_hops = 0x1122;
  m.failed = 0;
  m.flags = 0x3344;
  m.trace_seq = 0x5566;
  std::vector<std::uint8_t> buf;
  MessageCodec::Encode(m, &buf);
  // Header: magic 0x5741 is "A" then "W" in little-endian byte order.
  EXPECT_EQ(buf[0], 0x41);
  EXPECT_EQ(buf[1], 0x57);
  EXPECT_EQ(buf[2], MessageCodec::kVersion);
  EXPECT_EQ(buf[3], static_cast<std::uint8_t>(MsgType::kGetRequest));
  // req_id low byte first.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 0], 0x08);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 7], 0x01);
  // doc at offset 8, LE.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 8], 0x0d);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 11], 0x0a);
  // ttl_hops at offset 16, LE.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 16], 0x22);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 17], 0x11);
  // flags at offset 20, trace_seq at 22, LE.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 20], 0x44);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 21], 0x33);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 22], 0x66);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 23], 0x55);
}

QuotaSnapshot MakeSnapshotWithDemand(std::uint64_t demand_seed) {
  Rng rng(42);
  const RoutingTree tree = MakeRandomTree(200, rng);
  DemandMatrix demand(200, 8);
  Rng drng(demand_seed);
  for (NodeId v = 0; v < 200; ++v)
    if (tree.children(v).empty())
      for (std::int32_t d = 0; d < 8; ++d)
        demand.set(v, d, drng.NextDouble(0.1, 4.0));
  const PlacementResult placement = DerivePlacement(tree, demand);
  return QuotaSnapshot::FromPlacement(tree, placement, demand, 1e-9);
}

QuotaSnapshot MakeSnapshot() { return MakeSnapshotWithDemand(7); }

TEST(QuotaWire, RoundTripIsByteExact) {
  const QuotaSnapshot s = MakeSnapshot();
  ASSERT_GT(s.cell_count(), 0);

  std::vector<std::uint8_t> bytes;
  const std::size_t n = QuotaWireTable::Serialize(s, &bytes);
  ASSERT_EQ(n, bytes.size());

  QuotaSnapshot back;
  ASSERT_TRUE(QuotaWireTable::Deserialize(bytes.data(), bytes.size(), &back));

  ASSERT_EQ(back.node_count(), s.node_count());
  ASSERT_EQ(back.doc_count(), s.doc_count());
  ASSERT_EQ(back.cell_count(), s.cell_count());
  // total_rate survives with the exact bit pattern, not a re-sum.
  std::uint64_t want, got;
  double wd = s.total_rate(), gd = back.total_rate();
  std::memcpy(&want, &wd, sizeof want);
  std::memcpy(&got, &gd, sizeof got);
  EXPECT_EQ(got, want);
  for (NodeId v = 0; v < s.node_count(); ++v) {
    ASSERT_EQ(back.row_begin(v), s.row_begin(v));
    ASSERT_EQ(back.row_end(v), s.row_end(v));
  }
  for (std::int64_t c = 0; c < s.cell_count(); ++c) {
    ASSERT_EQ(back.cell_docs()[c], s.cell_docs()[c]);
    ASSERT_EQ(back.cell_rates()[c], s.cell_rates()[c]);
    ASSERT_EQ(back.cell_fractions()[c], s.cell_fractions()[c]);
  }

  // Serializing the reconstruction reproduces the exact byte string.
  std::vector<std::uint8_t> again;
  QuotaWireTable::Serialize(back, &again);
  EXPECT_EQ(again, bytes);
}

TEST(QuotaWire, CorruptTablesAreRejected) {
  const QuotaSnapshot s = MakeSnapshot();
  std::vector<std::uint8_t> bytes;
  QuotaWireTable::Serialize(s, &bytes);

  QuotaSnapshot out;
  // Truncations at a sample of cut points (every prefix would be O(n²)).
  for (std::size_t cut = 0; cut < bytes.size();
       cut += 1 + bytes.size() / 64)
    EXPECT_FALSE(QuotaWireTable::Deserialize(bytes.data(), cut, &out));
  // Bad magic / version.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(QuotaWireTable::Deserialize(bad.data(), bad.size(), &out));
  bad = bytes;
  bad[4] ^= 0xff;
  EXPECT_FALSE(QuotaWireTable::Deserialize(bad.data(), bad.size(), &out));
  // Non-monotone row offsets.
  bad = bytes;
  bad[32] = 0xff;  // row_off[0] becomes nonzero
  EXPECT_FALSE(QuotaWireTable::Deserialize(bad.data(), bad.size(), &out));
}

TEST(QuotaWire, FileRoundTrip) {
  const QuotaSnapshot s = MakeSnapshot();
  const std::string path = ::testing::TempDir() + "/quota_wire_test.bin";
  ASSERT_TRUE(QuotaWireTable::WriteFile(s, path));
  QuotaSnapshot back;
  ASSERT_TRUE(QuotaWireTable::ReadFile(path, &back));
  EXPECT_EQ(back.cell_count(), s.cell_count());
  EXPECT_EQ(back.total_rate(), s.total_rate());
  std::remove(path.c_str());
}

// The delta law the rejoin protocol rests on: applying the diff of two
// same-shaped tables to the first reproduces the second byte-for-byte.
TEST(QuotaWire, DiffApplyLawReproducesTargetByteExactly) {
  const QuotaSnapshot a = MakeSnapshotWithDemand(7);
  const QuotaSnapshot b = MakeSnapshotWithDemand(8);

  QuotaDelta d;
  ASSERT_TRUE(QuotaWireTable::DiffSnapshots(a, b, &d));
  ASSERT_GT(d.rows.size(), 0u);  // different demand must move some rows

  QuotaSnapshot patched = a;
  ASSERT_TRUE(QuotaWireTable::ApplyDelta(d, &patched));
  std::vector<std::uint8_t> want, got;
  QuotaWireTable::Serialize(b, &want);
  QuotaWireTable::Serialize(patched, &got);
  EXPECT_EQ(got, want);

  // Identical tables diff to an empty delta that applies as a no-op.
  QuotaDelta none;
  ASSERT_TRUE(QuotaWireTable::DiffSnapshots(a, a, &none));
  EXPECT_TRUE(none.rows.empty());
  QuotaSnapshot same = a;
  ASSERT_TRUE(QuotaWireTable::ApplyDelta(none, &same));
  std::vector<std::uint8_t> base, after;
  QuotaWireTable::Serialize(a, &base);
  QuotaWireTable::Serialize(same, &after);
  EXPECT_EQ(after, base);
}

TEST(QuotaWire, DiffRejectsShapeMismatch) {
  const QuotaSnapshot big = MakeSnapshot();
  Rng rng(43);
  const RoutingTree small_tree = MakeRandomTree(50, rng);
  DemandMatrix demand(50, 8);
  Rng drng(9);
  for (NodeId v = 0; v < 50; ++v)
    if (small_tree.children(v).empty())
      for (std::int32_t d = 0; d < 8; ++d)
        demand.set(v, d, drng.NextDouble(0.1, 4.0));
  const QuotaSnapshot small = QuotaSnapshot::FromPlacement(
      small_tree, DerivePlacement(small_tree, demand), demand, 1e-9);

  QuotaDelta d;
  EXPECT_FALSE(QuotaWireTable::DiffSnapshots(big, small, &d));
  EXPECT_FALSE(QuotaWireTable::DiffSnapshots(small, big, &d));
}

}  // namespace
}  // namespace webwave
