// Property tests for the wire layer: round-trip identity over
// counter-seeded random messages, every strict prefix rejected as
// kNeedMore (never kOk, never a bogus decode), header corruption
// rejected as kError, and byte-exact QuotaWireTable round-trips.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "doc/catalog.h"
#include "doc/placement.h"
#include "serve/quota_snapshot.h"
#include "tree/builders.h"
#include "util/rng.h"
#include "wire/codec.h"
#include "wire/quota_wire.h"

namespace webwave {
namespace {

using DecodeStatus = MessageCodec::DecodeStatus;

// Counter-seeded field draws: message i's fields are pure functions of
// (seed, i), matching the repo-wide determinism discipline.
std::uint64_t Draw(std::uint64_t seed, std::uint64_t i, std::uint64_t lane) {
  std::uint64_t state = seed + i * 0x9e3779b97f4a7c15ULL + lane;
  return SplitMix64(state);
}

double DrawLoad(std::uint64_t seed, std::uint64_t i, std::uint64_t lane) {
  return CounterUnitDouble(Draw(seed, i, lane)) * 1e6;
}

GetRequest RandomGetRequest(std::uint64_t seed, std::uint64_t i) {
  GetRequest m;
  m.req_id = Draw(seed, i, 1);
  m.doc = static_cast<std::int32_t>(Draw(seed, i, 2) & 0x7fffffff);
  m.origin_node = static_cast<NodeId>(Draw(seed, i, 3) & 0x7fffffff);
  m.ttl_hops = static_cast<std::uint16_t>(Draw(seed, i, 4));
  m.failed = static_cast<std::uint16_t>(Draw(seed, i, 5));
  m.flags = static_cast<std::uint16_t>(Draw(seed, i, 6));
  m.trace_seq = static_cast<std::uint16_t>(Draw(seed, i, 7));
  return m;
}

TraceEvent RandomTraceEvent(std::uint64_t seed, std::uint64_t i) {
  TraceEvent e;
  e.req_id = Draw(seed, i, 1);
  e.detail = Draw(seed, i, 2);
  e.node = static_cast<NodeId>(Draw(seed, i, 3) & 0x7fffffff);
  e.seq = static_cast<std::uint16_t>(Draw(seed, i, 4));
  e.kind = static_cast<TraceEventKind>(1 + (Draw(seed, i, 5) % 7));
  e.aux = static_cast<std::uint8_t>(Draw(seed, i, 6));
  return e;
}

GetReply RandomGetReply(std::uint64_t seed, std::uint64_t i) {
  GetReply m;
  m.req_id = Draw(seed, i, 1);
  m.doc = static_cast<std::int32_t>(Draw(seed, i, 2) & 0x7fffffff);
  m.serving_node = static_cast<NodeId>(Draw(seed, i, 3) & 0x7fffffff);
  m.result = (Draw(seed, i, 4) & 1) ? GetResult::kDropped : GetResult::kServed;
  m.hops = static_cast<std::uint16_t>(Draw(seed, i, 5));
  m.load = DrawLoad(seed, i, 6);
  m.version = static_cast<std::uint32_t>(Draw(seed, i, 7));
  return m;
}

LoadGossip RandomLoadGossip(std::uint64_t seed, std::uint64_t i) {
  LoadGossip m;
  m.node = static_cast<NodeId>(Draw(seed, i, 1) & 0x7fffffff);
  m.epoch = static_cast<std::uint32_t>(Draw(seed, i, 2));
  m.load = DrawLoad(seed, i, 3);
  return m;
}

WireCounters RandomCounters(std::uint64_t seed, std::uint64_t i) {
  WireCounters c;
  c.requests = Draw(seed, i, 1);
  c.cache_served = Draw(seed, i, 2);
  c.home_served = Draw(seed, i, 3);
  c.hop_sum = Draw(seed, i, 4);
  c.failed_attempts = Draw(seed, i, 5);
  c.failovers = Draw(seed, i, 6);
  c.dropped_requests = Draw(seed, i, 7);
  c.backoff_slots = Draw(seed, i, 8);
  c.net_forwards = Draw(seed, i, 9);
  c.gossip_sent = Draw(seed, i, 10);
  return c;
}

TEST(WireCodec, GetRequestRoundTripsOverRandomMessages) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const GetRequest m = RandomGetRequest(11, i);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(n, buf.size());
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kGetRequestSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, n);
    EXPECT_EQ(out.type, MsgType::kGetRequest);
    EXPECT_EQ(out.get, m);
  }
}

TEST(WireCodec, GetReplyRoundTripsOverRandomMessages) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const GetReply m = RandomGetReply(12, i);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kGetReplySize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.type, MsgType::kGetReply);
    EXPECT_EQ(out.reply, m);
  }
}

TEST(WireCodec, LoadGossipRoundTripsOverRandomMessages) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    const LoadGossip m = RandomLoadGossip(13, i);
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(m, &buf);
    ASSERT_EQ(n, MessageCodec::kHeaderSize + MessageCodec::kLoadGossipSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(out.type, MsgType::kLoadGossip);
    EXPECT_EQ(out.gossip, m);
  }
}

TEST(WireCodec, HelloAndCountersAndControlRoundTrip) {
  std::vector<std::uint8_t> buf;
  Hello h;
  h.kind = PeerKind::kLoadgen;
  h.sender = 42;
  MessageCodec::Encode(h, &buf);
  const WireCounters c = RandomCounters(14, 7);
  MessageCodec::Encode(c, &buf);
  MessageCodec::EncodeControl(MsgType::kStatsRequest, &buf);
  MessageCodec::EncodeControl(MsgType::kShutdown, &buf);

  // Stream decode of the concatenated frames.
  std::size_t at = 0;
  WireMessage out;
  std::size_t consumed = 0;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kHello);
  EXPECT_EQ(out.hello, h);
  at += consumed;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kStatsReply);
  EXPECT_EQ(out.stats, c);
  at += consumed;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kStatsRequest);
  at += consumed;
  ASSERT_EQ(
      MessageCodec::Decode(buf.data() + at, buf.size() - at, &out, &consumed),
      DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kShutdown);
  at += consumed;
  EXPECT_EQ(at, buf.size());
}

TEST(WireCodec, TraceReplyRoundTripsIncludingEmpty) {
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{17}, std::size_t{300}}) {
    std::vector<TraceEvent> events;
    for (std::size_t i = 0; i < count; ++i)
      events.push_back(RandomTraceEvent(44, i));
    std::vector<std::uint8_t> buf;
    const std::size_t n = MessageCodec::Encode(events, &buf);
    ASSERT_EQ(n, buf.size());
    ASSERT_EQ(n, MessageCodec::kHeaderSize + 4 +
                     count * MessageCodec::kTraceEventSize);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, n);
    EXPECT_EQ(out.type, MsgType::kTraceReply);
    ASSERT_EQ(out.trace.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(out.trace[i], events[i]) << "record " << i;
  }
}

TEST(WireCodec, TraceReplyPrefixesNeedMoreAndCorruptionErrors) {
  std::vector<TraceEvent> events;
  for (std::size_t i = 0; i < 5; ++i) events.push_back(RandomTraceEvent(45, i));
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(events, &frame);

  // Every strict prefix of the variable-length frame is kNeedMore.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    WireMessage out;
    std::size_t consumed = 1;
    EXPECT_EQ(MessageCodec::Decode(frame.data(), cut, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(consumed, 0u);
  }

  // A record count disagreeing with the stated payload length is kError.
  auto bad = frame;
  bad[MessageCodec::kHeaderSize] ^= 0x01;
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);

  // An out-of-range event kind inside a record is kError.
  bad = frame;
  bad[MessageCodec::kHeaderSize + 4 + 22] = 0;  // record 0's kind byte
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
  bad[MessageCodec::kHeaderSize + 4 + 22] = 8;
  EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(WireCodec, DoubleFieldsRoundTripBitExactly) {
  const double specials[] = {0.0, -0.0, 1.0 / 3.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max()};
  for (double v : specials) {
    LoadGossip m;
    m.node = 1;
    m.epoch = 2;
    m.load = v;
    std::vector<std::uint8_t> buf;
    MessageCodec::Encode(m, &buf);
    WireMessage out;
    std::size_t consumed = 0;
    ASSERT_EQ(MessageCodec::Decode(buf.data(), buf.size(), &out, &consumed),
              DecodeStatus::kOk);
    std::uint64_t want, got;
    std::memcpy(&want, &v, sizeof want);
    std::memcpy(&got, &out.gossip.load, sizeof got);
    EXPECT_EQ(got, want);  // bit pattern, so NaN payloads survive too
  }
}

// Every strict prefix of every frame type must be kNeedMore or kError —
// never kOk, and in particular never a short frame accepted as complete.
TEST(WireCodec, EveryOneByteTruncationIsRejected) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint64_t i = 0; i < 20; ++i) {
    frames.emplace_back();
    MessageCodec::Encode(RandomGetRequest(21, i), &frames.back());
    frames.emplace_back();
    MessageCodec::Encode(RandomGetReply(22, i), &frames.back());
    frames.emplace_back();
    MessageCodec::Encode(RandomLoadGossip(23, i), &frames.back());
  }
  frames.emplace_back();
  MessageCodec::Encode(RandomCounters(24, 0), &frames.back());
  frames.emplace_back();
  MessageCodec::Encode(std::vector<TraceEvent>{RandomTraceEvent(25, 0),
                                               RandomTraceEvent(25, 1)},
                       &frames.back());
  frames.emplace_back();
  MessageCodec::EncodeControl(MsgType::kShutdown, &frames.back());

  for (const auto& frame : frames) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      WireMessage out;
      std::size_t consumed = 1;
      const DecodeStatus st =
          MessageCodec::Decode(frame.data(), cut, &out, &consumed);
      EXPECT_EQ(st, DecodeStatus::kNeedMore)
          << "prefix of " << frame.size() << " cut at " << cut;
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(WireCodec, HeaderCorruptionIsError) {
  std::vector<std::uint8_t> frame;
  MessageCodec::Encode(RandomGetRequest(31, 0), &frame);

  // Every single-byte corruption of the 8-byte header is kError (bad
  // magic/version/type) or a type/length mismatch.
  for (std::size_t at = 0; at < MessageCodec::kHeaderSize; ++at) {
    auto bad = frame;
    bad[at] ^= 0xff;
    WireMessage out;
    std::size_t consumed = 0;
    EXPECT_EQ(MessageCodec::Decode(bad.data(), bad.size(), &out, &consumed),
              DecodeStatus::kError)
        << "header byte " << at;
  }

  // Bad leading bytes are reported as garbage immediately, even before a
  // full header has arrived — a stream transport must not wait for more
  // bytes of a frame that can never become valid.
  const std::uint8_t garbage[2] = {0x00, 0x99};
  WireMessage out;
  std::size_t consumed = 0;
  EXPECT_EQ(MessageCodec::Decode(garbage, 1, &out, &consumed),
            DecodeStatus::kError);

  // A type whose payload size disagrees with the stated length.
  auto mismatched = frame;
  mismatched[3] = static_cast<std::uint8_t>(MsgType::kLoadGossip);
  EXPECT_EQ(MessageCodec::Decode(mismatched.data(), mismatched.size(), &out,
                                 &consumed),
            DecodeStatus::kError);

  // An out-of-range GetResult in an otherwise valid reply.
  std::vector<std::uint8_t> reply;
  MessageCodec::Encode(RandomGetReply(31, 1), &reply);
  reply[MessageCodec::kHeaderSize + 30] = 9;
  EXPECT_EQ(MessageCodec::Decode(reply.data(), reply.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(WireCodec, EncodingIsExplicitlyLittleEndian) {
  GetRequest m;
  m.req_id = 0x0102030405060708ULL;
  m.doc = 0x0a0b0c0d;
  m.origin_node = 5;
  m.ttl_hops = 0x1122;
  m.failed = 0;
  m.flags = 0x3344;
  m.trace_seq = 0x5566;
  std::vector<std::uint8_t> buf;
  MessageCodec::Encode(m, &buf);
  // Header: magic 0x5741 is "A" then "W" in little-endian byte order.
  EXPECT_EQ(buf[0], 0x41);
  EXPECT_EQ(buf[1], 0x57);
  EXPECT_EQ(buf[2], MessageCodec::kVersion);
  EXPECT_EQ(buf[3], static_cast<std::uint8_t>(MsgType::kGetRequest));
  // req_id low byte first.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 0], 0x08);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 7], 0x01);
  // doc at offset 8, LE.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 8], 0x0d);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 11], 0x0a);
  // ttl_hops at offset 16, LE.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 16], 0x22);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 17], 0x11);
  // flags at offset 20, trace_seq at 22, LE.
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 20], 0x44);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 21], 0x33);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 22], 0x66);
  EXPECT_EQ(buf[MessageCodec::kHeaderSize + 23], 0x55);
}

QuotaSnapshot MakeSnapshot() {
  Rng rng(42);
  const RoutingTree tree = MakeRandomTree(200, rng);
  DemandMatrix demand(200, 8);
  Rng drng(7);
  for (NodeId v = 0; v < 200; ++v)
    if (tree.children(v).empty())
      for (std::int32_t d = 0; d < 8; ++d)
        demand.set(v, d, drng.NextDouble(0.1, 4.0));
  const PlacementResult placement = DerivePlacement(tree, demand);
  return QuotaSnapshot::FromPlacement(tree, placement, demand, 1e-9);
}

TEST(QuotaWire, RoundTripIsByteExact) {
  const QuotaSnapshot s = MakeSnapshot();
  ASSERT_GT(s.cell_count(), 0);

  std::vector<std::uint8_t> bytes;
  const std::size_t n = QuotaWireTable::Serialize(s, &bytes);
  ASSERT_EQ(n, bytes.size());

  QuotaSnapshot back;
  ASSERT_TRUE(QuotaWireTable::Deserialize(bytes.data(), bytes.size(), &back));

  ASSERT_EQ(back.node_count(), s.node_count());
  ASSERT_EQ(back.doc_count(), s.doc_count());
  ASSERT_EQ(back.cell_count(), s.cell_count());
  // total_rate survives with the exact bit pattern, not a re-sum.
  std::uint64_t want, got;
  double wd = s.total_rate(), gd = back.total_rate();
  std::memcpy(&want, &wd, sizeof want);
  std::memcpy(&got, &gd, sizeof got);
  EXPECT_EQ(got, want);
  for (NodeId v = 0; v < s.node_count(); ++v) {
    ASSERT_EQ(back.row_begin(v), s.row_begin(v));
    ASSERT_EQ(back.row_end(v), s.row_end(v));
  }
  for (std::int64_t c = 0; c < s.cell_count(); ++c) {
    ASSERT_EQ(back.cell_docs()[c], s.cell_docs()[c]);
    ASSERT_EQ(back.cell_rates()[c], s.cell_rates()[c]);
    ASSERT_EQ(back.cell_fractions()[c], s.cell_fractions()[c]);
  }

  // Serializing the reconstruction reproduces the exact byte string.
  std::vector<std::uint8_t> again;
  QuotaWireTable::Serialize(back, &again);
  EXPECT_EQ(again, bytes);
}

TEST(QuotaWire, CorruptTablesAreRejected) {
  const QuotaSnapshot s = MakeSnapshot();
  std::vector<std::uint8_t> bytes;
  QuotaWireTable::Serialize(s, &bytes);

  QuotaSnapshot out;
  // Truncations at a sample of cut points (every prefix would be O(n²)).
  for (std::size_t cut = 0; cut < bytes.size();
       cut += 1 + bytes.size() / 64)
    EXPECT_FALSE(QuotaWireTable::Deserialize(bytes.data(), cut, &out));
  // Bad magic / version.
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(QuotaWireTable::Deserialize(bad.data(), bad.size(), &out));
  bad = bytes;
  bad[4] ^= 0xff;
  EXPECT_FALSE(QuotaWireTable::Deserialize(bad.data(), bad.size(), &out));
  // Non-monotone row offsets.
  bad = bytes;
  bad[32] = 0xff;  // row_off[0] becomes nonzero
  EXPECT_FALSE(QuotaWireTable::Deserialize(bad.data(), bad.size(), &out));
}

TEST(QuotaWire, FileRoundTrip) {
  const QuotaSnapshot s = MakeSnapshot();
  const std::string path = ::testing::TempDir() + "/quota_wire_test.bin";
  ASSERT_TRUE(QuotaWireTable::WriteFile(s, path));
  QuotaSnapshot back;
  ASSERT_TRUE(QuotaWireTable::ReadFile(path, &back));
  EXPECT_EQ(back.cell_count(), s.cell_count());
  EXPECT_EQ(back.total_rate(), s.total_rate());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webwave
