// End-to-end integration: the full pipeline a user of the library runs —
// topology generation -> routing forest -> demand -> offline TLB ->
// placement -> distributed protocol (rate level) -> packet-level protocol
// — with every stage's output feeding the next and cross-checked.
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "doc/placement.h"
#include "proto/packet_sim.h"
#include "stats/summary.h"
#include "topology/generators.h"
#include "topology/metrics.h"
#include "topology/spt.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

TEST(Integration, TopologyToTlbToProtocolsPipeline) {
  // 1. An Internet-like topology.
  Rng rng(2024);
  const Network net = MakeBarabasiAlbert(48, 2, rng);
  ASSERT_TRUE(net.IsConnected());
  const NetworkMetrics nm = ComputeNetworkMetrics(net);
  ASSERT_LT(nm.diameter_hops, 10);

  // 2. Routing tree for a home server.
  const RoutingTree tree = ShortestPathTree(net, 5);
  ASSERT_EQ(tree.root(), 5);
  ASSERT_EQ(tree.size(), net.size());

  // 3. Zipf demand at the leaves.
  const DemandMatrix demand = LeafZipfDemand(tree, 10, 50.0, 1.0, rng);
  const std::vector<double> spont = demand.NodeTotals();
  const double total = demand.Total();
  ASSERT_GT(total, 0);

  // 4. Offline optimum + structural verification + independent solver.
  const WebFoldResult tlb = WebFold(tree, spont);
  ASSERT_TRUE(CheckFeasible(tree, spont, tlb.load, 1e-7).ok());
  ASSERT_TRUE(SatisfiesTlb(tree, spont, tlb.load));
  const std::vector<double> regions = SolveTlbByMaxMeanRegions(tree, spont);
  for (NodeId v = 0; v < tree.size(); ++v)
    ASSERT_NEAR(tlb.load[v], regions[v], 1e-6);

  // 5. Placement decomposes the optimum over documents.
  const PlacementResult placement = DerivePlacement(tree, demand);
  for (NodeId v = 0; v < tree.size(); ++v) {
    double node_total = 0;
    for (const double q : placement.quota[static_cast<std::size_t>(v)])
      node_total += q;
    ASSERT_NEAR(node_total, tlb.load[v], 1e-6);
  }

  // 6. Rate-level distributed protocol reaches the optimum.
  WebWaveSimulator protocol(tree, spont);
  const auto traj = protocol.RunUntil(tlb.load, 1e-5 * total, 50000);
  EXPECT_LE(traj.back(), 1e-5 * total);
  protocol.CheckInvariants();

  // 7. Document-level protocol gets close too (quota granularity).
  DocWebWave doc_protocol(tree, demand);
  const auto doc_traj = doc_protocol.RunUntil(tlb.load, 0.02 * total, 4000);
  EXPECT_LE(doc_traj.back(), 0.02 * total);
  doc_protocol.CheckInvariants();

  // 8. Packet-level protocol beats no-caching on balance and locality.
  PacketSimOptions pko;
  pko.duration = 25 * kMicrosPerSecond;
  pko.warmup = 10 * kMicrosPerSecond;
  pko.seed = 31;
  pko.policy = CachePolicy::kWebWave;
  const PacketSimReport wave = PacketSim(tree, demand, pko).Run();
  pko.policy = CachePolicy::kNoCaching;
  const PacketSimReport none = PacketSim(tree, demand, pko).Run();
  EXPECT_LT(CoefficientOfVariation(wave.measured_loads),
            CoefficientOfVariation(none.measured_loads));
  EXPECT_LT(wave.mean_hit_depth, none.mean_hit_depth);
}

TEST(Integration, WeightedPipelineOnTransitStub) {
  // Heterogeneous capacities end-to-end: transit-stub topology, core
  // nodes 4x beefier, weighted TLB realized by the weighted protocol.
  Rng rng(77);
  const Network net = MakeTransitStub(4, 2, 5, rng);
  const RoutingTree tree = ShortestPathTree(net, 0);
  std::vector<double> spont(static_cast<std::size_t>(tree.size()), 0.0);
  std::vector<double> cap(static_cast<std::size_t>(tree.size()), 1.0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.is_leaf(v)) spont[static_cast<std::size_t>(v)] = rng.NextDouble(5, 25);
    if (v < 4) cap[static_cast<std::size_t>(v)] = 4.0;  // transit core
  }
  const WebFoldResult target = WebFoldWeighted(tree, spont, cap);
  ASSERT_TRUE(CheckFeasible(tree, spont, target.load, 1e-7).ok());
  WebWaveOptions opt;
  opt.capacities = cap;
  WebWaveSimulator sim(tree, spont, opt);
  const auto traj = sim.RunUntil(target.load, 1e-5, 60000);
  EXPECT_LE(traj.back(), 1e-5);
}

}  // namespace
}  // namespace webwave
