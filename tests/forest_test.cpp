// Tests for coordinated WebWave over overlapping routing trees (§7's
// future work, implemented in sim/forest_webwave.h).
#include "core/load_model.h"
#include "core/webfold.h"
#include "sim/forest_webwave.h"
#include "topology/generators.h"
#include "topology/spt.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

// Two chains over 4 nodes, rooted at opposite ends: 0->1->2->3 and the
// reverse.  Every interior node is shared by both trees.
struct TwoChains {
  std::vector<RoutingTree> trees = {
      RoutingTree::FromParents({kNoNode, 0, 1, 2}),
      RoutingTree::FromParents({1, 2, 3, kNoNode})};
  std::vector<std::vector<double>> demands = {{0, 0, 0, 80},  // family A
                                              {80, 0, 0, 0}}; // family B
};

TEST(ForestWebWave, SingleTreeMatchesPlainWebWaveFixedPoint) {
  Rng rng(3);
  const RoutingTree tree = MakeKaryTree(2, 3);
  std::vector<double> demand(static_cast<std::size_t>(tree.size()), 0.0);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v)) demand[static_cast<std::size_t>(v)] = rng.NextDouble(5, 40);
  const WebFoldResult tlb = WebFold(tree, demand);

  ForestWebWave forest({tree}, {demand});
  for (int s = 0; s < 4000; ++s) forest.Step();
  forest.CheckInvariants();
  for (NodeId v = 0; v < tree.size(); ++v)
    EXPECT_NEAR(forest.served()[0][v], tlb.load[v], 1e-3) << "node " << v;
}

TEST(ForestWebWave, InvariantsHoldPerTreeThroughout) {
  const TwoChains f;
  ForestWebWave forest(f.trees, f.demands);
  for (int s = 0; s < 300; ++s) {
    forest.Step();
    ASSERT_NO_THROW(forest.CheckInvariants()) << "step " << s;
  }
}

TEST(ForestWebWave, CoordinationBalancesTotalLoadOnTwoChains) {
  // Independent per-tree optimization puts 40/40 on every node *per tree*
  // (each chain spreads its 80 evenly), so totals stack unevenly only if
  // trees ignore each other; coordination should reach totals of 40 per
  // node (160 over 4 nodes).
  const TwoChains f;
  ForestWebWaveOptions coordinated;
  coordinated.coordinate_across_trees = true;
  ForestWebWave forest(f.trees, f.demands, coordinated);
  for (int s = 0; s < 5000; ++s) forest.Step();
  forest.CheckInvariants();
  for (const double total : forest.TotalLoads())
    EXPECT_NEAR(total, 40.0, 1.0);
}

TEST(ForestWebWave, CoordinationNeverWorseThanIndependentOnWaxman) {
  Rng rng(11);
  const Network net = MakeWaxman(40, 0.5, 0.2, rng);
  const RoutingForest rf = MakeRoutingForest(net, {0, 7, 19});
  std::vector<std::vector<double>> demands;
  for (const RoutingTree& tree : rf.trees) {
    std::vector<double> d(static_cast<std::size_t>(tree.size()), 0.0);
    for (NodeId v = 0; v < tree.size(); ++v)
      if (tree.is_leaf(v)) d[static_cast<std::size_t>(v)] = rng.NextDouble(5, 30);
    demands.push_back(std::move(d));
  }

  ForestWebWaveOptions indep;
  indep.coordinate_across_trees = false;
  ForestWebWave independent(rf.trees, demands, indep);
  ForestWebWaveOptions coord;
  coord.coordinate_across_trees = true;
  ForestWebWave coordinated(rf.trees, demands, coord);
  for (int s = 0; s < 3000; ++s) {
    independent.Step();
    coordinated.Step();
  }
  independent.CheckInvariants();
  coordinated.CheckInvariants();
  EXPECT_LE(coordinated.MaxTotalLoad(),
            independent.MaxTotalLoad() * 1.02)
      << "coordination must not increase the hottest node's total load";
}

TEST(ForestWebWave, RejectsMismatchedInputs) {
  const RoutingTree a = MakeChain(3);
  const RoutingTree b = MakeChain(4);
  EXPECT_THROW(ForestWebWave({a, b}, {{1, 1, 1}, {1, 1, 1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(ForestWebWave({a}, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW(ForestWebWave({a}, {{1, -1, 1}}), std::invalid_argument);
  EXPECT_THROW(ForestWebWave({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace webwave
