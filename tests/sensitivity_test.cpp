// Tests for TLB sensitivity analysis: the fold is the exact blast radius
// of a demand change, with derivative 1/|fold| inside and 0 outside.
#include "core/sensitivity.h"
#include "core/webfold.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

TEST(Sensitivity, MatchesNumericalDerivativeOnFigure4Tree) {
  const RoutingTree tree =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 2, 3, 5});
  const std::vector<double> spont = {5, 0, 10, 0, 30, 8, 40, 2};
  const TlbSensitivity s = ComputeTlbSensitivity(tree, spont);
  const double eps = 1e-6;
  for (NodeId j = 0; j < tree.size(); ++j) {
    std::vector<double> bumped(spont);
    bumped[static_cast<std::size_t>(j)] += eps;
    const WebFoldResult after = WebFold(tree, bumped);
    for (NodeId i = 0; i < tree.size(); ++i) {
      const double numeric =
          (after.load[static_cast<std::size_t>(i)] -
           s.load[static_cast<std::size_t>(i)]) /
          eps;
      EXPECT_NEAR(numeric, s.Derivative(i, j), 1e-4)
          << "dL_" << i << "/dE_" << j;
    }
  }
}

class SensitivitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SensitivitySweep, NumericalAgreementOnRandomInstances) {
  Rng rng(GetParam());
  const int n = 4 + static_cast<int>(rng.NextBelow(20));
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  // Continuous rates: fold-boundary ties have probability zero, so the
  // derivative formula applies.
  for (auto& e : spont) e = rng.NextDouble(1, 50);
  const TlbSensitivity s = ComputeTlbSensitivity(tree, spont);
  const double eps = 1e-7;
  for (int probe = 0; probe < 5; ++probe) {
    const NodeId j = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(n)));
    std::vector<double> bumped(spont);
    bumped[static_cast<std::size_t>(j)] += eps;
    const WebFoldResult after = WebFold(tree, bumped);
    for (NodeId i = 0; i < n; ++i) {
      const double numeric =
          (after.load[static_cast<std::size_t>(i)] -
           s.load[static_cast<std::size_t>(i)]) /
          eps;
      EXPECT_NEAR(numeric, s.Derivative(i, j), 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivitySweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(Sensitivity, DerivativeRowsSumToOne) {
  // Σ_i dL_i/dE_j = 1: an extra request is served in full, somewhere.
  Rng rng(21);
  const RoutingTree tree = MakeRandomTree(15, rng);
  std::vector<double> spont(15);
  for (auto& e : spont) e = rng.NextDouble(1, 20);
  const TlbSensitivity s = ComputeTlbSensitivity(tree, spont);
  for (NodeId j = 0; j < 15; ++j) {
    double sum = 0;
    for (NodeId i = 0; i < 15; ++i) sum += s.Derivative(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "column " << j;
  }
}

TEST(Sensitivity, FoldGapBoundsStructuralStability) {
  const RoutingTree tree =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  const std::vector<double> spont = {0, 40, 10, 0, 0};
  // Folds: {0,1}@20, {2}@10, {3}@0, {4}@0 -> min gap is 10 ({2} under {0,1}).
  const TlbSensitivity s = ComputeTlbSensitivity(tree, spont);
  EXPECT_NEAR(s.min_fold_gap, 10.0, 1e-9);
  EXPECT_EQ(s.fold_size[static_cast<std::size_t>(
                s.fold_index[0])],
            2);
}

TEST(Sensitivity, SingleFoldMeansUniformDerivative) {
  const RoutingTree tree = MakeChain(4);
  const std::vector<double> spont = {0, 0, 0, 100};
  const TlbSensitivity s = ComputeTlbSensitivity(tree, spont);
  for (NodeId i = 0; i < 4; ++i)
    for (NodeId j = 0; j < 4; ++j)
      EXPECT_NEAR(s.Derivative(i, j), 0.25, 1e-12);
}

}  // namespace
}  // namespace webwave
