// The serving data plane: deterministic request streams, quota snapshots,
// proportional routing, bit-identical threading, and the closed loop
// (measure -> fold -> re-diffuse) beating home-only under a rotating hot
// spot.
#include "serve/closed_loop.h"
#include "serve/placement_policy.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/webwave_batch.h"
#include "doc/placement.h"
#include "sim/churn.h"
#include "tree/builders.h"

namespace webwave {
namespace {

// Generator ---------------------------------------------------------------

TEST(RequestGenerator, DeterministicAndBatchInvariant) {
  Rng rng(4);
  const RoutingTree tree = MakeRandomTree(500, rng);
  const auto component = ZipfLeafComponent(tree, 8, 2.0, 1.0);

  RequestGenerator one(tree, 8, {component}, 99);
  std::vector<Request> whole;
  one.NextBatch(1000, &whole);

  RequestGenerator two(tree, 8, {component}, 99);
  std::vector<Request> first, second;
  two.NextBatch(400, &first);
  two.NextBatch(600, &second);

  ASSERT_EQ(whole.size(), first.size() + second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(whole[i].node, first[i].node);
    EXPECT_EQ(whole[i].doc, first[i].doc);
  }
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(whole[400 + i].node, second[i].node);
    EXPECT_EQ(whole[400 + i].doc, second[i].doc);
  }

  // Seek replays any position.
  two.Seek(200);
  std::vector<Request> replay;
  two.NextBatch(100, &replay);
  for (std::size_t i = 0; i < replay.size(); ++i)
    EXPECT_EQ(whole[200 + i].node, replay[i].node);
}

TEST(RequestGenerator, EmpiricalFrequenciesMatchExpectedLanes) {
  Rng rng(5);
  const RoutingTree tree = MakeRandomTree(60, rng);
  const int docs = 6;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 3.0, 1.0)},
                       7);
  const std::vector<std::vector<double>> lanes = gen.ExpectedLanes();

  const std::size_t draws = 200000;
  std::vector<Request> batch;
  gen.NextBatch(draws, &batch);
  std::vector<double> doc_freq(static_cast<std::size_t>(docs), 0.0);
  std::vector<double> node_freq(static_cast<std::size_t>(tree.size()), 0.0);
  for (const Request& r : batch) {
    doc_freq[static_cast<std::size_t>(r.doc)] += 1.0;
    node_freq[static_cast<std::size_t>(r.node)] += 1.0;
  }
  const double total = gen.total_rate();
  for (int d = 0; d < docs; ++d) {
    double lane_rate = 0;
    for (const double r : lanes[static_cast<std::size_t>(d)]) lane_rate += r;
    EXPECT_NEAR(doc_freq[static_cast<std::size_t>(d)] / draws,
                lane_rate / total, 0.01)
        << "doc " << d;
  }
  for (NodeId v = 0; v < tree.size(); ++v) {
    double node_rate = 0;
    for (int d = 0; d < docs; ++d)
      node_rate += lanes[static_cast<std::size_t>(d)][static_cast<std::size_t>(v)];
    EXPECT_NEAR(node_freq[static_cast<std::size_t>(v)] / draws,
                node_rate / total, 0.01)
        << "node " << v;
  }
}

TEST(RequestGenerator, RotatingComponentMatchesChurnScheduleLanes) {
  Rng rng(6);
  const RoutingTree tree = MakeRandomTree(300, rng);
  const int docs = 5;
  ChurnScheduleOptions opt;
  opt.pattern = ChurnPattern::kRotatingHotSpot;
  opt.doc_count = docs;
  opt.base_rate = 1.5;
  opt.hot_rate = 30.0;
  opt.hot_fraction = 0.1;
  opt.rotation_epochs = 4;
  ChurnSchedule schedule(tree, opt);

  for (int epoch = 0; epoch < 3; ++epoch) {
    const RequestGenerator gen(
        tree, docs,
        {RotatingHotSpotComponent(tree, docs, opt.base_rate, opt.hot_rate,
                                  opt.hot_fraction, epoch,
                                  opt.rotation_epochs)},
        1);
    const auto expected = gen.ExpectedLanes();
    const auto reference = schedule.Lanes();
    for (int d = 0; d < docs; ++d)
      for (NodeId v = 0; v < tree.size(); ++v)
        ASSERT_NEAR(
            expected[static_cast<std::size_t>(d)][static_cast<std::size_t>(v)],
            reference[static_cast<std::size_t>(d)][static_cast<std::size_t>(v)],
            1e-9)
            << "epoch " << epoch << " doc " << d << " node " << v;
    schedule.NextEvents();
  }
}

// Quota snapshots ---------------------------------------------------------

TEST(QuotaSnapshot, FromPlacementMatchesQuotas) {
  Rng rng(11);
  const RoutingTree tree = MakeRandomTree(40, rng);
  const DemandMatrix demand = UniformRandomDemand(tree, 5, 10, rng);
  const PlacementResult p = DerivePlacement(tree, demand);
  const QuotaSnapshot snap = QuotaSnapshot::FromPlacement(p);
  double total = 0;
  for (NodeId v = 0; v < tree.size(); ++v)
    for (std::int32_t d = 0; d < 5; ++d) {
      EXPECT_NEAR(
          snap.RateAt(v, d),
          p.quota[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)],
          1e-12);
      total += snap.RateAt(v, d);
    }
  EXPECT_NEAR(snap.total_rate(), total, 1e-9);
  EXPECT_NEAR(snap.total_rate(), demand.Total(), 1e-6);
}

TEST(QuotaSnapshot, FromBatchMatchesServedLanes) {
  Rng rng(13);
  const RoutingTree tree = MakeRandomTree(80, rng);
  const int docs = 4;
  std::vector<std::vector<double>> lanes(docs);
  for (auto& lane : lanes) {
    lane.assign(static_cast<std::size_t>(tree.size()), 0.0);
    for (auto& r : lane) r = rng.NextDouble(0, 5);
  }
  BatchWebWaveSimulator batch(tree, lanes, {});
  for (int s = 0; s < 30; ++s) batch.Step();
  const QuotaSnapshot snap = QuotaSnapshot::FromBatch(batch);
  for (int d = 0; d < docs; ++d) {
    const std::vector<double> lane = batch.ServedLane(d);
    for (NodeId v = 0; v < tree.size(); ++v)
      EXPECT_NEAR(snap.RateAt(v, d), lane[static_cast<std::size_t>(v)], 1e-12);
  }
}

// Two snapshots must agree cell for cell, byte for byte (total_rate is
// FP-order sensitive between the incremental and full paths, so it gets a
// relative tolerance instead).
void ExpectSameCells(const QuotaSnapshot& got, const QuotaSnapshot& want,
                     const char* where) {
  ASSERT_EQ(got.node_count(), want.node_count()) << where;
  ASSERT_EQ(got.doc_count(), want.doc_count()) << where;
  ASSERT_EQ(got.cell_count(), want.cell_count()) << where;
  for (NodeId v = 0; v < want.node_count(); ++v) {
    ASSERT_EQ(got.row_begin(v), want.row_begin(v)) << where << " node " << v;
    ASSERT_EQ(got.row_end(v), want.row_end(v)) << where << " node " << v;
  }
  for (std::int64_t c = 0; c < want.cell_count(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    ASSERT_EQ(got.cell_docs()[i], want.cell_docs()[i]) << where << " cell " << c;
    ASSERT_EQ(got.cell_rates()[i], want.cell_rates()[i]) << where << " cell " << c;
    ASSERT_EQ(got.cell_fractions()[i], want.cell_fractions()[i])
        << where << " cell " << c;
  }
  EXPECT_NEAR(got.total_rate(), want.total_rate(),
              1e-9 * (1 + std::abs(want.total_rate())));
}

// The incremental-snapshot contract: across closed-loop style epochs
// (churn some lanes -> step -> re-snapshot), RefreshFromBatch on a
// maintained snapshot must equal a from-scratch FromBatch cell for cell —
// whether the in-place path ran or a copy-set change forced the
// structural fallback.
TEST(QuotaSnapshot, RefreshFromBatchMatchesFullRebuildAcrossEpochs) {
  Rng rng(19);
  const RoutingTree tree = MakeRandomTree(60, rng);
  const int docs = 10;
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (auto& lane : lanes) {
    lane.assign(static_cast<std::size_t>(tree.size()), 0.0);
    for (auto& r : lane)
      if (rng.NextBernoulli(0.5)) r = rng.NextDouble(0, 8);
  }
  const double min_rate = 1e-9;
  BatchWebWaveSimulator batch(tree, lanes, {});
  for (int s = 0; s < 50; ++s) batch.Step();

  QuotaSnapshot maintained = QuotaSnapshot::FromBatch(batch, min_rate);
  batch.ClearDirtyLanes();
  ExpectSameCells(maintained, QuotaSnapshot::FromBatch(batch, min_rate),
                  "initial");

  bool saw_in_place = false, saw_fallback = false;
  for (int epoch = 0; epoch < 8; ++epoch) {
    // Alternate gentle churn (rates move, copy sets mostly survive) with
    // violent churn (demand appears at fresh nodes, copy sets change) so
    // both refresh paths are exercised.
    std::vector<DemandEvent> events;
    if (epoch % 2 == 0) {
      events.push_back({epoch % docs, 3, rng.NextDouble(1, 10)});
      events.push_back({(epoch + 3) % docs, 7, rng.NextDouble(1, 10)});
    } else {
      for (NodeId v = 0; v < tree.size(); ++v)
        if (rng.NextBernoulli(0.4))
          events.push_back({(epoch * 3) % docs, v,
                            rng.NextBernoulli(0.5) ? 0.0
                                                   : rng.NextDouble(0, 12)});
    }
    batch.ApplyDemandEvents(events);
    for (int s = 0; s < 6; ++s) batch.Step();

    const bool in_place = maintained.RefreshFromBatch(batch);
    saw_in_place = saw_in_place || in_place;
    saw_fallback = saw_fallback || !in_place;
    batch.ClearDirtyLanes();
    ExpectSameCells(maintained, QuotaSnapshot::FromBatch(batch, min_rate),
                    "epoch refresh");
  }
  // The scenario is built to hit both paths; if it stops doing so the test
  // has silently lost half its coverage.
  EXPECT_TRUE(saw_fallback) << "no epoch exercised the structural fallback";
}

TEST(QuotaSnapshot, RefreshWithNoDirtyLanesLeavesEverythingInPlace) {
  Rng rng(23);
  const RoutingTree tree = MakeRandomTree(30, rng);
  std::vector<std::vector<double>> lanes(3);
  for (auto& lane : lanes) {
    lane.assign(static_cast<std::size_t>(tree.size()), 0.0);
    for (auto& r : lane) r = rng.NextDouble(0, 4);
  }
  BatchWebWaveSimulator batch(tree, lanes, {});
  for (int s = 0; s < 20; ++s) batch.Step();
  QuotaSnapshot snap = QuotaSnapshot::FromBatch(batch);
  batch.ClearDirtyLanes();
  const QuotaSnapshot before = snap;
  EXPECT_TRUE(snap.RefreshFromBatch(batch));
  ExpectSameCells(snap, before, "no dirty lanes");
}

TEST(QuotaSnapshot, RefreshRequiresABatchProducedSnapshot) {
  Rng rng(29);
  const RoutingTree tree = MakeRandomTree(20, rng);
  const DemandMatrix demand = UniformRandomDemand(tree, 3, 5, rng);
  QuotaSnapshot placed =
      QuotaSnapshot::FromPlacement(DerivePlacement(tree, demand));
  std::vector<std::vector<double>> lanes(
      3, std::vector<double>(static_cast<std::size_t>(tree.size()), 1.0));
  BatchWebWaveSimulator batch(tree, lanes, {});
  EXPECT_THROW(placed.RefreshFromBatch(batch), std::invalid_argument);
}

// Serving -----------------------------------------------------------------

TEST(ServingPlane, ExactProportionalBudgetsOnAChain) {
  // root 0 - node 1 - leaf 2, one document: node 1 holds a copy with 3/4
  // of the rate, the home the rest.  A block of 8192 leaf requests must
  // split exactly round(3/4 * 8192) : rest.
  const RoutingTree tree = MakeChain(3);
  QuotaSnapshot::Builder b(3, 1);
  b.Add(0, 0, 1.0);
  b.Add(1, 0, 3.0);
  ServingOptions opt;
  opt.block_size = 8192;
  opt.offered_rate = 4.0;
  opt.budget_slack = 1.0;  // enforce the placement exactly
  ServingPlane plane(tree, std::move(b).Build(), opt);

  std::vector<Request> batch(8192, Request{2, 0});
  plane.Serve(batch);
  const ServingMetrics& m = plane.metrics();
  EXPECT_EQ(m.requests, 8192u);
  EXPECT_EQ(m.served_per_node[1], 6144u);
  EXPECT_EQ(m.served_per_node[0], 2048u);
  EXPECT_EQ(m.served_per_node[2], 0u);
  EXPECT_EQ(m.cache_served, 6144u);
  EXPECT_EQ(m.home_served, 2048u);
  // Hops: served at node 1 = 1 hop, at the root = 2.
  EXPECT_EQ(m.hops[1], 6144u);
  EXPECT_EQ(m.hops[2], 2048u);
}

TEST(ServingPlane, SubTokenSharesThinToTheirFlowFraction) {
  // A copy whose share never reaches one token per block serves by
  // Poisson thinning at its flow fraction instead of being rounded to
  // nothing: quota 0.5 of a 4 req/s flow -> an eighth of the requests.
  const RoutingTree tree = MakeChain(3);
  QuotaSnapshot::Builder b(3, 1);
  b.Add(0, 0, 3.5);
  b.Add(1, 0, 0.5, 0.125);
  ServingOptions opt;
  opt.block_size = 4;  // r = 0.5 tokens per block -> thinning path
  opt.offered_rate = 4.0;
  opt.budget_slack = 1.0;
  ServingPlane plane(tree, std::move(b).Build(), opt);

  const std::size_t n = 40000;
  std::vector<Request> batch(n, Request{2, 0});
  plane.Serve(batch);
  const double share =
      static_cast<double>(plane.metrics().served_per_node[1]) / n;
  EXPECT_NEAR(share, 0.125, 0.01);
  EXPECT_EQ(plane.metrics().served_per_node[1] +
                plane.metrics().served_per_node[0],
            n);
}

TEST(ServingPlane, HomeOnlySendsEverythingToTheRoot) {
  Rng rng(17);
  const RoutingTree tree = MakeRandomTree(200, rng);
  const int docs = 4;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 1.0, 1.0)},
                       3);
  ServingOptions opt;
  opt.offered_rate = gen.total_rate();
  ServingPlane plane(tree, HomeOnlyPolicy().Place(tree, gen.ExpectedLanes()),
                     opt);
  std::vector<Request> batch;
  gen.NextBatch(50000, &batch);
  plane.Serve(batch);
  const ServingMetrics& m = plane.metrics();
  EXPECT_EQ(m.requests, 50000u);
  EXPECT_EQ(m.home_served, 50000u);
  EXPECT_EQ(m.cache_served, 0u);
  EXPECT_EQ(m.served_per_node[static_cast<std::size_t>(tree.root())], 50000u);
  EXPECT_EQ(m.HitRatio(), 0.0);
}

TEST(ServingPlane, ConservesEveryRequest) {
  Rng rng(19);
  const RoutingTree tree = MakeRandomTree(500, rng);
  const int docs = 6;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 2.0, 0.8)},
                       5);
  ServingOptions opt;
  opt.offered_rate = gen.total_rate();
  ServingPlane plane(
      tree, WebWaveTlbPolicy().Place(tree, gen.ExpectedLanes()), opt);
  std::vector<Request> batch;
  gen.NextBatch(100000, &batch);
  plane.Serve(batch);
  const ServingMetrics& m = plane.metrics();
  EXPECT_EQ(m.requests, 100000u);
  EXPECT_EQ(m.cache_served + m.home_served, m.requests);
  EXPECT_EQ(std::accumulate(m.served_per_node.begin(), m.served_per_node.end(),
                            std::uint64_t{0}),
            m.requests);
  EXPECT_EQ(
      std::accumulate(m.hops.begin(), m.hops.end(), std::uint64_t{0}),
      m.requests);
}

TEST(ServingPlane, BitIdenticalAcrossThreadCounts) {
  Rng rng(23);
  const RoutingTree tree = MakeRandomTree(3000, rng);
  const int docs = 8;
  RequestGenerator gen(tree, docs,
                       {ZipfLeafComponent(tree, docs, 2.0, 1.0),
                        RotatingHotSpotComponent(tree, docs, 0.0, 20.0, 0.1,
                                                 1, 4)},
                       41);
  const auto lanes = gen.ExpectedLanes();
  const QuotaSnapshot snap = WebWaveTlbPolicy().Place(tree, lanes);
  std::vector<Request> batch;
  gen.NextBatch(200000, &batch);

  std::vector<ServingMetrics> results;
  for (const int threads : {1, 2, 8}) {
    ServingOptions opt;
    opt.threads = threads;
    opt.offered_rate = gen.total_rate();
    QuotaSnapshot copy = snap;  // planes own their snapshot
    ServingPlane plane(tree, std::move(copy), opt);
    // Split the stream into several Serve calls to exercise block-id
    // continuation as well.
    plane.Serve(Span<Request>(batch.data(), 90000));
    plane.Serve(Span<Request>(batch.data() + 90000, 110000));
    results.push_back(plane.metrics());
  }
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0] == results[1]);
  EXPECT_TRUE(results[0] == results[2]);
  EXPECT_GT(results[0].HitRatio(), 0.5);
}

TEST(ServingPlane, WebWavePlacementBeatsHomeOnlyMaxLoad) {
  Rng rng(29);
  const RoutingTree tree = MakeRandomTree(800, rng);
  const int docs = 8;
  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 2.0, 1.0)},
                       11);
  const auto lanes = gen.ExpectedLanes();
  std::vector<Request> batch;
  gen.NextBatch(200000, &batch);

  std::uint64_t max_home = 0, max_webwave = 0;
  {
    ServingOptions opt;
    opt.offered_rate = gen.total_rate();
    ServingPlane plane(tree, HomeOnlyPolicy().Place(tree, lanes), opt);
    plane.Serve(batch);
    max_home = plane.metrics().MaxServed();
  }
  {
    ServingOptions opt;
    opt.offered_rate = gen.total_rate();
    ServingPlane plane(tree, WebWaveTlbPolicy().Place(tree, lanes), opt);
    plane.Serve(batch);
    max_webwave = plane.metrics().MaxServed();
  }
  EXPECT_EQ(max_home, 200000u);
  // TLB splits the load across roughly all servers; at n=800 the max must
  // drop by well over an order of magnitude.
  EXPECT_LT(max_webwave, max_home / 10);
}

// Incremental plane refresh ----------------------------------------------

// The data-plane analogue of RefreshFromBatch: installing a new snapshot
// into a live plane must leave admission tables byte-identical to a
// fresh construction, whether the hinted in-place path, the unhinted
// diff, or the full rebuild ran — and two live planes refreshed through
// different paths must keep serving bit-identically.
TEST(ServingPlane, RefreshMatchesFreshConstructionAcrossEpochs) {
  Rng rng(43);
  const RoutingTree tree = MakeRandomTree(500, rng);
  const int docs = 6;
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (auto& lane : lanes) {
    lane.assign(static_cast<std::size_t>(tree.size()), 0.0);
    for (auto& r : lane) r = rng.NextDouble(0, 4);
  }
  BatchWebWaveSimulator sim(tree, lanes, {});
  for (int s = 0; s < 30; ++s) sim.Step();
  const double min_rate = 1e-9;
  QuotaSnapshot snap = QuotaSnapshot::FromBatch(sim, min_rate);
  sim.ClearDirtyLanes();

  ServingOptions opt;
  opt.offered_rate = 60.0;  // fixed scale: refreshes keep the hint valid
  ServingPlane hinted(tree, snap, opt);
  ServingPlane diffed(tree, snap, opt);

  RequestGenerator gen(tree, docs, {ZipfLeafComponent(tree, docs, 2.0, 1.0)},
                       19);
  std::vector<Request> window;
  bool saw_in_place = false, saw_rebuild = false;
  for (int epoch = 0; epoch < 6; ++epoch) {
    gen.NextBatch(40000, &window);
    hinted.Serve(window);
    diffed.Serve(window);
    ASSERT_TRUE(hinted.metrics() == diffed.metrics()) << "epoch " << epoch;

    // Churn some lanes (gentle on even epochs, copy-set-moving on odd),
    // re-diffuse, re-snapshot, refresh both planes through different
    // paths.
    std::vector<DemandEvent> events;
    if (epoch % 2 == 0) {
      events.push_back({epoch % docs, 5, rng.NextDouble(1, 8)});
    } else {
      for (NodeId v = 0; v < tree.size(); ++v)
        if (rng.NextBernoulli(0.3))
          events.push_back({(epoch * 2) % docs, v, rng.NextDouble(0, 9)});
    }
    sim.ApplyDemandEvents(events);
    for (int s = 0; s < 6; ++s) sim.Step();
    const std::vector<int> dirty = sim.DirtyLanes();
    snap.RefreshFromBatch(sim);
    sim.ClearDirtyLanes();

    std::vector<std::int32_t> changed(dirty.begin(), dirty.end());
    const bool a = hinted.Refresh(
        snap, Span<const std::int32_t>(changed.data(), changed.size()));
    const bool b = diffed.Refresh(snap);
    EXPECT_EQ(a, b) << "epoch " << epoch;
    saw_in_place = saw_in_place || a;
    saw_rebuild = saw_rebuild || !a;

    const ServingPlane fresh(tree, snap, opt);
    EXPECT_TRUE(hinted.TablesEqual(fresh)) << "epoch " << epoch;
    EXPECT_TRUE(diffed.TablesEqual(fresh)) << "epoch " << epoch;
  }
  EXPECT_TRUE(saw_in_place) << "no epoch exercised the in-place refresh";
  EXPECT_TRUE(saw_rebuild) << "no epoch exercised the full rebuild";
}

TEST(ServingPlane, RefreshTracksSnapshotTotalWhenOfferedRateFloats) {
  // offered_rate 0 scales budgets to the snapshot's own total, which
  // moves with every refresh — the hint must be ignored and the tables
  // still match a fresh construction.
  Rng rng(47);
  const RoutingTree tree = MakeRandomTree(200, rng);
  const int docs = 3;
  std::vector<std::vector<double>> lanes(
      docs, std::vector<double>(static_cast<std::size_t>(tree.size()), 1.0));
  BatchWebWaveSimulator sim(tree, lanes, {});
  for (int s = 0; s < 20; ++s) sim.Step();
  QuotaSnapshot snap = QuotaSnapshot::FromBatch(sim, 1e-9);
  sim.ClearDirtyLanes();

  ServingOptions opt;  // offered_rate stays 0
  ServingPlane plane(tree, snap, opt);
  sim.ApplyDemandEvents({{0, 7, 25.0}});
  for (int s = 0; s < 5; ++s) sim.Step();
  snap.RefreshFromBatch(sim);
  sim.ClearDirtyLanes();
  const std::vector<std::int32_t> changed = {0};
  plane.Refresh(snap, Span<const std::int32_t>(changed.data(), changed.size()));
  EXPECT_TRUE(plane.TablesEqual(ServingPlane(tree, snap, opt)));
}

// Closed loop -------------------------------------------------------------

TEST(ArrivalFold, DrainsMeasuredRatesAndForgetsStaleCells) {
  ArrivalFold fold(4, 2);
  const std::vector<Request> first = {{1, 0}, {1, 0}, {2, 1}, {1, 0}};
  fold.Count(first);
  EXPECT_EQ(fold.counted(), 4u);
  std::vector<DemandEvent> events = fold.Drain(2.0);
  ASSERT_EQ(events.size(), 2u);  // (1,0) and (2,1)
  for (const DemandEvent& e : events) {
    if (e.node == 1) {
      EXPECT_EQ(e.doc, 0);
      EXPECT_DOUBLE_EQ(e.rate, 1.5);
    } else {
      EXPECT_EQ(e.node, 2);
      EXPECT_EQ(e.doc, 1);
      EXPECT_DOUBLE_EQ(e.rate, 0.5);
    }
  }
  // Next window: (1,0) vanished, (2,1) unchanged, (3,1) new.
  const std::vector<Request> second = {{2, 1}, {3, 1}};
  fold.Count(second);
  events = fold.Drain(2.0);
  ASSERT_EQ(events.size(), 2u);
  bool saw_zero = false, saw_new = false;
  for (const DemandEvent& e : events) {
    if (e.node == 1) {
      EXPECT_DOUBLE_EQ(e.rate, 0.0);
      saw_zero = true;
    }
    if (e.node == 3) {
      EXPECT_DOUBLE_EQ(e.rate, 0.5);
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_new);
}

TEST(ClosedLoop, ReducesMaxServerLoadVersusHomeOnlyUnderRotation) {
  Rng rng(37);
  const RoutingTree tree = MakeRandomTree(400, rng);
  const int docs = 4;
  const int rotation = 4;
  const std::size_t window = 60000;
  const double base = 1.0, hot = 25.0, frac = 0.15;

  // The diffusion engine starts ignorant (all demand believed at the
  // root's idea of nothing — a tiny uniform guess) and learns only
  // through folded measurements.
  std::vector<std::vector<double>> guess(static_cast<std::size_t>(docs));
  for (auto& lane : guess)
    lane.assign(static_cast<std::size_t>(tree.size()), 1e-3);
  WebWaveOptions wopt;
  wopt.threads = 1;
  BatchWebWaveSimulator sim(tree, guess, wopt);
  ArrivalFold fold(tree.size(), docs);

  // Each epoch: serve half the window from the (lagging) placement, fold
  // the measured arrivals into the engine, let diffusion re-balance, then
  // serve the other half from the refreshed snapshot — that second half
  // is what the closed loop is judged on.
  const std::size_t half = window / 2;
  std::uint64_t worst_webwave = 0, worst_home = 0;
  std::vector<Request> batch;
  // One maintained snapshot for the whole run, re-synced incrementally
  // from the engine's dirty lanes each time diffusion moved — the
  // closed-loop protocol of serve/README.md.
  const double min_rate = 1e-9 * base * tree.size() * docs;
  QuotaSnapshot snap = QuotaSnapshot::FromBatch(sim, min_rate);
  sim.ClearDirtyLanes();
  for (int epoch = 0; epoch < rotation; ++epoch) {
    RequestGenerator gen(
        tree, docs,
        {RotatingHotSpotComponent(tree, docs, base, hot, frac, epoch,
                                  rotation)},
        100 + epoch);
    gen.NextBatch(window, &batch);
    const double half_seconds = static_cast<double>(half) / gen.total_rate();
    ServingOptions sopt;
    sopt.offered_rate = gen.total_rate();

    // First half: serve (stale placement), measure, re-diffuse.
    {
      ServingPlane plane(tree, snap, sopt);
      plane.Serve(Span<Request>(batch.data(), half));
    }
    fold.Count(Span<Request>(batch.data(), half));
    sim.ApplyDemandEvents(fold.Drain(half_seconds));
    for (int s = 0; s < 80; ++s) sim.Step();

    // Second half: the refreshed copies carry the hot window's load.
    snap.RefreshFromBatch(sim);
    sim.ClearDirtyLanes();
    ServingPlane plane(tree, snap, sopt);
    plane.Serve(Span<Request>(batch.data() + half, window - half));
    worst_webwave = std::max(worst_webwave, plane.metrics().MaxServed());

    ServingPlane home(tree,
                      HomeOnlyPolicy().Place(tree, gen.ExpectedLanes()), sopt);
    home.Serve(Span<Request>(batch.data() + half, window - half));
    worst_home = std::max(worst_home, home.metrics().MaxServed());
  }
  EXPECT_EQ(worst_home, window - half);
  EXPECT_LT(worst_webwave, worst_home / 2)
      << "closed loop failed to spread the rotating hot spot";
}

}  // namespace
}  // namespace webwave
