// Tests for the util module (error macros, ASCII rendering) and the
// histogram / topology-metrics helpers.
#include "stats/histogram.h"
#include "topology/generators.h"
#include "topology/metrics.h"
#include "tree/builders.h"
#include "util/ascii.h"
#include "util/check.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

TEST(CheckMacros, RequireThrowsInvalidArgumentWithContext) {
  try {
    WEBWAVE_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(CheckMacros, AssertThrowsLogicError) {
  EXPECT_THROW(WEBWAVE_ASSERT(false, "broken"), std::logic_error);
  EXPECT_NO_THROW(WEBWAVE_ASSERT(true, "fine"));
}

TEST(AsciiTableTest, AlignsColumnsAndSeparatesHeader) {
  AsciiTable t({"name", "value"});
  t.AddRow({"alpha", "1.00"});
  t.AddRow({"a-much-longer-name", "2.50"});
  const std::string out = t.Render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
}

TEST(AsciiTableTest, RejectsMismatchedRows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(AsciiTable({}), std::invalid_argument);
}

TEST(AsciiTableTest, NumberFormatting) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Num(2.0, 0), "2");
  EXPECT_EQ(AsciiTable::Int(-42), "-42");
}

TEST(AsciiBarChartTest, ScalesBarsToMaximum) {
  const std::string out =
      AsciiBarChart({{"a", 10.0}, {"b", 5.0}, {"c", 0.0}}, 10);
  // 'a' gets the full 10 hashes, 'b' five, 'c' none.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(HistogramTest, BinningAndCdf) {
  Histogram h(0, 10, 5);
  h.Add(1);       // bin 0
  h.Add(3);       // bin 1
  h.Add(3.5);     // bin 1
  h.Add(9.99);    // bin 4
  h.Add(-5);      // clamped to bin 0
  h.Add(25);      // clamped to bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.count(1), 2);
  EXPECT_DOUBLE_EQ(h.count(4), 2);
  EXPECT_DOUBLE_EQ(h.total(), 6);
  EXPECT_NEAR(h.CdfAt(3.9), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(h.CdfAt(100), 1.0, 1e-12);
}

TEST(HistogramTest, WeightsAndRender) {
  Histogram h(0, 4, 4);
  h.Add(0.5, 3.0);
  h.Add(2.5, 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
  const std::string out = h.Render(8);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2)
      << "only non-empty bins are rendered";
  EXPECT_THROW(Histogram(1, 1, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
}

TEST(NetworkMetricsTest, RingValues) {
  // Ring of 8 as a Network: diameter 4, mean degree 2, no hubs.
  Network net(8);
  for (int v = 0; v < 8; ++v) net.AddEdge(v, (v + 1) % 8);
  const NetworkMetrics m = ComputeNetworkMetrics(net);
  EXPECT_EQ(m.nodes, 8);
  EXPECT_EQ(m.edges, 8);
  EXPECT_DOUBLE_EQ(m.mean_degree, 2);
  EXPECT_EQ(m.max_degree, 2);
  EXPECT_EQ(m.diameter_hops, 4);
  EXPECT_DOUBLE_EQ(m.hub_fraction, 0);
}

TEST(NetworkMetricsTest, BarabasiAlbertLooksInternetLike) {
  Rng rng(7);
  const Network net = MakeBarabasiAlbert(200, 2, rng);
  const NetworkMetrics m = ComputeNetworkMetrics(net);
  EXPECT_GT(m.hub_fraction, 0.01) << "preferential attachment grows hubs";
  EXPECT_LT(m.diameter_hops, 12) << "small-world diameter";
  Rng rng2(7);
  const Network er = MakeErdosRenyi(200, 0.02, rng2);
  const NetworkMetrics em = ComputeNetworkMetrics(er);
  EXPECT_GT(m.hub_fraction, em.hub_fraction)
      << "BA must be more hub-heavy than Erdős–Rényi";
}

TEST(TreeMetricsTest, KaryTreeValues) {
  const TreeMetrics m = ComputeTreeMetrics(MakeKaryTree(2, 3));
  EXPECT_EQ(m.nodes, 15);
  EXPECT_EQ(m.height, 3);
  EXPECT_EQ(m.leaves, 8);
  EXPECT_EQ(m.max_children, 2);
  EXPECT_DOUBLE_EQ(m.mean_children_of_interior, 2);
  // Mean depth of a complete binary tree of depth 3:
  // (0 + 2*1 + 4*2 + 8*3) / 15.
  EXPECT_NEAR(m.mean_depth, 34.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace webwave
