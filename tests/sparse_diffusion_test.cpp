// Property tests for the CSR diffusion engine: SparseDiffusionMatrix must
// agree with the dense DiffusionMatrix — entries, Apply, SpectralGamma and
// whole diffusion runs — on random trees, rings and tori (n <= 200).  The
// CSR rows keep ascending column order, matching the dense row scan, so
// agreement is expected at full double precision, asserted here to 1e-9.
#include "core/diffusion.h"
#include "tree/builders.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace webwave {
namespace {

std::vector<UndirectedGraph> EquivalenceShapes() {
  std::vector<UndirectedGraph> shapes;
  shapes.push_back(MakeRingGraph(7));
  shapes.push_back(MakeRingGraph(64));
  shapes.push_back(MakeTorusGraph(4, 5));
  shapes.push_back(MakeTorusGraph(10, 10));
  shapes.push_back(MakePathGraph(33));
  shapes.push_back(MakeHypercubeGraph(5));
  for (const std::uint64_t seed : {2u, 3u, 4u}) {
    Rng rng(seed);
    const int n = 20 + static_cast<int>(rng.NextBelow(180));
    shapes.push_back(GraphFromTree(MakeRandomTree(n, rng)));
  }
  return shapes;
}

TEST(SparseDiffusion, EntriesMatchDenseDegreeBased) {
  for (const UndirectedGraph& g : EquivalenceShapes()) {
    const DiffusionMatrix dense = DiffusionMatrix::DegreeBased(g);
    const SparseDiffusionMatrix sparse = SparseDiffusionMatrix::DegreeBased(g);
    ASSERT_EQ(sparse.size(), dense.size());
    EXPECT_EQ(sparse.nonzeros(),
              static_cast<std::size_t>(g.size()) + 2u * g.edge_count());
    for (int i = 0; i < g.size(); ++i)
      for (int j = 0; j < g.size(); ++j)
        EXPECT_EQ(sparse.at(i, j), dense.at(i, j)) << i << "," << j;
  }
}

TEST(SparseDiffusion, EntriesMatchDenseUniform) {
  const UndirectedGraph g = MakeTorusGraph(5, 5);
  const DiffusionMatrix dense = DiffusionMatrix::Uniform(g, 0.2);
  const SparseDiffusionMatrix sparse = SparseDiffusionMatrix::Uniform(g, 0.2);
  for (int i = 0; i < g.size(); ++i)
    for (int j = 0; j < g.size(); ++j)
      EXPECT_EQ(sparse.at(i, j), dense.at(i, j));
}

TEST(SparseDiffusion, RejectsUnstableAlpha) {
  const UndirectedGraph g = MakeRingGraph(5);
  EXPECT_THROW(SparseDiffusionMatrix::Uniform(g, 0.6), std::invalid_argument);
  EXPECT_NO_THROW(SparseDiffusionMatrix::Uniform(g, 0.49));
}

TEST(SparseDiffusion, FromDenseReproducesConstructors) {
  for (const UndirectedGraph& g : EquivalenceShapes()) {
    const DiffusionMatrix dense = DiffusionMatrix::DegreeBased(g);
    const SparseDiffusionMatrix direct =
        SparseDiffusionMatrix::DegreeBased(g);
    const SparseDiffusionMatrix compressed =
        SparseDiffusionMatrix::FromDense(dense);
    for (int i = 0; i < g.size(); ++i)
      for (int j = 0; j < g.size(); ++j)
        EXPECT_EQ(compressed.at(i, j), direct.at(i, j));
  }
}

TEST(SparseDiffusion, ApplyMatchesDenseToOneENine) {
  Rng rng(11);
  for (const UndirectedGraph& g : EquivalenceShapes()) {
    const DiffusionMatrix dense = DiffusionMatrix::DegreeBased(g);
    const SparseDiffusionMatrix sparse = SparseDiffusionMatrix::DegreeBased(g);
    std::vector<double> x(static_cast<std::size_t>(g.size()));
    for (auto& v : x) v = rng.NextDouble(0, 1000);
    const std::vector<double> yd = dense.Apply(x);
    const std::vector<double> ys = sparse.Apply(x);
    ASSERT_EQ(yd.size(), ys.size());
    for (std::size_t i = 0; i < yd.size(); ++i)
      EXPECT_NEAR(ys[i], yd[i], 1e-9) << "n=" << g.size() << " i=" << i;
  }
}

TEST(SparseDiffusion, RepeatedApplyStaysWithinToleranceOverLongRuns) {
  // Error must not accumulate across sweeps: iterate both forms 500 times.
  Rng rng(13);
  const UndirectedGraph g = MakeTorusGraph(8, 8);
  const DiffusionMatrix dense = DiffusionMatrix::DegreeBased(g);
  const SparseDiffusionMatrix sparse = SparseDiffusionMatrix::DegreeBased(g);
  std::vector<double> xd(static_cast<std::size_t>(g.size()));
  for (auto& v : xd) v = rng.NextDouble(0, 100);
  std::vector<double> xs = xd;
  for (int t = 0; t < 500; ++t) {
    xd = dense.Apply(xd);
    xs = sparse.Apply(xs);
  }
  for (std::size_t i = 0; i < xd.size(); ++i)
    EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseDiffusion, SpectralGammaMatchesDenseToOneENine) {
  for (const UndirectedGraph& g : EquivalenceShapes()) {
    const double dense_gamma = DiffusionMatrix::DegreeBased(g).SpectralGamma();
    const double sparse_gamma =
        SparseDiffusionMatrix::DegreeBased(g).SpectralGamma();
    EXPECT_NEAR(sparse_gamma, dense_gamma, 1e-9) << "n=" << g.size();
  }
}

TEST(SparseDiffusion, SpectralGammaMatchesClosedFormOnRing) {
  constexpr double kPi = 3.14159265358979323846;
  const int n = 12;
  const double alpha = 0.3;
  const SparseDiffusionMatrix d =
      SparseDiffusionMatrix::Uniform(MakeRingGraph(n), alpha);
  double expected = 0;
  for (int k = 1; k < n; ++k) {
    const double lambda =
        1.0 - 2.0 * alpha * (1.0 - std::cos(2.0 * kPi * k / n));
    expected = std::max(expected, std::abs(lambda));
  }
  EXPECT_NEAR(d.SpectralGamma(), expected, 1e-6);
}

TEST(SparseDiffusion, RunDiffusionMatchesDensePath) {
  Rng rng(17);
  for (const UndirectedGraph& g : EquivalenceShapes()) {
    std::vector<double> x(static_cast<std::size_t>(g.size()));
    for (auto& v : x) v = rng.NextDouble(0, 50);
    const DiffusionRun dense_run =
        RunDiffusion(DiffusionMatrix::DegreeBased(g), x, 1e-9, 20000);
    const DiffusionRun sparse_run =
        RunDiffusion(SparseDiffusionMatrix::DegreeBased(g), x, 1e-9, 20000);
    EXPECT_EQ(dense_run.reached_tolerance, sparse_run.reached_tolerance);
    ASSERT_EQ(dense_run.distances.size(), sparse_run.distances.size());
    for (std::size_t t = 0; t < dense_run.distances.size(); ++t)
      EXPECT_NEAR(sparse_run.distances[t], dense_run.distances[t], 1e-9);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_NEAR(sparse_run.final_load[i], dense_run.final_load[i], 1e-9);
  }
}

TEST(SparseDiffusion, CybenkoBoundHoldsWithSparseGamma) {
  Rng rng(19);
  for (const std::uint64_t seed : {23u, 29u, 31u}) {
    Rng tree_rng(seed);
    const UndirectedGraph g =
        GraphFromTree(MakeRandomTree(150, tree_rng));
    const SparseDiffusionMatrix d = SparseDiffusionMatrix::DegreeBased(g);
    std::vector<double> x(static_cast<std::size_t>(g.size()));
    for (auto& v : x) v = rng.NextDouble(0, 100);
    const DiffusionRun run = RunDiffusion(d, x, 1e-9, 300000);
    EXPECT_TRUE(run.reached_tolerance);
    const double gamma = d.SpectralGamma();
    EXPECT_LT(gamma, 1.0);
    EXPECT_TRUE(CybenkoBoundHolds(run, gamma, 1e-7)) << "seed " << seed;
  }
}

TEST(SparseDiffusion, MillionNodeApplyNeverMaterializesDense) {
  // A 2^20-node hypercube-like budget is far beyond dense n² storage; the
  // CSR form applies in O(n + E).  This also exercises the size regime the
  // batched catalog benchmarks run at.
  Rng rng(37);
  const RoutingTree tree = MakeRandomTree(1 << 20, rng);
  const UndirectedGraph g = GraphFromTree(tree);
  const SparseDiffusionMatrix d = SparseDiffusionMatrix::DegreeBased(g);
  EXPECT_EQ(d.nonzeros(),
            static_cast<std::size_t>(g.size()) + 2u * g.edge_count());
  std::vector<double> x(static_cast<std::size_t>(g.size()), 0.0);
  x[0] = 1e6;
  double total = 0;
  const std::vector<double> y = d.Apply(x);
  for (const double v : y) total += v;
  EXPECT_NEAR(total, 1e6, 1e-3);  // doubly stochastic: mass preserved
}

}  // namespace
}  // namespace webwave
