// Tests for tracking under erratic request rates (§5.1 ongoing study):
// UpdateSpontaneous keeps the protocol state feasible, and WebWave tracks
// a moving TLB target across demand shocks.
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "sim/churn.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

TEST(UpdateSpontaneous, KeepsInvariantsAfterArbitraryShock) {
  Rng rng(3);
  const RoutingTree tree = MakeRandomTree(25, rng);
  std::vector<double> rates(25);
  for (auto& e : rates) e = rng.NextDouble(0, 10);
  WebWaveSimulator sim(tree, rates);
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < 10; ++s) sim.Step();
    for (auto& e : rates) e = rng.NextDouble(0, 10);
    sim.UpdateSpontaneous(rates);
    ASSERT_NO_THROW(sim.CheckInvariants()) << "round " << round;
    EXPECT_NEAR(TotalRate(sim.served()), TotalRate(rates), 1e-6);
  }
}

TEST(UpdateSpontaneous, DemandDropPushesExcessTowardRoot) {
  // A leaf was serving 50; its demand vanishes — it cannot keep serving
  // requests that no longer exist, so its load must shrink and the root
  // absorbs the books' balance.
  const RoutingTree tree = MakeChain(3);
  WebWaveOptions opt;
  opt.initial_load = InitialLoad::kSelfService;
  WebWaveSimulator sim(tree, {10, 10, 50}, opt);
  sim.UpdateSpontaneous({10, 10, 0});
  EXPECT_NEAR(sim.served()[2], 0, 1e-9);
  EXPECT_NEAR(TotalRate(sim.served()), 20, 1e-9);
  sim.CheckInvariants();
}

TEST(UpdateSpontaneous, DemandIncreaseIsServedSomewhere) {
  const RoutingTree tree = MakeChain(3);
  WebWaveSimulator sim(tree, {0, 0, 10});
  sim.UpdateSpontaneous({0, 0, 100});
  EXPECT_NEAR(TotalRate(sim.served()), 100, 1e-9);
  sim.CheckInvariants();
  // And from there it converges to the new TLB.
  const WebFoldResult target = WebFold(tree, {0, 0, 100});
  const auto traj = sim.RunUntil(target.load, 1e-6, 5000);
  EXPECT_LE(traj.back(), 1e-6);
}

TEST(UpdateSpontaneous, RefreshesNeighborEstimatesImmediately) {
  // With gossip_period > 1 the next in-run refresh may be several steps
  // away; the first post-churn step must already see post-churn estimates,
  // or the protocol diffuses against imbalances that no longer exist.
  const RoutingTree tree = MakeChain(2);
  WebWaveOptions opt;
  opt.gossip_period = 10;  // no in-run refresh fires during this test
  WebWaveSimulator sim(tree, {0, 10}, opt);
  sim.Step();  // alpha = 1/2 moves 5 down: served = {5, 5}, the TLB optimum
  ASSERT_NEAR(sim.served()[0], 5.0, 1e-12);
  ASSERT_NEAR(sim.served()[1], 5.0, 1e-12);
  sim.UpdateSpontaneous({0, 10});  // same rates: state stays balanced
  sim.Step();
  // Balanced state + fresh estimates => the step must be a no-op.  Stale
  // construction-time estimates (child load 0) would move 2.5 back down.
  EXPECT_NEAR(sim.served()[0], 5.0, 1e-12);
  EXPECT_NEAR(sim.served()[1], 5.0, 1e-12);
}

TEST(UpdateSpontaneous, RejectsBadRates) {
  const RoutingTree tree = MakeChain(2);
  WebWaveSimulator sim(tree, {1, 1});
  EXPECT_THROW(sim.UpdateSpontaneous({1}), std::invalid_argument);
  EXPECT_THROW(sim.UpdateSpontaneous({1, -1}), std::invalid_argument);
}

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, TracksMovingTlbWithinEpochBudget) {
  const int period = GetParam();
  Rng rng(17);
  const RoutingTree tree = MakeRandomTree(30, rng);
  std::vector<double> initial(30);
  for (auto& e : initial) e = rng.NextDouble(0, 50);
  ChurnOptions opt;
  opt.period = period;
  opt.epochs = 12;
  opt.seed = 5;
  const ChurnRun run = RunChurn(tree, initial, opt);
  ASSERT_EQ(run.epochs.size(), 12u);
  // The longer the quiet period, the closer each epoch ends to its TLB.
  for (const ChurnEpoch& e : run.epochs)
    EXPECT_LE(e.distance_at_end, e.distance_after_shock + 1e-9)
        << "an epoch must not end farther away than it started";
  EXPECT_GT(run.mean_relative_distance, 0);
}

INSTANTIATE_TEST_SUITE_P(Periods, ChurnSweep, ::testing::Values(10, 50, 200));

TEST(ChurnBehavior, LongerQuietPeriodsTrackBetter) {
  Rng rng(29);
  const RoutingTree tree = MakeRandomTree(40, rng);
  std::vector<double> initial(40);
  for (auto& e : initial) e = rng.NextDouble(0, 50);
  auto run_with_period = [&](int period) {
    ChurnOptions opt;
    opt.period = period;
    opt.epochs = 10;
    opt.seed = 7;  // same shock sequence for both runs
    return RunChurn(tree, initial, opt);
  };
  const ChurnRun fast = run_with_period(10);
  const ChurnRun slow = run_with_period(100);
  EXPECT_LT(slow.worst_end_relative_distance,
            fast.worst_end_relative_distance + 1e-9)
      << "ten times the settling time must not track worse";
}

TEST(ChurnBehavior, ZeroChurnReducesToPlainConvergence) {
  Rng rng(31);
  const RoutingTree tree = MakeRandomTree(20, rng);
  std::vector<double> initial(20);
  for (auto& e : initial) e = rng.NextDouble(1, 10);
  ChurnOptions opt;
  opt.churn_fraction = 0;  // no shocks: the target never moves
  opt.epochs = 4;
  opt.period = 300;
  const ChurnRun run = RunChurn(tree, initial, opt);
  EXPECT_LT(run.epochs.back().distance_at_end, 1e-4);
}

TEST(ChurnOptionsTest, Validation) {
  const RoutingTree tree = MakeChain(2);
  ChurnOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(RunChurn(tree, {1, 1}, opt), std::invalid_argument);
  opt.epochs = 1;
  opt.churn_fraction = 1.5;
  EXPECT_THROW(RunChurn(tree, {1, 1}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace webwave
