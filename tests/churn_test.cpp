// Tests for tracking under erratic request rates (§5.1 ongoing study):
// UpdateSpontaneous keeps the protocol state feasible, and WebWave tracks
// a moving TLB target across demand shocks.
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "sim/churn.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

TEST(UpdateSpontaneous, KeepsInvariantsAfterArbitraryShock) {
  Rng rng(3);
  const RoutingTree tree = MakeRandomTree(25, rng);
  std::vector<double> rates(25);
  for (auto& e : rates) e = rng.NextDouble(0, 10);
  WebWaveSimulator sim(tree, rates);
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < 10; ++s) sim.Step();
    for (auto& e : rates) e = rng.NextDouble(0, 10);
    sim.UpdateSpontaneous(rates);
    ASSERT_NO_THROW(sim.CheckInvariants()) << "round " << round;
    EXPECT_NEAR(TotalRate(sim.served()), TotalRate(rates), 1e-6);
  }
}

TEST(UpdateSpontaneous, DemandDropPushesExcessTowardRoot) {
  // A leaf was serving 50; its demand vanishes — it cannot keep serving
  // requests that no longer exist, so its load must shrink and the root
  // absorbs the books' balance.
  const RoutingTree tree = MakeChain(3);
  WebWaveOptions opt;
  opt.initial_load = InitialLoad::kSelfService;
  WebWaveSimulator sim(tree, {10, 10, 50}, opt);
  sim.UpdateSpontaneous({10, 10, 0});
  EXPECT_NEAR(sim.served()[2], 0, 1e-9);
  EXPECT_NEAR(TotalRate(sim.served()), 20, 1e-9);
  sim.CheckInvariants();
}

TEST(UpdateSpontaneous, DemandIncreaseIsServedSomewhere) {
  const RoutingTree tree = MakeChain(3);
  WebWaveSimulator sim(tree, {0, 0, 10});
  sim.UpdateSpontaneous({0, 0, 100});
  EXPECT_NEAR(TotalRate(sim.served()), 100, 1e-9);
  sim.CheckInvariants();
  // And from there it converges to the new TLB.
  const WebFoldResult target = WebFold(tree, {0, 0, 100});
  const auto traj = sim.RunUntil(target.load, 1e-6, 5000);
  EXPECT_LE(traj.back(), 1e-6);
}

TEST(UpdateSpontaneous, RefreshesNeighborEstimatesImmediately) {
  // With gossip_period > 1 the next in-run refresh may be several steps
  // away; the first post-churn step must already see post-churn estimates,
  // or the protocol diffuses against imbalances that no longer exist.
  const RoutingTree tree = MakeChain(2);
  WebWaveOptions opt;
  opt.gossip_period = 10;  // no in-run refresh fires during this test
  WebWaveSimulator sim(tree, {0, 10}, opt);
  sim.Step();  // alpha = 1/2 moves 5 down: served = {5, 5}, the TLB optimum
  ASSERT_NEAR(sim.served()[0], 5.0, 1e-12);
  ASSERT_NEAR(sim.served()[1], 5.0, 1e-12);
  sim.UpdateSpontaneous({0, 10});  // same rates: state stays balanced
  sim.Step();
  // Balanced state + fresh estimates => the step must be a no-op.  Stale
  // construction-time estimates (child load 0) would move 2.5 back down.
  EXPECT_NEAR(sim.served()[0], 5.0, 1e-12);
  EXPECT_NEAR(sim.served()[1], 5.0, 1e-12);
}

TEST(UpdateSpontaneous, RejectsBadRates) {
  const RoutingTree tree = MakeChain(2);
  WebWaveSimulator sim(tree, {1, 1});
  EXPECT_THROW(sim.UpdateSpontaneous({1}), std::invalid_argument);
  EXPECT_THROW(sim.UpdateSpontaneous({1, -1}), std::invalid_argument);
}

// ApplyDemandEvents is the batched form of UpdateSpontaneous: a batch of
// events must leave the simulator in exactly the state UpdateSpontaneous
// reaches with the merged vector, across repeated churn rounds with steps
// in between.
TEST(ApplyDemandEvents, EquivalentToRepeatedUpdateSpontaneous) {
  Rng rng(53);
  const RoutingTree tree = MakeRandomTree(28, rng);
  std::vector<double> rates(28);
  for (auto& e : rates) e = rng.NextDouble(0, 20);

  WebWaveOptions opt;
  opt.gossip_period = 3;
  opt.gossip_delay = 2;
  WebWaveSimulator by_events(tree, rates, opt);
  WebWaveSimulator by_vector(tree, rates, opt);

  for (int round = 0; round < 12; ++round) {
    std::vector<DemandEvent> events;
    for (NodeId v = 0; v < tree.size(); ++v)
      if (rng.NextBernoulli(0.4)) {
        const double rate = rng.NextDouble(0, 20);
        events.push_back({0, v, rate});
        rates[static_cast<std::size_t>(v)] = rate;
      }
    by_events.ApplyDemandEvents(events);
    by_vector.UpdateSpontaneous(rates);
    for (int s = 0; s < 7; ++s) {
      by_events.Step();
      by_vector.Step();
    }
    for (std::size_t v = 0; v < rates.size(); ++v) {
      ASSERT_EQ(by_events.served()[v], by_vector.served()[v])
          << "round " << round << " node " << v;
      ASSERT_EQ(by_events.forwarded()[v], by_vector.forwarded()[v])
          << "round " << round << " node " << v;
    }
  }
  ASSERT_NO_THROW(by_events.CheckInvariants());
}

TEST(ApplyDemandEvents, EmptyBatchIsANoOp) {
  const RoutingTree tree = MakeChain(3);
  WebWaveOptions opt;
  opt.gossip_delay = 2;
  WebWaveSimulator sim(tree, {1, 2, 3}, opt);
  WebWaveSimulator untouched(tree, {1, 2, 3}, opt);
  for (int s = 0; s < 5; ++s) {
    sim.Step();
    untouched.Step();
  }
  sim.ApplyDemandEvents({});  // must not restart history or refresh
  for (int s = 0; s < 5; ++s) {
    sim.Step();
    untouched.Step();
  }
  for (std::size_t v = 0; v < 3; ++v)
    EXPECT_EQ(sim.served()[v], untouched.served()[v]);
}

TEST(ApplyDemandEvents, RejectsBadEvents) {
  const RoutingTree tree = MakeChain(3);
  WebWaveSimulator sim(tree, {1, 1, 1});
  EXPECT_THROW(sim.ApplyDemandEvents({{1, 0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(sim.ApplyDemandEvents({{0, 3, 1.0}}), std::invalid_argument);
  EXPECT_THROW(sim.ApplyDemandEvents({{0, 0, -1.0}}),
               std::invalid_argument);
}

// ChurnSchedule ------------------------------------------------------------

double TotalDemand(const std::vector<std::vector<double>>& lanes) {
  double total = 0;
  for (const auto& lane : lanes)
    for (const double e : lane) total += e;
  return total;
}

class SchedulePatternSweep : public ::testing::TestWithParam<ChurnPattern> {};

// NextEvents must be exactly the sparse difference between consecutive
// epochs' Lanes() snapshots.
TEST_P(SchedulePatternSweep, EventsAreTheDiffBetweenEpochSnapshots) {
  Rng rng(61);
  const RoutingTree tree = MakeRandomTree(40, rng);
  ChurnScheduleOptions opt;
  opt.pattern = GetParam();
  opt.doc_count = 5;
  opt.base_rate = 2.0;
  opt.hot_rate = 30.0;
  opt.hot_fraction = 0.2;
  opt.rotation_epochs = 6;
  opt.seed = 7;
  ChurnSchedule schedule(tree, opt);

  std::vector<std::vector<double>> lanes = schedule.Lanes();
  for (int epoch = 0; epoch < 10; ++epoch) {
    const std::vector<DemandEvent> events = schedule.NextEvents();
    for (const DemandEvent& e : events) {
      ASSERT_GE(e.doc, 0);
      ASSERT_LT(e.doc, opt.doc_count);
      ASSERT_GE(e.node, 0);
      ASSERT_LT(e.node, tree.size());
      ASSERT_GE(e.rate, 0);
      lanes[static_cast<std::size_t>(e.doc)]
           [static_cast<std::size_t>(e.node)] = e.rate;
    }
    const std::vector<std::vector<double>> expect = schedule.Lanes();
    for (int d = 0; d < opt.doc_count; ++d)
      for (NodeId v = 0; v < tree.size(); ++v)
        ASSERT_EQ(lanes[static_cast<std::size_t>(d)]
                       [static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(d)]
                        [static_cast<std::size_t>(v)])
            << PatternName(opt.pattern) << " epoch=" << epoch
            << " doc=" << d << " node=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, SchedulePatternSweep,
                         ::testing::Values(ChurnPattern::kRotatingHotSpot,
                                           ChurnPattern::kFlashCrowd,
                                           ChurnPattern::kZipfReshuffle));

// The rotating window only moves — it never grows or shrinks — so total
// offered demand is conserved across every rotation event, and the
// simulator's served mass tracks it exactly.
TEST(ChurnScheduleProperty, RotationConservesTotalDemand) {
  Rng rng(67);
  const RoutingTree tree = MakeRandomTree(60, rng);
  ChurnScheduleOptions opt;
  opt.pattern = ChurnPattern::kRotatingHotSpot;
  opt.doc_count = 4;
  opt.base_rate = 1.0;
  opt.hot_rate = 25.0;
  opt.hot_fraction = 0.25;
  opt.rotation_epochs = 8;
  ChurnSchedule schedule(tree, opt);

  const double initial_total = TotalDemand(schedule.Lanes());
  ASSERT_GT(initial_total, 0);
  BatchWebWaveSimulator batch(tree, schedule.Lanes());
  for (int epoch = 0; epoch < 17; ++epoch) {  // more than two revolutions
    const std::vector<DemandEvent> events = schedule.NextEvents();
    EXPECT_FALSE(events.empty()) << "the window must move every epoch";
    batch.ApplyDemandEvents(events);
    EXPECT_NEAR(TotalDemand(schedule.Lanes()), initial_total,
                1e-9 * initial_total)
        << "epoch " << epoch;
    // Served mass equals offered demand lane for lane after the shock.
    for (int d = 0; d < opt.doc_count; ++d)
      EXPECT_NEAR(TotalRate(batch.ServedLane(d)),
                  TotalRate(batch.SpontaneousLane(d)),
                  1e-9 * (1 + initial_total))
          << "epoch " << epoch << " doc " << d;
    for (int s = 0; s < 5; ++s) batch.Step();
  }
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
}

// RunBatchChurn ties schedule + batch engine together: it must track the
// moving per-lane TLB optima and improve within each epoch.
TEST(RunBatchChurnTest, TracksMovingPerLaneTlb) {
  Rng rng(71);
  const RoutingTree tree = MakeRandomTree(35, rng);
  ChurnScheduleOptions sched_opt;
  sched_opt.pattern = ChurnPattern::kRotatingHotSpot;
  sched_opt.doc_count = 3;
  sched_opt.base_rate = 1.0;
  sched_opt.hot_rate = 20.0;
  sched_opt.hot_fraction = 0.3;
  sched_opt.rotation_epochs = 4;
  ChurnSchedule schedule(tree, sched_opt);

  BatchChurnOptions opt;
  opt.epochs = 6;
  opt.period = 60;
  opt.tlb_lanes = 3;
  const BatchChurnRun run = RunBatchChurn(tree, schedule, opt);
  ASSERT_EQ(run.epochs.size(), 6u);
  EXPECT_GT(run.mean_relative_distance, 0);
  for (std::size_t e = 0; e < run.epochs.size(); ++e) {
    EXPECT_LE(run.epochs[e].distance_at_end,
              run.epochs[e].distance_after_shock + 1e-9)
        << "epoch " << e << " must not end farther than it started";
    if (e > 0) EXPECT_GT(run.epochs[e].events, 0u);
  }
}

TEST(RunBatchChurnTest, Validation) {
  const RoutingTree tree = MakeChain(3);
  ChurnScheduleOptions sched_opt;
  sched_opt.doc_count = 2;
  ChurnSchedule schedule(tree, sched_opt);
  BatchChurnOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(RunBatchChurn(tree, schedule, opt), std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(MakeChain(1), sched_opt),
               std::invalid_argument);
}

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, TracksMovingTlbWithinEpochBudget) {
  const int period = GetParam();
  Rng rng(17);
  const RoutingTree tree = MakeRandomTree(30, rng);
  std::vector<double> initial(30);
  for (auto& e : initial) e = rng.NextDouble(0, 50);
  ChurnOptions opt;
  opt.period = period;
  opt.epochs = 12;
  opt.seed = 5;
  const ChurnRun run = RunChurn(tree, initial, opt);
  ASSERT_EQ(run.epochs.size(), 12u);
  // The longer the quiet period, the closer each epoch ends to its TLB.
  for (const ChurnEpoch& e : run.epochs)
    EXPECT_LE(e.distance_at_end, e.distance_after_shock + 1e-9)
        << "an epoch must not end farther away than it started";
  EXPECT_GT(run.mean_relative_distance, 0);
}

INSTANTIATE_TEST_SUITE_P(Periods, ChurnSweep, ::testing::Values(10, 50, 200));

TEST(ChurnBehavior, LongerQuietPeriodsTrackBetter) {
  Rng rng(29);
  const RoutingTree tree = MakeRandomTree(40, rng);
  std::vector<double> initial(40);
  for (auto& e : initial) e = rng.NextDouble(0, 50);
  auto run_with_period = [&](int period) {
    ChurnOptions opt;
    opt.period = period;
    opt.epochs = 10;
    opt.seed = 7;  // same shock sequence for both runs
    return RunChurn(tree, initial, opt);
  };
  const ChurnRun fast = run_with_period(10);
  const ChurnRun slow = run_with_period(100);
  EXPECT_LT(slow.worst_end_relative_distance,
            fast.worst_end_relative_distance + 1e-9)
      << "ten times the settling time must not track worse";
}

TEST(ChurnBehavior, ZeroChurnReducesToPlainConvergence) {
  Rng rng(31);
  const RoutingTree tree = MakeRandomTree(20, rng);
  std::vector<double> initial(20);
  for (auto& e : initial) e = rng.NextDouble(1, 10);
  ChurnOptions opt;
  opt.churn_fraction = 0;  // no shocks: the target never moves
  opt.epochs = 4;
  opt.period = 300;
  const ChurnRun run = RunChurn(tree, initial, opt);
  EXPECT_LT(run.epochs.back().distance_at_end, 1e-4);
}

TEST(ChurnOptionsTest, Validation) {
  const RoutingTree tree = MakeChain(2);
  ChurnOptions opt;
  opt.epochs = 0;
  EXPECT_THROW(RunChurn(tree, {1, 1}, opt), std::invalid_argument);
  opt.epochs = 1;
  opt.churn_fraction = 1.5;
  EXPECT_THROW(RunChurn(tree, {1, 1}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace webwave
