// Unit tests for the WebWave distributed protocol (rate-level engine).
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "stats/fit.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

TEST(WebWaveProtocol, InitialConditionsAreFeasible) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  const std::vector<double> spont = {0, 40, 10, 0, 0};
  {
    WebWaveOptions opt;
    opt.initial_load = InitialLoad::kAllAtRoot;
    WebWaveSimulator sim(t, spont, opt);
    EXPECT_DOUBLE_EQ(sim.served()[0], 50);
    sim.CheckInvariants();
  }
  {
    WebWaveOptions opt;
    opt.initial_load = InitialLoad::kSelfService;
    WebWaveSimulator sim(t, spont, opt);
    EXPECT_DOUBLE_EQ(sim.served()[1], 40);
    sim.CheckInvariants();
  }
}

TEST(WebWaveProtocol, ConvergesToTlbOnFigure2b) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  const std::vector<double> spont = {0, 40, 10, 0, 0};
  const WebFoldResult target = WebFold(t, spont);
  WebWaveSimulator sim(t, spont);
  const auto trajectory = sim.RunUntil(target.load, 1e-6, 2000);
  EXPECT_LE(trajectory.back(), 1e-6)
      << "did not converge in " << trajectory.size() << " steps";
  sim.CheckInvariants();
  EXPECT_TRUE(SatisfiesTlb(t, spont, sim.served(), 1e-4));
}

TEST(WebWaveProtocol, ConvergesFromSelfServiceToo) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  const std::vector<double> spont = {0, 40, 10, 0, 0};
  const WebFoldResult target = WebFold(t, spont);
  WebWaveOptions opt;
  opt.initial_load = InitialLoad::kSelfService;
  WebWaveSimulator sim(t, spont, opt);
  const auto trajectory = sim.RunUntil(target.load, 1e-6, 2000);
  EXPECT_LE(trajectory.back(), 1e-6);
}

TEST(WebWaveProtocol, StationaryAtTlbFixedPoint) {
  // Start the protocol exactly at the TLB assignment: nothing should move.
  const RoutingTree t =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 2, 3, 5});
  const std::vector<double> spont = {5, 0, 10, 0, 30, 8, 40, 2};
  const WebFoldResult target = WebFold(t, spont);
  WebWaveOptions opt;
  opt.initial_load = InitialLoad::kSelfService;
  WebWaveSimulator sim(t, spont, opt);
  // Drive it to TLB first, then observe it stays.
  sim.RunUntil(target.load, 1e-9, 5000);
  const double d_before = sim.DistanceTo(target.load);
  for (int i = 0; i < 50; ++i) sim.Step();
  EXPECT_LE(sim.DistanceTo(target.load), d_before + 1e-9);
}

TEST(WebWaveProtocol, InvariantsHoldAfterEveryStep) {
  const RoutingTree t = MakeCaterpillar(4, 2);
  std::vector<double> spont(t.size(), 0.0);
  spont[t.size() - 1] = 120;
  spont[2] = 30;
  WebWaveSimulator sim(t, spont);
  for (int s = 0; s < 200; ++s) {
    sim.Step();
    ASSERT_NO_THROW(sim.CheckInvariants()) << "step " << s;
  }
}

TEST(WebWaveProtocol, ConvergenceIsExponentialOnChain) {
  // The paper's headline: distance decays as a·γ^t with γ < 1.
  const RoutingTree t = MakeChain(8);
  std::vector<double> spont(8, 0.0);
  spont[7] = 800;
  const WebFoldResult target = WebFold(t, spont);
  WebWaveSimulator sim(t, spont);
  auto traj = sim.RunUntil(target.load, 1e-9, 4000);
  ASSERT_GT(traj.size(), 10u);
  traj.resize(std::min<std::size_t>(traj.size(), 400));
  const ExponentialFit fit = FitExponential(traj);
  EXPECT_GT(fit.gamma, 0.0);
  EXPECT_LT(fit.gamma, 1.0);
}

TEST(WebWaveProtocol, GossipPeriodSlowsButDoesNotBreakConvergence) {
  const RoutingTree t = MakeKaryTree(2, 3);
  std::vector<double> spont(t.size(), 1.0);
  spont[9] = 90;
  const WebFoldResult target = WebFold(t, spont);

  WebWaveOptions fast;
  WebWaveSimulator sim_fast(t, spont, fast);
  const auto fast_traj = sim_fast.RunUntil(target.load, 1e-7, 20000);

  WebWaveOptions slow;
  slow.gossip_period = 5;
  WebWaveSimulator sim_slow(t, spont, slow);
  const auto slow_traj = sim_slow.RunUntil(target.load, 1e-7, 20000);

  EXPECT_LE(fast_traj.back(), 1e-7);
  EXPECT_LE(slow_traj.back(), 1e-7);
  EXPECT_LE(fast_traj.size(), slow_traj.size())
      << "fresh gossip should not converge slower";
}

TEST(WebWaveProtocol, StaleEstimatesStillConverge) {
  const RoutingTree t = MakeKaryTree(3, 2);
  std::vector<double> spont(t.size(), 2.0);
  spont[4] = 60;
  const WebFoldResult target = WebFold(t, spont);
  WebWaveOptions opt;
  opt.gossip_delay = 3;
  opt.gossip_period = 2;
  WebWaveSimulator sim(t, spont, opt);
  const auto traj = sim.RunUntil(target.load, 1e-6, 30000);
  EXPECT_LE(traj.back(), 1e-6) << "bounded staleness must not prevent convergence";
}

TEST(WebWaveProtocol, AsynchronousActivationConverges) {
  const RoutingTree t = MakeKaryTree(2, 3);
  std::vector<double> spont(t.size(), 1.0);
  spont[t.size() - 1] = 45;
  const WebFoldResult target = WebFold(t, spont);
  WebWaveOptions opt;
  opt.asynchronous = true;
  opt.activation_probability = 0.4;
  opt.seed = 77;
  WebWaveSimulator sim(t, spont, opt);
  const auto traj = sim.RunUntil(target.load, 1e-6, 50000);
  EXPECT_LE(traj.back(), 1e-6);
  sim.CheckInvariants();
}

TEST(WebWaveProtocol, FixedAlphaValidation) {
  const RoutingTree t = MakeChain(3);
  WebWaveOptions opt;
  opt.alpha_policy = AlphaPolicy::kFixed;
  opt.alpha = 0.0;
  EXPECT_THROW(WebWaveSimulator(t, {1, 1, 1}, opt), std::invalid_argument);
  opt.alpha = 0.9;
  EXPECT_THROW(WebWaveSimulator(t, {1, 1, 1}, opt), std::invalid_argument);
  opt.alpha = 0.5;
  EXPECT_NO_THROW(WebWaveSimulator(t, {1, 1, 1}, opt));
}

TEST(WebWaveProtocol, UncappedAlphaOnAStarViolatesCybenkoAndOscillates) {
  // Cybenko's condition (1): 1 − Σ_j α_ij > 0.  The hub of a star with 8
  // children and α = 0.5 has Σ α = 4 — the uncapped iteration sloshes load
  // back and forth instead of converging.  (This is why the capped kFixed
  // and kDegree policies exist.)
  const RoutingTree t = MakeStar(9);
  std::vector<double> spont(9, 0.0);
  for (NodeId v = 1; v < 9; ++v) spont[v] = 10.0 + v;
  const WebFoldResult target = WebFold(t, spont);
  WebWaveOptions opt;
  opt.alpha_policy = AlphaPolicy::kFixedUncapped;
  opt.alpha = 0.5;
  WebWaveSimulator sim(t, spont, opt);
  const auto traj = sim.RunUntil(target.load, 1e-6, 5000);
  EXPECT_GT(traj.back(), 1e-3) << "uncapped alpha should fail to settle";
  // Yet the invariants (conservation, NSS) still hold — the protocol is
  // merely non-convergent, never unsafe.
  sim.CheckInvariants();
}

TEST(WebWaveProtocol, SingleNodeIsTriviallyConverged) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode});
  WebWaveSimulator sim(t, {10});
  sim.Step();
  EXPECT_DOUBLE_EQ(sim.served()[0], 10);
  sim.CheckInvariants();
}

TEST(WebWaveProtocol, RejectsBadInputs) {
  const RoutingTree t = MakeChain(3);
  EXPECT_THROW(WebWaveSimulator(t, {1, 1}), std::invalid_argument);
  EXPECT_THROW(WebWaveSimulator(t, {1, -2, 1}), std::invalid_argument);
  WebWaveOptions opt;
  opt.gossip_period = 0;
  EXPECT_THROW(WebWaveSimulator(t, {1, 1, 1}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace webwave
