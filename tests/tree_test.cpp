// Unit tests for the RoutingTree substrate and the tree builders.
#include "tree/builders.h"
#include "tree/render.h"
#include "tree/routing_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace webwave {
namespace {

TEST(RoutingTree, SingleNode) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode});
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.height(), 0);
  EXPECT_EQ(t.subtree_size(0), 1);
}

TEST(RoutingTree, SmallTreeStructure) {
  // 0 <- {1, 2}; 1 <- {3, 4}
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(3), 1);
  EXPECT_EQ(t.children(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{3, 4}));
  EXPECT_TRUE(t.is_leaf(2));
  EXPECT_FALSE(t.is_leaf(1));
  EXPECT_EQ(t.depth(0), 0);
  EXPECT_EQ(t.depth(4), 2);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.subtree_size(1), 3);
  EXPECT_EQ(t.subtree_size(0), 5);
  EXPECT_EQ(t.degree(0), 2);
  EXPECT_EQ(t.degree(1), 3);
  EXPECT_EQ(t.degree(3), 1);
}

TEST(RoutingTree, TraversalOrders) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  EXPECT_EQ(t.preorder(), (std::vector<NodeId>{0, 1, 3, 4, 2}));
  // Postorder must place every node after its whole subtree.
  const auto& post = t.postorder();
  std::vector<int> position(5);
  for (int i = 0; i < 5; ++i) position[post[i]] = i;
  for (NodeId v = 1; v < 5; ++v)
    EXPECT_LT(position[v], position[t.parent(v)]) << "node " << v;
}

TEST(RoutingTree, SubtreeAndAncestors) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 3});
  EXPECT_EQ(t.subtree(1), (std::vector<NodeId>{1, 3, 5, 4}));
  EXPECT_TRUE(t.is_ancestor(0, 5));
  EXPECT_TRUE(t.is_ancestor(1, 5));
  EXPECT_TRUE(t.is_ancestor(3, 5));
  EXPECT_TRUE(t.is_ancestor(5, 5));
  EXPECT_FALSE(t.is_ancestor(5, 3));
  EXPECT_FALSE(t.is_ancestor(2, 5));
  EXPECT_EQ(t.path_to_root(5), (std::vector<NodeId>{5, 3, 1, 0}));
}

TEST(RoutingTree, RejectsMalformedInputs) {
  EXPECT_THROW(RoutingTree::FromParents({}), std::invalid_argument);
  // No root.
  EXPECT_THROW(RoutingTree::FromParents({1, 0}), std::invalid_argument);
  // Two roots.
  EXPECT_THROW(RoutingTree::FromParents({kNoNode, kNoNode}),
               std::invalid_argument);
  // Self parent.
  EXPECT_THROW(RoutingTree::FromParents({kNoNode, 1}), std::invalid_argument);
  // Out of range parent.
  EXPECT_THROW(RoutingTree::FromParents({kNoNode, 7}), std::invalid_argument);
  // Cycle 1 -> 2 -> 1 disconnected from the root.
  EXPECT_THROW(RoutingTree::FromParents({kNoNode, 2, 1}),
               std::invalid_argument);
}

TEST(Builders, Chain) {
  const RoutingTree t = MakeChain(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.height(), 4);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(t.parent(v), v - 1);
}

TEST(Builders, Star) {
  const RoutingTree t = MakeStar(6);
  EXPECT_EQ(t.height(), 1);
  for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(t.parent(v), 0);
}

TEST(Builders, KaryTreeSizes) {
  EXPECT_EQ(MakeKaryTree(2, 0).size(), 1);
  EXPECT_EQ(MakeKaryTree(2, 3).size(), 15);
  EXPECT_EQ(MakeKaryTree(3, 2).size(), 13);
  EXPECT_EQ(MakeKaryTree(2, 3).height(), 3);
  // Every internal node of a complete binary tree has exactly 2 children.
  const RoutingTree t = MakeKaryTree(2, 3);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (!t.is_leaf(v)) {
      EXPECT_EQ(t.children(v).size(), 2u);
    }
  }
}

TEST(Builders, Caterpillar) {
  const RoutingTree t = MakeCaterpillar(3, 2);
  EXPECT_EQ(t.size(), 9);
  EXPECT_EQ(t.height(), 3);  // spine of 3 plus a leg at the end
}

class RandomTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeTest, RandomTreeIsValidAndDeterministic) {
  const int n = GetParam();
  Rng rng1(42), rng2(42);
  const RoutingTree a = MakeRandomTree(n, rng1);
  const RoutingTree b = MakeRandomTree(n, rng2);
  EXPECT_EQ(a.parents(), b.parents()) << "same seed must give same tree";
  EXPECT_EQ(a.size(), n);
  EXPECT_EQ(a.subtree_size(a.root()), n);
}

TEST_P(RandomTreeTest, RandomTreeOfHeightHitsHeightExactly) {
  const int n = GetParam();
  for (const int h : {1, 3, 9}) {
    if (n < h + 1) continue;
    Rng rng(7 * static_cast<unsigned>(n) + static_cast<unsigned>(h));
    const RoutingTree t = MakeRandomTreeOfHeight(n, h, rng);
    EXPECT_EQ(t.height(), h) << "n=" << n << " h=" << h;
    EXPECT_EQ(t.size(), n);
  }
}

TEST(RandomTreeOfHeight, RejectsImpossibleShapes) {
  Rng rng(1);
  // height 0 with more than one node has nowhere to attach them.
  EXPECT_THROW(MakeRandomTreeOfHeight(5, 0, rng), std::invalid_argument);
  EXPECT_NO_THROW(MakeRandomTreeOfHeight(1, 0, rng));
  EXPECT_THROW(MakeRandomTreeOfHeight(3, 5, rng), std::invalid_argument);
  EXPECT_THROW(MakeRandomTreeOfHeight(3, -1, rng), std::invalid_argument);
}

TEST_P(RandomTreeTest, RandomBinaryTreeRespectsArity) {
  const int n = GetParam();
  Rng rng(99);
  const RoutingTree t = MakeRandomBinaryTree(n, rng);
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_LE(t.children(v).size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeTest,
                         ::testing::Values(1, 2, 5, 16, 64, 300));

TEST(Render, AsciiContainsEveryNodeOnce) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
  const std::string art = RenderTree(t);
  // 5 lines, one per node.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(Render, DotHasAllEdges) {
  const RoutingTree t = MakeChain(4);
  const std::string dot = RenderDot(t);
  EXPECT_NE(dot.find("n1 -> n0"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n2"), std::string::npos);
  EXPECT_EQ(dot.find("n0 ->"), std::string::npos) << "root must not point up";
}

}  // namespace
}  // namespace webwave
