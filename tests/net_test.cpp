// Tests for the deterministic discrete-event simulator.
#include "net/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace webwave {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleIn(30, [&] { order.push_back(3); });
  sim.ScheduleIn(10, [&] { order.push_back(1); });
  sim.ScheduleIn(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.ScheduleIn(7, [&order, i] { order.push_back(i); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<SimTime> times;
  std::function<void()> hop = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.ScheduleIn(5, hop);
  };
  sim.ScheduleIn(5, hop);
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 10, 15, 20}));
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleIn(10, [&] { ++fired; });
  sim.ScheduleIn(20, [&] { ++fired; });
  sim.ScheduleIn(30, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.RunUntil(100), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, HorizonAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, RejectsPastScheduling) {
  Simulator sim;
  sim.ScheduleIn(10, [] {});
  sim.RunAll();
  EXPECT_THROW(sim.ScheduleAt(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.ScheduleIn(-1, [] {}), std::invalid_argument);
}

TEST(PeriodicTimerTest, FiresEveryPeriodUntilCancelled) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(sim, 10, 10, [&] { ++fired; });
  sim.RunUntil(45);
  EXPECT_EQ(fired, 4);  // t = 10, 20, 30, 40
  timer.Cancel();
  sim.RunUntil(100);
  EXPECT_EQ(fired, 4);
}

TEST(PeriodicTimerTest, CancelInsideCallbackStops) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer* handle = nullptr;
  PeriodicTimer timer(sim, 5, 5, [&] {
    if (++fired == 3) handle->Cancel();
  });
  handle = &timer;
  sim.RunUntil(1000);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleIn(i, [] {});
  sim.RunAll();
  EXPECT_EQ(sim.executed_events(), 7u);
}

}  // namespace
}  // namespace webwave
