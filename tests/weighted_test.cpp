// Tests for the capacity-weighted generalization (the paper assumes
// uniform capacity; §5.1 flags that as a simplifying assumption).
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace webwave {
namespace {

// Weighted brute-force oracle: enumerate all edge-cut fold partitions,
// assign L_v = c_v * (fold E / fold C), keep feasible ones, minimize the
// sorted-descending *utilization* vector lexicographically.
std::vector<double> BruteForceWeighted(const RoutingTree& tree,
                                       const std::vector<double>& spont,
                                       const std::vector<double>& cap) {
  const int n = tree.size();
  std::vector<NodeId> edge_child;
  for (NodeId v = 0; v < n; ++v)
    if (!tree.is_root(v)) edge_child.push_back(v);
  std::vector<double> best;
  std::vector<double> best_util;
  std::vector<double> load(static_cast<std::size_t>(n));
  for (std::uint64_t mask = 0; mask < (1ULL << (n - 1)); ++mask) {
    std::vector<NodeId> fold_root(static_cast<std::size_t>(n));
    std::vector<double> fr(static_cast<std::size_t>(n), 0), fc(static_cast<std::size_t>(n), 0);
    std::vector<bool> cut(static_cast<std::size_t>(n), false);
    cut[static_cast<std::size_t>(tree.root())] = true;
    for (int b = 0; b < n - 1; ++b)
      if (mask & (1ULL << b)) cut[static_cast<std::size_t>(edge_child[static_cast<std::size_t>(b)])] = true;
    for (const NodeId v : tree.preorder()) {
      fold_root[static_cast<std::size_t>(v)] =
          cut[static_cast<std::size_t>(v)] ? v : fold_root[static_cast<std::size_t>(tree.parent(v))];
      const NodeId r = fold_root[static_cast<std::size_t>(v)];
      fr[static_cast<std::size_t>(r)] += spont[static_cast<std::size_t>(v)];
      fc[static_cast<std::size_t>(r)] += cap[static_cast<std::size_t>(v)];
    }
    std::vector<double> util(static_cast<std::size_t>(n));
    for (const NodeId v : tree.preorder()) {
      const NodeId r = fold_root[static_cast<std::size_t>(v)];
      const double density = fr[static_cast<std::size_t>(r)] / fc[static_cast<std::size_t>(r)];
      load[static_cast<std::size_t>(v)] = cap[static_cast<std::size_t>(v)] * density;
      util[static_cast<std::size_t>(v)] = density;
    }
    if (!CheckFeasible(tree, spont, load, 1e-9).ok()) continue;
    std::sort(util.rbegin(), util.rend());
    if (best.empty() ||
        std::lexicographical_compare(util.begin(), util.end(),
                                     best_util.begin(), best_util.end())) {
      best = load;
      best_util = util;
    }
  }
  return best;
}

TEST(WeightedWebFold, UnitCapacitiesReduceToPlainWebFold) {
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    const int n = 3 + static_cast<int>(rng.NextBelow(20));
    const RoutingTree tree = MakeRandomTree(n, rng);
    std::vector<double> spont(static_cast<std::size_t>(n));
    for (auto& e : spont) e = rng.NextDouble(0, 30);
    const WebFoldResult plain = WebFold(tree, spont);
    const WebFoldResult weighted = WebFoldWeighted(
        tree, spont, std::vector<double>(static_cast<std::size_t>(n), 1.0));
    for (NodeId v = 0; v < n; ++v)
      EXPECT_NEAR(plain.load[v], weighted.load[v], 1e-12);
  }
}

TEST(WeightedWebFold, CapacityScalingLeavesLoadsInvariant) {
  // Doubling every capacity halves densities but leaves loads unchanged.
  Rng rng(5);
  const RoutingTree tree = MakeRandomTree(15, rng);
  std::vector<double> spont(15), cap(15);
  for (auto& e : spont) e = rng.NextDouble(0, 30);
  for (auto& c : cap) c = rng.NextDouble(0.5, 4);
  std::vector<double> cap2(cap);
  for (auto& c : cap2) c *= 2;
  const WebFoldResult a = WebFoldWeighted(tree, spont, cap);
  const WebFoldResult b = WebFoldWeighted(tree, spont, cap2);
  for (NodeId v = 0; v < 15; ++v)
    EXPECT_NEAR(a.load[v], b.load[v], 1e-9);
}

TEST(WeightedWebFold, BigChildAbsorbsProportionally) {
  // Chain root(c=1) <- leaf(c=3), all demand at the leaf: one fold of
  // density 10, loads (10, 30).
  const RoutingTree tree = MakeChain(2);
  const WebFoldResult r = WebFoldWeighted(tree, {0, 40}, {1, 3});
  EXPECT_NEAR(r.load[0], 10, 1e-9);
  EXPECT_NEAR(r.load[1], 30, 1e-9);
  ASSERT_EQ(r.folds.size(), 1u);
  EXPECT_NEAR(r.folds[0].per_node, 10, 1e-9);
  EXPECT_NEAR(r.folds[0].capacity_sum, 4, 1e-9);
  EXPECT_TRUE(CheckFeasible(tree, {0, 40}, r.load).ok());
}

class WeightedOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedOracle, MatchesBruteForceOnRandomInstances) {
  Rng rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBelow(9));
    const RoutingTree tree = MakeRandomTree(n, rng);
    std::vector<double> spont(static_cast<std::size_t>(n)),
        cap(static_cast<std::size_t>(n));
    for (auto& e : spont) e = rng.NextDouble(0, 20);
    for (auto& c : cap) c = rng.NextDouble(0.25, 4);
    const WebFoldResult fast = WebFoldWeighted(tree, spont, cap);
    const std::vector<double> slow = BruteForceWeighted(tree, spont, cap);
    for (NodeId v = 0; v < n; ++v)
      EXPECT_NEAR(fast.load[v], slow[v], 1e-6)
          << "n=" << n << " round=" << round << " node=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedOracle,
                         ::testing::Values(7, 8, 9, 10));

TEST(WeightedWebWave, ConvergesToWeightedTlb) {
  Rng rng(11);
  const RoutingTree tree = MakeKaryTree(2, 3);
  std::vector<double> spont(static_cast<std::size_t>(tree.size()), 0.0);
  std::vector<double> cap(static_cast<std::size_t>(tree.size()), 1.0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (tree.is_leaf(v)) spont[static_cast<std::size_t>(v)] = rng.NextDouble(10, 60);
    cap[static_cast<std::size_t>(v)] = rng.NextDouble(0.5, 3.0);
  }
  const WebFoldResult target = WebFoldWeighted(tree, spont, cap);
  WebWaveOptions opt;
  opt.capacities = cap;
  WebWaveSimulator sim(tree, spont, opt);
  const auto traj = sim.RunUntil(target.load, 1e-6, 60000);
  EXPECT_LE(traj.back(), 1e-6)
      << "weighted protocol must reach the weighted TLB";
  sim.CheckInvariants();
}

TEST(WeightedWebWave, RejectsBadCapacities) {
  const RoutingTree tree = MakeChain(3);
  WebWaveOptions opt;
  opt.capacities = {1, 2};  // wrong size
  EXPECT_THROW(WebWaveSimulator(tree, {1, 1, 1}, opt),
               std::invalid_argument);
  opt.capacities = {1, 0, 1};  // zero capacity
  EXPECT_THROW(WebWaveSimulator(tree, {1, 1, 1}, opt),
               std::invalid_argument);
}

TEST(WeightedWebWave, UniformCapacitiesBehaveExactlyAsDefault) {
  Rng rng(13);
  const RoutingTree tree = MakeRandomTree(20, rng);
  std::vector<double> spont(20);
  for (auto& e : spont) e = rng.NextDouble(0, 10);
  WebWaveOptions with_caps;
  with_caps.capacities.assign(20, 1.0);
  WebWaveSimulator a(tree, spont, with_caps);
  WebWaveSimulator b(tree, spont, WebWaveOptions{});
  for (int s = 0; s < 50; ++s) {
    a.Step();
    b.Step();
  }
  for (NodeId v = 0; v < 20; ++v)
    EXPECT_NEAR(a.served()[v], b.served()[v], 1e-12);
}

}  // namespace
}  // namespace webwave
