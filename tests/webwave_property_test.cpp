// Property tests: WebWave converges to the WebFold TLB assignment on
// randomized trees and rate patterns, under the paper's assumptions and
// their relaxations.  This is the simulation evidence of §5.1, run as a
// parameterized sweep instead of a single hand-picked instance.
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

struct SweepCase {
  int nodes;
  int height;  // -1: unconstrained random tree
  std::uint64_t seed;
  bool asynchronous;
  int gossip_period;
  int gossip_delay;
};

std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
  return os << "n=" << c.nodes << " h=" << c.height << " seed=" << c.seed
            << (c.asynchronous ? " async" : " sync") << " gp="
            << c.gossip_period << " gd=" << c.gossip_delay;
}

class ConvergenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConvergenceSweep, ConvergesToTlbWithInvariantsIntact) {
  const SweepCase c = GetParam();
  Rng rng(c.seed);
  const RoutingTree tree =
      c.height < 0 ? MakeRandomTree(c.nodes, rng)
                   : MakeRandomTreeOfHeight(c.nodes, c.height, rng);
  std::vector<double> spont(static_cast<std::size_t>(c.nodes));
  for (auto& e : spont)
    e = rng.NextBernoulli(0.3) ? 0.0 : rng.NextDouble(0, 40);

  const WebFoldResult target = WebFold(tree, spont);
  WebWaveOptions opt;
  opt.asynchronous = c.asynchronous;
  opt.gossip_period = c.gossip_period;
  opt.gossip_delay = c.gossip_delay;
  opt.seed = c.seed * 31 + 1;
  WebWaveSimulator sim(tree, spont, opt);

  const double total = TotalRate(spont);
  const double tol = std::max(1e-6, 1e-7 * total);
  const auto traj = sim.RunUntil(target.load, tol, 60000);
  EXPECT_LE(traj.back(), tol) << c << " after " << traj.size() << " steps";
  ASSERT_NO_THROW(sim.CheckInvariants(1e-5));

  // The trajectory should be (weakly) heading down: final quarter average
  // below first quarter average.
  const std::size_t q = traj.size() / 4;
  if (q > 1) {
    double head = 0, tail = 0;
    for (std::size_t i = 0; i < q; ++i) {
      head += traj[i];
      tail += traj[traj.size() - 1 - i];
    }
    EXPECT_LE(tail, head + 1e-9) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SyncSweep, ConvergenceSweep,
    ::testing::Values(SweepCase{2, -1, 1, false, 1, 0},
                      SweepCase{5, -1, 2, false, 1, 0},
                      SweepCase{10, 3, 3, false, 1, 0},
                      SweepCase{20, -1, 4, false, 1, 0},
                      SweepCase{40, 5, 5, false, 1, 0},
                      SweepCase{60, -1, 6, false, 1, 0},
                      SweepCase{100, 9, 7, false, 1, 0},
                      SweepCase{150, -1, 8, false, 1, 0}));

INSTANTIATE_TEST_SUITE_P(
    RelaxedAssumptions, ConvergenceSweep,
    ::testing::Values(SweepCase{15, -1, 11, true, 1, 0},
                      SweepCase{30, 4, 12, true, 1, 0},
                      SweepCase{15, -1, 13, false, 3, 0},
                      SweepCase{30, -1, 14, false, 1, 2},
                      SweepCase{30, 4, 15, false, 4, 3},
                      SweepCase{25, -1, 16, true, 2, 1}));

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, FixedAlphaConverges) {
  const double alpha = GetParam();
  Rng rng(42);
  const RoutingTree tree = MakeRandomTree(30, rng);
  std::vector<double> spont(30);
  for (auto& e : spont) e = rng.NextDouble(0, 10);
  const WebFoldResult target = WebFold(tree, spont);
  WebWaveOptions opt;
  opt.alpha_policy = AlphaPolicy::kFixed;
  opt.alpha = alpha;
  WebWaveSimulator sim(tree, spont, opt);
  const auto traj = sim.RunUntil(target.load, 1e-5, 100000);
  EXPECT_LE(traj.back(), 1e-5) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.4, 0.5));

TEST(ConservationProperty, TotalServedRateNeverDrifts) {
  Rng rng(55);
  for (int round = 0; round < 10; ++round) {
    const int n = 5 + static_cast<int>(rng.NextBelow(50));
    const RoutingTree tree = MakeRandomTree(n, rng);
    std::vector<double> spont(static_cast<std::size_t>(n));
    for (auto& e : spont) e = rng.NextDouble(0, 5);
    WebWaveOptions opt;
    opt.seed = rng.Next();
    opt.asynchronous = round % 2 == 1;
    WebWaveSimulator sim(tree, spont, opt);
    const double total = TotalRate(spont);
    for (int s = 0; s < 100; ++s) sim.Step();
    EXPECT_NEAR(TotalRate(sim.served()), total, 1e-6 * (1 + total));
  }
}

}  // namespace
}  // namespace webwave
