// Unit tests for networks, generators and shortest-path routing trees.
#include "topology/generators.h"
#include "topology/network.h"
#include "topology/spt.h"
#include "core/webfold.h"

#include <gtest/gtest.h>

#include <limits>
#include <queue>

namespace webwave {
namespace {

// Independent reference Dijkstra for distance validation.
std::vector<double> ReferenceDistances(const Network& net, int src) {
  std::vector<double> dist(static_cast<std::size_t>(net.size()),
                           std::numeric_limits<double>::infinity());
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[static_cast<std::size_t>(src)] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const auto& nb : net.neighbors(v)) {
      if (d + nb.weight < dist[static_cast<std::size_t>(nb.node)]) {
        dist[static_cast<std::size_t>(nb.node)] = d + nb.weight;
        pq.push({d + nb.weight, nb.node});
      }
    }
  }
  return dist;
}

TEST(Network, EdgeBookkeeping) {
  Network net(4);
  net.AddEdge(0, 1, 2.0);
  net.AddEdge(1, 2);
  EXPECT_TRUE(net.HasEdge(0, 1));
  EXPECT_TRUE(net.HasEdge(1, 0));
  EXPECT_FALSE(net.HasEdge(0, 2));
  EXPECT_EQ(net.edge_count(), 2);
  EXPECT_EQ(net.degree(1), 2);
  EXPECT_FALSE(net.IsConnected());
  net.AddEdge(2, 3);
  EXPECT_TRUE(net.IsConnected());
}

TEST(Network, RejectsBadEdges) {
  Network net(3);
  net.AddEdge(0, 1);
  EXPECT_THROW(net.AddEdge(0, 1), std::invalid_argument);  // parallel
  EXPECT_THROW(net.AddEdge(1, 1), std::invalid_argument);  // self loop
  EXPECT_THROW(net.AddEdge(0, 9), std::invalid_argument);  // out of range
  EXPECT_THROW(net.AddEdge(0, 2, -1), std::invalid_argument);
}

class GeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorTest, AllGeneratorsProduceConnectedNetworks) {
  Rng rng(GetParam());
  EXPECT_TRUE(MakeErdosRenyi(40, 0.05, rng).IsConnected());
  EXPECT_TRUE(MakeErdosRenyi(40, 0.0, rng).IsConnected())
      << "p=0 must still be patched into connectivity";
  EXPECT_TRUE(MakeWaxman(50, 0.6, 0.15, rng).IsConnected());
  EXPECT_TRUE(MakeBarabasiAlbert(60, 2, rng).IsConnected());
  EXPECT_TRUE(MakeTransitStub(4, 2, 5, rng).IsConnected());
}

TEST_P(GeneratorTest, GeneratorsAreDeterministicPerSeed) {
  Rng a(GetParam()), b(GetParam());
  const Network na = MakeWaxman(30, 0.5, 0.2, a);
  const Network nb = MakeWaxman(30, 0.5, 0.2, b);
  ASSERT_EQ(na.edge_count(), nb.edge_count());
  for (int i = 0; i < na.edge_count(); ++i) {
    EXPECT_EQ(na.edges()[i].u, nb.edges()[i].u);
    EXPECT_EQ(na.edges()[i].v, nb.edges()[i].v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest, ::testing::Values(1, 2, 3, 17));

TEST(GeneratorShapes, BarabasiAlbertHasHubs) {
  Rng rng(5);
  const Network net = MakeBarabasiAlbert(300, 2, rng);
  int max_degree = 0;
  for (int v = 0; v < net.size(); ++v)
    max_degree = std::max(max_degree, net.degree(v));
  EXPECT_GE(max_degree, 20) << "preferential attachment should grow hubs";
}

TEST(GeneratorShapes, TransitStubNodeCount) {
  Rng rng(6);
  const Network net = MakeTransitStub(3, 2, 4, rng);
  EXPECT_EQ(net.size(), 3 + 3 * 2 * 4);
}

TEST(ShortestPathTreeTest, PathsMatchReferenceDistances) {
  Rng rng(11);
  const Network net = MakeWaxman(60, 0.6, 0.2, rng);
  const int home = 7;
  const RoutingTree tree = ShortestPathTree(net, home);
  ASSERT_EQ(tree.size(), net.size());
  EXPECT_EQ(tree.root(), home);

  const std::vector<double> dist = ReferenceDistances(net, home);
  // Walking up the tree must accumulate exactly the shortest distance.
  for (NodeId v = 0; v < tree.size(); ++v) {
    double along = 0;
    NodeId u = v;
    while (!tree.is_root(u)) {
      const NodeId p = tree.parent(u);
      bool found = false;
      for (const auto& nb : net.neighbors(u)) {
        if (nb.node == p) {
          along += nb.weight;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "tree edge " << u << "->" << p
                         << " missing from network";
      u = p;
    }
    EXPECT_NEAR(along, dist[static_cast<std::size_t>(v)], 1e-9)
        << "node " << v;
  }
}

TEST(ShortestPathTreeTest, UnitWeightsGiveBfsDepths) {
  Network net(6);
  net.AddEdge(0, 1);
  net.AddEdge(0, 2);
  net.AddEdge(1, 3);
  net.AddEdge(2, 3);
  net.AddEdge(3, 4);
  net.AddEdge(4, 5);
  const RoutingTree tree = ShortestPathTree(net, 0);
  EXPECT_EQ(tree.depth(3), 2);
  EXPECT_EQ(tree.depth(5), 4);
  // Deterministic tie-break: node 3 reachable through 1 or 2; parent must
  // be the smaller id.
  EXPECT_EQ(tree.parent(3), 1);
}

TEST(RoutingForestTest, OneTreePerHomeAndOverlapCounts) {
  Rng rng(13);
  const Network net = MakeBarabasiAlbert(50, 2, rng);
  const RoutingForest forest = MakeRoutingForest(net, {0, 10, 20});
  ASSERT_EQ(forest.trees.size(), 3u);
  for (std::size_t i = 0; i < forest.trees.size(); ++i)
    EXPECT_EQ(forest.trees[i].root(), forest.homes[i]);
  const std::vector<int> mult = InteriorMultiplicity(forest);
  int max_mult = 0;
  for (const int m : mult) {
    EXPECT_GE(m, 0);
    EXPECT_LE(m, 3);
    max_mult = std::max(max_mult, m);
  }
  EXPECT_GE(max_mult, 1) << "some node must be interior to some tree";
}

TEST(RoutingForestTest, TreesFeedWebFoldEndToEnd) {
  // Integration: topology -> routing tree -> TLB computation.
  Rng rng(17);
  const Network net = MakeTransitStub(3, 2, 6, rng);
  const RoutingTree tree = ShortestPathTree(net, 0);
  std::vector<double> spont(static_cast<std::size_t>(tree.size()), 0.0);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v)) spont[static_cast<std::size_t>(v)] = 10.0;
  const WebFoldResult r = WebFold(tree, spont);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (!tree.is_root(v)) {
      EXPECT_GE(r.load[tree.parent(v)] + 1e-9, r.load[v]);
    }
  }
}

}  // namespace
}  // namespace webwave
