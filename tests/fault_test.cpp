// The fault plane: deterministic crash/link schedules, quota re-homing
// around crashed nodes, event-proportional fault refresh, failover
// serving with bounded retries, and the bit-identity of every fault-path
// metric across thread counts and lane_block widths.
#include "fault/fault_projector.h"
#include "fault/fault_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/webwave_batch.h"
#include "doc/catalog.h"
#include "proto/packet_sim.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "sim/churn.h"
#include "store/cache_store.h"
#include "store/capacity_projector.h"
#include "store/document_sizes.h"
#include "tree/builders.h"
#include "util/rng.h"

namespace webwave {
namespace {

// Two snapshots must agree cell for cell, byte for byte (total_rate is
// FP-order sensitive between incremental and full paths, so it gets a
// relative tolerance instead).
void ExpectSameCells(const QuotaSnapshot& got, const QuotaSnapshot& want,
                     const char* where) {
  ASSERT_EQ(got.node_count(), want.node_count()) << where;
  ASSERT_EQ(got.doc_count(), want.doc_count()) << where;
  ASSERT_EQ(got.cell_count(), want.cell_count()) << where;
  for (NodeId v = 0; v < want.node_count(); ++v) {
    ASSERT_EQ(got.row_begin(v), want.row_begin(v)) << where << " node " << v;
    ASSERT_EQ(got.row_end(v), want.row_end(v)) << where << " node " << v;
  }
  for (std::int64_t c = 0; c < want.cell_count(); ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    ASSERT_EQ(got.cell_docs()[i], want.cell_docs()[i]) << where << " cell "
                                                       << c;
    ASSERT_EQ(got.cell_rates()[i], want.cell_rates()[i])
        << where << " cell " << c;
    ASSERT_EQ(got.cell_fractions()[i], want.cell_fractions()[i])
        << where << " cell " << c;
  }
  EXPECT_NEAR(got.total_rate(), want.total_rate(),
              1e-9 * (1 + std::abs(want.total_rate())));
}

// FaultSchedule ----------------------------------------------------------

class FaultPatternSweep : public ::testing::TestWithParam<FaultPattern> {};

TEST_P(FaultPatternSweep, EventsAreTheDiffBetweenEpochSnapshots) {
  Rng rng(71);
  const RoutingTree tree = MakeRandomTree(300, rng);
  FaultScheduleOptions opt;
  opt.pattern = GetParam();
  opt.crash_fraction = 0.2;
  opt.outage_epochs = 3;
  opt.start_epoch = 2;
  opt.seed = 9;
  FaultSchedule sched(tree, opt);
  EXPECT_TRUE(sched.down().empty()) << "epoch 0 precedes start_epoch";

  std::set<NodeId> live_view(sched.down().begin(), sched.down().end());
  bool saw_crash = false, saw_recover = false;
  for (int epoch = 1; epoch <= 24; ++epoch) {
    const std::vector<FaultEvent> events = sched.NextEvents();
    NodeId last = kNoNode;
    for (const FaultEvent& e : events) {
      EXPECT_GT(e.node, last) << "events must ascend by node";
      last = e.node;
      EXPECT_FALSE(tree.is_root(e.node)) << "the home never transitions";
      if (e.kind == FaultKind::kCrash) {
        EXPECT_TRUE(live_view.insert(e.node).second)
            << "crash of an already-down node " << e.node;
        saw_crash = true;
      } else {
        EXPECT_EQ(live_view.erase(e.node), 1u)
            << "recovery of a live node " << e.node;
        saw_recover = true;
      }
    }
    const std::vector<NodeId> from_scratch = sched.DownSet(epoch);
    const std::vector<NodeId> maintained(live_view.begin(), live_view.end());
    EXPECT_EQ(maintained, from_scratch) << "epoch " << epoch;
    EXPECT_EQ(sched.down(), from_scratch) << "epoch " << epoch;
    for (const NodeId v : from_scratch)
      EXPECT_FALSE(tree.is_root(v)) << "epoch " << epoch;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_recover);

  // Purity: a second schedule answers identically at any queried epoch
  // without having stepped there.
  FaultSchedule replay(tree, opt);
  for (const int epoch : {0, 3, 7, 13, 24})
    EXPECT_EQ(replay.DownSet(epoch), sched.DownSet(epoch))
        << "epoch " << epoch;
}

INSTANTIATE_TEST_SUITE_P(Patterns, FaultPatternSweep,
                         ::testing::Values(FaultPattern::kSingleNodes,
                                           FaultPattern::kLeafCohort,
                                           FaultPattern::kSubtreeOutage));

TEST(FaultSchedule, LeafCohortOnlyCrashesLeaves) {
  Rng rng(73);
  const RoutingTree tree = MakeRandomTree(250, rng);
  FaultScheduleOptions opt;
  opt.pattern = FaultPattern::kLeafCohort;
  opt.crash_fraction = 0.3;
  opt.seed = 11;
  FaultSchedule sched(tree, opt);
  for (int epoch = 1; epoch <= 10; ++epoch) {
    sched.NextEvents();
    EXPECT_FALSE(sched.down().empty()) << "epoch " << epoch;
    for (const NodeId v : sched.down())
      EXPECT_TRUE(tree.is_leaf(v)) << "node " << v;
  }
}

TEST(FaultSchedule, SubtreeOutageDownsExactlyOneBoundedSubtree) {
  Rng rng(79);
  const RoutingTree tree = MakeRandomTree(400, rng);
  FaultScheduleOptions opt;
  opt.pattern = FaultPattern::kSubtreeOutage;
  opt.max_subtree_fraction = 0.06;
  opt.outage_epochs = 2;
  opt.seed = 13;
  FaultSchedule sched(tree, opt);
  const int cap = static_cast<int>(opt.max_subtree_fraction * tree.size());
  for (int epoch = 1; epoch <= 12; ++epoch) {
    sched.NextEvents();
    const std::vector<NodeId>& down = sched.down();
    ASSERT_FALSE(down.empty()) << "epoch " << epoch;
    // Exactly one down node has a live parent: the outage root.
    std::vector<NodeId> roots;
    for (const NodeId v : down)
      if (!std::binary_search(down.begin(), down.end(), tree.parent(v)))
        roots.push_back(v);
    ASSERT_EQ(roots.size(), 1u) << "epoch " << epoch;
    std::vector<NodeId> expected = tree.subtree(roots[0]);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(down, expected) << "epoch " << epoch;
    EXPECT_LE(tree.subtree_size(roots[0]), std::max(1, cap));
  }
}

TEST(FaultSchedule, LinkBurstsArePureWindowDraws) {
  Rng rng(83);
  const RoutingTree tree = MakeRandomTree(60, rng);
  FaultScheduleOptions opt;
  opt.burst_probability = 0.5;
  opt.burst_gossip_loss = 0.4;
  opt.burst_extra_latency_ms = 3.0;
  opt.outage_epochs = 2;
  opt.start_epoch = 3;
  opt.seed = 17;
  const FaultSchedule a(tree, opt);
  const FaultSchedule b(tree, opt);
  bool saw_burst = false, saw_quiet = false;
  for (int epoch = 0; epoch < 40; ++epoch) {
    const LinkFault fa = a.LinkAt(epoch);
    const LinkFault fb = b.LinkAt(epoch);
    EXPECT_EQ(fa.gossip_loss, fb.gossip_loss) << "epoch " << epoch;
    EXPECT_EQ(fa.extra_latency_ms, fb.extra_latency_ms) << "epoch " << epoch;
    if (epoch < opt.start_epoch) {
      EXPECT_EQ(fa.gossip_loss, 0.0) << "faults before start_epoch";
      continue;
    }
    // Constant within a window.
    const int window_start =
        opt.start_epoch +
        ((epoch - opt.start_epoch) / opt.outage_epochs) * opt.outage_epochs;
    EXPECT_EQ(fa.gossip_loss, a.LinkAt(window_start).gossip_loss);
    if (fa.gossip_loss > 0) {
      EXPECT_EQ(fa.gossip_loss, opt.burst_gossip_loss);
      EXPECT_EQ(fa.extra_latency_ms, opt.burst_extra_latency_ms);
      saw_burst = true;
    } else {
      saw_quiet = true;
    }
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_quiet);
}

// FaultProjector spill semantics -----------------------------------------

QuotaSnapshot HandSnapshot() {
  // Tree: 0 is the home; 1 and 4 its children; 2 and 3 under 1.
  //   doc 0 copies at 0 (1.0), 1 (2.0, frac 0.5), 2 (4.0), 4 (5.0, 0.8)
  //   doc 1 copy at 3 only (3.0) — no home cell.
  QuotaSnapshot::Builder b(5, 2);
  b.Add(0, 0, 1.0);
  b.Add(1, 0, 2.0, 0.5);
  b.Add(2, 0, 4.0);
  b.Add(3, 1, 3.0);
  b.Add(4, 0, 5.0, 0.8);
  return std::move(b).Build();
}

RoutingTree HandTree() {
  return RoutingTree::FromParents({kNoNode, 0, 1, 1, 0});
}

TEST(FaultProjector, CrashSpillsToTheNearestLiveAncestorCopy) {
  const RoutingTree tree = HandTree();
  const QuotaSnapshot base = HandSnapshot();
  FaultProjector fp(tree);

  const NodeId down2[] = {2};
  fp.SetDown(Span<const NodeId>(down2, 1));
  fp.Project(base);
  const QuotaSnapshot& clamped = fp.clamped();
  // Node 2's 4.0 re-homes onto node 1: rate 2+4, fraction re-derived
  // against the enlarged arriving flow (A = 2/0.5 = 4): (2+4)/(4+4).
  EXPECT_EQ(clamped.CellOf(2, 0), -1);
  EXPECT_DOUBLE_EQ(clamped.RateAt(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(clamped.FractionAt(1, 0), 0.75);
  // Untouched cells pass through bit-identical.
  EXPECT_EQ(clamped.RateAt(0, 0), base.RateAt(0, 0));
  EXPECT_EQ(clamped.RateAt(4, 0), base.RateAt(4, 0));
  EXPECT_EQ(clamped.FractionAt(4, 0), base.FractionAt(4, 0));
  EXPECT_EQ(clamped.RateAt(3, 1), base.RateAt(3, 1));
  EXPECT_TRUE(fp.ConservesTotalRate(base));
  EXPECT_EQ(fp.evicted_cells(), 1);
  EXPECT_DOUBLE_EQ(fp.spilled_rate(), 4.0);

  // A dead chain: 1 and 2 both down, everything re-homes at the root.
  const NodeId chain[] = {1, 2};
  fp.SetDown(Span<const NodeId>(chain, 2));
  fp.Project(base);
  EXPECT_DOUBLE_EQ(fp.clamped().RateAt(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(fp.clamped().FractionAt(0, 0), 1.0);
  EXPECT_EQ(fp.clamped().CellOf(1, 0), -1);
  EXPECT_TRUE(fp.ConservesTotalRate(base));
}

TEST(FaultProjector, SpillSynthesizesAHomeCellAndRecoveryRestoresIt) {
  const RoutingTree tree = HandTree();
  const QuotaSnapshot base = HandSnapshot();
  FaultProjector fp(tree);

  // Node 3 held the only copy of doc 1; its crash climbs past node 1
  // (live, but no copy of doc 1) and materializes a home cell.
  const NodeId down3[] = {3};
  fp.SetDown(Span<const NodeId>(down3, 1));
  fp.Project(base);
  EXPECT_EQ(fp.clamped().CellOf(3, 1), -1);
  EXPECT_EQ(fp.clamped().CellOf(1, 1), -1) << "no copy, no spill target";
  EXPECT_DOUBLE_EQ(fp.clamped().RateAt(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(fp.clamped().FractionAt(0, 1), 1.0);
  EXPECT_TRUE(fp.ConservesTotalRate(base));

  // Recovery: an empty down set projects the base straight through.
  fp.SetDown(Span<const NodeId>());
  fp.Project(base);
  ExpectSameCells(fp.clamped(), base, "all-live projection");
  EXPECT_EQ(fp.evicted_cells(), 0);

  // The home itself may never be declared down.
  const NodeId root[] = {0};
  EXPECT_THROW(fp.SetDown(Span<const NodeId>(root, 1)),
               std::invalid_argument);
}

// Event-proportional refresh ---------------------------------------------

TEST(FaultProjector, RefreshMatchesFullProjectionAcrossFaultAndChurnEpochs) {
  Rng rng(89);
  const RoutingTree tree = MakeRandomTree(400, rng);
  const int docs = 10;
  ChurnScheduleOptions copt;
  copt.pattern = ChurnPattern::kRotatingHotSpot;
  copt.doc_count = docs;
  copt.hot_fraction = 0.15;
  copt.rotation_epochs = 5;
  ChurnSchedule churn(tree, copt);

  BatchWebWaveSimulator sim(tree, churn.Lanes(), {});
  for (int s = 0; s < 30; ++s) sim.Step();
  const double min_rate = 1e-3;
  QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, min_rate);
  sim.ClearDirtyLanes();

  FaultScheduleOptions fopt;
  fopt.pattern = FaultPattern::kLeafCohort;
  fopt.crash_fraction = 0.25;
  fopt.outage_epochs = 2;
  fopt.start_epoch = 1;
  fopt.seed = 5;
  FaultSchedule faults(tree, fopt);

  FaultProjector incr(tree);
  incr.Project(base);

  NodeId gentle_leaf = 0;
  while (!tree.is_leaf(gentle_leaf)) ++gentle_leaf;
  bool saw_in_place = false, saw_rebuild = false, saw_transition = false;
  for (int epoch = 0; epoch < 10; ++epoch) {
    if (epoch < 7) {
      // Churn epochs: demand moves while nodes crash and recover.
      sim.ApplyDemandEvents(churn.NextEvents());
    } else {
      // Gentle epochs: one leaf's rate nudges so only cell values move —
      // combined with an event-free fault window this is the in-place
      // path.
      sim.ApplyDemandEvents({{0, gentle_leaf, 2.0 + 0.01 * (epoch - 6)}});
    }
    for (int s = 0; s < 8; ++s) sim.Step();
    const std::vector<int> dirty = sim.DirtyLanes();
    base.RefreshFromBatch(sim);
    sim.ClearDirtyLanes();

    const std::vector<FaultEvent> events = faults.NextEvents();
    saw_transition = saw_transition || !events.empty();
    const bool in_place =
        incr.Refresh(base, Span<const FaultEvent>(events.data(), events.size()),
                     Span<const int>(dirty.data(), dirty.size()));
    saw_in_place = saw_in_place || in_place;
    saw_rebuild = saw_rebuild || !in_place;
    EXPECT_EQ(incr.down(), faults.down()) << "epoch " << epoch;

    FaultProjector full(tree);
    full.SetDown(Span<const NodeId>(faults.down().data(),
                                    faults.down().size()));
    full.Project(base);
    ExpectSameCells(incr.clamped(), full.clamped(), "fault epoch refresh");
    // Total rate conserved through every crash/recover epoch.
    EXPECT_TRUE(incr.ConservesTotalRate(base)) << "epoch " << epoch;
    EXPECT_EQ(incr.evicted_cells(), full.evicted_cells()) << "epoch " << epoch;
  }
  EXPECT_TRUE(saw_transition) << "no epoch carried a crash/recover event";
  EXPECT_TRUE(saw_rebuild) << "no epoch exercised the structural rebuild";
  EXPECT_TRUE(saw_in_place) << "no epoch exercised the in-place rewrite";
}

TEST(FaultProjector, LayersOverCapacityClampingAndStillConserves) {
  Rng rng(97);
  const RoutingTree tree = MakeRandomTree(300, rng);
  const int docs = 8;
  std::vector<DemandComponent> mix = {ZipfLeafComponent(tree, docs, 2.0, 1.0)};
  RequestGenerator gen(tree, docs, mix, 19);
  BatchWebWaveSimulator sim(tree, gen.ExpectedLanes(), {});
  for (int s = 0; s < 25; ++s) sim.Step();
  const QuotaSnapshot engine = QuotaSnapshot::FromBatch(sim, 1e-9);

  CapacityProjector capacity(
      tree, CacheStore::WorkingSetStore(
                tree, DocumentSizes::LogNormal(docs, 4096, 1.0, 31), 0.3));
  capacity.Project(engine);

  FaultScheduleOptions fopt;
  fopt.pattern = FaultPattern::kSingleNodes;
  fopt.crash_fraction = 0.15;
  fopt.seed = 23;
  FaultSchedule faults(tree, fopt);
  faults.NextEvents();

  FaultProjector fp(tree);
  fp.SetDown(Span<const NodeId>(faults.down().data(), faults.down().size()));
  fp.Project(capacity.clamped());
  // Rate flows base -> capacity clamp -> fault clamp without loss.
  EXPECT_TRUE(capacity.ConservesTotalRate(engine));
  EXPECT_TRUE(fp.ConservesTotalRate(capacity.clamped()));
  EXPECT_NEAR(fp.clamped().total_rate(), engine.total_rate(),
              1e-6 * (1 + engine.total_rate()));
  // No clamped cell sits at a down node.
  for (const NodeId v : faults.down())
    EXPECT_EQ(fp.clamped().row_begin(v), fp.clamped().row_end(v));
}

// Failover serving --------------------------------------------------------

TEST(ServingPlane, FailoverClimbsPastDownNodesWithinTheRetryBudget) {
  // Chain 0 <- 1 <- 2 <- 3 with the only copy at the home.
  const RoutingTree tree = RoutingTree::FromParents({kNoNode, 0, 1, 2});
  QuotaSnapshot::Builder b(4, 1);
  b.Add(0, 0, 10.0);
  QuotaSnapshot snap = std::move(b).Build();

  ServingOptions opt;
  opt.threads = 1;
  opt.block_size = 4;
  opt.offered_rate = 10.0;
  opt.max_failover_attempts = 2;
  ServingPlane plane(tree, snap, opt);
  const NodeId down[] = {1, 2};
  plane.SetDownNodes(Span<const NodeId>(down, 2));

  std::vector<Request> reqs(4, Request{3, 0});
  plane.Serve(Span<Request>(reqs.data(), reqs.size()));
  const ServingMetrics& m = plane.metrics();
  EXPECT_EQ(m.requests, 4u);
  EXPECT_EQ(m.home_served, 4u);
  EXPECT_EQ(m.dropped_requests, 0u);
  EXPECT_EQ(m.failovers, 4u);
  EXPECT_EQ(m.failed_attempts, 8u) << "two down nodes per request";
  EXPECT_EQ(m.hop_sum, 12u) << "three hops per request";

  // With a retry budget of one, the second dead node exhausts it.
  opt.max_failover_attempts = 1;
  ServingPlane strict(tree, snap, opt);
  strict.SetDownNodes(Span<const NodeId>(down, 2));
  strict.Serve(Span<Request>(reqs.data(), reqs.size()));
  EXPECT_EQ(strict.metrics().requests, 4u);
  EXPECT_EQ(strict.metrics().dropped_requests, 4u);
  EXPECT_EQ(strict.metrics().home_served, 0u);
  EXPECT_EQ(strict.metrics().hop_sum, 0u) << "dropped requests count no hops";
  EXPECT_EQ(strict.metrics().failed_attempts, 8u);
  EXPECT_DOUBLE_EQ(strict.metrics().DropRatio(), 1.0);

  // A down origin fails over even when it holds the copy itself.
  QuotaSnapshot::Builder b2(4, 1);
  b2.Add(0, 0, 1.0);
  b2.Add(1, 0, 10.0);
  opt.max_failover_attempts = 8;
  ServingPlane origin_down(tree, std::move(b2).Build(), opt);
  const NodeId down1[] = {1};
  origin_down.SetDownNodes(Span<const NodeId>(down1, 1));
  std::vector<Request> at1(2, Request{1, 0});
  origin_down.Serve(Span<Request>(at1.data(), at1.size()));
  EXPECT_EQ(origin_down.metrics().home_served, 2u);
  EXPECT_EQ(origin_down.metrics().failovers, 2u);

  // The home may never be marked down.
  const NodeId root[] = {0};
  EXPECT_THROW(plane.SetDownNodes(Span<const NodeId>(root, 1)),
               std::invalid_argument);
}

TEST(ServingPlane, FailoverMetricsBitIdenticalAcrossThreadsAndLaneBlocks) {
  Rng rng(41);
  const RoutingTree tree = MakeRandomTree(800, rng);
  const int docs = 9;  // ragged against lane_block 4 and 8
  ChurnScheduleOptions copt;
  copt.pattern = ChurnPattern::kRotatingHotSpot;
  copt.doc_count = docs;
  copt.hot_fraction = 0.2;

  FaultScheduleOptions fopt;
  fopt.pattern = FaultPattern::kSingleNodes;
  fopt.crash_fraction = 0.3;
  fopt.outage_epochs = 2;
  fopt.seed = 43;

  std::vector<Request> stream;
  {
    RequestGenerator gen(tree, docs,
                         {ZipfLeafComponent(tree, docs, 2.0, 1.0)}, 77);
    gen.NextBatch(120000, &stream);
  }

  std::vector<QuotaSnapshot> clamps;
  std::vector<ServingMetrics> metrics;
  for (const int threads : {1, 2, 8}) {
    for (const int block : {1, 4, 8}) {
      ChurnSchedule schedule(tree, copt);
      WebWaveOptions wopt;
      wopt.threads = threads;
      wopt.lane_block = block;
      BatchWebWaveSimulator sim(tree, schedule.Lanes(), wopt);
      for (int s = 0; s < 20; ++s) sim.Step();
      sim.ApplyDemandEvents(schedule.NextEvents());
      for (int s = 0; s < 10; ++s) sim.Step();

      FaultSchedule faults(tree, fopt);
      for (int e = 0; e < 3; ++e) faults.NextEvents();

      const QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, 1e-9);
      FaultProjector fp(tree);
      fp.SetDown(
          Span<const NodeId>(faults.down().data(), faults.down().size()));
      fp.Project(base);
      clamps.push_back(fp.clamped());

      ServingOptions sopt;
      sopt.threads = threads;
      sopt.offered_rate = 1000.0;
      sopt.max_failover_attempts = 1;  // dead chains exhaust it: drops
      ServingPlane plane(tree, fp.clamped(), sopt);
      plane.SetDownNodes(
          Span<const NodeId>(faults.down().data(), faults.down().size()));
      plane.Serve(stream);
      metrics.push_back(plane.metrics());
    }
  }
  for (std::size_t i = 1; i < clamps.size(); ++i) {
    ExpectSameCells(clamps[i], clamps[0], "fault thread/lane_block sweep");
    EXPECT_TRUE(metrics[i] == metrics[0]) << "config " << i;
  }
  // The degraded run must actually exercise the failover machinery.
  EXPECT_GT(metrics[0].failovers, 0u);
  EXPECT_GT(metrics[0].failed_attempts, 0u);
  EXPECT_GT(metrics[0].dropped_requests, 0u);
  EXPECT_GT(metrics[0].backoff_slots, 0u);
  EXPECT_GT(metrics[0].requests, 0u);
}

// Gossip bursts in the packet simulator -----------------------------------

TEST(PacketSimFaults, FullRunBurstIsIdenticalToTheStaticLossKnob) {
  Rng rng(37);
  const RoutingTree tree = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(tree, 6, 40, 1.0, rng);
  PacketSimOptions stat;
  stat.duration = 15 * kMicrosPerSecond;
  stat.warmup = 3 * kMicrosPerSecond;
  stat.seed = 7;
  stat.gossip_loss = 0.3;

  PacketSimOptions burst = stat;
  burst.gossip_loss = 0.0;
  burst.gossip_bursts = {{0, stat.duration + kMicrosPerSecond, 0.3, 0}};

  const PacketSimReport a = PacketSim(tree, demand, stat).Run();
  const PacketSimReport b = PacketSim(tree, demand, burst).Run();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.doc_transfers, b.doc_transfers);
  EXPECT_EQ(a.link_traversals, b.link_traversals);
  EXPECT_EQ(a.measured_loads, b.measured_loads);
  EXPECT_DOUBLE_EQ(a.mean_response_ms, b.mean_response_ms);

  // A genuinely different burst (mid-run, heavier, delayed) diverges.
  PacketSimOptions heavy = stat;
  heavy.gossip_bursts = {{5 * kMicrosPerSecond, 10 * kMicrosPerSecond, 0.9,
                          20 * kMicrosPerMilli}};
  const PacketSimReport c = PacketSim(tree, demand, heavy).Run();
  EXPECT_NE(a.measured_loads, c.measured_loads);
}

}  // namespace
}  // namespace webwave
