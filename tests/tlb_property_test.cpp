// Property tests cross-validating three independent TLB solvers.
//
// WebFold (the paper's algorithm), SolveTlbByMaxMeanRegions (water-filling
// by Dinkelbach/parametric tree DP) and SolveTlbBruteForce (exhaustive
// enumeration of fold partitions) are algorithmically unrelated; their
// agreement over randomized instances is the strongest evidence we have
// that each is correct — and that WebFold is TLB-optimal (Theorem 1).
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

std::vector<double> RandomRates(int n, Rng& rng, bool integral,
                                double zero_fraction) {
  std::vector<double> rates(static_cast<std::size_t>(n));
  for (auto& r : rates) {
    if (rng.NextBernoulli(zero_fraction)) {
      r = 0;
    } else if (integral) {
      r = static_cast<double>(rng.NextInt(0, 60));
    } else {
      r = rng.NextDouble(0, 50);
    }
  }
  return rates;
}

struct TlbCase {
  int nodes;
  std::uint64_t seed;
};

class SmallTreeOracle : public ::testing::TestWithParam<TlbCase> {};

TEST_P(SmallTreeOracle, WebFoldMatchesBruteForceAndRegions) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 30; ++round) {
    const RoutingTree tree = MakeRandomTree(n, rng);
    const std::vector<double> spont =
        RandomRates(n, rng, /*integral=*/round % 2 == 0,
                    /*zero_fraction=*/round % 3 == 0 ? 0.4 : 0.0);

    const WebFoldResult webfold = WebFold(tree, spont);
    const std::vector<double> brute = SolveTlbBruteForce(tree, spont);
    const std::vector<double> regions = SolveTlbByMaxMeanRegions(tree, spont);

    for (NodeId v = 0; v < n; ++v) {
      EXPECT_NEAR(webfold.load[v], brute[v], 1e-6)
          << "webfold vs brute, n=" << n << " seed=" << seed
          << " round=" << round << " node=" << v;
      EXPECT_NEAR(webfold.load[v], regions[v], 1e-6)
          << "webfold vs regions, n=" << n << " seed=" << seed
          << " round=" << round << " node=" << v;
    }
    EXPECT_TRUE(CheckFeasible(tree, spont, webfold.load, 1e-7).ok());
    EXPECT_TRUE(SatisfiesTlb(tree, spont, webfold.load));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, SmallTreeOracle,
    ::testing::Values(TlbCase{2, 1}, TlbCase{3, 2}, TlbCase{4, 3},
                      TlbCase{5, 4}, TlbCase{6, 5}, TlbCase{7, 6},
                      TlbCase{8, 7}, TlbCase{9, 8}, TlbCase{10, 9},
                      TlbCase{12, 10}));

class LargerTreeAgreement : public ::testing::TestWithParam<TlbCase> {};

TEST_P(LargerTreeAgreement, WebFoldMatchesMaxMeanRegions) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 8; ++round) {
    const RoutingTree tree =
        round % 2 == 0 ? MakeRandomTree(n, rng) : MakeRandomBinaryTree(n, rng);
    const std::vector<double> spont =
        RandomRates(n, rng, /*integral=*/false, /*zero_fraction=*/0.2);
    const WebFoldResult webfold = WebFold(tree, spont);
    const std::vector<double> regions = SolveTlbByMaxMeanRegions(tree, spont);
    double max_diff = 0;
    for (NodeId v = 0; v < n; ++v)
      max_diff = std::max(max_diff, std::abs(webfold.load[v] - regions[v]));
    EXPECT_LT(max_diff, 1e-6) << "n=" << n << " seed=" << seed;
    EXPECT_TRUE(SatisfiesTlb(tree, spont, webfold.load));
  }
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, LargerTreeAgreement,
                         ::testing::Values(TlbCase{30, 11}, TlbCase{80, 12},
                                           TlbCase{200, 13}, TlbCase{500, 14}));

TEST(TlbProperties, WebFoldIsLexicographicallyMinimalAmongFeasible) {
  // Directly exercise Definition 1: no feasible fold-partition assignment
  // beats WebFold's in the sorted-descending lexicographic order.  (The
  // brute-force solver enumerates them; equality means WebFold wins.)
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBelow(9));
    const RoutingTree tree = MakeRandomTree(n, rng);
    const std::vector<double> spont = RandomRates(n, rng, true, 0.3);
    const WebFoldResult webfold = WebFold(tree, spont);
    const std::vector<double> brute = SolveTlbBruteForce(tree, spont);
    EXPECT_EQ(LexCompareMinimax(webfold.load, brute, 1e-7), 0);
  }
}

TEST(TlbProperties, GleFeasibleImpliesSingleFold) {
  Rng rng(7);
  int gle_cases = 0;
  for (int round = 0; round < 200; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBelow(10));
    const RoutingTree tree = MakeRandomTree(n, rng);
    std::vector<double> spont = RandomRates(n, rng, false, 0.0);
    if (!GleIsFeasible(tree, spont)) continue;
    ++gle_cases;
    const WebFoldResult r = WebFold(tree, spont);
    EXPECT_TRUE(IsUniform(r.load, 1e-6))
        << "when GLE is feasible, TLB must be GLE";
  }
  EXPECT_GT(gle_cases, 5) << "the sweep should hit some GLE-feasible cases";
}

TEST(TlbProperties, MaxLoadNeverBelowGlobalAverage) {
  // The max of any feasible assignment is >= average; TLB attains average
  // exactly when GLE is feasible.
  Rng rng(21);
  for (int round = 0; round < 50; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBelow(40));
    const RoutingTree tree = MakeRandomTree(n, rng);
    const std::vector<double> spont = RandomRates(n, rng, false, 0.1);
    const WebFoldResult r = WebFold(tree, spont);
    const double avg = TotalRate(spont) / n;
    double max_load = 0;
    for (const double l : r.load) max_load = std::max(max_load, l);
    EXPECT_GE(max_load + 1e-9, avg);
  }
}

TEST(TlbProperties, RootFoldCarriesTheMaximumLoad) {
  // By Lemma 1 the root's fold has the maximum per-node load.
  Rng rng(23);
  for (int round = 0; round < 50; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBelow(40));
    const RoutingTree tree = MakeRandomTree(n, rng);
    const std::vector<double> spont = RandomRates(n, rng, false, 0.2);
    const WebFoldResult r = WebFold(tree, spont);
    double max_load = 0;
    for (const double l : r.load) max_load = std::max(max_load, l);
    EXPECT_NEAR(r.load[tree.root()], max_load, 1e-9);
  }
}

TEST(TlbProperties, ScalingRatesScalesAssignmentLinearly) {
  Rng rng(25);
  const RoutingTree tree = MakeRandomTree(40, rng);
  const std::vector<double> spont = RandomRates(40, rng, false, 0.1);
  std::vector<double> doubled(spont);
  for (auto& e : doubled) e *= 2;
  const WebFoldResult a = WebFold(tree, spont);
  const WebFoldResult b = WebFold(tree, doubled);
  for (NodeId v = 0; v < 40; ++v)
    EXPECT_NEAR(b.load[v], 2 * a.load[v], 1e-9);
}

TEST(TlbProperties, SatisfiesTlbRejectsNonOptimalFeasibleAssignments) {
  // The "serve everything at the home server" assignment is feasible but
  // (generically) not balanced; the structural check must reject it.
  Rng rng(27);
  int rejected = 0;
  for (int round = 0; round < 20; ++round) {
    const int n = 3 + static_cast<int>(rng.NextBelow(10));
    const RoutingTree tree = MakeRandomTree(n, rng);
    std::vector<double> spont = RandomRates(n, rng, false, 0.0);
    std::vector<double> all_at_root(static_cast<std::size_t>(n), 0.0);
    all_at_root[tree.root()] = TotalRate(spont);
    ASSERT_TRUE(CheckFeasible(tree, spont, all_at_root).ok());
    if (!SatisfiesTlb(tree, spont, all_at_root)) ++rejected;
  }
  EXPECT_GE(rejected, 18) << "root-serves-all is almost never TLB";
}

}  // namespace
}  // namespace webwave
