// Unit tests for the §2 diffusion method: matrix construction, spectral γ
// against closed-form eigenvalues, and Cybenko's convergence bound.
#include "core/diffusion.h"
#include "stats/fit.h"
#include "tree/builders.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Graphs, RingShape) {
  const UndirectedGraph g = MakeRingGraph(6);
  EXPECT_EQ(g.size(), 6);
  EXPECT_EQ(g.edge_count(), 6);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graphs, HypercubeShape) {
  const UndirectedGraph g = MakeHypercubeGraph(4);
  EXPECT_EQ(g.size(), 16);
  EXPECT_EQ(g.edge_count(), 32);  // n * d / 2
  for (int v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graphs, KAryNCubeMatchesKnownShapes) {
  // 2-ary n-cube is the hypercube.
  const UndirectedGraph h = MakeKAryNCubeGraph(2, 3);
  EXPECT_EQ(h.size(), 8);
  EXPECT_EQ(h.edge_count(), 12);
  for (int v = 0; v < 8; ++v) EXPECT_EQ(h.degree(v), 3);
  // k-ary 1-cube is the ring.
  const UndirectedGraph r = MakeKAryNCubeGraph(5, 1);
  EXPECT_EQ(r.size(), 5);
  EXPECT_EQ(r.edge_count(), 5);
  // 4-ary 2-cube: 16 nodes, degree 4 (two wrap dimensions).
  const UndirectedGraph t = MakeKAryNCubeGraph(4, 2);
  EXPECT_EQ(t.size(), 16);
  for (int v = 0; v < 16; ++v) EXPECT_EQ(t.degree(v), 4) << "node " << v;
  EXPECT_TRUE(t.IsConnected());
}

TEST(Graphs, TorusMatchesKAryNCube) {
  const UndirectedGraph a = MakeTorusGraph(4, 4);
  const UndirectedGraph b = MakeKAryNCubeGraph(4, 2);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.edge_count(), b.edge_count());
}

TEST(DiffusionMatrixTest, RowsSumToOneAndSymmetric) {
  const UndirectedGraph g = MakeRingGraph(8);
  const DiffusionMatrix d = DiffusionMatrix::Uniform(g, 0.3);
  for (int i = 0; i < 8; ++i) {
    double row = 0;
    for (int j = 0; j < 8; ++j) {
      row += d.at(i, j);
      EXPECT_DOUBLE_EQ(d.at(i, j), d.at(j, i));
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(DiffusionMatrixTest, RejectsUnstableAlpha) {
  const UndirectedGraph g = MakeRingGraph(5);
  EXPECT_THROW(DiffusionMatrix::Uniform(g, 0.6), std::invalid_argument);
  EXPECT_NO_THROW(DiffusionMatrix::Uniform(g, 0.49));
}

TEST(SpectralGamma, MatchesClosedFormOnRing) {
  // Ring eigenvalues: 1 − 2α(1 − cos(2πk/n)).
  const int n = 12;
  const double alpha = 0.3;
  const UndirectedGraph g = MakeRingGraph(n);
  const DiffusionMatrix d = DiffusionMatrix::Uniform(g, alpha);
  double expected = 0;
  for (int k = 1; k < n; ++k) {
    const double lambda =
        1.0 - 2.0 * alpha * (1.0 - std::cos(2.0 * kPi * k / n));
    expected = std::max(expected, std::abs(lambda));
  }
  EXPECT_NEAR(d.SpectralGamma(), expected, 1e-6);
}

TEST(SpectralGamma, MatchesClosedFormOnHypercube) {
  // Hypercube with α = 1/(d+1): γ = (d−1)/(d+1).
  for (const int dim : {2, 3, 4}) {
    const UndirectedGraph g = MakeHypercubeGraph(dim);
    const DiffusionMatrix d =
        DiffusionMatrix::Uniform(g, 1.0 / (dim + 1));
    EXPECT_NEAR(d.SpectralGamma(),
                static_cast<double>(dim - 1) / (dim + 1), 1e-6)
        << "dim=" << dim;
  }
}

TEST(SpectralGamma, CompleteGraphWithAlphaOverNIsExact) {
  // Complete graph, α = 1/n: D = J/n, converges in one step (γ = 0).
  const int n = 6;
  const UndirectedGraph g = MakeCompleteGraph(n);
  const DiffusionMatrix d = DiffusionMatrix::Uniform(g, 1.0 / n);
  EXPECT_NEAR(d.SpectralGamma(), 0.0, 1e-6);
}

TEST(Diffusion, ConvergesToUniformAndCybenkoBoundHolds) {
  Rng rng(3);
  for (const auto* name : {"ring", "torus", "hypercube", "tree"}) {
    UndirectedGraph g = [&]() -> UndirectedGraph {
      if (std::string(name) == "ring") return MakeRingGraph(10);
      if (std::string(name) == "torus") return MakeTorusGraph(4, 3);
      if (std::string(name) == "hypercube") return MakeHypercubeGraph(3);
      Rng tree_rng(9);
      return GraphFromTree(MakeRandomTree(12, tree_rng));
    }();
    const DiffusionMatrix d = DiffusionMatrix::DegreeBased(g);
    std::vector<double> x(static_cast<std::size_t>(g.size()));
    for (auto& v : x) v = rng.NextDouble(0, 100);
    const DiffusionRun run = RunDiffusion(d, x, 1e-9, 20000);
    EXPECT_TRUE(run.reached_tolerance) << name;
    const double gamma = d.SpectralGamma();
    EXPECT_LT(gamma, 1.0) << name;
    EXPECT_TRUE(CybenkoBoundHolds(run, gamma, 1e-7)) << name;
  }
}

TEST(Diffusion, MeasuredRateMatchesSpectralGamma) {
  // The asymptotic decay rate of ‖x(t) − u‖ equals γ (§2's  y^t bound is
  // tight for generic starting vectors).
  const UndirectedGraph g = MakeRingGraph(16);
  const DiffusionMatrix d = DiffusionMatrix::Uniform(g, 0.25);
  Rng rng(5);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.NextDouble(0, 10);
  const DiffusionRun run = RunDiffusion(d, x, 1e-12, 3000);
  // Measure the tail ratio (after transients die out).
  const auto& ds = run.distances;
  ASSERT_GT(ds.size(), 50u);
  const std::size_t t0 = ds.size() / 2;
  const double measured = std::pow(ds[t0 + 20] / ds[t0], 1.0 / 20.0);
  EXPECT_NEAR(measured, d.SpectralGamma(), 0.01);
}

TEST(OptimalAlpha, BeatsNeighboringAlphasOnKAryNCube) {
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{{4, 2}, {3, 2}, {5, 1}}) {
    const UndirectedGraph g = MakeKAryNCubeGraph(k, n);
    const double a_star = OptimalAlphaKAryNCube(k, n);
    const DiffusionMatrix best = DiffusionMatrix::Uniform(g, a_star);
    const double gamma_star = best.SpectralGamma();
    for (const double delta : {-0.05, 0.05}) {
      const double a = a_star + delta;
      if (a <= 0 || a * g.MaxDegree() >= 1) continue;
      const DiffusionMatrix other = DiffusionMatrix::Uniform(g, a);
      EXPECT_LE(gamma_star, other.SpectralGamma() + 1e-9)
          << "k=" << k << " n=" << n << " delta=" << delta;
    }
  }
}

TEST(Diffusion, GammaGrowsWithRingSize) {
  // Bigger rings mix slower: γ increases with n.
  double prev = 0;
  for (const int n : {4, 8, 16, 32}) {
    const DiffusionMatrix d =
        DiffusionMatrix::Uniform(MakeRingGraph(n), 0.25);
    const double gamma = d.SpectralGamma();
    EXPECT_GT(gamma, prev);
    prev = gamma;
  }
}

class AsyncDiffusionSweep
    : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(AsyncDiffusionSweep, ConvergesUnderPartialAsynchronism) {
  // Bertsekas–Tsitsiklis: bounded delays + connected graph + positive
  // diagonal => convergence.  Sweep activation probability and delay.
  const auto [activation, delay] = GetParam();
  const UndirectedGraph g = MakeTorusGraph(4, 4);
  Rng rng(5);
  std::vector<double> x0(16);
  for (auto& v : x0) v = rng.NextDouble(0, 100);
  AsyncDiffusionOptions opt;
  opt.activation = activation;
  opt.max_delay = delay;
  opt.seed = 11;
  const DiffusionRun run =
      RunAsyncDiffusion(g, 0.2, x0, opt, 1e-6, 100000);
  EXPECT_TRUE(run.reached_tolerance)
      << "activation=" << activation << " delay=" << delay;
  // Conservation is exact: the final vector still sums to the initial
  // total (transfers are edge-atomic).
  double total0 = 0, total1 = 0;
  for (const double v : x0) total0 += v;
  for (const double v : run.final_load) total1 += v;
  EXPECT_NEAR(total1, total0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Params, AsyncDiffusionSweep,
    ::testing::Values(std::pair<double, int>{1.0, 0},
                      std::pair<double, int>{0.7, 1},
                      std::pair<double, int>{0.5, 3},
                      std::pair<double, int>{0.25, 5}));

TEST(AsyncDiffusion, SlowerThanSynchronousButSameLimit) {
  const UndirectedGraph g = MakeRingGraph(12);
  Rng rng(7);
  std::vector<double> x0(12);
  for (auto& v : x0) v = rng.NextDouble(0, 50);

  const DiffusionMatrix d = DiffusionMatrix::Uniform(g, 0.3);
  const DiffusionRun sync = RunDiffusion(d, x0, 1e-6, 100000);
  AsyncDiffusionOptions opt;
  opt.activation = 0.4;
  opt.max_delay = 2;
  const DiffusionRun async = RunAsyncDiffusion(g, 0.3, x0, opt, 1e-6, 100000);
  ASSERT_TRUE(sync.reached_tolerance);
  ASSERT_TRUE(async.reached_tolerance);
  EXPECT_GE(async.distances.size(), sync.distances.size())
      << "thinned activation cannot beat the synchronous sweep";
}

TEST(AsyncDiffusion, RejectsBadOptions) {
  const UndirectedGraph g = MakeRingGraph(4);
  AsyncDiffusionOptions opt;
  opt.activation = 0;
  EXPECT_THROW(RunAsyncDiffusion(g, 0.2, {1, 2, 3, 4}, opt, 1e-6, 10),
               std::invalid_argument);
  opt.activation = 0.5;
  opt.max_delay = -1;
  EXPECT_THROW(RunAsyncDiffusion(g, 0.2, {1, 2, 3, 4}, opt, 1e-6, 10),
               std::invalid_argument);
  opt.max_delay = 0;
  EXPECT_THROW(RunAsyncDiffusion(g, 0.9, {1, 2, 3, 4}, opt, 1e-6, 10),
               std::invalid_argument)
      << "alpha * degree >= 1 must be rejected";
}

TEST(Diffusion, PreservesTotalLoad) {
  const UndirectedGraph g = MakeTorusGraph(3, 3);
  const DiffusionMatrix d = DiffusionMatrix::DegreeBased(g);
  std::vector<double> x = {10, 0, 0, 0, 0, 0, 0, 0, 0};
  double total = 10;
  for (int t = 0; t < 50; ++t) {
    x = d.Apply(x);
    double s = 0;
    for (const double v : x) s += v;
    EXPECT_NEAR(s, total, 1e-9);
  }
}

}  // namespace
}  // namespace webwave
