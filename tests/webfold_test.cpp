// Unit tests for WebFold, the load model, and the paper's hand examples.
//
// Figure 2 and Figure 4 of the paper are reproduced as concrete trees here
// (rates reconstructed to exhibit exactly the phenomena the figures show:
// (a) a TLB assignment that is GLE, (b) one that is not, and a multi-step
// folding cascade).
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

// The 5-node tree used by Figure 2:   0 <- {1, 2},  1 <- {3, 4}.
RoutingTree Fig2Tree() {
  return RoutingTree::FromParents({kNoNode, 0, 0, 1, 1});
}

TEST(LoadModel, ForwardedRatesFollowFlowConservation) {
  const RoutingTree t = Fig2Tree();
  const std::vector<double> spont = {0, 5, 10, 25, 10};
  const std::vector<double> served = {10, 10, 10, 10, 10};
  const auto a = ForwardedRates(t, spont, served);
  EXPECT_DOUBLE_EQ(a[3], 15);  // leaf: E - L
  EXPECT_DOUBLE_EQ(a[4], 0);
  EXPECT_DOUBLE_EQ(a[1], 5 + 15 + 0 - 10);
  EXPECT_DOUBLE_EQ(a[2], 0);
  EXPECT_DOUBLE_EQ(a[0], 0 + 10 + 0 - 10);
}

TEST(LoadModel, FeasibilityReportFlagsEachConstraint) {
  const RoutingTree t = Fig2Tree();
  const std::vector<double> spont = {0, 5, 10, 25, 10};
  // Serving more than arrives at node 2 violates NSS (A_2 < 0).
  EXPECT_FALSE(CheckFeasible(t, spont, {10, 10, 11, 10, 9}).nss);
  // Negative served rate.
  EXPECT_FALSE(
      CheckFeasible(t, spont, {20, 10, -1, 11, 10}).served_nonnegative);
  // Total served != total spontaneous -> the root keeps forwarding.
  EXPECT_FALSE(CheckFeasible(t, spont, {1, 1, 1, 1, 1}).root_forwards_nothing);
  // The GLE assignment is feasible on this instance.
  EXPECT_TRUE(CheckFeasible(t, spont, {10, 10, 10, 10, 10}).ok());
}

TEST(Figure2a, TlbEqualsGleWhenFeasible) {
  const RoutingTree t = Fig2Tree();
  const std::vector<double> spont = {0, 5, 10, 25, 10};  // total 50
  ASSERT_TRUE(GleIsFeasible(t, spont));
  const WebFoldResult r = WebFold(t, spont);
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_NEAR(r.load[v], 10.0, 1e-9) << "node " << v;
  EXPECT_TRUE(IsUniform(r.load, 1e-9));
  // Folding stops at equality (strict foldability), so equal-load folds may
  // stay separate — but every fold must carry the GLE per-node load.
  for (const Fold& fold : r.folds) EXPECT_NEAR(fold.per_node, 10.0, 1e-9);
  EXPECT_TRUE(SatisfiesTlb(t, spont, r.load));
}

TEST(Figure2b, TlbDiffersFromGleUnderNss) {
  const RoutingTree t = Fig2Tree();
  const std::vector<double> spont = {0, 40, 10, 0, 0};  // total 50
  ASSERT_FALSE(GleIsFeasible(t, spont))
      << "leaf 3 cannot absorb the uniform share";
  const WebFoldResult r = WebFold(t, spont);
  EXPECT_NEAR(r.load[0], 20, 1e-9);
  EXPECT_NEAR(r.load[1], 20, 1e-9);
  EXPECT_NEAR(r.load[2], 10, 1e-9);
  EXPECT_NEAR(r.load[3], 0, 1e-9);
  EXPECT_NEAR(r.load[4], 0, 1e-9);
  EXPECT_FALSE(IsUniform(r.load, 1e-9));
  EXPECT_TRUE(SatisfiesTlb(t, spont, r.load));
  EXPECT_TRUE(CheckFeasible(t, spont, r.load).ok());
}

// Figure 4: a folding cascade.  Tree:
//   0 <- {1, 2}; 1 <- {3, 4}; 2 <- {5}; 3 <- {6}; 5 <- {7}
// Rates force four folds in sequence: 6 into 3, 4 into 1, {3,6} into
// {1,4}, and the merged fold into the root.
TEST(Figure4, FoldingSequenceAndFinalFolds) {
  const RoutingTree t =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 2, 3, 5});
  const std::vector<double> spont = {5, 0, 10, 0, 30, 8, 40, 2};
  const WebFoldResult r = WebFold(t, spont);

  ASSERT_EQ(r.trace.size(), 4u);
  // Max per-node fold first: node 6 (40) into node 3 (0).
  EXPECT_EQ(r.trace[0].folded_root, 6);
  EXPECT_EQ(r.trace[0].into_root, 3);
  EXPECT_NEAR(r.trace[0].merged_per_node, 20, 1e-9);
  // Then node 4 (30) into node 1 (0).
  EXPECT_EQ(r.trace[1].folded_root, 4);
  EXPECT_EQ(r.trace[1].into_root, 1);
  EXPECT_NEAR(r.trace[1].merged_per_node, 15, 1e-9);
  // Then fold {3,6} (20) into fold {1,4} (15).
  EXPECT_EQ(r.trace[2].folded_root, 3);
  EXPECT_EQ(r.trace[2].into_root, 1);
  EXPECT_NEAR(r.trace[2].merged_per_node, 17.5, 1e-9);
  // Finally fold {1,3,4,6} (17.5) into the root (5).
  EXPECT_EQ(r.trace[3].folded_root, 1);
  EXPECT_EQ(r.trace[3].into_root, 0);
  EXPECT_NEAR(r.trace[3].merged_per_node, 15, 1e-9);

  // Final folds: {0,1,3,4,6}@15, {2}@10, {5}@8, {7}@2.
  ASSERT_EQ(r.folds.size(), 4u);
  const std::vector<double> expected = {15, 15, 10, 15, 15, 8, 15, 2};
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_NEAR(r.load[v], expected[v], 1e-9) << "node " << v;
  EXPECT_TRUE(SatisfiesTlb(t, spont, r.load));
}

TEST(WebFold, SingleNodeServesItsOwnLoad) {
  const RoutingTree t = RoutingTree::FromParents({kNoNode});
  const WebFoldResult r = WebFold(t, {42});
  EXPECT_DOUBLE_EQ(r.load[0], 42);
  EXPECT_EQ(r.folds.size(), 1u);
  EXPECT_TRUE(r.trace.empty());
}

TEST(WebFold, AllLoadAtLeafOfChainSpreadsEvenly) {
  const RoutingTree t = MakeChain(5);
  const WebFoldResult r = WebFold(t, {0, 0, 0, 0, 100});
  for (NodeId v = 0; v < 5; ++v) EXPECT_NEAR(r.load[v], 20, 1e-9);
  EXPECT_EQ(r.folds.size(), 1u);
}

TEST(WebFold, AllLoadAtRootStaysAtRoot) {
  // NSS forbids pushing root load down: everything stays at the root.
  const RoutingTree t = MakeChain(4);
  const WebFoldResult r = WebFold(t, {100, 0, 0, 0});
  EXPECT_NEAR(r.load[0], 100, 1e-9);
  EXPECT_NEAR(r.load[1], 0, 1e-9);
  EXPECT_EQ(r.folds.size(), 4u);
  EXPECT_TRUE(SatisfiesTlb(t, {100, 0, 0, 0}, r.load));
}

TEST(WebFold, CascadingRefoldAcrossGrandparent) {
  // Chain g(0) <- p(10) <- k(6): p folds into g first (avg 5), which makes
  // k foldable into the merged fold — the case that requires re-examining
  // child folds after every merge.
  const RoutingTree t = MakeChain(3);
  const WebFoldResult r = WebFold(t, {0, 10, 6});
  for (NodeId v = 0; v < 3; ++v)
    EXPECT_NEAR(r.load[v], 16.0 / 3.0, 1e-9) << "node " << v;
  EXPECT_EQ(r.folds.size(), 1u);
  ASSERT_EQ(r.trace.size(), 2u);
  EXPECT_EQ(r.trace[0].folded_root, 1);
  EXPECT_EQ(r.trace[1].folded_root, 2);
}

TEST(WebFold, MonotoneNonIncreasingDownTheTree) {
  // Lemma 1 on a concrete bushy instance.
  const RoutingTree t = MakeCaterpillar(4, 3);
  std::vector<double> spont(t.size(), 1.0);
  spont[t.size() - 1] = 50;  // hot leaf at the deep end
  const WebFoldResult r = WebFold(t, spont);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (!t.is_root(v)) {
      EXPECT_GE(r.load[t.parent(v)] + 1e-9, r.load[v]) << "node " << v;
    }
  }
}

TEST(WebFold, NoLoadCrossesFoldBoundaries) {
  // Lemma 2: A = 0 at every fold root.
  const RoutingTree t =
      RoutingTree::FromParents({kNoNode, 0, 0, 1, 1, 2, 3, 5});
  const std::vector<double> spont = {5, 0, 10, 0, 30, 8, 40, 2};
  const WebFoldResult r = WebFold(t, spont);
  const auto a = ForwardedRates(t, spont, r.load);
  for (const Fold& fold : r.folds)
    EXPECT_NEAR(a[fold.root], 0, 1e-9) << "fold root " << fold.root;
}

TEST(WebFold, RejectsNegativeRates) {
  const RoutingTree t = MakeChain(2);
  EXPECT_THROW(WebFold(t, {1, -1}), std::invalid_argument);
  EXPECT_THROW(WebFold(t, {1}), std::invalid_argument);
}

TEST(WebFold, ZeroRatesEverywhere) {
  const RoutingTree t = MakeKaryTree(2, 2);
  const WebFoldResult r = WebFold(t, std::vector<double>(7, 0.0));
  for (NodeId v = 0; v < t.size(); ++v) EXPECT_DOUBLE_EQ(r.load[v], 0);
}

TEST(WebFold, FoldMembersPartitionTheTree) {
  const RoutingTree t = MakeCaterpillar(5, 2);
  std::vector<double> spont(t.size());
  for (NodeId v = 0; v < t.size(); ++v) spont[v] = (v * 7) % 13;
  const WebFoldResult r = WebFold(t, spont);
  std::vector<int> seen(t.size(), 0);
  for (const Fold& f : r.folds) {
    EXPECT_FALSE(f.members.empty());
    double sum = 0;
    for (const NodeId v : f.members) {
      ++seen[v];
      sum += spont[v];
    }
    EXPECT_NEAR(sum, f.rate_sum, 1e-9);
    EXPECT_NEAR(f.per_node, f.rate_sum / f.members.size(), 1e-12);
    // Members form a connected region: every member except the fold root
    // has its parent in the same fold.
    for (const NodeId v : f.members) {
      if (v != f.root) {
        EXPECT_EQ(r.fold_root[t.parent(v)], f.root);
      }
    }
  }
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_EQ(seen[v], 1) << "node in exactly one fold";
}

TEST(LexCompare, OrdersBySortedDescendingVectors) {
  EXPECT_EQ(LexCompareMinimax({1, 5}, {5, 1}), 0);
  EXPECT_EQ(LexCompareMinimax({4, 4}, {5, 3}), -1);  // smaller max wins
  EXPECT_EQ(LexCompareMinimax({5, 3}, {5, 2}), 1);   // tie on max, then next
  EXPECT_EQ(LexCompareMinimax({3, 3, 3}, {3, 3, 3}), 0);
}

}  // namespace
}  // namespace webwave
