// Stress and adversarial-shape tests: degenerate trees at scale, long
// protocol runs, and determinism guarantees.  These pin down that the
// implementations are iterative (no stack overflow on 100k-deep chains)
// and near-linear in practice.
#include "core/load_model.h"
#include "core/tlb.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "core/webwave_batch.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace webwave {
namespace {

// Invariant-check knobs for sanitizer runs (set by the asan-ubsan test
// preset): WEBWAVE_STRESS_CHECK_EVERY_STEP=1 checks after every step
// instead of sampling, WEBWAVE_STRESS_CHECK_TOL overrides the tolerance.
bool CheckEveryStep() {
  const char* env = std::getenv("WEBWAVE_STRESS_CHECK_EVERY_STEP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double InvariantTolerance(double fallback) {
  const char* env = std::getenv("WEBWAVE_STRESS_CHECK_TOL");
  return env != nullptr ? std::atof(env) : fallback;
}

TEST(Stress, WebFoldOnHundredThousandNodeChain) {
  const int n = 100000;
  const RoutingTree tree = MakeChain(n);
  std::vector<double> spont(static_cast<std::size_t>(n), 0.0);
  spont.back() = 1e6;  // everything at the deep end: one giant fold
  const WebFoldResult r = WebFold(tree, spont);
  EXPECT_EQ(r.folds.size(), 1u);
  EXPECT_NEAR(r.load[0], 10.0, 1e-6);
  EXPECT_NEAR(r.load[n - 1], 10.0, 1e-6);
}

TEST(Stress, WebFoldOnHundredThousandNodeStar) {
  const int n = 100000;
  const RoutingTree tree = MakeStar(n);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    spont[static_cast<std::size_t>(v)] = static_cast<double>(v % 97);
  const WebFoldResult r = WebFold(tree, spont);
  EXPECT_TRUE(CheckFeasible(tree, spont, r.load, 1e-6).ok());
  // Lemma 1 sampled.
  for (NodeId v = 1; v < n; v += 9973)
    EXPECT_GE(r.load[0] + 1e-9, r.load[v]);
}

TEST(Stress, DeepChainTraversalsAreIterative) {
  const int n = 200000;
  const RoutingTree tree = MakeChain(n);
  EXPECT_EQ(tree.height(), n - 1);
  EXPECT_EQ(tree.depth(n - 1), n - 1);
  EXPECT_EQ(static_cast<int>(tree.preorder().size()), n);
  EXPECT_EQ(tree.subtree_size(0), n);
  EXPECT_EQ(static_cast<int>(tree.path_to_root(n - 1).size()), n);
}

TEST(Stress, ReferenceSolverAgreesAtScale) {
  Rng rng(5);
  const int n = 3000;
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 100);
  const WebFoldResult fast = WebFold(tree, spont);
  const std::vector<double> regions = SolveTlbByMaxMeanRegions(tree, spont);
  double max_diff = 0;
  for (NodeId v = 0; v < n; ++v)
    max_diff = std::max(max_diff, std::abs(fast.load[v] - regions[v]));
  EXPECT_LT(max_diff, 1e-6);
}

TEST(Stress, LongWebWaveRunKeepsInvariants) {
  Rng rng(7);
  const int n = 2000;
  const RoutingTree tree = MakeRandomTree(n, rng);
  std::vector<double> spont(static_cast<std::size_t>(n));
  for (auto& e : spont) e = rng.NextDouble(0, 10);
  WebWaveOptions opt;
  opt.asynchronous = true;
  opt.gossip_period = 3;
  opt.gossip_delay = 2;
  opt.seed = 99;
  WebWaveSimulator sim(tree, spont, opt);
  const bool every_step = CheckEveryStep();
  const double tol = InvariantTolerance(1e-5);
  for (int s = 0; s < 500; ++s) {
    sim.Step();
    if (every_step || s % 50 == 0) {
      ASSERT_NO_THROW(sim.CheckInvariants(tol));
    }
  }
}

TEST(Stress, BatchCatalogRunKeepsInvariantsPerLane) {
  Rng rng(31);
  const RoutingTree tree = MakeRandomTree(500, rng);
  const DemandMatrix demand = LeafZipfDemand(tree, 16, 25.0, 1.0, rng);
  WebWaveOptions opt;
  opt.gossip_period = 2;
  opt.gossip_delay = 1;
  BatchWebWaveSimulator batch = MakeCatalogBatch(tree, demand, opt);
  const bool every_step = CheckEveryStep();
  const double tol = InvariantTolerance(1e-5);
  for (int s = 0; s < 200; ++s) {
    batch.Step();
    if (every_step || s % 25 == 0) {
      ASSERT_NO_THROW(batch.CheckInvariants(tol));
    }
  }
}

TEST(Stress, AsynchronousRunsAreSeedDeterministic) {
  Rng rng(11);
  const RoutingTree tree = MakeRandomTree(100, rng);
  std::vector<double> spont(100);
  for (auto& e : spont) e = rng.NextDouble(0, 10);
  WebWaveOptions opt;
  opt.asynchronous = true;
  opt.seed = 1234;
  WebWaveSimulator a(tree, spont, opt);
  WebWaveSimulator b(tree, spont, opt);
  for (int s = 0; s < 200; ++s) {
    a.Step();
    b.Step();
  }
  EXPECT_EQ(a.served(), b.served()) << "same seed must give identical runs";
}

TEST(Stress, DocWebWaveManyDocumentsManyNodes) {
  Rng rng(13);
  const RoutingTree tree = MakeKaryTree(3, 4);  // 121 nodes
  const DemandMatrix demand = LeafZipfDemand(tree, 25, 40, 1.0, rng);
  DocWebWave protocol(tree, demand);
  for (int s = 0; s < 120; ++s) protocol.Step();
  ASSERT_NO_THROW(protocol.CheckInvariants());
  const WebFoldResult tlb = WebFold(tree, demand.NodeTotals());
  EXPECT_LT(protocol.DistanceTo(tlb.load), 0.1 * demand.Total());
}

TEST(Stress, ZeroDemandEverywhereIsANoOp) {
  const RoutingTree tree = MakeKaryTree(2, 4);
  std::vector<double> zero(static_cast<std::size_t>(tree.size()), 0.0);
  WebWaveSimulator sim(tree, zero);
  for (int s = 0; s < 50; ++s) sim.Step();
  sim.CheckInvariants();
  for (const double l : sim.served()) EXPECT_DOUBLE_EQ(l, 0.0);
}

TEST(Stress, SingleHotNodeAtEveryPosition) {
  // Sweep the hot node across a caterpillar: every position must give a
  // feasible TLB with the hot node's fold absorbing the spike.
  const RoutingTree tree = MakeCaterpillar(5, 2);
  for (NodeId hot = 0; hot < tree.size(); ++hot) {
    std::vector<double> spont(static_cast<std::size_t>(tree.size()), 1.0);
    spont[static_cast<std::size_t>(hot)] = 500;
    const WebFoldResult r = WebFold(tree, spont);
    EXPECT_TRUE(CheckFeasible(tree, spont, r.load, 1e-7).ok()) << "hot " << hot;
    EXPECT_TRUE(SatisfiesTlb(tree, spont, r.load)) << "hot " << hot;
  }
}

}  // namespace
}  // namespace webwave
