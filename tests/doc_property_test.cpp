// Property sweep for the document-level protocol: on randomized trees and
// sparse per-document demand, DocWebWave (with tunneling) converges near
// the rate-level TLB optimum, never violates its invariants, and only
// replicates documents whose demand actually flows.
#include "core/load_model.h"
#include "core/webfold.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

struct DocSweepCase {
  int nodes;
  int docs;
  std::uint64_t seed;
  double sparsity;  // probability a (node, doc) cell has demand
};

std::ostream& operator<<(std::ostream& os, const DocSweepCase& c) {
  return os << "n=" << c.nodes << " docs=" << c.docs << " seed=" << c.seed
            << " sparsity=" << c.sparsity;
}

class DocConvergenceSweep : public ::testing::TestWithParam<DocSweepCase> {};

TEST_P(DocConvergenceSweep, ConvergesNearTlbWithInvariants) {
  const DocSweepCase c = GetParam();
  Rng rng(c.seed);
  const RoutingTree tree = MakeRandomTree(c.nodes, rng);
  DemandMatrix demand(c.nodes, c.docs);
  for (NodeId v = 0; v < c.nodes; ++v)
    for (DocId d = 0; d < c.docs; ++d)
      if (rng.NextBernoulli(c.sparsity))
        demand.set(v, d, rng.NextDouble(1, 30));
  if (demand.Total() == 0) {
    demand.set(c.nodes - 1, 0, 10);
  }

  const WebFoldResult target = WebFold(tree, demand.NodeTotals());
  DocWebWave protocol(tree, demand);
  const double total = demand.Total();
  const auto traj = protocol.RunUntil(target.load, 0.02 * total, 4000);
  EXPECT_LE(traj.back(), 0.02 * total)
      << c << ": document protocol should reach within 2% of TLB";
  ASSERT_NO_THROW(protocol.CheckInvariants()) << c;

  // A document is replicated beyond the home only if someone demands it.
  for (DocId d = 0; d < c.docs; ++d) {
    if (demand.DocTotal(d) == 0) {
      EXPECT_EQ(protocol.CopyCount(d), 1) << c << " doc " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DocConvergenceSweep,
    ::testing::Values(DocSweepCase{5, 2, 1, 0.8},
                      DocSweepCase{10, 4, 2, 0.5},
                      DocSweepCase{20, 6, 3, 0.3},
                      DocSweepCase{35, 8, 4, 0.2},
                      DocSweepCase{50, 10, 5, 0.15},
                      DocSweepCase{20, 3, 6, 0.05},
                      DocSweepCase{12, 12, 7, 0.4},
                      DocSweepCase{60, 5, 8, 0.1}));

TEST(DocWebWaveEdgeCases, SingleDocumentSingleRequester) {
  const RoutingTree tree = MakeChain(5);
  DemandMatrix demand(5, 1);
  demand.set(4, 0, 100);
  DocWebWave protocol(tree, demand);
  const WebFoldResult target = WebFold(tree, demand.NodeTotals());
  const auto traj = protocol.RunUntil(target.load, 0.5, 2000);
  EXPECT_LE(traj.back(), 0.5);
  // TLB spreads 100 over 5 nodes -> 20 each; the chain must hold copies
  // at every node.
  EXPECT_EQ(protocol.CopyCount(0), 5);
}

TEST(DocWebWaveEdgeCases, DemandOnlyAtTheHomeStaysAtTheHome) {
  const RoutingTree tree = MakeKaryTree(2, 2);
  DemandMatrix demand(tree.size(), 2);
  demand.set(tree.root(), 0, 50);
  demand.set(tree.root(), 1, 30);
  DocWebWave protocol(tree, demand);
  for (int s = 0; s < 100; ++s) protocol.Step();
  protocol.CheckInvariants();
  // NSS: the home's own demand cannot move down to any subtree.
  EXPECT_NEAR(protocol.NodeLoads()[tree.root()], 80, 1e-9);
  EXPECT_EQ(protocol.CopyCount(0), 1);
  EXPECT_EQ(protocol.CopyCount(1), 1);
}

TEST(DocWebWaveEdgeCases, EvictionFreesColdCopies) {
  // A doc is hot at a leaf, then the child's quota is relinquished when
  // its sibling heats up far more; the protocol should evict zero-quota
  // copies rather than hoard them.
  const RoutingTree tree = RoutingTree::FromParents({kNoNode, 0, 0});
  DemandMatrix demand(3, 2);
  demand.set(1, 0, 10);
  demand.set(2, 1, 200);
  DocWebWaveOptions opt;
  opt.evict_at_zero_quota = true;
  DocWebWave protocol(tree, demand, opt);
  for (int s = 0; s < 300; ++s) protocol.Step();
  protocol.CheckInvariants();
  const WebFoldResult target = WebFold(tree, demand.NodeTotals());
  EXPECT_LT(protocol.DistanceTo(target.load), 0.05 * demand.Total());
}

}  // namespace
}  // namespace webwave
