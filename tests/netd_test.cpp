// The netd fleet's determinism contract, bottom-up:
//
//   * CarveSubtree / PartitionOwners — carve a compact tree out of a big
//     one and shard it so walks up the tree never revisit a shard.
//   * EventLoop — the timer wheel fires in delay order (including delays
//     past one wheel revolution) and CancelTimer really cancels.
//   * FrameConn — frames survive a real socketpair byte stream, however
//     the kernel slices it.
//   * Segment fleet == oracle — the load-bearing theorem: K segment
//     planes fed the stream by explicit message routing accumulate
//     *identical* ServingMetrics (every counter, every vector) to one
//     all-owning plane replaying the same stream, live, faulted, and
//     dropping.
//   * RunNetdCluster — the same identity across real forked processes
//     and loopback sockets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <sys/socket.h>

#include <csignal>
#include <vector>

#include "doc/catalog.h"
#include "doc/placement.h"
#include "fault/process_faults.h"
#include "netd/cluster.h"
#include "netd/conn.h"
#include "netd/daemon.h"
#include "netd/epoch_plan.h"
#include "netd/event_loop.h"
#include "netd/loadgen.h"
#include "tree/builders.h"
#include "util/rng.h"
#include "wire/quota_wire.h"

namespace webwave {
namespace {

// The carved-cluster fixture every fleet test shares: a random tree,
// Zipf-ish leaf demand, the placement-derived snapshot serialized to the
// blob all processes deserialize.
struct Cluster {
  std::vector<NodeId> parents;
  RoutingTree tree;  // rebuilt from parents, as every process does
  NetdClusterConfig config;
};

Cluster MakeCluster(int nodes, int docs, int servers,
                    std::uint64_t requests) {
  Rng rng(42);
  const RoutingTree built = MakeRandomTree(nodes, rng);
  DemandMatrix demand(nodes, docs);
  Rng drng(7);
  for (NodeId v = 0; v < built.size(); ++v)
    if (built.is_leaf(v))
      for (DocId d = 0; d < docs; ++d)
        demand.set(v, d, drng.NextDouble(0.1, 4.0));
  const PlacementResult placement = DerivePlacement(built, demand);
  const QuotaSnapshot snapshot =
      QuotaSnapshot::FromPlacement(built, placement, demand, 1e-9);

  Cluster c{built.parents(), RoutingTree::FromParents(built.parents()), {}};
  c.config.parents = c.parents;
  c.config.owner = PartitionOwners(c.tree, servers);
  c.config.server_count = servers;
  QuotaWireTable::Serialize(snapshot, &c.config.quota_blob);
  c.config.serving.block_size = 1;
  c.config.serving.threads = 1;
  c.config.docs = docs;
  c.config.stream_seed = 0xbadcafe;
  c.config.total_requests = requests;
  return c;
}

// Element-wise sum of fleet metrics, for comparison against the oracle.
ServingMetrics SumMetrics(const std::vector<ServingMetrics>& parts) {
  ServingMetrics total = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const ServingMetrics& m = parts[i];
    total.requests += m.requests;
    total.cache_served += m.cache_served;
    total.home_served += m.home_served;
    total.hop_sum += m.hop_sum;
    total.failed_attempts += m.failed_attempts;
    total.failovers += m.failovers;
    total.dropped_requests += m.dropped_requests;
    total.backoff_slots += m.backoff_slots;
    for (std::size_t v = 0; v < total.served_per_node.size(); ++v)
      total.served_per_node[v] += m.served_per_node[v];
    if (m.hops.size() > total.hops.size())
      total.hops.resize(m.hops.size(), 0);
    for (std::size_t h = 0; h < m.hops.size(); ++h)
      total.hops[h] += m.hops[h];
  }
  return total;
}

// Runs the stream through K in-process segment planes, routing forwards
// by ownership exactly as the socket fleet does — but synchronously, so
// failures localize.  Returns the per-plane metrics; with `trace`
// non-null, the planes' merged trace streams in canonical order.
std::vector<ServingMetrics> RunSegmentFleet(
    const Cluster& c, std::vector<TraceEvent>* trace = nullptr) {
  QuotaSnapshot snapshot;
  EXPECT_TRUE(QuotaWireTable::Deserialize(
      c.config.quota_blob.data(), c.config.quota_blob.size(), &snapshot));
  std::vector<std::unique_ptr<ServingPlane>> planes;
  std::vector<std::vector<NodeId>> shards(
      static_cast<std::size_t>(c.config.server_count));
  for (NodeId v = 0; v < c.tree.size(); ++v)
    shards[static_cast<std::size_t>(c.config.owner[static_cast<std::size_t>(
        v)])].push_back(v);
  for (int s = 0; s < c.config.server_count; ++s) {
    planes.push_back(std::make_unique<ServingPlane>(c.tree, snapshot,
                                                    c.config.serving));
    planes.back()->SetSegmentNodes(Span<const NodeId>(
        shards[static_cast<std::size_t>(s)].data(),
        shards[static_cast<std::size_t>(s)].size()));
    if (!c.config.down.empty())
      planes.back()->SetDownNodes(Span<const NodeId>(c.config.down.data(),
                                                     c.config.down.size()));
  }
  for (std::uint64_t i = 0; i < c.config.total_requests; ++i) {
    const Request r = NetdRequestAt(c.config.stream_seed, i, c.tree.size(),
                                    c.config.docs);
    GetRequest msg;
    msg.req_id = i;
    msg.doc = r.doc;
    msg.origin_node = r.node;
    if (c.config.serving.trace &&
        TraceSampled(c.config.serving.trace_seed, i,
                     c.config.serving.trace_sample_shift))
      msg.flags |= kGetFlagTrace;
    int hop_guard = 0;
    for (;;) {
      const int s = c.config.owner[static_cast<std::size_t>(msg.origin_node)];
      GetRequest fwd;
      GetReply reply;
      const auto outcome = planes[static_cast<std::size_t>(s)]
                               ->ServeWireSegment(msg, &fwd, &reply);
      if (outcome != ServingPlane::WireServe::kForwarded) break;
      // Ownership is monotone along the walk: forwards always move to a
      // lower server index, so the chain terminates.
      EXPECT_LT(c.config.owner[static_cast<std::size_t>(fwd.origin_node)], s);
      msg = fwd;
      ++hop_guard;
      EXPECT_LT(hop_guard, c.config.server_count) << "forward cycle";
      if (hop_guard >= c.config.server_count) break;
    }
  }
  std::vector<ServingMetrics> out;
  for (auto& p : planes) out.push_back(p->metrics());
  if (trace != nullptr) {
    trace->clear();
    for (auto& p : planes)
      trace->insert(trace->end(), p->trace().begin(), p->trace().end());
    CanonicalizeTrace(trace);
  }
  return out;
}

TEST(NetdCluster, CarveSubtreeReindexesPreorder) {
  Rng rng(5);
  const RoutingTree big = MakeRandomTree(500, rng);
  // Pick an internal node with a decently sized subtree.
  NodeId pivot = big.root();
  for (const NodeId v : big.preorder())
    if (!big.is_root(v) && big.subtree_size(v) >= 50) {
      pivot = v;
      break;
    }
  ASSERT_FALSE(big.is_root(pivot));
  const CarvedTree carved = CarveSubtree(big, pivot);
  ASSERT_EQ(carved.parents.size(), carved.big_ids.size());
  EXPECT_EQ(static_cast<int>(carved.parents.size()), big.subtree_size(pivot));
  EXPECT_EQ(carved.big_ids[0], pivot);
  EXPECT_EQ(carved.parents[0], kNoNode);
  const RoutingTree small = RoutingTree::FromParents(carved.parents);
  EXPECT_EQ(small.root(), 0);
  // Edges survive the re-indexing: each carved edge is a big-tree edge.
  for (NodeId v = 1; v < small.size(); ++v)
    EXPECT_EQ(big.parent(carved.big_ids[static_cast<std::size_t>(v)]),
              carved.big_ids[static_cast<std::size_t>(small.parent(v))]);
}

TEST(NetdCluster, PartitionOwnersIsMonotoneUpTheTree) {
  Rng rng(9);
  const RoutingTree tree = MakeRandomTree(300, rng);
  const std::vector<int> owner = PartitionOwners(tree, 5);
  // Walking toward the root never increases the owning server index —
  // the property that lets reply retracing assume no shard revisits.
  for (NodeId v = 0; v < tree.size(); ++v)
    if (!tree.is_root(v))
      EXPECT_LE(owner[static_cast<std::size_t>(tree.parent(v))],
                owner[static_cast<std::size_t>(v)]);
  // Every server owns something on a tree this size.
  std::vector<int> count(5, 0);
  for (const int s : owner) ++count[static_cast<std::size_t>(s)];
  for (const int n : count) EXPECT_GT(n, 0);
}

TEST(NetdEventLoop, TimersFireInDelayOrderAcrossRevolutions) {
  EventLoop loop;
  std::vector<int> fired;
  // 4 ms ticks, 256 slots => 1024 ms per revolution; 1100 exercises the
  // rounds counter.
  loop.AddTimer(60, [&] { fired.push_back(2); });
  loop.AddTimer(20, [&] { fired.push_back(1); });
  loop.AddTimer(1100, [&] {
    fired.push_back(3);
    loop.Stop(7);
  });
  const std::uint64_t cancelled = loop.AddTimer(40, [&] { fired.push_back(99); });
  loop.CancelTimer(cancelled);
  EXPECT_EQ(loop.Run(), 7);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(NetdEventLoop, NextTimerDelayTracksTheNearestDeadline) {
  EventLoop loop;
  EXPECT_EQ(loop.NextTimerDelayMs(), -1);  // no timers pending
  // A delay past one wheel revolution (4 ms x 256 slots = 1024 ms)
  // exercises the rounds counter in the nearest-deadline scan.
  loop.AddTimer(1100, [] {});
  int d = loop.NextTimerDelayMs();
  EXPECT_GT(d, 1024);
  EXPECT_LE(d, 1100);
  loop.AddTimer(60, [] {});
  d = loop.NextTimerDelayMs();
  EXPECT_GE(d, 0);
  EXPECT_LE(d, 60);
  const std::uint64_t id = loop.AddTimer(20, [] {});
  d = loop.NextTimerDelayMs();
  EXPECT_GE(d, 0);
  EXPECT_LE(d, 20);
  // Cancelling the nearest timer moves the deadline back out.
  loop.CancelTimer(id);
  d = loop.NextTimerDelayMs();
  EXPECT_GT(d, 20);
  EXPECT_LE(d, 60);
}

TEST(NetdFrameConn, FramesSurviveASocketpairStream) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  MakeNonBlocking(fds[0]);
  MakeNonBlocking(fds[1]);
  FrameConn a(fds[0]);
  FrameConn b(fds[1]);

  GetRequest req;
  req.req_id = 77;
  req.doc = 3;
  req.origin_node = 12;
  req.ttl_hops = 2;
  LoadGossip gossip;
  gossip.node = 4;
  gossip.epoch = 9;
  gossip.load = 1.5;
  a.Send(req);
  a.Send(gossip);
  a.SendControl(MsgType::kStatsRequest);

  std::vector<WireMessage> got;
  while (got.size() < 3)
    ASSERT_TRUE(b.OnReadable([&](const WireMessage& m) { got.push_back(m); }));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].type, MsgType::kGetRequest);
  EXPECT_EQ(got[0].get, req);
  EXPECT_EQ(got[1].type, MsgType::kLoadGossip);
  EXPECT_EQ(got[1].gossip, gossip);
  EXPECT_EQ(got[2].type, MsgType::kStatsRequest);
}

// The peer dies with a frame half-delivered: the complete frames before
// the cut are delivered, the dangling tail is discarded, and the reader
// sees a clean conn-down (false), never garbage or a crash.
TEST(NetdFrameConn, PeerCloseMidFrameIsACleanConnDown) {
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  MakeNonBlocking(fds[1]);
  FrameConn reader(fds[1]);

  GetRequest req;
  req.req_id = 9;
  req.doc = 1;
  req.origin_node = 2;
  std::vector<std::uint8_t> bytes;
  MessageCodec::Encode(req, &bytes);
  const std::size_t whole = bytes.size();
  GetRequest second = req;
  second.req_id = 10;
  MessageCodec::Encode(second, &bytes);
  const std::size_t cut = whole + 10;  // strictly inside the second frame
  ASSERT_EQ(::write(fds[0], bytes.data(), cut),
            static_cast<ssize_t>(cut));
  ::close(fds[0]);

  std::vector<WireMessage> got;
  const auto collect = [&](const WireMessage& m) { got.push_back(m); };
  // Drain until EOF surfaces; the kernel may deliver the bytes and the
  // EOF in one readable event or two.
  while (reader.OnReadable(collect)) {
  }
  EXPECT_TRUE(reader.closed());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, MsgType::kGetRequest);
  EXPECT_EQ(got[0].get, req);
}

// Writing into a dead peer is EPIPE, not SIGPIPE: the conn marks itself
// closed and Flush reports false — the owner's conn-down event.
TEST(NetdFrameConn, WriteToDeadPeerClosesInsteadOfCrashing) {
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  MakeNonBlocking(fds[0]);
  FrameConn writer(fds[0]);
  ::close(fds[1]);

  GetRequest req;
  req.req_id = 4;
  writer.Send(req);  // Send flushes opportunistically and eats the EPIPE
  EXPECT_TRUE(writer.closed());
  EXPECT_FALSE(writer.Flush());
}

// A frame far larger than the socket buffer goes out in many short
// writes, resuming mid-frame at the exact byte offset each time.
TEST(NetdFrameConn, ShortWritesResumeMidFrame) {
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  MakeNonBlocking(fds[0]);
  MakeNonBlocking(fds[1]);
  FrameConn a(fds[0]);
  FrameConn b(fds[1]);

  // ~480 KB of trace payload: no socketpair buffer holds that at once.
  std::vector<TraceEvent> events(20000);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].req_id = i;
    events[i].detail = i * 3;
    events[i].node = static_cast<NodeId>(i % 97);
    events[i].seq = static_cast<std::uint16_t>(i % 7);
    events[i].kind = TraceEventKind::kArrival;
    events[i].aux = static_cast<std::uint8_t>(i);
  }
  a.Send(events);
  EXPECT_TRUE(a.want_write()) << "the frame should not fit in one write";

  std::vector<WireMessage> got;
  const auto collect = [&](const WireMessage& m) { got.push_back(m); };
  int rounds = 0;
  while (got.empty()) {
    ASSERT_TRUE(a.Flush());
    ASSERT_TRUE(b.OnReadable(collect));
    ASSERT_LT(++rounds, 100000) << "frame never completed";
  }
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].type, MsgType::kTraceReply);
  ASSERT_EQ(got[0].trace.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    ASSERT_EQ(got[0].trace[i], events[i]) << "record " << i;
  EXPECT_EQ(a.outbox_bytes(), 0u);
  EXPECT_GT(a.outbox_peak(), std::size_t{1} << 17);
}

TEST(NetdSegments, FleetOfSegmentPlanesMatchesOracleExactly) {
  const Cluster c = MakeCluster(260, 10, 4, 30000);
  const ServingMetrics oracle = ReplayOracle(c.config);
  const ServingMetrics fleet = SumMetrics(RunSegmentFleet(c));
  EXPECT_EQ(fleet, oracle);
  EXPECT_EQ(fleet.requests, c.config.total_requests);
  EXPECT_GT(fleet.cache_served, 0u);
  EXPECT_GT(fleet.home_served, 0u);
}

TEST(NetdSegments, FaultedFleetMatchesOracleIncludingFailovers) {
  Cluster c = MakeCluster(260, 10, 4, 30000);
  // Crash a popular subtree root (the first non-root internal node):
  // walks through it must fail over past it, in fleet and oracle alike.
  for (const NodeId v : c.tree.preorder())
    if (!c.tree.is_root(v) && !c.tree.is_leaf(v)) {
      c.config.down.push_back(v);
      break;
    }
  ASSERT_FALSE(c.config.down.empty());
  const ServingMetrics oracle = ReplayOracle(c.config);
  const ServingMetrics fleet = SumMetrics(RunSegmentFleet(c));
  EXPECT_EQ(fleet, oracle);
  EXPECT_GT(fleet.failovers, 0u);
  EXPECT_GT(fleet.failed_attempts, 0u);
}

TEST(NetdSegments, DropsMatchOracleWhenRetryBudgetExhausts) {
  Cluster c = MakeCluster(260, 10, 4, 30000);
  // Crash a chain of ancestors deeper than the retry budget.
  NodeId deep = 0;
  for (const NodeId v : c.tree.preorder())
    if (c.tree.depth(v) > c.tree.depth(deep)) deep = v;
  ASSERT_GE(c.tree.depth(deep), 3);
  for (NodeId v = deep; !c.tree.is_root(v); v = c.tree.parent(v))
    c.config.down.push_back(v);
  c.config.serving.max_failover_attempts =
      static_cast<int>(c.config.down.size()) - 1;
  const ServingMetrics oracle = ReplayOracle(c.config);
  const ServingMetrics fleet = SumMetrics(RunSegmentFleet(c));
  EXPECT_EQ(fleet, oracle);
  EXPECT_GT(fleet.dropped_requests, 0u);
}

TEST(NetdCluster, ForkedFleetOverLoopbackMatchesOracle) {
  const Cluster c = MakeCluster(200, 8, 4, 20000);
  const NetdRunResult run = RunNetdCluster(c.config);
  ASSERT_TRUE(run.ok);
  const ServingMetrics oracle = ReplayOracle(c.config);
  EXPECT_TRUE(ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)));
  EXPECT_EQ(run.client_served + run.client_dropped, c.config.total_requests);
  EXPECT_EQ(run.client_served, oracle.requests - oracle.dropped_requests);
  EXPECT_EQ(run.client_hop_sum, oracle.hop_sum);
  EXPECT_GT(run.fleet.net_forwards, 0u);
  ASSERT_EQ(run.per_server.size(), 4u);
}

TEST(NetdSegments, SegmentFleetTraceMatchesOracleRecordForRecord) {
  Cluster c = MakeCluster(260, 10, 4, 30000);
  c.config.serving.trace = true;
  c.config.serving.trace_sample_shift = 6;  // ~1/64: a dense traced set
  std::vector<TraceEvent> oracle_trace;
  ReplayOracle(c.config, &oracle_trace);
  std::vector<TraceEvent> fleet_trace;
  RunSegmentFleet(c, &fleet_trace);
  ASSERT_GT(oracle_trace.size(), 100u);
  ASSERT_EQ(fleet_trace.size(), oracle_trace.size());
  for (std::size_t i = 0; i < oracle_trace.size(); ++i)
    ASSERT_EQ(fleet_trace[i], oracle_trace[i]) << "record " << i;
}

TEST(NetdSegments, FaultedSegmentFleetTraceMatchesOracle) {
  Cluster c = MakeCluster(260, 10, 4, 30000);
  c.config.serving.trace = true;
  c.config.serving.trace_sample_shift = 5;
  for (const NodeId v : c.tree.preorder())
    if (!c.tree.is_root(v) && !c.tree.is_leaf(v)) {
      c.config.down.push_back(v);
      break;
    }
  ASSERT_FALSE(c.config.down.empty());
  std::vector<TraceEvent> oracle_trace;
  ReplayOracle(c.config, &oracle_trace);
  std::vector<TraceEvent> fleet_trace;
  RunSegmentFleet(c, &fleet_trace);
  ASSERT_EQ(fleet_trace.size(), oracle_trace.size());
  bool saw_failover = false;
  for (std::size_t i = 0; i < oracle_trace.size(); ++i) {
    ASSERT_EQ(fleet_trace[i], oracle_trace[i]) << "record " << i;
    saw_failover |= oracle_trace[i].kind == TraceEventKind::kFailover;
  }
  EXPECT_TRUE(saw_failover) << "faulted stream should trace failovers";
}

TEST(NetdCluster, ForkedFleetTraceAndScrapesMatchOracle) {
  Cluster c = MakeCluster(200, 8, 4, 20000);
  c.config.serving.trace = true;
  c.config.serving.trace_sample_shift = 6;
  c.config.stats_scrape_period_ms = 2;
  const NetdRunResult run = RunNetdCluster(c.config);
  ASSERT_TRUE(run.ok);

  // The scraped trace records, merged across daemons, equal the oracle's
  // record for record.
  std::vector<TraceEvent> oracle_trace;
  const ServingMetrics oracle = ReplayOracle(c.config, &oracle_trace);
  EXPECT_TRUE(ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)));
  ASSERT_GT(oracle_trace.size(), 0u);
  ASSERT_EQ(run.trace.size(), oracle_trace.size());
  for (std::size_t i = 0; i < oracle_trace.size(); ++i)
    ASSERT_EQ(run.trace[i], oracle_trace[i]) << "record " << i;

  // Live scrapes: the final sample is always present, every per-daemon
  // counter set is monotone sample to sample, and the final sample's
  // fleet sum is exactly the oracle's totals.
  ASSERT_GE(run.samples.size(), 1u);
  for (std::size_t i = 1; i < run.samples.size(); ++i) {
    EXPECT_LE(run.samples[i - 1].at_completed, run.samples[i].at_completed);
    ASSERT_EQ(run.samples[i].per_server.size(), run.per_server.size());
    for (std::size_t s = 0; s < run.per_server.size(); ++s)
      EXPECT_TRUE(CountersMonotone(run.samples[i - 1].per_server[s],
                                   run.samples[i].per_server[s]))
          << "sample " << i << " server " << s;
  }
  const NetdStatsSample& last = run.samples.back();
  EXPECT_EQ(last.at_completed, c.config.total_requests);
  EXPECT_TRUE(ServingCountersEqual(SumCounters(last.per_server),
                                   CountersFromMetrics(oracle)));
}

TEST(NetdCluster, ForkedFaultedFleetMatchesOracle) {
  Cluster c = MakeCluster(200, 8, 4, 20000);
  for (const NodeId v : c.tree.preorder())
    if (!c.tree.is_root(v) && !c.tree.is_leaf(v)) {
      c.config.down.push_back(v);
      break;
    }
  const NetdRunResult run = RunNetdCluster(c.config);
  ASSERT_TRUE(run.ok);
  const ServingMetrics oracle = ReplayOracle(c.config);
  EXPECT_TRUE(ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)));
  EXPECT_GT(run.fleet.failovers, 0u);
}

// Cumulative kills/restarts of a plan through the boundary *entering*
// epoch e (inclusive) — for lining retired scrapes up with barriers.
std::size_t KillsThrough(const ProcessFaultPlan& plan, int e) {
  std::size_t n = 0;
  for (int k = 0; k <= e; ++k)
    n += plan.kill_at[static_cast<std::size_t>(k)].size();
  return n;
}

std::size_t RestartsThrough(const ProcessFaultPlan& plan, int e) {
  std::size_t n = 0;
  for (int k = 0; k <= e; ++k)
    n += plan.restart_at[static_cast<std::size_t>(k)].size();
  return n;
}

TEST(NetdCluster, MultiEpochFleetMatchesOracleWithoutFaults) {
  Cluster c = MakeCluster(200, 8, 4, 0);
  EpochPlanOptions opt;
  opt.epochs = 3;
  opt.requests_per_epoch = 6000;
  opt.inject_faults = false;
  BuildEpochPlan(&c.config, opt);
  // Exercise the load-reactive window: pacing only, so every counter
  // must still match the oracle exactly.
  c.config.load_window_factor = 4.0;

  const NetdRunResult run = RunNetdCluster(c.config);
  ASSERT_TRUE(run.ok);
  std::vector<WireCounters> per_epoch;
  const ServingMetrics oracle = ReplayOracle(c.config, nullptr, &per_epoch);
  EXPECT_TRUE(ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)));
  EXPECT_EQ(run.client_served + run.client_dropped, c.config.total_requests);
  EXPECT_EQ(run.fleet.shed_forwards, 0u);
  EXPECT_TRUE(run.retired.empty());
  EXPECT_TRUE(run.rejoin_hello_epochs.empty());

  // One quiesced barrier sample per transition, each summing exactly to
  // the oracle's cumulative counters after the epoch it closes.
  ASSERT_EQ(per_epoch.size(), 3u);
  ASSERT_EQ(run.epoch_samples.size(), 2u);
  for (std::size_t i = 0; i < run.epoch_samples.size(); ++i) {
    EXPECT_TRUE(ServingCountersEqual(
        SumCounters(run.epoch_samples[i].per_server), per_epoch[i]))
        << "barrier sample " << i;
  }
  // The final epoch's cumulative counters are the run totals.
  EXPECT_TRUE(ServingCountersEqual(per_epoch.back(),
                                   CountersFromMetrics(oracle)));
}

// The headline: a fleet that loses daemons to SIGKILL mid-run and
// re-forks them serves the identical integer counters as the in-process
// oracle replaying the same epoch plan — bit for bit, across the kill,
// and again after restart + delta re-sync.
TEST(NetdCluster, KilledAndRestartedFleetMatchesOracleBitForBit) {
  Cluster c = MakeCluster(200, 8, 4, 0);
  EpochPlanOptions opt;
  opt.epochs = 5;
  opt.requests_per_epoch = 4000;
  opt.faults.pattern = FaultPattern::kSingleNodes;
  opt.faults.crash_fraction = 0.4;
  opt.faults.outage_epochs = 1;
  opt.faults.start_epoch = 1;

  // The schedule is a pure (seed, server, epoch) function; probe for the
  // first seed whose draw has at least one kill AND one restart, so the
  // scenario is guaranteed whatever the hash does.  (The oracle identity
  // holds for any plan; the probe only pins scenario coverage.)
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s <= 64 && seed == 0; ++s) {
    FaultScheduleOptions probe = opt.faults;
    probe.seed = s;
    const ProcessFaultPlan p = BuildProcessFaultPlan(4, opt.epochs, probe);
    if (KillsThrough(p, opt.epochs - 1) >= 1 &&
        RestartsThrough(p, opt.epochs - 1) >= 1)
      seed = s;
  }
  ASSERT_NE(seed, 0u) << "no seed in 1..64 yields a kill and a restart";
  opt.faults.seed = seed;
  const ProcessFaultPlan plan = BuildEpochPlan(&c.config, opt);
  ASSERT_TRUE(plan.any);
  const std::size_t kills = KillsThrough(plan, opt.epochs - 1);
  const std::size_t restarts = RestartsThrough(plan, opt.epochs - 1);

  c.config.serving.trace = true;
  c.config.serving.trace_sample_shift = 6;

  const NetdRunResult run = RunNetdCluster(c.config);
  ASSERT_TRUE(run.ok);

  std::vector<TraceEvent> oracle_trace;
  std::vector<WireCounters> per_epoch;
  const ServingMetrics oracle =
      ReplayOracle(c.config, &oracle_trace, &per_epoch);

  // The sum law across faults: live finals + pre-kill scrapes == oracle.
  EXPECT_TRUE(ServingCountersEqual(run.fleet, CountersFromMetrics(oracle)));
  EXPECT_EQ(run.client_served + run.client_dropped, c.config.total_requests);
  ASSERT_EQ(run.retired.size(), kills);
  ASSERT_EQ(run.rejoin_hello_epochs.size(), restarts);
  // A restarted daemon always rejoins from a fresh boot (epoch 0) and is
  // brought current by the delta re-sync.
  for (const std::uint32_t e : run.rejoin_hello_epochs) EXPECT_EQ(e, 0u);

  // Barrier sample i closes epoch i: its live counters plus every retired
  // scrape taken through that transition equal the oracle's cumulative
  // counters after epoch i.  (Dead slots in a sample stay zero.)
  ASSERT_EQ(run.epoch_samples.size(),
            static_cast<std::size_t>(opt.epochs - 1));
  ASSERT_EQ(per_epoch.size(), static_cast<std::size_t>(opt.epochs));
  for (std::size_t i = 0; i < run.epoch_samples.size(); ++i) {
    std::vector<WireCounters> parts = run.epoch_samples[i].per_server;
    const std::size_t used = KillsThrough(plan, static_cast<int>(i) + 1);
    ASSERT_LE(used, run.retired.size());
    parts.insert(parts.end(), run.retired.begin(),
                 run.retired.begin() + static_cast<std::ptrdiff_t>(used));
    EXPECT_TRUE(ServingCountersEqual(SumCounters(parts), per_epoch[i]))
        << "barrier sample " << i;
  }

  // Trace law across the kill: victim pre-kill dumps + restarted
  // daemons' post-restart events + survivors' final dumps merge to the
  // oracle's record stream exactly, no loss and no double count.
  ASSERT_GT(oracle_trace.size(), 0u);
  ASSERT_EQ(run.trace.size(), oracle_trace.size());
  for (std::size_t i = 0; i < oracle_trace.size(); ++i)
    ASSERT_EQ(run.trace[i], oracle_trace[i]) << "record " << i;

  // Backpressure stayed inside the default watermark (no shedding, every
  // per-daemon outbox peak bounded), and the gossip plane really did
  // reconnect around the dead daemon.
  EXPECT_EQ(run.fleet.shed_forwards, 0u);
  EXPECT_GE(run.fleet.reconnects, 1u);
  for (const WireCounters& s : run.per_server)
    EXPECT_LE(s.outbox_peak_bytes, c.config.outbox_watermark_bytes);
  for (const WireCounters& s : run.retired)
    EXPECT_LE(s.outbox_peak_bytes, c.config.outbox_watermark_bytes);
}

// A watermark smaller than one frame forces every cross-shard forward to
// shed: bounded backpressure turns them into clean client-visible drops
// instead of unbounded buffering, and the run still accounts for every
// request.
TEST(NetdCluster, TinyWatermarkShedsForwardsIntoDrops) {
  Cluster c = MakeCluster(200, 8, 4, 20000);
  c.config.outbox_watermark_bytes = 16;
  const NetdRunResult run = RunNetdCluster(c.config);
  ASSERT_TRUE(run.ok);
  EXPECT_GT(run.fleet.shed_forwards, 0u);
  EXPECT_EQ(run.client_served + run.client_dropped, c.config.total_requests);
  EXPECT_GT(run.client_dropped, 0u);
}

}  // namespace
}  // namespace webwave
