// BENCH_*.json artifacts are parsed by CI and later sessions; this keeps
// the hand-rolled emitter honest — full string escaping and no non-finite
// number ever reaching a document.
#include "util/bench_json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace webwave {
namespace {

TEST(BenchJson, RendersFlatRecords) {
  BenchJson json("demo");
  json.BeginRun();
  json.Add("nodes", 1000);
  json.Add("ms", 1.5);
  json.BeginRun();
  json.Add("label", std::string("second"));
  const std::string doc = json.Render();
  EXPECT_NE(doc.find("\"bench\": \"demo\""), std::string::npos);
  EXPECT_NE(doc.find("\"nodes\": 1000"), std::string::npos);
  EXPECT_NE(doc.find("\"ms\": 1.5"), std::string::npos);
  EXPECT_NE(doc.find("\"label\": \"second\""), std::string::npos);
}

TEST(BenchJson, NonFiniteDoublesBecomeNull) {
  BenchJson json("nan");
  json.BeginRun();
  json.Add("a", std::numeric_limits<double>::quiet_NaN());
  json.Add("b", std::numeric_limits<double>::infinity());
  json.Add("c", -std::numeric_limits<double>::infinity());
  json.Add("d", 2.0);
  const std::string doc = json.Render();
  EXPECT_NE(doc.find("\"a\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"b\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"c\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"d\": 2"), std::string::npos);
  // Nothing a JSON parser chokes on may leak through.
  EXPECT_EQ(doc.find("nan,"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
}

TEST(BenchJson, EscapesStrings) {
  BenchJson json("esc");
  json.BeginRun();
  json.Add("s", std::string("a\"b\\c\nd\te\rf\bg\fh"));
  json.Add("ctl", std::string("x\x01y"));
  const std::string doc = json.Render();
  EXPECT_NE(doc.find("a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh"), std::string::npos);
  EXPECT_NE(doc.find("x\\u0001y"), std::string::npos);
  // No raw control byte survives (the document's own newlines are the only
  // bytes below 0x20).
  for (const char c : doc)
    if (c != '\n') EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(BenchJson, DoublesRoundTrip) {
  const double value = 0.1234567890123456789;
  BenchJson json("rt");
  json.BeginRun();
  json.Add("v", value);
  const std::string doc = json.Render();
  const std::size_t at = doc.find("\"v\": ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(std::stod(doc.substr(at + 5)), value);
}

TEST(BenchJson, AddWithoutBeginRunStartsARecord) {
  BenchJson json("implicit");
  json.Add("k", 1);
  EXPECT_NE(json.Render().find("\"k\": 1"), std::string::npos);
}

}  // namespace
}  // namespace webwave
