// The telemetry plane (src/obs/): registry semantics and shard folding,
// the counter-hash trace sampling law, trace bit-identity across thread
// counts and lane blocks, the epoch phase profiler behind a fake clock,
// timeline JSON-lines emission and the Prometheus text exposition.
#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/webwave_batch.h"
#include "fault/fault_projector.h"
#include "fault/fault_schedule.h"
#include "obs/clock.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serve/epoch_driver.h"
#include "serve/request_gen.h"
#include "serve/serving_plane.h"
#include "sim/churn.h"
#include "tree/builders.h"
#include "util/rng.h"
#include "util/worker_pool.h"

namespace webwave {
namespace {

// MetricRegistry ----------------------------------------------------------

TEST(MetricRegistry, RegistrationIsIdempotentAndKindChecked) {
  MetricRegistry reg;
  const auto a = reg.Counter("serve.requests");
  const auto b = reg.Counter("serve.requests");
  EXPECT_EQ(a, b);
  const auto g = reg.Gauge("epoch.dirty_lanes");
  EXPECT_NE(a, g);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(a), "serve.requests");
  EXPECT_EQ(reg.kind(a), MetricRegistry::Kind::kCounter);
  EXPECT_EQ(reg.kind(g), MetricRegistry::Kind::kGauge);
  // Re-registering under the other kind is a programming error.
  EXPECT_THROW(reg.Gauge("serve.requests"), std::invalid_argument);
  EXPECT_THROW(reg.Counter("epoch.dirty_lanes"), std::invalid_argument);
}

TEST(MetricRegistry, CountersAccumulateAndGaugesOverwrite) {
  MetricRegistry reg;
  const auto c = reg.Counter("c");
  const auto g = reg.Gauge("g");
  reg.Add(c, 3);
  reg.Add(c, 4);
  EXPECT_EQ(reg.counter(c), 7u);
  reg.Set(g, -5);
  EXPECT_EQ(reg.gauge(g), -5);
  reg.Set(g, 11);
  EXPECT_EQ(reg.gauge(g), 11);
}

TEST(MetricRegistry, ShardFoldEqualsSerialAtAnyThreadCount) {
  // The delta each (metric, index) contributes — a pure function, so the
  // serial total is the reference no matter how work is partitioned.
  const int kMetrics = 5;
  const std::size_t kItems = 10000;
  const auto delta = [](int m, std::size_t i) {
    std::uint64_t s = 0x9e3779b97f4a7c15ULL * (i + 1) + m;
    return SplitMix64(s) % 17;
  };

  MetricRegistry serial;
  std::vector<MetricRegistry::Id> sids;
  for (int m = 0; m < kMetrics; ++m)
    sids.push_back(serial.Counter("m" + std::to_string(m)));
  for (std::size_t i = 0; i < kItems; ++i)
    for (int m = 0; m < kMetrics; ++m) serial.Add(sids[m], delta(m, i));

  for (const int threads : {1, 2, 8}) {
    MetricRegistry reg;
    std::vector<MetricRegistry::Id> ids;
    for (int m = 0; m < kMetrics; ++m)
      ids.push_back(reg.Counter("m" + std::to_string(m)));
    WorkerPool pool(threads);
    std::vector<MetricRegistry::Shard> shards;
    for (int w = 0; w < pool.thread_count(); ++w)
      shards.push_back(reg.MakeShard());
    pool.ParallelFor(kItems, [&](int worker, std::size_t begin,
                                 std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        for (int m = 0; m < kMetrics; ++m)
          shards[static_cast<std::size_t>(worker)].Add(ids[m], delta(m, i));
    });
    reg.FoldAll(&shards);
    for (int m = 0; m < kMetrics; ++m)
      EXPECT_EQ(reg.counter(ids[m]), serial.counter(sids[m]))
          << "threads " << threads << " metric " << m;
    // Folding zeroes the shards: folding again must be a no-op.
    reg.FoldAll(&shards);
    for (int m = 0; m < kMetrics; ++m)
      EXPECT_EQ(reg.counter(ids[m]), serial.counter(sids[m]));
  }
}

// Trace sampling ----------------------------------------------------------

TEST(TraceSampling, LawIsPureAndDensityTracksTheShift) {
  const std::uint64_t seed = 0x7ace5eedULL;
  // Purity: the same (seed, req_id) always answers the same.
  for (std::uint64_t i = 0; i < 1000; ++i)
    EXPECT_EQ(TraceSampled(seed, i, 14), TraceSampled(seed, i, 14));
  // Degenerate shifts.
  EXPECT_TRUE(TraceSampled(seed, 123, 0));
  EXPECT_TRUE(TraceSampled(seed, 123, -1));
  EXPECT_FALSE(TraceSampled(seed, 123, 64));
  // Density: shift s keeps an expected 1/2^s of the stream.
  const std::uint64_t n = 1 << 16;
  std::uint64_t kept = 0;
  for (std::uint64_t i = 0; i < n; ++i)
    if (TraceSampled(seed, i, 4)) ++kept;
  const double rate = static_cast<double>(kept) / static_cast<double>(n);
  EXPECT_NEAR(rate, 1.0 / 16.0, 0.01);
  // A different seed selects a different set (almost surely).
  std::uint64_t agree = 0;
  for (std::uint64_t i = 0; i < n; ++i)
    if (TraceSampled(seed, i, 4) && TraceSampled(seed + 1, i, 4)) ++agree;
  EXPECT_LT(agree, kept);
}

TEST(TraceSampling, CanonicalizeRestoresReqIdSeqOrder) {
  std::vector<TraceEvent> events;
  for (std::uint64_t r = 0; r < 20; ++r)
    for (std::uint16_t s = 0; s < 3; ++s) {
      TraceEvent e;
      e.req_id = r;
      e.seq = s;
      e.node = static_cast<NodeId>(r + s);
      events.push_back(e);
    }
  std::vector<TraceEvent> shuffled(events.rbegin(), events.rend());
  CanonicalizeTrace(&shuffled);
  ASSERT_EQ(shuffled.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(shuffled[i], events[i]) << "record " << i;
}

// Trace bit-identity ------------------------------------------------------

TEST(ServingTrace, TraceBitIdenticalAcrossThreadsAndLaneBlocks) {
  Rng rng(41);
  const RoutingTree tree = MakeRandomTree(800, rng);
  const int docs = 9;  // ragged against lane_block 4 and 8
  ChurnScheduleOptions copt;
  copt.pattern = ChurnPattern::kRotatingHotSpot;
  copt.doc_count = docs;
  copt.hot_fraction = 0.2;

  FaultScheduleOptions fopt;
  fopt.pattern = FaultPattern::kSingleNodes;
  fopt.crash_fraction = 0.3;
  fopt.outage_epochs = 2;
  fopt.seed = 43;

  std::vector<Request> stream;
  {
    RequestGenerator gen(tree, docs,
                         {ZipfLeafComponent(tree, docs, 2.0, 1.0)}, 77);
    gen.NextBatch(120000, &stream);
  }

  std::vector<std::vector<TraceEvent>> traces;
  std::vector<ServingMetrics> metrics;
  ServingMetrics untraced;
  for (const int threads : {1, 2, 8}) {
    for (const int block : {1, 4, 8}) {
      ChurnSchedule schedule(tree, copt);
      WebWaveOptions wopt;
      wopt.threads = threads;
      wopt.lane_block = block;
      BatchWebWaveSimulator sim(tree, schedule.Lanes(), wopt);
      for (int s = 0; s < 20; ++s) sim.Step();
      sim.ApplyDemandEvents(schedule.NextEvents());
      for (int s = 0; s < 10; ++s) sim.Step();

      FaultSchedule faults(tree, fopt);
      for (int e = 0; e < 3; ++e) faults.NextEvents();

      const QuotaSnapshot base = QuotaSnapshot::FromBatch(sim, 1e-9);
      FaultProjector fp(tree);
      fp.SetDown(
          Span<const NodeId>(faults.down().data(), faults.down().size()));
      fp.Project(base);

      ServingOptions sopt;
      sopt.threads = threads;
      sopt.offered_rate = 1000.0;
      sopt.max_failover_attempts = 1;  // dead chains exhaust it: drops
      sopt.trace = true;
      sopt.trace_sample_shift = 4;  // ~1/16: thousands of traced walks
      ServingPlane plane(tree, fp.clamped(), sopt);
      plane.SetDownNodes(
          Span<const NodeId>(faults.down().data(), faults.down().size()));
      plane.Serve(stream);
      traces.push_back(plane.trace());
      metrics.push_back(plane.metrics());

      if (threads == 1 && block == 1) {
        // The observer-effect check: the same serve untraced must yield
        // identical metrics — tracing reads decisions, never makes them.
        ServingOptions plain = sopt;
        plain.trace = false;
        ServingPlane ref(tree, fp.clamped(), plain);
        ref.SetDownNodes(
            Span<const NodeId>(faults.down().data(), faults.down().size()));
        ref.Serve(stream);
        untraced = ref.metrics();
      }
    }
  }

  ASSERT_GT(traces[0].size(), 1000u);
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_TRUE(metrics[i] == metrics[0]) << "config " << i;
    ASSERT_EQ(traces[i].size(), traces[0].size()) << "config " << i;
    for (std::size_t k = 0; k < traces[0].size(); ++k)
      ASSERT_EQ(traces[i][k], traces[0][k])
          << "config " << i << " record " << k;
  }
  EXPECT_TRUE(untraced == metrics[0])
      << "tracing perturbed the serving decisions";

  // The stream: canonical order, kArrival opens every traced request,
  // exactly the sampled requests appear, and the degraded run traced the
  // failover machinery.
  bool saw_failover = false, saw_drop = false, saw_served = false;
  std::uint64_t last_req = 0;
  std::uint16_t expect_seq = 0;
  for (std::size_t k = 0; k < traces[0].size(); ++k) {
    const TraceEvent& e = traces[0][k];
    EXPECT_TRUE(TraceSampled(0x7ace5eedULL, e.req_id, 4))
        << "unsampled request traced";
    if (k == 0 || e.req_id != last_req) {
      EXPECT_EQ(e.kind, TraceEventKind::kArrival);
      EXPECT_EQ(e.seq, 0);
      last_req = e.req_id;
      expect_seq = 0;
    }
    EXPECT_EQ(e.seq, expect_seq++) << "gap in per-request sequence";
    saw_failover |= e.kind == TraceEventKind::kFailover;
    saw_drop |= e.kind == TraceEventKind::kDropped;
    saw_served |= e.kind == TraceEventKind::kServed;
  }
  EXPECT_TRUE(saw_failover);
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_served);
}

// Epoch phase profiler ----------------------------------------------------

// A clock that advances a fixed step on every read: each profiler phase
// spans exactly two reads, so every phase_ns equals the step.
class SteppingClock final : public MonotonicClock {
 public:
  explicit SteppingClock(std::uint64_t step) : step_(step) {}
  std::uint64_t NowNanos() override { return now_ += step_; }

 private:
  std::uint64_t step_;
  std::uint64_t now_ = 0;
};

TEST(Clock, FakeClockAdvancesByHand) {
  FakeClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.Advance(5);
  EXPECT_EQ(clock.NowNanos(), 5u);
  clock.Set(100);
  EXPECT_EQ(clock.NowNanos(), 100u);
}

TEST(EpochDriver, PhaseProfilerRecordsThroughTheAttachedClockOnly) {
  Rng rng(11);
  const RoutingTree tree = MakeRandomTree(200, rng);
  ChurnScheduleOptions copt;
  copt.doc_count = 4;
  ChurnSchedule schedule(tree, copt);
  BatchWebWaveSimulator sim(tree, schedule.Lanes(), WebWaveOptions{});
  for (int s = 0; s < 10; ++s) sim.Step();

  EpochDriver driver(sim);
  // No clock attached: every phase records zero.
  const EpochDriver::Report cold =
      driver.ApplyEpoch(Span<DemandEvent>(), Span<const FaultEvent>());
  for (int p = 0; p < EpochDriver::kPhaseCount; ++p)
    EXPECT_EQ(cold.phase_ns[p], 0u) << EpochDriver::PhaseName(p);

  SteppingClock clock(7);
  driver.SetClock(&clock);
  const EpochDriver::Report warm =
      driver.ApplyEpoch(Span<DemandEvent>(), Span<const FaultEvent>());
  for (int p = 0; p < EpochDriver::kPhaseCount; ++p)
    EXPECT_EQ(warm.phase_ns[p], 7u) << EpochDriver::PhaseName(p);
}

TEST(EpochDriver, PublishesRegistryAndTimelinePerEpoch) {
  Rng rng(12);
  const RoutingTree tree = MakeRandomTree(200, rng);
  ChurnScheduleOptions copt;
  copt.doc_count = 4;
  ChurnSchedule schedule(tree, copt);
  BatchWebWaveSimulator sim(tree, schedule.Lanes(), WebWaveOptions{});
  for (int s = 0; s < 10; ++s) sim.Step();

  EpochDriver driver(sim);
  MetricRegistry registry;
  Timeline timeline("epoch_timeline");
  driver.AttachRegistry(&registry);
  driver.AttachTimeline(&timeline);
  FakeClock clock;
  driver.SetClock(&clock);

  for (int e = 0; e < 3; ++e) {
    sim.ApplyDemandEvents(schedule.NextEvents());
    driver.ApplyEpoch(Span<DemandEvent>(), Span<const FaultEvent>());
  }
  EXPECT_EQ(driver.epoch_index(), 3u);
  EXPECT_EQ(registry.counter(registry.Counter("epoch.count")), 3u);
  ASSERT_EQ(timeline.record_count(), 3u);
  const std::string line = timeline.RenderLine(2);
  EXPECT_NE(line.find("\"epoch\": 3"), std::string::npos) << line;
  EXPECT_NE(line.find("dirty_lanes"), std::string::npos);
  EXPECT_NE(line.find("phase_ns_diffusion"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one record, one line";

  const std::string path = ::testing::TempDir() + "/obs_timeline_test.jsonl";
  ASSERT_TRUE(timeline.WriteJsonLines(path));
  std::ifstream in(path);
  std::string l;
  int lines = 0;
  while (std::getline(in, l))
    if (!l.empty()) ++lines;
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

// Prometheus exposition ---------------------------------------------------

TEST(PrometheusWriter, RendersTypedGroupedEscapedSamples) {
  EXPECT_EQ(PrometheusWriter::SanitizeName("serve.hop_sum"), "serve_hop_sum");
  EXPECT_EQ(PrometheusWriter::SanitizeName("9lives"), "_9lives");

  MetricRegistry reg;
  reg.Add(reg.Counter("serve.requests"), 42);
  reg.Set(reg.Gauge("epoch.dirty_lanes"), 7);

  PrometheusWriter w;
  w.AddRegistry(reg, {{"server", "0"}});
  w.AddRegistry(reg, {{"server", "1"}});
  w.AddGauge("fleet.load", {{"quote", "a\"b\\c"}}, 1.5);
  const std::string text = w.Render();

  // Counters carry the conventional _total suffix; each name gets exactly
  // one TYPE header even when sampled per-server.
  EXPECT_NE(text.find("# TYPE serve_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("# TYPE serve_requests_total counter"),
            text.rfind("# TYPE serve_requests_total counter"));
  EXPECT_NE(text.find("serve_requests_total{server=\"0\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("serve_requests_total{server=\"1\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE epoch_dirty_lanes gauge"), std::string::npos);
  EXPECT_NE(text.find("epoch_dirty_lanes{server=\"0\"} 7"),
            std::string::npos);
  // Label values escape backslash and quote.
  EXPECT_NE(text.find("fleet_load{quote=\"a\\\"b\\\\c\"} 1.5"),
            std::string::npos)
      << text;
}

// LatencyHistogram --------------------------------------------------------

TEST(LatencyHistogram, BucketLawBracketsEveryValue) {
  // The linear region: unit-width buckets, index == value.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketOf(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketLo(static_cast<int>(v)), v);
  }
  // Bucket lower bounds ascend strictly, and each bucket's lower bound
  // maps back to itself — the boundaries partition the u64 range.
  for (int b = 0; b + 1 < LatencyHistogram::kBucketCount; ++b)
    EXPECT_LT(LatencyHistogram::BucketLo(b), LatencyHistogram::BucketLo(b + 1))
        << "bucket " << b;
  for (int b = 0; b < LatencyHistogram::kBucketCount; ++b)
    EXPECT_EQ(LatencyHistogram::BucketOf(LatencyHistogram::BucketLo(b)), b);
  // A counter-seeded sweep across every magnitude lands inside
  // [BucketLo, BucketHi) (the last bucket's hi saturates, so UINT64_MAX
  // sits on its exclusive bound).
  for (std::uint64_t i = 0; i < 20000; ++i) {
    std::uint64_t s = 0x9e3779b97f4a7c15ULL * (i + 1);
    const std::uint64_t v = SplitMix64(s) >> (i % 64);
    const int b = LatencyHistogram::BucketOf(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kBucketCount);
    EXPECT_GE(v, LatencyHistogram::BucketLo(b));
    EXPECT_TRUE(v < LatencyHistogram::BucketHi(b) ||
                b == LatencyHistogram::kBucketCount - 1)
        << "value " << v;
  }
  EXPECT_EQ(LatencyHistogram::BucketOf(~std::uint64_t{0}),
            LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogram, QuantilesReturnBucketLowerBounds) {
  LatencyHistogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  h.Record(10);
  for (int i = 0; i < 100; ++i) h.Record(1000);
  // 1000 lands in the bucket [992, 1024).
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.sum(), 10u + 100u * 1000u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 10u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 992u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 992u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 992u);
  EXPECT_EQ(h.MaxValueBound(), 1024u);
}

TEST(LatencyHistogram, MergeIsPerBucketIntegerAdd) {
  LatencyHistogram a, b;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    std::uint64_t s = i * 0x9e3779b97f4a7c15ULL + 1;
    a.Record(SplitMix64(s) >> (i % 50));
    std::uint64_t t = i * 0x9e3779b97f4a7c15ULL + 2;
    b.Record(SplitMix64(t) >> ((i + 7) % 50));
  }
  LatencyHistogram merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());
  for (int k = 0; k < LatencyHistogram::kBucketCount; ++k)
    ASSERT_EQ(merged.bucket(k), a.bucket(k) + b.bucket(k)) << "bucket " << k;
}

TEST(LatencyHistogram, SparseFormRoundTripsBitExactly) {
  LatencyHistogram empty;
  EXPECT_TRUE(LatencyHistogram::FromSparse(empty.ToSparse(), empty.sum()) ==
              empty);
  LatencyHistogram h;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    std::uint64_t s = i * 0x9e3779b97f4a7c15ULL + 9;
    h.Record(SplitMix64(s) >> (i % 60));
  }
  const std::vector<LatencyHistogram::SparseEntry> sparse = h.ToSparse();
  // Strictly ascending indices, no zero counts — the canonical encoding.
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_NE(sparse[i].count, 0u);
    if (i > 0) EXPECT_GT(sparse[i].index, sparse[i - 1].index);
  }
  EXPECT_TRUE(LatencyHistogram::FromSparse(sparse, h.sum()) == h);
}

TEST(LatencyHistogram, ShardFoldBitIdenticalAtAnyThreadCount) {
  // The value each stream index contributes — a pure function, so the
  // serial histogram is the reference no matter how work is partitioned.
  const std::size_t kItems = 20000;
  const auto value = [](std::size_t i) {
    std::uint64_t s = 0x9e3779b97f4a7c15ULL * (i + 1) + 3;
    return SplitMix64(s) >> (i % 52);
  };
  LatencyHistogram serial;
  for (std::size_t i = 0; i < kItems; ++i) serial.Record(value(i));

  for (const int threads : {1, 2, 8}) {
    LatencyHistogram h;
    WorkerPool pool(threads);
    std::vector<LatencyHistogram::Shard> shards;
    for (int w = 0; w < pool.thread_count(); ++w)
      shards.push_back(h.MakeShard());
    pool.ParallelFor(kItems, [&](int worker, std::size_t begin,
                                 std::size_t end) {
      for (std::size_t i = begin; i < end; ++i)
        shards[static_cast<std::size_t>(worker)].Record(value(i));
    });
    h.FoldAll(&shards);
    EXPECT_TRUE(h == serial) << "threads " << threads;
    // Folding zeroes the shards: folding again must be a no-op.
    h.FoldAll(&shards);
    EXPECT_TRUE(h == serial) << "threads " << threads;
  }
}

TEST(HistogramRegistry, RegistrationIsIdempotent) {
  HistogramRegistry reg;
  const auto a = reg.Register("netd.serve_time_ns");
  const auto b = reg.Register("netd.serve_time_ns");
  EXPECT_EQ(a, b);
  const auto c = reg.Register("netd.frame_queue_delay_ns");
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.NameOf(a), "netd.serve_time_ns");
  reg.At(a).Record(5);
  EXPECT_EQ(reg.At(a).count(), 1u);
  EXPECT_EQ(reg.At(c).count(), 0u);
}

// FlightRecorder ----------------------------------------------------------

TEST(FlightRecorder, RingWraparoundKeepsTheNewestEvents) {
  FakeClock clock;
  FlightRecorder fr(&clock, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    clock.Advance(100);
    fr.Note(FlightEventKind::kTimerFire, i);
  }
  EXPECT_EQ(fr.recorded(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  EXPECT_EQ(fr.capacity(), 4u);
  const std::vector<FlightEvent> snap = fr.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest -> newest, and exactly the last four notes survive.
  for (std::size_t k = 0; k < 4; ++k) {
    const std::uint64_t i = 6 + k;
    EXPECT_EQ(snap[k].detail, i);
    EXPECT_EQ(snap[k].seq, static_cast<std::uint16_t>(i));
    EXPECT_EQ(snap[k].t_ns, (i + 1) * 100);
    EXPECT_EQ(snap[k].kind,
              static_cast<std::uint8_t>(FlightEventKind::kTimerFire));
  }
}

TEST(FlightRecorder, DumpAndParseRoundTrip) {
  FakeClock clock;
  FlightRecorder fr(&clock, 16);
  clock.Set(1234);
  fr.Note(FlightEventKind::kBoot, 3);
  clock.Advance(1000);
  fr.Note(FlightEventKind::kFrameIn, 42, 10);
  clock.Advance(1);
  fr.Note(FlightEventKind::kFrameOut, 42, 11);
  fr.Note(FlightEventKind::kConnDown, 2, 1);
  fr.Note(FlightEventKind::kShutdown, 3);

  const std::string text = fr.Dump(3);
  std::vector<FlightEvent> parsed;
  ASSERT_TRUE(FlightRecorder::Parse(text, &parsed));
  std::vector<FlightEvent> want = fr.Snapshot();
  for (FlightEvent& e : want) e.node = 3;  // Dump stamps provenance
  ASSERT_EQ(parsed.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(parsed[i], want[i]) << "line " << i;

  EXPECT_FALSE(FlightRecorder::Parse("not a flight line\n", &parsed));
}

TEST(FlightRecorder, ContentIsAPureFunctionOfTheEventSequence) {
  // Behind a FakeClock the ring's bytes are fully determined by the
  // note sequence: two recorders fed identically dump identical text.
  const auto drive = [](FlightRecorder* fr, FakeClock* clock) {
    for (std::uint64_t i = 0; i < 300; ++i) {
      clock->Advance(7 + i % 13);
      fr->Note(static_cast<FlightEventKind>(1 + i % 8), i,
               static_cast<std::uint32_t>(i % 5));
    }
  };
  FakeClock c1, c2;
  FlightRecorder a(&c1, 64), b(&c2, 64);
  drive(&a, &c1);
  drive(&b, &c2);
  EXPECT_EQ(a.Dump(5), b.Dump(5));
  ASSERT_EQ(a.Snapshot().size(), 64u);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(a.Snapshot()[i], b.Snapshot()[i]);
}

// Prometheus histogram exposition -----------------------------------------

TEST(PrometheusWriter, HistogramExpositionMatchesHandWrittenGolden) {
  // 3 twice (bucket [3,4)), 100 once ([100,104)), 5000 once ([4864,5120)).
  LatencyHistogram h;
  h.Record(3);
  h.Record(3);
  h.Record(100);
  h.Record(5000);
  PrometheusWriter w;
  w.AddHistogram("netd.serve_time_ns", {{"server", "0"}}, h);
  const std::string golden =
      "# TYPE netd_serve_time_ns histogram\n"
      "netd_serve_time_ns_bucket{server=\"0\",le=\"4\"} 2\n"
      "netd_serve_time_ns_bucket{server=\"0\",le=\"104\"} 3\n"
      "netd_serve_time_ns_bucket{server=\"0\",le=\"5120\"} 4\n"
      "netd_serve_time_ns_bucket{server=\"0\",le=\"+Inf\"} 4\n"
      "netd_serve_time_ns_sum{server=\"0\"} 5106\n"
      "netd_serve_time_ns_count{server=\"0\"} 4\n";
  EXPECT_EQ(w.Render(), golden);
}

TEST(PrometheusWriter, HistogramFamiliesGroupUnderOneTypeHeader) {
  LatencyHistogram a, b;
  a.Record(1);
  b.Record(2);
  PrometheusWriter w;
  w.AddGauge("fleet.load", {}, 2.0);
  w.AddHistogram("netd.serve_time_ns", {{"server", "0"}}, a);
  w.AddHistogram("netd.serve_time_ns", {{"server", "1"}}, b);
  const std::string text = w.Render();
  // One histogram TYPE header even when sampled per-server, and the
  // scalar section renders ahead of the histogram families.
  const std::string header = "# TYPE netd_serve_time_ns histogram";
  EXPECT_NE(text.find(header), std::string::npos) << text;
  EXPECT_EQ(text.find(header), text.rfind(header)) << text;
  EXPECT_NE(text.find("netd_serve_time_ns_bucket{server=\"0\",le=\"2\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("netd_serve_time_ns_bucket{server=\"1\",le=\"3\"} 1"),
            std::string::npos)
      << text;
  EXPECT_LT(text.find("# TYPE fleet_load gauge"), text.find(header));
}

}  // namespace
}  // namespace webwave
