// WorkerPool: the deterministic static partition must tile the index
// range exactly, every index must be visited exactly once per sweep, and
// the pool must be reusable across many sweeps — the properties the
// batch simulator's bit-identical-at-any-thread-count guarantee rests on.
#include "util/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace webwave {
namespace {

TEST(WorkerPoolPartition, TilesTheRangeExactly) {
  for (const std::size_t count : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul}) {
    for (const int parts : {1, 2, 3, 8, 16}) {
      std::size_t expected_begin = 0;
      for (int p = 0; p < parts; ++p) {
        std::size_t begin = 0, end = 0;
        WorkerPool::Partition(count, parts, p, &begin, &end);
        EXPECT_EQ(begin, expected_begin) << count << "/" << parts << "#" << p;
        EXPECT_LE(begin, end);
        // Balanced: block sizes differ by at most one.
        EXPECT_LE(end - begin, count / static_cast<std::size_t>(parts) + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, count);
    }
  }
}

TEST(WorkerPoolPartition, RejectsOutOfRangeBlocks) {
  std::size_t b = 0, e = 0;
  EXPECT_THROW(WorkerPool::Partition(10, 0, 0, &b, &e),
               std::invalid_argument);
  EXPECT_THROW(WorkerPool::Partition(10, 4, 4, &b, &e),
               std::invalid_argument);
  EXPECT_THROW(WorkerPool::Partition(10, 4, -1, &b, &e),
               std::invalid_argument);
}

TEST(WorkerPool, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    WorkerPool pool(threads);
    ASSERT_EQ(pool.thread_count(), threads);
    const std::size_t count = 10007;  // prime: uneven blocks everywhere
    std::vector<std::atomic<int>> visits(count);
    for (auto& v : visits) v.store(0);
    pool.ParallelFor(count, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(visits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(WorkerPool, WorkerIndicesMatchTheStaticPartition) {
  WorkerPool pool(4);
  const std::size_t count = 97;
  std::vector<int> owner(count, -1);
  pool.ParallelFor(count, [&](int worker, std::size_t begin,
                              std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) owner[i] = worker;
  });
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t begin = 0, end = 0;
    WorkerPool::Partition(count, 4, owner[i], &begin, &end);
    EXPECT_TRUE(begin <= i && i < end) << "i=" << i << " owner=" << owner[i];
  }
}

TEST(WorkerPool, ReusableAcrossManySweepsAndEmptyRanges) {
  WorkerPool pool(3);
  long long total = 0;
  for (int sweep = 0; sweep < 200; ++sweep) {
    std::atomic<long long> sum{0};
    const std::size_t count = static_cast<std::size_t>(sweep % 7);  // incl. 0
    pool.ParallelFor(count, [&](int, std::size_t begin, std::size_t end) {
      long long local = 0;
      for (std::size_t i = begin; i < end; ++i)
        local += static_cast<long long>(i) + 1;
      sum.fetch_add(local);
    });
    const long long n = static_cast<long long>(count);
    ASSERT_EQ(sum.load(), n * (n + 1) / 2) << "sweep " << sweep;
    total += sum.load();
  }
  EXPECT_GT(total, 0);
}

TEST(WorkerPool, MoreThreadsThanWork) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(3, [&](int, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(WorkerPool, RethrowsTheFirstWorkerExceptionAndStaysUsable) {
  for (const int threads : {1, 2, 4}) {
    WorkerPool pool(threads);
    // Every range throws; exactly one exception must surface, on the
    // submitting thread, after the sweep has fully quiesced.
    auto boom = [](int, std::size_t begin, std::size_t) {
      throw std::runtime_error("boom " + std::to_string(begin));
    };
    EXPECT_THROW(pool.ParallelFor(64, boom), std::runtime_error)
        << "threads=" << threads;

    // The error must not poison the pool: the next sweep runs normally…
    std::atomic<long long> sum{0};
    pool.ParallelFor(100, [&](int, std::size_t begin, std::size_t end) {
      long long local = 0;
      for (std::size_t i = begin; i < end; ++i)
        local += static_cast<long long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 99ll * 100 / 2) << "threads=" << threads;

    // …and a later throwing sweep reports its own error, not a stale one.
    EXPECT_THROW(pool.ParallelFor(8, boom), std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(WorkerPool, ThrowingSweepStillVisitsIndependentRanges) {
  // One range throws; the others' work is not discarded (the sweep always
  // quiesces before rethrowing, so completed ranges have fully executed).
  WorkerPool pool(4);
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> visits(count);
  for (auto& v : visits) v.store(0);
  EXPECT_THROW(
      pool.ParallelFor(count,
                       [&](int, std::size_t begin, std::size_t end) {
                         if (begin == 0) throw std::runtime_error("range 0");
                         for (std::size_t i = begin; i < end; ++i)
                           visits[i].fetch_add(1);
                       }),
      std::runtime_error);
  int visited = 0;
  for (auto& v : visits) visited += v.load();
  // All ranges except the throwing worker's ran to completion.
  std::size_t begin = 0, end = 0;
  WorkerPool::Partition(count, 4, 0, &begin, &end);
  EXPECT_EQ(visited, static_cast<int>(count - (end - begin)));
}

TEST(WorkerPool, DefaultPicksAtLeastOneThread) {
  WorkerPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
  std::atomic<int> ran{0};
  pool.ParallelFor(1, [&](int, std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace webwave
