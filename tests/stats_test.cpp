// Unit tests for summaries, regression fits and the Zipf sampler.
#include "stats/fit.h"
#include "stats/summary.h"
#include "stats/zipf.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

TEST(Summary, BasicMoments) {
  const Summary s = Summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
}

TEST(Summary, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const Summary s = Summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7);
  EXPECT_DOUBLE_EQ(s.variance, 0);
}

TEST(Summary, Quantiles) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Quantile(v, 1), 5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2);
}

TEST(Summary, Distances) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5);
  EXPECT_DOUBLE_EQ(MaxAbsDifference({1, 5}, {4, 3}), 3);
}

TEST(Summary, FairnessIndices) {
  EXPECT_DOUBLE_EQ(JainFairness({4, 4, 4, 4}), 1.0);
  EXPECT_NEAR(JainFairness({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({2, 2, 2}), 0);
}

TEST(LinearFitTest, ExactLine) {
  const LinearFit f = FitLinear({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(f.slope, 2, 1e-12);
  EXPECT_NEAR(f.intercept, 1, 1e-12);
  EXPECT_NEAR(f.r_squared, 1, 1e-12);
}

TEST(ExponentialFitTest, RecoversExactDecay) {
  // y = 3 · 0.85^t, no noise: both parameters must come back tight.
  std::vector<double> y;
  for (int t = 0; t < 40; ++t) y.push_back(3.0 * std::pow(0.85, t));
  const ExponentialFit fit = FitExponential(y);
  EXPECT_NEAR(fit.gamma, 0.85, 1e-6);
  EXPECT_NEAR(fit.a, 3.0, 1e-5);
  EXPECT_LT(fit.rss, 1e-10);
}

TEST(ExponentialFitTest, RecoversUnderNoise) {
  Rng rng(17);
  std::vector<double> y;
  for (int t = 0; t < 60; ++t)
    y.push_back(10.0 * std::pow(0.9, t) * (1.0 + 0.05 * (rng.NextDouble() - 0.5)));
  const ExponentialFit fit = FitExponential(y);
  EXPECT_NEAR(fit.gamma, 0.9, 0.01);
  EXPECT_GT(fit.stderr_gamma, 0);
  EXPECT_LT(fit.stderr_gamma, 0.05) << "SE should be small for 60 points";
}

TEST(ExponentialFitTest, ToleratesZeroTail) {
  // Trajectories that hit exactly zero (converged runs) must still fit.
  std::vector<double> y;
  for (int t = 0; t < 20; ++t) y.push_back(5.0 * std::pow(0.5, t));
  for (int t = 0; t < 10; ++t) y.push_back(0.0);
  const ExponentialFit fit = FitExponential(y);
  EXPECT_NEAR(fit.gamma, 0.5, 0.05);
}

TEST(ExponentialFitTest, RejectsTooFewPoints) {
  EXPECT_THROW(FitExponential({1.0, 0.5}), std::invalid_argument);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, PmfRatiosMatchPowerLaw) {
  const double s = GetParam();
  const ZipfDistribution zipf(100, s);
  // p(k) / p(2k) should equal 2^s for a power law.
  for (const int k : {1, 5, 20}) {
    const double ratio = zipf.pmf(k - 1) / zipf.pmf(2 * k - 1);
    EXPECT_NEAR(ratio, std::pow(2.0, s), 1e-9) << "k=" << k;
  }
  double total = 0;
  for (int k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfTest, SampleFrequenciesTrackPmf) {
  const double s = GetParam();
  const ZipfDistribution zipf(20, s);
  Rng rng(123);
  std::vector<int> counts(20, 0);
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (int k = 0; k < 5; ++k) {
    const double expected = zipf.pmf(k) * kSamples;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 5)
        << "rank " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.0, 0.8, 1.0, 1.5));

TEST(ZipfTest, RatesForTotalSumToTotal) {
  const ZipfDistribution zipf(10, 1.0);
  const auto rates = zipf.RatesForTotal(500);
  double sum = 0;
  for (const double r : rates) sum += r;
  EXPECT_NEAR(sum, 500, 1e-9);
  EXPECT_GT(rates[0], rates[9]) << "rank 1 must be hotter than rank 10";
}

TEST(RngTest, DeterministicAndDistinctStreams) {
  Rng a(5), b(5), c(6);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  Rng fork = a.Fork();
  EXPECT_NE(fork.Next(), a.Next());
}

TEST(RngTest, UniformMomentsSane) {
  Rng rng(11);
  double sum = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(13);
  for (const double mean : {0.5, 4.0, 80.0}) {
    double sum = 0;
    const int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / kSamples, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(29);
  double sum = 0;
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
    const auto v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

}  // namespace
}  // namespace webwave
