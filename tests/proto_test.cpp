// Tests for the packet-level machinery: filters, cache servers, the
// event-driven simulation and the rate-level baselines.
#include "core/load_model.h"
#include "core/webfold.h"
#include "doc/catalog.h"
#include "proto/baselines.h"
#include "proto/cache_server.h"
#include "proto/packet_filter.h"
#include "proto/packet_sim.h"
#include "stats/summary.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

TEST(PacketFilterTest, InstallMatchIntercept) {
  PacketFilter f(10);
  EXPECT_FALSE(f.Matches(3));
  f.Install(3, 0.5);
  EXPECT_TRUE(f.Matches(3));
  EXPECT_EQ(f.rule_count(), 1);
  EXPECT_TRUE(f.Intercept(3, 0.4));
  EXPECT_FALSE(f.Intercept(3, 0.6));
  EXPECT_FALSE(f.Intercept(2, 0.0));
  f.Install(3, 2.0);  // clamps to 1
  EXPECT_DOUBLE_EQ(f.fraction(3), 1.0);
  f.Remove(3);
  EXPECT_FALSE(f.Matches(3));
  EXPECT_EQ(f.rule_count(), 0);
}

TEST(CacheServerTest, HomeServesEverything) {
  CacheServer home(0, 4, /*is_home=*/true);
  EXPECT_TRUE(home.IsCached(2));
  EXPECT_TRUE(home.AcceptRequest(2, kNoNode, 0.99));
  EXPECT_EQ(home.copy_count(), 4);
}

TEST(CacheServerTest, QuotaDrivesFilterFraction) {
  CacheServer server(1, 2, false);
  server.StoreCopy(0);
  server.SetQuota(0, 5.0);
  // Feed a window: 10 arrivals/sec for doc 0.
  for (int i = 0; i < 10; ++i) server.AcceptRequest(0, kNoNode, 0.0);
  server.RollWindow(1.0, 1.0);
  server.RefreshFilter();
  EXPECT_NEAR(server.filter().fraction(0), 0.5, 1e-9)
      << "quota 5 over arrival 10";
  EXPECT_FALSE(server.filter().Matches(1)) << "uncached doc has no rule";
}

TEST(CacheServerTest, EwmaTracksChildArrivals) {
  CacheServer server(1, 2, false);
  for (int i = 0; i < 6; ++i) server.AcceptRequest(1, /*from_child=*/7, 0.0);
  server.RollWindow(2.0, 1.0);
  EXPECT_NEAR(server.child_arrival_rate(7, 1), 3.0, 1e-9);
  EXPECT_NEAR(server.arrival_rate(1), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(server.child_arrival_rate(9, 1), 0.0);
}

TEST(CacheServerTest, GossipEstimates) {
  CacheServer server(1, 2, false);
  EXPECT_DOUBLE_EQ(server.NeighborLoad(5), 0.0);
  server.RecordNeighborLoad(5, 42.0);
  EXPECT_DOUBLE_EQ(server.NeighborLoad(5), 42.0);
}

// --- rate-level baselines ------------------------------------------------

TEST(BaselinesTest, NoCachingConcentratesAtRoot) {
  const RoutingTree t = MakeKaryTree(2, 2);
  std::vector<double> spont(t.size(), 5.0);
  const auto load = NoCachingLoad(t, spont);
  EXPECT_DOUBLE_EQ(load[t.root()], 5.0 * t.size());
  for (NodeId v = 1; v < t.size(); ++v) EXPECT_DOUBLE_EQ(load[v], 0.0);
}

TEST(BaselinesTest, EnRouteLruServesHotDocsLow) {
  // One hot doc at a leaf; with capacity >= 1 the leaf's own cache captures
  // it and the home only sees cold traffic.
  const RoutingTree t = MakeChain(3);
  DemandMatrix demand(3, 3);
  demand.set(2, 0, 90);  // hot at leaf
  demand.set(2, 1, 10);
  demand.set(2, 2, 5);
  const auto load1 = EnRouteLruLoad(t, demand, 1);
  EXPECT_DOUBLE_EQ(load1[2], 90) << "leaf retains only the hottest doc";
  EXPECT_DOUBLE_EQ(load1[1], 10) << "next node captures the second doc";
  EXPECT_DOUBLE_EQ(load1[0], 5);
  const auto load0 = EnRouteLruLoad(t, demand, 0);
  EXPECT_DOUBLE_EQ(load0[0], 105) << "no capacity = no caching";
}

TEST(BaselinesTest, ThroughputAndIdleUnderCapacity) {
  const std::vector<double> loads = {100, 10, 10, 0};
  EXPECT_DOUBLE_EQ(CappedThroughput(loads, 30), 30 + 10 + 10 + 0);
  EXPECT_NEAR(IdleFraction(loads, 30), 1.0 - 50.0 / 120.0, 1e-12);
  // Perfectly balanced load at capacity has zero idle.
  EXPECT_NEAR(IdleFraction({30, 30, 30, 30}, 30), 0.0, 1e-12);
}

// --- end-to-end packet simulations ---------------------------------------

struct PolicyCase {
  CachePolicy policy;
};

class PacketSimPolicies : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PacketSimPolicies, ServesAllRequestsAndReportsSaneMetrics) {
  Rng rng(23);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 6, 40, 1.0, rng);
  PacketSimOptions opt;
  opt.policy = GetParam().policy;
  opt.duration = 20 * kMicrosPerSecond;
  opt.warmup = 4 * kMicrosPerSecond;
  opt.seed = 5;
  const PacketSimReport report = PacketSim(t, demand, opt).Run();
  EXPECT_GT(report.total_requests, 1000u);
  // Requests in flight at the end may be unserved; allow a small gap.
  EXPECT_GE(report.served_requests + 50, report.total_requests);
  EXPECT_GE(report.mean_hit_depth, 0.0);
  EXPECT_LE(report.mean_hit_depth, t.height() + 1.0);
  const double measured_total = TotalRate(report.measured_loads);
  const double offered = demand.Total();
  EXPECT_NEAR(measured_total, offered, 0.15 * offered)
      << "measured service rate should match offered load";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PacketSimPolicies,
    ::testing::Values(PolicyCase{CachePolicy::kNoCaching},
                      PolicyCase{CachePolicy::kEnRouteLru},
                      PolicyCase{CachePolicy::kIcpLike},
                      PolicyCase{CachePolicy::kWebWave}));

TEST(PacketSimShapes, NoCachingPutsAllLoadAtHome) {
  Rng rng(29);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 4, 30, 1.0, rng);
  PacketSimOptions opt;
  opt.policy = CachePolicy::kNoCaching;
  opt.duration = 10 * kMicrosPerSecond;
  opt.warmup = 2 * kMicrosPerSecond;
  const PacketSimReport report = PacketSim(t, demand, opt).Run();
  const double total = TotalRate(report.measured_loads);
  EXPECT_GT(report.measured_loads[t.root()], 0.95 * total);
  EXPECT_NEAR(report.mean_hit_depth, t.height(), 0.3)
      << "every request walks the full path";
  EXPECT_EQ(report.control_messages, 0u);
}

TEST(PacketSimShapes, WebWaveBalancesBetterThanNoCaching) {
  Rng rng(31);
  const RoutingTree t = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(t, 8, 40, 1.0, rng);
  PacketSimOptions opt;
  opt.duration = 40 * kMicrosPerSecond;
  opt.warmup = 20 * kMicrosPerSecond;
  opt.seed = 11;

  opt.policy = CachePolicy::kNoCaching;
  const auto none = PacketSim(t, demand, opt).Run();
  opt.policy = CachePolicy::kWebWave;
  const auto wave = PacketSim(t, demand, opt).Run();

  EXPECT_LT(CoefficientOfVariation(wave.measured_loads),
            CoefficientOfVariation(none.measured_loads))
      << "WebWave must spread load more evenly";
  EXPECT_LT(wave.mean_hit_depth, none.mean_hit_depth)
      << "copies en route shorten the path";
}

TEST(PacketSimShapes, IcpPaysDiscoveryMessages) {
  // ICP-like discovery costs messages per *request*; WebWave gossip costs
  // messages per *period*.  With a realistic request volume and a small
  // LRU (high miss rate), the per-request overhead gap must show.
  Rng rng(37);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 12, 200, 1.0, rng);
  PacketSimOptions opt;
  opt.duration = 20 * kMicrosPerSecond;
  opt.warmup = 4 * kMicrosPerSecond;
  opt.lru_capacity = 2;
  opt.gossip_period = 500 * kMicrosPerMilli;

  opt.policy = CachePolicy::kIcpLike;
  const auto icp = PacketSim(t, demand, opt).Run();
  opt.policy = CachePolicy::kWebWave;
  const auto wave = PacketSim(t, demand, opt).Run();

  EXPECT_GT(icp.control_messages_per_request, 0.3)
      << "ICP queries neighbors on misses";
  EXPECT_LT(wave.control_messages_per_request,
            icp.control_messages_per_request)
      << "WebWave's gossip is periodic, not per-request";
}

TEST(PacketSimShapes, WebWaveApproachesTlbDistance) {
  Rng rng(41);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 6, 60, 1.0, rng);
  const WebFoldResult target = WebFold(t, demand.NodeTotals());
  PacketSimOptions opt;
  opt.policy = CachePolicy::kWebWave;
  opt.duration = 60 * kMicrosPerSecond;
  opt.warmup = 5 * kMicrosPerSecond;
  opt.seed = 3;
  const PacketSimReport report =
      PacketSim(t, demand, opt, target.load).Run();
  ASSERT_GT(report.distance_trajectory.size(), 20u);
  // The cold-start state (home serves everything) is far from TLB; the
  // EWMA-load trajectory must come down substantially as copies spread.
  double head = 0, tail = 0;
  const std::size_t k = 5;
  for (std::size_t i = 0; i < k; ++i) {
    head += report.distance_trajectory[i + 1];  // skip the all-zero EWMA start
    tail += report.distance_trajectory[report.distance_trajectory.size() - 1 - i];
  }
  EXPECT_LT(tail, 0.5 * head)
      << "measured loads must drift toward the TLB assignment";
}

TEST(PacketSimShapes, NetworkTrafficAccountedAndLowerWithCaching) {
  Rng rng(43);
  const RoutingTree t = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(t, 8, 60, 1.0, rng);
  PacketSimOptions opt;
  opt.duration = 20 * kMicrosPerSecond;
  opt.warmup = 5 * kMicrosPerSecond;
  opt.seed = 9;

  opt.policy = CachePolicy::kNoCaching;
  const auto none = PacketSim(t, demand, opt).Run();
  opt.policy = CachePolicy::kWebWave;
  const auto wave = PacketSim(t, demand, opt).Run();

  EXPECT_GT(none.network_kb, 0);
  EXPECT_GT(none.link_traversals, 0u);
  EXPECT_LT(wave.network_kb_per_request, none.network_kb_per_request)
      << "copies en route must cut bytes moved per request";
}

TEST(PacketSimShapes, PerEdgeTrafficSumsToTotalAndConcentratesAtRootWithoutCaching) {
  Rng rng(53);
  const RoutingTree t = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(t, 6, 60, 1.0, rng);
  PacketSimOptions opt;
  opt.policy = CachePolicy::kNoCaching;
  opt.duration = 15 * kMicrosPerSecond;
  opt.warmup = 3 * kMicrosPerSecond;
  const auto report = PacketSim(t, demand, opt).Run();
  ASSERT_EQ(report.edge_traffic_kb.size(),
            static_cast<std::size_t>(t.size()));
  double edge_sum = 0;
  for (const double kb : report.edge_traffic_kb) edge_sum += kb;
  // In-flight requests at the end leave a small gap (request bytes logged,
  // response bytes not yet).
  EXPECT_GE(edge_sum + 1e-9, report.network_kb);
  EXPECT_LT(edge_sum - report.network_kb, 0.02 * report.network_kb + 100);
  // Without caching every byte crosses a depth-1 edge.
  double depth1 = 0;
  for (NodeId v = 0; v < t.size(); ++v)
    if (!t.is_root(v) && t.depth(v) == 1)
      depth1 += report.edge_traffic_kb[static_cast<std::size_t>(v)];
  EXPECT_GT(depth1, 0.3 * edge_sum)
      << "the root links must carry a major share of the traffic";
}

TEST(PacketSimFailures, GossipLossSlowsButDoesNotBreakBalancing) {
  Rng rng(47);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 6, 80, 1.0, rng);
  PacketSimOptions opt;
  opt.policy = CachePolicy::kWebWave;
  opt.duration = 40 * kMicrosPerSecond;
  opt.warmup = 20 * kMicrosPerSecond;
  opt.seed = 13;
  opt.gossip_loss = 0.5;  // half of all load gossip vanishes
  const auto lossy = PacketSim(t, demand, opt).Run();

  opt.policy = CachePolicy::kNoCaching;
  opt.gossip_loss = 0;
  const auto none = PacketSim(t, demand, opt).Run();

  EXPECT_LT(CoefficientOfVariation(lossy.measured_loads),
            CoefficientOfVariation(none.measured_loads))
      << "even with 50% gossip loss WebWave must beat no caching";
}

TEST(PacketSimShapes, CopyCountsRespectPolicySemantics) {
  Rng rng(59);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 6, 60, 1.0, rng);
  PacketSimOptions opt;
  opt.duration = 15 * kMicrosPerSecond;
  opt.warmup = 3 * kMicrosPerSecond;
  opt.lru_capacity = 2;

  opt.policy = CachePolicy::kNoCaching;
  const auto none = PacketSim(t, demand, opt).Run();
  for (const int c : none.copies_per_doc)
    EXPECT_EQ(c, 1) << "no caching: only the home copy exists";

  opt.policy = CachePolicy::kWebWave;
  const auto wave = PacketSim(t, demand, opt).Run();
  int replicated = 0;
  for (const int c : wave.copies_per_doc) {
    EXPECT_GE(c, 1);
    if (c > 1) ++replicated;
  }
  EXPECT_GT(replicated, 0) << "WebWave must have replicated something";

  opt.policy = CachePolicy::kEnRouteLru;
  const auto lru = PacketSim(t, demand, opt).Run();
  int total_lru_copies = 0;
  for (const int c : lru.copies_per_doc) total_lru_copies += c - 1;
  EXPECT_LE(total_lru_copies, (t.size() - 1) * opt.lru_capacity)
      << "LRU copies bounded by per-node capacity";
}

TEST(PacketSimOptionsTest, Validation) {
  const RoutingTree t = MakeChain(2);
  DemandMatrix demand(2, 1);
  demand.set(1, 0, 5);
  PacketSimOptions opt;
  opt.duration = 5;
  opt.warmup = 10;
  EXPECT_THROW(PacketSim(t, demand, opt).Run(), std::invalid_argument);
}

}  // namespace
}  // namespace webwave
