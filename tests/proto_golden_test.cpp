// Pins the packet simulator's counters, for all four policies, to values
// captured *before* the wire-layer rewiring (request forwards, responses
// and gossip samples now travel as encoded wire/codec.h frames).  The
// codec is pure, so the rewired simulator must be draw-for-draw identical
// to the pre-refactor event structs — any divergence in these integer
// counters means the message layer perturbed the simulation.
#include <gtest/gtest.h>

#include <cstdint>

#include "doc/catalog.h"
#include "proto/packet_sim.h"
#include "tree/builders.h"
#include "util/rng.h"

namespace webwave {
namespace {

struct Golden {
  CachePolicy policy;
  std::uint64_t total, served, control, transfers, tunnel, link;
  double kb, depth, resp_ms;
};

// Captured from the pre-refactor RunPacketSimulation on this exact
// configuration (tree seed 42, demand seed 7, sim seed 11).
const Golden kGolden[] = {
    {CachePolicy::kNoCaching, 1648, 1642, 0, 0, 0, 11246, 47795.5,
     3.407171315, 34.071713147},
    {CachePolicy::kEnRouteLru, 1648, 1648, 0, 128, 0, 502, 2133.5,
     0.015923567, 0.159235669},
    {CachePolicy::kIcpLike, 1648, 1648, 250, 125, 0, 838, 3561.5,
     0.036595068, 0.365950676},
    {CachePolicy::kWebWave, 1610, 1610, 9734, 285, 9, 14110, 20882.5,
     1.006488240, 10.064882401},
};

TEST(ProtoGolden, WireReroutingIsDrawForDrawIdentical) {
  Rng rng(42);
  const RoutingTree tree = MakeRandomTree(60, rng);
  DemandMatrix demand(60, 4);
  Rng drng(7);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.children(v).empty())
      for (DocId d = 0; d < 4; ++d) demand.set(v, d, drng.NextDouble(0.5, 3.0));

  for (const Golden& g : kGolden) {
    PacketSimOptions opt;
    opt.policy = g.policy;
    opt.duration = 8 * kMicrosPerSecond;
    opt.warmup = 2 * kMicrosPerSecond;
    opt.seed = 11;
    opt.gossip_loss = g.policy == CachePolicy::kWebWave ? 0.1 : 0.0;
    const PacketSimReport report = PacketSim(tree, demand, opt).Run();

    SCOPED_TRACE(PolicyName(g.policy));
    EXPECT_EQ(report.total_requests, g.total);
    EXPECT_EQ(report.served_requests, g.served);
    EXPECT_EQ(report.control_messages, g.control);
    EXPECT_EQ(report.doc_transfers, g.transfers);
    EXPECT_EQ(report.tunnel_events, g.tunnel);
    EXPECT_EQ(report.link_traversals, g.link);
    EXPECT_NEAR(report.network_kb, g.kb, 1e-5);
    EXPECT_NEAR(report.mean_hit_depth, g.depth, 1e-8);
    EXPECT_NEAR(report.mean_response_ms, g.resp_ms, 1e-8);
    // The counters above were reproduced *through* the message layer:
    // every forward, response and surviving gossip sample round-tripped
    // the codec.
    EXPECT_GT(report.wire_frames, 0u);
  }
}

}  // namespace
}  // namespace webwave
