// Tests for the per-document layer: catalogs, demand matrices, the
// document-level WebWave protocol, potential barriers and tunneling.
//
// The centerpiece reproduces Figure 7: a four-node tree where plain
// diffusion stalls at a potential barrier and tunneling recovers to the
// TLB assignment of 90 requests/node.
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "doc/barrier.h"
#include "doc/catalog.h"
#include "doc/doc_webwave.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <cmath>

namespace webwave {
namespace {

TEST(Catalog, MakeUniform) {
  const Catalog c = Catalog::MakeUniform(5, 16.0);
  EXPECT_EQ(c.size(), 5);
  EXPECT_EQ(c.doc(3).name, "doc-3");
  EXPECT_DOUBLE_EQ(c.doc(0).size_kb, 16.0);
  EXPECT_THROW(c.doc(5), std::invalid_argument);
}

TEST(DemandMatrixTest, Accessors) {
  DemandMatrix m(3, 2);
  m.set(0, 0, 5);
  m.set(2, 1, 7);
  m.add(2, 1, 3);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 10);
  EXPECT_DOUBLE_EQ(m.NodeTotal(2), 10);
  EXPECT_DOUBLE_EQ(m.DocTotal(1), 10);
  EXPECT_DOUBLE_EQ(m.DocTotal(0), 5);
  EXPECT_DOUBLE_EQ(m.Total(), 15);
  EXPECT_EQ(m.NodeTotals(), (std::vector<double>{5, 0, 10}));
  EXPECT_THROW(m.set(0, 0, -1), std::invalid_argument);
  EXPECT_THROW(m.at(3, 0), std::invalid_argument);
}

TEST(DemandGenerators, LeafZipfPutsDemandOnlyOnLeaves) {
  Rng rng(3);
  const RoutingTree t = MakeKaryTree(2, 3);
  const DemandMatrix m = LeafZipfDemand(t, 10, 100.0, 1.0, rng);
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.is_leaf(v)) {
      EXPECT_NEAR(m.NodeTotal(v), 100.0, 1e-9) << "leaf " << v;
    } else {
      EXPECT_DOUBLE_EQ(m.NodeTotal(v), 0.0) << "interior " << v;
    }
  }
}

TEST(DemandGenerators, RotatingHotSpotMovesWithPhase) {
  const RoutingTree t = MakeKaryTree(2, 3);  // 8 leaves
  const DemandMatrix a = RotatingHotSpotDemand(t, 4, 1.0, 50.0, 0.25, 0.0);
  const DemandMatrix b = RotatingHotSpotDemand(t, 4, 1.0, 50.0, 0.25, 0.5);
  // Same total at every phase, but hot leaves differ.
  EXPECT_NEAR(a.Total(), b.Total(), 1e-9);
  int moved = 0;
  for (NodeId v = 0; v < t.size(); ++v)
    if (std::abs(a.NodeTotal(v) - b.NodeTotal(v)) > 1.0) ++moved;
  EXPECT_GE(moved, 2) << "the hot window must have rotated";
  // Exactly 2 of 8 leaves are hot (fraction 0.25) at each phase.
  int hot = 0;
  for (NodeId v = 0; v < t.size(); ++v)
    if (a.NodeTotal(v) > 25) ++hot;
  EXPECT_EQ(hot, 2);
  // Interior nodes generate nothing.
  for (NodeId v = 0; v < t.size(); ++v) {
    if (!t.is_leaf(v)) {
      EXPECT_DOUBLE_EQ(a.NodeTotal(v), 0.0);
    }
  }
  EXPECT_THROW(RotatingHotSpotDemand(t, 4, 1, 50, 0.25, 1.0),
               std::invalid_argument);
}

TEST(DemandGenerators, RotatingHotSpotTracksUnderProtocol) {
  // The moving hot spot is trackable: run WebWave while the phase
  // advances, and check the tracking distance stays bounded well below
  // the total rate.
  const RoutingTree t = MakeKaryTree(2, 3);
  WebWaveOptions opt;
  opt.initial_load = InitialLoad::kSelfService;
  DemandMatrix first = RotatingHotSpotDemand(t, 4, 2.0, 60.0, 0.25, 0.0);
  WebWaveSimulator sim(t, first.NodeTotals(), opt);
  double worst_relative = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    const double phase = (epoch % 8) / 8.0;
    const DemandMatrix demand =
        RotatingHotSpotDemand(t, 4, 2.0, 60.0, 0.25, phase);
    sim.UpdateSpontaneous(demand.NodeTotals());
    const WebFoldResult target = WebFold(t, demand.NodeTotals());
    for (int s = 0; s < 60; ++s) sim.Step();
    worst_relative = std::max(
        worst_relative, sim.DistanceTo(target.load) / demand.Total());
  }
  EXPECT_LT(worst_relative, 0.05)
      << "60 steps per phase must keep tracking error under 5%";
}

TEST(DemandGenerators, FlashCrowdBoostsSubtree) {
  Rng rng(5);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix m = FlashCrowdDemand(t, 5, 1.0, 50.0, 2, 1, rng);
  // Subtree of node 1 = {1, 3, 4}: every member got +50 on doc 2.
  for (const NodeId v : t.subtree(1)) EXPECT_GE(m.at(v, 2), 50.0);
  EXPECT_LT(m.at(2, 2), 50.0);
}

// --- Figure 7 -----------------------------------------------------------
//
// Nodes: 1 = home (our id 0), 2 = intermediate (id 1), 3 and 4 = leaves
// (ids 2, 3).  d1, d2 requested by node 4 (id 3) at 120 each; d3 requested
// by node 3 (id 2) at 120.  Figure 7(a)'s placement: the copy of d1 lives
// at node 4 (quota 120), d2 at node 2 (quota 120), d3 served by the home.
// Loads: L = (120, 120, 0, 120) — node 2 is a potential barrier for its
// underloaded child 3 (it caches nothing node 3 requests).
struct Fig7 {
  RoutingTree tree = RoutingTree::FromParents({kNoNode, 0, 1, 1});
  DemandMatrix demand{4, 3};
  Fig7() {
    demand.set(3, 0, 120);  // d1 from node "4"
    demand.set(3, 1, 120);  // d2 from node "4"
    demand.set(2, 2, 120);  // d3 from node "3"
  }
};

DocWebWave MakeFig7Protocol(const Fig7& f, bool tunneling) {
  DocWebWaveOptions opt;
  opt.enable_tunneling = tunneling;
  DocWebWave protocol(f.tree, f.demand, opt);
  protocol.SeedCopy(3, 0, 120);  // d1 at node "4"
  protocol.SeedCopy(1, 1, 120);  // d2 at node "2"
  return protocol;
}

TEST(Figure7, SeededPlacementReproducesThePapersLoads) {
  const Fig7 f;
  DocWebWave protocol = MakeFig7Protocol(f, false);
  const auto loads = protocol.NodeLoads();
  EXPECT_NEAR(loads[0], 120, 1e-9);  // home serves d3
  EXPECT_NEAR(loads[1], 120, 1e-9);  // node "2" serves d2
  EXPECT_NEAR(loads[2], 0, 1e-9);    // node "3" idle
  EXPECT_NEAR(loads[3], 120, 1e-9);  // node "4" serves d1
  protocol.CheckInvariants();
}

TEST(Figure7, InitialStateIsAPotentialBarrier) {
  const Fig7 f;
  // Hand-build the §5.2 state: loads (120,120,0,120); node 1 caches only
  // d2; node 3's subtree forwards only d3.
  const std::vector<double> loads = {120, 120, 0, 120};
  std::vector<std::vector<bool>> caches = {
      {true, true, true},    // home caches everything
      {false, true, false},  // node "2" caches d2 only
      {false, false, false},
      {true, false, false},  // node "4" caches d1
  };
  std::vector<std::vector<double>> fwd = {
      {0, 0, 0},
      {0, 0, 120},  // node "2" forwards d3
      {0, 0, 120},  // node "3" forwards its d3 demand
      {0, 120, 0},  // node "4" forwards d2 (served upstream)
  };
  EXPECT_TRUE(IsPotentialBarrier(f.tree, 1, 2, loads, caches, fwd));
  // Not a barrier for the loaded child.
  EXPECT_FALSE(IsPotentialBarrier(f.tree, 1, 3, loads, caches, fwd));
}

TEST(Figure7, WithoutTunnelingDiffusionStallsAboveTlb) {
  const Fig7 f;
  DocWebWave protocol = MakeFig7Protocol(f, /*tunneling=*/false);
  const std::vector<double> tlb(4, 90.0);  // 360 total over 4 nodes
  const auto traj = protocol.RunUntil(tlb, 1.0, 400);
  EXPECT_GT(traj.back(), 30.0)
      << "without tunneling node 3 can never serve d3";
  // Node "3" (id 2) stays idle: nothing it could cache ever reaches it.
  EXPECT_NEAR(protocol.NodeLoads()[2], 0.0, 1e-6);
  protocol.CheckInvariants();
}

TEST(Figure7, WithTunnelingConvergesToNinetyEach) {
  const Fig7 f;
  DocWebWave protocol = MakeFig7Protocol(f, /*tunneling=*/true);
  const std::vector<double> tlb(4, 90.0);
  const auto traj = protocol.RunUntil(tlb, 0.5, 2000);
  EXPECT_LE(traj.back(), 0.5) << "tunneling must restore TLB";
  const auto loads = protocol.NodeLoads();
  for (NodeId v = 0; v < 4; ++v) EXPECT_NEAR(loads[v], 90.0, 1.0) << v;
  EXPECT_GE(protocol.tunnel_events().size(), 1u);
  const TunnelEvent& ev = protocol.tunnel_events().front();
  EXPECT_EQ(ev.node, 2) << "the underloaded child tunnels";
  EXPECT_EQ(ev.barrier, 1) << "across its barrier parent";
  EXPECT_EQ(ev.doc, 2) << "for the document it keeps forwarding (d3)";
  EXPECT_EQ(ev.source, 0) << "fetched from the home server";
  protocol.CheckInvariants();
}

TEST(Figure7, TlbOfDemandMatchesPaperNinety) {
  const Fig7 f;
  const WebFoldResult r = WebFold(f.tree, f.demand.NodeTotals());
  for (NodeId v = 0; v < 4; ++v) EXPECT_NEAR(r.load[v], 90.0, 1e-9);
}

// --- general document-level protocol properties -------------------------

TEST(DocWebWaveTest, HomeAloneServesEverythingInitially) {
  Rng rng(7);
  const RoutingTree t = MakeKaryTree(2, 2);
  const DemandMatrix demand = LeafZipfDemand(t, 6, 50, 1.0, rng);
  DocWebWave protocol(t, demand);
  const auto loads = protocol.NodeLoads();
  EXPECT_NEAR(loads[t.root()], demand.Total(), 1e-9);
  for (NodeId v = 1; v < t.size(); ++v) EXPECT_NEAR(loads[v], 0, 1e-9);
  protocol.CheckInvariants();
}

TEST(DocWebWaveTest, InvariantsHoldThroughoutConvergence) {
  Rng rng(11);
  const RoutingTree t = MakeCaterpillar(3, 2);
  const DemandMatrix demand = UniformRandomDemand(t, 4, 10, rng);
  DocWebWave protocol(t, demand);
  for (int s = 0; s < 150; ++s) {
    protocol.Step();
    ASSERT_NO_THROW(protocol.CheckInvariants()) << "period " << s;
  }
}

TEST(DocWebWaveTest, ConvergesNearTlbOnLeafDemand) {
  Rng rng(13);
  const RoutingTree t = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(t, 8, 80, 1.0, rng);
  const WebFoldResult target = WebFold(t, demand.NodeTotals());
  DocWebWave protocol(t, demand);
  const double total = demand.Total();
  const auto traj = protocol.RunUntil(target.load, 0.01 * total, 3000);
  EXPECT_LE(traj.back(), 0.01 * total)
      << "document-level protocol should reach within 1% of TLB";
  protocol.CheckInvariants();
}

TEST(DocWebWaveTest, ReplicationCreatesCopiesDownTheTree) {
  Rng rng(17);
  const RoutingTree t = MakeChain(4);
  DemandMatrix demand(4, 2);
  demand.set(3, 0, 100);  // hot doc requested at the leaf
  DocWebWave protocol(t, demand);
  for (int s = 0; s < 200; ++s) protocol.Step();
  EXPECT_GT(protocol.CopyCount(0), 1) << "the hot document must replicate";
  EXPECT_EQ(protocol.CopyCount(1), 1) << "the cold one should not";
  EXPECT_GT(protocol.replication_count(), 0);
}

TEST(DocWebWaveTest, ServedImpliesCached) {
  Rng rng(19);
  const RoutingTree t = MakeKaryTree(3, 2);
  const DemandMatrix demand = UniformRandomDemand(t, 5, 4, rng);
  DocWebWave protocol(t, demand);
  for (int s = 0; s < 100; ++s) protocol.Step();
  for (NodeId v = 0; v < t.size(); ++v) {
    for (DocId d = 0; d < 5; ++d) {
      if (protocol.ServedRate(v, d) > 1e-9) {
        EXPECT_TRUE(protocol.IsCached(v, d)) << "node " << v << " doc " << d;
      }
    }
  }
}

TEST(BarrierMonitorTest, TriggersAfterPatienceExceeded) {
  BarrierMonitor monitor(3, 2);
  // Two stalled periods: no trigger; the third: trigger (paper: "more than
  // two periods").
  EXPECT_FALSE(monitor.Observe(1, true, false));
  EXPECT_FALSE(monitor.Observe(1, true, false));
  EXPECT_TRUE(monitor.Observe(1, true, false));
  // Receiving load resets.
  monitor.Reset(1);
  EXPECT_FALSE(monitor.Observe(1, true, false));
  EXPECT_FALSE(monitor.Observe(1, true, true));
  EXPECT_EQ(monitor.ConsecutiveStalls(1), 0);
  // Being adequately loaded resets too.
  EXPECT_FALSE(monitor.Observe(1, true, false));
  EXPECT_FALSE(monitor.Observe(1, false, false));
  EXPECT_EQ(monitor.ConsecutiveStalls(1), 0);
}

}  // namespace
}  // namespace webwave
