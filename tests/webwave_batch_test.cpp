// BatchWebWaveSimulator must be N independent WebWaveSimulator runs,
// document for document: same tree, same options, lane d seeded
// options.seed + d.  The sweeps below assert exact per-lane agreement
// under the paper's assumptions and their relaxations (gossip period,
// gossip delay, asynchronous activation), plus invariants and the
// catalog wiring.
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "core/webwave_batch.h"
#include "doc/catalog.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <vector>

namespace webwave {
namespace {

struct BatchCase {
  int nodes;
  int docs;
  std::uint64_t seed;
  bool asynchronous;
  int gossip_period;
  int gossip_delay;
  int steps;
};

std::ostream& operator<<(std::ostream& os, const BatchCase& c) {
  return os << "n=" << c.nodes << " docs=" << c.docs << " seed=" << c.seed
            << (c.asynchronous ? " async" : " sync")
            << " gp=" << c.gossip_period << " gd=" << c.gossip_delay;
}

std::vector<std::vector<double>> RandomLanes(int nodes, int docs, Rng& rng) {
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (auto& lane : lanes) {
    lane.resize(static_cast<std::size_t>(nodes));
    for (auto& e : lane)
      e = rng.NextBernoulli(0.25) ? 0.0 : rng.NextDouble(0, 30);
  }
  return lanes;
}

class BatchEquivalenceSweep : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalenceSweep, MatchesIndependentSimulatorsDocumentForDocument) {
  const BatchCase c = GetParam();
  Rng rng(c.seed);
  const RoutingTree tree = MakeRandomTree(c.nodes, rng);
  const std::vector<std::vector<double>> lanes =
      RandomLanes(c.nodes, c.docs, rng);

  WebWaveOptions opt;
  opt.asynchronous = c.asynchronous;
  opt.gossip_period = c.gossip_period;
  opt.gossip_delay = c.gossip_delay;
  opt.seed = c.seed * 101 + 7;

  BatchWebWaveSimulator batch(tree, lanes, opt);
  std::vector<WebWaveSimulator> singles;
  for (int d = 0; d < c.docs; ++d) {
    WebWaveOptions lane_opt = opt;
    lane_opt.seed = opt.seed + static_cast<std::uint64_t>(d);
    singles.emplace_back(tree, lanes[static_cast<std::size_t>(d)], lane_opt);
  }

  for (int s = 0; s < c.steps; ++s) {
    batch.Step();
    for (auto& single : singles) single.Step();
    if (s % 16 != 0) continue;
    for (int d = 0; d < c.docs; ++d) {
      const double* lane = batch.served(d);
      const std::vector<double>& expect = singles[static_cast<std::size_t>(d)].served();
      for (int v = 0; v < c.nodes; ++v)
        ASSERT_EQ(lane[v], expect[static_cast<std::size_t>(v)])
            << c << " step=" << s << " doc=" << d << " node=" << v;
    }
  }
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalenceSweep,
    ::testing::Values(BatchCase{2, 1, 1, false, 1, 0, 50},
                      BatchCase{25, 4, 2, false, 1, 0, 120},
                      BatchCase{60, 6, 3, false, 1, 0, 150},
                      BatchCase{40, 3, 4, false, 3, 0, 120},
                      BatchCase{40, 3, 5, false, 1, 2, 120},
                      BatchCase{30, 5, 6, false, 4, 3, 150},
                      BatchCase{35, 4, 7, true, 1, 0, 120},
                      BatchCase{30, 4, 8, true, 2, 1, 150}));

TEST(BatchWebWave, LanesConvergeToTheirOwnTlbAssignments) {
  Rng rng(21);
  const RoutingTree tree = MakeRandomTree(50, rng);
  const std::vector<std::vector<double>> lanes = RandomLanes(50, 4, rng);
  BatchWebWaveSimulator batch(tree, lanes);
  for (int s = 0; s < 20000; ++s) batch.Step();
  for (int d = 0; d < 4; ++d) {
    const WebFoldResult target =
        WebFold(tree, lanes[static_cast<std::size_t>(d)]);
    const double total = TotalRate(lanes[static_cast<std::size_t>(d)]);
    EXPECT_LE(batch.DistanceTo(d, target.load),
              std::max(1e-6, 1e-6 * total))
        << "doc " << d;
  }
  batch.CheckInvariants(1e-6);
}

TEST(BatchWebWave, NodeLoadsSumLanes) {
  Rng rng(23);
  const RoutingTree tree = MakeRandomTree(30, rng);
  const std::vector<std::vector<double>> lanes = RandomLanes(30, 5, rng);
  BatchWebWaveSimulator batch(tree, lanes);
  for (int s = 0; s < 40; ++s) batch.Step();
  const std::vector<double> totals = batch.NodeLoads();
  double mx = 0;
  for (int v = 0; v < 30; ++v) {
    double sum = 0;
    for (int d = 0; d < 5; ++d) sum += batch.served(d)[v];
    EXPECT_NEAR(totals[static_cast<std::size_t>(v)], sum, 1e-12);
    mx = std::max(mx, sum);
  }
  EXPECT_NEAR(batch.MaxNodeLoad(), mx, 1e-12);
}

TEST(BatchWebWave, CatalogWiringStepsEveryDocumentOfADemandMatrix) {
  Rng rng(27);
  const RoutingTree tree = MakeKaryTree(3, 4);
  const DemandMatrix demand = LeafZipfDemand(tree, 8, 50.0, 1.0, rng);
  BatchWebWaveSimulator batch = MakeCatalogBatch(tree, demand);
  ASSERT_EQ(batch.doc_count(), 8);
  ASSERT_EQ(batch.node_count(), tree.size());
  for (int s = 0; s < 4000; ++s) batch.Step();
  batch.CheckInvariants(1e-6);
  // Conservation per lane: each document's served mass equals its demand.
  for (DocId d = 0; d < 8; ++d) {
    const std::vector<double> lane = batch.ServedLane(d);
    EXPECT_NEAR(TotalRate(lane), demand.DocTotal(d), 1e-6)
        << "doc " << d;
  }
  // Each lane approaches its own document's TLB assignment, so the summed
  // node loads approach the sum of the per-document optima.
  std::vector<double> expected(static_cast<std::size_t>(tree.size()), 0.0);
  for (DocId d = 0; d < 8; ++d) {
    const WebFoldResult tlb = WebFold(tree, demand.DocColumn(d));
    for (std::size_t v = 0; v < expected.size(); ++v)
      expected[v] += tlb.load[v];
  }
  const std::vector<double> totals = batch.NodeLoads();
  for (std::size_t v = 0; v < expected.size(); ++v)
    EXPECT_NEAR(totals[v], expected[v], 1e-3 * (1 + demand.Total()));
}

TEST(BatchWebWave, RejectsMalformedInput) {
  const RoutingTree tree = MakeChain(3);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {}), std::invalid_argument);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2}}), std::invalid_argument);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2, -1}}),
               std::invalid_argument);
  const DemandMatrix wrong(5, 2);
  EXPECT_THROW(MakeCatalogBatch(tree, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace webwave
