// BatchWebWaveSimulator must be N independent WebWaveSimulator runs,
// document for document: same tree, same options, lane d seeded
// options.seed + d.  The sweeps below assert exact per-lane agreement
// under the paper's assumptions and their relaxations (gossip period,
// gossip delay, asynchronous activation) and across document block
// widths — the blocked kernel interleaves lanes in memory but must not
// change a single bit of any lane — plus invariants, dirty-lane
// tracking and the catalog wiring.
#include "core/load_model.h"
#include "core/webfold.h"
#include "core/webwave.h"
#include "core/webwave_batch.h"
#include "doc/catalog.h"
#include "sim/churn.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace webwave {
namespace {

struct BatchCase {
  int nodes;
  int docs;
  std::uint64_t seed;
  bool asynchronous;
  int gossip_period;
  int gossip_delay;
  int steps;
  int lane_block = 8;
};

std::ostream& operator<<(std::ostream& os, const BatchCase& c) {
  return os << "n=" << c.nodes << " docs=" << c.docs << " seed=" << c.seed
            << (c.asynchronous ? " async" : " sync")
            << " gp=" << c.gossip_period << " gd=" << c.gossip_delay
            << " B=" << c.lane_block;
}

std::vector<std::vector<double>> RandomLanes(int nodes, int docs, Rng& rng) {
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs));
  for (auto& lane : lanes) {
    lane.resize(static_cast<std::size_t>(nodes));
    for (auto& e : lane)
      e = rng.NextBernoulli(0.25) ? 0.0 : rng.NextDouble(0, 30);
  }
  return lanes;
}

class BatchEquivalenceSweep : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalenceSweep, MatchesIndependentSimulatorsDocumentForDocument) {
  const BatchCase c = GetParam();
  Rng rng(c.seed);
  const RoutingTree tree = MakeRandomTree(c.nodes, rng);
  const std::vector<std::vector<double>> lanes =
      RandomLanes(c.nodes, c.docs, rng);

  WebWaveOptions opt;
  opt.asynchronous = c.asynchronous;
  opt.gossip_period = c.gossip_period;
  opt.gossip_delay = c.gossip_delay;
  opt.lane_block = c.lane_block;
  opt.seed = c.seed * 101 + 7;

  BatchWebWaveSimulator batch(tree, lanes, opt);
  // The independent reference simulators share the batch's edge build —
  // one flattening of the tree for the whole test (and a live check that
  // a shared build gives the same results as a private one).
  const internal::SharedEdgeArrays edges = batch.shared_edges();
  std::vector<WebWaveSimulator> singles;
  for (int d = 0; d < c.docs; ++d) {
    WebWaveOptions lane_opt = opt;
    lane_opt.seed = opt.seed + static_cast<std::uint64_t>(d);
    singles.emplace_back(tree, lanes[static_cast<std::size_t>(d)], lane_opt,
                         edges);
  }

  for (int s = 0; s < c.steps; ++s) {
    batch.Step();
    for (auto& single : singles) single.Step();
    if (s % 16 != 0) continue;
    for (int d = 0; d < c.docs; ++d) {
      const std::vector<double> lane = batch.ServedLane(d);
      const std::vector<double>& expect = singles[static_cast<std::size_t>(d)].served();
      for (int v = 0; v < c.nodes; ++v)
        ASSERT_EQ(lane[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)])
            << c << " step=" << s << " doc=" << d << " node=" << v;
    }
  }
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalenceSweep,
    ::testing::Values(BatchCase{2, 1, 1, false, 1, 0, 50},
                      BatchCase{25, 4, 2, false, 1, 0, 120},
                      BatchCase{60, 6, 3, false, 1, 0, 150},
                      BatchCase{40, 3, 4, false, 3, 0, 120},
                      BatchCase{40, 3, 5, false, 1, 2, 120},
                      BatchCase{30, 5, 6, false, 4, 3, 150},
                      BatchCase{35, 4, 7, true, 1, 0, 120},
                      BatchCase{30, 4, 8, true, 2, 1, 150}));

// Ragged-block coverage: catalog sizes around the block width (D = 1, 7,
// B, B+1 and a many-block ragged 65 at B = 8; plus non-default widths),
// so full blocks, the ragged tail and the single-lane degenerate case all
// step bit-identically to independent simulators.
INSTANTIATE_TEST_SUITE_P(
    RaggedBlocks, BatchEquivalenceSweep,
    ::testing::Values(BatchCase{24, 1, 11, false, 1, 0, 60, 8},
                      BatchCase{24, 7, 12, false, 2, 1, 80, 8},
                      BatchCase{24, 8, 13, false, 1, 0, 80, 8},
                      BatchCase{24, 9, 14, false, 1, 2, 80, 8},
                      BatchCase{20, 65, 15, false, 1, 0, 40, 8},
                      BatchCase{24, 9, 16, true, 2, 1, 80, 8},
                      BatchCase{24, 10, 17, false, 1, 0, 60, 4},
                      BatchCase{24, 10, 18, false, 3, 2, 80, 1},
                      BatchCase{24, 5, 19, true, 1, 0, 60, 16}));

TEST(BatchWebWave, LanesConvergeToTheirOwnTlbAssignments) {
  Rng rng(21);
  const RoutingTree tree = MakeRandomTree(50, rng);
  const std::vector<std::vector<double>> lanes = RandomLanes(50, 4, rng);
  BatchWebWaveSimulator batch(tree, lanes);
  for (int s = 0; s < 20000; ++s) batch.Step();
  for (int d = 0; d < 4; ++d) {
    const WebFoldResult target =
        WebFold(tree, lanes[static_cast<std::size_t>(d)]);
    const double total = TotalRate(lanes[static_cast<std::size_t>(d)]);
    EXPECT_LE(batch.DistanceTo(d, target.load),
              std::max(1e-6, 1e-6 * total))
        << "doc " << d;
  }
  batch.CheckInvariants(1e-6);
}

TEST(BatchWebWave, NodeLoadsSumLanes) {
  Rng rng(23);
  const RoutingTree tree = MakeRandomTree(30, rng);
  const std::vector<std::vector<double>> lanes = RandomLanes(30, 5, rng);
  BatchWebWaveSimulator batch(tree, lanes);
  for (int s = 0; s < 40; ++s) batch.Step();
  const std::vector<double> totals = batch.NodeLoads();
  std::vector<std::vector<double>> served;
  for (int d = 0; d < 5; ++d) served.push_back(batch.ServedLane(d));
  double mx = 0;
  for (int v = 0; v < 30; ++v) {
    double sum = 0;
    for (int d = 0; d < 5; ++d)
      sum += served[static_cast<std::size_t>(d)][static_cast<std::size_t>(v)];
    EXPECT_NEAR(totals[static_cast<std::size_t>(v)], sum, 1e-12);
    mx = std::max(mx, sum);
  }
  EXPECT_NEAR(batch.MaxNodeLoad(), mx, 1e-12);
}

TEST(BatchWebWave, CatalogWiringStepsEveryDocumentOfADemandMatrix) {
  Rng rng(27);
  const RoutingTree tree = MakeKaryTree(3, 4);
  const DemandMatrix demand = LeafZipfDemand(tree, 8, 50.0, 1.0, rng);
  BatchWebWaveSimulator batch = MakeCatalogBatch(tree, demand);
  ASSERT_EQ(batch.doc_count(), 8);
  ASSERT_EQ(batch.node_count(), tree.size());
  for (int s = 0; s < 4000; ++s) batch.Step();
  batch.CheckInvariants(1e-6);
  // Conservation per lane: each document's served mass equals its demand.
  for (DocId d = 0; d < 8; ++d) {
    const std::vector<double> lane = batch.ServedLane(d);
    EXPECT_NEAR(TotalRate(lane), demand.DocTotal(d), 1e-6)
        << "doc " << d;
  }
  // Each lane approaches its own document's TLB assignment, so the summed
  // node loads approach the sum of the per-document optima.
  std::vector<double> expected(static_cast<std::size_t>(tree.size()), 0.0);
  for (DocId d = 0; d < 8; ++d) {
    const WebFoldResult tlb = WebFold(tree, demand.DocColumn(d));
    for (std::size_t v = 0; v < expected.size(); ++v)
      expected[v] += tlb.load[v];
  }
  const std::vector<double> totals = batch.NodeLoads();
  for (std::size_t v = 0; v < expected.size(); ++v)
    EXPECT_NEAR(totals[v], expected[v], 1e-3 * (1 + demand.Total()));
}

// Demand events for a rotating-hot-spot shock, generated fresh for each
// caller so thread-invariance and equivalence tests see the same churn.
std::vector<DemandEvent> ShockEvents(const RoutingTree& tree, int docs,
                                     std::uint64_t seed, int round) {
  Rng rng(seed + static_cast<std::uint64_t>(round) * 977);
  std::vector<DemandEvent> events;
  for (NodeId v = 0; v < tree.size(); ++v)
    for (int d = 0; d < docs; ++d)
      if (rng.NextBernoulli(0.3))
        events.push_back({d, v, rng.NextDouble(0, 40)});
  return events;
}

// The tentpole guarantee: the threaded batch step is bit-identical to the
// serial path at 1, 2 and 8 threads, including under per-lane demand
// churn and with delayed gossip in play.  docs = 20 spans two full blocks
// plus a ragged tail at the default width, so the static partition splits
// mid-catalog.
class ThreadInvarianceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadInvarianceSweep, BatchStepsBitIdenticalToSerialUnderChurn) {
  const int gossip_delay = GetParam();
  const int nodes = 40, docs = 20;
  const std::uint64_t seed = 12;
  Rng rng(seed);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  const std::vector<std::vector<double>> lanes =
      RandomLanes(nodes, docs, rng);

  auto make_batch = [&](int threads) {
    WebWaveOptions opt;
    opt.gossip_period = 2;
    opt.gossip_delay = gossip_delay;
    opt.seed = seed;
    opt.threads = threads;
    return BatchWebWaveSimulator(tree, lanes, opt);
  };

  BatchWebWaveSimulator serial = make_batch(1);
  BatchWebWaveSimulator two = make_batch(2);
  BatchWebWaveSimulator eight = make_batch(8);
  ASSERT_EQ(serial.thread_count(), 1);
  ASSERT_EQ(two.thread_count(), 2);
  ASSERT_EQ(eight.thread_count(), 8);
  ASSERT_EQ(serial.lane_block(), 8);

  for (int round = 0; round < 6; ++round) {
    const std::vector<DemandEvent> events =
        ShockEvents(tree, docs, seed, round);
    serial.ApplyDemandEvents(events);
    two.ApplyDemandEvents(events);
    eight.ApplyDemandEvents(events);
    for (int s = 0; s < 25; ++s) {
      serial.Step();
      two.Step();
      eight.Step();
    }
    for (int d = 0; d < docs; ++d) {
      const std::vector<double> expect = serial.ServedLane(d);
      const std::vector<double> got2 = two.ServedLane(d);
      const std::vector<double> got8 = eight.ServedLane(d);
      for (std::size_t v = 0; v < static_cast<std::size_t>(nodes); ++v) {
        ASSERT_EQ(got2[v], expect[v])
            << "2 threads, gd=" << gossip_delay << " round=" << round
            << " doc=" << d << " node=" << v;
        ASSERT_EQ(got8[v], expect[v])
            << "8 threads, gd=" << gossip_delay << " round=" << round
            << " doc=" << d << " node=" << v;
      }
    }
  }
  ASSERT_NO_THROW(eight.CheckInvariants(1e-6));
}

INSTANTIATE_TEST_SUITE_P(GossipDelays, ThreadInvarianceSweep,
                         ::testing::Values(0, 2));

// Threaded + asynchronous: per-lane RNG streams must stay on their lanes
// regardless of which worker sweeps which block.
TEST(BatchWebWave, AsynchronousThreadedMatchesSerial) {
  const int nodes = 30, docs = 13;
  Rng rng(77);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  const std::vector<std::vector<double>> lanes =
      RandomLanes(nodes, docs, rng);
  WebWaveOptions opt;
  opt.asynchronous = true;
  opt.seed = 77;
  opt.lane_block = 4;
  BatchWebWaveSimulator serial(tree, lanes, opt);
  opt.threads = 8;
  BatchWebWaveSimulator threaded(tree, lanes, opt);
  for (int s = 0; s < 60; ++s) {
    serial.Step();
    threaded.Step();
  }
  for (int d = 0; d < docs; ++d)
    ASSERT_EQ(serial.ServedLane(d), threaded.ServedLane(d)) << "doc " << d;
}

// Churn equivalence: a batch receiving demand events per lane must match
// independent WebWaveSimulators receiving the merged vectors through
// UpdateSpontaneous — the per-lane gossip-history restart must not leak
// into untouched lanes (which share ring slots and the front estimate
// plane with churned lanes of the same block).
TEST(BatchWebWave, ApplyDemandEventsMatchesIndependentSimulatorsUnderChurn) {
  const int nodes = 30, docs = 10;  // blocks of 8: one full + ragged pair
  const std::uint64_t seed = 31;
  Rng rng(seed);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  std::vector<std::vector<double>> lanes = RandomLanes(nodes, docs, rng);

  WebWaveOptions opt;
  opt.gossip_period = 3;
  opt.gossip_delay = 2;  // the history ring is live: restarts must be per-lane
  opt.seed = seed;
  opt.threads = 4;
  BatchWebWaveSimulator batch(tree, lanes, opt);
  std::vector<WebWaveSimulator> singles;
  for (int d = 0; d < docs; ++d) {
    WebWaveOptions lane_opt = opt;
    lane_opt.seed = opt.seed + static_cast<std::uint64_t>(d);
    singles.emplace_back(tree, lanes[static_cast<std::size_t>(d)], lane_opt,
                         batch.shared_edges());
  }

  for (int round = 0; round < 8; ++round) {
    // Churn only the even lanes: odd lanes' delayed-gossip history must
    // keep running untouched.
    std::vector<DemandEvent> events;
    for (const DemandEvent& e : ShockEvents(tree, docs, seed, round))
      if (e.doc % 2 == 0) events.push_back(e);
    batch.ApplyDemandEvents(events);
    for (const DemandEvent& e : events)
      lanes[static_cast<std::size_t>(e.doc)][static_cast<std::size_t>(
          e.node)] = e.rate;
    for (int d = 0; d < docs; d += 2)
      singles[static_cast<std::size_t>(d)].UpdateSpontaneous(
          lanes[static_cast<std::size_t>(d)]);

    for (int s = 0; s < 10; ++s) {
      batch.Step();
      for (auto& single : singles) single.Step();
    }
    for (int d = 0; d < docs; ++d) {
      const std::vector<double> lane = batch.ServedLane(d);
      const std::vector<double>& expect =
          singles[static_cast<std::size_t>(d)].served();
      for (std::size_t v = 0; v < static_cast<std::size_t>(nodes); ++v)
        ASSERT_EQ(lane[v], expect[v])
            << "round=" << round << " doc=" << d << " node=" << v;
    }
  }
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
}

// ChurnSchedule-driven equivalence at a non-trivial block width: the
// rotating-hot-spot event stream of the churn layer, applied both to the
// batch and to merged per-lane vectors on independent simulators.
TEST(BatchWebWave, ChurnScheduleEventsKeepBlockedLanesEquivalent) {
  const int nodes = 40, docs = 6;
  Rng rng(55);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  ChurnScheduleOptions copt;
  copt.pattern = ChurnPattern::kRotatingHotSpot;
  copt.doc_count = docs;
  copt.base_rate = 1.0;
  copt.hot_rate = 25.0;
  copt.hot_fraction = 0.2;
  copt.rotation_epochs = 5;
  copt.seed = 9;
  ChurnSchedule schedule(tree, copt);

  std::vector<std::vector<double>> lanes = schedule.Lanes();
  WebWaveOptions opt;
  opt.lane_block = 4;
  opt.gossip_delay = 1;
  opt.seed = 2;
  BatchWebWaveSimulator batch(tree, lanes, opt);
  std::vector<WebWaveSimulator> singles;
  for (int d = 0; d < docs; ++d) {
    WebWaveOptions lane_opt = opt;
    lane_opt.seed = opt.seed + static_cast<std::uint64_t>(d);
    singles.emplace_back(tree, lanes[static_cast<std::size_t>(d)], lane_opt,
                         batch.shared_edges());
  }
  for (int epoch = 0; epoch < 5; ++epoch) {
    const std::vector<DemandEvent> events = schedule.NextEvents();
    batch.ApplyDemandEvents(events);
    for (const DemandEvent& e : events)
      lanes[static_cast<std::size_t>(e.doc)][static_cast<std::size_t>(
          e.node)] = e.rate;
    for (int d = 0; d < docs; ++d)
      singles[static_cast<std::size_t>(d)].UpdateSpontaneous(
          lanes[static_cast<std::size_t>(d)]);
    for (int s = 0; s < 8; ++s) {
      batch.Step();
      for (auto& single : singles) single.Step();
    }
    for (int d = 0; d < docs; ++d)
      ASSERT_EQ(batch.ServedLane(d),
                singles[static_cast<std::size_t>(d)].served())
          << "epoch=" << epoch << " doc=" << d;
  }
}

// Dirty-lane tracking: construction marks everything dirty; churn marks
// exactly the affected lanes; a lane at its floating-point fixed point
// steps clean; ClearDirtyLanes resets.
TEST(BatchWebWave, DirtyLaneTrackingFollowsActualStateChanges) {
  const int nodes = 20, docs = 10;
  Rng rng(61);
  const RoutingTree tree = MakeRandomTree(nodes, rng);
  const std::vector<std::vector<double>> lanes =
      RandomLanes(nodes, docs, rng);
  BatchWebWaveSimulator batch(tree, lanes);
  EXPECT_EQ(batch.dirty_lane_count(), docs);  // never snapshotted

  batch.ClearDirtyLanes();
  EXPECT_EQ(batch.dirty_lane_count(), 0);
  batch.Step();
  // A fresh all-at-root start moves load on the first step in every lane
  // with any demand below the root.
  EXPECT_GT(batch.dirty_lane_count(), 0);

  // Diffuse to the fixed point: once no transfer changes any value, steps
  // keep every lane clean — the property RefreshFromBatch relies on.
  for (int s = 0; s < 20000; ++s) batch.Step();
  batch.ClearDirtyLanes();
  for (int s = 0; s < 5; ++s) batch.Step();
  EXPECT_EQ(batch.dirty_lane_count(), 0)
      << "converged lanes must step clean";

  // Churn two lanes: exactly those become dirty, and stay the only dirty
  // ones while the others sit at their fixed points.
  batch.ApplyDemandEvents({{2, 5, 9.5}, {7, 1, 0.0}});
  EXPECT_EQ(batch.DirtyLanes(), (std::vector<int>{2, 7}));
  for (int s = 0; s < 3; ++s) batch.Step();
  for (const int d : batch.DirtyLanes()) EXPECT_TRUE(d == 2 || d == 7);
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
}

TEST(BatchWebWave, ApplyDemandEventsValidatesAndKeepsSpontaneousVisible) {
  Rng rng(41);
  const RoutingTree tree = MakeRandomTree(12, rng);
  BatchWebWaveSimulator batch(tree, RandomLanes(12, 3, rng));
  EXPECT_THROW(batch.ApplyDemandEvents({{3, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(batch.ApplyDemandEvents({{-1, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(batch.ApplyDemandEvents({{0, 12, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(batch.ApplyDemandEvents({{0, 0, -1.0}}),
               std::invalid_argument);
  // Strong guarantee: a batch with a bad event mid-list must not apply the
  // good events before it — a throw leaves every lane exactly as it was.
  const std::vector<double> before = batch.SpontaneousLane(0);
  EXPECT_THROW(batch.ApplyDemandEvents({{0, 5, 9.0}, {0, 99, 1.0}}),
               std::invalid_argument);
  EXPECT_EQ(batch.SpontaneousLane(0), before);
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
  batch.ApplyDemandEvents({{1, 5, 7.25}, {1, 5, 2.5}});  // later event wins
  EXPECT_EQ(batch.SpontaneousLane(1)[5], 2.5);
  ASSERT_NO_THROW(batch.CheckInvariants(1e-6));
}

TEST(BatchWebWave, RejectsMalformedInput) {
  const RoutingTree tree = MakeChain(3);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {}), std::invalid_argument);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2}}), std::invalid_argument);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2, -1}}),
               std::invalid_argument);
  WebWaveOptions opt;
  opt.lane_block = 0;
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2, 3}}, opt),
               std::invalid_argument);
  const DemandMatrix wrong(5, 2);
  EXPECT_THROW(MakeCatalogBatch(tree, wrong), std::invalid_argument);
  // A shared edge build carries its alpha options: passing one built
  // under a different policy must be rejected, not silently diffused.
  WebWaveOptions fixed;
  fixed.alpha_policy = AlphaPolicy::kFixed;
  fixed.alpha = 0.4;
  const internal::SharedEdgeArrays mismatched =
      internal::BuildSharedEdgeArrays(tree, fixed);
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2, 3}}, {}, mismatched),
               std::invalid_argument);
  EXPECT_THROW(WebWaveSimulator(tree, {1, 2, 3}, {}, mismatched),
               std::invalid_argument);
  // ... and one built for a different same-sized tree must be rejected
  // too (wrong topology, not just wrong parameters).
  const RoutingTree other = RoutingTree::FromParents({1, 2, kNoNode});
  const internal::SharedEdgeArrays wrong_tree =
      internal::BuildSharedEdgeArrays(other, WebWaveOptions{});
  EXPECT_THROW(BatchWebWaveSimulator(tree, {{1, 2, 3}}, {}, wrong_tree),
               std::invalid_argument);
}

}  // namespace
}  // namespace webwave
