// Tests for the offline copy placement implied by TLB (§7): the derived
// per-document quotas realize exactly the WebFold node loads, respect
// per-document NSS, and concentrate copies of hot documents.
#include "core/load_model.h"
#include "core/webfold.h"
#include "doc/catalog.h"
#include "doc/placement.h"
#include "serve/placement_policy.h"
#include "sim/churn.h"
#include "tree/builders.h"

#include <gtest/gtest.h>

namespace webwave {
namespace {

TEST(Placement, RealizesTlbNodeLoadsExactly) {
  Rng rng(3);
  const RoutingTree tree = MakeKaryTree(2, 3);
  const DemandMatrix demand = LeafZipfDemand(tree, 8, 60, 1.0, rng);
  const PlacementResult p = DerivePlacement(tree, demand);
  const WebFoldResult tlb = WebFold(tree, demand.NodeTotals());
  for (NodeId v = 0; v < tree.size(); ++v) {
    double node_total = 0;
    for (DocId d = 0; d < 8; ++d)
      node_total += p.quota[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
    EXPECT_NEAR(node_total, tlb.load[v], 1e-6) << "node " << v;
  }
}

TEST(Placement, ConservesEveryDocumentsDemand) {
  Rng rng(5);
  const RoutingTree tree = MakeCaterpillar(4, 2);
  const DemandMatrix demand = UniformRandomDemand(tree, 5, 12, rng);
  const PlacementResult p = DerivePlacement(tree, demand);
  for (DocId d = 0; d < 5; ++d) {
    double served = 0;
    for (NodeId v = 0; v < tree.size(); ++v)
      served += p.quota[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
    EXPECT_NEAR(served, demand.DocTotal(d), 1e-6) << "doc " << d;
  }
}

TEST(Placement, PerDocumentNssHolds) {
  // For every document, the quota taken at a node never exceeds the flow
  // of that document arriving there — check by recomputing flows.
  Rng rng(7);
  const RoutingTree tree = MakeKaryTree(3, 2);
  const DemandMatrix demand = LeafZipfDemand(tree, 6, 40, 0.8, rng);
  const PlacementResult p = DerivePlacement(tree, demand);
  for (DocId d = 0; d < 6; ++d) {
    std::vector<double> fwd(static_cast<std::size_t>(tree.size()), 0.0);
    for (const NodeId v : tree.postorder()) {
      double arrive = demand.at(v, d);
      for (const NodeId c : tree.children(v))
        arrive += fwd[static_cast<std::size_t>(c)];
      const double q =
          p.quota[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
      EXPECT_LE(q, arrive + 1e-6) << "node " << v << " doc " << d;
      fwd[static_cast<std::size_t>(v)] = arrive - q;
      EXPECT_GE(fwd[static_cast<std::size_t>(v)], -1e-6);
    }
    EXPECT_NEAR(fwd[static_cast<std::size_t>(tree.root())], 0, 1e-6)
        << "doc " << d << " flow must terminate at the home";
  }
}

TEST(Placement, HotterDocumentsGetMoreCopies) {
  // One very hot document demanded everywhere vs. one cold document
  // demanded at a single leaf: the hot one must be replicated more.
  const RoutingTree tree = MakeKaryTree(2, 3);
  DemandMatrix demand(tree.size(), 2);
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v)) demand.set(v, 0, 50);
  demand.set(tree.size() - 1, 1, 5);
  const PlacementResult p = DerivePlacement(tree, demand);
  EXPECT_GT(p.copy_count[0], p.copy_count[1]);
  EXPECT_GE(p.copy_count[1], 1) << "home always holds a copy";
}

TEST(Placement, CopiesListMatchesQuotas) {
  Rng rng(11);
  const RoutingTree tree = MakeRandomTree(20, rng);
  const DemandMatrix demand = UniformRandomDemand(tree, 4, 8, rng);
  const PlacementResult p = DerivePlacement(tree, demand);
  for (DocId d = 0; d < 4; ++d) {
    double from_list = 0;
    for (const CopyAssignment& c : p.copies[static_cast<std::size_t>(d)]) {
      EXPECT_GT(c.rate, 0);
      EXPECT_NEAR(
          c.rate,
          p.quota[static_cast<std::size_t>(c.node)][static_cast<std::size_t>(d)],
          1e-9);
      from_list += c.rate;
    }
    EXPECT_NEAR(from_list, demand.DocTotal(d), 1e-6);
  }
}

TEST(Placement, SingleNodeServesItsOwnCatalog) {
  const RoutingTree tree = RoutingTree::FromParents({kNoNode});
  DemandMatrix demand(1, 3);
  demand.set(0, 0, 5);
  demand.set(0, 2, 7);
  const PlacementResult p = DerivePlacement(tree, demand);
  EXPECT_NEAR(p.quota[0][0], 5, 1e-9);
  EXPECT_NEAR(p.quota[0][1], 0, 1e-9);
  EXPECT_NEAR(p.quota[0][2], 7, 1e-9);
}

class PlacementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementSweep, RandomInstancesStayConsistent) {
  Rng rng(GetParam());
  const int n = 5 + static_cast<int>(rng.NextBelow(40));
  const int docs = 2 + static_cast<int>(rng.NextBelow(10));
  const RoutingTree tree = MakeRandomTree(n, rng);
  const DemandMatrix demand = UniformRandomDemand(tree, docs, 20, rng);
  const PlacementResult p = DerivePlacement(tree, demand);
  // Total placed equals total demand.
  double placed = 0;
  for (const auto& row : p.quota)
    for (const double q : row) placed += q;
  EXPECT_NEAR(placed, demand.Total(), 1e-5);
  // Node loads are the TLB loads (feasibility already proven by WebFold
  // tests; here we only need consistency of the decomposition).
  for (NodeId v = 0; v < n; ++v) {
    double node_total = 0;
    for (const double q : p.quota[static_cast<std::size_t>(v)]) node_total += q;
    EXPECT_NEAR(node_total, p.node_loads[static_cast<std::size_t>(v)], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Churned demand ----------------------------------------------------------
//
// DerivePlacement must keep its invariants when the demand comes from a
// live churn process, not a static matrix: per-document NSS (a node's
// quota never exceeds the document flow passing it) and conservation of
// every document's total rate, at every epoch of a ChurnSchedule.

void CheckPlacementInvariants(const RoutingTree& tree,
                              const DemandMatrix& demand) {
  const PlacementResult p = DerivePlacement(tree, demand);
  const int docs = demand.doc_count();
  double placed_total = 0;
  for (DocId d = 0; d < docs; ++d) {
    // NSS via recomputed flows, and per-document rate conservation.
    std::vector<double> fwd(static_cast<std::size_t>(tree.size()), 0.0);
    double served = 0;
    for (const NodeId v : tree.postorder()) {
      double arrive = demand.at(v, d);
      for (const NodeId c : tree.children(v))
        arrive += fwd[static_cast<std::size_t>(c)];
      const double q =
          p.quota[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
      ASSERT_LE(q, arrive + 1e-6) << "NSS broken at node " << v << " doc " << d;
      fwd[static_cast<std::size_t>(v)] = arrive - q;
      served += q;
    }
    EXPECT_NEAR(fwd[static_cast<std::size_t>(tree.root())], 0, 1e-6)
        << "doc " << d;
    EXPECT_NEAR(served, demand.DocTotal(d), 1e-6) << "doc " << d;
    placed_total += served;
  }
  EXPECT_NEAR(placed_total, demand.Total(), 1e-5);
}

class PlacementChurn : public ::testing::TestWithParam<ChurnPattern> {};

TEST_P(PlacementChurn, InvariantsHoldAcrossEpochs) {
  Rng rng(23);
  const RoutingTree tree = MakeRandomTree(120, rng);
  ChurnScheduleOptions opt;
  opt.pattern = GetParam();
  opt.doc_count = 6;
  opt.base_rate = 2.0;
  opt.hot_rate = 40.0;
  opt.hot_fraction = 0.2;
  opt.rotation_epochs = 5;
  opt.seed = 77;
  ChurnSchedule schedule(tree, opt);

  for (int epoch = 0; epoch < 6; ++epoch) {
    CheckPlacementInvariants(tree, DemandFromLanes(schedule.Lanes()));
    schedule.NextEvents();
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, PlacementChurn,
                         ::testing::Values(ChurnPattern::kRotatingHotSpot,
                                           ChurnPattern::kFlashCrowd,
                                           ChurnPattern::kZipfReshuffle));

TEST(PlacementChurn, RotatingHotSpotKeepsTotalRate) {
  // The rotating window only moves demand; the total rate the placement
  // realizes must be epoch-invariant.
  Rng rng(31);
  const RoutingTree tree = MakeRandomTree(150, rng);
  ChurnScheduleOptions opt;
  opt.doc_count = 4;
  opt.base_rate = 1.0;
  opt.hot_rate = 25.0;
  opt.hot_fraction = 0.25;
  opt.rotation_epochs = 4;
  ChurnSchedule schedule(tree, opt);

  double first_total = -1;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const DemandMatrix demand = DemandFromLanes(schedule.Lanes());
    const PlacementResult p = DerivePlacement(tree, demand);
    double placed = 0;
    for (const auto& row : p.quota)
      for (const double q : row) placed += q;
    if (first_total < 0)
      first_total = placed;
    else
      EXPECT_NEAR(placed, first_total, 1e-6 * (1 + first_total));
    schedule.NextEvents();
  }
}

}  // namespace
}  // namespace webwave
