// Constructors for the tree shapes used throughout the paper's evaluation:
// hand-crafted figure trees, regular families for analytical checks, and
// the random trees of bounded depth used in §5.1's γ-estimation experiment.
#pragma once

#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

// A path 0 - 1 - ... - n-1 rooted at node 0 (each node's parent is its
// predecessor).
RoutingTree MakeChain(int n);

// Node 0 is the root; nodes 1..n-1 are its children.
RoutingTree MakeStar(int n);

// Complete tree where every internal node has `arity` children and leaves
// sit at the given depth (depth 0 = a single root).
RoutingTree MakeKaryTree(int arity, int depth);

// A caterpillar: a spine chain of `spine` nodes, each with `legs` leaf
// children.  Exercises folds that mix chains with bushy nodes.
RoutingTree MakeCaterpillar(int spine, int legs);

// Uniform random recursive tree on n nodes: node i attaches to a uniformly
// random earlier node.  Depth grows as O(log n).
RoutingTree MakeRandomTree(int n, Rng& rng);

// Random tree of exactly the requested height: first a random chain of
// `height`+1 nodes establishes the depth, then the remaining nodes attach
// to random existing nodes at depth < height.  This is the family used for
// the paper's "random tree with depth 9" convergence-rate fit.
RoutingTree MakeRandomTreeOfHeight(int n, int height, Rng& rng);

// Random binary tree (each node has at most two children).
RoutingTree MakeRandomBinaryTree(int n, Rng& rng);

}  // namespace webwave
