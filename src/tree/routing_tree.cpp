#include "tree/routing_tree.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

RoutingTree RoutingTree::FromParents(std::vector<NodeId> parents) {
  const int n = static_cast<int>(parents.size());
  WEBWAVE_REQUIRE(n > 0, "tree must have at least one node");

  RoutingTree t;
  t.parents_ = std::move(parents);
  t.children_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = t.parents_[v];
    if (p == kNoNode) {
      WEBWAVE_REQUIRE(t.root_ == kNoNode, "tree must have exactly one root");
      t.root_ = v;
    } else {
      WEBWAVE_REQUIRE(p >= 0 && p < n, "parent id out of range");
      WEBWAVE_REQUIRE(p != v, "node cannot be its own parent");
      t.children_[p].push_back(v);
    }
  }
  WEBWAVE_REQUIRE(t.root_ != kNoNode, "tree must have a root (parent == -1)");
  for (auto& c : t.children_) std::sort(c.begin(), c.end());

  // BFS/DFS from the root establishes reachability (hence acyclicity, since
  // we have n-1 parent edges), depths and traversal orders.
  t.depth_.assign(n, -1);
  t.preorder_.reserve(n);
  std::vector<NodeId> stack = {t.root_};
  t.depth_[t.root_] = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    t.preorder_.push_back(v);
    t.height_ = std::max(t.height_, t.depth_[v]);
    // Push children in reverse so preorder visits them in ascending order.
    for (auto it = t.children_[v].rbegin(); it != t.children_[v].rend(); ++it) {
      WEBWAVE_REQUIRE(t.depth_[*it] == -1, "cycle detected in parent array");
      t.depth_[*it] = t.depth_[v] + 1;
      stack.push_back(*it);
    }
  }
  WEBWAVE_REQUIRE(static_cast<int>(t.preorder_.size()) == n,
                  "parent array contains a cycle or disconnected node");

  t.postorder_.assign(t.preorder_.rbegin(), t.preorder_.rend());
  // Reversed preorder is a valid postorder for this traversal: every node
  // appears after all nodes of its subtree.
  t.subtree_size_.assign(n, 1);
  for (const NodeId v : t.postorder_) {
    if (t.parents_[v] != kNoNode) t.subtree_size_[t.parents_[v]] += t.subtree_size_[v];
  }
  WEBWAVE_ASSERT(t.subtree_size_[t.root_] == n, "subtree sizes inconsistent");
  return t;
}

void RoutingTree::CheckNode(NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < size(), "node id out of range");
}

NodeId RoutingTree::parent(NodeId v) const {
  CheckNode(v);
  return parents_[v];
}

const std::vector<NodeId>& RoutingTree::children(NodeId v) const {
  CheckNode(v);
  return children_[v];
}

int RoutingTree::degree(NodeId v) const {
  CheckNode(v);
  return static_cast<int>(children_[v].size()) + (v == root_ ? 0 : 1);
}

int RoutingTree::depth(NodeId v) const {
  CheckNode(v);
  return depth_[v];
}

int RoutingTree::subtree_size(NodeId v) const {
  CheckNode(v);
  return subtree_size_[v];
}

std::vector<NodeId> RoutingTree::subtree(NodeId v) const {
  CheckNode(v);
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(subtree_size_[v]));
  std::vector<NodeId> stack = {v};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    out.push_back(u);
    for (auto it = children_[u].rbegin(); it != children_[u].rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

bool RoutingTree::is_ancestor(NodeId ancestor, NodeId v) const {
  CheckNode(ancestor);
  CheckNode(v);
  // Walk up from v; depths bound the walk.
  while (v != kNoNode && depth_[v] >= depth_[ancestor]) {
    if (v == ancestor) return true;
    v = parents_[v];
  }
  return false;
}

std::vector<NodeId> RoutingTree::path_to_root(NodeId v) const {
  CheckNode(v);
  std::vector<NodeId> path;
  for (NodeId u = v; u != kNoNode; u = parents_[u]) path.push_back(u);
  return path;
}

}  // namespace webwave
