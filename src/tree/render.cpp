#include "tree/render.h"

#include <sstream>

namespace webwave {

namespace {

void RenderNode(const RoutingTree& tree, NodeId v, const std::string& prefix,
                bool last, const std::function<std::string(NodeId)>& annotate,
                std::ostringstream& os) {
  os << prefix;
  if (!tree.is_root(v)) os << (last ? "`-- " : "|-- ");
  os << v;
  if (annotate) {
    const std::string extra = annotate(v);
    if (!extra.empty()) os << "  [" << extra << "]";
  }
  os << '\n';
  const auto& kids = tree.children(v);
  const std::string child_prefix =
      tree.is_root(v) ? prefix : prefix + (last ? "    " : "|   ");
  for (std::size_t i = 0; i < kids.size(); ++i)
    RenderNode(tree, kids[i], child_prefix, i + 1 == kids.size(), annotate, os);
}

}  // namespace

std::string RenderTree(const RoutingTree& tree,
                       const std::function<std::string(NodeId)>& annotate) {
  std::ostringstream os;
  RenderNode(tree, tree.root(), "", true, annotate, os);
  return os.str();
}

std::string RenderDot(const RoutingTree& tree,
                      const std::function<std::string(NodeId)>& label) {
  std::ostringstream os;
  os << "digraph routing_tree {\n  rankdir=BT;\n";
  for (NodeId v = 0; v < tree.size(); ++v) {
    os << "  n" << v << " [label=\"" << v;
    if (label) {
      const std::string extra = label(v);
      if (!extra.empty()) os << "\\n" << extra;
    }
    os << "\"];\n";
  }
  for (NodeId v = 0; v < tree.size(); ++v)
    if (!tree.is_root(v)) os << "  n" << v << " -> n" << tree.parent(v) << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace webwave
