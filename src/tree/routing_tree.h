// The routing tree T — the substrate of the whole paper.
//
// WebWave models the Internet as a forest of trees, each rooted at a home
// server; every request for a document travels from its originating node up
// the tree toward the root, and may be served by any node it passes (paper
// §3, Figure 1).  A RoutingTree captures the routes in effect at a point in
// time: node i is the parent of j if i is the first cache server on the
// route from j to the home server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace webwave {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

// An immutable rooted tree over nodes 0..n-1, stored as a parent array with
// derived children lists, depths, subtree sizes and traversal orders.
// Construction validates that the parent array describes a single tree
// (exactly one root, no cycles, all nodes reachable).
class RoutingTree {
 public:
  // parents[i] is the parent of node i; exactly one entry must be kNoNode
  // (the root / home server).  Throws std::invalid_argument otherwise.
  static RoutingTree FromParents(std::vector<NodeId> parents);

  int size() const { return static_cast<int>(parents_.size()); }
  NodeId root() const { return root_; }

  NodeId parent(NodeId v) const;
  const std::vector<NodeId>& children(NodeId v) const;
  bool is_root(NodeId v) const { return v == root_; }
  bool is_leaf(NodeId v) const { return children(v).empty(); }
  int degree(NodeId v) const;  // children + (1 if not root)

  // Depth of v (root has depth 0) and the height of the whole tree (depth
  // of the deepest node).
  int depth(NodeId v) const;
  int height() const { return height_; }

  // Number of nodes in the subtree rooted at v, including v.
  int subtree_size(NodeId v) const;

  // Node orders.  preorder() visits parents before children; postorder()
  // visits children before parents.  Both are deterministic (children in
  // ascending NodeId order).
  const std::vector<NodeId>& preorder() const { return preorder_; }
  const std::vector<NodeId>& postorder() const { return postorder_; }

  // All nodes of the subtree rooted at v, in preorder.
  std::vector<NodeId> subtree(NodeId v) const;

  // True if `ancestor` lies on the path from v to the root (v counts as its
  // own ancestor).
  bool is_ancestor(NodeId ancestor, NodeId v) const;

  // Path from v up to the root, inclusive of both ends.
  std::vector<NodeId> path_to_root(NodeId v) const;

  // Number of edges, always size() - 1.
  int edge_count() const { return size() - 1; }

  const std::vector<NodeId>& parents() const { return parents_; }

 private:
  RoutingTree() = default;
  void CheckNode(NodeId v) const;

  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<int> depth_;
  std::vector<int> subtree_size_;
  std::vector<NodeId> preorder_;
  std::vector<NodeId> postorder_;
  NodeId root_ = kNoNode;
  int height_ = 0;
};

}  // namespace webwave
