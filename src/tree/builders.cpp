#include "tree/builders.h"

#include <vector>

#include "util/check.h"

namespace webwave {

RoutingTree MakeChain(int n) {
  WEBWAVE_REQUIRE(n >= 1, "chain needs at least one node");
  std::vector<NodeId> parents(static_cast<std::size_t>(n));
  parents[0] = kNoNode;
  for (int i = 1; i < n; ++i) parents[static_cast<std::size_t>(i)] = i - 1;
  return RoutingTree::FromParents(std::move(parents));
}

RoutingTree MakeStar(int n) {
  WEBWAVE_REQUIRE(n >= 1, "star needs at least one node");
  std::vector<NodeId> parents(static_cast<std::size_t>(n), 0);
  parents[0] = kNoNode;
  return RoutingTree::FromParents(std::move(parents));
}

RoutingTree MakeKaryTree(int arity, int depth) {
  WEBWAVE_REQUIRE(arity >= 1, "arity must be >= 1");
  WEBWAVE_REQUIRE(depth >= 0, "depth must be >= 0");
  std::vector<NodeId> parents = {kNoNode};
  // Breadth-first generation: `frontier` holds the nodes at the current
  // depth, each of which receives `arity` children.
  std::vector<NodeId> frontier = {0};
  for (int d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(arity));
    for (const NodeId p : frontier) {
      for (int k = 0; k < arity; ++k) {
        next.push_back(static_cast<NodeId>(parents.size()));
        parents.push_back(p);
      }
    }
    frontier = std::move(next);
  }
  return RoutingTree::FromParents(std::move(parents));
}

RoutingTree MakeCaterpillar(int spine, int legs) {
  WEBWAVE_REQUIRE(spine >= 1, "caterpillar needs a spine");
  WEBWAVE_REQUIRE(legs >= 0, "legs must be >= 0");
  std::vector<NodeId> parents;
  parents.reserve(static_cast<std::size_t>(spine) * (1 + legs));
  std::vector<NodeId> spine_ids;
  for (int i = 0; i < spine; ++i) {
    spine_ids.push_back(static_cast<NodeId>(parents.size()));
    parents.push_back(i == 0 ? kNoNode : spine_ids[static_cast<std::size_t>(i - 1)]);
    for (int l = 0; l < legs; ++l) parents.push_back(spine_ids.back());
  }
  return RoutingTree::FromParents(std::move(parents));
}

RoutingTree MakeRandomTree(int n, Rng& rng) {
  WEBWAVE_REQUIRE(n >= 1, "tree needs at least one node");
  std::vector<NodeId> parents(static_cast<std::size_t>(n));
  parents[0] = kNoNode;
  for (int i = 1; i < n; ++i)
    parents[static_cast<std::size_t>(i)] =
        static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(i)));
  return RoutingTree::FromParents(std::move(parents));
}

RoutingTree MakeRandomTreeOfHeight(int n, int height, Rng& rng) {
  WEBWAVE_REQUIRE(height >= 0, "height must be >= 0");
  WEBWAVE_REQUIRE(n >= height + 1, "need at least height+1 nodes");
  WEBWAVE_REQUIRE(height >= 1 || n == 1,
                  "height 0 admits only the single-node tree");
  std::vector<NodeId> parents(static_cast<std::size_t>(n));
  std::vector<int> depth(static_cast<std::size_t>(n));
  parents[0] = kNoNode;
  depth[0] = 0;
  // The first height+1 nodes form a chain pinning the tree's height.
  for (int i = 1; i <= height; ++i) {
    parents[static_cast<std::size_t>(i)] = i - 1;
    depth[static_cast<std::size_t>(i)] = i;
  }
  // Remaining nodes attach uniformly among nodes that would not deepen the
  // tree beyond `height`.
  for (int i = height + 1; i < n; ++i) {
    NodeId p;
    do {
      p = static_cast<NodeId>(rng.NextBelow(static_cast<std::uint64_t>(i)));
    } while (depth[static_cast<std::size_t>(p)] >= height);
    parents[static_cast<std::size_t>(i)] = p;
    depth[static_cast<std::size_t>(i)] = depth[static_cast<std::size_t>(p)] + 1;
  }
  return RoutingTree::FromParents(std::move(parents));
}

RoutingTree MakeRandomBinaryTree(int n, Rng& rng) {
  WEBWAVE_REQUIRE(n >= 1, "tree needs at least one node");
  std::vector<NodeId> parents(static_cast<std::size_t>(n));
  std::vector<int> child_count(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> open = {0};  // nodes with < 2 children
  parents[0] = kNoNode;
  for (int i = 1; i < n; ++i) {
    const std::size_t k =
        static_cast<std::size_t>(rng.NextBelow(open.size()));
    const NodeId p = open[k];
    parents[static_cast<std::size_t>(i)] = p;
    if (++child_count[static_cast<std::size_t>(p)] == 2) {
      open[k] = open.back();
      open.pop_back();
    }
    open.push_back(static_cast<NodeId>(i));
  }
  return RoutingTree::FromParents(std::move(parents));
}

}  // namespace webwave
