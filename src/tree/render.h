// Text rendering of routing trees, with optional per-node annotations —
// used by the examples and by the figure-reproduction benches to show
// spontaneous rates, TLB assignments and fold membership the way the
// paper's figures do.
#pragma once

#include <functional>
#include <string>

#include "tree/routing_tree.h"

namespace webwave {

// Renders the tree as indented ASCII art.  `annotate` (if provided) returns
// extra text appended to each node's line, e.g. "E=30 L=25 fold=2".
std::string RenderTree(
    const RoutingTree& tree,
    const std::function<std::string(NodeId)>& annotate = nullptr);

// Graphviz DOT output for offline visualisation.
std::string RenderDot(
    const RoutingTree& tree,
    const std::function<std::string(NodeId)>& label = nullptr);

}  // namespace webwave
