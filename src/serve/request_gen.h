// Deterministic request streams for the serving data plane.
//
// The control plane (WebWave diffusion, TLB, DerivePlacement) works on
// *rates*; the data plane serves *requests*.  RequestGenerator bridges the
// two: it samples (origin node, document) records from a mixture of
// product-form demand components — each component is a total request rate
// times an origin field over the tree's nodes times a catalog popularity
// law (the "Zipf catalog draws × leaf demand fields" of the paper's
// motivation) — and exposes the exact per-document rate lanes the mixture
// implies, so placement and serving face the same demand by construction.
//
// Determinism is counter-based, not stream-based: request i's draws are a
// pure function of (seed, i) via SplitMix64, so the stream is identical no
// matter how it is cut into batches and can be regenerated from any
// position — the property the thread-invariance guarantees of the serving
// plane and the replayability of the benches rest on.
//
// The component factories mirror the demand shapes of sim/churn and
// doc/catalog (rotating hot spot, flash crowd, Zipf leaves) cell for cell,
// which serving_test asserts against ChurnSchedule.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/catalog.h"
#include "tree/routing_tree.h"

namespace webwave {

// One served request: a document demanded at an origin node (a leaf in the
// paper's client-at-the-edge scenarios, but any node is allowed).
struct Request {
  NodeId node = kNoNode;
  DocId doc = 0;
};

// A product-form demand component: requests arrive at `rate` req/s total,
// the origin is drawn proportional to origin_weights, the document
// independently proportional to doc_weights.
struct DemandComponent {
  double rate = 0;                     // total req/s of this component
  std::vector<double> origin_weights;  // per node, >= 0, some > 0
  std::vector<double> doc_weights;     // per document, >= 0, some > 0
};

// Factories matching the repo's demand generators ------------------------

// Every non-root leaf requests at rate_per_leaf, split across the catalog
// by Zipf(exponent) — the LeafZipfDemand shape (without per-leaf jitter).
DemandComponent ZipfLeafComponent(const RoutingTree& tree, int doc_count,
                                  double rate_per_leaf, double exponent);

// The RotatingHotSpotDemand / ChurnSchedule(kRotatingHotSpot) shape at a
// given epoch of rotation_epochs: a circular window of hot_fraction of the
// non-root leaves (ascending id ring) requests at hot_rate, the rest at
// base_rate, every leaf splitting its rate across documents by Zipf(1).
DemandComponent RotatingHotSpotComponent(const RoutingTree& tree,
                                         int doc_count, double base_rate,
                                         double hot_rate, double hot_fraction,
                                         int epoch, int rotation_epochs);

// The FlashCrowdDemand overlay: every node of the subtree rooted at
// `epicenter` requests document hot_doc at rate_per_node.
DemandComponent FlashCrowdComponent(const RoutingTree& tree, int doc_count,
                                    double rate_per_node, DocId hot_doc,
                                    NodeId epicenter);

// The generator ----------------------------------------------------------

class RequestGenerator {
 public:
  // Throws if a component's weights mismatch the tree/catalog or sum to
  // zero while its rate is positive.  Zero-rate components are dropped.
  RequestGenerator(const RoutingTree& tree, int doc_count,
                   std::vector<DemandComponent> components,
                   std::uint64_t seed);

  int doc_count() const { return docs_; }
  double total_rate() const { return total_rate_; }
  // Requests drawn so far (the stream position).
  std::uint64_t position() const { return position_; }

  // Fills `out` with the next `count` records (replacing its contents) and
  // advances the position.  Record k of the call is the stream's request
  // position()+k and depends only on (seed, that index).
  void NextBatch(std::size_t count, std::vector<Request>* out);

  // Rewinds/advances the stream to an absolute position (replay).
  void Seek(std::uint64_t position) { position_ = position; }

  // The exact per-document demand lanes the mixture implies:
  // lanes[d][v] = Σ_c rate_c · origin_pmf_c(v) · doc_pmf_c(d) — the
  // control-plane input (BatchWebWaveSimulator lanes, PlacementPolicy
  // demand) that faces the same load this generator emits.
  std::vector<std::vector<double>> ExpectedLanes() const;

  // ExpectedLanes as a DemandMatrix (DerivePlacement's input form).
  DemandMatrix ExpectedDemand() const;

 private:
  struct Component {
    double rate = 0;
    std::vector<double> origin_cdf;  // over nodes, normalized to 1
    std::vector<double> doc_cdf;     // over documents, normalized to 1
    std::size_t source = 0;          // index into components_ (copy-safe)
  };

  int nodes_;
  int docs_;
  std::uint64_t seed_;
  std::uint64_t position_ = 0;
  double total_rate_ = 0;
  std::vector<DemandComponent> components_;  // kept for ExpectedLanes
  std::vector<Component> sampled_;
  std::vector<double> component_cdf_;  // over sampled_, normalized to 1
};

}  // namespace webwave
