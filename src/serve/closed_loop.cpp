#include "serve/closed_loop.h"

#include <algorithm>
#include <iterator>

#include "util/check.h"

namespace webwave {

ArrivalFold::ArrivalFold(int node_count, int doc_count)
    : nodes_(node_count), docs_(doc_count) {
  WEBWAVE_REQUIRE(node_count >= 1 && doc_count >= 1,
                  "fold needs nodes and documents");
  counts_.assign(
      static_cast<std::size_t>(node_count) * static_cast<std::size_t>(doc_count),
      0);
  applied_.assign(counts_.size(), 0.0);
}

void ArrivalFold::Count(Span<Request> batch) {
  const std::size_t dd = static_cast<std::size_t>(docs_);
  for (const Request& r : batch) {
    WEBWAVE_REQUIRE(r.node >= 0 && r.node < nodes_,
                    "request origin out of range");
    WEBWAVE_REQUIRE(r.doc >= 0 && r.doc < docs_,
                    "request document out of range");
    const std::size_t cell = static_cast<std::size_t>(r.node) * dd +
                             static_cast<std::size_t>(r.doc);
    // First hit of the window registers the cell for Drain's sparse walk.
    if (counts_[cell]++ == 0)
      touched_.push_back(static_cast<std::int64_t>(cell));
  }
  counted_ += batch.size();
}

std::vector<DemandEvent> ArrivalFold::Drain(double window_seconds) {
  WEBWAVE_REQUIRE(window_seconds > 0, "window must be positive");
  const std::size_t dd = static_cast<std::size_t>(docs_);
  // The cells that can produce an event are exactly (touched this window)
  // ∪ (applied nonzero last time): anything else has count 0 and applied
  // 0, so rate == applied and the old dense scan skipped it too.  Sorting
  // the union restores the dense scan's node-major, document-minor
  // emission order, so the event batches are byte-identical to it.
  std::sort(touched_.begin(), touched_.end());
  std::vector<std::int64_t> cells;
  cells.reserve(touched_.size() + active_.size());
  std::merge(touched_.begin(), touched_.end(), active_.begin(),
             active_.end(), std::back_inserter(cells));
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());

  std::vector<DemandEvent> events;
  std::vector<std::int64_t> next_active;
  for (const std::int64_t cell64 : cells) {
    const std::size_t cell = static_cast<std::size_t>(cell64);
    const double rate = static_cast<double>(counts_[cell]) / window_seconds;
    if (rate != applied_[cell]) {
      events.push_back({static_cast<std::int32_t>(cell % dd),
                        static_cast<NodeId>(cell / dd), rate});
      applied_[cell] = rate;
    }
    if (applied_[cell] != 0) next_active.push_back(cell64);
    counts_[cell] = 0;
  }
  active_ = std::move(next_active);
  touched_.clear();
  counted_ = 0;
  return events;
}

}  // namespace webwave
