#include "serve/closed_loop.h"

#include "util/check.h"

namespace webwave {

ArrivalFold::ArrivalFold(int node_count, int doc_count)
    : nodes_(node_count), docs_(doc_count) {
  WEBWAVE_REQUIRE(node_count >= 1 && doc_count >= 1,
                  "fold needs nodes and documents");
  counts_.assign(
      static_cast<std::size_t>(node_count) * static_cast<std::size_t>(doc_count),
      0);
  applied_.assign(counts_.size(), 0.0);
}

void ArrivalFold::Count(Span<Request> batch) {
  const std::size_t dd = static_cast<std::size_t>(docs_);
  for (const Request& r : batch) {
    WEBWAVE_REQUIRE(r.node >= 0 && r.node < nodes_,
                    "request origin out of range");
    WEBWAVE_REQUIRE(r.doc >= 0 && r.doc < docs_,
                    "request document out of range");
    ++counts_[static_cast<std::size_t>(r.node) * dd +
              static_cast<std::size_t>(r.doc)];
  }
  counted_ += batch.size();
}

std::vector<DemandEvent> ArrivalFold::Drain(double window_seconds) {
  WEBWAVE_REQUIRE(window_seconds > 0, "window must be positive");
  const std::size_t dd = static_cast<std::size_t>(docs_);
  std::vector<DemandEvent> events;
  for (std::size_t v = 0; v < static_cast<std::size_t>(nodes_); ++v)
    for (std::size_t d = 0; d < dd; ++d) {
      const std::size_t cell = v * dd + d;
      const double rate =
          static_cast<double>(counts_[cell]) / window_seconds;
      if (rate != applied_[cell]) {
        events.push_back({static_cast<std::int32_t>(d),
                          static_cast<NodeId>(v), rate});
        applied_[cell] = rate;
      }
      counts_[cell] = 0;
    }
  counted_ = 0;
  return events;
}

}  // namespace webwave
