// Copy placement strategies behind one interface — the baselines WebWave
// has to beat, and WebWave itself.
//
// A PlacementPolicy turns per-document demand lanes (the control-plane
// view of what clients will request) into a QuotaSnapshot the serving
// plane can route against.  The baselines bracket the design space the
// cooperative-caching literature compares against:
//
//   * HomeOnlyPolicy       — no caching at all; the home serves everything.
//     The worst case every placement is measured against.
//   * UniformTopKPolicy    — replicate the k globally hottest documents at
//     r servers chosen uniformly at random, demand geometry ignored (the
//     naive CDN push).
//   * GreedyByPopularityPolicy — every server caches its c locally hottest
//     passing documents outright (LFU-style en-route caching with no
//     coordination).
//   * WebWaveTlbPolicy     — the paper's answer: DerivePlacement's
//     TLB-realizing quotas, the fixed point WebWave diffuses to.
//
// Live diffused placements come from QuotaSnapshot::FromBatch instead of a
// policy — the closed loop re-snapshots the batch engine every epoch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "doc/catalog.h"
#include "serve/quota_snapshot.h"
#include "tree/routing_tree.h"

namespace webwave {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;
  // lanes[d][v] is document d's demand rate at node v (the batch
  // simulator's construction input; RequestGenerator::ExpectedLanes).
  virtual QuotaSnapshot Place(
      const RoutingTree& tree,
      const std::vector<std::vector<double>>& lanes) const = 0;
};

// Doc-major lanes as a DemandMatrix (DerivePlacement's input form).
DemandMatrix DemandFromLanes(const std::vector<std::vector<double>>& lanes);

class HomeOnlyPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "home-only"; }
  QuotaSnapshot Place(
      const RoutingTree& tree,
      const std::vector<std::vector<double>>& lanes) const override;
};

class UniformTopKPolicy : public PlacementPolicy {
 public:
  // The k hottest documents each get `replicas` copies at uniformly random
  // non-root nodes (deterministic in `seed`); each copy, home included, is
  // allocated an equal share of the document's demand.  Colder documents
  // stay home-only.
  UniformTopKPolicy(int top_k, int replicas, std::uint64_t seed = 1);
  std::string name() const override;
  QuotaSnapshot Place(
      const RoutingTree& tree,
      const std::vector<std::vector<double>>& lanes) const override;

 private:
  int top_k_;
  int replicas_;
  std::uint64_t seed_;
};

class GreedyByPopularityPolicy : public PlacementPolicy {
 public:
  // Every non-root server absorbs, in full, the `capacity_docs` documents
  // with the most demand flowing through it (bottom-up, so "flowing
  // through" accounts for what descendants already absorbed).
  explicit GreedyByPopularityPolicy(int capacity_docs);
  std::string name() const override;
  QuotaSnapshot Place(
      const RoutingTree& tree,
      const std::vector<std::vector<double>>& lanes) const override;

 private:
  int capacity_docs_;
};

class WebWaveTlbPolicy : public PlacementPolicy {
 public:
  std::string name() const override { return "webwave-tlb"; }
  QuotaSnapshot Place(
      const RoutingTree& tree,
      const std::vector<std::vector<double>>& lanes) const override;
};

// All four strategies in comparison order (baselines first, WebWave last).
std::vector<std::unique_ptr<PlacementPolicy>> StandardPolicies(
    int top_k, int replicas, int capacity_docs, std::uint64_t seed = 1);

}  // namespace webwave
