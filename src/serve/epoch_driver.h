// EpochDriver — one call per closed-loop control epoch.
//
// Every closed-loop harness in the repo repeats the same five-step
// incantation after serving a half-window: apply the folded demand
// events to the diffusion engine, step it, re-sync the maintained
// QuotaSnapshot from the engine's dirty lanes, re-project the capacity
// and fault layers in order, and re-install the down set.  This class
// owns that sequence — ApplyEpoch(churn_events, fault_events) does all
// of it, in the one layering order that is correct (capacity clamps the
// base, faults re-home the clamped result, the fault layer's affected
// set unions the capacity layer's last_affected_docs), and asserts the
// spill invariant (ConservesTotalRate) every projection.
//
// Attach whatever layers the harness uses:
//   * nothing        — the maintained snapshot just tracks the engine;
//   * AttachPlane    — a long-lived ServingPlane is hint-refreshed from
//                      the snapshot each epoch (the tab_serving loop);
//   * AttachCapacity — finite storage clamps the snapshot (serving_loop);
//   * AttachFaults   — crash/recover events re-home quota (fault_loop,
//                      tab_faults), and down() carries the live down set.
//
// serving() always names the snapshot planes should serve from: the
// last attached layer's clamped() output, or the raw maintained
// snapshot when no projector is attached.
#pragma once

#include <cstdint>
#include <vector>

#include "core/webwave_batch.h"
#include "fault/fault_projector.h"
#include "fault/fault_schedule.h"
#include "obs/clock.h"
#include "obs/metric_registry.h"
#include "obs/timeline.h"
#include "serve/quota_snapshot.h"
#include "serve/serving_plane.h"
#include "store/capacity_projector.h"
#include "util/span.h"

namespace webwave {

class EpochDriver {
 public:
  struct Options {
    // Diffusion steps per ApplyEpoch (how long the engine re-balances
    // on the new demand before the snapshot re-syncs).
    int steps_per_epoch = 12;
    // FromBatch cell threshold for the maintained snapshot.
    double min_rate = 1e-12;
  };

  // The six phases of one ApplyEpoch, in execution order — the epoch
  // phase profiler's vocabulary.
  enum Phase {
    kDemand = 0,     // ApplyDemandEvents
    kDiffusion = 1,  // steps_per_epoch engine steps
    kRefresh = 2,    // snapshot re-sync from dirty lanes
    kClamp = 3,      // capacity re-projection
    kRehome = 4,     // fault re-projection
    kInstall = 5,    // plane refresh + down-set install
    kPhaseCount = 6,
  };
  static const char* PhaseName(int phase);

  struct Report {
    std::vector<int> dirty;   // the engine lanes that moved this epoch
    bool snapshot_in_place = false;   // RefreshFromBatch held the shape
    bool projections_in_place = false;  // every projector refresh did too
    // Wall time per phase from the attached clock; all zeros without one.
    // Timings never participate in identity assertions — only the fields
    // above and the layer outputs do.
    std::uint64_t phase_ns[kPhaseCount] = {};
  };

  // Builds the maintained snapshot (FromBatch) and clears the engine's
  // dirty lanes — the state every harness sets up by hand today.  The
  // engine must outlive the driver.
  explicit EpochDriver(BatchWebWaveSimulator& sim);
  EpochDriver(BatchWebWaveSimulator& sim, Options options);

  // Layers, projected immediately on attach (capacity before faults;
  // attaching capacity after faults re-projects the fault layer onto
  // the clamped base).  Attached objects must outlive the driver.
  void AttachCapacity(CapacityProjector* projector);
  void AttachFaults(FaultProjector* projector);
  // A long-lived plane refreshed from serving() at the end of every
  // ApplyEpoch (hinted by the epoch's affected documents).
  void AttachPlane(ServingPlane* plane);

  // --- telemetry (src/obs/) ----------------------------------------------
  // Phase timings come from `clock` (nullptr = record zeros, the
  // default).  Production passes a SteadyClock, tests a FakeClock.
  void SetClock(MonotonicClock* clock) { clock_ = clock; }
  // Per-epoch publishing: gauges for the epoch's dirty-lane count,
  // in-place flags, phase timings and each attached projector's spill
  // stats (SpillProjector::PublishMetrics), plus an "epoch.count"
  // counter.  nullptr detaches.
  void AttachRegistry(MetricRegistry* registry);
  // One JSON-lines record appended per ApplyEpoch (epoch index, dirty
  // lanes, in-place flags, phase ns, projector stats).  nullptr detaches.
  void AttachTimeline(Timeline* timeline) { timeline_ = timeline; }
  std::uint64_t epoch_index() const { return epoch_index_; }

  // One control epoch: demand events into the engine, steps_per_epoch
  // diffusion steps, snapshot re-sync over the dirty lanes, capacity
  // then fault re-projection (fault events applied first), down set and
  // attached plane re-installed.  Either span may be empty.
  Report ApplyEpoch(Span<DemandEvent> churn_events,
                    Span<const FaultEvent> fault_events);

  // The maintained base snapshot (before any clamping).
  const QuotaSnapshot& snapshot() const { return snap_; }
  // What planes should serve from: the last projection layer's output.
  const QuotaSnapshot& serving() const;
  // The fault layer's down set (empty without one) — ready for
  // ServingPlane::SetDownNodes.
  Span<const NodeId> down() const;
  // SetDownNodes(down()) on an externally built plane (e.g. the stale
  // plane serving the first half-window).
  void InstallDown(ServingPlane& plane) const;

 private:
  void Publish(const Report& report);

  BatchWebWaveSimulator& sim_;
  Options options_;
  QuotaSnapshot snap_;
  CapacityProjector* capacity_ = nullptr;
  FaultProjector* faults_ = nullptr;
  ServingPlane* plane_ = nullptr;
  MonotonicClock* clock_ = nullptr;
  MetricRegistry* registry_ = nullptr;
  Timeline* timeline_ = nullptr;
  std::uint64_t epoch_index_ = 0;
  MetricRegistry::Id reg_epochs_{}, reg_dirty_{}, reg_snap_in_place_{},
      reg_proj_in_place_{}, reg_down_nodes_{}, reg_phase_[kPhaseCount] = {};
};

}  // namespace webwave
