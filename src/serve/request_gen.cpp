#include "serve/request_gen.h"

#include <algorithm>
#include <cmath>

#include "stats/zipf.h"
#include "util/check.h"
#include "util/rng.h"

namespace webwave {

namespace {

// Non-root leaves in ascending id order — the leaf ring every rotating
// demand generator in this repo (RotatingHotSpotDemand, ChurnSchedule)
// indexes into.
std::vector<NodeId> LeafRing(const RoutingTree& tree) {
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < tree.size(); ++v)
    if (tree.is_leaf(v) && !tree.is_root(v)) leaves.push_back(v);
  WEBWAVE_REQUIRE(!leaves.empty(), "the tree has no non-root leaves");
  return leaves;
}

std::vector<double> ZipfWeights(int doc_count, double exponent) {
  const ZipfDistribution zipf(doc_count, exponent);
  std::vector<double> w(static_cast<std::size_t>(doc_count));
  for (int d = 0; d < doc_count; ++d) w[static_cast<std::size_t>(d)] = zipf.pmf(d);
  return w;
}

// The counter-based uniform draw: a pure function of (seed, counter), so
// any request's randomness can be recomputed from its stream index alone.
inline double UnitDraw(std::uint64_t seed, std::uint64_t counter) {
  return CounterUnitDouble(seed + counter * 0x9e3779b97f4a7c15ULL);
}

// Inverse-CDF sample: first index whose cdf value exceeds u.
inline std::size_t SampleCdf(const std::vector<double>& cdf, double u) {
  return static_cast<std::size_t>(
      std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

// Prefix sums normalized to end exactly at 1 (so every u in [0,1) lands).
std::vector<double> NormalizedCdf(const std::vector<double>& weights,
                                  double total) {
  std::vector<double> cdf(weights.size());
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cdf[i] = acc / total;
  }
  cdf.back() = 1.0;
  return cdf;
}

}  // namespace

DemandComponent ZipfLeafComponent(const RoutingTree& tree, int doc_count,
                                  double rate_per_leaf, double exponent) {
  WEBWAVE_REQUIRE(rate_per_leaf >= 0, "rate must be non-negative");
  const std::vector<NodeId> leaves = LeafRing(tree);
  DemandComponent c;
  c.origin_weights.assign(static_cast<std::size_t>(tree.size()), 0.0);
  for (const NodeId v : leaves)
    c.origin_weights[static_cast<std::size_t>(v)] = 1.0;
  c.doc_weights = ZipfWeights(doc_count, exponent);
  c.rate = rate_per_leaf * static_cast<double>(leaves.size());
  return c;
}

DemandComponent RotatingHotSpotComponent(const RoutingTree& tree,
                                         int doc_count, double base_rate,
                                         double hot_rate, double hot_fraction,
                                         int epoch, int rotation_epochs) {
  WEBWAVE_REQUIRE(base_rate >= 0 && hot_rate >= 0,
                  "rates must be non-negative");
  WEBWAVE_REQUIRE(hot_fraction >= 0 && hot_fraction <= 1,
                  "hot fraction in [0,1]");
  WEBWAVE_REQUIRE(rotation_epochs >= 1,
                  "rotation must take at least one epoch");
  const std::vector<NodeId> leaves = LeafRing(tree);
  const std::size_t n = leaves.size();
  // Window arithmetic identical to ChurnSchedule::LeafHotAt, so the
  // component's ExpectedLanes match the schedule's Lanes cell for cell.
  const std::size_t window = static_cast<std::size_t>(
      hot_fraction * static_cast<double>(n) + 0.5);
  const double phase = static_cast<double>(epoch % rotation_epochs) /
                       static_cast<double>(rotation_epochs);
  const std::size_t start =
      static_cast<std::size_t>(phase * static_cast<double>(n));

  DemandComponent c;
  c.origin_weights.assign(static_cast<std::size_t>(tree.size()), 0.0);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool hot = (i + n - start) % n < window;
    const double rate = hot ? hot_rate : base_rate;
    c.origin_weights[static_cast<std::size_t>(leaves[i])] = rate;
    total += rate;
  }
  c.doc_weights = ZipfWeights(doc_count, 1.0);
  c.rate = total;
  return c;
}

DemandComponent FlashCrowdComponent(const RoutingTree& tree, int doc_count,
                                    double rate_per_node, DocId hot_doc,
                                    NodeId epicenter) {
  WEBWAVE_REQUIRE(rate_per_node >= 0, "rate must be non-negative");
  WEBWAVE_REQUIRE(hot_doc >= 0 && hot_doc < doc_count,
                  "hot document out of range");
  DemandComponent c;
  c.origin_weights.assign(static_cast<std::size_t>(tree.size()), 0.0);
  const std::vector<NodeId> crowd = tree.subtree(epicenter);
  for (const NodeId v : crowd)
    c.origin_weights[static_cast<std::size_t>(v)] = 1.0;
  c.doc_weights.assign(static_cast<std::size_t>(doc_count), 0.0);
  c.doc_weights[static_cast<std::size_t>(hot_doc)] = 1.0;
  c.rate = rate_per_node * static_cast<double>(crowd.size());
  return c;
}

RequestGenerator::RequestGenerator(const RoutingTree& tree, int doc_count,
                                   std::vector<DemandComponent> components,
                                   std::uint64_t seed)
    : nodes_(tree.size()),
      docs_(doc_count),
      seed_(seed),
      components_(std::move(components)) {
  WEBWAVE_REQUIRE(docs_ >= 1, "need at least one document");
  WEBWAVE_REQUIRE(!components_.empty(), "need at least one demand component");
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const DemandComponent& c = components_[i];
    WEBWAVE_REQUIRE(c.rate >= 0, "component rate must be non-negative");
    WEBWAVE_REQUIRE(
        c.origin_weights.size() == static_cast<std::size_t>(nodes_),
        "origin weights do not match the tree");
    WEBWAVE_REQUIRE(c.doc_weights.size() == static_cast<std::size_t>(docs_),
                    "document weights do not match the catalog");
    if (c.rate == 0) continue;
    double origin_total = 0, doc_total = 0;
    for (const double w : c.origin_weights) {
      WEBWAVE_REQUIRE(w >= 0, "origin weights must be non-negative");
      origin_total += w;
    }
    for (const double w : c.doc_weights) {
      WEBWAVE_REQUIRE(w >= 0, "document weights must be non-negative");
      doc_total += w;
    }
    WEBWAVE_REQUIRE(origin_total > 0 && doc_total > 0,
                    "a component with positive rate needs positive weights");
    Component s;
    s.rate = c.rate;
    s.origin_cdf = NormalizedCdf(c.origin_weights, origin_total);
    s.doc_cdf = NormalizedCdf(c.doc_weights, doc_total);
    s.source = i;
    sampled_.push_back(std::move(s));
    total_rate_ += c.rate;
  }
  WEBWAVE_REQUIRE(total_rate_ > 0, "the mixture offers no requests");
  component_cdf_.resize(sampled_.size());
  double acc = 0;
  for (std::size_t i = 0; i < sampled_.size(); ++i) {
    acc += sampled_[i].rate;
    component_cdf_[i] = acc / total_rate_;
  }
  component_cdf_.back() = 1.0;
}

void RequestGenerator::NextBatch(std::size_t count,
                                 std::vector<Request>* out) {
  out->resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t k = 3 * (position_ + i);
    const std::size_t c = sampled_.size() == 1
                              ? 0
                              : SampleCdf(component_cdf_, UnitDraw(seed_, k));
    const Component& comp = sampled_[c];
    (*out)[i].node = static_cast<NodeId>(
        SampleCdf(comp.origin_cdf, UnitDraw(seed_, k + 1)));
    (*out)[i].doc =
        static_cast<DocId>(SampleCdf(comp.doc_cdf, UnitDraw(seed_, k + 2)));
  }
  position_ += count;
}

std::vector<std::vector<double>> RequestGenerator::ExpectedLanes() const {
  std::vector<std::vector<double>> lanes(static_cast<std::size_t>(docs_));
  for (auto& lane : lanes) lane.assign(static_cast<std::size_t>(nodes_), 0.0);
  for (const Component& comp : sampled_) {
    const DemandComponent& src = components_[comp.source];
    double origin_total = 0, doc_total = 0;
    for (const double w : src.origin_weights) origin_total += w;
    for (const double w : src.doc_weights) doc_total += w;
    for (int d = 0; d < docs_; ++d) {
      const double doc_rate =
          comp.rate * src.doc_weights[static_cast<std::size_t>(d)] / doc_total;
      if (doc_rate == 0) continue;
      auto& lane = lanes[static_cast<std::size_t>(d)];
      for (int v = 0; v < nodes_; ++v) {
        const double w = src.origin_weights[static_cast<std::size_t>(v)];
        if (w > 0) lane[static_cast<std::size_t>(v)] += doc_rate * w / origin_total;
      }
    }
  }
  return lanes;
}

DemandMatrix RequestGenerator::ExpectedDemand() const {
  DemandMatrix demand(nodes_, docs_);
  const std::vector<std::vector<double>> lanes = ExpectedLanes();
  for (int d = 0; d < docs_; ++d)
    for (int v = 0; v < nodes_; ++v) {
      const double r = lanes[static_cast<std::size_t>(d)][static_cast<std::size_t>(v)];
      if (r > 0) demand.set(v, d, r);
    }
  return demand;
}

}  // namespace webwave
