// A frozen per-(node, document) quota table in CSR form — the contract
// between copy placement (control plane) and request serving (data plane).
//
// Row v lists the documents node v holds a copy of (ascending DocId) with
// the service rate allocated to each copy and the copy's *serve fraction*
// — the share of the document's flow passing v that this copy absorbs
// (rate / arriving flow; 1 when the producer cannot know the flow, i.e.
// the copy takes everything that reaches it).  The fraction is what lets
// the serving plane realize quotas thinner than one request per token
// window by Poisson thinning instead of token counting.  The layout is
// flat: the serving plane's hot loop walks rows with no hashing, no
// pointers and no allocation.
//
// Snapshots come from three places: any PlacementPolicy (home-only and the
// other baselines), DerivePlacement's TLB-realizing quotas, or live
// BatchWebWaveSimulator lane loads through the ExportQuotas hook — the
// diffused copy set of §7.
//
// Batch-produced snapshots can be refreshed *incrementally*:
// RefreshFromBatch rewrites only the cells of lanes the engine marked
// dirty since the last export (a per-document column index maps a lane to
// its cells), so a closed-loop epoch that churned k of D documents pays
// O(k·copies) instead of O(nodes·documents) — the same churn-proportional
// cost ApplyDemandEvents already has on the control plane.  When a dirty
// lane's copy *set* changed (not just its rates) the CSR structure must
// shift; the refresh then merges the old snapshot's clean cells with the
// fresh dirty cells row by row — O(cells) over the snapshot arrays, but
// still never a rescan of the engine's clean lanes.  Either way the
// result is cell-for-cell identical to a fresh FromBatch(batch, min_rate)
// (asserted by serving_test); only total_rate() may differ in the last
// ulps on the in-place path, which applies rate deltas instead of
// re-summing.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/placement.h"
#include "tree/routing_tree.h"
#include "util/span.h"

namespace webwave {

class BatchWebWaveSimulator;
class SpillProjector;

class QuotaSnapshot {
 public:
  // Incremental CSR assembly; cells must arrive nodes ascending, documents
  // ascending within a node (the export order of every producer here).
  class Builder {
   public:
    Builder(int node_count, int doc_count);
    // fraction: the copy's share of the document flow passing the node,
    // in (0, 1]; 1 (the default) means "serves whatever reaches it, up to
    // the token budget".
    void Add(NodeId node, std::int32_t doc, double rate,
             double fraction = 1.0);
    QuotaSnapshot Build() &&;

   private:
    int nodes_;
    int docs_;
    NodeId last_node_ = -1;
    std::int32_t last_doc_ = -1;
    std::vector<std::int64_t> row_end_;  // per node, cells so far
    std::vector<std::int32_t> doc_;
    std::vector<double> rate_;
    std::vector<double> frac_;
    double total_ = 0;
  };

  QuotaSnapshot() = default;

  // The quotas DerivePlacement computed; cells with rate <= min_rate are
  // dropped.  When the demand the placement was derived from is supplied,
  // per-copy serve fractions are recomputed from the document flows
  // (quota / arriving flow); without it fractions default to 1.
  static QuotaSnapshot FromPlacement(const PlacementResult& placement,
                                     double min_rate = 0);
  static QuotaSnapshot FromPlacement(const RoutingTree& tree,
                                     const PlacementResult& placement,
                                     const DemandMatrix& demand,
                                     double min_rate = 0);

  // The batch engine's current served rates, via its ExportQuotas hook;
  // fractions come from the engine's tracked flows, served/(served +
  // forwarded).  Batch-produced snapshots carry a per-document column
  // index and remember min_rate, so RefreshFromBatch can update them in
  // place later.
  static QuotaSnapshot FromBatch(const BatchWebWaveSimulator& batch,
                                 double min_rate = 0);

  // Incrementally re-syncs a FromBatch snapshot with the engine: only the
  // cells of batch.DirtyLanes() are re-exported (rates and fractions
  // rewritten in place through the column index); clean lanes' cells are
  // untouched.  When a dirty lane's copy set changed shape, the old clean
  // cells and the fresh dirty cells are merged into a rebuilt CSR without
  // rescanning the engine.  Returns true when the in-place path sufficed.
  // The caller decides when the dirty set is consumed — typically
  // batch.ClearDirtyLanes() right after this returns.  Requires *this to
  // have been produced by FromBatch (or a prior RefreshFromBatch) against
  // an engine with the same node/document counts.
  bool RefreshFromBatch(const BatchWebWaveSimulator& batch);

  int node_count() const { return nodes_; }
  int doc_count() const { return docs_; }
  std::int64_t cell_count() const {
    return static_cast<std::int64_t>(doc_.size());
  }
  // Sum of all quota rates (total service rate the placement provisions).
  double total_rate() const { return total_; }

  // Row access for the serving hot loop.
  std::int64_t row_begin(NodeId v) const {
    return row_off_[static_cast<std::size_t>(v)];
  }
  std::int64_t row_end(NodeId v) const {
    return row_off_[static_cast<std::size_t>(v) + 1];
  }
  const std::int32_t* cell_docs() const { return doc_.data(); }
  const double* cell_rates() const { return rate_.data(); }
  const double* cell_fractions() const { return frac_.data(); }

  // The cell index of (v, d), or -1 if v holds no copy of d.
  std::int64_t CellOf(NodeId v, std::int32_t d) const;
  // Quota rate at (v, d); 0 when absent.
  double RateAt(NodeId v, std::int32_t d) const;
  // Serve fraction at (v, d); 0 when absent.
  double FractionAt(NodeId v, std::int32_t d) const;
  // Number of copies of document d across all nodes (cells in column d).
  std::vector<std::int64_t> CopiesPerDoc() const;

  // Column view for per-document sweeps (the capacity projector and the
  // serving plane's incremental refresh): the nodes holding document d,
  // ascending, and the matching cell indices.  Built lazily on first use
  // and kept fresh by every structural rebuild; views are invalidated by
  // the next structural change.  Not thread-safe against the lazy build —
  // call once before handing the snapshot to parallel readers.
  Span<const NodeId> DocNodes(std::int32_t d) const;
  Span<const std::int64_t> DocCells(std::int32_t d) const;

 private:
  // The spill projectors (capacity clamping and the fault plane) own a
  // clamped QuotaSnapshot and rewrite its cell values in place on the
  // incremental path (store/spill_projector).
  friend class SpillProjector;
  // The wire serializer reconstructs a snapshot byte-exactly — including
  // total_, which an Add-by-Add rebuild would re-sum in a different
  // association order (wire/quota_wire).
  friend class QuotaWireTable;

  void BuildColumnIndex() const;

  int nodes_ = 0;
  int docs_ = 0;
  double total_ = 0;
  std::vector<std::int64_t> row_off_;  // nodes_ + 1 entries
  std::vector<std::int32_t> doc_;
  std::vector<double> rate_;
  std::vector<double> frac_;

  // Column index for incremental refresh and the DocNodes/DocCells view:
  // document d's cells are col_cells_[col_off_[d] .. col_off_[d+1]), node
  // ascending, with col_nodes_ the matching node per cell.  Built lazily
  // (mutable: the view is logically const), rebuilt by every structural
  // refresh.
  bool incremental_ = false;
  double min_rate_ = 0;
  mutable std::vector<std::int64_t> col_off_;    // docs_ + 1 entries
  mutable std::vector<std::int64_t> col_cells_;  // cell index per column entry
  mutable std::vector<NodeId> col_nodes_;        // node per column entry
};

}  // namespace webwave
