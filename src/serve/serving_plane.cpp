#include "serve/serving_plane.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/check.h"
#include "util/rng.h"

namespace webwave {

double ServingMetrics::HitRatio() const {
  return requests > 0
             ? static_cast<double>(cache_served) / static_cast<double>(requests)
             : 0.0;
}

double ServingMetrics::MeanHops() const {
  return requests > 0
             ? static_cast<double>(hop_sum) / static_cast<double>(requests)
             : 0.0;
}

double ServingMetrics::DropRatio() const {
  return requests > 0 ? static_cast<double>(dropped_requests) /
                            static_cast<double>(requests)
                      : 0.0;
}

std::uint64_t ServingMetrics::MaxServed() const {
  std::uint64_t mx = 0;
  for (const std::uint64_t s : served_per_node) mx = std::max(mx, s);
  return mx;
}

std::vector<double> ServingMetrics::Loads() const {
  return std::vector<double>(served_per_node.begin(), served_per_node.end());
}

bool ServingMetrics::operator==(const ServingMetrics& other) const {
  return requests == other.requests && cache_served == other.cache_served &&
         home_served == other.home_served && hop_sum == other.hop_sum &&
         failed_attempts == other.failed_attempts &&
         failovers == other.failovers &&
         dropped_requests == other.dropped_requests &&
         backoff_slots == other.backoff_slots &&
         served_per_node == other.served_per_node && hops == other.hops;
}

ServingPlane::ServingPlane(const RoutingTree& tree, QuotaSnapshot snapshot,
                           ServingOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      root_(tree.root()),
      parents_(tree.parents()) {
  WEBWAVE_REQUIRE(snapshot_.node_count() == tree.size(),
                  "snapshot does not match the tree");
  WEBWAVE_REQUIRE(options_.block_size >= 1, "block size must be positive");
  WEBWAVE_REQUIRE(options_.offered_rate >= 0,
                  "offered rate must be non-negative");
  WEBWAVE_REQUIRE(options_.budget_slack > 0, "budget slack must be positive");
  WEBWAVE_REQUIRE(options_.max_failover_attempts >= 1,
                  "a request needs at least one failover attempt");

  const int requested =
      options_.threads > 0
          ? options_.threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  pool_ = std::make_unique<WorkerPool>(requested);

  const std::size_t nn = static_cast<std::size_t>(tree.size());
  const std::size_t hop_bins = static_cast<std::size_t>(tree.height()) + 1;
  metrics_.served_per_node.assign(nn, 0);
  metrics_.hops.assign(hop_bins, 0);
  workers_.resize(static_cast<std::size_t>(pool_->thread_count()));
  for (WorkerState& ws : workers_) {
    ws.local.served_per_node.assign(nn, 0);
    ws.local.hops.assign(hop_bins, 0);
  }
  BuildTables();
}

void ServingPlane::BuildTables() {
  const double scale_rate = options_.offered_rate > 0
                                ? options_.offered_rate
                                : snapshot_.total_rate();
  WEBWAVE_REQUIRE(scale_rate > 0, "cannot scale budgets to a zero rate");

  // Split the cells by admission regime: coarse cells (≥ 1 token per
  // block) get compact token-array slots, the rest carry only their
  // thinning probability.
  const std::size_t cells = static_cast<std::size_t>(snapshot_.cell_count());
  serve_prob_.resize(cells);
  token_index_.assign(cells, kNoToken);
  tokens_per_block_.clear();
  per_block_ = options_.budget_slack *
               static_cast<double>(options_.block_size) / scale_rate;
  for (std::size_t c = 0; c < cells; ++c) {
    const double r = snapshot_.cell_rates()[c] * per_block_;
    if (r >= 1.0) {
      token_index_[c] = static_cast<std::int32_t>(tokens_per_block_.size());
      tokens_per_block_.push_back(r);
    }
    serve_prob_[c] =
        std::min(1.0, options_.budget_slack * snapshot_.cell_fractions()[c]);
  }
  for (WorkerState& ws : workers_) {
    ws.stamp.assign(tokens_per_block_.size(), 0);
    ws.avail.assign(tokens_per_block_.size(), 0);
  }
}

bool ServingPlane::Refresh(QuotaSnapshot snapshot) {
  return RefreshImpl(std::move(snapshot), Span<const std::int32_t>(), false);
}

bool ServingPlane::Refresh(QuotaSnapshot snapshot,
                           Span<const std::int32_t> changed_docs) {
  // Re-wrapped as a prvalue: Span<const T> parameters must be copy-elided
  // (an lvalue copy would instantiate std::vector<const T> during overload
  // resolution, which is ill-formed).
  return RefreshImpl(
      std::move(snapshot),
      Span<const std::int32_t>(changed_docs.data(), changed_docs.size()),
      true);
}

bool ServingPlane::RefreshImpl(QuotaSnapshot snapshot,
                               Span<const std::int32_t> changed_docs,
                               bool have_hint) {
  WEBWAVE_REQUIRE(snapshot.node_count() == snapshot_.node_count() &&
                      snapshot.doc_count() == snapshot_.doc_count(),
                  "a refresh cannot change the tree or the catalog");
  // Shape check: same rows, same documents per row.  O(cells) integer
  // compares — cheap next to recomputing the tables, and it is what
  // makes the in-place path trustworthy rather than assumed.
  bool same_shape = snapshot.cell_count() == snapshot_.cell_count();
  for (NodeId v = 0; same_shape && v < snapshot_.node_count(); ++v)
    same_shape = snapshot.row_begin(v) == snapshot_.row_begin(v);
  const std::size_t cells = static_cast<std::size_t>(snapshot.cell_count());
  for (std::size_t c = 0; same_shape && c < cells; ++c)
    same_shape = snapshot.cell_docs()[c] == snapshot_.cell_docs()[c];

  const double scale_rate = options_.offered_rate > 0
                                ? options_.offered_rate
                                : snapshot.total_rate();
  WEBWAVE_REQUIRE(scale_rate > 0, "cannot scale budgets to a zero rate");
  const double per_block = options_.budget_slack *
                           static_cast<double>(options_.block_size) /
                           scale_rate;
  snapshot_ = std::move(snapshot);
  if (!same_shape) {
    BuildTables();
    return false;
  }

  // In-place: rewrite only the changed cells' rows.  When the budget
  // scale moved (offered_rate tracking the snapshot total) every cell's
  // token rate moved with it, so the hint no longer bounds the change
  // set and the whole table is re-diffed.
  const bool scale_held = per_block == per_block_;
  per_block_ = per_block;
  const double* rates = snapshot_.cell_rates();
  const double* fracs = snapshot_.cell_fractions();
  const auto update_cell = [&](std::size_t c) {
    const double r = rates[c] * per_block_;
    const std::int32_t tok = token_index_[c];
    if ((r >= 1.0) != (tok != kNoToken)) return false;  // regime flip
    if (tok != kNoToken) tokens_per_block_[static_cast<std::size_t>(tok)] = r;
    serve_prob_[c] =
        std::min(1.0, options_.budget_slack * fracs[c]);
    return true;
  };
  bool in_place = true;
  if (have_hint && scale_held) {
    for (const std::int32_t d : changed_docs) {
      for (const std::int64_t cell : snapshot_.DocCells(d))
        if (!update_cell(static_cast<std::size_t>(cell))) {
          in_place = false;
          break;
        }
      if (!in_place) break;
    }
  } else {
    for (std::size_t c = 0; c < cells; ++c)
      if (!update_cell(c)) {
        in_place = false;
        break;
      }
  }
  if (!in_place) {
    // A cell crossed the token/thinning boundary: the compact token
    // numbering shifts, so rebuild everything (the partial updates above
    // are overwritten).
    BuildTables();
    return false;
  }
  return true;
}

void ServingPlane::SetDownNodes(Span<const NodeId> down) {
  if (down.empty()) {
    down_.clear();
    return;
  }
  down_.assign(static_cast<std::size_t>(snapshot_.node_count()), 0);
  for (const NodeId v : down) {
    WEBWAVE_REQUIRE(v >= 0 && v < snapshot_.node_count(),
                    "down node out of range");
    WEBWAVE_REQUIRE(v != root_, "the home never crashes");
    down_[static_cast<std::size_t>(v)] = 1;
  }
}

bool ServingPlane::TablesEqual(const ServingPlane& other) const {
  if (snapshot_.node_count() != other.snapshot_.node_count() ||
      snapshot_.cell_count() != other.snapshot_.cell_count() ||
      root_ != other.root_ || per_block_ != other.per_block_ ||
      options_.block_size != other.options_.block_size ||
      options_.budget_slack != other.options_.budget_slack ||
      options_.max_failover_attempts != other.options_.max_failover_attempts ||
      down_ != other.down_)
    return false;
  for (NodeId v = 0; v < snapshot_.node_count(); ++v)
    if (snapshot_.row_begin(v) != other.snapshot_.row_begin(v)) return false;
  const std::size_t cells = static_cast<std::size_t>(snapshot_.cell_count());
  for (std::size_t c = 0; c < cells; ++c)
    if (snapshot_.cell_docs()[c] != other.snapshot_.cell_docs()[c] ||
        snapshot_.cell_rates()[c] != other.snapshot_.cell_rates()[c] ||
        snapshot_.cell_fractions()[c] != other.snapshot_.cell_fractions()[c] ||
        serve_prob_[c] != other.serve_prob_[c] ||
        token_index_[c] != other.token_index_[c])
      return false;
  return tokens_per_block_ == other.tokens_per_block_;
}

void ServingPlane::AttachRegistry(MetricRegistry* registry,
                                  const std::string& prefix) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  reg_ids_.requests = registry_->Counter(prefix + "requests");
  reg_ids_.cache_served = registry_->Counter(prefix + "cache_served");
  reg_ids_.home_served = registry_->Counter(prefix + "home_served");
  reg_ids_.hop_sum = registry_->Counter(prefix + "hop_sum");
  reg_ids_.failed_attempts = registry_->Counter(prefix + "failed_attempts");
  reg_ids_.failovers = registry_->Counter(prefix + "failovers");
  reg_ids_.dropped_requests = registry_->Counter(prefix + "dropped_requests");
  reg_ids_.backoff_slots = registry_->Counter(prefix + "backoff_slots");
  reg_ids_.trace_events = registry_->Counter(prefix + "trace_events");
}

void ServingPlane::ResetMetrics() {
  metrics_.requests = 0;
  metrics_.cache_served = 0;
  metrics_.home_served = 0;
  metrics_.hop_sum = 0;
  metrics_.failed_attempts = 0;
  metrics_.failovers = 0;
  metrics_.dropped_requests = 0;
  metrics_.backoff_slots = 0;
  std::fill(metrics_.served_per_node.begin(), metrics_.served_per_node.end(),
            0);
  std::fill(metrics_.hops.begin(), metrics_.hops.end(), 0);
  trace_.clear();
}

namespace {

// Per-request trace emitter: a null sink (the untraced 99.994%) makes
// Emit a no-op, so the hot loop's only tracing cost is the sampling hash.
struct TraceSink {
  std::vector<TraceEvent>* out = nullptr;
  std::uint64_t req_id = 0;
  std::uint16_t seq = 0;

  void Emit(TraceEventKind kind, NodeId node, std::uint8_t aux,
            std::uint64_t detail) {
    if (out == nullptr) return;
    TraceEvent e;
    e.req_id = req_id;
    e.detail = detail;
    e.node = node;
    e.seq = seq++;
    e.kind = kind;
    e.aux = aux;
    out->push_back(e);
  }
};

}  // namespace

// --- the admission core ------------------------------------------------
// Shared verbatim by ProcessBlock (the batch hot loop) and
// ServeWireSegment (the netd entry point): both transports must make
// identical decisions, so the decision code exists exactly once.

// First copy of d at v; rows are doc-ascending, so long rows (leaves
// often hold most of the catalog) take a binary search, short ones a
// scan.
std::int64_t ServingPlane::FindCell(NodeId v, std::int32_t d) const {
  const std::int32_t* cell_docs = snapshot_.cell_docs();
  const std::int64_t begin = snapshot_.row_begin(v);
  const std::int64_t end = snapshot_.row_end(v);
  if (end - begin > 12) {
    const std::int32_t* it =
        std::lower_bound(cell_docs + begin, cell_docs + end, d);
    if (it != cell_docs + end && *it == d) return it - cell_docs;
    return -1;
  }
  for (std::int64_t c = begin; c < end && cell_docs[c] <= d; ++c)
    if (cell_docs[c] == d) return c;
  return -1;
}

// Token bucket: block k's grant is floor(r·(k+1)+u) − floor(r·k+u), a
// pure function of (cell, block index) — thread-invariant; the per-cell
// hash dither phase u keeps the quantization unbiased.
std::int32_t ServingPlane::TokenGrant(std::int32_t tok, std::int64_t cell,
                                      std::uint64_t block_id) const {
  const double r = tokens_per_block_[static_cast<std::size_t>(tok)];
  const double k = static_cast<double>(block_id - 1);
  const double u = CounterUnitDouble(static_cast<std::uint64_t>(cell));
  return static_cast<std::int32_t>(std::floor(r * (k + 1) + u) -
                                   std::floor(r * k + u));
}

// Poisson thinning: serve with the copy's flow share.  The draw is a
// pure function of (request index, cell), so it is identical under any
// threading, batching or process partition; copies that own their whole
// passing flow (fraction 1 — every self-serving leaf) skip the draw.
bool ServingPlane::ThinningAdmit(std::uint64_t req_id,
                                 std::int64_t cell) const {
  const double p = serve_prob_[static_cast<std::size_t>(cell)];
  if (p >= 1.0) return true;
  const double u = CounterUnitDouble(
      req_id + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(cell) + 1));
  return u < p;
}

// Dither-phased exponential failover backoff — floor(u·2^min(a,16))
// slots, u a pure hash of (request, attempt), so sums are invariant to
// threads and to which process performed the attempt.
std::uint64_t ServingPlane::BackoffSlots(std::uint64_t req_id,
                                         std::uint32_t failed) {
  const double u = CounterUnitDouble(req_id + 0xd1342543de82ef95ULL * failed);
  return static_cast<std::uint64_t>(
      std::floor(std::ldexp(u, static_cast<int>(std::min(failed, 16u)))));
}

void ServingPlane::ProcessBlock(WorkerState& ws, std::uint64_t block_id,
                                const Request* reqs, std::size_t count) {
  const NodeId* parents = parents_.data();
  const std::uint8_t* down = down_.empty() ? nullptr : down_.data();
  const std::uint32_t max_attempts =
      static_cast<std::uint32_t>(options_.max_failover_attempts);
  const bool tracing = options_.trace;
  for (std::size_t i = 0; i < count; ++i) {
    // The stream-global request index: blocks are numbered for the
    // plane's lifetime, so this is unique and batching-invariant — the
    // thinning draws below depend only on (request, cell).
    const std::uint64_t req_id =
        (block_id - 1) * static_cast<std::uint64_t>(options_.block_size) + i;
    NodeId v = reqs[i].node;
    const std::int32_t d = reqs[i].doc;
    std::uint64_t hops = 0;
    std::uint32_t failed = 0;
    bool dropped = false;
    TraceSink tc;
    if (tracing && TraceSampled(options_.trace_seed, req_id,
                                options_.trace_sample_shift)) {
      tc.out = &ws.trace;
      tc.req_id = req_id;
      tc.Emit(TraceEventKind::kArrival, v, 0, static_cast<std::uint64_t>(d));
    }
    for (;;) {
      if (down != nullptr && down[v] != 0) {
        // Crashed node: the request cannot query it.  Burn an attempt,
        // account the backoff, and retry at the parent.  The root is
        // never down, so a surviving request always terminates.
        ++failed;
        if (failed > max_attempts) {
          tc.Emit(TraceEventKind::kDropped, v, static_cast<std::uint8_t>(failed),
                  hops);
          dropped = true;
          break;
        }
        const std::uint64_t slots = BackoffSlots(req_id, failed);
        ws.local.backoff_slots += slots;
        tc.Emit(TraceEventKind::kFailover, v, static_cast<std::uint8_t>(failed),
                slots);
        v = parents[v];
        ++hops;
        tc.Emit(TraceEventKind::kHop, v, static_cast<std::uint8_t>(failed),
                hops);
        continue;
      }
      const std::int64_t cell = FindCell(v, d);
      if (cell >= 0) {
        const std::int32_t tok = token_index_[static_cast<std::size_t>(cell)];
        if (tok >= 0) {
          // Per-worker grant scratch keyed by block id: each block's
          // budget is cut once and consumed within the block.
          if (ws.stamp[static_cast<std::size_t>(tok)] != block_id) {
            ws.stamp[static_cast<std::size_t>(tok)] = block_id;
            ws.avail[static_cast<std::size_t>(tok)] =
                TokenGrant(tok, cell, block_id);
          }
          const bool admit = ws.avail[static_cast<std::size_t>(tok)] > 0;
          tc.Emit(TraceEventKind::kTokenGrant, v, admit ? 1 : 0, 0);
          if (admit) {
            --ws.avail[static_cast<std::size_t>(tok)];
            break;
          }
        } else {
          const bool admit = ThinningAdmit(req_id, cell);
          tc.Emit(TraceEventKind::kThinning, v, admit ? 1 : 0, 0);
          if (admit) break;
        }
      }
      if (v == root_) break;  // the home serves whatever reaches it
      v = parents[v];
      ++hops;
      tc.Emit(TraceEventKind::kHop, v, static_cast<std::uint8_t>(failed), hops);
    }
    ++ws.local.requests;
    ws.local.failed_attempts += failed;
    if (dropped) {
      // Retry budget exhausted mid-outage: counted, never served — no
      // node, hop or hit bookkeeping for a request that went nowhere.
      ++ws.local.dropped_requests;
      continue;
    }
    tc.Emit(TraceEventKind::kServed, v, failed > 0 ? 1 : 0, hops);
    if (failed > 0) ++ws.local.failovers;
    ++ws.local.served_per_node[static_cast<std::size_t>(v)];
    ++ws.local.hops[static_cast<std::size_t>(hops)];
    ws.local.hop_sum += hops;
    if (v == root_)
      ++ws.local.home_served;
    else
      ++ws.local.cache_served;
  }
}

void ServingPlane::Serve(Span<Request> batch) {
  if (batch.empty()) return;
  // Validate outside the parallel region: the hot loop does no bounds
  // checks, and a full-batch sweep here is cheaper than per-request
  // checks inside it.
  for (const Request& r : batch) {
    WEBWAVE_REQUIRE(r.node >= 0 && r.node < snapshot_.node_count(),
                    "request origin out of range");
    WEBWAVE_REQUIRE(r.doc >= 0 && r.doc < snapshot_.doc_count(),
                    "request document out of range");
  }
  const std::size_t block_size = static_cast<std::size_t>(options_.block_size);
  const std::size_t blocks = (batch.size() + block_size - 1) / block_size;
  const std::uint64_t base = next_block_id_;
  next_block_id_ += blocks;

  pool_->ParallelFor(blocks, [&](int worker, std::size_t b0, std::size_t b1) {
    WorkerState& ws = workers_[static_cast<std::size_t>(worker)];
    for (std::size_t b = b0; b < b1; ++b) {
      const std::size_t begin = b * block_size;
      const std::size_t end = std::min(batch.size(), begin + block_size);
      ProcessBlock(ws, base + b, batch.data() + begin, end - begin);
    }
  });

  // Deterministic merge: integer sums over workers (order-independent).
  for (WorkerState& ws : workers_) {
    if (registry_ != nullptr) {
      registry_->Add(reg_ids_.requests, ws.local.requests);
      registry_->Add(reg_ids_.cache_served, ws.local.cache_served);
      registry_->Add(reg_ids_.home_served, ws.local.home_served);
      registry_->Add(reg_ids_.hop_sum, ws.local.hop_sum);
      registry_->Add(reg_ids_.failed_attempts, ws.local.failed_attempts);
      registry_->Add(reg_ids_.failovers, ws.local.failovers);
      registry_->Add(reg_ids_.dropped_requests, ws.local.dropped_requests);
      registry_->Add(reg_ids_.backoff_slots, ws.local.backoff_slots);
      registry_->Add(reg_ids_.trace_events, ws.trace.size());
    }
    metrics_.requests += ws.local.requests;
    metrics_.cache_served += ws.local.cache_served;
    metrics_.home_served += ws.local.home_served;
    metrics_.hop_sum += ws.local.hop_sum;
    metrics_.failed_attempts += ws.local.failed_attempts;
    metrics_.failovers += ws.local.failovers;
    metrics_.dropped_requests += ws.local.dropped_requests;
    metrics_.backoff_slots += ws.local.backoff_slots;
    for (std::size_t v = 0; v < metrics_.served_per_node.size(); ++v)
      metrics_.served_per_node[v] += ws.local.served_per_node[v];
    for (std::size_t h = 0; h < metrics_.hops.size(); ++h)
      metrics_.hops[h] += ws.local.hops[h];
    ws.local.requests = 0;
    ws.local.cache_served = 0;
    ws.local.home_served = 0;
    ws.local.hop_sum = 0;
    ws.local.failed_attempts = 0;
    ws.local.failovers = 0;
    ws.local.dropped_requests = 0;
    ws.local.backoff_slots = 0;
    std::fill(ws.local.served_per_node.begin(), ws.local.served_per_node.end(),
              0);
    std::fill(ws.local.hops.begin(), ws.local.hops.end(), 0);
  }

  // Drain the per-worker trace buffers into the canonical (req_id, seq)
  // order — worker assignment leaks nothing into the stream, so the
  // sorted result is bit-identical at any thread count.
  std::size_t traced = 0;
  for (const WorkerState& ws : workers_) traced += ws.trace.size();
  if (traced > 0) {
    std::vector<TraceEvent> merged;
    merged.reserve(traced);
    for (WorkerState& ws : workers_) {
      merged.insert(merged.end(), ws.trace.begin(), ws.trace.end());
      ws.trace.clear();
    }
    CanonicalizeTrace(&merged);
    trace_.insert(trace_.end(), merged.begin(), merged.end());
  }
}

void ServingPlane::SetSegmentNodes(Span<const NodeId> owned) {
  if (owned.empty()) {
    owned_.clear();
    return;
  }
  owned_.assign(static_cast<std::size_t>(snapshot_.node_count()), 0);
  for (const NodeId v : owned) {
    WEBWAVE_REQUIRE(v >= 0 && v < snapshot_.node_count(),
                    "segment node out of range");
    owned_[static_cast<std::size_t>(v)] = 1;
  }
}

ServingPlane::WireServe ServingPlane::ServeWireSegment(const GetRequest& in,
                                                       GetRequest* forward,
                                                       GetReply* reply) {
  WEBWAVE_REQUIRE(options_.block_size == 1,
                  "wire serving requires block_size 1 (order-free admission)");
  WEBWAVE_REQUIRE(in.origin_node >= 0 && in.origin_node < snapshot_.node_count(),
                  "wire request outside the tree");
  WEBWAVE_REQUIRE(in.doc >= 0 && in.doc < snapshot_.doc_count(),
                  "wire request for an unknown document");
  const NodeId* parents = parents_.data();
  const std::uint8_t* down = down_.empty() ? nullptr : down_.data();
  const std::uint8_t* owned = owned_.empty() ? nullptr : owned_.data();
  const std::uint32_t max_attempts =
      static_cast<std::uint32_t>(options_.max_failover_attempts);
  const std::uint64_t req_id = in.req_id;
  const std::int32_t d = in.doc;
  NodeId v = in.origin_node;
  std::uint64_t hops = in.ttl_hops;
  std::uint32_t failed = in.failed;
  bool dropped = false;
  // Tracing state rides the frame: the loadgen's sampling law set the
  // flag, trace_seq is the walk's next sequence number (nonzero after a
  // forward).  The emission points mirror ProcessBlock exactly, so the
  // fleet's merged trace equals the oracle's record-for-record.
  TraceSink tc;
  if (options_.trace && (in.flags & kGetFlagTrace) != 0) {
    tc.out = &trace_;
    tc.req_id = req_id;
    tc.seq = in.trace_seq;
    if (tc.seq == 0)
      tc.Emit(TraceEventKind::kArrival, v, 0, static_cast<std::uint64_t>(d));
  }
  for (;;) {
    if (owned != nullptr && owned[static_cast<std::size_t>(v)] == 0) {
      // The walk left this process's shard: hand the resumable request to
      // the caller.  Nothing terminal is accounted — the owning process
      // will finish the walk with identical decisions.
      *forward = in;
      forward->origin_node = v;
      forward->ttl_hops = static_cast<std::uint16_t>(hops);
      forward->failed = static_cast<std::uint16_t>(failed);
      forward->trace_seq = tc.seq;
      if (registry_ != nullptr && tc.out != nullptr)
        registry_->Add(reg_ids_.trace_events,
                       static_cast<std::uint16_t>(tc.seq - in.trace_seq));
      return WireServe::kForwarded;
    }
    if (down != nullptr && down[static_cast<std::size_t>(v)] != 0) {
      ++failed;
      ++metrics_.failed_attempts;  // accounted where incurred
      if (registry_ != nullptr) registry_->Add(reg_ids_.failed_attempts, 1);
      if (failed > max_attempts) {
        tc.Emit(TraceEventKind::kDropped, v, static_cast<std::uint8_t>(failed),
                hops);
        dropped = true;
        break;
      }
      const std::uint64_t slots = BackoffSlots(req_id, failed);
      metrics_.backoff_slots += slots;
      if (registry_ != nullptr) registry_->Add(reg_ids_.backoff_slots, slots);
      tc.Emit(TraceEventKind::kFailover, v, static_cast<std::uint8_t>(failed),
              slots);
      v = parents[v];
      ++hops;
      tc.Emit(TraceEventKind::kHop, v, static_cast<std::uint8_t>(failed), hops);
      continue;
    }
    const std::int64_t cell = FindCell(v, d);
    if (cell >= 0) {
      const std::int32_t tok = token_index_[static_cast<std::size_t>(cell)];
      if (tok >= 0) {
        // block_size == 1: every request is its own block (block ids are
        // req_id + 1 — Serve's numbering starts at 1), so the grant is
        // stateless and order-free.
        const bool admit = TokenGrant(tok, cell, req_id + 1) > 0;
        tc.Emit(TraceEventKind::kTokenGrant, v, admit ? 1 : 0, 0);
        if (admit) break;
      } else {
        const bool admit = ThinningAdmit(req_id, cell);
        tc.Emit(TraceEventKind::kThinning, v, admit ? 1 : 0, 0);
        if (admit) break;
      }
    }
    if (v == root_) break;  // the home serves whatever reaches it
    v = parents[v];
    ++hops;
    tc.Emit(TraceEventKind::kHop, v, static_cast<std::uint8_t>(failed), hops);
  }
  ++metrics_.requests;
  if (registry_ != nullptr) registry_->Add(reg_ids_.requests, 1);
  reply->req_id = req_id;
  reply->doc = d;
  reply->hops = static_cast<std::uint16_t>(hops);
  reply->version = table_version_;
  if (dropped) {
    ++metrics_.dropped_requests;
    if (registry_ != nullptr) {
      registry_->Add(reg_ids_.dropped_requests, 1);
      if (tc.out != nullptr)
        registry_->Add(reg_ids_.trace_events,
                       static_cast<std::uint16_t>(tc.seq - in.trace_seq));
    }
    reply->serving_node = kNoNode;
    reply->result = GetResult::kDropped;
    reply->load = 0;
    return WireServe::kDropped;
  }
  tc.Emit(TraceEventKind::kServed, v, failed > 0 ? 1 : 0, hops);
  if (failed > 0) ++metrics_.failovers;
  ++metrics_.served_per_node[static_cast<std::size_t>(v)];
  ++metrics_.hops[static_cast<std::size_t>(hops)];
  metrics_.hop_sum += hops;
  if (v == root_)
    ++metrics_.home_served;
  else
    ++metrics_.cache_served;
  if (registry_ != nullptr) {
    registry_->Add(reg_ids_.hop_sum, hops);
    if (failed > 0) registry_->Add(reg_ids_.failovers, 1);
    registry_->Add(v == root_ ? reg_ids_.home_served : reg_ids_.cache_served,
                   1);
    if (tc.out != nullptr)
      registry_->Add(reg_ids_.trace_events,
                     static_cast<std::uint16_t>(tc.seq - in.trace_seq));
  }
  reply->serving_node = v;
  reply->result = GetResult::kServed;
  reply->load = static_cast<double>(
      metrics_.served_per_node[static_cast<std::size_t>(v)]);
  return WireServe::kServed;
}

}  // namespace webwave
