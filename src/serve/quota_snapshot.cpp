#include "serve/quota_snapshot.h"

#include <algorithm>
#include <utility>

#include "core/webwave_batch.h"
#include "util/check.h"

namespace webwave {

QuotaSnapshot::Builder::Builder(int node_count, int doc_count)
    : nodes_(node_count), docs_(doc_count) {
  WEBWAVE_REQUIRE(node_count >= 1 && doc_count >= 1,
                  "snapshot needs nodes and documents");
  row_end_.assign(static_cast<std::size_t>(node_count), 0);
}

void QuotaSnapshot::Builder::Add(NodeId node, std::int32_t doc, double rate,
                                 double fraction) {
  WEBWAVE_REQUIRE(node >= 0 && node < nodes_, "cell node out of range");
  WEBWAVE_REQUIRE(doc >= 0 && doc < docs_, "cell document out of range");
  WEBWAVE_REQUIRE(rate > 0, "quota cells must carry positive rate");
  WEBWAVE_REQUIRE(fraction > 0 && fraction <= 1 + 1e-9,
                  "serve fraction must lie in (0, 1]");
  WEBWAVE_REQUIRE(
      node > last_node_ || (node == last_node_ && doc > last_doc_),
      "cells must arrive nodes ascending, documents ascending within a node");
  last_node_ = node;
  last_doc_ = doc;
  row_end_[static_cast<std::size_t>(node)] =
      static_cast<std::int64_t>(doc_.size()) + 1;
  doc_.push_back(doc);
  rate_.push_back(rate);
  frac_.push_back(std::min(fraction, 1.0));
  total_ += rate;
}

QuotaSnapshot QuotaSnapshot::Builder::Build() && {
  QuotaSnapshot s;
  s.nodes_ = nodes_;
  s.docs_ = docs_;
  s.total_ = total_;
  s.doc_ = std::move(doc_);
  s.rate_ = std::move(rate_);
  s.frac_ = std::move(frac_);
  s.row_off_.assign(static_cast<std::size_t>(nodes_) + 1, 0);
  // row_end_ holds, for each node with cells, one past its last cell; rows
  // were filled in ascending node order, so a running maximum turns the
  // sparse ends into CSR offsets.
  std::int64_t off = 0;
  for (int v = 0; v < nodes_; ++v) {
    off = std::max(off, row_end_[static_cast<std::size_t>(v)]);
    s.row_off_[static_cast<std::size_t>(v) + 1] = off;
  }
  return s;
}

QuotaSnapshot QuotaSnapshot::FromPlacement(const PlacementResult& placement,
                                           double min_rate) {
  const int nodes = static_cast<int>(placement.quota.size());
  WEBWAVE_REQUIRE(nodes >= 1, "placement covers no nodes");
  const int docs = static_cast<int>(placement.quota.front().size());
  Builder b(nodes, docs);
  for (NodeId v = 0; v < nodes; ++v) {
    const std::vector<double>& row =
        placement.quota[static_cast<std::size_t>(v)];
    for (std::int32_t d = 0; d < docs; ++d)
      if (row[static_cast<std::size_t>(d)] > min_rate)
        b.Add(v, d, row[static_cast<std::size_t>(d)]);
  }
  return std::move(b).Build();
}

QuotaSnapshot QuotaSnapshot::FromPlacement(const RoutingTree& tree,
                                           const PlacementResult& placement,
                                           const DemandMatrix& demand,
                                           double min_rate) {
  const int nodes = tree.size();
  WEBWAVE_REQUIRE(
      placement.quota.size() == static_cast<std::size_t>(nodes) &&
          demand.node_count() == nodes,
      "placement/demand do not match the tree");
  const int docs = demand.doc_count();
  // Recompute the per-document flows the placement decomposed, bottom-up:
  // arrive = own demand + what the children forwarded after serving their
  // quotas; a copy's serve fraction is quota / arrive.
  const std::size_t dd = static_cast<std::size_t>(docs);
  std::vector<double> flow(static_cast<std::size_t>(nodes) * dd, 0.0);
  std::vector<std::vector<double>> fraction(
      static_cast<std::size_t>(nodes), std::vector<double>(dd, 1.0));
  for (const NodeId v : tree.postorder()) {
    double* row = flow.data() + static_cast<std::size_t>(v) * dd;
    for (std::size_t d = 0; d < dd; ++d)
      row[d] = demand.at(v, static_cast<DocId>(d));
    for (const NodeId c : tree.children(v)) {
      const double* crow = flow.data() + static_cast<std::size_t>(c) * dd;
      for (std::size_t d = 0; d < dd; ++d) row[d] += crow[d];
    }
    const std::vector<double>& quota =
        placement.quota[static_cast<std::size_t>(v)];
    for (std::size_t d = 0; d < dd; ++d) {
      const double q = quota[d];
      if (q > 0 && row[d] > 0)
        fraction[static_cast<std::size_t>(v)][d] = std::min(1.0, q / row[d]);
      row[d] = std::max(0.0, row[d] - q);
    }
  }
  Builder b(nodes, docs);
  for (NodeId v = 0; v < nodes; ++v) {
    const std::vector<double>& row =
        placement.quota[static_cast<std::size_t>(v)];
    for (std::int32_t d = 0; d < docs; ++d)
      if (row[static_cast<std::size_t>(d)] > min_rate)
        b.Add(v, d, row[static_cast<std::size_t>(d)],
              fraction[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)]);
  }
  return std::move(b).Build();
}

namespace {

// The cell a batch lane entry produces: rate = served, fraction = the
// copy's share of its passing flow.  One definition for the full and the
// incremental export so the two cannot drift.
inline double BatchFraction(double served, double forwarded) {
  const double arriving = served + std::max(0.0, forwarded);
  return arriving > 0 ? std::min(1.0, served / arriving) : 1.0;
}

}  // namespace

QuotaSnapshot QuotaSnapshot::FromBatch(const BatchWebWaveSimulator& batch,
                                       double min_rate) {
  Builder b(batch.node_count(), batch.doc_count());
  batch.ExportQuotas(
      min_rate, [&b](NodeId v, std::int32_t d, double served,
                     double forwarded) {
        b.Add(v, d, served, BatchFraction(served, forwarded));
      });
  QuotaSnapshot s = std::move(b).Build();
  s.incremental_ = true;
  s.min_rate_ = min_rate;
  // The column index is built lazily by the first RefreshFromBatch:
  // one-shot snapshots (and the full rebuilds the bench times against)
  // should not pay for refresh machinery they never use.
  return s;
}

void QuotaSnapshot::BuildColumnIndex() const {
  // Counting sort of the cells by document: rows are node-ascending, so
  // within one document the cells fall out node-ascending too.
  const std::size_t dd = static_cast<std::size_t>(docs_);
  col_off_.assign(dd + 1, 0);
  for (const std::int32_t d : doc_)
    ++col_off_[static_cast<std::size_t>(d) + 1];
  for (std::size_t d = 0; d < dd; ++d) col_off_[d + 1] += col_off_[d];
  col_cells_.resize(doc_.size());
  col_nodes_.resize(doc_.size());
  std::vector<std::int64_t> fill(col_off_.begin(), col_off_.end() - 1);
  for (NodeId v = 0; v < nodes_; ++v)
    for (std::int64_t cell = row_begin(v); cell < row_end(v); ++cell) {
      const std::size_t d =
          static_cast<std::size_t>(doc_[static_cast<std::size_t>(cell)]);
      const std::int64_t slot = fill[d]++;
      col_cells_[static_cast<std::size_t>(slot)] = cell;
      col_nodes_[static_cast<std::size_t>(slot)] = v;
    }
}

bool QuotaSnapshot::RefreshFromBatch(const BatchWebWaveSimulator& batch) {
  WEBWAVE_REQUIRE(incremental_,
                  "RefreshFromBatch needs a FromBatch-produced snapshot");
  WEBWAVE_REQUIRE(batch.node_count() == nodes_ && batch.doc_count() == docs_,
                  "snapshot does not match the batch engine");
  if (col_off_.empty()) BuildColumnIndex();
  const std::vector<int> dirty = batch.DirtyLanes();
  // One merged engine sweep collects the dirty lanes' fresh cells in
  // ExportQuotas order — the only part that touches the engine, O(dirty
  // lanes), not O(catalog).
  std::vector<BatchWebWaveSimulator::QuotaCell> fresh_cells;
  std::int64_t expect = 0;  // last refresh's dirty-lane cell count
  for (const int d : dirty)
    expect += col_off_[static_cast<std::size_t>(d) + 1] -
              col_off_[static_cast<std::size_t>(d)];
  fresh_cells.reserve(static_cast<std::size_t>(expect) + 1024);
  batch.ExportLanesQuotas(Span<const int>(dirty.data(), dirty.size()),
                          min_rate_, &fresh_cells);

  // Fast path: every dirty lane kept its copy set (same cells, same
  // nodes), so the CSR structure stands and only rates and fractions are
  // rewritten in place.  The check and the rewrite are one fused pass —
  // a mid-stream shape mismatch just falls through to the structural
  // merge below, which rebuilds everything and makes the partial writes
  // harmless.  total_ absorbs the rate deltas — the one field that can
  // drift ulps from a fresh build's summation order.
  bool same_shape = true;
  {
    std::vector<std::int64_t> at(static_cast<std::size_t>(docs_), 0);
    for (const int d : dirty)
      at[static_cast<std::size_t>(d)] = col_off_[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; same_shape && i < fresh_cells.size(); ++i) {
      const BatchWebWaveSimulator::QuotaCell& c = fresh_cells[i];
      const std::size_t d = static_cast<std::size_t>(c.doc);
      std::int64_t& cursor = at[d];
      if (cursor >= col_off_[d + 1] ||
          col_nodes_[static_cast<std::size_t>(cursor)] != c.node) {
        same_shape = false;
        break;
      }
      const std::size_t cell = static_cast<std::size_t>(
          col_cells_[static_cast<std::size_t>(cursor++)]);
      total_ += c.served - rate_[cell];
      rate_[cell] = c.served;
      frac_[cell] = BatchFraction(c.served, c.forwarded);
    }
    for (const int d : dirty)
      same_shape = same_shape &&
                   at[static_cast<std::size_t>(d)] ==
                       col_off_[static_cast<std::size_t>(d) + 1];
    if (same_shape) return true;
  }

  // Structural path: some dirty lane gained or lost copies, so row
  // lengths shift.  Rebuild the CSR by merging the *old snapshot's* clean
  // cells with the fresh dirty cells row by row — O(old cells + new
  // cells) over the snapshot arrays, still never a rescan of the engine's
  // clean lanes.  Cells are appended in exactly the order Builder::Add
  // sees them in FromBatch, and total re-accumulates in that order, so
  // the result is byte-identical to a fresh build.
  std::vector<std::uint8_t> is_dirty(static_cast<std::size_t>(docs_), 0);
  for (const int d : dirty) is_dirty[static_cast<std::size_t>(d)] = 1;
  QuotaSnapshot merged;
  merged.nodes_ = nodes_;
  merged.docs_ = docs_;
  merged.incremental_ = true;
  merged.min_rate_ = min_rate_;
  merged.row_off_.assign(static_cast<std::size_t>(nodes_) + 1, 0);
  const std::size_t reserve = doc_.size() + fresh_cells.size();
  merged.doc_.reserve(reserve);
  merged.rate_.reserve(reserve);
  merged.frac_.reserve(reserve);
  std::size_t fresh = 0;  // next unconsumed dirty cell, (node, doc) order
  for (NodeId v = 0; v < nodes_; ++v) {
    std::int64_t old = row_begin(v);
    const std::int64_t old_end = row_end(v);
    while (true) {
      // Skip the old row's dirty-lane cells: the fresh export replaces
      // them (possibly with nothing).
      while (old < old_end &&
             is_dirty[static_cast<std::size_t>(
                 doc_[static_cast<std::size_t>(old)])])
        ++old;
      const bool has_old = old < old_end;
      const bool has_fresh =
          fresh < fresh_cells.size() && fresh_cells[fresh].node == v;
      if (!has_old && !has_fresh) break;
      const bool take_fresh =
          has_fresh && (!has_old || fresh_cells[fresh].doc <
                                        doc_[static_cast<std::size_t>(old)]);
      if (take_fresh) {
        merged.doc_.push_back(fresh_cells[fresh].doc);
        merged.rate_.push_back(fresh_cells[fresh].served);
        merged.frac_.push_back(BatchFraction(fresh_cells[fresh].served,
                                             fresh_cells[fresh].forwarded));
        merged.total_ += fresh_cells[fresh].served;
        ++fresh;
      } else {
        merged.doc_.push_back(doc_[static_cast<std::size_t>(old)]);
        merged.rate_.push_back(rate_[static_cast<std::size_t>(old)]);
        merged.frac_.push_back(frac_[static_cast<std::size_t>(old)]);
        merged.total_ += rate_[static_cast<std::size_t>(old)];
        ++old;
      }
    }
    merged.row_off_[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(merged.doc_.size());
  }
  merged.BuildColumnIndex();  // this snapshot is refreshed again by design
  *this = std::move(merged);
  return false;
}

std::int64_t QuotaSnapshot::CellOf(NodeId v, std::int32_t d) const {
  WEBWAVE_REQUIRE(v >= 0 && v < nodes_, "node out of range");
  const std::int32_t* lo = doc_.data() + row_begin(v);
  const std::int32_t* hi = doc_.data() + row_end(v);
  const std::int32_t* it = std::lower_bound(lo, hi, d);
  if (it == hi || *it != d) return -1;
  return it - doc_.data();
}

double QuotaSnapshot::RateAt(NodeId v, std::int32_t d) const {
  const std::int64_t cell = CellOf(v, d);
  return cell >= 0 ? rate_[static_cast<std::size_t>(cell)] : 0.0;
}

double QuotaSnapshot::FractionAt(NodeId v, std::int32_t d) const {
  const std::int64_t cell = CellOf(v, d);
  return cell >= 0 ? frac_[static_cast<std::size_t>(cell)] : 0.0;
}

std::vector<std::int64_t> QuotaSnapshot::CopiesPerDoc() const {
  std::vector<std::int64_t> copies(static_cast<std::size_t>(docs_), 0);
  for (const std::int32_t d : doc_) ++copies[static_cast<std::size_t>(d)];
  return copies;
}

Span<const NodeId> QuotaSnapshot::DocNodes(std::int32_t d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "document out of range");
  if (col_off_.empty()) BuildColumnIndex();
  const std::size_t begin =
      static_cast<std::size_t>(col_off_[static_cast<std::size_t>(d)]);
  const std::size_t end =
      static_cast<std::size_t>(col_off_[static_cast<std::size_t>(d) + 1]);
  return Span<const NodeId>(col_nodes_.data() + begin, end - begin);
}

Span<const std::int64_t> QuotaSnapshot::DocCells(std::int32_t d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < docs_, "document out of range");
  if (col_off_.empty()) BuildColumnIndex();
  const std::size_t begin =
      static_cast<std::size_t>(col_off_[static_cast<std::size_t>(d)]);
  const std::size_t end =
      static_cast<std::size_t>(col_off_[static_cast<std::size_t>(d) + 1]);
  return Span<const std::int64_t>(col_cells_.data() + begin, end - begin);
}

}  // namespace webwave
