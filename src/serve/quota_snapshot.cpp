#include "serve/quota_snapshot.h"

#include <algorithm>
#include <utility>

#include "core/webwave_batch.h"
#include "util/check.h"

namespace webwave {

QuotaSnapshot::Builder::Builder(int node_count, int doc_count)
    : nodes_(node_count), docs_(doc_count) {
  WEBWAVE_REQUIRE(node_count >= 1 && doc_count >= 1,
                  "snapshot needs nodes and documents");
  row_end_.assign(static_cast<std::size_t>(node_count), 0);
}

void QuotaSnapshot::Builder::Add(NodeId node, std::int32_t doc, double rate,
                                 double fraction) {
  WEBWAVE_REQUIRE(node >= 0 && node < nodes_, "cell node out of range");
  WEBWAVE_REQUIRE(doc >= 0 && doc < docs_, "cell document out of range");
  WEBWAVE_REQUIRE(rate > 0, "quota cells must carry positive rate");
  WEBWAVE_REQUIRE(fraction > 0 && fraction <= 1 + 1e-9,
                  "serve fraction must lie in (0, 1]");
  WEBWAVE_REQUIRE(
      node > last_node_ || (node == last_node_ && doc > last_doc_),
      "cells must arrive nodes ascending, documents ascending within a node");
  last_node_ = node;
  last_doc_ = doc;
  row_end_[static_cast<std::size_t>(node)] =
      static_cast<std::int64_t>(doc_.size()) + 1;
  doc_.push_back(doc);
  rate_.push_back(rate);
  frac_.push_back(std::min(fraction, 1.0));
  total_ += rate;
}

QuotaSnapshot QuotaSnapshot::Builder::Build() && {
  QuotaSnapshot s;
  s.nodes_ = nodes_;
  s.docs_ = docs_;
  s.total_ = total_;
  s.doc_ = std::move(doc_);
  s.rate_ = std::move(rate_);
  s.frac_ = std::move(frac_);
  s.row_off_.assign(static_cast<std::size_t>(nodes_) + 1, 0);
  // row_end_ holds, for each node with cells, one past its last cell; rows
  // were filled in ascending node order, so a running maximum turns the
  // sparse ends into CSR offsets.
  std::int64_t off = 0;
  for (int v = 0; v < nodes_; ++v) {
    off = std::max(off, row_end_[static_cast<std::size_t>(v)]);
    s.row_off_[static_cast<std::size_t>(v) + 1] = off;
  }
  return s;
}

QuotaSnapshot QuotaSnapshot::FromPlacement(const PlacementResult& placement,
                                           double min_rate) {
  const int nodes = static_cast<int>(placement.quota.size());
  WEBWAVE_REQUIRE(nodes >= 1, "placement covers no nodes");
  const int docs = static_cast<int>(placement.quota.front().size());
  Builder b(nodes, docs);
  for (NodeId v = 0; v < nodes; ++v) {
    const std::vector<double>& row =
        placement.quota[static_cast<std::size_t>(v)];
    for (std::int32_t d = 0; d < docs; ++d)
      if (row[static_cast<std::size_t>(d)] > min_rate)
        b.Add(v, d, row[static_cast<std::size_t>(d)]);
  }
  return std::move(b).Build();
}

QuotaSnapshot QuotaSnapshot::FromPlacement(const RoutingTree& tree,
                                           const PlacementResult& placement,
                                           const DemandMatrix& demand,
                                           double min_rate) {
  const int nodes = tree.size();
  WEBWAVE_REQUIRE(
      placement.quota.size() == static_cast<std::size_t>(nodes) &&
          demand.node_count() == nodes,
      "placement/demand do not match the tree");
  const int docs = demand.doc_count();
  // Recompute the per-document flows the placement decomposed, bottom-up:
  // arrive = own demand + what the children forwarded after serving their
  // quotas; a copy's serve fraction is quota / arrive.
  const std::size_t dd = static_cast<std::size_t>(docs);
  std::vector<double> flow(static_cast<std::size_t>(nodes) * dd, 0.0);
  std::vector<std::vector<double>> fraction(
      static_cast<std::size_t>(nodes), std::vector<double>(dd, 1.0));
  for (const NodeId v : tree.postorder()) {
    double* row = flow.data() + static_cast<std::size_t>(v) * dd;
    for (std::size_t d = 0; d < dd; ++d)
      row[d] = demand.at(v, static_cast<DocId>(d));
    for (const NodeId c : tree.children(v)) {
      const double* crow = flow.data() + static_cast<std::size_t>(c) * dd;
      for (std::size_t d = 0; d < dd; ++d) row[d] += crow[d];
    }
    const std::vector<double>& quota =
        placement.quota[static_cast<std::size_t>(v)];
    for (std::size_t d = 0; d < dd; ++d) {
      const double q = quota[d];
      if (q > 0 && row[d] > 0)
        fraction[static_cast<std::size_t>(v)][d] = std::min(1.0, q / row[d]);
      row[d] = std::max(0.0, row[d] - q);
    }
  }
  Builder b(nodes, docs);
  for (NodeId v = 0; v < nodes; ++v) {
    const std::vector<double>& row =
        placement.quota[static_cast<std::size_t>(v)];
    for (std::int32_t d = 0; d < docs; ++d)
      if (row[static_cast<std::size_t>(d)] > min_rate)
        b.Add(v, d, row[static_cast<std::size_t>(d)],
              fraction[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)]);
  }
  return std::move(b).Build();
}

QuotaSnapshot QuotaSnapshot::FromBatch(const BatchWebWaveSimulator& batch,
                                       double min_rate) {
  Builder b(batch.node_count(), batch.doc_count());
  batch.ExportQuotas(
      min_rate, [&b](NodeId v, std::int32_t d, double served,
                     double forwarded) {
        const double arriving = served + std::max(0.0, forwarded);
        b.Add(v, d, served,
              arriving > 0 ? std::min(1.0, served / arriving) : 1.0);
      });
  return std::move(b).Build();
}

std::int64_t QuotaSnapshot::CellOf(NodeId v, std::int32_t d) const {
  WEBWAVE_REQUIRE(v >= 0 && v < nodes_, "node out of range");
  const std::int32_t* lo = doc_.data() + row_begin(v);
  const std::int32_t* hi = doc_.data() + row_end(v);
  const std::int32_t* it = std::lower_bound(lo, hi, d);
  if (it == hi || *it != d) return -1;
  return it - doc_.data();
}

double QuotaSnapshot::RateAt(NodeId v, std::int32_t d) const {
  const std::int64_t cell = CellOf(v, d);
  return cell >= 0 ? rate_[static_cast<std::size_t>(cell)] : 0.0;
}

double QuotaSnapshot::FractionAt(NodeId v, std::int32_t d) const {
  const std::int64_t cell = CellOf(v, d);
  return cell >= 0 ? frac_[static_cast<std::size_t>(cell)] : 0.0;
}

std::vector<std::int64_t> QuotaSnapshot::CopiesPerDoc() const {
  std::vector<std::int64_t> copies(static_cast<std::size_t>(docs_), 0);
  for (const std::int32_t d : doc_) ++copies[static_cast<std::size_t>(d)];
  return copies;
}

}  // namespace webwave
