#include "serve/placement_policy.h"

#include <algorithm>
#include <utility>

#include "doc/placement.h"
#include "util/check.h"
#include "util/rng.h"

namespace webwave {

namespace {

void CheckLanes(const RoutingTree& tree,
                const std::vector<std::vector<double>>& lanes) {
  WEBWAVE_REQUIRE(!lanes.empty(), "need at least one document lane");
  for (const auto& lane : lanes)
    WEBWAVE_REQUIRE(lane.size() == static_cast<std::size_t>(tree.size()),
                    "lane does not match the tree");
}

std::vector<double> DocTotals(const std::vector<std::vector<double>>& lanes) {
  std::vector<double> totals(lanes.size(), 0.0);
  for (std::size_t d = 0; d < lanes.size(); ++d)
    for (const double r : lanes[d]) totals[d] += r;
  return totals;
}

}  // namespace

DemandMatrix DemandFromLanes(const std::vector<std::vector<double>>& lanes) {
  WEBWAVE_REQUIRE(!lanes.empty(), "need at least one document lane");
  const int docs = static_cast<int>(lanes.size());
  const int nodes = static_cast<int>(lanes.front().size());
  DemandMatrix demand(nodes, docs);
  for (int d = 0; d < docs; ++d) {
    const auto& lane = lanes[static_cast<std::size_t>(d)];
    WEBWAVE_REQUIRE(lane.size() == static_cast<std::size_t>(nodes),
                    "lanes differ in length");
    for (int v = 0; v < nodes; ++v)
      if (lane[static_cast<std::size_t>(v)] > 0)
        demand.set(v, d, lane[static_cast<std::size_t>(v)]);
  }
  return demand;
}

QuotaSnapshot HomeOnlyPolicy::Place(
    const RoutingTree& tree,
    const std::vector<std::vector<double>>& lanes) const {
  CheckLanes(tree, lanes);
  const std::vector<double> totals = DocTotals(lanes);
  QuotaSnapshot::Builder b(tree.size(), static_cast<int>(lanes.size()));
  for (std::size_t d = 0; d < totals.size(); ++d)
    if (totals[d] > 0)
      b.Add(tree.root(), static_cast<std::int32_t>(d), totals[d]);
  return std::move(b).Build();
}

UniformTopKPolicy::UniformTopKPolicy(int top_k, int replicas,
                                     std::uint64_t seed)
    : top_k_(top_k), replicas_(replicas), seed_(seed) {
  WEBWAVE_REQUIRE(top_k >= 0, "top_k must be non-negative");
  WEBWAVE_REQUIRE(replicas >= 1, "need at least one replica per document");
}

std::string UniformTopKPolicy::name() const {
  return "uniform-top" + std::to_string(top_k_) + "x" +
         std::to_string(replicas_);
}

QuotaSnapshot UniformTopKPolicy::Place(
    const RoutingTree& tree,
    const std::vector<std::vector<double>>& lanes) const {
  CheckLanes(tree, lanes);
  const int docs = static_cast<int>(lanes.size());
  const std::vector<double> totals = DocTotals(lanes);

  std::vector<int> order(static_cast<std::size_t>(docs));
  for (int d = 0; d < docs; ++d) order[static_cast<std::size_t>(d)] = d;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = totals[static_cast<std::size_t>(a)];
    const double rb = totals[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return a < b;
  });

  struct Cell {
    NodeId node;
    std::int32_t doc;
    double rate;
  };
  std::vector<Cell> cells;
  Rng rng(seed_);
  const int k = std::min(top_k_, docs);
  const int max_replicas =
      std::min(replicas_, std::max(1, tree.size() - 1));
  std::vector<std::uint8_t> picked(static_cast<std::size_t>(tree.size()), 0);
  for (int i = 0; i < docs; ++i) {
    const int d = order[static_cast<std::size_t>(i)];
    const double total = totals[static_cast<std::size_t>(d)];
    if (total <= 0) continue;
    if (i >= k || tree.size() == 1) {
      cells.push_back({tree.root(), d, total});
      continue;
    }
    // `max_replicas` distinct non-root nodes, uniform, demand-blind.
    std::vector<NodeId> sites;
    while (static_cast<int>(sites.size()) < max_replicas) {
      const NodeId v = static_cast<NodeId>(
          rng.NextBelow(static_cast<std::uint64_t>(tree.size())));
      if (tree.is_root(v) || picked[static_cast<std::size_t>(v)]) continue;
      picked[static_cast<std::size_t>(v)] = 1;
      sites.push_back(v);
    }
    for (const NodeId v : sites) picked[static_cast<std::size_t>(v)] = 0;
    const double share = total / static_cast<double>(max_replicas + 1);
    for (const NodeId v : sites) cells.push_back({v, d, share});
    cells.push_back({tree.root(), d, share});
  }

  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.doc < b.doc;
  });
  QuotaSnapshot::Builder b(tree.size(), docs);
  for (const Cell& c : cells) b.Add(c.node, c.doc, c.rate);
  return std::move(b).Build();
}

GreedyByPopularityPolicy::GreedyByPopularityPolicy(int capacity_docs)
    : capacity_docs_(capacity_docs) {
  WEBWAVE_REQUIRE(capacity_docs >= 0, "capacity must be non-negative");
}

std::string GreedyByPopularityPolicy::name() const {
  return "greedy-pop" + std::to_string(capacity_docs_);
}

QuotaSnapshot GreedyByPopularityPolicy::Place(
    const RoutingTree& tree,
    const std::vector<std::vector<double>>& lanes) const {
  CheckLanes(tree, lanes);
  const int docs = static_cast<int>(lanes.size());
  const std::size_t nn = static_cast<std::size_t>(tree.size());
  const std::size_t dd = static_cast<std::size_t>(docs);

  // flow[v·docs + d]: document d's rate still flowing upward at v.  Starts
  // as the local demand; children are folded in bottom-up, and whatever a
  // node absorbs is subtracted before its parent reads it.
  std::vector<double> flow(nn * dd, 0.0);
  for (int d = 0; d < docs; ++d) {
    const auto& lane = lanes[static_cast<std::size_t>(d)];
    for (std::size_t v = 0; v < nn; ++v)
      flow[v * dd + static_cast<std::size_t>(d)] = lane[v];
  }

  std::vector<std::vector<std::pair<std::int32_t, double>>> taken(nn);
  for (const NodeId v : tree.postorder()) {
    double* row = flow.data() + static_cast<std::size_t>(v) * dd;
    for (const NodeId c : tree.children(v)) {
      const double* crow = flow.data() + static_cast<std::size_t>(c) * dd;
      for (std::size_t d = 0; d < dd; ++d) row[d] += crow[d];
    }
    if (tree.is_root(v)) {
      // The home absorbs everything that got this far.
      for (std::size_t d = 0; d < dd; ++d)
        if (row[d] > 0) {
          taken[static_cast<std::size_t>(v)].emplace_back(
              static_cast<std::int32_t>(d), row[d]);
          row[d] = 0;
        }
      continue;
    }
    // Absorb the capacity_docs hottest passing documents outright.
    for (int pick = 0; pick < capacity_docs_; ++pick) {
      std::size_t best = dd;
      double best_rate = 0;
      for (std::size_t d = 0; d < dd; ++d)
        if (row[d] > best_rate) {
          best_rate = row[d];
          best = d;
        }
      if (best == dd) break;
      taken[static_cast<std::size_t>(v)].emplace_back(
          static_cast<std::int32_t>(best), best_rate);
      row[best] = 0;
    }
  }

  QuotaSnapshot::Builder b(tree.size(), docs);
  for (std::size_t v = 0; v < nn; ++v) {
    auto& row = taken[v];
    std::sort(row.begin(), row.end());
    for (const auto& [d, rate] : row) b.Add(static_cast<NodeId>(v), d, rate);
  }
  return std::move(b).Build();
}

QuotaSnapshot WebWaveTlbPolicy::Place(
    const RoutingTree& tree,
    const std::vector<std::vector<double>>& lanes) const {
  CheckLanes(tree, lanes);
  const DemandMatrix demand = DemandFromLanes(lanes);
  const PlacementResult placement = DerivePlacement(tree, demand);
  return QuotaSnapshot::FromPlacement(tree, placement, demand);
}

std::vector<std::unique_ptr<PlacementPolicy>> StandardPolicies(
    int top_k, int replicas, int capacity_docs, std::uint64_t seed) {
  std::vector<std::unique_ptr<PlacementPolicy>> policies;
  policies.push_back(std::make_unique<HomeOnlyPolicy>());
  policies.push_back(
      std::make_unique<UniformTopKPolicy>(top_k, replicas, seed));
  policies.push_back(
      std::make_unique<GreedyByPopularityPolicy>(capacity_docs));
  policies.push_back(std::make_unique<WebWaveTlbPolicy>());
  return policies;
}

}  // namespace webwave
