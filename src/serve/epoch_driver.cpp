#include "serve/epoch_driver.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace webwave {

EpochDriver::EpochDriver(BatchWebWaveSimulator& sim)
    : EpochDriver(sim, Options()) {}

EpochDriver::EpochDriver(BatchWebWaveSimulator& sim, Options options)
    : sim_(sim),
      options_(options),
      snap_(QuotaSnapshot::FromBatch(sim, options.min_rate)) {
  WEBWAVE_REQUIRE(options_.steps_per_epoch >= 0,
                  "steps_per_epoch must be non-negative");
  sim_.ClearDirtyLanes();
}

void EpochDriver::AttachCapacity(CapacityProjector* projector) {
  WEBWAVE_REQUIRE(projector != nullptr && capacity_ == nullptr,
                  "exactly one capacity layer may be attached");
  capacity_ = projector;
  capacity_->Project(snap_);
  WEBWAVE_REQUIRE(capacity_->ConservesTotalRate(snap_),
                  "capacity clamping lost quota rate");
  // The fault layer, if already attached, was projected against the
  // unclamped base; re-home it onto the clamped one.
  if (faults_ != nullptr) {
    faults_->Project(capacity_->clamped());
    WEBWAVE_REQUIRE(faults_->ConservesTotalRate(capacity_->clamped()),
                    "re-homing lost quota rate");
  }
}

void EpochDriver::AttachFaults(FaultProjector* projector) {
  WEBWAVE_REQUIRE(projector != nullptr && faults_ == nullptr,
                  "exactly one fault layer may be attached");
  faults_ = projector;
  const QuotaSnapshot& base = capacity_ != nullptr ? capacity_->clamped()
                                                   : snap_;
  faults_->Project(base);
  WEBWAVE_REQUIRE(faults_->ConservesTotalRate(base),
                  "re-homing lost quota rate");
}

void EpochDriver::AttachPlane(ServingPlane* plane) {
  WEBWAVE_REQUIRE(plane != nullptr && plane_ == nullptr,
                  "exactly one plane may be attached");
  plane_ = plane;
}

const char* EpochDriver::PhaseName(int phase) {
  switch (phase) {
    case kDemand: return "demand";
    case kDiffusion: return "diffusion";
    case kRefresh: return "refresh";
    case kClamp: return "clamp";
    case kRehome: return "rehome";
    case kInstall: return "install";
  }
  return "?";
}

void EpochDriver::AttachRegistry(MetricRegistry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  reg_epochs_ = registry_->Counter("epoch.count");
  reg_dirty_ = registry_->Gauge("epoch.dirty_lanes");
  reg_snap_in_place_ = registry_->Gauge("epoch.snapshot_in_place");
  reg_proj_in_place_ = registry_->Gauge("epoch.projections_in_place");
  reg_down_nodes_ = registry_->Gauge("epoch.down_nodes");
  for (int p = 0; p < kPhaseCount; ++p)
    reg_phase_[p] = registry_->Gauge(std::string("epoch.phase_ns.") +
                                     PhaseName(p));
}

const QuotaSnapshot& EpochDriver::serving() const {
  if (faults_ != nullptr) return faults_->clamped();
  if (capacity_ != nullptr) return capacity_->clamped();
  return snap_;
}

Span<const NodeId> EpochDriver::down() const {
  if (faults_ == nullptr) return Span<const NodeId>();
  return Span<const NodeId>(faults_->down().data(), faults_->down().size());
}

void EpochDriver::InstallDown(ServingPlane& plane) const {
  plane.SetDownNodes(down());
}

EpochDriver::Report EpochDriver::ApplyEpoch(
    Span<DemandEvent> churn_events, Span<const FaultEvent> fault_events) {
  Report report;
  // The phase profiler: wall time between marks, through the attached
  // monotonic clock only — no clock, no timing, and never any influence
  // on the epoch's outputs.
  std::uint64_t last_mark = clock_ != nullptr ? clock_->NowNanos() : 0;
  const auto mark = [&](Phase phase) {
    if (clock_ == nullptr) return;
    const std::uint64_t now = clock_->NowNanos();
    report.phase_ns[phase] = now - last_mark;
    last_mark = now;
  };

  if (churn_events.size() > 0) sim_.ApplyDemandEvents(churn_events);
  mark(kDemand);
  for (int s = 0; s < options_.steps_per_epoch; ++s) sim_.Step();
  mark(kDiffusion);

  report.dirty = sim_.DirtyLanes();
  report.snapshot_in_place = snap_.RefreshFromBatch(sim_);
  sim_.ClearDirtyLanes();
  mark(kRefresh);

  // The affected-document set grows through the layers: demand-side
  // dirty lanes, then whatever cells the capacity re-clamp rebuilt.
  std::vector<std::int32_t> affected(report.dirty.begin(),
                                     report.dirty.end());
  report.projections_in_place = true;
  if (capacity_ != nullptr) {
    report.projections_in_place &= capacity_->Refresh(
        snap_, Span<const int>(report.dirty.data(), report.dirty.size()));
    WEBWAVE_REQUIRE(capacity_->ConservesTotalRate(snap_),
                    "capacity clamping lost quota rate");
    const Span<const std::int32_t> cap_docs = capacity_->last_affected_docs();
    affected.insert(affected.end(), cap_docs.begin(), cap_docs.end());
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
  }
  mark(kClamp);
  if (faults_ != nullptr) {
    faults_->ApplyEvents(fault_events);
    const QuotaSnapshot& base = capacity_ != nullptr ? capacity_->clamped()
                                                     : snap_;
    report.projections_in_place &= faults_->Refresh(
        base, Span<const int>(affected.data(), affected.size()));
    WEBWAVE_REQUIRE(faults_->ConservesTotalRate(base),
                    "re-homing lost quota rate");
  } else {
    WEBWAVE_REQUIRE(fault_events.size() == 0,
                    "fault events need an attached FaultProjector");
  }
  mark(kRehome);

  if (plane_ != nullptr) {
    // The plane serves serving(); hint its refresh with the epoch's
    // affected columns when no projector rewrote the whole table shape.
    if (capacity_ == nullptr && faults_ == nullptr) {
      plane_->Refresh(snap_, Span<const std::int32_t>(affected.data(),
                                                      affected.size()));
    } else {
      plane_->Refresh(serving());
      InstallDown(*plane_);
    }
  }
  mark(kInstall);
  ++epoch_index_;
  Publish(report);
  return report;
}

void EpochDriver::Publish(const Report& report) {
  if (registry_ != nullptr) {
    registry_->Add(reg_epochs_, 1);
    registry_->Set(reg_dirty_, static_cast<std::int64_t>(report.dirty.size()));
    registry_->Set(reg_snap_in_place_, report.snapshot_in_place ? 1 : 0);
    registry_->Set(reg_proj_in_place_, report.projections_in_place ? 1 : 0);
    registry_->Set(reg_down_nodes_, static_cast<std::int64_t>(down().size()));
    for (int p = 0; p < kPhaseCount; ++p)
      registry_->Set(reg_phase_[p],
                     static_cast<std::int64_t>(report.phase_ns[p]));
    if (capacity_ != nullptr) capacity_->PublishMetrics(registry_, "capacity.");
    if (faults_ != nullptr) faults_->PublishMetrics(registry_, "fault.");
  }
  if (timeline_ != nullptr) {
    timeline_->BeginRecord();
    timeline_->Add("epoch", static_cast<long long>(epoch_index_));
    timeline_->Add("dirty_lanes", static_cast<long long>(report.dirty.size()));
    timeline_->Add("snapshot_in_place", report.snapshot_in_place ? 1 : 0);
    timeline_->Add("projections_in_place",
                   report.projections_in_place ? 1 : 0);
    for (int p = 0; p < kPhaseCount; ++p)
      timeline_->Add(std::string("phase_ns_") + PhaseName(p),
                     static_cast<long long>(report.phase_ns[p]));
    if (capacity_ != nullptr) {
      timeline_->Add("capacity_evicted_cells",
                     static_cast<long long>(capacity_->evicted_cells()));
      timeline_->Add("capacity_spilled_rate", capacity_->spilled_rate());
    }
    if (faults_ != nullptr) {
      timeline_->Add("fault_rehomed_cells",
                     static_cast<long long>(faults_->evicted_cells()));
      timeline_->Add("fault_spilled_rate", faults_->spilled_rate());
      timeline_->Add("down_nodes", static_cast<long long>(down().size()));
    }
  }
}

}  // namespace webwave
