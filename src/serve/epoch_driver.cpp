#include "serve/epoch_driver.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

EpochDriver::EpochDriver(BatchWebWaveSimulator& sim)
    : EpochDriver(sim, Options()) {}

EpochDriver::EpochDriver(BatchWebWaveSimulator& sim, Options options)
    : sim_(sim),
      options_(options),
      snap_(QuotaSnapshot::FromBatch(sim, options.min_rate)) {
  WEBWAVE_REQUIRE(options_.steps_per_epoch >= 0,
                  "steps_per_epoch must be non-negative");
  sim_.ClearDirtyLanes();
}

void EpochDriver::AttachCapacity(CapacityProjector* projector) {
  WEBWAVE_REQUIRE(projector != nullptr && capacity_ == nullptr,
                  "exactly one capacity layer may be attached");
  capacity_ = projector;
  capacity_->Project(snap_);
  WEBWAVE_REQUIRE(capacity_->ConservesTotalRate(snap_),
                  "capacity clamping lost quota rate");
  // The fault layer, if already attached, was projected against the
  // unclamped base; re-home it onto the clamped one.
  if (faults_ != nullptr) {
    faults_->Project(capacity_->clamped());
    WEBWAVE_REQUIRE(faults_->ConservesTotalRate(capacity_->clamped()),
                    "re-homing lost quota rate");
  }
}

void EpochDriver::AttachFaults(FaultProjector* projector) {
  WEBWAVE_REQUIRE(projector != nullptr && faults_ == nullptr,
                  "exactly one fault layer may be attached");
  faults_ = projector;
  const QuotaSnapshot& base = capacity_ != nullptr ? capacity_->clamped()
                                                   : snap_;
  faults_->Project(base);
  WEBWAVE_REQUIRE(faults_->ConservesTotalRate(base),
                  "re-homing lost quota rate");
}

void EpochDriver::AttachPlane(ServingPlane* plane) {
  WEBWAVE_REQUIRE(plane != nullptr && plane_ == nullptr,
                  "exactly one plane may be attached");
  plane_ = plane;
}

const QuotaSnapshot& EpochDriver::serving() const {
  if (faults_ != nullptr) return faults_->clamped();
  if (capacity_ != nullptr) return capacity_->clamped();
  return snap_;
}

Span<const NodeId> EpochDriver::down() const {
  if (faults_ == nullptr) return Span<const NodeId>();
  return Span<const NodeId>(faults_->down().data(), faults_->down().size());
}

void EpochDriver::InstallDown(ServingPlane& plane) const {
  plane.SetDownNodes(down());
}

EpochDriver::Report EpochDriver::ApplyEpoch(
    Span<DemandEvent> churn_events, Span<const FaultEvent> fault_events) {
  Report report;
  if (churn_events.size() > 0) sim_.ApplyDemandEvents(churn_events);
  for (int s = 0; s < options_.steps_per_epoch; ++s) sim_.Step();

  report.dirty = sim_.DirtyLanes();
  report.snapshot_in_place = snap_.RefreshFromBatch(sim_);
  sim_.ClearDirtyLanes();

  // The affected-document set grows through the layers: demand-side
  // dirty lanes, then whatever cells the capacity re-clamp rebuilt.
  std::vector<std::int32_t> affected(report.dirty.begin(),
                                     report.dirty.end());
  report.projections_in_place = true;
  if (capacity_ != nullptr) {
    report.projections_in_place &= capacity_->Refresh(
        snap_, Span<const int>(report.dirty.data(), report.dirty.size()));
    WEBWAVE_REQUIRE(capacity_->ConservesTotalRate(snap_),
                    "capacity clamping lost quota rate");
    const Span<const std::int32_t> cap_docs = capacity_->last_affected_docs();
    affected.insert(affected.end(), cap_docs.begin(), cap_docs.end());
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
  }
  if (faults_ != nullptr) {
    faults_->ApplyEvents(fault_events);
    const QuotaSnapshot& base = capacity_ != nullptr ? capacity_->clamped()
                                                     : snap_;
    report.projections_in_place &= faults_->Refresh(
        base, Span<const int>(affected.data(), affected.size()));
    WEBWAVE_REQUIRE(faults_->ConservesTotalRate(base),
                    "re-homing lost quota rate");
  } else {
    WEBWAVE_REQUIRE(fault_events.size() == 0,
                    "fault events need an attached FaultProjector");
  }

  if (plane_ != nullptr) {
    // The plane serves serving(); hint its refresh with the epoch's
    // affected columns when no projector rewrote the whole table shape.
    if (capacity_ == nullptr && faults_ == nullptr) {
      plane_->Refresh(snap_, Span<const std::int32_t>(affected.data(),
                                                      affected.size()));
    } else {
      plane_->Refresh(serving());
      InstallDown(*plane_);
    }
  }
  return report;
}

}  // namespace webwave
