// The request-serving data plane: replays (origin, document) request
// streams against a frozen QuotaSnapshot over the routing tree.
//
// Routing follows the paper's §3 semantics: a request travels from its
// origin up the tree toward the home server and is served by the *first*
// node on the path that holds a copy of the document with remaining
// service quota; the home (root) serves anything that reaches it — it
// holds the authoritative copy of the whole catalog.  Quotas are enforced
// by two admission mechanisms, chosen per cell by its granularity:
//
//   * Token bucket — a cell with quota rate q earns r = slack · q /
//     offered_rate · block_size tokens per block of block_size requests,
//     granted as floor(r·(k+1)+u) − floor(r·k+u) whole requests in block
//     k (u a per-cell hash dither phase, so quantization is unbiased).
//     A hard proportional cap; used when r >= 1, i.e. when the share is
//     coarse enough for counting to mean anything.
//   * Poisson thinning — a cell thinner than one token per block serves
//     each arriving request with probability min(1, slack · fraction),
//     where fraction is the snapshot's per-copy share of passing flow.
//     Thinning a Poisson arrival stream by the flow fraction reproduces
//     the rate model exactly in distribution (the served stream has rate
//     q, the forwarded remainder recurses up the tree), which is the
//     only faithful realization when a copy's whole-run share is below
//     one request — the common regime at 10⁶ servers.
//
// `slack` provides admission headroom over the strict share so Poisson
// burstiness is absorbed at the copies instead of overflowing to the
// home.
//
// The hot loop is allocation-free: CSR row walks over flat arrays, a
// parent-pointer climb, integer counters.  Serve() sweeps request blocks
// on a WorkerPool with the repo's deterministic static partition; every
// block is processed start-to-finish by exactly one worker against
// per-worker budget scratch keyed by block id, and all metrics are
// integer counts merged per worker — so serving results are bit-identical
// at every thread count, the same guarantee the batch simulator gives
// (asserted at 1/2/8 threads by serving_test).
//
// Failover (the fault plane's data-plane half): SetDownNodes marks a set
// of crashed nodes.  A request reaching a down node cannot query it — it
// burns a failed attempt, waits a deterministic dither-phased exponential
// backoff (an accounting counter, not wall time: floor(u · 2^min(a,16))
// slots with u a pure hash of (request, attempt)), and retries at the
// parent.  A request that exhausts max_failover_attempts is dropped —
// counted, never served, modelling a client whose retry budget ran out
// mid-outage.  The home never crashes, so every surviving request still
// terminates.  All failover metrics are integer counters folded into the
// same per-worker merge, hence bit-identical at every thread count and
// block partition (asserted by fault_test at 1/2/8 threads × lane_block
// 1/4/8).  Pair SetDownNodes with a FaultProjector-clamped snapshot: the
// projector moves the dead copies' quota to live ancestors (control
// plane), the down mask makes the walk skip the dead nodes (data plane).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "obs/trace.h"
#include "serve/quota_snapshot.h"
#include "serve/request_gen.h"
#include "tree/routing_tree.h"
#include "util/span.h"
#include "util/worker_pool.h"
#include "wire/message.h"

namespace webwave {

struct ServingOptions {
  // Worker threads for block sweeps; 0 picks one per hardware thread.
  int threads = 1;
  // Requests per quota-refresh block (the token-bucket window).  Larger
  // blocks enforce quotas more faithfully when per-copy shares are small
  // (many servers, few requests each); smaller blocks model tighter
  // refresh intervals but overflow more burst traffic to the home.
  int block_size = 65536;
  // The request rate budgets are scaled against — normally the
  // generator's total_rate().  0 uses the snapshot's total quota rate.
  double offered_rate = 0;
  // Admission headroom: a copy may serve up to slack times its strict
  // proportional share of a block before traffic spills upward.  1.0
  // enforces the placement exactly; the default absorbs the Poisson
  // burstiness of real request streams at the copies themselves.
  double budget_slack = 2.0;
  // Failed attempts at down nodes a request may burn before it is
  // dropped.  8 lets a request climb past any realistic dead chain (tree
  // heights here are ~log n) while still modelling a finite client
  // retry budget.
  int max_failover_attempts = 8;
  // Deterministic sampled request tracing (obs/trace.h).  When enabled,
  // requests selected by TraceSampled(trace_seed, req_id,
  // trace_sample_shift) record their full walk as TraceEvents — an
  // expected 1 in 2^trace_sample_shift requests.  Tracing never perturbs
  // an admission decision: traced and untraced runs produce identical
  // metrics (asserted by obs_test and tab_serving).
  bool trace = false;
  std::uint64_t trace_seed = 0x7ace5eedULL;
  int trace_sample_shift = 14;
};

// Integer serving counters; everything derived (ratios, loads) comes from
// these, so two runs agree exactly iff the counters agree exactly.
struct ServingMetrics {
  std::uint64_t requests = 0;
  std::uint64_t cache_served = 0;  // served strictly below the home
  std::uint64_t home_served = 0;   // served at the root
  std::uint64_t hop_sum = 0;       // total edges climbed by served requests
  // Fault-plane counters (all zero while every node is live):
  std::uint64_t failed_attempts = 0;   // arrivals at down nodes
  std::uint64_t failovers = 0;         // served requests that failed ≥ once
  std::uint64_t dropped_requests = 0;  // retry budget exhausted, never served
  std::uint64_t backoff_slots = 0;     // dither-phased backoff, in slots
  std::vector<std::uint64_t> served_per_node;
  std::vector<std::uint64_t> hops;  // hops[h]: requests served h hops up

  // Fraction of requests a cache copy (not the home) absorbed.
  double HitRatio() const;
  double MeanHops() const;
  // Fraction of requests dropped after exhausting the retry budget.
  double DropRatio() const;
  std::uint64_t MaxServed() const;
  // served_per_node as doubles, for the stats/ helpers.
  std::vector<double> Loads() const;

  bool operator==(const ServingMetrics& other) const;
};

class ServingPlane {
 public:
  ServingPlane(const RoutingTree& tree, QuotaSnapshot snapshot,
               ServingOptions options = {});

  int thread_count() const { return pool_->thread_count(); }
  const QuotaSnapshot& snapshot() const { return snapshot_; }

  // Installs the set of crashed nodes (ascending not required; the root
  // must be live).  Takes effect from the next Serve call; an empty span
  // restores the all-live fast path.  Typically driven by
  // FaultProjector::down() right after the projector refreshed the
  // snapshot this plane serves.
  void SetDownNodes(Span<const NodeId> down);

  // Serves a batch of requests, accumulating into metrics().  Block
  // numbering continues across calls, so a stream serves identically
  // whether it arrives in one batch or many (given block-aligned batch
  // sizes) and budgets never leak between blocks.
  void Serve(Span<Request> batch);

  // --- wire entry point (src/netd/) ---------------------------------------
  // Restricts ServeWireSegment's walk to `owned` nodes: the walk returns
  // kForwarded when it reaches a node outside the set instead of
  // processing it there.  Empty = every node owned (never forwards) —
  // that is the oracle configuration; a daemon installs its shard.
  void SetSegmentNodes(Span<const NodeId> owned);

  // The quota-table epoch stamped into every GetReply.version — the
  // DistCache-style piggyback that lets clients learn how current the
  // serving daemon's table is without a query protocol.  A daemon bumps
  // it after applying each kQuotaDelta; the oracle leaves it 0.
  void SetTableVersion(std::uint32_t version) { table_version_ = version; }

  enum class WireServe { kServed, kForwarded, kDropped };

  // Serves one wire GetRequest through exactly the admission core
  // ProcessBlock runs — same row search, same token grants, same
  // thinning draws, same failover backoff — but resumable across
  // processes: the walk starts at in.origin_node with in.ttl_hops edges
  // already climbed and in.failed attempts already burned.
  //
  //   kServed    → *reply filled (result kServed), terminal counters
  //                accounted here (requests, served_per_node, hops,
  //                failovers, cache/home_served).
  //   kDropped   → *reply filled (result kDropped), request counted as
  //                dropped here.
  //   kForwarded → *forward holds the message to put on the next
  //                process's socket (origin_node = the first node this
  //                plane does not own); nothing terminal is accounted.
  //
  // failed_attempts and backoff_slots account where incurred, terminal
  // counters where the walk ends, so counters *summed across a fleet of
  // segment planes* equal one all-owning oracle plane's metrics exactly.
  //
  // Requires block_size == 1 — the order-free admission regime, where
  // every token grant and thinning draw is a pure function of (req_id,
  // cell).  That is what makes N async processes bit-comparable to a
  // single oracle replaying the same stream in any order.
  WireServe ServeWireSegment(const GetRequest& in, GetRequest* forward,
                             GetReply* reply);

  // Installs a new snapshot without tearing the plane down — the
  // data-plane analogue of QuotaSnapshot::RefreshFromBatch.  When the
  // CSR shape is unchanged, only the admission rows whose cells changed
  // are recomputed: the hinted overload touches just `changed_docs`'
  // cells through the snapshot's column index (the caller promises every
  // other cell is value-identical — the dirty/affected sets of the
  // closed loop are exactly that promise); the unhinted overload diffs
  // every cell.  A shape change, or a cell crossing the token/thinning
  // regime boundary (which renumbers the compact token slots), falls
  // back to a full table rebuild.  Either way the admission tables end
  // up byte-identical to constructing a fresh plane from the snapshot
  // (asserted by serving_test via TablesEqual); accumulated metrics and
  // block numbering continue.  Returns true when the in-place path
  // sufficed.  The tree and catalog shape cannot change.
  bool Refresh(QuotaSnapshot snapshot);
  bool Refresh(QuotaSnapshot snapshot, Span<const std::int32_t> changed_docs);

  // True iff the two planes would admit any request stream identically
  // from the same block position: same snapshot cells, admission tables
  // and budget scale.  The test hook behind the refresh-equals-fresh
  // assertions.
  bool TablesEqual(const ServingPlane& other) const;

  const ServingMetrics& metrics() const { return metrics_; }
  void ResetMetrics();

  // --- telemetry (src/obs/) ----------------------------------------------
  // Publishes the serving counters into `registry` under
  // "<prefix>requests", "<prefix>cache_served", ... — deltas are added at
  // Serve()'s per-worker merge (a block boundary) and per terminal wire
  // request, so the registry totals track metrics() exactly and are
  // bit-identical at any thread count.  Pass nullptr to detach.
  void AttachRegistry(MetricRegistry* registry, const std::string& prefix);

  // Trace events accumulated so far, in canonical (req_id, seq) order for
  // Serve() batches; ServeWireSegment appends in completion order and the
  // caller canonicalizes after merging daemon shards.  Cleared by
  // ResetMetrics.
  const std::vector<TraceEvent>& trace() const { return trace_; }

 private:
  struct WorkerState {
    // Indexed by token-cell compact id, not raw cell.
    std::vector<std::uint64_t> stamp;  // block id a cell's grant was cut in
    std::vector<std::int32_t> avail;   // tokens left for the cell, then
    ServingMetrics local;
    std::vector<TraceEvent> trace;  // sampled events, drained at the merge
  };

  void ProcessBlock(WorkerState& ws, std::uint64_t block_id,
                    const Request* reqs, std::size_t count);
  // The admission core, shared verbatim by ProcessBlock and
  // ServeWireSegment (all inline in the .cpp):
  //   FindCell      — CSR row search for (v, d); -1 when v holds no copy.
  //   TokenGrant    — block k's whole-token grant for a token cell,
  //                   floor(r·(k+1)+u) − floor(r·k+u).
  //   ThinningAdmit — the (req_id, cell) thinning draw against
  //                   serve_prob_.
  //   BackoffSlots  — the dither-phased failover backoff for attempt
  //                   `failed` of request req_id.
  std::int64_t FindCell(NodeId v, std::int32_t d) const;
  std::int32_t TokenGrant(std::int32_t tok, std::int64_t cell,
                          std::uint64_t block_id) const;
  bool ThinningAdmit(std::uint64_t req_id, std::int64_t cell) const;
  static std::uint64_t BackoffSlots(std::uint64_t req_id,
                                    std::uint32_t failed);
  // Recomputes serve_prob_ / token_index_ / tokens_per_block_ (and the
  // per-worker token scratch) from snapshot_ — the constructor's table
  // build, shared with Refresh's full-rebuild path.
  void BuildTables();
  bool RefreshImpl(QuotaSnapshot snapshot,
                   Span<const std::int32_t> changed_docs, bool have_hint);

  QuotaSnapshot snapshot_;
  ServingOptions options_;
  std::uint32_t table_version_ = 0;  // stamped into GetReply.version
  NodeId root_;
  std::vector<NodeId> parents_;
  // Per cell: the thinning probability min(1, slack · fraction), and for
  // cells coarse enough to count (≥ 1 token per block) a compact index
  // into the token arrays; kNoToken for the thinning regime.  Token
  // cells store their per-block token rate (slack · quota share ·
  // block_size); worker scratch is sized by token cells only — at 10⁶
  // servers the vast majority of copies are sub-token.
  static constexpr std::int32_t kNoToken = -1;
  std::vector<double> serve_prob_;
  std::vector<std::int32_t> token_index_;
  std::vector<double> tokens_per_block_;  // per token cell
  double per_block_ = 0;  // slack · block_size / scale rate, cached by
                          // BuildTables so Refresh can detect scale moves
  // Per node, 1 = crashed; empty means every node is live (the hot loop
  // skips the mask probe entirely in that case).
  std::vector<std::uint8_t> down_;
  // Per node, 1 = this plane's wire segment owns it; empty = all owned.
  std::vector<std::uint8_t> owned_;
  std::uint64_t next_block_id_ = 1;  // 0 is the never-used stamp value
  ServingMetrics metrics_;
  std::vector<TraceEvent> trace_;
  std::vector<WorkerState> workers_;
  std::unique_ptr<WorkerPool> pool_;
  // Registered counter ids when a registry is attached (AttachRegistry).
  MetricRegistry* registry_ = nullptr;
  struct RegistryIds {
    MetricRegistry::Id requests, cache_served, home_served, hop_sum,
        failed_attempts, failovers, dropped_requests, backoff_slots,
        trace_events;
  };
  RegistryIds reg_ids_{};
};

}  // namespace webwave
