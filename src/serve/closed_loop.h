// Closing the loop: measured traffic back into the control plane.
//
// The batch diffusion engine balances against *spontaneous rates* it is
// told about; the serving plane sees what clients actually requested.
// ArrivalFold connects the two: it counts served (origin, document)
// arrivals over a measurement window and converts the counts into the
// sparse DemandEvent batch that moves the engine's rates to the measured
// ones — exactly the events ApplyDemandEvents consumes.  Cells whose
// measured rate fell to zero are included (as rate-0 events), so demand
// that moved away is forgotten, not accreted.
//
// The full loop, as run by examples/serving_loop.cpp, bench/tab_serving
// and the serving tests:
//
//   generate -> serve (QuotaSnapshot::FromBatch) -> Count -> Drain ->
//   ApplyDemandEvents -> Step x k -> RefreshFromBatch (dirty lanes only)
//   -> ClearDirtyLanes -> next window
//
// so diffusion re-balances against observed demand and the serving plane
// routes against the re-balanced copies, with no oracle knowledge of the
// generator's true rates anywhere in the loop.
//
// Every stage of the loop costs O(what changed), not O(the catalog):
// Count touches the cells requests actually hit, Drain walks only the
// cells touched this window plus those whose previously-emitted rate must
// be forgotten (a sorted sparse merge, byte-identical events to the old
// dense grid scan), ApplyDemandEvents re-projects only affected lanes,
// and RefreshFromBatch rewrites only dirty lanes' snapshot cells.
#pragma once

#include <cstdint>
#include <vector>

#include "core/webwave_options.h"
#include "serve/request_gen.h"
#include "util/span.h"

namespace webwave {

class ArrivalFold {
 public:
  ArrivalFold(int node_count, int doc_count);

  int node_count() const { return nodes_; }
  int doc_count() const { return docs_; }
  std::uint64_t counted() const { return counted_; }

  // Accumulates a batch of served requests into the current window.
  void Count(Span<Request> batch);

  // Ends the window: every (node, doc) cell whose measured rate
  // (count / window_seconds) differs from the rate the last Drain emitted
  // becomes a DemandEvent, counts reset for the next window.  The first
  // Drain diffs against all-zero, i.e. reports every active cell.
  std::vector<DemandEvent> Drain(double window_seconds);

 private:
  int nodes_;
  int docs_;
  std::uint64_t counted_ = 0;
  std::vector<std::uint32_t> counts_;  // node-major [v][d], current window
  std::vector<double> applied_;        // rates emitted by the last Drain
  // Sparse bookkeeping so Drain is O(active + touched), not O(nodes·docs):
  // cells first hit this window, and cells whose applied_ rate is nonzero
  // (kept sorted across windows).
  std::vector<std::int64_t> touched_;
  std::vector<std::int64_t> active_;
};

}  // namespace webwave
