#include "wire/quota_wire.h"

#include <cstdio>

#include "wire/codec.h"

namespace webwave {

namespace {

constexpr std::size_t kFixedHeader = 32;

std::size_t BodySize(std::int64_t nodes, std::int64_t cells) {
  return kFixedHeader + static_cast<std::size_t>(nodes + 1) * 8 +
         static_cast<std::size_t>(cells) * (4 + 8 + 8);
}

}  // namespace

std::size_t QuotaWireTable::Serialize(const QuotaSnapshot& snapshot,
                                      std::vector<std::uint8_t>* out) {
  const int nodes = snapshot.node_count();
  const std::int64_t cells = snapshot.cell_count();
  const std::size_t total = BodySize(nodes, cells);
  const std::size_t base = out->size();
  out->resize(base + total);
  std::uint8_t* p = out->data() + base;
  PutU32(p, kMagic);
  PutU32(p + 4, kVersion);
  PutU32(p + 8, static_cast<std::uint32_t>(nodes));
  PutU32(p + 12, static_cast<std::uint32_t>(snapshot.doc_count()));
  PutU64(p + 16, static_cast<std::uint64_t>(cells));
  PutF64(p + 24, snapshot.total_rate());
  p += kFixedHeader;
  for (int v = 0; v <= nodes; ++v, p += 8)
    PutU64(p, static_cast<std::uint64_t>(
                  v == 0 ? 0 : snapshot.row_end(static_cast<NodeId>(v - 1))));
  const std::int32_t* doc = snapshot.cell_docs();
  const double* rate = snapshot.cell_rates();
  const double* frac = snapshot.cell_fractions();
  for (std::int64_t c = 0; c < cells; ++c, p += 4)
    PutU32(p, static_cast<std::uint32_t>(doc[c]));
  for (std::int64_t c = 0; c < cells; ++c, p += 8) PutF64(p, rate[c]);
  for (std::int64_t c = 0; c < cells; ++c, p += 8) PutF64(p, frac[c]);
  return total;
}

bool QuotaWireTable::Deserialize(const std::uint8_t* data, std::size_t len,
                                 QuotaSnapshot* out) {
  if (len < kFixedHeader) return false;
  if (GetU32(data) != kMagic || GetU32(data + 4) != kVersion) return false;
  const std::int32_t nodes = static_cast<std::int32_t>(GetU32(data + 8));
  const std::int32_t docs = static_cast<std::int32_t>(GetU32(data + 12));
  const std::int64_t cells = static_cast<std::int64_t>(GetU64(data + 16));
  if (nodes < 0 || docs < 0 || cells < 0) return false;
  if (len != BodySize(nodes, cells)) return false;
  const double total = GetF64(data + 24);

  const std::uint8_t* p = data + kFixedHeader;
  std::vector<std::int64_t> row_off(static_cast<std::size_t>(nodes) + 1);
  for (std::int32_t v = 0; v <= nodes; ++v, p += 8)
    row_off[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(GetU64(p));
  if (row_off[0] != 0 || row_off[static_cast<std::size_t>(nodes)] != cells)
    return false;
  for (std::int32_t v = 0; v < nodes; ++v)
    if (row_off[static_cast<std::size_t>(v)] >
        row_off[static_cast<std::size_t>(v) + 1])
      return false;

  std::vector<std::int32_t> doc(static_cast<std::size_t>(cells));
  for (std::int64_t c = 0; c < cells; ++c, p += 4) {
    doc[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(GetU32(p));
    if (doc[static_cast<std::size_t>(c)] < 0 ||
        doc[static_cast<std::size_t>(c)] >= docs)
      return false;
  }
  // Within a row, documents must be strictly ascending (the CellOf binary
  // search depends on it).
  for (std::int32_t v = 0; v < nodes; ++v)
    for (std::int64_t c = row_off[static_cast<std::size_t>(v)] + 1;
         c < row_off[static_cast<std::size_t>(v) + 1]; ++c)
      if (doc[static_cast<std::size_t>(c)] <=
          doc[static_cast<std::size_t>(c) - 1])
        return false;

  std::vector<double> rate(static_cast<std::size_t>(cells));
  for (std::int64_t c = 0; c < cells; ++c, p += 8)
    rate[static_cast<std::size_t>(c)] = GetF64(p);
  std::vector<double> frac(static_cast<std::size_t>(cells));
  for (std::int64_t c = 0; c < cells; ++c, p += 8)
    frac[static_cast<std::size_t>(c)] = GetF64(p);

  QuotaSnapshot s;
  s.nodes_ = nodes;
  s.docs_ = docs;
  s.total_ = total;
  s.row_off_ = std::move(row_off);
  s.doc_ = std::move(doc);
  s.rate_ = std::move(rate);
  s.frac_ = std::move(frac);
  *out = std::move(s);
  return true;
}

bool QuotaWireTable::DiffSnapshots(const QuotaSnapshot& from,
                                   const QuotaSnapshot& to, QuotaDelta* out) {
  if (from.node_count() != to.node_count() ||
      from.doc_count() != to.doc_count())
    return false;
  out->rows.clear();
  out->total_rate = to.total_rate();
  const int nodes = to.node_count();
  for (int v = 0; v < nodes; ++v) {
    const NodeId node = static_cast<NodeId>(v);
    const std::int64_t fb = v == 0 ? 0 : from.row_end(node - 1);
    const std::int64_t fe = from.row_end(node);
    const std::int64_t tb = v == 0 ? 0 : to.row_end(node - 1);
    const std::int64_t te = to.row_end(node);
    bool same = (fe - fb) == (te - tb);
    if (same) {
      // Bit-pattern comparison: memcmp over the raw arrays, so NaNs and
      // signed zeros compare the way the wire round-trip preserves them.
      const std::size_t n = static_cast<std::size_t>(fe - fb);
      same = std::memcmp(from.cell_docs() + fb, to.cell_docs() + tb,
                         n * sizeof(std::int32_t)) == 0 &&
             std::memcmp(from.cell_rates() + fb, to.cell_rates() + tb,
                         n * sizeof(double)) == 0 &&
             std::memcmp(from.cell_fractions() + fb, to.cell_fractions() + tb,
                         n * sizeof(double)) == 0;
    }
    if (same) continue;
    QuotaDeltaRow row;
    row.node = node;
    row.cells.reserve(static_cast<std::size_t>(te - tb));
    for (std::int64_t c = tb; c < te; ++c) {
      QuotaDeltaCell cell;
      cell.doc = to.cell_docs()[c];
      cell.rate = to.cell_rates()[c];
      cell.frac = to.cell_fractions()[c];
      row.cells.push_back(cell);
    }
    out->rows.push_back(std::move(row));
  }
  return true;
}

bool QuotaWireTable::ApplyDelta(const QuotaDelta& delta,
                                QuotaSnapshot* snapshot) {
  const int nodes = snapshot->nodes_;
  const int docs = snapshot->docs_;
  for (const QuotaDeltaRow& row : delta.rows) {
    if (row.node < 0 || row.node >= nodes) return false;
    for (const QuotaDeltaCell& cell : row.cells)
      if (cell.doc < 0 || cell.doc >= docs) return false;
  }

  // Rebuild the CSR arrays splicing the replaced rows in.  Delta rows
  // arrive strictly ascending by node (the codec enforces it), so one
  // merge pass suffices.
  std::vector<std::int64_t> row_off(static_cast<std::size_t>(nodes) + 1, 0);
  std::vector<std::int32_t> doc;
  std::vector<double> rate;
  std::vector<double> frac;
  doc.reserve(snapshot->doc_.size());
  rate.reserve(snapshot->rate_.size());
  frac.reserve(snapshot->frac_.size());
  std::size_t next_row = 0;
  for (int v = 0; v < nodes; ++v) {
    const NodeId node = static_cast<NodeId>(v);
    if (next_row < delta.rows.size() && delta.rows[next_row].node == node) {
      for (const QuotaDeltaCell& cell : delta.rows[next_row].cells) {
        doc.push_back(cell.doc);
        rate.push_back(cell.rate);
        frac.push_back(cell.frac);
      }
      ++next_row;
    } else {
      const std::int64_t b = snapshot->row_off_[static_cast<std::size_t>(v)];
      const std::int64_t e =
          snapshot->row_off_[static_cast<std::size_t>(v) + 1];
      doc.insert(doc.end(), snapshot->doc_.begin() + b,
                 snapshot->doc_.begin() + e);
      rate.insert(rate.end(), snapshot->rate_.begin() + b,
                  snapshot->rate_.begin() + e);
      frac.insert(frac.end(), snapshot->frac_.begin() + b,
                  snapshot->frac_.begin() + e);
    }
    row_off[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(doc.size());
  }
  if (next_row != delta.rows.size()) return false;  // row beyond the table

  snapshot->row_off_ = std::move(row_off);
  snapshot->doc_ = std::move(doc);
  snapshot->rate_ = std::move(rate);
  snapshot->frac_ = std::move(frac);
  snapshot->total_ = delta.total_rate;
  return true;
}

bool QuotaWireTable::WriteFile(const QuotaSnapshot& snapshot,
                               const std::string& path) {
  std::vector<std::uint8_t> bytes;
  Serialize(snapshot, &bytes);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool QuotaWireTable::ReadFile(const std::string& path, QuotaSnapshot* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  std::fclose(f);
  return Deserialize(bytes.data(), bytes.size(), out);
}

}  // namespace webwave
