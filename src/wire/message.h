// The WebWave data-plane message vocabulary — one protocol, two
// transports.
//
// The paper's cache servers are network daemons exchanging request,
// reply and load-gossip messages over a real internet tree (§3, §6).
// This header is the single definition of those messages, shared by
// every transport in the repo:
//
//   * proto/packet_sim carries them through the discrete-event
//     simulator (latencies and losses simulated, payloads real),
//   * netd/ carries them over non-blocking loopback/UDP-style stream
//     sockets between real processes,
//   * serve/ServingPlane consumes and produces them directly as the
//     in-process oracle (ServeWireSegment).
//
// A simulated deployment and a socket deployment therefore exercise
// identical protocol code; diverging them now requires editing the same
// struct, which is the point.
//
// Replies carry the serving node's current load and its quota-table
// version — the DistCache-style piggyback that lets clients and
// downstream caches learn load without a discovery protocol, exactly
// the "no query traffic" stance the paper takes against ICP.
//
// The encoding (fixed-width, explicitly little-endian) lives in
// wire/codec.h; this header is pure vocabulary with no I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/latency_histogram.h"
#include "obs/trace.h"
#include "tree/routing_tree.h"

namespace webwave {

enum class MsgType : std::uint8_t {
  // Data plane ----------------------------------------------------------
  kGetRequest = 1,
  kGetReply = 2,
  kLoadGossip = 3,
  // Control plane (netd process management) ------------------------------
  kHello = 16,
  kStatsRequest = 17,
  kStatsReply = 18,
  kShutdown = 19,
  kTraceRequest = 20,
  kTraceReply = 21,
  // Epoch control plane (multi-epoch closed loop) ------------------------
  kQuotaDelta = 22,
  kEpochUpdate = 23,
  // Latency plane (v4): flight-recorder scrape -----------------------------
  kFlightRequest = 24,
  kFlightReply = 25,
};

enum class GetResult : std::uint8_t {
  kServed = 0,   // serving_node answered with the document
  kDropped = 1,  // retry budget exhausted mid-outage; never served
};

// GetRequest.flags bits.  kGetFlagTrace marks a request the loadgen's
// sampling law (obs/trace.h TraceSampled) selected for tracing; every
// daemon the walk crosses records its TraceEvents, so the fleet's merged
// trace equals the in-process oracle's record-for-record.
inline constexpr std::uint16_t kGetFlagTrace = 0x1;

// A request for `doc`, (re)starting its up-tree walk at `origin_node`:
// the client's origin on first transmission, the resume node when a
// server forwards the miss toward the home.  `ttl_hops` counts the edges
// climbed so far (it doubles as the loop guard: a walk longer than the
// tree height is a protocol error); `failed` counts failover attempts
// burned at crashed nodes, so the retry budget survives process hops.
// `trace_seq` is the next trace sequence number when kGetFlagTrace is
// set — like `failed`, walk state that must survive a forward.
struct GetRequest {
  std::uint64_t req_id = 0;  // stream-global request index (seed, i)
  std::int32_t doc = 0;
  NodeId origin_node = kNoNode;
  std::uint16_t ttl_hops = 0;
  std::uint16_t failed = 0;
  std::uint16_t flags = 0;
  std::uint16_t trace_seq = 0;

  bool operator==(const GetRequest& o) const {
    return req_id == o.req_id && doc == o.doc &&
           origin_node == o.origin_node && ttl_hops == o.ttl_hops &&
           failed == o.failed && flags == o.flags && trace_seq == o.trace_seq;
  }
};

// The answer travelling back down the request's path.  `load` is the
// serving node's current measured load and `version` its quota-table
// epoch — piggybacked state every reply carries for free.
struct GetReply {
  std::uint64_t req_id = 0;
  std::int32_t doc = 0;
  NodeId serving_node = kNoNode;
  GetResult result = GetResult::kServed;
  std::uint16_t hops = 0;  // edges the request climbed before service
  double load = 0;
  std::uint32_t version = 0;

  bool operator==(const GetReply& o) const {
    return req_id == o.req_id && doc == o.doc &&
           serving_node == o.serving_node && result == o.result &&
           hops == o.hops && load == o.load && version == o.version;
  }
};

// One neighbor-load sample of the gossip plane: `node`'s load as of
// gossip round `epoch`.  The diffusion control plane acts on these
// estimates, never on queried state.
struct LoadGossip {
  NodeId node = kNoNode;
  std::uint32_t epoch = 0;
  double load = 0;

  bool operator==(const LoadGossip& o) const {
    return node == o.node && epoch == o.epoch && load == o.load;
  }
};

// netd control plane ------------------------------------------------------

enum class PeerKind : std::uint8_t {
  kServer = 0,
  kLoadgen = 1,
};

// First frame on every new connection: who is calling, and — since v3 —
// which quota-table epoch the caller is at.  A restarted daemon rejoins
// by sending Hello with its boot epoch (0: it only has the base blob);
// the control node replies with the kQuotaDelta/kEpochUpdate pair that
// brings it current.  The epoch in a server's Hello *reply* is the
// rejoin handshake's "how stale am I" disclosure.
struct Hello {
  PeerKind kind = PeerKind::kServer;
  std::uint32_t sender = 0;  // server index or loadgen id
  std::uint32_t epoch = 0;   // quota-table epoch the sender is at

  bool operator==(const Hello& o) const {
    return kind == o.kind && sender == o.sender && epoch == o.epoch;
  }
};

// A server's integer serving counters, the wire twin of ServingMetrics'
// scalar fields (netd sums these across processes and diffs the sums
// against the in-process oracle).  net_forwards / gossip_sent are
// transport-level extras the oracle has no analogue for: socket
// messages depend on how the tree is carved into processes, counters
// must not.
struct WireCounters {
  std::uint64_t requests = 0;
  std::uint64_t cache_served = 0;
  std::uint64_t home_served = 0;
  std::uint64_t hop_sum = 0;
  std::uint64_t failed_attempts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t dropped_requests = 0;
  std::uint64_t backoff_slots = 0;
  std::uint64_t net_forwards = 0;  // GetRequests forwarded over a socket
  std::uint64_t gossip_sent = 0;   // LoadGossip frames emitted
  // Survivability extras (v3): like net_forwards/gossip_sent these are
  // transport-level — the oracle has no analogue, and the fault-scenario
  // assertions pin shed_forwards to zero and outbox_peak_bytes under the
  // watermark rather than diffing them against anything.
  std::uint64_t shed_forwards = 0;     // forwards shed at the outbox watermark
  std::uint64_t reconnects = 0;        // peer reconnect attempts made
  std::uint64_t outbox_peak_bytes = 0; // high-water mark across all conns

  bool operator==(const WireCounters& o) const {
    return requests == o.requests && cache_served == o.cache_served &&
           home_served == o.home_served && hop_sum == o.hop_sum &&
           failed_attempts == o.failed_attempts && failovers == o.failovers &&
           dropped_requests == o.dropped_requests &&
           backoff_slots == o.backoff_slots &&
           net_forwards == o.net_forwards && gossip_sent == o.gossip_sent &&
           shed_forwards == o.shed_forwards && reconnects == o.reconnects &&
           outbox_peak_bytes == o.outbox_peak_bytes;
  }
};

// The optional histogram section of a v4 kStatsReply: one latency
// histogram in LatencyHistogram's exact sparse form (strictly ascending
// bucket indices, non-zero u64 counts) plus the u64 sum of recorded
// values.  A plain 104 B kStatsReply (no section) still decodes —
// `present` distinguishes "daemon shipped a histogram" from "counters
// only", so counters-only peers interoperate unchanged.
struct WireHistogram {
  bool present = false;
  std::uint64_t sum = 0;
  std::vector<LatencyHistogram::SparseEntry> buckets;

  bool operator==(const WireHistogram& o) const {
    return present == o.present && sum == o.sum && buckets == o.buckets;
  }

  LatencyHistogram ToHistogram() const {
    return LatencyHistogram::FromSparse(buckets, sum);
  }
  static WireHistogram From(const LatencyHistogram& h) {
    WireHistogram w;
    w.present = true;
    w.sum = h.sum();
    w.buckets = h.ToSparse();
    return w;
  }
};

// The full v4 kStatsReply: counters plus the daemon's request
// service-time histogram.  Encode(StatsReply) emits the histogram
// section; Encode(WireCounters) keeps emitting the bare 104 B form.
struct StatsReply {
  WireCounters counters;
  WireHistogram hist;

  bool operator==(const StatsReply& o) const {
    return counters == o.counters && hist == o.hist;
  }
};

// kFlightReply — a daemon's flight-recorder ring, oldest to newest, as a
// flat array of fixed-width FlightEvent records (obs/flight_recorder.h).
// A wrapper struct rather than a bare vector so the Encode overload set
// stays unambiguous next to kTraceReply's std::vector<TraceEvent>.
struct FlightReply {
  std::vector<FlightEvent> events;

  bool operator==(const FlightReply& o) const { return events == o.events; }
};

// One changed cell of a quota-table delta: the (doc, rate, frac) triple
// exactly as it appears in the target snapshot's CSR row.
struct QuotaDeltaCell {
  std::int32_t doc = 0;
  double rate = 0;
  double frac = 0;

  bool operator==(const QuotaDeltaCell& o) const {
    return doc == o.doc && rate == o.rate && frac == o.frac;
  }
};

// One replaced CSR row: node's full new cell list (documents strictly
// ascending, possibly empty).  Deltas carry whole rows, not cell edits —
// a row either changed (ship its new contents) or it did not.
struct QuotaDeltaRow {
  NodeId node = kNoNode;
  std::vector<QuotaDeltaCell> cells;

  bool operator==(const QuotaDeltaRow& o) const {
    return node == o.node && cells == o.cells;
  }
};

// kQuotaDelta — the epoch re-sync frame: the rows whose cells differ
// between a daemon's current table and the control node's epoch-`epoch`
// table, plus the new total rate (bit-exact; admission thresholds depend
// on it).  Applying a delta to the table it was diffed from reproduces
// the target snapshot byte-for-byte (QuotaWireTable::ApplyDelta).
struct QuotaDelta {
  std::uint32_t epoch = 0;
  double total_rate = 0;
  std::vector<QuotaDeltaRow> rows;  // nodes strictly ascending

  bool operator==(const QuotaDelta& o) const {
    return epoch == o.epoch && total_rate == o.total_rate && rows == o.rows;
  }
};

// One ownership reassignment relative to the BASE owner map: `node` is
// now owned by server `owner`.  Diffing against the base (not the
// previous epoch) makes EpochUpdate stateless — a rejoining daemon that
// missed epochs applies the latest one to a fresh copy of the base map
// and is current.
struct OwnerDelta {
  NodeId node = kNoNode;
  std::uint32_t owner = 0;

  bool operator==(const OwnerDelta& o) const {
    return node == o.node && owner == o.owner;
  }
};

// kEpochUpdate — the epoch's serving window: the down set every daemon
// must install (SetDownNodes) and the ownership reassignments re-homing
// dead daemons' shards, both relative to a clean slate (empty down set,
// base owner map).
struct EpochUpdate {
  std::uint32_t epoch = 0;
  std::vector<NodeId> down;           // strictly ascending
  std::vector<OwnerDelta> reassign;   // nodes strictly ascending

  bool operator==(const EpochUpdate& o) const {
    return epoch == o.epoch && down == o.down && reassign == o.reassign;
  }
};

// A decoded frame: `type` selects which member is meaningful.  (A tagged
// struct rather than std::variant: every payload is a few dozen bytes
// and the dispatch sites switch on the type anyway.)
struct WireMessage {
  MsgType type = MsgType::kGetRequest;
  GetRequest get;
  GetReply reply;
  LoadGossip gossip;
  Hello hello;
  WireCounters stats;                // kStatsReply
  WireHistogram stats_hist;          // kStatsReply (v4 optional section)
  std::vector<TraceEvent> trace;     // kTraceReply
  QuotaDelta delta;                  // kQuotaDelta
  EpochUpdate epoch_update;          // kEpochUpdate
  FlightReply flight;                // kFlightReply
};

}  // namespace webwave
