// QuotaWireTable — the serialized form of a QuotaSnapshot, so a cache
// server process can be handed its admission state as a byte blob.
//
// Layout (all fields little-endian, same primitives as wire/codec.h):
//
//   offset  size          field
//   0       4             magic 'WWQT' (0x54515757)
//   4       4             version (u32, currently 1)
//   8       4             node count (i32)
//   12      4             doc count (i32)
//   16      8             cell count (i64)
//   24      8             total rate (f64, exact bit pattern)
//   32      (nodes+1)*8   CSR row offsets (i64 each)
//   ...     cells*4       cell document ids (i32 each)
//   ...     cells*8       cell quota rates (f64 each)
//   ...     cells*8       cell serve fractions (f64 each)
//
// Deserialize(Serialize(s)) is *byte-exact*: every rate, fraction and the
// running total_rate() come back with identical bit patterns (doubles
// travel as their IEEE-754 u64 bits), which is what lets a daemon build
// the same ServingPlane — and therefore make the same admission
// decisions — as the in-process oracle that produced the table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/quota_snapshot.h"
#include "wire/message.h"

namespace webwave {

class QuotaWireTable {
 public:
  static constexpr std::uint32_t kMagic = 0x54515757;  // "WWQT" LE
  static constexpr std::uint32_t kVersion = 1;

  // Appends the serialized snapshot to *out; returns bytes appended.
  static std::size_t Serialize(const QuotaSnapshot& snapshot,
                               std::vector<std::uint8_t>* out);

  // Reconstructs a snapshot from [data, data+len).  Returns false (and
  // leaves *out untouched) on bad magic/version, a length that disagrees
  // with the stated counts, or CSR invariants that do not hold
  // (non-monotone row offsets, rows with descending documents).
  static bool Deserialize(const std::uint8_t* data, std::size_t len,
                          QuotaSnapshot* out);

  // File-blob convenience for handing a forked daemon its table.
  static bool WriteFile(const QuotaSnapshot& snapshot,
                        const std::string& path);
  static bool ReadFile(const std::string& path, QuotaSnapshot* out);

  // Epoch delta support (the kQuotaDelta wire frame's payload) ----------
  //
  // DiffSnapshots fills *out with the rows whose cell lists differ
  // between `from` and `to` — comparison is on the raw IEEE-754 bit
  // patterns, so a rate that moved by one ulp ships and a bit-identical
  // row does not — plus `to`'s exact total rate.  Returns false if the
  // snapshots disagree on node or document count (a delta only makes
  // sense between same-shaped tables).  out->epoch is left untouched
  // for the caller to stamp.
  static bool DiffSnapshots(const QuotaSnapshot& from, const QuotaSnapshot& to,
                            QuotaDelta* out);

  // Splices a delta's rows into *snapshot and installs the delta's total
  // rate.  The law: ApplyDelta(DiffSnapshots(a, b), a) == b, cell- and
  // total-bit-identical.  Returns false (snapshot untouched) on a row
  // node outside the table or a document outside [0, docs).
  static bool ApplyDelta(const QuotaDelta& delta, QuotaSnapshot* snapshot);
};

}  // namespace webwave
