#include "wire/codec.h"

namespace webwave {

namespace {

// Reserves a frame in *out and writes its header; returns the payload
// offset.
std::size_t BeginFrame(MsgType type, std::size_t payload,
                       std::vector<std::uint8_t>* out) {
  const std::size_t base = out->size();
  out->resize(base + MessageCodec::kHeaderSize + payload);
  std::uint8_t* p = out->data() + base;
  PutU16(p, MessageCodec::kMagic);
  p[2] = MessageCodec::kVersion;
  p[3] = static_cast<std::uint8_t>(type);
  PutU32(p + 4, static_cast<std::uint32_t>(payload));
  return base + MessageCodec::kHeaderSize;
}

// kTraceReply's payload is variable length (count-prefixed records).
constexpr std::size_t kVariablePayload = static_cast<std::size_t>(-2);

// The payload width a type requires, kVariablePayload for count-prefixed
// types, or SIZE_MAX for unknown types.
std::size_t PayloadSizeOf(MsgType type) {
  switch (type) {
    case MsgType::kGetRequest:
      return MessageCodec::kGetRequestSize;
    case MsgType::kGetReply:
      return MessageCodec::kGetReplySize;
    case MsgType::kLoadGossip:
      return MessageCodec::kLoadGossipSize;
    case MsgType::kHello:
      return MessageCodec::kHelloSize;
    case MsgType::kStatsReply:
      return MessageCodec::kCountersSize;
    case MsgType::kStatsRequest:
    case MsgType::kShutdown:
    case MsgType::kTraceRequest:
      return 0;
    case MsgType::kTraceReply:
      return kVariablePayload;
  }
  return static_cast<std::size_t>(-1);
}

// A kTraceReply stated length is valid iff it holds a whole number of
// records after the count word, within the anti-DoS cap.
bool ValidTracePayload(std::uint32_t stated) {
  if (stated < 4) return false;
  const std::uint32_t body = stated - 4;
  return body % MessageCodec::kTraceEventSize == 0 &&
         body / MessageCodec::kTraceEventSize <= MessageCodec::kMaxTraceRecords;
}

}  // namespace

std::size_t MessageCodec::Encode(const GetRequest& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at =
      BeginFrame(MsgType::kGetRequest, kGetRequestSize, out);
  std::uint8_t* p = out->data() + at;
  PutU64(p, m.req_id);
  PutU32(p + 8, static_cast<std::uint32_t>(m.doc));
  PutU32(p + 12, static_cast<std::uint32_t>(m.origin_node));
  PutU16(p + 16, m.ttl_hops);
  PutU16(p + 18, m.failed);
  PutU16(p + 20, m.flags);
  PutU16(p + 22, m.trace_seq);
  return kHeaderSize + kGetRequestSize;
}

std::size_t MessageCodec::Encode(const GetReply& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at = BeginFrame(MsgType::kGetReply, kGetReplySize, out);
  std::uint8_t* p = out->data() + at;
  PutU64(p, m.req_id);
  PutU32(p + 8, static_cast<std::uint32_t>(m.doc));
  PutU32(p + 12, static_cast<std::uint32_t>(m.serving_node));
  PutF64(p + 16, m.load);
  PutU32(p + 24, m.version);
  PutU16(p + 28, m.hops);
  p[30] = static_cast<std::uint8_t>(m.result);
  p[31] = 0;  // reserved
  return kHeaderSize + kGetReplySize;
}

std::size_t MessageCodec::Encode(const LoadGossip& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at =
      BeginFrame(MsgType::kLoadGossip, kLoadGossipSize, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, static_cast<std::uint32_t>(m.node));
  PutU32(p + 4, m.epoch);
  PutF64(p + 8, m.load);
  return kHeaderSize + kLoadGossipSize;
}

std::size_t MessageCodec::Encode(const Hello& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at = BeginFrame(MsgType::kHello, kHelloSize, out);
  std::uint8_t* p = out->data() + at;
  p[0] = static_cast<std::uint8_t>(m.kind);
  p[1] = p[2] = p[3] = 0;  // reserved
  PutU32(p + 4, m.sender);
  return kHeaderSize + kHelloSize;
}

std::size_t MessageCodec::Encode(const WireCounters& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at = BeginFrame(MsgType::kStatsReply, kCountersSize, out);
  std::uint8_t* p = out->data() + at;
  const std::uint64_t fields[10] = {
      m.requests,     m.cache_served,     m.home_served,   m.hop_sum,
      m.failed_attempts, m.failovers,     m.dropped_requests,
      m.backoff_slots,   m.net_forwards,  m.gossip_sent};
  for (int i = 0; i < 10; ++i) PutU64(p + 8 * i, fields[i]);
  return kHeaderSize + kCountersSize;
}

std::size_t MessageCodec::Encode(const std::vector<TraceEvent>& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t payload = 4 + m.size() * kTraceEventSize;
  const std::size_t at = BeginFrame(MsgType::kTraceReply, payload, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, static_cast<std::uint32_t>(m.size()));
  p += 4;
  for (const TraceEvent& e : m) {
    PutU64(p, e.req_id);
    PutU64(p + 8, e.detail);
    PutU32(p + 16, static_cast<std::uint32_t>(e.node));
    PutU16(p + 20, e.seq);
    p[22] = static_cast<std::uint8_t>(e.kind);
    p[23] = e.aux;
    p += kTraceEventSize;
  }
  return kHeaderSize + payload;
}

std::size_t MessageCodec::EncodeControl(MsgType type,
                                        std::vector<std::uint8_t>* out) {
  BeginFrame(type, 0, out);
  return kHeaderSize;
}

MessageCodec::DecodeStatus MessageCodec::Decode(const std::uint8_t* data,
                                                std::size_t len,
                                                WireMessage* out,
                                                std::size_t* consumed) {
  *consumed = 0;
  // Header bytes are validated as they become available, so garbage is
  // reported as soon as it is distinguishable from a short read.
  if (len >= 1 && data[0] != static_cast<std::uint8_t>(kMagic & 0xff))
    return DecodeStatus::kError;
  if (len >= 2 && data[1] != static_cast<std::uint8_t>(kMagic >> 8))
    return DecodeStatus::kError;
  if (len >= 3 && data[2] != kVersion) return DecodeStatus::kError;
  const std::size_t want_payload =
      len >= 4 ? PayloadSizeOf(static_cast<MsgType>(data[3]))
               : static_cast<std::size_t>(-1);
  if (len >= 4 && want_payload == static_cast<std::size_t>(-1))
    return DecodeStatus::kError;
  if (len < kHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint32_t stated = GetU32(data + 4);
  if (want_payload == kVariablePayload) {
    if (!ValidTracePayload(stated)) return DecodeStatus::kError;
  } else if (stated != want_payload) {
    return DecodeStatus::kError;
  }
  if (len < kHeaderSize + stated) return DecodeStatus::kNeedMore;

  const std::uint8_t* p = data + kHeaderSize;
  out->type = static_cast<MsgType>(data[3]);
  switch (out->type) {
    case MsgType::kGetRequest:
      out->get.req_id = GetU64(p);
      out->get.doc = static_cast<std::int32_t>(GetU32(p + 8));
      out->get.origin_node = static_cast<NodeId>(GetU32(p + 12));
      out->get.ttl_hops = GetU16(p + 16);
      out->get.failed = GetU16(p + 18);
      out->get.flags = GetU16(p + 20);
      out->get.trace_seq = GetU16(p + 22);
      break;
    case MsgType::kGetReply:
      out->reply.req_id = GetU64(p);
      out->reply.doc = static_cast<std::int32_t>(GetU32(p + 8));
      out->reply.serving_node = static_cast<NodeId>(GetU32(p + 12));
      out->reply.load = GetF64(p + 16);
      out->reply.version = GetU32(p + 24);
      out->reply.hops = GetU16(p + 28);
      if (p[30] > static_cast<std::uint8_t>(GetResult::kDropped))
        return DecodeStatus::kError;
      out->reply.result = static_cast<GetResult>(p[30]);
      break;
    case MsgType::kLoadGossip:
      out->gossip.node = static_cast<NodeId>(GetU32(p));
      out->gossip.epoch = GetU32(p + 4);
      out->gossip.load = GetF64(p + 8);
      break;
    case MsgType::kHello:
      if (p[0] > static_cast<std::uint8_t>(PeerKind::kLoadgen))
        return DecodeStatus::kError;
      out->hello.kind = static_cast<PeerKind>(p[0]);
      out->hello.sender = GetU32(p + 4);
      break;
    case MsgType::kStatsReply: {
      std::uint64_t* fields[10] = {
          &out->stats.requests,        &out->stats.cache_served,
          &out->stats.home_served,     &out->stats.hop_sum,
          &out->stats.failed_attempts, &out->stats.failovers,
          &out->stats.dropped_requests, &out->stats.backoff_slots,
          &out->stats.net_forwards,    &out->stats.gossip_sent};
      for (int i = 0; i < 10; ++i) *fields[i] = GetU64(p + 8 * i);
      break;
    }
    case MsgType::kTraceReply: {
      const std::uint32_t count = GetU32(p);
      if (4 + static_cast<std::size_t>(count) * kTraceEventSize != stated)
        return DecodeStatus::kError;
      out->trace.clear();
      out->trace.reserve(count);
      const std::uint8_t* r = p + 4;
      for (std::uint32_t i = 0; i < count; ++i, r += kTraceEventSize) {
        TraceEvent e;
        e.req_id = GetU64(r);
        e.detail = GetU64(r + 8);
        e.node = static_cast<NodeId>(GetU32(r + 16));
        e.seq = GetU16(r + 20);
        if (r[22] < static_cast<std::uint8_t>(TraceEventKind::kArrival) ||
            r[22] > static_cast<std::uint8_t>(TraceEventKind::kDropped))
          return DecodeStatus::kError;
        e.kind = static_cast<TraceEventKind>(r[22]);
        e.aux = r[23];
        out->trace.push_back(e);
      }
      break;
    }
    case MsgType::kStatsRequest:
    case MsgType::kShutdown:
    case MsgType::kTraceRequest:
      break;
  }
  *consumed = kHeaderSize + stated;
  return DecodeStatus::kOk;
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kGetRequest:
      return "get-request";
    case MsgType::kGetReply:
      return "get-reply";
    case MsgType::kLoadGossip:
      return "load-gossip";
    case MsgType::kHello:
      return "hello";
    case MsgType::kStatsRequest:
      return "stats-request";
    case MsgType::kStatsReply:
      return "stats-reply";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kTraceRequest:
      return "trace-request";
    case MsgType::kTraceReply:
      return "trace-reply";
  }
  return "?";
}

}  // namespace webwave
