#include "wire/codec.h"

namespace webwave {

namespace {

// Reserves a frame in *out and writes its header; returns the payload
// offset.
std::size_t BeginFrame(MsgType type, std::size_t payload,
                       std::vector<std::uint8_t>* out) {
  const std::size_t base = out->size();
  out->resize(base + MessageCodec::kHeaderSize + payload);
  std::uint8_t* p = out->data() + base;
  PutU16(p, MessageCodec::kMagic);
  p[2] = MessageCodec::kVersion;
  p[3] = static_cast<std::uint8_t>(type);
  PutU32(p + 4, static_cast<std::uint32_t>(payload));
  return base + MessageCodec::kHeaderSize;
}

// kTraceReply / kQuotaDelta / kEpochUpdate payloads are variable length
// (count-prefixed records).
constexpr std::size_t kVariablePayload = static_cast<std::size_t>(-2);

// Anti-DoS ceiling on a kQuotaDelta payload a peer will buffer: enough
// for every row of the largest table the repo ships changing at once,
// far below anything that could exhaust a daemon.
constexpr std::size_t kMaxDeltaPayload = std::size_t{1} << 27;

// The payload width a type requires, kVariablePayload for count-prefixed
// types, or SIZE_MAX for unknown types.
std::size_t PayloadSizeOf(MsgType type) {
  switch (type) {
    case MsgType::kGetRequest:
      return MessageCodec::kGetRequestSize;
    case MsgType::kGetReply:
      return MessageCodec::kGetReplySize;
    case MsgType::kLoadGossip:
      return MessageCodec::kLoadGossipSize;
    case MsgType::kHello:
      return MessageCodec::kHelloSize;
    case MsgType::kStatsRequest:
    case MsgType::kShutdown:
    case MsgType::kTraceRequest:
    case MsgType::kFlightRequest:
      return 0;
    case MsgType::kStatsReply:  // v4: counters + optional histogram section
    case MsgType::kTraceReply:
    case MsgType::kQuotaDelta:
    case MsgType::kEpochUpdate:
    case MsgType::kFlightReply:
      return kVariablePayload;
  }
  return static_cast<std::size_t>(-1);
}

// A kTraceReply stated length is valid iff it holds a whole number of
// records after the count word, within the anti-DoS cap.
bool ValidTracePayload(std::uint32_t stated) {
  if (stated < 4) return false;
  const std::uint32_t body = stated - 4;
  return body % MessageCodec::kTraceEventSize == 0 &&
         body / MessageCodec::kTraceEventSize <= MessageCodec::kMaxTraceRecords;
}

// The stated-length plausibility checks for the epoch control frames:
// row geometry can only be validated once the payload arrives, but a
// length below the prologue or above the anti-DoS cap is garbage the
// moment the header is complete.
bool ValidDeltaPayload(std::uint32_t stated) {
  return stated >= MessageCodec::kDeltaPrologueSize &&
         stated <= kMaxDeltaPayload;
}

bool ValidEpochUpdatePayload(std::uint32_t stated) {
  constexpr std::size_t kMax =
      MessageCodec::kEpochUpdatePrologueSize +
      MessageCodec::kMaxEpochUpdateNodes * (4 + 8);
  return stated >= MessageCodec::kEpochUpdatePrologueSize && stated <= kMax;
}

// A v4 kStatsReply is either the bare 104 B counters or the counters
// plus a histogram section holding a whole number of entries within the
// cap.
bool ValidStatsPayload(std::uint32_t stated) {
  if (stated == MessageCodec::kCountersSize) return true;
  const std::size_t prologue_end =
      MessageCodec::kCountersSize + MessageCodec::kHistPrologueSize;
  if (stated < prologue_end) return false;
  const std::size_t body = stated - prologue_end;
  return body % MessageCodec::kHistEntrySize == 0 &&
         body / MessageCodec::kHistEntrySize <= MessageCodec::kMaxHistEntries;
}

// A kFlightReply stated length is valid iff it holds a whole number of
// records after the count word, within the anti-DoS cap (same shape as
// kTraceReply).
bool ValidFlightPayload(std::uint32_t stated) {
  if (stated < 4) return false;
  const std::uint32_t body = stated - 4;
  return body % MessageCodec::kFlightEventSize == 0 &&
         body / MessageCodec::kFlightEventSize <=
             MessageCodec::kMaxFlightRecords;
}

}  // namespace

std::size_t MessageCodec::Encode(const GetRequest& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at =
      BeginFrame(MsgType::kGetRequest, kGetRequestSize, out);
  std::uint8_t* p = out->data() + at;
  PutU64(p, m.req_id);
  PutU32(p + 8, static_cast<std::uint32_t>(m.doc));
  PutU32(p + 12, static_cast<std::uint32_t>(m.origin_node));
  PutU16(p + 16, m.ttl_hops);
  PutU16(p + 18, m.failed);
  PutU16(p + 20, m.flags);
  PutU16(p + 22, m.trace_seq);
  return kHeaderSize + kGetRequestSize;
}

std::size_t MessageCodec::Encode(const GetReply& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at = BeginFrame(MsgType::kGetReply, kGetReplySize, out);
  std::uint8_t* p = out->data() + at;
  PutU64(p, m.req_id);
  PutU32(p + 8, static_cast<std::uint32_t>(m.doc));
  PutU32(p + 12, static_cast<std::uint32_t>(m.serving_node));
  PutF64(p + 16, m.load);
  PutU32(p + 24, m.version);
  PutU16(p + 28, m.hops);
  p[30] = static_cast<std::uint8_t>(m.result);
  p[31] = 0;  // reserved
  return kHeaderSize + kGetReplySize;
}

std::size_t MessageCodec::Encode(const LoadGossip& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at =
      BeginFrame(MsgType::kLoadGossip, kLoadGossipSize, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, static_cast<std::uint32_t>(m.node));
  PutU32(p + 4, m.epoch);
  PutF64(p + 8, m.load);
  return kHeaderSize + kLoadGossipSize;
}

std::size_t MessageCodec::Encode(const Hello& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at = BeginFrame(MsgType::kHello, kHelloSize, out);
  std::uint8_t* p = out->data() + at;
  p[0] = static_cast<std::uint8_t>(m.kind);
  p[1] = p[2] = p[3] = 0;  // reserved
  PutU32(p + 4, m.sender);
  PutU32(p + 8, m.epoch);
  return kHeaderSize + kHelloSize;
}

std::size_t MessageCodec::Encode(const WireCounters& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t at = BeginFrame(MsgType::kStatsReply, kCountersSize, out);
  std::uint8_t* p = out->data() + at;
  const std::uint64_t fields[13] = {
      m.requests,        m.cache_served, m.home_served,
      m.hop_sum,         m.failed_attempts, m.failovers,
      m.dropped_requests, m.backoff_slots, m.net_forwards,
      m.gossip_sent,     m.shed_forwards, m.reconnects,
      m.outbox_peak_bytes};
  for (int i = 0; i < 13; ++i) PutU64(p + 8 * i, fields[i]);
  return kHeaderSize + kCountersSize;
}

std::size_t MessageCodec::Encode(const StatsReply& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t payload = kCountersSize + kHistPrologueSize +
                              m.hist.buckets.size() * kHistEntrySize;
  const std::size_t at = BeginFrame(MsgType::kStatsReply, payload, out);
  std::uint8_t* p = out->data() + at;
  const WireCounters& c = m.counters;
  const std::uint64_t fields[13] = {
      c.requests,        c.cache_served, c.home_served,
      c.hop_sum,         c.failed_attempts, c.failovers,
      c.dropped_requests, c.backoff_slots, c.net_forwards,
      c.gossip_sent,     c.shed_forwards, c.reconnects,
      c.outbox_peak_bytes};
  for (int i = 0; i < 13; ++i) PutU64(p + 8 * i, fields[i]);
  p += kCountersSize;
  PutU32(p, static_cast<std::uint32_t>(m.hist.buckets.size()));
  PutU64(p + 4, m.hist.sum);
  p += kHistPrologueSize;
  for (const LatencyHistogram::SparseEntry& e : m.hist.buckets) {
    PutU32(p, e.index);
    PutU64(p + 4, e.count);
    p += kHistEntrySize;
  }
  return kHeaderSize + payload;
}

std::size_t MessageCodec::Encode(const FlightReply& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t payload = 4 + m.events.size() * kFlightEventSize;
  const std::size_t at = BeginFrame(MsgType::kFlightReply, payload, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, static_cast<std::uint32_t>(m.events.size()));
  p += 4;
  for (const FlightEvent& e : m.events) {
    PutU64(p, e.t_ns);
    PutU64(p + 8, e.detail);
    PutU32(p + 16, e.arg);
    PutU16(p + 20, e.seq);
    p[22] = e.kind;
    p[23] = e.node;
    p += kFlightEventSize;
  }
  return kHeaderSize + payload;
}

std::size_t MessageCodec::Encode(const std::vector<TraceEvent>& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t payload = 4 + m.size() * kTraceEventSize;
  const std::size_t at = BeginFrame(MsgType::kTraceReply, payload, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, static_cast<std::uint32_t>(m.size()));
  p += 4;
  for (const TraceEvent& e : m) {
    PutU64(p, e.req_id);
    PutU64(p + 8, e.detail);
    PutU32(p + 16, static_cast<std::uint32_t>(e.node));
    PutU16(p + 20, e.seq);
    p[22] = static_cast<std::uint8_t>(e.kind);
    p[23] = e.aux;
    p += kTraceEventSize;
  }
  return kHeaderSize + payload;
}

std::size_t MessageCodec::Encode(const QuotaDelta& m,
                                 std::vector<std::uint8_t>* out) {
  std::size_t payload = kDeltaPrologueSize;
  for (const QuotaDeltaRow& row : m.rows)
    payload += kDeltaRowHeaderSize + row.cells.size() * kDeltaCellSize;
  const std::size_t at = BeginFrame(MsgType::kQuotaDelta, payload, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, m.epoch);
  PutU32(p + 4, static_cast<std::uint32_t>(m.rows.size()));
  PutF64(p + 8, m.total_rate);
  p += kDeltaPrologueSize;
  for (const QuotaDeltaRow& row : m.rows) {
    PutU32(p, static_cast<std::uint32_t>(row.node));
    PutU32(p + 4, static_cast<std::uint32_t>(row.cells.size()));
    p += kDeltaRowHeaderSize;
    for (const QuotaDeltaCell& cell : row.cells) {
      PutU32(p, static_cast<std::uint32_t>(cell.doc));
      PutF64(p + 4, cell.rate);
      PutF64(p + 12, cell.frac);
      p += kDeltaCellSize;
    }
  }
  return kHeaderSize + payload;
}

std::size_t MessageCodec::Encode(const EpochUpdate& m,
                                 std::vector<std::uint8_t>* out) {
  const std::size_t payload =
      kEpochUpdatePrologueSize + m.down.size() * 4 + m.reassign.size() * 8;
  const std::size_t at = BeginFrame(MsgType::kEpochUpdate, payload, out);
  std::uint8_t* p = out->data() + at;
  PutU32(p, m.epoch);
  PutU32(p + 4, static_cast<std::uint32_t>(m.down.size()));
  PutU32(p + 8, static_cast<std::uint32_t>(m.reassign.size()));
  PutU32(p + 12, 0);  // reserved
  p += kEpochUpdatePrologueSize;
  for (const NodeId v : m.down) {
    PutU32(p, static_cast<std::uint32_t>(v));
    p += 4;
  }
  for (const OwnerDelta& d : m.reassign) {
    PutU32(p, static_cast<std::uint32_t>(d.node));
    PutU32(p + 4, d.owner);
    p += 8;
  }
  return kHeaderSize + payload;
}

std::size_t MessageCodec::EncodeControl(MsgType type,
                                        std::vector<std::uint8_t>* out) {
  BeginFrame(type, 0, out);
  return kHeaderSize;
}

MessageCodec::DecodeStatus MessageCodec::Decode(const std::uint8_t* data,
                                                std::size_t len,
                                                WireMessage* out,
                                                std::size_t* consumed) {
  *consumed = 0;
  // Header bytes are validated as they become available, so garbage is
  // reported as soon as it is distinguishable from a short read.
  if (len >= 1 && data[0] != static_cast<std::uint8_t>(kMagic & 0xff))
    return DecodeStatus::kError;
  if (len >= 2 && data[1] != static_cast<std::uint8_t>(kMagic >> 8))
    return DecodeStatus::kError;
  if (len >= 3 && data[2] != kVersion) return DecodeStatus::kError;
  const std::size_t want_payload =
      len >= 4 ? PayloadSizeOf(static_cast<MsgType>(data[3]))
               : static_cast<std::size_t>(-1);
  if (len >= 4 && want_payload == static_cast<std::size_t>(-1))
    return DecodeStatus::kError;
  if (len < kHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint32_t stated = GetU32(data + 4);
  if (want_payload == kVariablePayload) {
    const MsgType t = static_cast<MsgType>(data[3]);
    const bool plausible =
        t == MsgType::kTraceReply    ? ValidTracePayload(stated)
        : t == MsgType::kQuotaDelta  ? ValidDeltaPayload(stated)
        : t == MsgType::kStatsReply  ? ValidStatsPayload(stated)
        : t == MsgType::kFlightReply ? ValidFlightPayload(stated)
                                     : ValidEpochUpdatePayload(stated);
    if (!plausible) return DecodeStatus::kError;
  } else if (stated != want_payload) {
    return DecodeStatus::kError;
  }
  if (len < kHeaderSize + stated) return DecodeStatus::kNeedMore;

  const std::uint8_t* p = data + kHeaderSize;
  out->type = static_cast<MsgType>(data[3]);
  switch (out->type) {
    case MsgType::kGetRequest:
      out->get.req_id = GetU64(p);
      out->get.doc = static_cast<std::int32_t>(GetU32(p + 8));
      out->get.origin_node = static_cast<NodeId>(GetU32(p + 12));
      out->get.ttl_hops = GetU16(p + 16);
      out->get.failed = GetU16(p + 18);
      out->get.flags = GetU16(p + 20);
      out->get.trace_seq = GetU16(p + 22);
      break;
    case MsgType::kGetReply:
      out->reply.req_id = GetU64(p);
      out->reply.doc = static_cast<std::int32_t>(GetU32(p + 8));
      out->reply.serving_node = static_cast<NodeId>(GetU32(p + 12));
      out->reply.load = GetF64(p + 16);
      out->reply.version = GetU32(p + 24);
      out->reply.hops = GetU16(p + 28);
      if (p[30] > static_cast<std::uint8_t>(GetResult::kDropped))
        return DecodeStatus::kError;
      out->reply.result = static_cast<GetResult>(p[30]);
      break;
    case MsgType::kLoadGossip:
      out->gossip.node = static_cast<NodeId>(GetU32(p));
      out->gossip.epoch = GetU32(p + 4);
      out->gossip.load = GetF64(p + 8);
      break;
    case MsgType::kHello:
      if (p[0] > static_cast<std::uint8_t>(PeerKind::kLoadgen))
        return DecodeStatus::kError;
      out->hello.kind = static_cast<PeerKind>(p[0]);
      out->hello.sender = GetU32(p + 4);
      out->hello.epoch = GetU32(p + 8);
      break;
    case MsgType::kStatsReply: {
      std::uint64_t* fields[13] = {
          &out->stats.requests,        &out->stats.cache_served,
          &out->stats.home_served,     &out->stats.hop_sum,
          &out->stats.failed_attempts, &out->stats.failovers,
          &out->stats.dropped_requests, &out->stats.backoff_slots,
          &out->stats.net_forwards,    &out->stats.gossip_sent,
          &out->stats.shed_forwards,   &out->stats.reconnects,
          &out->stats.outbox_peak_bytes};
      for (int i = 0; i < 13; ++i) *fields[i] = GetU64(p + 8 * i);
      out->stats_hist = WireHistogram{};
      if (stated > kCountersSize) {
        // The v4 histogram section: entry count + sum, then strictly
        // ascending (index, count) pairs — hardened like kQuotaDelta.
        const std::uint8_t* h = p + kCountersSize;
        const std::uint32_t count = GetU32(h);
        if (count > kMaxHistEntries) return DecodeStatus::kError;
        if (kCountersSize + kHistPrologueSize +
                static_cast<std::size_t>(count) * kHistEntrySize != stated)
          return DecodeStatus::kError;
        out->stats_hist.present = true;
        out->stats_hist.sum = GetU64(h + 4);
        out->stats_hist.buckets.clear();
        out->stats_hist.buckets.reserve(count);
        const std::uint8_t* r = h + kHistPrologueSize;
        std::int64_t prev = -1;
        for (std::uint32_t i = 0; i < count; ++i, r += kHistEntrySize) {
          LatencyHistogram::SparseEntry e;
          e.index = GetU32(r);
          e.count = GetU64(r + 4);
          // Indices strictly ascending within the fixed bucket layout;
          // a zero count is a non-canonical encoding.
          if (static_cast<std::int64_t>(e.index) <= prev ||
              e.index >= static_cast<std::uint32_t>(
                             LatencyHistogram::kBucketCount) ||
              e.count == 0)
            return DecodeStatus::kError;
          prev = static_cast<std::int64_t>(e.index);
          out->stats_hist.buckets.push_back(e);
        }
      }
      break;
    }
    case MsgType::kFlightReply: {
      const std::uint32_t count = GetU32(p);
      if (4 + static_cast<std::size_t>(count) * kFlightEventSize != stated)
        return DecodeStatus::kError;
      out->flight.events.clear();
      out->flight.events.reserve(count);
      const std::uint8_t* r = p + 4;
      for (std::uint32_t i = 0; i < count; ++i, r += kFlightEventSize) {
        FlightEvent e;
        e.t_ns = GetU64(r);
        e.detail = GetU64(r + 8);
        e.arg = GetU32(r + 16);
        e.seq = GetU16(r + 20);
        if (r[22] < static_cast<std::uint8_t>(FlightEventKind::kFrameIn) ||
            r[22] > static_cast<std::uint8_t>(FlightEventKind::kShutdown))
          return DecodeStatus::kError;
        e.kind = r[22];
        e.node = r[23];
        out->flight.events.push_back(e);
      }
      break;
    }
    case MsgType::kTraceReply: {
      const std::uint32_t count = GetU32(p);
      if (4 + static_cast<std::size_t>(count) * kTraceEventSize != stated)
        return DecodeStatus::kError;
      out->trace.clear();
      out->trace.reserve(count);
      const std::uint8_t* r = p + 4;
      for (std::uint32_t i = 0; i < count; ++i, r += kTraceEventSize) {
        TraceEvent e;
        e.req_id = GetU64(r);
        e.detail = GetU64(r + 8);
        e.node = static_cast<NodeId>(GetU32(r + 16));
        e.seq = GetU16(r + 20);
        if (r[22] < static_cast<std::uint8_t>(TraceEventKind::kArrival) ||
            r[22] > static_cast<std::uint8_t>(TraceEventKind::kDropped))
          return DecodeStatus::kError;
        e.kind = static_cast<TraceEventKind>(r[22]);
        e.aux = r[23];
        out->trace.push_back(e);
      }
      break;
    }
    case MsgType::kQuotaDelta: {
      out->delta.epoch = GetU32(p);
      const std::uint32_t row_count = GetU32(p + 4);
      if (row_count > kMaxDeltaRows) return DecodeStatus::kError;
      out->delta.total_rate = GetF64(p + 8);
      out->delta.rows.clear();
      out->delta.rows.reserve(row_count);
      const std::uint8_t* r = p + kDeltaPrologueSize;
      std::size_t remaining = stated - kDeltaPrologueSize;
      NodeId prev_node = kNoNode;
      for (std::uint32_t i = 0; i < row_count; ++i) {
        if (remaining < kDeltaRowHeaderSize) return DecodeStatus::kError;
        QuotaDeltaRow row;
        row.node = static_cast<NodeId>(GetU32(r));
        const std::uint32_t cell_count = GetU32(r + 4);
        r += kDeltaRowHeaderSize;
        remaining -= kDeltaRowHeaderSize;
        // Rows strictly ascending by node (kNoNode == -1 precedes all).
        if (i > 0 && row.node <= prev_node) return DecodeStatus::kError;
        if (row.node < 0) return DecodeStatus::kError;
        prev_node = row.node;
        if (cell_count > kMaxDeltaCellsPerRow) return DecodeStatus::kError;
        if (remaining < static_cast<std::size_t>(cell_count) * kDeltaCellSize)
          return DecodeStatus::kError;
        row.cells.reserve(cell_count);
        std::int32_t prev_doc = -1;
        for (std::uint32_t c = 0; c < cell_count; ++c, r += kDeltaCellSize) {
          QuotaDeltaCell cell;
          cell.doc = static_cast<std::int32_t>(GetU32(r));
          // Documents strictly ascending within a row (CellOf's binary
          // search depends on it after splicing).
          if (cell.doc < 0 || cell.doc <= prev_doc)
            return DecodeStatus::kError;
          prev_doc = cell.doc;
          cell.rate = GetF64(r + 4);
          cell.frac = GetF64(r + 12);
          row.cells.push_back(cell);
        }
        remaining -= static_cast<std::size_t>(cell_count) * kDeltaCellSize;
        out->delta.rows.push_back(std::move(row));
      }
      if (remaining != 0) return DecodeStatus::kError;
      break;
    }
    case MsgType::kEpochUpdate: {
      out->epoch_update.epoch = GetU32(p);
      const std::uint32_t down_count = GetU32(p + 4);
      const std::uint32_t reassign_count = GetU32(p + 8);
      if (down_count > kMaxEpochUpdateNodes ||
          reassign_count > kMaxEpochUpdateNodes)
        return DecodeStatus::kError;
      if (stated != kEpochUpdatePrologueSize +
                        static_cast<std::size_t>(down_count) * 4 +
                        static_cast<std::size_t>(reassign_count) * 8)
        return DecodeStatus::kError;
      const std::uint8_t* r = p + kEpochUpdatePrologueSize;
      out->epoch_update.down.clear();
      out->epoch_update.down.reserve(down_count);
      for (std::uint32_t i = 0; i < down_count; ++i, r += 4) {
        const NodeId v = static_cast<NodeId>(GetU32(r));
        if (v < 0 ||
            (i > 0 && v <= out->epoch_update.down.back()))
          return DecodeStatus::kError;
        out->epoch_update.down.push_back(v);
      }
      out->epoch_update.reassign.clear();
      out->epoch_update.reassign.reserve(reassign_count);
      for (std::uint32_t i = 0; i < reassign_count; ++i, r += 8) {
        OwnerDelta d;
        d.node = static_cast<NodeId>(GetU32(r));
        d.owner = GetU32(r + 4);
        if (d.node < 0 ||
            (i > 0 && d.node <= out->epoch_update.reassign.back().node))
          return DecodeStatus::kError;
        out->epoch_update.reassign.push_back(d);
      }
      break;
    }
    case MsgType::kStatsRequest:
    case MsgType::kShutdown:
    case MsgType::kTraceRequest:
    case MsgType::kFlightRequest:
      break;
  }
  *consumed = kHeaderSize + stated;
  return DecodeStatus::kOk;
}

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kGetRequest:
      return "get-request";
    case MsgType::kGetReply:
      return "get-reply";
    case MsgType::kLoadGossip:
      return "load-gossip";
    case MsgType::kHello:
      return "hello";
    case MsgType::kStatsRequest:
      return "stats-request";
    case MsgType::kStatsReply:
      return "stats-reply";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kTraceRequest:
      return "trace-request";
    case MsgType::kTraceReply:
      return "trace-reply";
    case MsgType::kQuotaDelta:
      return "quota-delta";
    case MsgType::kEpochUpdate:
      return "epoch-update";
    case MsgType::kFlightRequest:
      return "flight-request";
    case MsgType::kFlightReply:
      return "flight-reply";
  }
  return "?";
}

}  // namespace webwave
