// MessageCodec — the fixed-width, explicitly little-endian framing of
// the wire/message.h vocabulary.
//
// Every frame is an 8-byte header followed by a payload whose length the
// header states:
//
//   offset  size  field
//   0       2     magic 0x5741 ("WA", little-endian)
//   2       1     protocol version (kVersion; bumped on any layout change)
//   3       1     MsgType
//   4       4     payload length in bytes (u32)
//
// Data-plane payloads are fixed width per type (24 B GetRequest, 32 B
// GetReply, 16 B LoadGossip); a length that disagrees with the type is
// garbage, not a negotiation.  The one variable-length frame is
// kTraceReply — a u32 record count followed by count 24 B TraceEvent
// records, the stated length validated against the count.  All multi-byte fields are little-endian
// byte by byte — the codec's output is identical on any host, and a
// big-endian peer would interoperate unmodified.  Doubles travel as
// their IEEE-754 bit pattern in a u64, so round-trips are bit-exact
// (NaN payloads included), which is what lets the socket deployment be
// validated counter-for-counter against the in-process oracle.
//
// Encode appends one frame to a byte vector and returns its size; Decode
// consumes the first complete frame of a buffer.  Both are pure
// functions — no state, no allocation beyond the caller's vector — so
// the packet simulator can encode/decode every simulated message without
// perturbing its RNG draw sequence (asserted by wire_test's packet-sim
// cross-check).
//
// Decode distinguishes "incomplete" from "wrong": a prefix of a valid
// frame is kNeedMore (stream transports read more bytes), while a bad
// magic, unknown version or type, or a type/length mismatch is kError
// (the connection is byte-garbage and must be dropped).  wire_test
// asserts every strict prefix of every encoded frame is kNeedMore and
// every header corruption is kError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "wire/message.h"

namespace webwave {

// Little-endian primitives (byte-by-byte: host-endianness-independent).
inline void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline void PutF64(std::uint8_t* p, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(p, bits);
}
inline std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline double GetF64(const std::uint8_t* p) {
  const std::uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

class MessageCodec {
 public:
  static constexpr std::uint16_t kMagic = 0x5741;
  // v2: GetRequest grew flags/trace_seq (20 -> 24 B) and the kTraceRequest
  // / kTraceReply control frames were added.
  // v3: Hello grew the sender's quota-table epoch (8 -> 12 B),
  // WireCounters grew shed_forwards/reconnects/outbox_peak_bytes
  // (80 -> 104 B), and the kQuotaDelta / kEpochUpdate epoch-control
  // frames were added.
  // v4: kStatsReply became variable length — the 104 B counters may be
  // followed by an optional latency-histogram section (u32 entry count,
  // u64 sum, then (u32 bucket index, u64 count) pairs, indices strictly
  // ascending, counts non-zero) — and the kFlightRequest / kFlightReply
  // flight-recorder scrape frames were added.
  static constexpr std::uint8_t kVersion = 4;
  static constexpr std::size_t kHeaderSize = 8;

  // Fixed payload widths of the data-plane messages.
  static constexpr std::size_t kGetRequestSize = 24;
  static constexpr std::size_t kGetReplySize = 32;
  static constexpr std::size_t kLoadGossipSize = 16;
  static constexpr std::size_t kHelloSize = 12;
  static constexpr std::size_t kCountersSize = 104;
  // kTraceReply is the one variable-length frame: a u32 record count
  // followed by count fixed-width TraceEvent records.
  static constexpr std::size_t kTraceEventSize = 24;
  static constexpr std::size_t kMaxTraceRecords = 1u << 20;
  // kQuotaDelta framing: a 16 B prologue (epoch, row count, total rate),
  // then per row an 8 B row header (node, cell count) and 20 B cells.
  static constexpr std::size_t kDeltaPrologueSize = 16;
  static constexpr std::size_t kDeltaRowHeaderSize = 8;
  static constexpr std::size_t kDeltaCellSize = 20;
  static constexpr std::size_t kMaxDeltaRows = 1u << 22;
  static constexpr std::size_t kMaxDeltaCellsPerRow = 1u << 20;
  // kEpochUpdate framing: a 16 B prologue (epoch, down count, reassign
  // count, reserved), then down nodes (4 B) and (node, owner) pairs (8 B).
  static constexpr std::size_t kEpochUpdatePrologueSize = 16;
  static constexpr std::size_t kMaxEpochUpdateNodes = 1u << 22;
  // kStatsReply v4 histogram section: a 12 B prologue (u32 sparse entry
  // count, u64 sum of recorded values) then 12 B (u32 index, u64 count)
  // entries.  The cap is comfortably above LatencyHistogram::kBucketCount
  // (976) — a count above it is garbage, not a bigger histogram.
  static constexpr std::size_t kHistPrologueSize = 12;
  static constexpr std::size_t kHistEntrySize = 12;
  static constexpr std::size_t kMaxHistEntries = 1u << 12;
  // kFlightReply: a u32 record count followed by count fixed-width
  // FlightEvent records, like kTraceReply.
  static constexpr std::size_t kFlightEventSize = 24;
  static constexpr std::size_t kMaxFlightRecords = 1u << 20;

  // Appends one frame (header + payload) to *out; returns bytes appended.
  static std::size_t Encode(const GetRequest& m, std::vector<std::uint8_t>* out);
  static std::size_t Encode(const GetReply& m, std::vector<std::uint8_t>* out);
  static std::size_t Encode(const LoadGossip& m, std::vector<std::uint8_t>* out);
  static std::size_t Encode(const Hello& m, std::vector<std::uint8_t>* out);
  static std::size_t Encode(const WireCounters& m,
                            std::vector<std::uint8_t>* out);
  // kStatsReply with the v4 histogram section appended to the counters.
  static std::size_t Encode(const StatsReply& m,
                            std::vector<std::uint8_t>* out);
  // kFlightReply: the daemon's flight-recorder ring.
  static std::size_t Encode(const FlightReply& m,
                            std::vector<std::uint8_t>* out);
  // kTraceReply: the daemon's accumulated TraceEvent records.
  static std::size_t Encode(const std::vector<TraceEvent>& m,
                            std::vector<std::uint8_t>* out);
  // The epoch control frames.
  static std::size_t Encode(const QuotaDelta& m,
                            std::vector<std::uint8_t>* out);
  static std::size_t Encode(const EpochUpdate& m,
                            std::vector<std::uint8_t>* out);
  // The empty-payload control frames.
  static std::size_t EncodeControl(MsgType type,
                                   std::vector<std::uint8_t>* out);

  enum class DecodeStatus {
    kOk,        // *out holds the frame, *consumed its total size
    kNeedMore,  // a valid prefix of a frame; read more bytes
    kError,     // garbage: bad magic/version/type or type-length mismatch
  };

  // Decodes the first complete frame of [data, data+len).
  static DecodeStatus Decode(const std::uint8_t* data, std::size_t len,
                             WireMessage* out, std::size_t* consumed);
};

const char* MsgTypeName(MsgType type);

}  // namespace webwave
