// The router packet filter (§1, "Architecture").
//
// A WebWave cache server inserts a filter into its router so that only
// document-request packets that are *potential cache hits* are extracted
// from their normal path; everything else is forwarded untouched.  The
// paper argues feasibility from Engler & Kaashoek's DPF (a packet filtered
// in 1.51 µs, 1996 hardware).  Our filter is the simulation equivalent: a
// flat per-document serve-fraction table, O(1) per packet, micro-benchmarked
// in bench/micro_benchmarks to show the interception step is cheap.
//
// The serve fraction implements "the node handles [the request] if its
// present request rate is smaller than it should be" (§3): a server whose
// quota covers only part of the passing flow thins probabilistically.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/catalog.h"

namespace webwave {

class PacketFilter {
 public:
  explicit PacketFilter(int doc_count);

  // Installs (or updates) a rule: intercept requests for `d` and serve
  // them with probability `fraction` (clamped to [0,1]).
  void Install(DocId d, double fraction);
  // Removes the rule; packets for `d` pass through untouched.
  void Remove(DocId d);

  // True when a rule exists (the document is a potential hit here).
  bool Matches(DocId d) const {
    return fraction_[static_cast<std::size_t>(d)] > 0;
  }
  double fraction(DocId d) const {
    return fraction_[static_cast<std::size_t>(d)];
  }

  // The data-plane decision: intercept this packet?  `u01` is a uniform
  // [0,1) draw supplied by the caller (keeps the filter deterministic and
  // trivially testable).
  bool Intercept(DocId d, double u01) const {
    return u01 < fraction_[static_cast<std::size_t>(d)];
  }

  int rule_count() const { return rules_; }
  int doc_count() const { return static_cast<int>(fraction_.size()); }

 private:
  std::vector<double> fraction_;
  int rules_ = 0;
};

}  // namespace webwave
