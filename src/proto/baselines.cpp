#include "proto/baselines.h"

#include <algorithm>
#include <numeric>

#include "core/load_model.h"
#include "util/check.h"

namespace webwave {

std::vector<double> NoCachingLoad(const RoutingTree& tree,
                                  const std::vector<double>& spontaneous) {
  WEBWAVE_REQUIRE(
      spontaneous.size() == static_cast<std::size_t>(tree.size()),
      "size mismatch");
  std::vector<double> load(spontaneous.size(), 0.0);
  load[static_cast<std::size_t>(tree.root())] = TotalRate(spontaneous);
  return load;
}

std::vector<double> SelfCachingLoad(const std::vector<double>& spontaneous) {
  return spontaneous;
}

std::vector<double> EnRouteLruLoad(const RoutingTree& tree,
                                   const DemandMatrix& demand,
                                   int capacity_docs) {
  WEBWAVE_REQUIRE(demand.node_count() == tree.size(), "size mismatch");
  WEBWAVE_REQUIRE(capacity_docs >= 0, "capacity must be non-negative");
  const int docs = demand.doc_count();
  std::vector<double> load(static_cast<std::size_t>(tree.size()), 0.0);
  // fwd[d] per node, built bottom-up.
  std::vector<std::vector<double>> fwd(
      static_cast<std::size_t>(tree.size()),
      std::vector<double>(static_cast<std::size_t>(docs), 0.0));
  for (const NodeId v : tree.postorder()) {
    std::vector<double> arrive(static_cast<std::size_t>(docs), 0.0);
    for (DocId d = 0; d < docs; ++d) arrive[static_cast<std::size_t>(d)] = demand.at(v, d);
    for (const NodeId c : tree.children(v))
      for (DocId d = 0; d < docs; ++d)
        arrive[static_cast<std::size_t>(d)] +=
            fwd[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)];

    if (tree.is_root(v)) {
      // Home server: absorbs everything remaining.
      load[static_cast<std::size_t>(v)] = std::accumulate(
          arrive.begin(), arrive.end(), 0.0);
      continue;
    }
    // Steady-state LRU: the `capacity_docs` hottest documents stick.
    std::vector<DocId> order(static_cast<std::size_t>(docs));
    for (DocId d = 0; d < docs; ++d) order[static_cast<std::size_t>(d)] = d;
    std::sort(order.begin(), order.end(), [&](DocId a, DocId b) {
      const double ra = arrive[static_cast<std::size_t>(a)];
      const double rb = arrive[static_cast<std::size_t>(b)];
      if (ra != rb) return ra > rb;
      return a < b;
    });
    double served = 0;
    const int keep = std::min(capacity_docs, docs);
    for (int k = 0; k < keep; ++k) {
      const DocId d = order[static_cast<std::size_t>(k)];
      served += arrive[static_cast<std::size_t>(d)];
      arrive[static_cast<std::size_t>(d)] = 0;
    }
    load[static_cast<std::size_t>(v)] = served;
    fwd[static_cast<std::size_t>(v)] = std::move(arrive);
  }
  return load;
}

std::vector<double> IdealGleLoad(const RoutingTree& tree,
                                 const std::vector<double>& spontaneous) {
  return GleAssignment(tree.size(), TotalRate(spontaneous));
}

double CappedThroughput(const std::vector<double>& loads, double capacity) {
  WEBWAVE_REQUIRE(capacity >= 0, "capacity must be non-negative");
  double sum = 0;
  for (const double l : loads) sum += std::min(l, capacity);
  return sum;
}

double IdleFraction(const std::vector<double>& loads, double capacity) {
  WEBWAVE_REQUIRE(capacity > 0, "capacity must be positive");
  const double total_capacity = capacity * static_cast<double>(loads.size());
  return 1.0 - CappedThroughput(loads, capacity) / total_capacity;
}

}  // namespace webwave
