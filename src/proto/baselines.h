// Rate-level baseline policies for the scalability comparison (E8).
//
// The paper motivates WebWave against the contemporary alternatives:
// serving everything from the home server, demand-driven hierarchical
// caching (Harvest/Blaze/Dahlin-style: nodes greedily cache what passes
// by, with no load awareness), and idealized global load equality (which
// caching cannot implement without violating NSS).  These functions
// compute each policy's steady-state served-load vector so benches can
// compare max load, balance and capacity-bounded throughput across system
// sizes.
#pragma once

#include <vector>

#include "doc/catalog.h"
#include "tree/routing_tree.h"

namespace webwave {

// No caching: every request is served by the home server.
std::vector<double> NoCachingLoad(const RoutingTree& tree,
                                  const std::vector<double>& spontaneous);

// Demand-driven client caching in steady state: after warm-up every node
// holds what its own clients keep asking for, so each node serves exactly
// its spontaneous demand.
std::vector<double> SelfCachingLoad(const std::vector<double>& spontaneous);

// En-route LRU with a capacity of `capacity_docs` copies per node: in
// steady state a node retains the documents with the highest arrival rate
// at it, serves all of their passing flow, and forwards the rest up.
// Computed bottom-up (leaves first), which mirrors how hits at lower
// levels strip flow from higher levels.  The home server absorbs the rest.
std::vector<double> EnRouteLruLoad(const RoutingTree& tree,
                                   const DemandMatrix& demand,
                                   int capacity_docs);

// Idealized GLE: uniform split, ignoring NSS (not implementable by
// on-path caching; shown as the unreachable upper bound).
std::vector<double> IdealGleLoad(const RoutingTree& tree,
                                 const std::vector<double>& spontaneous);

// Aggregate throughput when every server can serve at most `capacity`
// requests/sec: Σ min(L_v, capacity).
double CappedThroughput(const std::vector<double>& loads, double capacity);

// Fraction of total server capacity left idle by this load distribution.
double IdleFraction(const std::vector<double>& loads, double capacity);

}  // namespace webwave
