// Per-node cache-server state for the packet-level simulation.
//
// A cache server sits next to its router, owns the router's packet filter,
// and keeps the measurements WebWave needs — all of them local:
//   * EWMA arrival rate per document (everything the filter sees),
//   * EWMA arrival rate per (child, document) — the observed A_j^d,
//   * EWMA served rate (its load L_i),
//   * gossiped neighbor load estimates L_ij.
// Control-plane decisions (delegate/relinquish/tunnel) are made by the
// simulation's diffusion tick using these estimates.
#pragma once

#include <unordered_map>
#include <vector>

#include "doc/catalog.h"
#include "proto/packet_filter.h"
#include "tree/routing_tree.h"

namespace webwave {

class CacheServer {
 public:
  CacheServer(NodeId id, int doc_count, bool is_home);

  NodeId id() const { return id_; }
  bool is_home() const { return is_home_; }

  // --- data plane -------------------------------------------------------
  // Records an arriving request for d (from_child = kNoNode when the
  // request originated locally) and decides whether to serve it.
  bool AcceptRequest(DocId d, NodeId from_child, double u01);

  bool IsCached(DocId d) const {
    return cached_[static_cast<std::size_t>(d)] != 0;
  }
  const PacketFilter& filter() const { return filter_; }

  // --- cache management -------------------------------------------------
  void StoreCopy(DocId d);
  void DropCopy(DocId d);
  double quota(DocId d) const { return quota_[static_cast<std::size_t>(d)]; }
  void SetQuota(DocId d, double rate);
  void AddQuota(DocId d, double rate);
  int copy_count() const;

  // --- measurement ------------------------------------------------------
  // Folds the window counters into EWMA rates; window_seconds > 0.
  void RollWindow(double window_seconds, double ewma_alpha);

  double arrival_rate(DocId d) const;
  double child_arrival_rate(NodeId child, DocId d) const;
  double load() const { return load_rate_; }
  double served_rate(DocId d) const;

  // --- gossip -----------------------------------------------------------
  void RecordNeighborLoad(NodeId neighbor, double load);
  double NeighborLoad(NodeId neighbor) const;  // 0 when never heard from

  // Re-derives every filter fraction from quota / arrival EWMA.
  void RefreshFilter();

 private:
  NodeId id_;
  bool is_home_;
  PacketFilter filter_;
  std::vector<std::uint8_t> cached_;
  std::vector<double> quota_;

  // Current-window counters.
  std::vector<double> window_arrivals_;
  std::vector<double> window_served_;
  std::unordered_map<NodeId, std::vector<double>> window_child_arrivals_;

  // EWMA rates.
  std::vector<double> arrival_rate_;
  std::vector<double> served_rate_;
  std::unordered_map<NodeId, std::vector<double>> child_arrival_rate_;
  double load_rate_ = 0;

  std::unordered_map<NodeId, double> neighbor_load_;
};

}  // namespace webwave
