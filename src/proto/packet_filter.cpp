#include "proto/packet_filter.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

PacketFilter::PacketFilter(int doc_count)
    : fraction_(static_cast<std::size_t>(doc_count), 0.0) {
  WEBWAVE_REQUIRE(doc_count >= 1, "filter needs a document universe");
}

void PacketFilter::Install(DocId d, double fraction) {
  WEBWAVE_REQUIRE(d >= 0 && d < doc_count(), "doc id out of range");
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  double& slot = fraction_[static_cast<std::size_t>(d)];
  if (slot == 0 && clamped > 0) ++rules_;
  if (slot > 0 && clamped == 0) --rules_;
  slot = clamped;
}

void PacketFilter::Remove(DocId d) { Install(d, 0.0); }

}  // namespace webwave
