// Packet-level WebWave: the protocol running on the discrete-event
// simulator with real messages, latencies and measured (EWMA) rates.
//
// This validates what §5.1 assumes away: gossip takes time, load estimates
// are stale, rates are measured from discrete arrivals, and load can only
// be shifted in document-sized quota grants.  It also hosts the protocol
// baselines the paper argues against:
//   * kNoCaching   — every request travels to the home server.
//   * kEnRouteLru  — demand-driven hierarchical caching: every node caches
//                    the documents of responses passing through it (LRU,
//                    finite capacity), serves anything it holds, no load
//                    awareness.
//   * kIcpLike     — on a local miss, the origin first queries its tree
//                    neighbors (one round trip) and fetches from a nearby
//                    copy if any — the discovery-protocol cost the paper
//                    rejects, measured in messages and latency.
//   * kWebWave     — filters + gossip + diffusion quota exchange +
//                    tunneling; no discovery traffic at all.
//
// Every request forward, response and gossip sample travels as a
// wire/message.h struct through the wire/codec.h round-trip (encode,
// decode, assert identity) — the simulator and the socket daemons in
// src/netd/ speak literally the same protocol vocabulary.  The codec is
// pure, so the rewiring leaves the draw sequence untouched
// (proto_golden_test pins the counters of all four policies).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "doc/catalog.h"
#include "net/simulator.h"
#include "proto/cache_server.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "wire/message.h"

namespace webwave {

enum class CachePolicy { kNoCaching, kEnRouteLru, kIcpLike, kWebWave };

const char* PolicyName(CachePolicy policy);

// A window of link-plane degradation on the gossip channel (the fault
// plane's packet-level face; FaultSchedule::LinkAt emits these per
// epoch).  Within [start, end) gossip messages are lost with probability
// `loss` *instead of* the base gossip_loss, and survivors are delayed by
// extra_latency on top of link_latency.  A single burst spanning the
// whole run at loss p with no extra latency is draw-for-draw identical
// to setting gossip_loss = p (asserted by fault_test) — the burst
// machinery extends the static knob, it does not fork the RNG stream.
struct GossipBurst {
  SimTime start = 0;
  SimTime end = 0;  // exclusive
  double loss = 0.0;
  SimTime extra_latency = 0;
};

struct PacketSimOptions {
  CachePolicy policy = CachePolicy::kWebWave;
  SimTime link_latency = 5 * kMicrosPerMilli;
  SimTime gossip_period = 100 * kMicrosPerMilli;
  SimTime diffusion_period = 200 * kMicrosPerMilli;
  SimTime duration = 60 * kMicrosPerSecond;
  SimTime warmup = 5 * kMicrosPerSecond;   // excluded from averages
  int lru_capacity = 4;                    // copies per node, LRU policies
  double ewma_alpha = 0.3;
  int barrier_patience = 2;
  bool enable_tunneling = true;
  // Failure injection: each gossip message is lost independently with
  // this probability (the estimate simply stays stale).
  double gossip_loss = 0.0;
  // Scheduled degradation windows overriding gossip_loss while active
  // (first matching burst wins; empty = the static knob everywhere).
  std::vector<GossipBurst> gossip_bursts;
  // Payload sizes for the network-traffic accounting (§7): a request
  // packet and a document transfer, in KB per link traversal.
  double request_kb = 0.5;
  double doc_size_kb = 8.0;
  std::uint64_t seed = 1;
};

struct PacketSimReport {
  // Served requests/sec per node, measured after warmup.
  std::vector<double> measured_loads;
  // Mean number of hops a request travelled before being served.
  double mean_hit_depth = 0;
  // Mean request->response latency in milliseconds.
  double mean_response_ms = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t served_requests = 0;
  // Control-plane traffic: gossip + quota/replication + discovery queries.
  std::uint64_t control_messages = 0;
  std::uint64_t doc_transfers = 0;
  std::uint64_t tunnel_events = 0;
  // Euclidean distance from the per-window load vector to `target_loads`
  // (one sample per diffusion period; empty when no target given).
  std::vector<double> distance_trajectory;
  double control_messages_per_request = 0;
  // Network traffic: link traversals of request packets and responses,
  // and total bytes moved (requests up + document payloads down +
  // replication transfers), per §7's traffic question.
  std::uint64_t link_traversals = 0;
  double network_kb = 0;
  double network_kb_per_request = 0;
  // Per-edge data traffic in KB, indexed by the edge's child node (the
  // root's slot stays 0).  Sums to network_kb minus gossip (gossip is
  // control-plane and not byte-accounted).
  std::vector<double> edge_traffic_kb;
  // Cache copies per document at the end of the run (WebWave policy; for
  // LRU policies this reflects the LRU contents, home always included).
  std::vector<int> copies_per_doc;
  // Wire frames encoded/decoded by the message layer during the run
  // (request forwards + responses + gossip samples + injected frames).
  std::uint64_t wire_frames = 0;
};

// The packet-level simulation as an object: construct, optionally install
// a step hook, then either Run() to completion or drive it in slices with
// RunUntil() and read counters with Report().  `demand` gives per-(node,
// doc) Poisson request rates (requests/sec); `target_loads` (optional)
// is the TLB assignment used for the distance trajectory.  The tree and
// demand references must outlive the object (a temporary
// `PacketSim(t, d, opt).Run()` is fine — they live for the full
// expression).
//
// Throws std::invalid_argument on mismatched demand/tree sizes or
// duration <= warmup.
class PacketSim {
 public:
  PacketSim(const RoutingTree& tree, const DemandMatrix& demand,
            const PacketSimOptions& options,
            std::vector<double> target_loads = {});

  // Whole-run convenience: RunUntil(options.duration) + Report().
  PacketSimReport Run();

  // Step interface ---------------------------------------------------------
  // Advances the event loop to simulated time t (monotone across calls;
  // the workload/control chains are scheduled on first use).
  void RunUntil(SimTime t);
  SimTime now() const { return sim_.now(); }
  // Counters so far.  Load rates are scaled by the configured measurement
  // window (duration - warmup), so mid-run snapshots under-report rates.
  PacketSimReport Report() const;

  // Installs a hook invoked every options.diffusion_period (any policy),
  // before that tick's control-plane work — the seam where tab_netd
  // interleaves wire-message injection without copying the driver loop.
  // Install before the first Run/RunUntil call.
  void set_step_hook(std::function<void(PacketSim&)> hook) {
    step_hook_ = std::move(hook);
  }

  // Wire-message injection -------------------------------------------------
  // Feeds one encoded frame into the simulation at the current time.
  // kGetRequest starts a request walk at the message's origin_node;
  // kLoadGossip delivers the sample to the node's tree neighbors after
  // one link latency.  Returns false (and injects nothing) for malformed
  // frames or other message types.  Injection consumes RNG draws like any
  // organic request, so injected runs are not draw-comparable to
  // uninjected ones — by design: injection *is* extra traffic.
  bool InjectFrame(const std::uint8_t* data, std::size_t len);
  void InjectRequest(const GetRequest& m);
  void InjectGossip(const LoadGossip& m);

 private:
  // LRU bookkeeping for the demand-driven baselines.
  class LruCache {
   public:
    explicit LruCache(int capacity) : capacity_(capacity) {}

    bool Contains(DocId d) const { return index_.count(d) > 0; }

    void Touch(DocId d) {
      const auto it = index_.find(d);
      if (it == index_.end()) return;
      order_.splice(order_.begin(), order_, it->second);
    }

    // Inserts d; returns the evicted document, or -1.
    DocId Insert(DocId d);

   private:
    int capacity_;
    std::list<DocId> order_;
    std::unordered_map<DocId, std::list<DocId>::iterator> index_;
  };

  void Start();

  // Workload.
  void ScheduleClientArrivals();
  void ScheduleNextArrival(NodeId v, double rate);
  DocId SampleDoc(NodeId v);

  // Data plane (req_id threads the wire identity through the walk).
  void StartRequest(NodeId origin, DocId d);
  void ForwardRequest(std::uint64_t req_id, NodeId origin, DocId d,
                      NodeId node, NodeId from_child, int hops);
  bool DecideServe(NodeId node, DocId d, NodeId from_child);
  void CompleteRequest(std::uint64_t req_id, NodeId origin, DocId d,
                       NodeId server, int hops);
  void RecordServed(NodeId server, NodeId origin, int hops, SimTime rtt);
  void StartIcpRequest(std::uint64_t req_id, NodeId origin, DocId d);

  // Control plane (WebWave only).
  void ScheduleGossip();
  void GossipTick();
  void ScheduleDiffusion();
  void DiffusionTick();
  void ScheduleStepHook();
  double DelegateDown(NodeId p, NodeId c, double amount);
  double RelinquishUp(NodeId p, NodeId c, double amount);
  bool Tunnel(NodeId k);

  // Wire round-trips: encode, decode, assert identity, return the decoded
  // copy the continuation acts on.
  GetRequest RoundTrip(const GetRequest& m);
  GetReply RoundTrip(const GetReply& m);
  LoadGossip RoundTrip(const LoadGossip& m);

  const RoutingTree& tree_;
  const DemandMatrix& demand_;
  PacketSimOptions options_;
  std::vector<double> target_;
  Rng rng_;
  int docs_;

  Simulator sim_;
  std::vector<CacheServer> servers_;
  std::vector<LruCache> lru_;
  std::unordered_map<NodeId, int> tunnel_stalls_;
  std::function<void(PacketSim&)> step_hook_;
  bool started_ = false;

  std::vector<std::uint8_t> wire_buf_;
  std::uint64_t wire_frames_ = 0;
  std::uint32_t gossip_epoch_ = 0;
  std::uint32_t quota_version_ = 0;  // diffusion ticks completed

  std::vector<std::uint64_t> post_warmup_served_;
  std::vector<double> distance_trajectory_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t served_requests_ = 0;
  std::uint64_t control_messages_ = 0;
  std::uint64_t doc_transfers_ = 0;
  std::uint64_t tunnel_events_ = 0;
  std::uint64_t post_warmup_count_ = 0;
  std::uint64_t link_traversals_ = 0;
  double network_kb_ = 0;
  std::vector<double> edge_kb_;
  double hit_depth_sum_ = 0;
  double response_us_sum_ = 0;
};

}  // namespace webwave
