// Packet-level WebWave: the protocol running on the discrete-event
// simulator with real messages, latencies and measured (EWMA) rates.
//
// This validates what §5.1 assumes away: gossip takes time, load estimates
// are stale, rates are measured from discrete arrivals, and load can only
// be shifted in document-sized quota grants.  It also hosts the protocol
// baselines the paper argues against:
//   * kNoCaching   — every request travels to the home server.
//   * kEnRouteLru  — demand-driven hierarchical caching: every node caches
//                    the documents of responses passing through it (LRU,
//                    finite capacity), serves anything it holds, no load
//                    awareness.
//   * kIcpLike     — on a local miss, the origin first queries its tree
//                    neighbors (one round trip) and fetches from a nearby
//                    copy if any — the discovery-protocol cost the paper
//                    rejects, measured in messages and latency.
//   * kWebWave     — filters + gossip + diffusion quota exchange +
//                    tunneling; no discovery traffic at all.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/catalog.h"
#include "net/simulator.h"
#include "tree/routing_tree.h"

namespace webwave {

enum class CachePolicy { kNoCaching, kEnRouteLru, kIcpLike, kWebWave };

const char* PolicyName(CachePolicy policy);

// A window of link-plane degradation on the gossip channel (the fault
// plane's packet-level face; FaultSchedule::LinkAt emits these per
// epoch).  Within [start, end) gossip messages are lost with probability
// `loss` *instead of* the base gossip_loss, and survivors are delayed by
// extra_latency on top of link_latency.  A single burst spanning the
// whole run at loss p with no extra latency is draw-for-draw identical
// to setting gossip_loss = p (asserted by fault_test) — the burst
// machinery extends the static knob, it does not fork the RNG stream.
struct GossipBurst {
  SimTime start = 0;
  SimTime end = 0;  // exclusive
  double loss = 0.0;
  SimTime extra_latency = 0;
};

struct PacketSimOptions {
  CachePolicy policy = CachePolicy::kWebWave;
  SimTime link_latency = 5 * kMicrosPerMilli;
  SimTime gossip_period = 100 * kMicrosPerMilli;
  SimTime diffusion_period = 200 * kMicrosPerMilli;
  SimTime duration = 60 * kMicrosPerSecond;
  SimTime warmup = 5 * kMicrosPerSecond;   // excluded from averages
  int lru_capacity = 4;                    // copies per node, LRU policies
  double ewma_alpha = 0.3;
  int barrier_patience = 2;
  bool enable_tunneling = true;
  // Failure injection: each gossip message is lost independently with
  // this probability (the estimate simply stays stale).
  double gossip_loss = 0.0;
  // Scheduled degradation windows overriding gossip_loss while active
  // (first matching burst wins; empty = the static knob everywhere).
  std::vector<GossipBurst> gossip_bursts;
  // Payload sizes for the network-traffic accounting (§7): a request
  // packet and a document transfer, in KB per link traversal.
  double request_kb = 0.5;
  double doc_size_kb = 8.0;
  std::uint64_t seed = 1;
};

struct PacketSimReport {
  // Served requests/sec per node, measured after warmup.
  std::vector<double> measured_loads;
  // Mean number of hops a request travelled before being served.
  double mean_hit_depth = 0;
  // Mean request->response latency in milliseconds.
  double mean_response_ms = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t served_requests = 0;
  // Control-plane traffic: gossip + quota/replication + discovery queries.
  std::uint64_t control_messages = 0;
  std::uint64_t doc_transfers = 0;
  std::uint64_t tunnel_events = 0;
  // Euclidean distance from the per-window load vector to `target_loads`
  // (one sample per diffusion period; empty when no target given).
  std::vector<double> distance_trajectory;
  double control_messages_per_request = 0;
  // Network traffic: link traversals of request packets and responses,
  // and total bytes moved (requests up + document payloads down +
  // replication transfers), per §7's traffic question.
  std::uint64_t link_traversals = 0;
  double network_kb = 0;
  double network_kb_per_request = 0;
  // Per-edge data traffic in KB, indexed by the edge's child node (the
  // root's slot stays 0).  Sums to network_kb minus gossip (gossip is
  // control-plane and not byte-accounted).
  std::vector<double> edge_traffic_kb;
  // Cache copies per document at the end of the run (WebWave policy; for
  // LRU policies this reflects the LRU contents, home always included).
  std::vector<int> copies_per_doc;
};

// Runs the simulation.  `demand` gives per-(node, doc) Poisson request
// rates (requests/sec); `target_loads` (optional, empty to skip) is the
// TLB assignment used for the distance trajectory.
PacketSimReport RunPacketSimulation(const RoutingTree& tree,
                                    const DemandMatrix& demand,
                                    const PacketSimOptions& options,
                                    const std::vector<double>& target_loads = {});

}  // namespace webwave
