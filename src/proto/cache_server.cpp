#include "proto/cache_server.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

CacheServer::CacheServer(NodeId id, int doc_count, bool is_home)
    : id_(id),
      is_home_(is_home),
      filter_(doc_count),
      cached_(static_cast<std::size_t>(doc_count), 0),
      quota_(static_cast<std::size_t>(doc_count), 0.0),
      window_arrivals_(static_cast<std::size_t>(doc_count), 0.0),
      window_served_(static_cast<std::size_t>(doc_count), 0.0),
      arrival_rate_(static_cast<std::size_t>(doc_count), 0.0),
      served_rate_(static_cast<std::size_t>(doc_count), 0.0) {
  if (is_home_) {
    // The home server holds authoritative copies and absorbs everything
    // that reaches it: full-intercept filter rules.
    for (DocId d = 0; d < doc_count; ++d) {
      cached_[static_cast<std::size_t>(d)] = 1;
      filter_.Install(d, 1.0);
    }
  }
}

bool CacheServer::AcceptRequest(DocId d, NodeId from_child, double u01) {
  window_arrivals_[static_cast<std::size_t>(d)] += 1;
  if (from_child != kNoNode) {
    auto [it, inserted] = window_child_arrivals_.try_emplace(
        from_child, std::vector<double>(cached_.size(), 0.0));
    it->second[static_cast<std::size_t>(d)] += 1;
  }
  const bool serve =
      cached_[static_cast<std::size_t>(d)] != 0 &&
      (is_home_ || filter_.Intercept(d, u01));
  if (serve) window_served_[static_cast<std::size_t>(d)] += 1;
  return serve;
}

void CacheServer::StoreCopy(DocId d) {
  cached_[static_cast<std::size_t>(d)] = 1;
}

void CacheServer::DropCopy(DocId d) {
  WEBWAVE_REQUIRE(!is_home_, "the home server never drops its copies");
  cached_[static_cast<std::size_t>(d)] = 0;
  quota_[static_cast<std::size_t>(d)] = 0;
  filter_.Remove(d);
}

void CacheServer::SetQuota(DocId d, double rate) {
  WEBWAVE_REQUIRE(rate >= 0, "quota must be non-negative");
  quota_[static_cast<std::size_t>(d)] = rate;
}

void CacheServer::AddQuota(DocId d, double rate) {
  quota_[static_cast<std::size_t>(d)] =
      std::max(0.0, quota_[static_cast<std::size_t>(d)] + rate);
}

int CacheServer::copy_count() const {
  int count = 0;
  for (const auto c : cached_) count += c != 0;
  return count;
}

void CacheServer::RollWindow(double window_seconds, double ewma_alpha) {
  WEBWAVE_REQUIRE(window_seconds > 0, "window must be positive");
  WEBWAVE_REQUIRE(ewma_alpha > 0 && ewma_alpha <= 1, "ewma alpha in (0,1]");
  double total_served = 0;
  for (std::size_t d = 0; d < cached_.size(); ++d) {
    const double arr = window_arrivals_[d] / window_seconds;
    const double srv = window_served_[d] / window_seconds;
    arrival_rate_[d] += ewma_alpha * (arr - arrival_rate_[d]);
    served_rate_[d] += ewma_alpha * (srv - served_rate_[d]);
    total_served += served_rate_[d];
    window_arrivals_[d] = 0;
    window_served_[d] = 0;
  }
  load_rate_ = total_served;
  for (auto& [child, counters] : window_child_arrivals_) {
    auto [it, inserted] = child_arrival_rate_.try_emplace(
        child, std::vector<double>(cached_.size(), 0.0));
    for (std::size_t d = 0; d < counters.size(); ++d) {
      const double rate = counters[d] / window_seconds;
      it->second[d] += ewma_alpha * (rate - it->second[d]);
      counters[d] = 0;
    }
  }
}

double CacheServer::arrival_rate(DocId d) const {
  return arrival_rate_[static_cast<std::size_t>(d)];
}

double CacheServer::child_arrival_rate(NodeId child, DocId d) const {
  const auto it = child_arrival_rate_.find(child);
  if (it == child_arrival_rate_.end()) return 0;
  return it->second[static_cast<std::size_t>(d)];
}

double CacheServer::served_rate(DocId d) const {
  return served_rate_[static_cast<std::size_t>(d)];
}

void CacheServer::RecordNeighborLoad(NodeId neighbor, double load) {
  neighbor_load_[neighbor] = load;
}

double CacheServer::NeighborLoad(NodeId neighbor) const {
  const auto it = neighbor_load_.find(neighbor);
  return it == neighbor_load_.end() ? 0.0 : it->second;
}

void CacheServer::RefreshFilter() {
  if (is_home_) return;  // home always intercepts everything
  for (DocId d = 0; d < static_cast<DocId>(cached_.size()); ++d) {
    if (cached_[static_cast<std::size_t>(d)] == 0) {
      filter_.Remove(d);
      continue;
    }
    const double arr = arrival_rate_[static_cast<std::size_t>(d)];
    const double q = quota_[static_cast<std::size_t>(d)];
    // Serve the fraction of the passing flow the quota covers; with no
    // measured flow yet, optimistically intercept everything (the EWMA
    // will correct within a window).
    filter_.Install(d, arr <= 1e-12 ? 1.0 : std::min(1.0, q / arr));
  }
}

}  // namespace webwave
