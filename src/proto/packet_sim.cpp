#include "proto/packet_sim.h"

#include <algorithm>

#include "stats/summary.h"
#include "util/check.h"
#include "wire/codec.h"

namespace webwave {

const char* PolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNoCaching:
      return "no-caching";
    case CachePolicy::kEnRouteLru:
      return "en-route-lru";
    case CachePolicy::kIcpLike:
      return "icp-like";
    case CachePolicy::kWebWave:
      return "webwave";
  }
  return "?";
}

DocId PacketSim::LruCache::Insert(DocId d) {
  if (Contains(d)) {
    Touch(d);
    return -1;
  }
  DocId evicted = -1;
  if (capacity_ > 0 && static_cast<int>(order_.size()) >= capacity_) {
    evicted = order_.back();
    index_.erase(evicted);
    order_.pop_back();
  }
  if (capacity_ > 0) {
    order_.push_front(d);
    index_[d] = order_.begin();
  }
  return evicted;
}

PacketSim::PacketSim(const RoutingTree& tree, const DemandMatrix& demand,
                     const PacketSimOptions& options,
                     std::vector<double> target_loads)
    : tree_(tree),
      demand_(demand),
      options_(options),
      target_(std::move(target_loads)),
      rng_(options.seed),
      docs_(demand.doc_count()) {
  WEBWAVE_REQUIRE(demand.node_count() == tree.size(),
                  "demand matrix does not match tree");
  WEBWAVE_REQUIRE(options.duration > options.warmup,
                  "duration must exceed warmup");
  servers_.reserve(static_cast<std::size_t>(tree.size()));
  for (NodeId v = 0; v < tree_.size(); ++v) {
    servers_.emplace_back(v, docs_, tree_.is_root(v));
    lru_.emplace_back(options_.lru_capacity);
  }
  post_warmup_served_.assign(static_cast<std::size_t>(tree_.size()), 0);
  edge_kb_.assign(static_cast<std::size_t>(tree_.size()), 0.0);
}

void PacketSim::Start() {
  if (started_) return;
  started_ = true;
  ScheduleClientArrivals();
  ScheduleGossip();
  ScheduleDiffusion();
  ScheduleStepHook();
}

PacketSimReport PacketSim::Run() {
  RunUntil(options_.duration);
  return Report();
}

void PacketSim::RunUntil(SimTime t) {
  Start();
  sim_.RunUntil(t);
}

// --- wire round-trips ------------------------------------------------------
// Each simulated message is encoded and decoded through the shared codec;
// the continuation acts on the decoded copy.  The codec is pure, so the
// RNG draw sequence is exactly what it was before the rewiring.

GetRequest PacketSim::RoundTrip(const GetRequest& m) {
  wire_buf_.clear();
  MessageCodec::Encode(m, &wire_buf_);
  WireMessage out;
  std::size_t consumed = 0;
  const auto st =
      MessageCodec::Decode(wire_buf_.data(), wire_buf_.size(), &out, &consumed);
  WEBWAVE_ASSERT(st == MessageCodec::DecodeStatus::kOk &&
                     consumed == wire_buf_.size() && out.get == m,
                 "GetRequest wire round-trip");
  ++wire_frames_;
  return out.get;
}

GetReply PacketSim::RoundTrip(const GetReply& m) {
  wire_buf_.clear();
  MessageCodec::Encode(m, &wire_buf_);
  WireMessage out;
  std::size_t consumed = 0;
  const auto st =
      MessageCodec::Decode(wire_buf_.data(), wire_buf_.size(), &out, &consumed);
  WEBWAVE_ASSERT(st == MessageCodec::DecodeStatus::kOk &&
                     consumed == wire_buf_.size() && out.reply == m,
                 "GetReply wire round-trip");
  ++wire_frames_;
  return out.reply;
}

LoadGossip PacketSim::RoundTrip(const LoadGossip& m) {
  wire_buf_.clear();
  MessageCodec::Encode(m, &wire_buf_);
  WireMessage out;
  std::size_t consumed = 0;
  const auto st =
      MessageCodec::Decode(wire_buf_.data(), wire_buf_.size(), &out, &consumed);
  WEBWAVE_ASSERT(st == MessageCodec::DecodeStatus::kOk &&
                     consumed == wire_buf_.size() && out.gossip == m,
                 "LoadGossip wire round-trip");
  ++wire_frames_;
  return out.gossip;
}

// --- injection -------------------------------------------------------------

bool PacketSim::InjectFrame(const std::uint8_t* data, std::size_t len) {
  WireMessage out;
  std::size_t consumed = 0;
  if (MessageCodec::Decode(data, len, &out, &consumed) !=
          MessageCodec::DecodeStatus::kOk ||
      consumed != len)
    return false;
  switch (out.type) {
    case MsgType::kGetRequest:
      InjectRequest(out.get);
      return true;
    case MsgType::kLoadGossip:
      InjectGossip(out.gossip);
      return true;
    default:
      return false;
  }
}

void PacketSim::InjectRequest(const GetRequest& m) {
  WEBWAVE_REQUIRE(m.origin_node >= 0 && m.origin_node < tree_.size(),
                  "injected request at unknown node");
  WEBWAVE_REQUIRE(m.doc >= 0 && m.doc < docs_, "injected request for unknown doc");
  ++total_requests_;
  ++wire_frames_;
  ForwardRequest(m.req_id, m.origin_node, m.doc, m.origin_node, kNoNode,
                 m.ttl_hops);
}

void PacketSim::InjectGossip(const LoadGossip& m) {
  WEBWAVE_REQUIRE(m.node >= 0 && m.node < tree_.size(),
                  "injected gossip from unknown node");
  ++wire_frames_;
  std::vector<NodeId> neighbors = tree_.children(m.node);
  if (!tree_.is_root(m.node)) neighbors.push_back(tree_.parent(m.node));
  for (const NodeId nb : neighbors) {
    ++control_messages_;
    ++link_traversals_;
    sim_.ScheduleIn(options_.link_latency, [this, nb, g = m] {
      servers_[static_cast<std::size_t>(nb)].RecordNeighborLoad(g.node, g.load);
    });
  }
}

// --- workload --------------------------------------------------------------

void PacketSim::ScheduleClientArrivals() {
  for (NodeId v = 0; v < tree_.size(); ++v) {
    const double rate = demand_.NodeTotal(v);
    if (rate <= 0) continue;
    ScheduleNextArrival(v, rate);
  }
}

void PacketSim::ScheduleNextArrival(NodeId v, double rate) {
  const SimTime gap =
      static_cast<SimTime>(rng_.NextExponential(rate) * kMicrosPerSecond);
  sim_.ScheduleIn(std::max<SimTime>(gap, 1), [this, v, rate] {
    const DocId d = SampleDoc(v);
    StartRequest(v, d);
    ScheduleNextArrival(v, rate);
  });
}

DocId PacketSim::SampleDoc(NodeId v) {
  const double total = demand_.NodeTotal(v);
  double u = rng_.NextDouble() * total;
  for (DocId d = 0; d < docs_; ++d) {
    u -= demand_.at(v, d);
    if (u <= 0) return d;
  }
  return docs_ - 1;
}

// --- data plane ------------------------------------------------------------

void PacketSim::StartRequest(NodeId origin, DocId d) {
  ++total_requests_;
  const std::uint64_t req_id = total_requests_;
  if (options_.policy == CachePolicy::kIcpLike) {
    StartIcpRequest(req_id, origin, d);
    return;
  }
  ForwardRequest(req_id, origin, d, origin, kNoNode, /*hops=*/0);
}

// A request for d, at `node`, arrived from `from_child` (kNoNode when it
// originated here).  Serve or pass to the parent after one link delay;
// the forward travels as an encoded GetRequest whose origin_node is the
// resume point — exactly what a netd daemon puts on its parent's socket.
void PacketSim::ForwardRequest(std::uint64_t req_id, NodeId origin, DocId d,
                               NodeId node, NodeId from_child, int hops) {
  const bool serve = DecideServe(node, d, from_child);
  if (serve) {
    CompleteRequest(req_id, origin, d, node, hops);
    return;
  }
  WEBWAVE_ASSERT(!tree_.is_root(node), "home server must always serve");
  edge_kb_[static_cast<std::size_t>(node)] += options_.request_kb;
  GetRequest fwd;
  fwd.req_id = req_id;
  fwd.doc = d;
  fwd.origin_node = node;
  fwd.ttl_hops = static_cast<std::uint16_t>(hops + 1);
  sim_.ScheduleIn(options_.link_latency, [this, origin, g = RoundTrip(fwd)] {
    ForwardRequest(g.req_id, origin, g.doc, tree_.parent(g.origin_node),
                   g.origin_node, g.ttl_hops);
  });
}

bool PacketSim::DecideServe(NodeId node, DocId d, NodeId from_child) {
  CacheServer& server = servers_[static_cast<std::size_t>(node)];
  switch (options_.policy) {
    case CachePolicy::kNoCaching:
      // Only the home intercepts; still record arrivals for metrics.
      return server.AcceptRequest(d, from_child, 1.0) && server.is_home();
    case CachePolicy::kEnRouteLru:
    case CachePolicy::kIcpLike: {
      // Serve anything held; LRU recency on hit.
      const bool cached = server.is_home() ||
                          lru_[static_cast<std::size_t>(node)].Contains(d);
      server.AcceptRequest(d, from_child, cached ? 0.0 : 1.0);
      if (cached && !server.is_home())
        lru_[static_cast<std::size_t>(node)].Touch(d);
      return cached;
    }
    case CachePolicy::kWebWave:
      return server.AcceptRequest(d, from_child, rng_.NextDouble());
  }
  return false;
}

void PacketSim::CompleteRequest(std::uint64_t req_id, NodeId origin, DocId d,
                                NodeId server, int hops) {
  // Response travels back down the same path, as an encoded GetReply
  // piggybacking the server's measured load and quota epoch.
  GetReply reply;
  reply.req_id = req_id;
  reply.doc = d;
  reply.serving_node = server;
  reply.result = GetResult::kServed;
  reply.hops = static_cast<std::uint16_t>(hops);
  reply.load = servers_[static_cast<std::size_t>(server)].load();
  reply.version = quota_version_;
  const SimTime rtt = 2 * hops * options_.link_latency;
  sim_.ScheduleIn(rtt / 2 == 0 ? 0 : rtt / 2,
                  [this, origin, r = RoundTrip(reply)] {
    RecordServed(r.serving_node, origin, r.hops, 2 * r.hops *
                                                    options_.link_latency);
    if (options_.policy == CachePolicy::kEnRouteLru && r.hops > 0) {
      // En-route caching: every node on the response path inserts a copy.
      NodeId v = origin;
      for (int i = 0; i < r.hops; ++i) {
        if (!tree_.is_root(v)) lru_[static_cast<std::size_t>(v)].Insert(r.doc);
        v = tree_.parent(v);
      }
      ++doc_transfers_;
    }
  });
}

void PacketSim::RecordServed(NodeId server, NodeId origin, int hops,
                             SimTime rtt) {
  ++served_requests_;
  // Traffic: the request crossed `hops` links up (accounted per edge in
  // ForwardRequest); the document payload crosses them back down.
  link_traversals_ += static_cast<std::uint64_t>(2 * hops);
  network_kb_ += hops * (options_.request_kb + options_.doc_size_kb);
  NodeId v = origin;
  for (int i = 0; i < hops; ++i) {
    edge_kb_[static_cast<std::size_t>(v)] += options_.doc_size_kb;
    v = tree_.parent(v);
  }
  if (sim_.now() >= options_.warmup) {
    ++post_warmup_served_[static_cast<std::size_t>(server)];
    ++post_warmup_count_;
    hit_depth_sum_ += hops;
    response_us_sum_ += static_cast<double>(rtt);
  }
}

// ICP-like: query all tree neighbors first (control messages + one RTT),
// then fetch from a neighbor copy or fall back to the normal path.
void PacketSim::StartIcpRequest(std::uint64_t req_id, NodeId origin, DocId d) {
  CacheServer& server = servers_[static_cast<std::size_t>(origin)];
  const bool local = server.is_home() ||
                     lru_[static_cast<std::size_t>(origin)].Contains(d);
  server.AcceptRequest(d, kNoNode, local ? 0.0 : 1.0);
  if (local) {
    if (!server.is_home()) lru_[static_cast<std::size_t>(origin)].Touch(d);
    CompleteRequest(req_id, origin, d, origin, 0);
    return;
  }
  // Query round: one message to each neighbor, replies after one RTT.
  std::vector<NodeId> neighbors = tree_.children(origin);
  if (!tree_.is_root(origin)) neighbors.push_back(tree_.parent(origin));
  control_messages_ += 2 * neighbors.size();  // query + reply
  sim_.ScheduleIn(2 * options_.link_latency,
                  [this, req_id, origin, d, neighbors] {
    NodeId hit = kNoNode;
    for (const NodeId nb : neighbors) {
      const bool cached = servers_[static_cast<std::size_t>(nb)].is_home() ||
                          lru_[static_cast<std::size_t>(nb)].Contains(d);
      if (cached) {
        hit = nb;
        break;
      }
    }
    if (hit != kNoNode) {
      servers_[static_cast<std::size_t>(hit)].AcceptRequest(d, kNoNode, 0.0);
      lru_[static_cast<std::size_t>(origin)].Insert(d);
      ++doc_transfers_;
      CompleteRequest(req_id, origin, d, hit, 1);
    } else if (tree_.is_root(origin)) {
      CompleteRequest(req_id, origin, d, origin, 0);
    } else {
      lru_[static_cast<std::size_t>(origin)].Insert(d);
      ++doc_transfers_;
      ForwardRequest(req_id, origin, d, tree_.parent(origin), origin, 1);
    }
  });
}

// --- control plane (WebWave only) ------------------------------------------

void PacketSim::ScheduleGossip() {
  if (options_.policy != CachePolicy::kWebWave) return;
  sim_.ScheduleIn(options_.gossip_period, [this] { GossipTick(); });
}

void PacketSim::GossipTick() {
  // Every server sends its current load to its tree neighbors; the
  // message lands after one link latency.  An active burst window
  // overrides the static loss knob and delays the survivors — the
  // draw shape is unchanged, so a burst spanning the run at loss p is
  // draw-for-draw the same as gossip_loss = p.
  ++gossip_epoch_;
  double loss = options_.gossip_loss;
  SimTime extra_latency = 0;
  for (const GossipBurst& burst : options_.gossip_bursts)
    if (sim_.now() >= burst.start && sim_.now() < burst.end) {
      loss = burst.loss;
      extra_latency = burst.extra_latency;
      break;
    }
  for (NodeId v = 0; v < tree_.size(); ++v) {
    LoadGossip sample;
    sample.node = v;
    sample.epoch = gossip_epoch_;
    sample.load = servers_[static_cast<std::size_t>(v)].load();
    std::vector<NodeId> neighbors = tree_.children(v);
    if (!tree_.is_root(v)) neighbors.push_back(tree_.parent(v));
    for (const NodeId nb : neighbors) {
      ++control_messages_;
      ++link_traversals_;
      if (loss > 0 && rng_.NextBernoulli(loss))
        continue;  // lost in transit; the neighbor's estimate stays stale
      sim_.ScheduleIn(options_.link_latency + extra_latency,
                      [this, nb, g = RoundTrip(sample)] {
                        servers_[static_cast<std::size_t>(nb)]
                            .RecordNeighborLoad(g.node, g.load);
                      });
    }
  }
  sim_.ScheduleIn(options_.gossip_period, [this] { GossipTick(); });
}

void PacketSim::ScheduleDiffusion() {
  if (options_.policy != CachePolicy::kWebWave) return;
  sim_.ScheduleIn(options_.diffusion_period, [this] { DiffusionTick(); });
}

void PacketSim::ScheduleStepHook() {
  if (!step_hook_) return;
  sim_.ScheduleIn(options_.diffusion_period, [this] {
    step_hook_(*this);
    ScheduleStepHook();
  });
}

void PacketSim::DiffusionTick() {
  ++quota_version_;
  const double window_s =
      static_cast<double>(options_.diffusion_period) / kMicrosPerSecond;
  for (NodeId v = 0; v < tree_.size(); ++v)
    servers_[static_cast<std::size_t>(v)].RollWindow(window_s,
                                                     options_.ewma_alpha);
  std::vector<bool> received(static_cast<std::size_t>(tree_.size()), false);

  for (NodeId c = 0; c < tree_.size(); ++c) {
    if (tree_.is_root(c)) continue;
    const NodeId p = tree_.parent(c);
    CacheServer& parent = servers_[static_cast<std::size_t>(p)];
    CacheServer& child = servers_[static_cast<std::size_t>(c)];
    const double alpha =
        1.0 / (1.0 + std::max(tree_.degree(p), tree_.degree(c)));
    // The parent acts on its own load and its *gossiped estimate* of the
    // child; the child symmetrically.
    const double lp = parent.load();
    const double lc_est = parent.NeighborLoad(c);
    const double lc = child.load();
    const double lp_est = child.NeighborLoad(p);
    if (lp > lc_est + 1e-9) {
      // A trickle far below the prescribed shift does not count as
      // "action taken" for barrier detection (see DocWebWave::Step).
      const double want = alpha * (lp - lc_est);
      if (DelegateDown(p, c, want) > 0.25 * want)
        received[static_cast<std::size_t>(c)] = true;
    } else if (lc > lp_est + 1e-9) {
      RelinquishUp(p, c, alpha * (lc - lp_est));
    }
  }

  if (options_.enable_tunneling) {
    for (NodeId k = 0; k < tree_.size(); ++k) {
      if (tree_.is_root(k)) continue;
      CacheServer& child = servers_[static_cast<std::size_t>(k)];
      const bool underloaded =
          child.load() < child.NeighborLoad(tree_.parent(k)) - 1e-9;
      auto& stalls = tunnel_stalls_[k];
      if (!underloaded || received[static_cast<std::size_t>(k)]) {
        stalls = 0;
      } else if (++stalls > options_.barrier_patience) {
        if (Tunnel(k)) stalls = 0;
      }
    }
  }

  for (NodeId v = 0; v < tree_.size(); ++v)
    servers_[static_cast<std::size_t>(v)].RefreshFilter();

  if (!target_.empty()) {
    // EWMA loads rather than raw window counts: the trajectory should
    // show protocol adaptation, not Poisson window noise.
    std::vector<double> loads(static_cast<std::size_t>(tree_.size()));
    for (NodeId v = 0; v < tree_.size(); ++v)
      loads[static_cast<std::size_t>(v)] =
          servers_[static_cast<std::size_t>(v)].load();
    distance_trajectory_.push_back(EuclideanDistance(loads, target_));
  }

  sim_.ScheduleIn(options_.diffusion_period, [this] { DiffusionTick(); });
}

double PacketSim::DelegateDown(NodeId p, NodeId c, double amount) {
  CacheServer& parent = servers_[static_cast<std::size_t>(p)];
  CacheServer& child = servers_[static_cast<std::size_t>(c)];
  // Candidate documents: cached at the parent, flowing up from c.
  std::vector<DocId> candidates;
  for (DocId d = 0; d < docs_; ++d)
    if (parent.IsCached(d) && parent.child_arrival_rate(c, d) > 1e-9 &&
        parent.served_rate(d) > 1e-9)
      candidates.push_back(d);
  std::sort(candidates.begin(), candidates.end(), [&](DocId a, DocId b) {
    const double ra = parent.child_arrival_rate(c, a);
    const double rb = parent.child_arrival_rate(c, b);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  double moved = 0;
  for (const DocId d : candidates) {
    if (moved >= amount - 1e-9) break;
    const double delta = std::min({amount - moved,
                                   parent.child_arrival_rate(c, d),
                                   parent.served_rate(d)});
    if (delta <= 1e-9) continue;
    if (!child.IsCached(d)) {
      child.StoreCopy(d);
      ++doc_transfers_;
      ++control_messages_;  // the replicate instruction
      ++link_traversals_;
      network_kb_ += options_.doc_size_kb;  // one-hop parent->child copy
      edge_kb_[static_cast<std::size_t>(c)] += options_.doc_size_kb;
    }
    child.AddQuota(d, delta);
    if (!parent.is_home()) parent.AddQuota(d, -delta);
    moved += delta;
  }
  return moved;
}

double PacketSim::RelinquishUp(NodeId p, NodeId c, double amount) {
  CacheServer& parent = servers_[static_cast<std::size_t>(p)];
  CacheServer& child = servers_[static_cast<std::size_t>(c)];
  double moved = 0;
  std::vector<DocId> candidates;
  for (DocId d = 0; d < docs_; ++d)
    if (child.served_rate(d) > 1e-9 && child.quota(d) > 1e-9)
      candidates.push_back(d);
  std::sort(candidates.begin(), candidates.end(), [&](DocId a, DocId b) {
    const double ra = child.served_rate(a);
    const double rb = child.served_rate(b);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (const DocId d : candidates) {
    if (moved >= amount - 1e-9) break;
    const double delta =
        std::min({amount - moved, child.quota(d), child.served_rate(d)});
    if (delta <= 1e-9) continue;
    child.AddQuota(d, -delta);
    if (child.quota(d) <= 1e-9 && !child.is_home()) child.DropCopy(d);
    if (parent.IsCached(d) && !parent.is_home()) parent.AddQuota(d, delta);
    moved += delta;
  }
  return moved;
}

bool PacketSim::Tunnel(NodeId k) {
  CacheServer& child = servers_[static_cast<std::size_t>(k)];
  // The document k forwards at the highest rate but does not cache.
  DocId best = -1;
  double best_rate = 1e-9;
  for (DocId d = 0; d < docs_; ++d) {
    if (child.IsCached(d)) continue;
    const double pass = child.arrival_rate(d) - child.served_rate(d);
    if (pass > best_rate) {
      best_rate = pass;
      best = d;
    }
  }
  if (best < 0) return false;
  child.StoreCopy(best);
  const NodeId p = tree_.parent(k);
  const double gap = child.NeighborLoad(p) - child.load();
  child.AddQuota(best, std::min(best_rate, 0.5 * gap));
  ++doc_transfers_;
  control_messages_ += 2;  // direct request + transfer across the barrier
  ++tunnel_events_;
  return true;
}

// --- reporting -------------------------------------------------------------

PacketSimReport PacketSim::Report() const {
  PacketSimReport report;
  const double measured_s =
      static_cast<double>(options_.duration - options_.warmup) /
      kMicrosPerSecond;
  report.measured_loads.resize(static_cast<std::size_t>(tree_.size()));
  for (NodeId v = 0; v < tree_.size(); ++v)
    report.measured_loads[static_cast<std::size_t>(v)] =
        static_cast<double>(
            post_warmup_served_[static_cast<std::size_t>(v)]) /
        measured_s;
  report.total_requests = total_requests_;
  report.served_requests = served_requests_;
  report.control_messages = control_messages_;
  report.doc_transfers = doc_transfers_;
  report.tunnel_events = tunnel_events_;
  report.distance_trajectory = distance_trajectory_;
  if (post_warmup_count_ > 0) {
    report.mean_hit_depth =
        hit_depth_sum_ / static_cast<double>(post_warmup_count_);
    report.mean_response_ms = response_us_sum_ /
                              static_cast<double>(post_warmup_count_) /
                              kMicrosPerMilli;
  }
  report.link_traversals = link_traversals_;
  report.network_kb = network_kb_;
  report.edge_traffic_kb = edge_kb_;
  report.wire_frames = wire_frames_;
  report.copies_per_doc.assign(static_cast<std::size_t>(docs_), 0);
  for (DocId d = 0; d < docs_; ++d) {
    for (NodeId v = 0; v < tree_.size(); ++v) {
      const bool has_copy =
          options_.policy == CachePolicy::kWebWave ||
                  options_.policy == CachePolicy::kNoCaching
              ? servers_[static_cast<std::size_t>(v)].IsCached(d)
              : servers_[static_cast<std::size_t>(v)].is_home() ||
                    lru_[static_cast<std::size_t>(v)].Contains(d);
      if (has_copy) ++report.copies_per_doc[static_cast<std::size_t>(d)];
    }
  }
  if (total_requests_ > 0) {
    report.control_messages_per_request =
        static_cast<double>(control_messages_) /
        static_cast<double>(total_requests_);
    report.network_kb_per_request =
        network_kb_ / static_cast<double>(total_requests_);
  }
  return report;
}

}  // namespace webwave
