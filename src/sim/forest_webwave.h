// Coordinated WebWave over a forest of overlapping routing trees.
//
// §7: "it will be important, in the future, to evaluate how WebWave
// functions in the context of the forest of overlapping routing trees
// that is the Internet."  Each home server induces its own routing tree
// over the same physical nodes, and a node's capacity is shared by every
// tree passing through it.  Running the paper's protocol independently
// per tree optimizes each tree in isolation and can pile several trees'
// load onto shared interior nodes (bench/tab_forest_overlap measures how
// badly).
//
// The coordinated variant implemented here changes exactly one thing:
// the load a server gossips — and the imbalance the diffusion reacts to —
// is its *total* load across all trees, while every transfer still honours
// its own tree's NSS cap.  All decisions stay local; no tree learns
// anything about another tree's structure.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

struct ForestWebWaveOptions {
  // Diffusion parameter per edge; <= 0 means 1/(1 + max endpoint degree)
  // within that edge's tree.
  double alpha = -1;
  // Balance against total node load across trees (the coordinated
  // variant) or each tree against its own load only (the independent
  // baseline, equivalent to running the paper's protocol per tree).
  bool coordinate_across_trees = true;
  std::uint64_t seed = 1;
};

class ForestWebWave {
 public:
  // All trees must be over the same node set (same size).  demands[t][v]
  // is the spontaneous rate for tree t's document family at node v.
  // Initial condition: each tree's home serves its whole family.
  ForestWebWave(const std::vector<RoutingTree>& trees,
                std::vector<std::vector<double>> demands,
                ForestWebWaveOptions options = {});

  void Step();
  int steps() const { return steps_; }

  // Served rate of node v on behalf of tree t.
  const std::vector<std::vector<double>>& served() const { return served_; }
  // Total served rate per node, across trees.
  std::vector<double> TotalLoads() const;
  double MaxTotalLoad() const;

  // Per-tree flow conservation, NSS and non-negativity.
  void CheckInvariants(double tol = 1e-6) const;

 private:
  std::vector<RoutingTree> trees_;  // owned: callers may pass temporaries
  std::vector<std::vector<double>> demands_;    // [tree][node]
  std::vector<std::vector<double>> served_;     // [tree][node]
  std::vector<std::vector<double>> forwarded_;  // [tree][node]
  ForestWebWaveOptions options_;
  int steps_ = 0;

  // All trees' edges flattened into parallel arrays; tree t owns slots
  // [edge_offset_[t], edge_offset_[t + 1]).  Precomputed once so Step()
  // is a linear sweep with no per-edge parent/degree lookups.
  std::vector<std::size_t> edge_offset_;
  std::vector<NodeId> edge_parent_;
  std::vector<NodeId> edge_child_;
  std::vector<double> edge_alpha_;
};

}  // namespace webwave
