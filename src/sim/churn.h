// Tracking under erratic request rates.
//
// §5.1 closes with: "the dynamics of WebWave under erratic request rates
// is the subject of an ongoing simulation study."  This module is that
// study: the spontaneous rates are re-drawn periodically while the
// protocol runs, and we measure how closely WebWave tracks the *moving*
// TLB optimum — the steady-state tracking error and the recovery speed
// after each shock.
#pragma once

#include <cstdint>
#include <vector>

#include "core/webwave.h"
#include "tree/routing_tree.h"
#include "util/rng.h"

namespace webwave {

struct ChurnOptions {
  int epochs = 20;           // number of demand shocks
  int period = 50;           // diffusion steps between shocks
  double churn_fraction = 0.3;  // share of nodes re-drawn per shock
  double max_rate = 50.0;       // re-drawn rates are U(0, max_rate)
  std::uint64_t seed = 1;
  WebWaveOptions protocol;
};

struct ChurnEpoch {
  // Distance to the *new* TLB right after the shock, and at the epoch end.
  double distance_after_shock = 0;
  double distance_at_end = 0;
  // Steps until within 5% of the shock distance's decay (==period if never).
  int recovery_steps = 0;
};

struct ChurnRun {
  std::vector<ChurnEpoch> epochs;
  // Time-averaged relative distance to the instantaneous TLB, over the
  // whole run (distance / total offered rate).
  double mean_relative_distance = 0;
  // Worst relative distance observed at any epoch end.
  double worst_end_relative_distance = 0;
};

// Runs WebWave under periodic demand shocks.  The tree's rates start at
// `initial` and `churn_fraction` of the nodes are re-drawn every
// `period` steps.
ChurnRun RunChurn(const RoutingTree& tree, std::vector<double> initial,
                  const ChurnOptions& options);

}  // namespace webwave
