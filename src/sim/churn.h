// Tracking under erratic request rates.
//
// §5.1 closes with: "the dynamics of WebWave under erratic request rates
// is the subject of an ongoing simulation study."  This module is that
// study, in two sizes:
//
//   * RunChurn — the original single-document experiment: rates re-drawn
//     periodically on one WebWaveSimulator, tracking the moving TLB.
//   * ChurnSchedule + RunBatchChurn — catalog-scale churn on the batch
//     engine: a schedule generates sparse DemandEvent batches (rotating
//     hot spot, flash crowd, Zipf popularity re-shuffle) that
//     BatchWebWaveSimulator::ApplyDemandEvents applies to every affected
//     document lane at once, the regime DistCache-style load-balance
//     claims actually care about.
#pragma once

#include <cstdint>
#include <vector>

#include "core/webwave.h"
#include "core/webwave_batch.h"
#include "tree/routing_tree.h"
#include "util/rng.h"
#include "util/span.h"

namespace webwave {

struct ChurnOptions {
  int epochs = 20;           // number of demand shocks
  int period = 50;           // diffusion steps between shocks
  double churn_fraction = 0.3;  // share of nodes re-drawn per shock
  double max_rate = 50.0;       // re-drawn rates are U(0, max_rate)
  std::uint64_t seed = 1;
  WebWaveOptions protocol;
};

struct ChurnEpoch {
  // Distance to the *new* TLB right after the shock, and at the epoch end.
  double distance_after_shock = 0;
  double distance_at_end = 0;
  // Steps until within 5% of the shock distance's decay (==period if never).
  int recovery_steps = 0;
};

struct ChurnRun {
  std::vector<ChurnEpoch> epochs;
  // Time-averaged relative distance to the instantaneous TLB, over the
  // whole run (distance / total offered rate).
  double mean_relative_distance = 0;
  // Worst relative distance observed at any epoch end.
  double worst_end_relative_distance = 0;
};

// Runs WebWave under periodic demand shocks.  The tree's rates start at
// `initial` and `churn_fraction` of the nodes are re-drawn every
// `period` steps.
ChurnRun RunChurn(const RoutingTree& tree, std::vector<double> initial,
                  const ChurnOptions& options);

// Catalog-scale churn schedules -------------------------------------------

enum class ChurnPattern {
  // A contiguous window of hot_fraction of the leaves requests every
  // document at hot_rate (the rest at base_rate, Zipf(1)-split across the
  // catalog); the window slides one rotation_epochs-th of the leaf ring
  // per epoch.  Demand state matches RotatingHotSpotDemand at
  // phase = (epoch % rotation_epochs) / rotation_epochs, but the events
  // are generated sparsely — only leaves entering or leaving the window —
  // so a million-node epoch costs O(changed leaves · documents), not
  // O(nodes · documents).
  kRotatingHotSpot,
  // Epochs alternate calm/crowd: a crowd adds hot_rate demand for one
  // random document across one random subtree (the FlashCrowdDemand
  // shape), the following epoch restores the baseline.
  kFlashCrowd,
  // Every leaf splits base_rate across the catalog by Zipf(1) popularity;
  // each epoch permutes the documents' popularity ranks — the whole
  // catalog's demand profile shifts at once.
  kZipfReshuffle,
};

const char* PatternName(ChurnPattern pattern);

struct ChurnScheduleOptions {
  ChurnPattern pattern = ChurnPattern::kRotatingHotSpot;
  int doc_count = 1;
  double base_rate = 1.0;
  double hot_rate = 50.0;
  double hot_fraction = 0.1;  // rotating hot spot: share of leaves hot
  int rotation_epochs = 8;    // rotating hot spot: epochs per revolution
  std::uint64_t seed = 1;
};

// A deterministic generator of demand-event batches: Lanes() gives the
// per-document spontaneous rates at the current epoch (the batch
// simulator's construction input), NextEvents() advances one epoch and
// returns the sparse difference as absolute-rate DemandEvents.  The total
// offered rate of the rotating-hot-spot pattern is invariant across
// epochs (the window only moves), which the property tests assert.
class ChurnSchedule {
 public:
  ChurnSchedule(const RoutingTree& tree, ChurnScheduleOptions options);

  int doc_count() const { return options_.doc_count; }
  int epoch() const { return epoch_; }

  // Current per-document rate lanes: lanes()[d][v] is document d's
  // spontaneous rate at node v.  O(doc_count · nodes) to materialize.
  std::vector<std::vector<double>> Lanes() const;

  // Advances to the next epoch and returns the events that transform the
  // previous epoch's demand into the new one (later events win, but a
  // batch never writes one cell twice).
  std::vector<DemandEvent> NextEvents();

 private:
  bool LeafHotAt(int epoch, std::size_t leaf_index) const;
  double RotatingLeafRate(int epoch, std::size_t leaf_index, int doc) const;

  const RoutingTree& tree_;
  ChurnScheduleOptions options_;
  Rng rng_;
  int epoch_ = 0;

  std::vector<NodeId> leaves_;   // non-root leaves, ascending id
  std::vector<double> weights_;  // Zipf(1) pmf over documents

  // kFlashCrowd: dense baseline rates [doc][node] and the active crowd.
  std::vector<std::vector<double>> baseline_;
  int crowd_doc_ = -1;
  NodeId crowd_epicenter_ = kNoNode;

  // kZipfReshuffle: rank permutation (doc d has popularity weight
  // weights_[perm_[d]]).
  std::vector<int> perm_;
};

// Catalog-scale churn on the batch engine ---------------------------------

struct BatchChurnOptions {
  int epochs = 8;
  int period = 30;     // diffusion steps between event batches
  // Lanes tracked against their own moving TLB optimum (clamped to the
  // catalog size).  Tracking costs one WebFold per tracked lane per epoch;
  // 0 disables it for throughput-only runs.
  int tlb_lanes = 4;
  WebWaveOptions protocol;
};

struct BatchChurnEpoch {
  std::size_t events = 0;  // demand events applied entering this epoch
  // Relative distances (distance / lane's offered rate) to the tracked
  // lanes' instantaneous TLB optima, averaged over the tracked lanes.
  double distance_after_shock = 0;
  double distance_at_end = 0;
  double mean_relative_distance = 0;  // averaged over the epoch's steps
  double max_node_load_end = 0;       // across-document node load at the end
};

struct BatchChurnRun {
  std::vector<BatchChurnEpoch> epochs;
  double mean_relative_distance = 0;
  double worst_end_relative_distance = 0;
};

// Runs the schedule's demand process on a BatchWebWaveSimulator: epoch 0
// starts from the schedule's initial lanes; every later epoch applies
// NextEvents() through ApplyDemandEvents, then steps `period` diffusion
// periods.  The schedule is consumed (advanced epochs times).
BatchChurnRun RunBatchChurn(const RoutingTree& tree, ChurnSchedule& schedule,
                            const BatchChurnOptions& options);

}  // namespace webwave
