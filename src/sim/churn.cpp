#include "sim/churn.h"

#include <algorithm>
#include <utility>

#include "core/load_model.h"
#include "core/webfold.h"
#include "stats/zipf.h"
#include "util/check.h"

namespace webwave {

ChurnRun RunChurn(const RoutingTree& tree, std::vector<double> initial,
                  const ChurnOptions& options) {
  WEBWAVE_REQUIRE(options.epochs >= 1, "need at least one epoch");
  WEBWAVE_REQUIRE(options.period >= 1, "period must be positive");
  WEBWAVE_REQUIRE(
      options.churn_fraction >= 0 && options.churn_fraction <= 1,
      "churn fraction in [0,1]");
  Rng rng(options.seed);

  WebWaveSimulator sim(tree, initial, options.protocol);
  std::vector<double> rates = std::move(initial);

  ChurnRun run;
  double distance_accum = 0;
  long distance_samples = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Shock: re-draw a fraction of the nodes' spontaneous rates.
    for (NodeId v = 0; v < tree.size(); ++v)
      if (rng.NextBernoulli(options.churn_fraction))
        rates[static_cast<std::size_t>(v)] =
            rng.NextDouble(0, options.max_rate);
    sim.UpdateSpontaneous(rates);
    const WebFoldResult target = WebFold(tree, rates);
    const double total = TotalRate(rates);

    ChurnEpoch e;
    e.distance_after_shock = sim.DistanceTo(target.load);
    const double recovered_level = 0.05 * e.distance_after_shock;
    e.recovery_steps = options.period;
    for (int s = 0; s < options.period; ++s) {
      sim.Step();
      const double d = sim.DistanceTo(target.load);
      distance_accum += total > 0 ? d / total : 0;
      ++distance_samples;
      if (d <= recovered_level && e.recovery_steps == options.period)
        e.recovery_steps = s + 1;
    }
    e.distance_at_end = sim.DistanceTo(target.load);
    run.worst_end_relative_distance =
        std::max(run.worst_end_relative_distance,
                 total > 0 ? e.distance_at_end / total : 0);
    run.epochs.push_back(e);
  }
  run.mean_relative_distance =
      distance_samples > 0 ? distance_accum / distance_samples : 0;
  return run;
}

// ChurnSchedule ------------------------------------------------------------

const char* PatternName(ChurnPattern pattern) {
  switch (pattern) {
    case ChurnPattern::kRotatingHotSpot: return "rotating hot spot";
    case ChurnPattern::kFlashCrowd: return "flash crowd";
    case ChurnPattern::kZipfReshuffle: return "zipf reshuffle";
  }
  return "?";
}

ChurnSchedule::ChurnSchedule(const RoutingTree& tree,
                             ChurnScheduleOptions options)
    : tree_(tree), options_(options), rng_(options.seed) {
  WEBWAVE_REQUIRE(options_.doc_count >= 1, "need at least one document");
  WEBWAVE_REQUIRE(options_.base_rate >= 0 && options_.hot_rate >= 0,
                  "rates must be non-negative");
  WEBWAVE_REQUIRE(
      options_.hot_fraction >= 0 && options_.hot_fraction <= 1,
      "hot fraction in [0,1]");
  WEBWAVE_REQUIRE(options_.rotation_epochs >= 1,
                  "rotation must take at least one epoch");
  for (NodeId v = 0; v < tree_.size(); ++v)
    if (tree_.is_leaf(v) && !tree_.is_root(v)) leaves_.push_back(v);
  WEBWAVE_REQUIRE(!leaves_.empty(), "the tree has no non-root leaves");

  const ZipfDistribution zipf(options_.doc_count, 1.0);
  weights_.resize(static_cast<std::size_t>(options_.doc_count));
  for (int d = 0; d < options_.doc_count; ++d)
    weights_[static_cast<std::size_t>(d)] = zipf.pmf(d);

  switch (options_.pattern) {
    case ChurnPattern::kRotatingHotSpot:
      break;  // pure function of the epoch: no state beyond the counter
    case ChurnPattern::kFlashCrowd: {
      // Dense baseline, the FlashCrowdDemand shape: every node requests
      // every document at a jittered Zipf(1) split of base_rate.
      baseline_.resize(static_cast<std::size_t>(options_.doc_count));
      for (auto& lane : baseline_)
        lane.assign(static_cast<std::size_t>(tree_.size()), 0.0);
      for (NodeId v = 0; v < tree_.size(); ++v)
        for (int d = 0; d < options_.doc_count; ++d)
          baseline_[static_cast<std::size_t>(d)][static_cast<std::size_t>(v)] =
              options_.base_rate * weights_[static_cast<std::size_t>(d)] *
              rng_.NextDouble(0.5, 1.5);
      break;
    }
    case ChurnPattern::kZipfReshuffle: {
      perm_.resize(static_cast<std::size_t>(options_.doc_count));
      for (int d = 0; d < options_.doc_count; ++d)
        perm_[static_cast<std::size_t>(d)] = d;
      break;
    }
  }
}

bool ChurnSchedule::LeafHotAt(int epoch, std::size_t leaf_index) const {
  // The circular window of RotatingHotSpotDemand at
  // phase = (epoch % rotation_epochs) / rotation_epochs.
  const std::size_t n = leaves_.size();
  const std::size_t window = static_cast<std::size_t>(
      options_.hot_fraction * static_cast<double>(n) + 0.5);
  const double phase =
      static_cast<double>(epoch % options_.rotation_epochs) /
      static_cast<double>(options_.rotation_epochs);
  const std::size_t start =
      static_cast<std::size_t>(phase * static_cast<double>(n));
  return (leaf_index + n - start) % n < window;
}

double ChurnSchedule::RotatingLeafRate(int epoch, std::size_t leaf_index,
                                       int doc) const {
  const double rate =
      LeafHotAt(epoch, leaf_index) ? options_.hot_rate : options_.base_rate;
  return rate * weights_[static_cast<std::size_t>(doc)];
}

std::vector<std::vector<double>> ChurnSchedule::Lanes() const {
  std::vector<std::vector<double>> lanes(
      static_cast<std::size_t>(options_.doc_count));
  for (auto& lane : lanes)
    lane.assign(static_cast<std::size_t>(tree_.size()), 0.0);
  switch (options_.pattern) {
    case ChurnPattern::kRotatingHotSpot:
      for (std::size_t i = 0; i < leaves_.size(); ++i)
        for (int d = 0; d < options_.doc_count; ++d)
          lanes[static_cast<std::size_t>(d)]
               [static_cast<std::size_t>(leaves_[i])] =
                   RotatingLeafRate(epoch_, i, d);
      break;
    case ChurnPattern::kFlashCrowd:
      lanes = baseline_;
      if (crowd_doc_ >= 0)
        for (const NodeId v : tree_.subtree(crowd_epicenter_))
          lanes[static_cast<std::size_t>(crowd_doc_)]
               [static_cast<std::size_t>(v)] += options_.hot_rate;
      break;
    case ChurnPattern::kZipfReshuffle:
      for (const NodeId leaf : leaves_)
        for (int d = 0; d < options_.doc_count; ++d)
          lanes[static_cast<std::size_t>(d)][static_cast<std::size_t>(leaf)] =
              options_.base_rate *
              weights_[static_cast<std::size_t>(
                  perm_[static_cast<std::size_t>(d)])];
      break;
  }
  return lanes;
}

std::vector<DemandEvent> ChurnSchedule::NextEvents() {
  std::vector<DemandEvent> events;
  switch (options_.pattern) {
    case ChurnPattern::kRotatingHotSpot: {
      // Sparse diff: only leaves whose hot-status flips between epochs.
      for (std::size_t i = 0; i < leaves_.size(); ++i) {
        if (LeafHotAt(epoch_, i) == LeafHotAt(epoch_ + 1, i)) continue;
        for (int d = 0; d < options_.doc_count; ++d)
          events.push_back(
              {d, leaves_[i], RotatingLeafRate(epoch_ + 1, i, d)});
      }
      break;
    }
    case ChurnPattern::kFlashCrowd: {
      if (crowd_doc_ < 0) {
        // Calm -> crowd: one document, one subtree.
        crowd_doc_ = static_cast<int>(
            rng_.NextBelow(static_cast<std::uint64_t>(options_.doc_count)));
        crowd_epicenter_ = static_cast<NodeId>(
            rng_.NextBelow(static_cast<std::uint64_t>(tree_.size())));
        for (const NodeId v : tree_.subtree(crowd_epicenter_))
          events.push_back(
              {crowd_doc_, v,
               baseline_[static_cast<std::size_t>(crowd_doc_)]
                        [static_cast<std::size_t>(v)] +
                   options_.hot_rate});
      } else {
        // Crowd -> calm: restore the baseline.
        for (const NodeId v : tree_.subtree(crowd_epicenter_))
          events.push_back(
              {crowd_doc_, v,
               baseline_[static_cast<std::size_t>(crowd_doc_)]
                        [static_cast<std::size_t>(v)]});
        crowd_doc_ = -1;
        crowd_epicenter_ = kNoNode;
      }
      break;
    }
    case ChurnPattern::kZipfReshuffle: {
      const std::vector<int> before = perm_;
      rng_.Shuffle(perm_);
      for (int d = 0; d < options_.doc_count; ++d) {
        const double w_before =
            weights_[static_cast<std::size_t>(
                before[static_cast<std::size_t>(d)])];
        const double w_after =
            weights_[static_cast<std::size_t>(
                perm_[static_cast<std::size_t>(d)])];
        if (w_before == w_after) continue;
        for (const NodeId leaf : leaves_)
          events.push_back({d, leaf, options_.base_rate * w_after});
      }
      break;
    }
  }
  ++epoch_;
  return events;
}

// RunBatchChurn ------------------------------------------------------------

BatchChurnRun RunBatchChurn(const RoutingTree& tree, ChurnSchedule& schedule,
                            const BatchChurnOptions& options) {
  WEBWAVE_REQUIRE(options.epochs >= 1, "need at least one epoch");
  WEBWAVE_REQUIRE(options.period >= 1, "period must be positive");
  WEBWAVE_REQUIRE(options.tlb_lanes >= 0, "tlb_lanes must be >= 0");

  std::vector<std::vector<double>> lanes = schedule.Lanes();
  const int docs = schedule.doc_count();
  const int tracked = std::min(options.tlb_lanes, docs);

  // The tracked lanes' current rate vectors, maintained alongside the
  // simulator so each epoch's TLB targets can be folded.
  std::vector<std::vector<double>> rates(lanes.begin(),
                                         lanes.begin() + tracked);
  BatchWebWaveSimulator batch(tree, std::move(lanes), options.protocol);

  BatchChurnRun run;
  double accum = 0;
  long samples = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    BatchChurnEpoch e;
    if (epoch > 0) {
      const std::vector<DemandEvent> events = schedule.NextEvents();
      batch.ApplyDemandEvents(events);
      e.events = events.size();
      for (const DemandEvent& ev : events)
        if (ev.doc < tracked)
          rates[static_cast<std::size_t>(ev.doc)]
               [static_cast<std::size_t>(ev.node)] = ev.rate;
    }

    std::vector<std::vector<double>> targets(
        static_cast<std::size_t>(tracked));
    std::vector<double> totals(static_cast<std::size_t>(tracked), 0.0);
    for (int d = 0; d < tracked; ++d) {
      targets[static_cast<std::size_t>(d)] =
          WebFold(tree, rates[static_cast<std::size_t>(d)]).load;
      totals[static_cast<std::size_t>(d)] =
          TotalRate(rates[static_cast<std::size_t>(d)]);
    }
    const auto relative_distance = [&]() -> double {
      if (tracked == 0) return 0;
      double sum = 0;
      for (int d = 0; d < tracked; ++d) {
        const double total = totals[static_cast<std::size_t>(d)];
        if (total <= 0) continue;
        sum += batch.DistanceTo(d, targets[static_cast<std::size_t>(d)]) /
               total;
      }
      return sum / tracked;
    };

    e.distance_after_shock = relative_distance();
    for (int s = 0; s < options.period; ++s) {
      batch.Step();
      const double r = relative_distance();
      e.mean_relative_distance += r;
      accum += r;
      ++samples;
    }
    e.mean_relative_distance /= options.period;
    e.distance_at_end = relative_distance();
    e.max_node_load_end = batch.MaxNodeLoad();
    run.worst_end_relative_distance =
        std::max(run.worst_end_relative_distance, e.distance_at_end);
    run.epochs.push_back(e);
  }
  run.mean_relative_distance = samples > 0 ? accum / samples : 0;
  return run;
}

}  // namespace webwave
