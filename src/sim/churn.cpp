#include "sim/churn.h"

#include <algorithm>

#include "core/load_model.h"
#include "core/webfold.h"
#include "util/check.h"

namespace webwave {

ChurnRun RunChurn(const RoutingTree& tree, std::vector<double> initial,
                  const ChurnOptions& options) {
  WEBWAVE_REQUIRE(options.epochs >= 1, "need at least one epoch");
  WEBWAVE_REQUIRE(options.period >= 1, "period must be positive");
  WEBWAVE_REQUIRE(
      options.churn_fraction >= 0 && options.churn_fraction <= 1,
      "churn fraction in [0,1]");
  Rng rng(options.seed);

  WebWaveSimulator sim(tree, initial, options.protocol);
  std::vector<double> rates = std::move(initial);

  ChurnRun run;
  double distance_accum = 0;
  long distance_samples = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Shock: re-draw a fraction of the nodes' spontaneous rates.
    for (NodeId v = 0; v < tree.size(); ++v)
      if (rng.NextBernoulli(options.churn_fraction))
        rates[static_cast<std::size_t>(v)] =
            rng.NextDouble(0, options.max_rate);
    sim.UpdateSpontaneous(rates);
    const WebFoldResult target = WebFold(tree, rates);
    const double total = TotalRate(rates);

    ChurnEpoch e;
    e.distance_after_shock = sim.DistanceTo(target.load);
    const double recovered_level = 0.05 * e.distance_after_shock;
    e.recovery_steps = options.period;
    for (int s = 0; s < options.period; ++s) {
      sim.Step();
      const double d = sim.DistanceTo(target.load);
      distance_accum += total > 0 ? d / total : 0;
      ++distance_samples;
      if (d <= recovered_level && e.recovery_steps == options.period)
        e.recovery_steps = s + 1;
    }
    e.distance_at_end = sim.DistanceTo(target.load);
    run.worst_end_relative_distance =
        std::max(run.worst_end_relative_distance,
                 total > 0 ? e.distance_at_end / total : 0);
    run.epochs.push_back(e);
  }
  run.mean_relative_distance =
      distance_samples > 0 ? distance_accum / distance_samples : 0;
  return run;
}

}  // namespace webwave
