#include "sim/forest_webwave.h"

#include <algorithm>

#include "core/load_model.h"
#include "util/check.h"

namespace webwave {

ForestWebWave::ForestWebWave(const std::vector<RoutingTree>& trees,
                             std::vector<std::vector<double>> demands,
                             ForestWebWaveOptions options)
    : trees_(trees), demands_(std::move(demands)), options_(options) {
  // trees_ is a copy: the protocol often outlives caller temporaries.
  WEBWAVE_REQUIRE(!trees_.empty(), "need at least one tree");
  WEBWAVE_REQUIRE(demands_.size() == trees_.size(),
                  "one demand vector per tree");
  const int n = trees_.front().size();
  for (const RoutingTree& t : trees_)
    WEBWAVE_REQUIRE(t.size() == n, "trees must share the node set");
  served_.resize(trees_.size());
  forwarded_.resize(trees_.size());
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    WEBWAVE_REQUIRE(demands_[t].size() == static_cast<std::size_t>(n),
                    "demand size mismatch");
    for (const double e : demands_[t])
      WEBWAVE_REQUIRE(e >= 0, "rates must be non-negative");
    // Cold start: each home serves its whole document family.
    served_[t].assign(static_cast<std::size_t>(n), 0.0);
    served_[t][static_cast<std::size_t>(trees_[t].root())] =
        TotalRate(demands_[t]);
    forwarded_[t] = ForwardedRates(trees_[t], demands_[t], served_[t]);
  }

  // Flatten every tree's edges (ascending child id, root skipped) with
  // their diffusion parameters into one contiguous layout.
  edge_offset_.reserve(trees_.size() + 1);
  edge_offset_.push_back(0);
  edge_parent_.reserve(trees_.size() * static_cast<std::size_t>(n - 1));
  edge_child_.reserve(edge_parent_.capacity());
  edge_alpha_.reserve(edge_parent_.capacity());
  for (const RoutingTree& tree : trees_) {
    for (NodeId c = 0; c < tree.size(); ++c) {
      if (tree.is_root(c)) continue;
      const NodeId p = tree.parent(c);
      edge_parent_.push_back(p);
      edge_child_.push_back(c);
      edge_alpha_.push_back(
          options_.alpha > 0
              ? options_.alpha
              : 1.0 / (1.0 + std::max(tree.degree(p), tree.degree(c))));
    }
    edge_offset_.push_back(edge_parent_.size());
  }
}

std::vector<double> ForestWebWave::TotalLoads() const {
  std::vector<double> total(served_.front().size(), 0.0);
  for (const auto& per_tree : served_)
    for (std::size_t v = 0; v < per_tree.size(); ++v) total[v] += per_tree[v];
  return total;
}

double ForestWebWave::MaxTotalLoad() const {
  const std::vector<double> total = TotalLoads();
  double mx = 0;
  for (const double l : total) mx = std::max(mx, l);
  return mx;
}

void ForestWebWave::Step() {
  // Coordinated mode: imbalances are measured on the nodes' *total* load
  // and each tree contributes its proportional share of the prescribed
  // shift (so K overlapping trees do not move K times the diffusion
  // amount).  Transfers update the running totals immediately —
  // Gauss-Seidel style — which damps overshoot between trees within a
  // round.  Independent mode reproduces the paper's per-tree protocol.
  std::vector<double> total = TotalLoads();

  for (std::size_t t = 0; t < trees_.size(); ++t) {
    auto& served = served_[t];
    auto& forwarded = forwarded_[t];
    const std::size_t end = edge_offset_[t + 1];
    for (std::size_t k = edge_offset_[t]; k < end; ++k) {
      const std::size_t pi = static_cast<std::size_t>(edge_parent_[k]);
      const std::size_t ci = static_cast<std::size_t>(edge_child_[k]);
      const double alpha = edge_alpha_[k];
      double d = 0;
      if (options_.coordinate_across_trees) {
        if (total[pi] > total[ci]) {
          const double share = total[pi] > 0 ? served[pi] / total[pi] : 0;
          d = std::min({alpha * (total[pi] - total[ci]) * share,
                        forwarded[ci], served[pi]});
        } else if (total[ci] > total[pi]) {
          const double share = total[ci] > 0 ? served[ci] / total[ci] : 0;
          d = -std::min(alpha * (total[ci] - total[pi]) * share, served[ci]);
        }
      } else {
        if (served[pi] > served[ci]) {
          d = std::min({alpha * (served[pi] - served[ci]), forwarded[ci],
                        served[pi]});
        } else if (served[ci] > served[pi]) {
          d = -std::min(alpha * (served[ci] - served[pi]), served[ci]);
        }
      }
      if (d > 0) {
        served[pi] -= d;
        served[ci] += d;
        forwarded[ci] -= d;
        total[pi] -= d;
        total[ci] += d;
      } else if (d < 0) {
        served[ci] += d;
        served[pi] -= d;
        forwarded[ci] -= d;
        total[ci] += d;
        total[pi] -= d;
      }
    }
  }
  ++steps_;
}

void ForestWebWave::CheckInvariants(double tol) const {
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const double total = TotalRate(demands_[t]);
    WEBWAVE_ASSERT(
        std::abs(TotalRate(served_[t]) - total) <= tol * (1 + total),
        "per-tree flow conservation violated");
    const std::vector<double> expect =
        ForwardedRates(trees_[t], demands_[t], served_[t]);
    for (std::size_t v = 0; v < served_[t].size(); ++v) {
      WEBWAVE_ASSERT(served_[t][v] >= -tol, "negative served rate");
      WEBWAVE_ASSERT(forwarded_[t][v] >= -tol, "per-tree NSS violated");
      WEBWAVE_ASSERT(std::abs(forwarded_[t][v] - expect[v]) <=
                         tol * (1 + total),
                     "tracked A diverged");
    }
  }
}

}  // namespace webwave
