// A fixed-bin histogram for run-time distributions (hit depth, degree
// distributions, response times).
//
// This is the *analysis* histogram: double-weighted, fixed equal-width
// bins over a caller-chosen [lo, hi), built for offline shaping of
// simulation outputs (CDF queries, ASCII rendering).  Latency and other
// timing telemetry use obs::LatencyHistogram instead — log-linear u64
// buckets, per-worker shards, wire-serializable and mergeable across
// processes.  src/obs/README.md spells out which to use where.
#pragma once

#include <string>
#include <vector>

namespace webwave {

class Histogram {
 public:
  // Bins of equal width covering [lo, hi); values outside are clamped to
  // the first/last bin.
  Histogram(double lo, double hi, int bins);

  void Add(double value, double weight = 1.0);

  int bin_count() const { return static_cast<int>(counts_.size()); }
  double bin_lo(int b) const;
  double bin_hi(int b) const;
  double count(int b) const;
  double total() const { return total_; }

  // Fraction of mass at or below `value`.
  double CdfAt(double value) const;

  // One line per non-empty bin: "[lo, hi)  count  ###".
  std::string Render(int width = 40) const;

 private:
  int BinOf(double value) const;

  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0;
};

}  // namespace webwave
