#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace webwave {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      width_((hi - lo) / bins),
      counts_(static_cast<std::size_t>(bins), 0.0) {
  WEBWAVE_REQUIRE(bins >= 1, "need at least one bin");
  WEBWAVE_REQUIRE(hi > lo, "hi must exceed lo");
}

int Histogram::BinOf(double value) const {
  const int b = static_cast<int>(std::floor((value - lo_) / width_));
  return std::clamp(b, 0, bin_count() - 1);
}

void Histogram::Add(double value, double weight) {
  WEBWAVE_REQUIRE(weight >= 0, "weight must be non-negative");
  counts_[static_cast<std::size_t>(BinOf(value))] += weight;
  total_ += weight;
}

double Histogram::bin_lo(int b) const {
  WEBWAVE_REQUIRE(b >= 0 && b < bin_count(), "bin out of range");
  return lo_ + b * width_;
}

double Histogram::bin_hi(int b) const { return bin_lo(b) + width_; }

double Histogram::count(int b) const {
  WEBWAVE_REQUIRE(b >= 0 && b < bin_count(), "bin out of range");
  return counts_[static_cast<std::size_t>(b)];
}

double Histogram::CdfAt(double value) const {
  if (total_ == 0) return 0;
  const int upto = BinOf(value);
  double mass = 0;
  for (int b = 0; b <= upto; ++b) mass += counts_[static_cast<std::size_t>(b)];
  return mass / total_;
}

std::string Histogram::Render(int width) const {
  double max_count = 0;
  for (const double c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (int b = 0; b < bin_count(); ++b) {
    const double c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    const int bar =
        max_count > 0
            ? static_cast<int>(std::lround(c / max_count * width))
            : 0;
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ")  " << c << "  "
       << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  return os.str();
}

}  // namespace webwave
