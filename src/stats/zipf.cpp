#include "stats/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace webwave {

ZipfDistribution::ZipfDistribution(int n, double s) : s_(s) {
  WEBWAVE_REQUIRE(n >= 1, "Zipf needs at least one item");
  WEBWAVE_REQUIRE(s >= 0, "Zipf exponent must be non-negative");
  pmf_.resize(static_cast<std::size_t>(n));
  double norm = 0;
  for (int k = 0; k < n; ++k) {
    pmf_[static_cast<std::size_t>(k)] = std::pow(static_cast<double>(k + 1), -s);
    norm += pmf_[static_cast<std::size_t>(k)];
  }
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0;
  for (int k = 0; k < n; ++k) {
    pmf_[static_cast<std::size_t>(k)] /= norm;
    acc += pmf_[static_cast<std::size_t>(k)];
    cdf_[static_cast<std::size_t>(k)] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfDistribution::pmf(int k) const {
  WEBWAVE_REQUIRE(k >= 0 && k < size(), "rank out of range");
  return pmf_[static_cast<std::size_t>(k)];
}

int ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin());
}

std::vector<double> ZipfDistribution::RatesForTotal(double total_rate) const {
  WEBWAVE_REQUIRE(total_rate >= 0, "total rate must be non-negative");
  std::vector<double> rates(pmf_.size());
  for (std::size_t k = 0; k < pmf_.size(); ++k) rates[k] = pmf_[k] * total_rate;
  return rates;
}

}  // namespace webwave
