// Regression fits used in the paper's convergence analysis (§5.1).
//
// The paper models WebWave's distance-to-TLB trajectory as a·γ^t and uses
// S-PLUS nonlinear least squares to estimate γ with a standard error (the
// quoted example: depth-9 random tree ⇒ γ = 0.830734, SE = 0.005786).  We
// provide the same estimator: Gauss–Newton on the model a·γ^t, seeded by a
// log-linear fit, with asymptotic standard errors from the Jacobian.
#pragma once

#include <vector>

namespace webwave {

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
};

// Ordinary least squares y = intercept + slope·x.
LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

struct ExponentialFit {
  double a = 0;            // amplitude
  double gamma = 0;        // per-step convergence rate, 0 < γ < 1 when converging
  double stderr_a = 0;     // asymptotic std. error of a
  double stderr_gamma = 0; // asymptotic std. error of γ
  double rss = 0;          // residual sum of squares
  int iterations = 0;      // Gauss–Newton iterations used
  bool converged = false;
};

// Nonlinear least squares fit of y_t ≈ a·γ^t for t = 0..n-1.
//
// Observations with y <= 0 are permitted (they simply contribute residuals);
// the initial guess comes from a log-linear fit over the positive prefix.
// Throws std::invalid_argument when fewer than 3 observations are given.
ExponentialFit FitExponential(const std::vector<double>& y);

// Convenience: the per-step convergence rate of a trajectory, estimated by
// FitExponential; returns NaN if the fit fails.
double EstimateConvergenceRate(const std::vector<double>& trajectory);

}  // namespace webwave
