// Zipf-distributed document popularity.
//
// The paper's motivation is "hot published documents": web popularity is
// heavy-tailed, and the per-document experiments (§5.2) need a small number
// of hot documents dominating demand.  ZipfDistribution samples rank k in
// 1..n with probability proportional to 1/k^s.
#pragma once

#include <vector>

#include "util/rng.h"

namespace webwave {

class ZipfDistribution {
 public:
  // n items, exponent s >= 0 (s = 0 is uniform).
  ZipfDistribution(int n, double s);

  int size() const { return static_cast<int>(pmf_.size()); }
  double exponent() const { return s_; }

  // Probability of rank k (0-based).
  double pmf(int k) const;

  // Samples a 0-based rank via inverse-CDF binary search.
  int Sample(Rng& rng) const;

  // Expected request rate per item given a total rate.
  std::vector<double> RatesForTotal(double total_rate) const;

 private:
  double s_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace webwave
