#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace webwave {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.variance = ss / static_cast<double>(s.count - 1);
    s.stddev = std::sqrt(s.variance);
  }
  return s;
}

double Quantile(std::vector<double> values, double p) {
  WEBWAVE_REQUIRE(!values.empty(), "quantile of empty sample");
  WEBWAVE_REQUIRE(p >= 0 && p <= 1, "quantile p must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  WEBWAVE_REQUIRE(a.size() == b.size(), "vector sizes differ");
  double ss = 0;
  for (std::size_t i = 0; i < a.size(); ++i) ss += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(ss);
}

double MaxAbsDifference(const std::vector<double>& a,
                        const std::vector<double>& b) {
  WEBWAVE_REQUIRE(a.size() == b.size(), "vector sizes differ");
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

double CoefficientOfVariation(const std::vector<double>& values) {
  const Summary s = Summarize(values);
  return s.mean != 0 ? s.stddev / s.mean : 0;
}

double JainFairness(const std::vector<double>& values) {
  WEBWAVE_REQUIRE(!values.empty(), "fairness of empty sample");
  double sum = 0;
  double sum_sq = 0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0) return 1.0;  // all-zero load is trivially uniform
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace webwave
