// Descriptive statistics used by benches and tests.
#pragma once

#include <vector>

namespace webwave {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double variance = 0;  // sample variance (n-1 denominator; 0 when n < 2)
  double stddev = 0;
  double min = 0;
  double max = 0;
};

Summary Summarize(const std::vector<double>& values);

// p in [0,1]; linear interpolation between order statistics.
double Quantile(std::vector<double> values, double p);

// Euclidean (L2) distance between two equally sized vectors.  This is the
// metric the paper uses to measure WebWave's convergence to TLB (§5.1).
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

// Largest absolute componentwise difference.
double MaxAbsDifference(const std::vector<double>& a,
                        const std::vector<double>& b);

// Coefficient of variation of a load vector (stddev/mean) — a standard
// imbalance measure used in the scalability benches.
double CoefficientOfVariation(const std::vector<double>& values);

// Jain's fairness index: (Σx)² / (n·Σx²); equals 1 for perfectly uniform
// load and 1/n for a single hot node.
double JainFairness(const std::vector<double>& values);

}  // namespace webwave
