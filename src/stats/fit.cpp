#include "stats/fit.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace webwave {

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  WEBWAVE_REQUIRE(x.size() == y.size(), "x and y sizes differ");
  WEBWAVE_REQUIRE(x.size() >= 2, "linear fit needs >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  WEBWAVE_REQUIRE(denom != 0, "degenerate x values for linear fit");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += r * r;
  }
  f.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

ExponentialFit FitExponential(const std::vector<double>& y) {
  WEBWAVE_REQUIRE(y.size() >= 3, "exponential fit needs >= 3 points");
  const int n = static_cast<int>(y.size());

  // Initial guess from a log-linear fit over strictly positive values.
  std::vector<double> tx, ty;
  for (int t = 0; t < n; ++t) {
    if (y[static_cast<std::size_t>(t)] > 0) {
      tx.push_back(static_cast<double>(t));
      ty.push_back(std::log(y[static_cast<std::size_t>(t)]));
    }
  }
  double a = y[0] > 0 ? y[0] : 1.0;
  double g = 0.9;
  if (tx.size() >= 2) {
    const LinearFit lf = FitLinear(tx, ty);
    g = std::exp(lf.slope);
    a = std::exp(lf.intercept);
  }
  g = std::min(std::max(g, 1e-6), 1.0 - 1e-9);

  // Gauss–Newton on r_t = y_t − a·γ^t with Levenberg damping fallback.
  auto rss_of = [&](double aa, double gg) {
    double rss = 0;
    double p = 1;  // gg^t
    for (int t = 0; t < n; ++t) {
      const double r = y[static_cast<std::size_t>(t)] - aa * p;
      rss += r * r;
      p *= gg;
    }
    return rss;
  };

  ExponentialFit fit;
  double rss = rss_of(a, g);
  double lambda = 1e-8;
  const int kMaxIter = 200;
  int iter = 0;
  for (; iter < kMaxIter; ++iter) {
    // Jacobian: ∂f/∂a = γ^t, ∂f/∂γ = a·t·γ^(t−1).
    double jaa = 0, jag = 0, jgg = 0, ra = 0, rg = 0;
    double p = 1;        // γ^t
    double pm1 = 0;      // γ^(t−1); 0 for t = 0 term of the derivative
    for (int t = 0; t < n; ++t) {
      const double fa = p;
      const double fg = a * static_cast<double>(t) * pm1;
      const double r = y[static_cast<std::size_t>(t)] - a * p;
      jaa += fa * fa;
      jag += fa * fg;
      jgg += fg * fg;
      ra += fa * r;
      rg += fg * r;
      pm1 = (t == 0) ? 1 : pm1 * g;
      p *= g;
    }
    // Solve (JᵀJ + λ·diag) δ = Jᵀr.
    const double d0 = jaa * (1 + lambda);
    const double d1 = jgg * (1 + lambda);
    const double det = d0 * d1 - jag * jag;
    if (std::abs(det) < 1e-300) break;
    const double da = (ra * d1 - jag * rg) / det;
    const double dg = (d0 * rg - jag * ra) / det;
    double na = a + da;
    double ng = std::min(std::max(g + dg, 1e-9), 1.0 - 1e-12);
    const double new_rss = rss_of(na, ng);
    if (new_rss < rss) {
      const double improvement = rss - new_rss;
      a = na;
      g = ng;
      rss = new_rss;
      lambda = std::max(lambda * 0.5, 1e-12);
      if (improvement < 1e-14 * (1 + rss)) {
        fit.converged = true;
        break;
      }
    } else {
      lambda *= 10;
      if (lambda > 1e12) {
        fit.converged = true;  // cannot improve further
        break;
      }
    }
  }

  fit.a = a;
  fit.gamma = g;
  fit.rss = rss;
  fit.iterations = iter;
  if (iter >= kMaxIter) fit.converged = true;  // ran to budget; best effort

  // Asymptotic standard errors: s² = RSS/(n−p), cov = s²·(JᵀJ)⁻¹.
  if (n > 2) {
    double jaa = 0, jag = 0, jgg = 0;
    double p = 1, pm1 = 0;
    for (int t = 0; t < n; ++t) {
      const double fa = p;
      const double fg = a * static_cast<double>(t) * pm1;
      jaa += fa * fa;
      jag += fa * fg;
      jgg += fg * fg;
      pm1 = (t == 0) ? 1 : pm1 * g;
      p *= g;
    }
    const double det = jaa * jgg - jag * jag;
    if (det > 0) {
      const double s2 = rss / static_cast<double>(n - 2);
      fit.stderr_a = std::sqrt(s2 * jgg / det);
      fit.stderr_gamma = std::sqrt(s2 * jaa / det);
    }
  }
  return fit;
}

double EstimateConvergenceRate(const std::vector<double>& trajectory) {
  if (trajectory.size() < 3) return std::numeric_limits<double>::quiet_NaN();
  return FitExponential(trajectory).gamma;
}

}  // namespace webwave
