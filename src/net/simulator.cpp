#include "net/simulator.h"

#include <memory>

#include "util/check.h"

namespace webwave {

void Simulator::ScheduleIn(SimTime delay, std::function<void()> fn) {
  WEBWAVE_REQUIRE(delay >= 0, "cannot schedule into the past");
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  WEBWAVE_REQUIRE(when >= now_, "cannot schedule into the past");
  WEBWAVE_REQUIRE(static_cast<bool>(fn), "empty event");
  queue_.push({when, next_seq_++, std::move(fn)});
}

std::size_t Simulator::RunUntil(SimTime horizon) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    // The callback may schedule new events; copy out before popping.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++ran;
    ++executed_;
  }
  if (queue_.empty() || queue_.top().when > horizon) now_ = horizon;
  return ran;
}

std::size_t Simulator::RunAll(std::size_t max_events) {
  std::size_t ran = 0;
  while (!queue_.empty() && ran < max_events) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++ran;
    ++executed_;
  }
  WEBWAVE_ASSERT(queue_.empty(), "event budget exhausted — runaway schedule?");
  return ran;
}

PeriodicTimer::PeriodicTimer(Simulator& sim, SimTime start, SimTime period,
                             std::function<void()> fn)
    : sim_(sim),
      period_(period),
      fn_(std::move(fn)),
      alive_(std::make_shared<bool>(true)) {
  WEBWAVE_REQUIRE(period > 0, "period must be positive");
  Arm(sim_.now() + start);
}

PeriodicTimer::~PeriodicTimer() { Cancel(); }

void PeriodicTimer::Cancel() { *alive_ = false; }

void PeriodicTimer::Arm(SimTime when) {
  sim_.ScheduleAt(when, [this, guard = std::weak_ptr<bool>(alive_), when]() {
    const auto alive = guard.lock();
    if (!alive || !*alive) return;
    fn_();
    if (*alive) Arm(when + period_);
  });
}

}  // namespace webwave
