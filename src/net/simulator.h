// A deterministic discrete-event simulator.
//
// The packet-level WebWave experiments (§5.1's relaxed assumptions, and
// the §7 network-traffic questions) need message passing with latency.
// This simulator provides exactly that: an event queue ordered by
// (time, sequence number) so same-time events fire in scheduling order,
// making every run bit-reproducible.
//
// Time is kept in integer microseconds to avoid floating-point event-order
// ambiguity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace webwave {

using SimTime = std::int64_t;  // microseconds

inline constexpr SimTime kMicrosPerMilli = 1000;
inline constexpr SimTime kMicrosPerSecond = 1000000;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at now() + delay (delay >= 0).
  void ScheduleIn(SimTime delay, std::function<void()> fn);
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs events until the queue is empty or the horizon is passed.
  // Returns the number of events executed.
  std::size_t RunUntil(SimTime horizon);
  std::size_t RunAll(std::size_t max_events = 100000000);

  bool empty() const { return queue_.empty(); }
  std::size_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// A repeating timer helper: schedules `fn` every `period` starting at
// `start`, until `cancel()` or the simulator stops running events.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimTime start, SimTime period,
                std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void Cancel();

 private:
  void Arm(SimTime when);

  Simulator& sim_;
  SimTime period_;
  std::function<void()> fn_;
  std::shared_ptr<bool> alive_;
};

}  // namespace webwave
