#include "store/cache_store.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

void QuotaWeightedEviction::KeepSet(const QuotaSnapshot& snapshot, NodeId v,
                                    const DocumentSizes& sizes,
                                    std::uint64_t budget,
                                    std::vector<DocId>* kept,
                                    std::uint64_t* bytes_used) {
  kept->clear();
  const std::int64_t begin = snapshot.row_begin(v);
  const std::int64_t end = snapshot.row_end(v);
  order_.clear();
  for (std::int64_t c = begin; c < end; ++c) order_.push_back(c);
  const double* rates = snapshot.cell_rates();
  const std::int32_t* docs = snapshot.cell_docs();
  // Decreasing rate/byte; the tie-break on the cell index is a tie-break
  // on the doc id (rows are doc-ascending), so the order — and with it
  // the keep set — is fully deterministic.
  std::sort(order_.begin(), order_.end(),
            [&](std::int64_t a, std::int64_t b) {
              const double da =
                  rates[a] / static_cast<double>(sizes.bytes(docs[a]));
              const double db =
                  rates[b] / static_cast<double>(sizes.bytes(docs[b]));
              if (da != db) return da > db;
              return a < b;
            });
  for (const std::int64_t c : order_) {
    const std::uint64_t size = sizes.bytes(docs[c]);
    if (*bytes_used + size <= budget) {
      *bytes_used += size;
      kept->push_back(docs[c]);
    }
  }
  std::sort(kept->begin(), kept->end());
}

CacheStore::CacheStore(const RoutingTree& tree, DocumentSizes sizes,
                       std::vector<std::uint64_t> budgets)
    : sizes_(std::move(sizes)),
      budgets_(std::move(budgets)),
      home_(tree.root()) {
  WEBWAVE_REQUIRE(
      budgets_.size() == static_cast<std::size_t>(tree.size()),
      "one byte budget per tree node");
  used_.assign(budgets_.size(), 0);
  kept_.resize(budgets_.size());
}

CacheStore CacheStore::WorkingSetStore(const RoutingTree& tree,
                                       DocumentSizes sizes, double multiple) {
  WEBWAVE_REQUIRE(multiple >= 0, "budget multiple must be non-negative");
  const std::uint64_t budget = static_cast<std::uint64_t>(
      multiple * static_cast<double>(sizes.total_bytes()));
  return CacheStore(
      tree, std::move(sizes),
      std::vector<std::uint64_t>(static_cast<std::size_t>(tree.size()),
                                 budget));
}

std::uint64_t CacheStore::budget(NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  return budgets_[static_cast<std::size_t>(v)];
}

std::uint64_t CacheStore::bytes_used(NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  return used_[static_cast<std::size_t>(v)];
}

std::uint64_t CacheStore::total_bytes_used() const {
  std::uint64_t total = 0;
  for (const std::uint64_t u : used_) total += u;
  return total;
}

bool CacheStore::Resident(NodeId v, DocId d) const {
  if (v == home_) return true;
  const std::vector<DocId>& row = ResidentDocs(v);
  return std::binary_search(row.begin(), row.end(), d);
}

const std::vector<DocId>& CacheStore::ResidentDocs(NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < node_count(), "node out of range");
  return kept_[static_cast<std::size_t>(v)];
}

void CacheStore::AdmitRow(const QuotaSnapshot& snapshot, NodeId v) {
  const std::size_t vv = static_cast<std::size_t>(v);
  resident_cells_ -= static_cast<std::int64_t>(kept_[vv].size());
  used_[vv] = 0;
  if (v == home_) {
    // The home keeps its whole row: it is the origin, not a cache.
    kept_[vv].clear();
    const std::int32_t* docs = snapshot.cell_docs();
    for (std::int64_t c = snapshot.row_begin(v); c < snapshot.row_end(v); ++c)
      kept_[vv].push_back(docs[c]);
  } else {
    policy_.KeepSet(snapshot, v, sizes_, budgets_[vv], &kept_[vv],
                    &used_[vv]);
  }
  resident_cells_ += static_cast<std::int64_t>(kept_[vv].size());
}

void CacheStore::Admit(const QuotaSnapshot& snapshot) {
  WEBWAVE_REQUIRE(snapshot.node_count() == node_count(),
                  "snapshot does not match the store");
  for (NodeId v = 0; v < node_count(); ++v) AdmitRow(snapshot, v);
}

void CacheStore::Readmit(const QuotaSnapshot& snapshot,
                         Span<const NodeId> nodes,
                         std::vector<DocId>* changed_docs) {
  WEBWAVE_REQUIRE(snapshot.node_count() == node_count(),
                  "snapshot does not match the store");
  for (const NodeId v : nodes) {
    WEBWAVE_REQUIRE(v >= 0 && v < node_count(), "node out of range");
    row_scratch_ = kept_[static_cast<std::size_t>(v)];
    AdmitRow(snapshot, v);
    // Both lists are ascending: a linear merge finds the symmetric
    // difference — the documents this node admitted or evicted.
    const std::vector<DocId>& now = kept_[static_cast<std::size_t>(v)];
    std::size_t a = 0, b = 0;
    while (a < row_scratch_.size() || b < now.size()) {
      if (b == now.size() ||
          (a < row_scratch_.size() && row_scratch_[a] < now[b]))
        changed_docs->push_back(row_scratch_[a++]);
      else if (a == row_scratch_.size() || now[b] < row_scratch_[a])
        changed_docs->push_back(now[b++]);
      else
        ++a, ++b;
    }
  }
}

}  // namespace webwave
