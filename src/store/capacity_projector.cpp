#include "store/capacity_projector.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

CapacityProjector::CapacityProjector(const RoutingTree& tree, CacheStore store)
    : SpillProjector(tree), store_(std::move(store)) {
  WEBWAVE_REQUIRE(store_.node_count() == tree.size(),
                  "store does not match the tree");
}

bool CapacityProjector::Survives(const QuotaSnapshot& base, NodeId v,
                                 std::int32_t d) const {
  (void)base;  // residency was decided by Admit/Readmit over the base rows
  return store_.Resident(v, d);
}

void CapacityProjector::Project(const QuotaSnapshot& base) {
  WEBWAVE_REQUIRE(base.node_count() == store_.node_count(),
                  "snapshot does not match the store");
  store_.Admit(base);
  ProjectAll(base);
}

bool CapacityProjector::Refresh(const QuotaSnapshot& base,
                                Span<const int> dirty_lanes) {
  WEBWAVE_REQUIRE(projected(), "Refresh needs a prior Project");
  WEBWAVE_REQUIRE(base.node_count() == store_.node_count() &&
                      base.doc_count() == clamped().doc_count(),
                  "snapshot does not match the projection");

  // Admission can only move at nodes whose base rows changed — nodes
  // holding a dirty lane's cells now — or whose budget a dirty lane was
  // occupying — nodes where it was resident before (its old clamped
  // cells).  Re-ranking anywhere else would reproduce the stored keep
  // set: it is a pure function of an unchanged row.
  std::vector<NodeId> touched;
  for (const int d : dirty_lanes) {
    const Span<const NodeId> now = base.DocNodes(d);
    touched.insert(touched.end(), now.begin(), now.end());
    const Span<const NodeId> before = clamped().DocNodes(d);
    touched.insert(touched.end(), before.begin(), before.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::vector<DocId> changed;
  store_.Readmit(base, Span<const NodeId>(touched.data(), touched.size()),
                 &changed);

  // The documents whose clamped cells can differ: the dirty lanes (their
  // rates moved) plus every document some re-ranked node admitted or
  // evicted (their spill routing moved).
  std::vector<std::int32_t> affected(dirty_lanes.begin(), dirty_lanes.end());
  affected.insert(affected.end(), changed.begin(), changed.end());
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return Reproject(base, affected);
}

}  // namespace webwave
