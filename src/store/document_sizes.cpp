#include "store/document_sizes.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace webwave {

DocumentSizes::DocumentSizes(std::vector<std::uint64_t> bytes)
    : bytes_(std::move(bytes)) {
  WEBWAVE_REQUIRE(!bytes_.empty(), "a size model needs documents");
  for (const std::uint64_t b : bytes_) {
    WEBWAVE_REQUIRE(b >= 1, "documents must occupy at least one byte");
    total_ += b;
  }
}

DocumentSizes DocumentSizes::Uniform(int doc_count,
                                     std::uint64_t bytes_per_doc) {
  WEBWAVE_REQUIRE(doc_count >= 1, "a size model needs documents");
  return DocumentSizes(std::vector<std::uint64_t>(
      static_cast<std::size_t>(doc_count), bytes_per_doc));
}

DocumentSizes DocumentSizes::LogNormal(int doc_count, double median_bytes,
                                       double sigma, std::uint64_t seed) {
  WEBWAVE_REQUIRE(doc_count >= 1, "a size model needs documents");
  WEBWAVE_REQUIRE(median_bytes >= 1 && sigma >= 0,
                  "lognormal sizes need a positive median and sigma >= 0");
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(doc_count));
  for (int d = 0; d < doc_count; ++d)
    bytes[static_cast<std::size_t>(d)] =
        CounterLogNormalBytes(seed, d, median_bytes, sigma);
  return DocumentSizes(std::move(bytes));
}

DocumentSizes DocumentSizes::ZipfRanked(int doc_count, double max_bytes,
                                        double exponent, std::uint64_t seed) {
  WEBWAVE_REQUIRE(doc_count >= 1, "a size model needs documents");
  WEBWAVE_REQUIRE(max_bytes >= 1 && exponent >= 0,
                  "zipf sizes need a positive maximum and exponent >= 0");
  std::vector<int> rank(static_cast<std::size_t>(doc_count));
  for (int d = 0; d < doc_count; ++d) rank[static_cast<std::size_t>(d)] = d;
  Rng rng(seed);
  rng.Shuffle(rank);
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(doc_count));
  for (int d = 0; d < doc_count; ++d) {
    const double b =
        max_bytes /
        std::pow(static_cast<double>(rank[static_cast<std::size_t>(d)]) + 1,
                 exponent);
    bytes[static_cast<std::size_t>(d)] =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(b)));
  }
  return DocumentSizes(std::move(bytes));
}

DocumentSizes DocumentSizes::FromCatalog(const Catalog& catalog) {
  WEBWAVE_REQUIRE(catalog.size() >= 1, "a size model needs documents");
  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(catalog.size()));
  for (int d = 0; d < catalog.size(); ++d)
    bytes[static_cast<std::size_t>(d)] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(catalog.doc(d).size_kb * 1024.0)));
  return DocumentSizes(std::move(bytes));
}

DocumentSizes DocumentSizes::FromBytes(std::vector<std::uint64_t> bytes) {
  return DocumentSizes(std::move(bytes));
}

std::uint64_t DocumentSizes::bytes(DocId d) const {
  WEBWAVE_REQUIRE(d >= 0 && d < doc_count(), "document out of range");
  return bytes_[static_cast<std::size_t>(d)];
}

std::uint64_t DocumentSizes::max_bytes() const {
  return *std::max_element(bytes_.begin(), bytes_.end());
}

}  // namespace webwave
