// Deterministic per-document byte sizes — the storage dimension of the
// capacity model.
//
// The control plane diffuses *rates*; what a finite server runs out of is
// *bytes*.  DocumentSizes fixes a byte size per catalog document so the
// cache store (cache_store.h) can account residency against per-node
// budgets.  Web document sizes are famously heavy-tailed, so the main
// model is lognormal (median × exp(sigma·z)); a Zipf-ranked model and a
// uniform one cover the synthetic sweeps and the degenerate case.
//
// Every model is a deterministic function of its seed, materialized once
// at construction, so the size field is identical across replays, thread
// counts and lane_block widths — the property the eviction determinism
// guarantees downstream rest on.  Uniform and LogNormal are furthermore
// counter-based (doc d's size is a pure function of (seed, d), shared
// with Catalog::MakeLogNormal through util/rng's CounterLogNormalBytes);
// ZipfRanked draws its rank permutation from a seeded Rng stream — still
// replayable, but its draws are order-dependent like any stream.
#pragma once

#include <cstdint>
#include <vector>

#include "doc/catalog.h"

namespace webwave {

class DocumentSizes {
 public:
  // Every document exactly `bytes_per_doc` bytes.
  static DocumentSizes Uniform(int doc_count, std::uint64_t bytes_per_doc);

  // Document d is round(median_bytes · exp(sigma · z_d)) bytes, z_d a
  // standard normal drawn as a pure function of (seed, d) (Box–Muller
  // over the counter hash).  sigma ≈ 1–1.5 reproduces the heavy tail of
  // measured web catalogs; sigma 0 collapses to Uniform(median).
  static DocumentSizes LogNormal(int doc_count, double median_bytes,
                                 double sigma, std::uint64_t seed);

  // Document d is max_bytes / (rank_d + 1)^exponent bytes, the ranks a
  // deterministic permutation of 0..doc_count-1 seeded by `seed` — a
  // Zipf-shaped size field decorrelated from document id (and hence from
  // Zipf *popularity*, which the demand generators key on id).
  static DocumentSizes ZipfRanked(int doc_count, double max_bytes,
                                  double exponent, std::uint64_t seed);

  // The catalog's own per-document size_kb fields, in bytes.
  static DocumentSizes FromCatalog(const Catalog& catalog);

  // Explicit per-document bytes (tests, measured traces).
  static DocumentSizes FromBytes(std::vector<std::uint64_t> bytes);

  int doc_count() const { return static_cast<int>(bytes_.size()); }
  std::uint64_t bytes(DocId d) const;
  // Sum over the catalog: the working set one full copy of everything
  // occupies — the natural unit for per-node budgets (cache_store.h).
  std::uint64_t total_bytes() const { return total_; }
  std::uint64_t max_bytes() const;

 private:
  explicit DocumentSizes(std::vector<std::uint64_t> bytes);

  std::vector<std::uint64_t> bytes_;
  std::uint64_t total_ = 0;
};

}  // namespace webwave
