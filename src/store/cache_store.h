// Finite per-node storage: byte budgets, residency and the deterministic
// admission policy that decides what a full node keeps.
//
// A CacheStore gives every node of the tree a byte budget and tracks, per
// node, the set of documents actually resident.  Residency is decided by
// QuotaWeightedEviction, a pure function of a QuotaSnapshot row: keep the
// copies with the highest quota-rate-per-byte (the value density of the
// placement's own allocation) greedily until the budget is exhausted,
// evict everything below that water line.  Ties break toward the lower
// document id, so the keep set is a deterministic function of (row,
// sizes, budget) — replayable, identical at every thread count and
// lane_block width, with no RNG stream anywhere.
//
// The home (root) server is the authoritative origin of the whole
// catalog, not a cache: it is never budgeted and never evicts (the
// paper's model — the serving plane already routes anything unserved to
// the root).  Everything else competes for its budget across the whole
// catalog at once, which is exactly where placement schemes start to
// differentiate: a scheme that piles quota on few nodes loses more to
// eviction than one that spreads it.
//
// Admission is row-incremental: Admit re-ranks every node, Readmit only
// the nodes whose snapshot rows changed (CapacityProjector feeds it the
// nodes holding dirty-lane cells), reporting which documents' residency
// actually moved so downstream re-projection stays churn-proportional.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/quota_snapshot.h"
#include "store/document_sizes.h"
#include "tree/routing_tree.h"
#include "util/span.h"

namespace webwave {

// The admission policy: one snapshot row in, the keep set out.  Holds
// only sort scratch, so one instance serves any number of rows; the
// decision is a pure function of its arguments.
class QuotaWeightedEviction {
 public:
  // Fills `kept` (cleared first) with the documents of node v's row that
  // fit the budget, ascending doc id, and adds their bytes to
  // *bytes_used: cells are taken in decreasing rate/byte order (ties:
  // lower doc id first), each admitted iff it still fits — smaller
  // documents may slip under a large one that did not.
  void KeepSet(const QuotaSnapshot& snapshot, NodeId v,
               const DocumentSizes& sizes, std::uint64_t budget,
               std::vector<DocId>* kept, std::uint64_t* bytes_used);

 private:
  std::vector<std::int64_t> order_;  // sort scratch, per-row cell indices
};

class CacheStore {
 public:
  // One budget per node; budgets[root] is ignored (the home is the
  // origin, see file comment).
  CacheStore(const RoutingTree& tree, DocumentSizes sizes,
             std::vector<std::uint64_t> budgets);

  // Every non-root node gets the same budget, `multiple` times the
  // catalog working set (sizes.total_bytes()) — the budget axis of the
  // capacity sweeps: 1.0 means every node could hold one copy of
  // everything, 0.1 means a tenth of that.
  static CacheStore WorkingSetStore(const RoutingTree& tree,
                                    DocumentSizes sizes, double multiple);

  const DocumentSizes& sizes() const { return sizes_; }
  NodeId home() const { return home_; }
  int node_count() const { return static_cast<int>(budgets_.size()); }
  std::uint64_t budget(NodeId v) const;
  std::uint64_t bytes_used(NodeId v) const;
  std::uint64_t total_bytes_used() const;

  // Residency after the last Admit/Readmit.  The home is resident for
  // every document by definition.
  bool Resident(NodeId v, DocId d) const;
  const std::vector<DocId>& ResidentDocs(NodeId v) const;
  std::int64_t resident_cells() const { return resident_cells_; }

  // Runs QuotaWeightedEviction over every row of `snapshot`, replacing
  // all residency state.
  void Admit(const QuotaSnapshot& snapshot);

  // Re-ranks only `nodes` (ascending, unique) against their current
  // `snapshot` rows.  Documents whose residency changed at any of the
  // nodes are appended to `changed_docs` (duplicates possible across
  // nodes; the caller dedups).  Rows not listed keep their keep sets —
  // correct whenever their snapshot rows are unchanged, because the keep
  // set is a pure function of the row.
  void Readmit(const QuotaSnapshot& snapshot, Span<const NodeId> nodes,
               std::vector<DocId>* changed_docs);

 private:
  void AdmitRow(const QuotaSnapshot& snapshot, NodeId v);

  DocumentSizes sizes_;
  std::vector<std::uint64_t> budgets_;
  std::vector<std::uint64_t> used_;
  std::vector<std::vector<DocId>> kept_;  // per node, ascending doc id
  std::int64_t resident_cells_ = 0;
  NodeId home_;
  QuotaWeightedEviction policy_;
  std::vector<DocId> row_scratch_;  // Readmit's old-keep-set copy
};

}  // namespace webwave
