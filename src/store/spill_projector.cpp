#include "store/spill_projector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace webwave {

SpillProjector::SpillProjector(const RoutingTree& tree) : tree_(tree) {
  spill_.assign(static_cast<std::size_t>(tree.size()), 0.0);
}

double SpillProjector::spilled_rate() const {
  double total = 0;
  for (const double s : doc_spill_) total += s;
  return total;
}

std::int64_t SpillProjector::evicted_cells() const {
  std::int64_t total = 0;
  for (const std::int64_t e : doc_evicted_) total += e;
  return total;
}

void SpillProjector::PublishMetrics(MetricRegistry* registry,
                                    const std::string& prefix) const {
  registry->Set(registry->Gauge(prefix + "evicted_cells"), evicted_cells());
  registry->Set(registry->Gauge(prefix + "spilled_rate_micros"),
                std::llround(spilled_rate() * 1e6));
  registry->Set(registry->Gauge(prefix + "affected_docs"),
                static_cast<std::int64_t>(last_affected_.size()));
}

bool SpillProjector::ConservesTotalRate(const QuotaSnapshot& base,
                                        double rel_tol) const {
  return std::abs(clamped_.total_rate() - base.total_rate()) <=
         rel_tol * (1.0 + std::abs(base.total_rate()));
}

void SpillProjector::ProjectDoc(const QuotaSnapshot& base, std::int32_t d) {
  const Span<const NodeId> nodes = base.DocNodes(d);
  const Span<const std::int64_t> cells = base.DocCells(d);
  const double* rates = base.cell_rates();
  const double* fracs = base.cell_fractions();
  const NodeId home = tree_.root();
  std::vector<DocCell>& out = doc_scratch_[static_cast<std::size_t>(d)];
  out.clear();

  // Pass 1 — excised copies spill their whole quota onto the nearest
  // surviving ancestor copy (the home at worst; Survives is true there,
  // so the climb terminates before running off the root).  Cells are
  // visited node-ascending, so the spill sums accumulate in a fixed
  // order no matter how the snapshot was produced.
  double spilled = 0;
  std::int64_t evicted = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v = nodes[i];
    if (Survives(base, v, d)) continue;
    const double q = rates[cells[i]];
    NodeId u = tree_.parent(v);
    while (!Survives(base, u, d)) u = tree_.parent(u);
    if (spill_[static_cast<std::size_t>(u)] == 0.0) spill_touched_.push_back(u);
    spill_[static_cast<std::size_t>(u)] += q;
    spilled += q;
    ++evicted;
  }

  // Pass 2 — emit the surviving copies.  A cell with no spill passes
  // through bit-identical; a spill target's quota grows by S and its
  // fraction is recomputed against the arrival flow implied by the base
  // fraction (A = q/f), which also grew by S — the excised copies
  // between the target and the spill sources absorb nothing anymore.
  bool home_has_cell = false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId v = nodes[i];
    if (!Survives(base, v, d)) continue;
    const double q = rates[cells[i]];
    const double f = fracs[cells[i]];
    const double s = spill_[static_cast<std::size_t>(v)];
    if (v == home) home_has_cell = true;
    if (s == 0.0) {
      out.push_back({v, q, f});
    } else {
      const double arrive = f >= 1.0 ? q : q / f;
      out.push_back({v, q + s, std::min(1.0, (q + s) / (arrive + s))});
    }
  }
  const double home_spill = spill_[static_cast<std::size_t>(home)];
  if (!home_has_cell && home_spill > 0.0) {
    // The document had no home copy in the base snapshot (everything was
    // absorbed below); the spilled remainder materializes one.
    const DocCell cell{home, home_spill, 1.0};
    out.insert(std::lower_bound(out.begin(), out.end(), cell,
                                [](const DocCell& a, const DocCell& b) {
                                  return a.node < b.node;
                                }),
               cell);
  }

  for (const NodeId u : spill_touched_)
    spill_[static_cast<std::size_t>(u)] = 0.0;
  spill_touched_.clear();
  doc_spill_[static_cast<std::size_t>(d)] = spilled;
  doc_evicted_[static_cast<std::size_t>(d)] = evicted;
}

void SpillProjector::Assemble(const std::vector<std::int32_t>& affected) {
  const int nodes = tree_.size();
  const int docs = static_cast<int>(doc_scratch_.size());
  std::vector<std::uint8_t> is_affected(static_cast<std::size_t>(docs), 0);
  for (const std::int32_t d : affected)
    is_affected[static_cast<std::size_t>(d)] = 1;

  // Counting sort of the fresh cells by node; filling document-ascending
  // makes every node's slice doc-ascending, the CSR row order.
  std::vector<std::int64_t> off(static_cast<std::size_t>(nodes) + 1, 0);
  std::size_t fresh_count = 0;
  for (const std::int32_t d : affected) {
    const std::vector<DocCell>& col = doc_scratch_[static_cast<std::size_t>(d)];
    fresh_count += col.size();
    for (const DocCell& c : col) ++off[static_cast<std::size_t>(c.node) + 1];
  }
  for (int v = 0; v < nodes; ++v)
    off[static_cast<std::size_t>(v) + 1] += off[static_cast<std::size_t>(v)];
  std::vector<std::int32_t> fresh_doc(fresh_count);
  std::vector<double> fresh_rate(fresh_count);
  std::vector<double> fresh_frac(fresh_count);
  std::vector<std::int64_t> fill(off.begin(), off.end() - 1);
  for (const std::int32_t d : affected)
    for (const DocCell& c : doc_scratch_[static_cast<std::size_t>(d)]) {
      const std::size_t slot =
          static_cast<std::size_t>(fill[static_cast<std::size_t>(c.node)]++);
      fresh_doc[slot] = d;
      fresh_rate[slot] = c.rate;
      fresh_frac[slot] = c.frac;
    }

  // Merge with the previous clamped cells of unaffected documents, row by
  // row — the structural-merge shape of QuotaSnapshot::RefreshFromBatch.
  // On the first projection every document is affected and the old
  // snapshot is empty, so this degenerates to a straight fill.
  const bool has_old = !clamped_.row_off_.empty();
  QuotaSnapshot merged;
  merged.nodes_ = nodes;
  merged.docs_ = docs;
  merged.row_off_.assign(static_cast<std::size_t>(nodes) + 1, 0);
  const std::size_t reserve = clamped_.doc_.size() + fresh_count;
  merged.doc_.reserve(reserve);
  merged.rate_.reserve(reserve);
  merged.frac_.reserve(reserve);
  for (NodeId v = 0; v < nodes; ++v) {
    std::int64_t old = has_old ? clamped_.row_begin(v) : 0;
    const std::int64_t old_end = has_old ? clamped_.row_end(v) : 0;
    std::int64_t fr = off[static_cast<std::size_t>(v)];
    const std::int64_t fr_end = off[static_cast<std::size_t>(v) + 1];
    while (true) {
      while (old < old_end &&
             is_affected[static_cast<std::size_t>(
                 clamped_.doc_[static_cast<std::size_t>(old)])])
        ++old;
      const bool take_old = old < old_end;
      const bool take_fresh = fr < fr_end;
      if (!take_old && !take_fresh) break;
      // An affected document never survives in the old row, so the two
      // doc sequences are disjoint and a strict comparison merges them.
      if (take_fresh &&
          (!take_old || fresh_doc[static_cast<std::size_t>(fr)] <
                            clamped_.doc_[static_cast<std::size_t>(old)])) {
        merged.doc_.push_back(fresh_doc[static_cast<std::size_t>(fr)]);
        merged.rate_.push_back(fresh_rate[static_cast<std::size_t>(fr)]);
        merged.frac_.push_back(fresh_frac[static_cast<std::size_t>(fr)]);
        merged.total_ += fresh_rate[static_cast<std::size_t>(fr)];
        ++fr;
      } else {
        merged.doc_.push_back(clamped_.doc_[static_cast<std::size_t>(old)]);
        merged.rate_.push_back(clamped_.rate_[static_cast<std::size_t>(old)]);
        merged.frac_.push_back(clamped_.frac_[static_cast<std::size_t>(old)]);
        merged.total_ += clamped_.rate_[static_cast<std::size_t>(old)];
        ++old;
      }
    }
    merged.row_off_[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(merged.doc_.size());
  }
  merged.BuildColumnIndex();  // Reproject's in-place path needs the columns
  clamped_ = std::move(merged);
}

void SpillProjector::ProjectAll(const QuotaSnapshot& base) {
  WEBWAVE_REQUIRE(base.node_count() == tree_.size(),
                  "snapshot does not match the tree");
  const int docs = base.doc_count();
  doc_spill_.assign(static_cast<std::size_t>(docs), 0.0);
  doc_evicted_.assign(static_cast<std::size_t>(docs), 0);
  doc_scratch_.resize(static_cast<std::size_t>(docs));
  std::vector<std::int32_t> all(static_cast<std::size_t>(docs));
  for (int d = 0; d < docs; ++d) all[static_cast<std::size_t>(d)] = d;
  for (const std::int32_t d : all) ProjectDoc(base, d);
  clamped_ = QuotaSnapshot();  // Assemble merges against an empty snapshot
  Assemble(all);
  last_affected_ = std::move(all);
  projected_ = true;
}

bool SpillProjector::Reproject(const QuotaSnapshot& base,
                               const std::vector<std::int32_t>& affected) {
  WEBWAVE_REQUIRE(projected_, "Reproject needs a prior ProjectAll");
  last_affected_ = affected;
  if (affected.empty()) return true;

  for (const std::int32_t d : affected) ProjectDoc(base, d);

  // In-place when every affected document kept its clamped copy set:
  // rewrite rates and fractions through the column index, applying rate
  // deltas to the total (the one field that may drift ulps versus a full
  // projection, exactly like RefreshFromBatch's in-place path).
  bool same_shape = true;
  for (const std::int32_t d : affected) {
    const Span<const NodeId> old_nodes = clamped_.DocNodes(d);
    const std::vector<DocCell>& fresh =
        doc_scratch_[static_cast<std::size_t>(d)];
    if (old_nodes.size() != fresh.size()) {
      same_shape = false;
      break;
    }
    for (std::size_t i = 0; same_shape && i < fresh.size(); ++i)
      same_shape = old_nodes[i] == fresh[i].node;
    if (!same_shape) break;
  }
  if (same_shape) {
    for (const std::int32_t d : affected) {
      const Span<const std::int64_t> cells = clamped_.DocCells(d);
      const std::vector<DocCell>& fresh =
          doc_scratch_[static_cast<std::size_t>(d)];
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        const std::size_t cell = static_cast<std::size_t>(cells[i]);
        clamped_.total_ += fresh[i].rate - clamped_.rate_[cell];
        clamped_.rate_[cell] = fresh[i].rate;
        clamped_.frac_[cell] = fresh[i].frac;
      }
    }
    return true;
  }
  Assemble(affected);
  return false;
}

}  // namespace webwave
