// Shared up-tree spill machinery for snapshot projections that delete
// copies and conserve their quota.
//
// Two subsystems clamp a QuotaSnapshot by removing copies and re-homing
// their service rate: the capacity layer (a finite CacheStore evicts what
// does not fit, store/capacity_projector) and the fault plane (a crashed
// node's copies vanish, fault/fault_projector).  Both obey the same spill
// law — an excised copy's quota moves up the tree onto the nearest
// *surviving* copy of the same document, the home at worst (a home cell
// is synthesized when the base snapshot had none), serve fractions are
// re-derived as (q+S)/(A+S) against the arrival flow A = q/f, untouched
// cells pass through bit-identical, and total rate is conserved by
// construction.  SpillProjector is that law factored out once: a
// subclass supplies only the survivor predicate (store residency, crash
// sets) and the incremental bookkeeping that decides *which* documents to
// re-project; the per-document projection, the CSR merge/assembly, the
// in-place value rewrite and the conservation check live here.
//
// Everything is a pure serial function of (base snapshot, predicate
// state): deterministic across thread counts and lane_block widths, so
// the engine's bit-identity guarantees carry through any projection
// stack (capacity, faults, or both chained) untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "serve/quota_snapshot.h"
#include "tree/routing_tree.h"
#include "util/span.h"

namespace webwave {

class SpillProjector {
 public:
  virtual ~SpillProjector() = default;

  SpillProjector(const SpillProjector&) = delete;
  SpillProjector& operator=(const SpillProjector&) = delete;

  // The clamped snapshot of the last ProjectAll/Reproject.
  const QuotaSnapshot& clamped() const { return clamped_; }

  // Stats of the last projection: total quota rate moved up-tree, and
  // how many base cells the predicate rejected.
  double spilled_rate() const;
  std::int64_t evicted_cells() const;

  // The documents the last ProjectAll/Reproject re-projected (ascending)
  // — every clamped cell outside these columns is untouched.  Chained
  // projectors feed this to the next layer's refresh.
  Span<const std::int32_t> last_affected_docs() const {
    return Span<const std::int32_t>(last_affected_.data(),
                                    last_affected_.size());
  }

  // Publishes the last projection's stats into `registry` as gauges:
  // "<prefix>evicted_cells", "<prefix>spilled_rate_micros" (the spilled
  // quota rate in integer micro-units — the registry is integer-only so
  // identity assertions stay exact) and "<prefix>affected_docs".  The
  // EpochDriver calls this each epoch with "capacity." / "fault.".
  void PublishMetrics(MetricRegistry* registry,
                      const std::string& prefix) const;

  // The spill invariant, checkable against the snapshot the last
  // projection consumed: |clamped total − base total| within rel_tol
  // relatively (total_rate is the one field that may drift ulps on the
  // in-place refresh path).  The benches assert this every projection.
  bool ConservesTotalRate(const QuotaSnapshot& base,
                          double rel_tol = 1e-6) const;

 protected:
  explicit SpillProjector(const RoutingTree& tree);

  // Does (v, d) keep its copy under this projection?  Must return true
  // at the root — the home is the authoritative origin, and the spill
  // climb terminates there.  Called only while a ProjectAll/Reproject is
  // consuming `base`.
  virtual bool Survives(const QuotaSnapshot& base, NodeId v,
                        std::int32_t d) const = 0;

  // Full projection of every document; replaces the clamped snapshot and
  // all stats.  Requires base.node_count() == tree size.
  void ProjectAll(const QuotaSnapshot& base);

  // Incremental re-projection (requires a prior ProjectAll): re-projects
  // exactly `affected` (ascending, unique) — the subclass promises every
  // other document's base column *and* predicate outcomes are unchanged.
  // When every affected document kept its clamped copy set, cell values
  // are rewritten in place through the column index (total_rate by
  // deltas); otherwise clean rows and fresh cells merge into a rebuilt
  // CSR.  Either way the result is cell-identical to a full ProjectAll.
  // Returns true when the in-place path sufficed.
  bool Reproject(const QuotaSnapshot& base,
                 const std::vector<std::int32_t>& affected);

  bool projected() const { return projected_; }

  const RoutingTree& tree_;

 private:
  // One clamped cell of a single document's projection.
  struct DocCell {
    NodeId node;
    double rate;
    double frac;
  };

  // Computes document d's clamped cells from the base column into
  // doc_scratch_[d] (node ascending) and refreshes doc_spill_[d] /
  // doc_evicted_[d].
  void ProjectDoc(const QuotaSnapshot& base, std::int32_t d);
  // Rebuilds clamped_ from scratch rows `fresh` (sorted by (node, doc))
  // merged with the current clamped cells of unaffected documents; with
  // every document affected this is the full assembly.
  void Assemble(const std::vector<std::int32_t>& affected);

  QuotaSnapshot clamped_;
  bool projected_ = false;

  std::vector<double> doc_spill_;          // per document, last projection
  std::vector<std::int64_t> doc_evicted_;  // per document, last projection
  std::vector<std::vector<DocCell>> doc_scratch_;  // per-doc clamped cells
  std::vector<std::int32_t> last_affected_;        // see accessor

  // Per-node scratch for one document's spill pass.
  std::vector<double> spill_;
  std::vector<NodeId> spill_touched_;
};

}  // namespace webwave
