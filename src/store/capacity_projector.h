// Clamping a quota snapshot to finite storage: eviction + up-tree spill.
//
// The control plane's QuotaSnapshot assumes every copy it places can be
// materialized; a CacheStore says otherwise.  CapacityProjector connects
// the two: Project runs the store's admission over the base snapshot and
// emits a *clamped* snapshot containing only resident copies, with every
// evicted copy's quota spilled up the tree onto the nearest surviving
// copy of the same document (the home at worst — it is always resident).
// The serving plane then routes against the clamped snapshot, so requests
// walk past evicted nodes exactly as if the copy had never been placed,
// and the spill target's enlarged quota absorbs what the evicted copy
// would have served.  Total rate is conserved by construction:
// clamped.total_rate() == base.total_rate() up to summation order.
//
// Spill semantics per document: let A_v = q_v / f_v be the flow that
// arrived at copy v under the base snapshot (f_v its serve fraction; f_v
// = 1 means the copy owned everything that reached it, A_v = q_v).  An
// evicted copy forwards its whole arrival, and by definition of "nearest
// surviving ancestor" nothing between v and its target u can absorb it,
// so u's arrival grows by exactly the spilled quota S_u and its clamped
// cell becomes rate q_u + S_u with fraction min(1, (q_u + S_u) /
// (A_u + S_u)).  A document whose spill reaches a home with no cell of
// its own gets one synthesized there (fraction 1 — the home serves
// whatever arrives).  Untouched cells pass through bit-identical, so an
// over-provisioned store (budget >= working set everywhere) clamps to
// exactly the base snapshot.
//
// Refresh is the churn-proportional path, mirroring
// QuotaSnapshot::RefreshFromBatch one layer down: given the freshly
// re-synced base snapshot and the engine's dirty-lane set, it re-ranks
// admission only at nodes whose rows hold dirty cells (or held resident
// ones), then re-projects dirty lanes ∪ documents whose residency moved
// — capacity couples documents through the shared byte budget, so a
// dirty lane can evict a clean lane's copy, and the union is exactly the
// set whose clamped cells can change.  When no copy set and no residency
// changed shape, cell values are rewritten in place through the clamped
// snapshot's column index; otherwise clean rows and fresh cells merge
// into a rebuilt CSR.  Either way the result is cell-identical to a full
// Project(base) (asserted under ChurnSchedule churn by store_test).
//
// Everything here is a pure serial function of (base, store state):
// deterministic across thread counts and lane_block widths by
// construction — the engine's bit-identity guarantees carry through the
// store untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/quota_snapshot.h"
#include "store/cache_store.h"
#include "tree/routing_tree.h"
#include "util/span.h"

namespace webwave {

class CapacityProjector {
 public:
  CapacityProjector(const RoutingTree& tree, CacheStore store);

  // Full projection: admission at every node, then every document's
  // spill resolved.  Replaces the clamped snapshot and all stats.
  void Project(const QuotaSnapshot& base);

  // Incremental re-projection after a closed-loop epoch (requires a
  // prior Project): `base` must be the maintained snapshot *after* its
  // RefreshFromBatch, `dirty_lanes` the engine's dirty set that drove
  // it (ascending).  Returns true when the clamped CSR shape held and
  // values were rewritten in place.
  bool Refresh(const QuotaSnapshot& base, Span<const int> dirty_lanes);

  const QuotaSnapshot& clamped() const { return clamped_; }
  const CacheStore& store() const { return store_; }

  // Stats of the last projection: total quota rate moved up-tree, and
  // how many base cells were evicted.
  double spilled_rate() const;
  std::int64_t evicted_cells() const;

  // The spill invariant, checkable against the snapshot the last
  // projection consumed: |clamped total − base total| within rel_tol
  // relatively (total_rate is the one field that may drift ulps on the
  // in-place refresh path).  The benches assert this every projection.
  bool ConservesTotalRate(const QuotaSnapshot& base,
                          double rel_tol = 1e-6) const;

 private:
  // One clamped cell of a single document's projection.
  struct DocCell {
    NodeId node;
    double rate;
    double frac;
  };

  // Computes document d's clamped cells from the base column into
  // doc_scratch_[d] (node ascending) and refreshes doc_spill_[d] /
  // doc_evicted_[d].
  void ProjectDoc(const QuotaSnapshot& base, std::int32_t d);
  // Rebuilds clamped_ from scratch rows `fresh` (sorted by (node, doc))
  // merged with the current clamped cells of unaffected documents; with
  // every document affected this is the full assembly.
  void Assemble(const std::vector<std::int32_t>& affected);

  const RoutingTree& tree_;
  CacheStore store_;
  QuotaSnapshot clamped_;
  bool projected_ = false;

  std::vector<double> doc_spill_;          // per document, last projection
  std::vector<std::int64_t> doc_evicted_;  // per document, last projection
  std::vector<std::vector<DocCell>> doc_scratch_;  // per-doc clamped cells

  // Per-node scratch for one document's spill pass.
  std::vector<double> spill_;
  std::vector<NodeId> spill_touched_;
};

}  // namespace webwave
