// Clamping a quota snapshot to finite storage: eviction + up-tree spill.
//
// The control plane's QuotaSnapshot assumes every copy it places can be
// materialized; a CacheStore says otherwise.  CapacityProjector connects
// the two: Project runs the store's admission over the base snapshot and
// emits a *clamped* snapshot containing only resident copies, with every
// evicted copy's quota spilled up the tree onto the nearest surviving
// copy of the same document (the home at worst — it is always resident).
// The serving plane then routes against the clamped snapshot, so requests
// walk past evicted nodes exactly as if the copy had never been placed,
// and the spill target's enlarged quota absorbs what the evicted copy
// would have served.
//
// The spill law itself — nearest-surviving-ancestor re-homing, fraction
// re-derivation (q+S)/(A+S), home-cell synthesis, bit-identical
// pass-through of untouched cells, conservation of total rate — lives in
// SpillProjector (store/spill_projector.h), shared with the fault
// plane's FaultProjector; this class contributes only the survivor
// predicate (store residency) and the churn-proportional bookkeeping.
//
// Refresh is the churn-proportional path, mirroring
// QuotaSnapshot::RefreshFromBatch one layer down: given the freshly
// re-synced base snapshot and the engine's dirty-lane set, it re-ranks
// admission only at nodes whose rows hold dirty cells (or held resident
// ones), then re-projects dirty lanes ∪ documents whose residency moved
// — capacity couples documents through the shared byte budget, so a
// dirty lane can evict a clean lane's copy, and the union is exactly the
// set whose clamped cells can change.  The result is cell-identical to a
// full Project(base) (asserted under ChurnSchedule churn by store_test).
//
// Everything here is a pure serial function of (base, store state):
// deterministic across thread counts and lane_block widths by
// construction — the engine's bit-identity guarantees carry through the
// store untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/quota_snapshot.h"
#include "store/cache_store.h"
#include "store/spill_projector.h"
#include "tree/routing_tree.h"
#include "util/span.h"

namespace webwave {

class CapacityProjector : public SpillProjector {
 public:
  CapacityProjector(const RoutingTree& tree, CacheStore store);

  // Full projection: admission at every node, then every document's
  // spill resolved.  Replaces the clamped snapshot and all stats.
  void Project(const QuotaSnapshot& base);

  // Incremental re-projection after a closed-loop epoch (requires a
  // prior Project): `base` must be the maintained snapshot *after* its
  // RefreshFromBatch, `dirty_lanes` the engine's dirty set that drove
  // it (ascending).  Returns true when the clamped CSR shape held and
  // values were rewritten in place.
  bool Refresh(const QuotaSnapshot& base, Span<const int> dirty_lanes);

  const CacheStore& store() const { return store_; }

 protected:
  // A copy survives iff the store kept it resident (the home is resident
  // for the whole catalog by definition).
  bool Survives(const QuotaSnapshot& base, NodeId v,
                std::int32_t d) const override;

 private:
  CacheStore store_;
};

}  // namespace webwave
