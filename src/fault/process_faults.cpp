#include "fault/process_faults.h"

#include "util/check.h"

namespace webwave {

std::vector<int> ProcessFaultPlan::DeadServers(int epoch) const {
  std::vector<int> out;
  const auto& dead = dead_at[static_cast<std::size_t>(epoch)];
  for (std::size_t s = 0; s < dead.size(); ++s)
    if (dead[s]) out.push_back(static_cast<int>(s));
  return out;
}

ProcessFaultPlan BuildProcessFaultPlan(int server_count, int epochs,
                                       const FaultScheduleOptions& options) {
  WEBWAVE_REQUIRE(server_count >= 1 && epochs >= 1,
                  "a fault plan needs a fleet and at least one epoch");
  WEBWAVE_REQUIRE(options.start_epoch >= 1,
                  "epoch 0 must be fault-free: daemons boot into it");
  // The fleet star: node s = server s, everyone a child of server 0.
  std::vector<NodeId> parents(static_cast<std::size_t>(server_count),
                              kNoNode);
  for (int s = 1; s < server_count; ++s)
    parents[static_cast<std::size_t>(s)] = 0;
  const RoutingTree star = RoutingTree::FromParents(parents);
  const FaultSchedule schedule(star, options);

  ProcessFaultPlan plan;
  plan.kill_at.resize(static_cast<std::size_t>(epochs));
  plan.restart_at.resize(static_cast<std::size_t>(epochs));
  plan.dead_at.assign(static_cast<std::size_t>(epochs),
                      std::vector<bool>(
                          static_cast<std::size_t>(server_count), false));
  std::vector<bool> prev(static_cast<std::size_t>(server_count), false);
  for (int e = 0; e < epochs; ++e) {
    for (const NodeId v : schedule.DownSet(e))
      plan.dead_at[static_cast<std::size_t>(e)][static_cast<std::size_t>(
          v)] = true;
    for (int s = 0; s < server_count; ++s) {
      const bool now =
          plan.dead_at[static_cast<std::size_t>(e)][static_cast<std::size_t>(
              s)];
      if (now && !prev[static_cast<std::size_t>(s)]) {
        plan.kill_at[static_cast<std::size_t>(e)].push_back(s);
        plan.any = true;
      } else if (!now && prev[static_cast<std::size_t>(s)]) {
        plan.restart_at[static_cast<std::size_t>(e)].push_back(s);
      }
      prev[static_cast<std::size_t>(s)] = now;
    }
  }
  WEBWAVE_REQUIRE(plan.kill_at[0].empty() && plan.restart_at[0].empty(),
                  "epoch 0 must be fault-free");
  return plan;
}

}  // namespace webwave
