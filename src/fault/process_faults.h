// Process-level fault plans: FaultSchedule mapped onto a server fleet.
//
// fault/fault_schedule.h decides which *tree nodes* are down per epoch.
// The netd fleet needs the same decisions one level up: which *daemon
// processes* are dead during which epochs, and at which epoch boundaries
// a process must be SIGKILLed or re-forked.  BuildProcessFaultPlan
// evaluates a FaultSchedule over the "fleet star" — a synthetic tree
// with one node per server, every server a child of server 0 — so the
// schedule's node space *is* the server space: the root (server 0, which
// owns the carved tree's root) is never down, the fault-free prefix
// before start_epoch gives every run a clean baseline, and whether
// server s is dead during epoch e is the same pure (seed, s, e) function
// as every other fault decision in the repo.
//
// The plan is pure data (no live schedule state), so the cluster
// harness, the oracle builder and the tests can all consume the same
// plan object and agree on every transition by construction.
#pragma once

#include <vector>

#include "fault/fault_schedule.h"

namespace webwave {

struct ProcessFaultPlan {
  // Index = epoch.  kill_at[e] / restart_at[e] are the servers killed /
  // re-forked at the boundary *entering* epoch e (ascending, disjoint);
  // dead_at[e][s] says whether server s is dead while epoch e serves.
  std::vector<std::vector<int>> kill_at;
  std::vector<std::vector<int>> restart_at;
  std::vector<std::vector<bool>> dead_at;
  bool any = false;  // at least one kill somewhere in the plan

  // The dead set of `epoch`, ascending — convenience for re-homing.
  std::vector<int> DeadServers(int epoch) const;
};

// Evaluates `options` over the fleet star of `server_count` servers for
// `epochs` epochs.  Requires server_count >= 1 and options.start_epoch
// >= 1 (epoch 0 must be fault-free: daemons boot into it).
ProcessFaultPlan BuildProcessFaultPlan(int server_count, int epochs,
                                       const FaultScheduleOptions& options);

}  // namespace webwave
