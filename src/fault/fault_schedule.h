// Deterministic topology-fault schedules: crash/recover and link events.
//
// ROADMAP item 4 names topology events — caches that join, serve, and
// vanish — as the scenario family demand churn cannot express.
// FaultSchedule generalizes ChurnSchedule (sim/churn.h) from demand
// events to *topology* events: per epoch it emits the crash/recover
// transitions of a node-outage process plus the link-plane degradation
// (gossip-loss/latency bursts) active that epoch.  Three outage shapes:
//
//   * kSingleNodes   — every non-root node is independently down.
//   * kLeafCohort    — a random cohort of non-root leaves is down (the
//                      WebCloud-style ephemeral edge tier: client caches
//                      that joined, served, and vanished).
//   * kSubtreeOutage — one whole subtree is down (a regional outage: the
//                      router above a neighborhood died).
//
// Determinism is counter-based, exactly like the demand side: whether
// node v is down at epoch e is a pure function of (seed, v, e) — no
// stateful RNG stream anywhere — so any consumer can replay, diff, or
// query the schedule from any position, and runs are bit-identical at
// every thread count and lane_block width by construction.  Outages
// persist for outage_epochs epochs (the draw is per *window*
// w = (e - start_epoch) / outage_epochs), the home (root) is never down
// — it is the authoritative origin; a dead home is an unpublished
// catalog, not a degraded one — and epochs before start_epoch are
// fault-free so every run has a clean baseline to degrade from.
//
// NextEvents() advances one epoch and returns the sparse transition
// batch (crashes and recoveries in ascending node order), the shape
// FaultProjector::Refresh consumes; DownAt/DownSet expose the underlying
// pure predicate for from-scratch checks.  LinkAt exposes the epoch's
// gossip degradation, which proto/packet_sim consumes as gossip bursts
// (PacketSimOptions::gossip_bursts extends the static gossip_loss knob).
#pragma once

#include <cstdint>
#include <vector>

#include "tree/routing_tree.h"

namespace webwave {

enum class FaultPattern {
  kSingleNodes,
  kLeafCohort,
  kSubtreeOutage,
};

const char* FaultPatternName(FaultPattern pattern);

enum class FaultKind { kCrash, kRecover };

struct FaultEvent {
  FaultKind kind;
  NodeId node;
};

// Link-plane degradation active during one epoch: gossip messages are
// lost with probability gossip_loss, surviving ones delayed by
// extra_latency_ms on top of the base link latency.
struct LinkFault {
  double gossip_loss = 0.0;
  double extra_latency_ms = 0.0;
};

struct FaultScheduleOptions {
  FaultPattern pattern = FaultPattern::kLeafCohort;
  // kSingleNodes / kLeafCohort: share of candidate nodes down per window.
  double crash_fraction = 0.05;
  // Epochs an outage persists; the down set is redrawn every window.
  int outage_epochs = 2;
  // Epochs before this are fault-free (the degradation baseline).
  int start_epoch = 1;
  // kSubtreeOutage: the dead subtree holds at most this share of the
  // tree's nodes (whole-tree "outages" are unpublished catalogs, not
  // fault tolerance scenarios).
  double max_subtree_fraction = 0.05;
  // Link plane: each window independently carries a gossip burst with
  // this probability; an active burst loses gossip messages at
  // burst_gossip_loss and delays the survivors by burst_extra_latency_ms.
  double burst_probability = 0.0;
  double burst_gossip_loss = 0.5;
  double burst_extra_latency_ms = 0.0;
  std::uint64_t seed = 1;
};

class FaultSchedule {
 public:
  FaultSchedule(const RoutingTree& tree, FaultScheduleOptions options);

  int epoch() const { return epoch_; }
  const FaultScheduleOptions& options() const { return options_; }

  // Pure predicate: is node v down at `epoch`?  The root never is.
  bool DownAt(int epoch, NodeId v) const;

  // All nodes down at `epoch`, ascending — a from-scratch evaluation of
  // the predicate (the tests diff it against the event stream).
  std::vector<NodeId> DownSet(int epoch) const;

  // The down set at the current epoch (maintained incrementally by
  // NextEvents), ascending.
  const std::vector<NodeId>& down() const { return down_; }

  // Advances one epoch and returns the transitions from the previous
  // epoch's down set to the new one, ascending by node (a crash for
  // every newly down node, a recovery for every newly live one).  Most
  // epochs inside a window return no events.
  std::vector<FaultEvent> NextEvents();

  // The link-plane degradation active at `epoch` (pure; zero before
  // start_epoch and in windows whose burst draw missed).
  LinkFault LinkAt(int epoch) const;

 private:
  // Window index of `epoch`, or -1 in the fault-free prefix.
  int WindowOf(int epoch) const;
  // kSubtreeOutage: the subtree root down in `window`.
  NodeId OutageRootAt(int window) const;

  const RoutingTree& tree_;
  FaultScheduleOptions options_;
  int epoch_ = 0;
  std::vector<NodeId> candidates_;  // pattern-dependent, ascending
  std::vector<NodeId> down_;        // current epoch's down set
};

}  // namespace webwave
