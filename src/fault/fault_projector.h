// Re-homing quota around crashed nodes: the fault plane's projector.
//
// FaultProjector consumes crash/recover events exactly the way
// CapacityProjector consumes byte budgets: given a base QuotaSnapshot and
// the current down set, Project emits a clamped snapshot in which every
// crashed node's copies have vanished and each lost copy's quota has
// spilled up the tree onto the nearest *live* ancestor that holds a copy
// of the same document (the home at worst — the home never crashes; see
// fault/fault_schedule.h).  Total rate is conserved: a crash moves
// service, it never destroys it.  The spill law — ancestor climb,
// fraction re-derivation (q+S)/(A+S), home-cell synthesis, bit-identical
// pass-through of untouched cells — is SpillProjector's
// (store/spill_projector.h), shared with the capacity plane; this class
// contributes only the survivor predicate: live and holding a base copy.
//
// Refresh is the event-proportional path: given the transition batch from
// FaultSchedule::NextEvents (plus the demand-side dirty lanes, if the
// base itself moved this epoch), it re-projects only the documents whose
// clamped cells can differ — the dirty lanes plus every document in a
// transitioned node's base row.  That union is exact: a crash or
// recovery at node v only re-routes quota belonging to documents v holds
// a base copy of (live nodes without a copy never absorb spill, so
// transit nodes cannot couple other documents in).  The result is
// cell-identical to a full Project against the same down set (asserted
// by fault_test across interleaved churn and fault epochs).
//
// Layering under finite storage: run CapacityProjector first and feed
// its clamped() snapshot here as the base.  Then a crashed node's
// *resident* copies spill to live resident ancestors, and a recovery
// re-admits exactly the copies the store's admission kept — the
// capacity plane decides residency, the fault plane decides liveness.
// When the capacity refresh rebuilt cells this epoch, union its
// last_affected_docs() into dirty_lanes so the fault refresh re-reads
// every base row that moved.
//
// Pure serial functions of (base, down set) throughout — bit-identical
// at every thread count and lane_block width by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_schedule.h"
#include "serve/quota_snapshot.h"
#include "store/spill_projector.h"
#include "tree/routing_tree.h"
#include "util/span.h"

namespace webwave {

class FaultProjector : public SpillProjector {
 public:
  explicit FaultProjector(const RoutingTree& tree);

  // Replaces the down set (no projection).  Nodes must be in range,
  // unique after sorting, and never the root — a dead home is an
  // unpublished catalog, not a fault-tolerance scenario.
  void SetDown(Span<const NodeId> down);

  // Full projection of `base` against the current down set.
  void Project(const QuotaSnapshot& base);

  // Applies crash/recover transitions to the down set without
  // projecting anything; the transitioned nodes accumulate and the next
  // Refresh re-projects their rows.  Splitting the event intake from
  // the re-projection gives this class the same epoch surface as
  // CapacityProjector — one Project(base) / Refresh(base, dirty_lanes)
  // shape per projector, whatever its survivor predicate (see
  // store/README.md).
  void ApplyEvents(Span<const FaultEvent> events);

  // Event-proportional re-projection (requires a prior Project):
  // re-projects `dirty_lanes` (the demand-side lanes whose base cells
  // moved this epoch; empty when the base is unchanged) plus every
  // document in the base row of a node ApplyEvents transitioned since
  // the last projection.  Returns true when the clamped CSR shape held
  // and values were rewritten in place.  Signature-compatible with
  // CapacityProjector::Refresh.
  bool Refresh(const QuotaSnapshot& base, Span<const int> dirty_lanes);

  // Convenience composition of ApplyEvents + Refresh (the historical
  // one-call form).
  bool Refresh(const QuotaSnapshot& base, Span<const FaultEvent> events,
               Span<const int> dirty_lanes);

  // The current down set, ascending — the shape ServingPlane::SetDownNodes
  // consumes.
  const std::vector<NodeId>& down() const { return down_; }
  bool IsDown(NodeId v) const;

 protected:
  // A copy survives iff its node is live and holds a base copy; the root
  // is always live and absorbs any remainder (home-cell synthesis).
  bool Survives(const QuotaSnapshot& base, NodeId v,
                std::int32_t d) const override;

 private:
  std::vector<NodeId> down_;             // ascending
  std::vector<std::uint8_t> down_mask_;  // per node, 1 = crashed
  // Nodes ApplyEvents transitioned since the last Project/Refresh; their
  // base rows join the next Refresh's affected set.
  std::vector<NodeId> pending_transitions_;
};

}  // namespace webwave
