#include "fault/fault_projector.h"

#include <algorithm>

#include "util/check.h"

namespace webwave {

FaultProjector::FaultProjector(const RoutingTree& tree)
    : SpillProjector(tree),
      down_mask_(static_cast<std::size_t>(tree.size()), 0) {}

void FaultProjector::SetDown(Span<const NodeId> down) {
  std::fill(down_mask_.begin(), down_mask_.end(), 0);
  down_.assign(down.begin(), down.end());
  std::sort(down_.begin(), down_.end());
  down_.erase(std::unique(down_.begin(), down_.end()), down_.end());
  for (const NodeId v : down_) {
    WEBWAVE_REQUIRE(v >= 0 && v < tree_.size(), "down node out of range");
    WEBWAVE_REQUIRE(!tree_.is_root(v), "the home never crashes");
    down_mask_[static_cast<std::size_t>(v)] = 1;
  }
}

bool FaultProjector::IsDown(NodeId v) const {
  WEBWAVE_REQUIRE(v >= 0 && v < tree_.size(), "node out of range");
  return down_mask_[static_cast<std::size_t>(v)] != 0;
}

bool FaultProjector::Survives(const QuotaSnapshot& base, NodeId v,
                              std::int32_t d) const {
  if (tree_.is_root(v)) return true;
  if (down_mask_[static_cast<std::size_t>(v)] != 0) return false;
  return base.CellOf(v, d) >= 0;
}

void FaultProjector::Project(const QuotaSnapshot& base) {
  pending_transitions_.clear();
  ProjectAll(base);
}

void FaultProjector::ApplyEvents(Span<const FaultEvent> events) {
  bool transitioned = false;
  for (const FaultEvent& e : events) {
    const NodeId v = e.node;
    WEBWAVE_REQUIRE(v >= 0 && v < tree_.size(), "event node out of range");
    WEBWAVE_REQUIRE(!tree_.is_root(v), "the home never crashes");
    std::uint8_t& mask = down_mask_[static_cast<std::size_t>(v)];
    if (e.kind == FaultKind::kCrash) {
      WEBWAVE_REQUIRE(mask == 0, "crash of an already-down node");
      mask = 1;
    } else {
      WEBWAVE_REQUIRE(mask == 1, "recovery of a live node");
      mask = 0;
    }
    pending_transitions_.push_back(v);
    transitioned = true;
  }
  if (transitioned) {
    down_.clear();
    for (NodeId v = 0; v < tree_.size(); ++v)
      if (down_mask_[static_cast<std::size_t>(v)] != 0) down_.push_back(v);
  }
}

bool FaultProjector::Refresh(const QuotaSnapshot& base,
                             Span<const int> dirty_lanes) {
  WEBWAVE_REQUIRE(projected(), "Refresh needs a prior Project");
  WEBWAVE_REQUIRE(base.node_count() == tree_.size() &&
                      base.doc_count() == clamped().doc_count(),
                  "snapshot does not match the projection");

  // The documents whose clamped cells can differ: the dirty lanes (their
  // base cells moved) plus every document in a transitioned node's base
  // row (its copies just vanished or came back, re-routing their spill).
  std::vector<std::int32_t> affected(dirty_lanes.begin(), dirty_lanes.end());
  const std::int32_t* docs = base.cell_docs();
  for (const NodeId v : pending_transitions_)
    for (std::int64_t c = base.row_begin(v); c < base.row_end(v); ++c)
      affected.push_back(docs[c]);
  pending_transitions_.clear();
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return Reproject(base, affected);
}

bool FaultProjector::Refresh(const QuotaSnapshot& base,
                             Span<const FaultEvent> events,
                             Span<const int> dirty_lanes) {
  ApplyEvents(events);
  return Refresh(base, dirty_lanes);
}

}  // namespace webwave
